// Package repro is a Go reproduction of "How Fast Can Eventual Synchrony
// Lead to Consensus?" (Partha Dutta, Rachid Guerraoui, Leslie Lamport,
// DSN 2005).
//
// The paper shows that in the eventually-synchronous model — an unknown
// stabilization time TS after which no process fails and messages arrive
// within a known bound δ — consensus can be reached by TS + O(δ), where all
// previously known algorithms needed TS + O(Nδ) in the worst case. This
// package is the public facade over the full implementation:
//
//   - Four consensus protocols: the paper's modified Paxos (§4, the
//     contribution), traditional Paxos (§2 baseline), a rotating-coordinator
//     round-based algorithm (§3 baseline), and the modified B-Consensus of
//     §5 with its timestamp-ordering oracle.
//   - A deterministic discrete-event simulator realizing the paper's system
//     model exactly (pre-TS adversarial loss/delay, post-TS δ-bounded
//     delivery, crash/restart with stable storage, drifting local clocks).
//   - A live goroutine runtime running the identical protocol code over
//     in-memory or TCP transports.
//   - Adversaries (obsolete-ballot release, dead coordinators) and the
//     experiment harness regenerating every table in EXPERIMENTS.md.
//
// # Quick start
//
//	res, err := repro.Run(repro.Config{
//		Protocol: repro.ModifiedPaxos,
//		N:        5,
//		Delta:    10 * time.Millisecond,
//		TS:       200 * time.Millisecond,
//		Seed:     1,
//	})
//	// res.LatencyAfterTS ≈ a few δ, and never above the paper's
//	// ε + 3τ + 5δ bound.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the measured
// reproduction of every claim.
package repro

import (
	"fmt"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/protocol"
)

// Protocol selects a consensus algorithm. See the constants for the four
// implementations.
type Protocol = harness.Protocol

// The implemented protocols.
const (
	// ModifiedPaxos is the paper's contribution (§4): Paxos with ballot
	// sessions, session timers in [4δ, σ], an ε-heartbeat, and no leader
	// election; decides by TS + ε + 3τ + 5δ.
	ModifiedPaxos = harness.ModifiedPaxos
	// TraditionalPaxos is the §2 baseline, O(Nδ) under obsolete ballots.
	TraditionalPaxos = harness.TraditionalPaxos
	// RoundBased is the §3 rotating-coordinator baseline, O(Nδ) under
	// dead coordinators.
	RoundBased = harness.RoundBased
	// ModifiedBConsensus is the §5 leaderless oracle-based algorithm,
	// O(δ) like modified Paxos.
	ModifiedBConsensus = harness.ModifiedBConsensus
)

// Config configures a simulated consensus run; see harness.Config for field
// documentation.
type Config = harness.Config

// Result is the outcome of a simulated run.
type Result = harness.Result

// Restart schedules a crash/restart pair in a Config.
type Restart = harness.Restart

// AttackKind selects an adversary; see the constants.
type AttackKind = harness.AttackKind

// The implemented adversaries.
const (
	// NoAttack applies only the pre-TS network policy.
	NoAttack = harness.NoAttack
	// ObsoleteBallots releases obsolete high-ballot messages (§2 attack).
	ObsoleteBallots = harness.ObsoleteBallots
	// DeadCoordinators crashes the first rounds' coordinators (§3 attack).
	DeadCoordinators = harness.DeadCoordinators
)

// Value is a consensus value.
type Value = consensus.Value

// ProcessID identifies a process (0..N−1).
type ProcessID = consensus.ProcessID

// Run executes one simulated consensus run and reports its metrics.
func Run(cfg Config) (Result, error) { return harness.Run(cfg) }

// Protocols lists the implemented protocols.
func Protocols() []Protocol { return harness.Protocols() }

// DecisionBound returns the paper's modified-Paxos decision bound after TS,
// ε + 3τ + 5δ with τ = max(2δ+ε, σ), for the given parameters (zero values
// select the library defaults).
func DecisionBound(delta, sigma, eps time.Duration, rho float64) (time.Duration, error) {
	d, err := protocol.Get(string(ModifiedPaxos))
	if err != nil {
		return 0, err
	}
	if d.DecisionBound == nil {
		return 0, fmt.Errorf("repro: %s declares no decision bound", ModifiedPaxos)
	}
	return d.DecisionBound(protocol.Params{Delta: delta, Sigma: sigma, Eps: eps, Rho: rho})
}

// ExperimentParams are the knobs shared by the experiment generators.
type ExperimentParams = experiments.Params

// ExperimentTable is one rendered experiment table or figure.
type ExperimentTable = experiments.Table

// DefaultExperimentParams returns the parameters used for EXPERIMENTS.md.
func DefaultExperimentParams() ExperimentParams { return experiments.DefaultParams() }

// AllExperiments regenerates every table and figure in EXPERIMENTS.md.
func AllExperiments(p ExperimentParams) ([]ExperimentTable, error) { return experiments.All(p) }
