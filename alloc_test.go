package repro_test

// Allocation-regression tests for the simulator hot path. The engine-level
// zero-alloc invariants (schedule/cancel churn, steady-state Step, the
// delivery sink) are pinned in internal/sim; this file pins the end-to-end
// budget: a complete modified-Paxos run through the harness — engine,
// network, trace collector, safety checker, protocol state machines, and
// stable storage together. The budget is far above the engine's structural
// zero (protocols box messages and persist state), but far below the
// pre-overhaul cost (~2100 allocs/run); a regression back to per-event or
// per-message allocation trips it immediately.

import (
	"testing"
	"time"

	"repro"
)

// allocBudgetFullRun bounds allocations for one N=5 modified-Paxos run
// (unstable start, TS=200ms). Measured ~355 allocs/run after the pooled
// event queue, closure-free routing, interned counters, and plain-data
// stable storage; the pre-overhaul simulator needed ~2100.
const allocBudgetFullRun = 600

// allocBudgetObservedRun bounds the same run with Observe on (phase spans,
// latency histograms). Observation adds bounded per-run structures — the
// span ring, interned histogram tables, a handful of per-process
// observations — never per-event or per-message allocation, so the budget
// is a fixed increment over the plain run, not a multiple of it.
const allocBudgetObservedRun = allocBudgetFullRun + 300

func TestSingleRunAllocBudget(t *testing.T) {
	cfg := repro.Config{
		Protocol: repro.ModifiedPaxos, N: 5,
		Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond,
		Rho: 0.01, Seed: 7,
	}
	run := func() {
		res, err := repro.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided {
			t.Fatal("run did not decide")
		}
	}
	run() // warm caches (gob type info, plain-data type table)
	allocs := testing.AllocsPerRun(20, run)
	if allocs > allocBudgetFullRun {
		t.Fatalf("full run allocated %.0f allocs, budget %d — the simulator hot path regressed",
			allocs, allocBudgetFullRun)
	}

	// The observability instrumentation must stay a disabled branch on this
	// path: the same budget holds, because Observe=false above already runs
	// every instrumented call site (spans, histograms) with collection off.
	// With Observe=true the cost is a bounded increment.
	cfg.Observe = true
	run()
	observed := testing.AllocsPerRun(20, run)
	if observed > allocBudgetObservedRun {
		t.Fatalf("observed run allocated %.0f allocs, budget %d — observation is no longer O(1) per run",
			observed, allocBudgetObservedRun)
	}
	t.Logf("plain %.0f allocs/run, observed %.0f", allocs, observed)
}
