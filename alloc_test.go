package repro_test

// Allocation-regression tests for the simulator hot path. The engine-level
// zero-alloc invariants (schedule/cancel churn, steady-state Step, the
// delivery sink) are pinned in internal/sim; this file pins the end-to-end
// budget: a complete modified-Paxos run through the harness — engine,
// network, trace collector, safety checker, protocol state machines, and
// stable storage together. The budget is far above the engine's structural
// zero (protocols box messages and persist state), but far below the
// pre-overhaul cost (~2100 allocs/run); a regression back to per-event or
// per-message allocation trips it immediately.

import (
	"testing"
	"time"

	"repro"
)

// allocBudgetFullRun bounds allocations for one N=5 modified-Paxos run
// (unstable start, TS=200ms). Measured ~355 allocs/run after the pooled
// event queue, closure-free routing, interned counters, and plain-data
// stable storage; the pre-overhaul simulator needed ~2100.
const allocBudgetFullRun = 600

func TestSingleRunAllocBudget(t *testing.T) {
	cfg := repro.Config{
		Protocol: repro.ModifiedPaxos, N: 5,
		Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond,
		Rho: 0.01, Seed: 7,
	}
	run := func() {
		res, err := repro.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided {
			t.Fatal("run did not decide")
		}
	}
	run() // warm caches (gob type info, plain-data type table)
	allocs := testing.AllocsPerRun(20, run)
	if allocs > allocBudgetFullRun {
		t.Fatalf("full run allocated %.0f allocs, budget %d — the simulator hot path regressed",
			allocs, allocBudgetFullRun)
	}
}
