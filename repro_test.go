package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro"
)

func TestFacadeRun(t *testing.T) {
	res, err := repro.Run(repro.Config{
		Protocol: repro.ModifiedPaxos, N: 3,
		Delta: 10 * time.Millisecond, TS: 50 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.Violation != nil {
		t.Fatalf("decided=%v violation=%v", res.Decided, res.Violation)
	}
}

func TestFacadeProtocols(t *testing.T) {
	ps := repro.Protocols()
	if len(ps) != 4 {
		t.Fatalf("Protocols() = %v, want 4 entries", ps)
	}
	for _, p := range ps {
		res, err := repro.Run(repro.Config{Protocol: p, N: 3, Delta: 10 * time.Millisecond, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !res.Decided {
			t.Fatalf("%s did not decide", p)
		}
	}
}

func TestFacadeDecisionBound(t *testing.T) {
	delta := 10 * time.Millisecond
	bound, err := repro.DecisionBound(delta, 0, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// ε+3τ+5δ with defaults lands between the theoretical floor 17δ and
	// ~20δ.
	if bound < 17*delta || bound > 20*delta {
		t.Fatalf("bound = %v (%.1fδ), outside the expected envelope", bound, float64(bound)/float64(delta))
	}
	if _, err := repro.DecisionBound(0, 0, 0, 0); err == nil {
		t.Fatal("zero δ should be rejected")
	}
}

func TestFacadeExperimentParams(t *testing.T) {
	p := repro.DefaultExperimentParams()
	if p.Delta == 0 || p.Seeds == 0 {
		t.Fatalf("defaults look empty: %+v", p)
	}
}

// ExampleRun demonstrates the simplest library use: run the paper's
// algorithm through an unstable period and check the paper's bound held.
func ExampleRun() {
	delta := 10 * time.Millisecond
	res, err := repro.Run(repro.Config{
		Protocol: repro.ModifiedPaxos,
		N:        5,
		Delta:    delta,
		TS:       200 * time.Millisecond,
		Rho:      0.01,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	bound, err := repro.DecisionBound(delta, 0, 0, 0.01)
	if err != nil {
		panic(err)
	}
	fmt.Println("decided:", res.Decided)
	fmt.Println("within paper bound:", res.LatencyAfterTS <= bound)
	// Output:
	// decided: true
	// within paper bound: true
}

// ExampleRun_adversarial shows the paper's headline contrast under the
// obsolete-ballot adversary.
func ExampleRun_adversarial() {
	cfg := repro.Config{
		N: 9, Delta: 10 * time.Millisecond, TS: 100 * time.Millisecond,
		Attack: repro.ObsoleteBallots, AttackK: 4, WorstCaseDelays: true, Seed: 3,
	}
	cfg.Protocol = repro.TraditionalPaxos
	trad, err := repro.Run(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Protocol = repro.ModifiedPaxos
	mod, err := repro.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("modified paxos faster:", mod.LatencyAfterTS < trad.LatencyAfterTS)
	// Output:
	// modified paxos faster: true
}
