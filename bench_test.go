package repro_test

// The benchmarks below regenerate every experiment table/figure in
// EXPERIMENTS.md (DESIGN.md §3 maps them to the paper's claims). They
// report the experiment's headline metric through b.ReportMetric in units
// of δ, so `go test -bench=.` reproduces the paper's shapes:
//
//	BenchmarkTable1LatencyVsN          — O(δ) vs O(Nδ) across protocols
//	BenchmarkTable2LatencyVsDelta      — linearity in δ, under the bound
//	BenchmarkTable3RestartRecovery     — O(δ) restart recovery
//	BenchmarkTable4EpsilonTradeoff     — ε message/latency trade-off
//	BenchmarkFigure1SessionConvergence — the proof's session ladder
//	BenchmarkTable5ObsoleteBallots     — §2 attack vs §4 immunity
//	BenchmarkTable6StablePath          — 3-message-delay stable path
//	BenchmarkTable7SigmaSweep          — σ sweep against ε+3τ+5δ
//	BenchmarkTable8BConsensus          — §5 algorithm flat in N
//	BenchmarkTable9ClockDrift          — ρ robustness
//
// Each iteration regenerates the full table deterministically; per-op time
// is the cost of the whole experiment.

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/scenario"
)

// benchParams shrinks seeds so a full -bench=. pass stays fast while
// remaining multi-seed.
func benchParams() repro.ExperimentParams {
	p := repro.DefaultExperimentParams()
	p.Seeds = 3
	return p
}

// lastCellDelta extracts the trailing "<x>δ" cell of the last row, the
// experiment's headline number.
func lastCellDelta(b *testing.B, t repro.ExperimentTable, col int) float64 {
	b.Helper()
	row := t.Rows[len(t.Rows)-1]
	cell := strings.TrimSuffix(row[col], "δ")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q not a δ multiple: %v", row[col], err)
	}
	return v
}

func benchTable(b *testing.B, gen func(repro.ExperimentParams) (repro.ExperimentTable, error), metricCol int, metricName string) {
	b.Helper()
	var tab repro.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = gen(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastCellDelta(b, tab, metricCol), metricName)
	if b.N == 1 {
		b.Logf("\n%s", tab.String())
	}
}

func BenchmarkTable1LatencyVsN(b *testing.B) {
	var tab repro.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Table1LatencyVsN(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the N=33 latencies of the contribution vs the baselines.
	b.ReportMetric(lastCellDelta(b, tab, 1), "modpaxos_δ")
	b.ReportMetric(lastCellDelta(b, tab, 2), "tradpaxos_δ")
	b.ReportMetric(lastCellDelta(b, tab, 3), "roundbased_δ")
	b.ReportMetric(lastCellDelta(b, tab, 4), "bconsensus_δ")
	if b.N == 1 {
		b.Logf("\n%s", tab.String())
	}
}

func BenchmarkTable2LatencyVsDelta(b *testing.B) {
	benchTable(b, experiments.Table2LatencyVsDelta, 2, "latency_δ")
}

func BenchmarkTable3RestartRecovery(b *testing.B) {
	benchTable(b, experiments.Table3RestartRecovery, 2, "recovery_δ")
}

func BenchmarkTable4EpsilonTradeoff(b *testing.B) {
	benchTable(b, experiments.Table4EpsilonTradeoff, 2, "latency_δ")
}

func BenchmarkFigure1SessionConvergence(b *testing.B) {
	benchTable(b, experiments.Figure1SessionConvergence, 2, "decide_δ")
}

func BenchmarkTable5ObsoleteBallots(b *testing.B) {
	var tab repro.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Table5ObsoleteBallots(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastCellDelta(b, tab, 1), "tradpaxos_k8_δ")
	b.ReportMetric(lastCellDelta(b, tab, 2), "modpaxos_k8_δ")
	if b.N == 1 {
		b.Logf("\n%s", tab.String())
	}
}

func BenchmarkTable6StablePath(b *testing.B) {
	benchTable(b, experiments.Table6StablePath, 1, "latency_δ")
}

func BenchmarkTable7SigmaSweep(b *testing.B) {
	benchTable(b, experiments.Table7SigmaSweep, 1, "latency_δ")
}

func BenchmarkTable8BConsensus(b *testing.B) {
	benchTable(b, experiments.Table8BConsensus, 1, "latency_δ")
}

func BenchmarkTable9ClockDrift(b *testing.B) {
	benchTable(b, experiments.Table9ClockDrift, 2, "latency_δ")
}

// BenchmarkSingleRunModifiedPaxos measures the raw simulator throughput of
// one full modified-Paxos run (N=5, unstable start) — the unit of work every
// table is built from.
func BenchmarkSingleRunModifiedPaxos(b *testing.B) {
	var last time.Duration
	for i := 0; i < b.N; i++ {
		res, err := repro.Run(repro.Config{
			Protocol: repro.ModifiedPaxos, N: 5,
			Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond,
			Rho: 0.01, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Decided {
			b.Fatal("run did not decide")
		}
		last = res.LatencyAfterTS
	}
	b.ReportMetric(float64(last)/float64(10*time.Millisecond), "latency_δ")
}

// benchScenario runs one canned scenario per iteration across all its
// protocols and seeds — the unit of work of the scenario engine. It reports
// the modpaxos median latency in δ so the perf trajectory tracks scenario
// throughput and the paper's headline metric together.
func benchScenario(b *testing.B, name string) {
	b.Helper()
	spec, ok := scenario.Lookup(name)
	if !ok {
		b.Fatalf("unknown scenario %q", name)
	}
	spec.Seeds = 3
	var rep *scenario.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatalf("scenario %s violations: %+v", name, rep.Violations)
		}
	}
	for _, pr := range rep.Protocols {
		if pr.Protocol == harness.ModifiedPaxos {
			b.ReportMetric(float64(pr.Latency.Median)/float64(rep.Delta), "modpaxos_δ")
		}
	}
	if b.N == 1 {
		b.Logf("\n%s", rep.Text())
	}
}

// BenchmarkScenarioBaselineSynchronous is the cheap end of the scenario
// engine: a stable-from-start run of all four protocols.
func BenchmarkScenarioBaselineSynchronous(b *testing.B) {
	benchScenario(b, "baseline-synchronous")
}

// BenchmarkScenarioObsoleteBallotReplay is the adversarial end: the §2
// attack with worst-case delivery against traditional and modified Paxos.
func BenchmarkScenarioObsoleteBallotReplay(b *testing.B) {
	benchScenario(b, "obsolete-ballot-replay")
}

func BenchmarkTable10EntryRuleAblation(b *testing.B) {
	var tab repro.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Table10EntryRuleAblation(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastCellDelta(b, tab, 1), "rule_on_δ")
	b.ReportMetric(lastCellDelta(b, tab, 2), "ablated_δ")
	if b.N == 1 {
		b.Logf("\n%s", tab.String())
	}
}

func BenchmarkFigure2OracleRounds(b *testing.B) {
	benchTable(b, experiments.Figure2OracleRounds, 2, "decide_δ")
}

func BenchmarkTable11MessageComplexity(b *testing.B) {
	var tab repro.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Table11MessageComplexity(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	for col, name := range []string{"", "modpaxos_msgs", "tradpaxos_msgs", "roundbased_msgs", "bconsensus_msgs"} {
		if col == 0 {
			continue
		}
		v, err := strconv.Atoi(last[col])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(v), name)
	}
	if b.N == 1 {
		b.Logf("\n%s", tab.String())
	}
}

// benchSweepWorkers measures a sweep-style multi-seed grid — one canned
// scenario across every visible protocol with a widened seed matrix, the
// unit of work `scenario sweep` executes per cluster size — at a fixed
// worker-pool size. Serial (1 worker) vs parallel (GOMAXPROCS) quantifies
// the scenario engine's multi-core win.
func benchSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	spec, ok := scenario.Lookup("split-brain-until-TS")
	if !ok {
		b.Fatal("missing canned scenario")
	}
	spec.Seeds = 8
	spec.Workers = workers
	for i := 0; i < b.N; i++ {
		rep, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatalf("violations: %+v", rep.Violations)
		}
	}
}

func BenchmarkScenarioSweepSerial(b *testing.B)   { benchSweepWorkers(b, 1) }
func BenchmarkScenarioSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) }

// BenchmarkGrid measures the grid engine end to end on a 2×2 (n × δ)
// cross-product of a canned scenario — the unit of work `scenario sweep`
// executes per multi-axis invocation, with the worker pool spanning all
// cells. The perf trajectory of grid-level workloads starts here.
func BenchmarkGrid(b *testing.B) {
	spec, ok := scenario.Lookup("split-brain-until-TS")
	if !ok {
		b.Fatal("missing canned scenario")
	}
	spec.Seeds = 2
	g := scenario.Grid{
		Base: spec,
		Axes: []scenario.Axis{
			scenario.NAxis(3, 5),
			scenario.DeltaAxis(5*time.Millisecond, 10*time.Millisecond),
		},
	}
	var cells int
	for i := 0; i < b.N; i++ {
		rep, err := g.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatalf("grid violations: %d", rep.TotalViolations())
		}
		cells = len(rep.Cells)
	}
	b.ReportMetric(float64(cells), "cells")
}
