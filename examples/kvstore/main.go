// Kvstore: a replicated key-value store built from a sequence of
// modified-Paxos instances (internal/rsm) over loopback TCP — the setting
// of the paper's "Reducing Message Complexity" discussion: with phase 1
// pre-executed per slot, each command commits in three message delays in
// the stable case.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/live"
	"repro/internal/rsm"
)

func main() {
	const replicas = 3
	delta := 20 * time.Millisecond

	rsm.RegisterMessages()
	// 3 replica listeners + 1 client endpoint, all loopback TCP.
	ids := []consensus.ProcessID{0, 1, 2, 3}
	transport, err := live.NewTCPTransport(ids)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < replicas; i++ {
		fmt.Printf("replica %d listening on %s\n", i, transport.Addr(consensus.ProcessID(i)))
	}

	factory, err := rsm.New(rsm.Config{Paxos: modpaxos.Config{Delta: delta}})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := live.NewCluster(
		live.Config{N: replicas, Delta: delta, Transport: transport},
		factory,
		make([]consensus.Value, replicas),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Stop() }()
	cluster.Start()

	client := rsm.NewClient(consensus.ProcessID(replicas), transport)
	client.SetTimeout(10 * time.Second)

	fmt.Println()
	commands := []consensus.Value{
		"set user alice",
		"set theme dark",
		"set user bob", // overwrite — must apply after slot 0
	}
	var lastSlot int64
	for _, cmd := range commands {
		start := time.Now()
		slot, err := client.Propose(cmd)
		if err != nil {
			log.Fatal(err)
		}
		lastSlot = slot
		fmt.Printf("committed %-16q to slot %d in %v (%.1fδ)\n",
			cmd, slot, time.Since(start).Round(time.Millisecond),
			float64(time.Since(start))/float64(delta))
	}

	fmt.Println()
	for _, key := range []string{"user", "theme", "missing"} {
		for replica := consensus.ProcessID(0); replica < replicas; replica++ {
			v, found, err := client.Get(replica, key, lastSlot+1)
			if err != nil {
				log.Fatal(err)
			}
			if found {
				fmt.Printf("replica %d: %s = %q\n", replica, key, v)
			} else {
				fmt.Printf("replica %d: %s unset\n", replica, key)
			}
		}
	}
	fmt.Println()
	fmt.Println("All replicas answer identically: one consensus instance per log slot,")
	fmt.Println("committed in ~3 message delays on the prepared fast path.")
}
