// Livecluster: the same modified-Paxos code running on real goroutines and
// wall-clock timers. The in-memory network is unstable (lossy, arbitrary
// delays) for the first 400ms, then stabilizes with δ=20ms — live eventual
// synchrony. One process is crashed during the unstable period and
// restarted after the others decided.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/live"
	"repro/internal/protocol"
)

func main() {
	const n = 5
	delta := 20 * time.Millisecond
	unstable := 400 * time.Millisecond

	transport := live.NewMemTransport(live.MemTransportConfig{
		MaxDelay:       delta,
		StabilizeAfter: unstable,
		LossProb:       0.6,
	})
	proposals := make([]consensus.Value, n)
	for i := range proposals {
		proposals[i] = consensus.Value(fmt.Sprintf("proposal-of-p%d", i))
	}
	d, err := protocol.Get("modpaxos")
	if err != nil {
		log.Fatal(err)
	}
	factory, err := d.Build(protocol.Params{Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := live.NewCluster(
		live.Config{N: n, Delta: delta, Transport: transport},
		factory,
		proposals,
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cluster.Stop(); err != nil {
			log.Printf("stop: %v", err)
		}
	}()

	fmt.Printf("5 goroutine processes; network unstable (60%% loss) for %v, then δ=%v\n", unstable, delta)
	start := time.Now()
	cluster.Start()

	// Crash p4 during instability; bring it back after the rest decided.
	time.Sleep(100 * time.Millisecond)
	cluster.Crash(4)
	fmt.Printf("t=%-8v crashed p4\n", time.Since(start).Round(time.Millisecond))

	waitFor := []consensus.ProcessID{0, 1, 2, 3}
	for !cluster.Checker().AllDecided(waitFor) {
		if err := cluster.Checker().Violation(); err != nil {
			log.Fatalf("safety violation: %v", err)
		}
		if time.Since(start) > 30*time.Second {
			log.Fatal("timed out waiting for majority")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("t=%-8v majority decided\n", time.Since(start).Round(time.Millisecond))

	cluster.Restart(4)
	restartAt := time.Since(start)
	fmt.Printf("t=%-8v restarted p4\n", restartAt.Round(time.Millisecond))
	if _, err := cluster.WaitDecided(4, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	rec := time.Since(start) - restartAt
	fmt.Printf("t=%-8v p4 decided — %v (%.1fδ) after its restart\n",
		time.Since(start).Round(time.Millisecond), rec.Round(time.Millisecond), float64(rec)/float64(delta))

	decisions := cluster.Checker().Decisions()
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].At < decisions[j].At })
	fmt.Println()
	for _, d := range decisions {
		fmt.Printf("p%d decided %q at its local +%v\n", d.Proc, d.Value, d.At.Round(time.Millisecond))
	}
}
