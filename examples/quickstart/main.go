// Quickstart: run the paper's modified Paxos algorithm in the simulated
// eventually-synchronous model and watch it decide within O(δ) of
// stabilization.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	delta := 10 * time.Millisecond                       // δ: the known post-stability delivery bound
	ts := 300 * time.Millisecond                         // TS: when the network stabilizes (unknown to processes!)
	bound, err := repro.DecisionBound(delta, 0, 0, 0.01) // the paper's ε+3τ+5δ
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Five processes, all messages lost before TS, delivery ≤ δ afterwards.")
	fmt.Printf("δ=%v  TS=%v  paper bound after TS: %v (%.1fδ)\n\n", delta, ts, bound, float64(bound)/float64(delta))

	res, err := repro.Run(repro.Config{
		Protocol: repro.ModifiedPaxos,
		N:        5,
		Delta:    delta,
		TS:       ts,
		Rho:      0.01,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation != nil {
		log.Fatalf("safety violation: %v", res.Violation)
	}

	fmt.Printf("decided value:     %q (proposed by one of the processes)\n", res.Value)
	fmt.Printf("first decision:    %v\n", res.FirstDecision)
	fmt.Printf("last decision:     %v — %.1fδ after TS (bound %.1fδ)\n",
		res.LastDecision,
		float64(res.LatencyAfterTS)/float64(delta),
		float64(bound)/float64(delta))
	fmt.Printf("messages sent:     %d\n\n", res.Messages)

	fmt.Println("Session ladder (the §4 proof in action — each entry is the first")
	fmt.Println("process to reach a session):")
	seen := int64(-1)
	for _, s := range res.Collector.Series("session") {
		if s.Value > seen {
			seen = s.Value
			fmt.Printf("  t=%-12v p%d enters session %d\n", s.At, s.Proc, s.Value)
		}
	}
}
