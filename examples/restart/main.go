// Restart: the paper's process-restart guarantee (§4). A process crashes
// before stabilization and restarts long after the others decided; it must
// decide within O(δ) of its restart, resuming from stable storage.
//
//	go run ./examples/restart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	delta := 10 * time.Millisecond
	ts := 200 * time.Millisecond

	fmt.Println("Process 4 crashes at t=50ms (before TS) and restarts at several")
	fmt.Println("offsets after stabilization; recovery time must stay O(δ).")
	fmt.Println()
	fmt.Printf("%-24s  %-14s  %s\n", "restart time", "recovery", "in δ")

	for _, offsetDelta := range []int{2, 10, 50, 200} {
		restartAt := ts + time.Duration(offsetDelta)*delta
		res, err := repro.Run(repro.Config{
			Protocol: repro.ModifiedPaxos,
			N:        5, Delta: delta, TS: ts, Rho: 0.01, Seed: 3,
			Restarts: []repro.Restart{
				{Proc: 4, CrashAt: 50 * time.Millisecond, RestartAt: restartAt},
			},
			Horizon: restartAt + time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Violation != nil {
			log.Fatalf("safety violation: %v", res.Violation)
		}
		rec, ok := res.RestartRecovery[4]
		if !ok {
			log.Fatalf("no recovery recorded for restart at %v", restartAt)
		}
		fmt.Printf("TS + %3d·δ (=%9v)  %-14v  %.1fδ\n",
			offsetDelta, restartAt, rec, float64(rec)/float64(delta))
	}

	fmt.Println()
	fmt.Println("However late the restart, recovery is a constant number of δ:")
	fmt.Println("decided processes answer every message with the decision, and")
	fmt.Println("gossip it every 2δ.")
}
