// Adversarial: the paper's headline comparison. An adversary releases
// obsolete high-ballot messages from a failed process, one per leader
// ballot — traditional Paxos (§2) pays a Reject/retry cycle for each, while
// the modified algorithm's session structure (§4) caps what the adversary
// can forge and stays O(δ).
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const n = 17
	delta := 10 * time.Millisecond
	ts := 200 * time.Millisecond

	fmt.Printf("N=%d processes, δ=%v, stabilization at TS=%v, worst-case delivery.\n", n, delta, ts)
	fmt.Println("k = number of obsolete high-ballot messages released after TS.")
	fmt.Println()
	fmt.Printf("%4s  %22s  %22s\n", "k", "traditional Paxos", "modified Paxos (§4)")

	for _, k := range []int{0, 2, 4, 8} {
		var lat [2]time.Duration
		for i, proto := range []repro.Protocol{repro.TraditionalPaxos, repro.ModifiedPaxos} {
			res, err := repro.Run(repro.Config{
				Protocol: proto, N: n, Delta: delta, TS: ts,
				Attack: repro.ObsoleteBallots, AttackK: k,
				WorstCaseDelays: true, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Violation != nil {
				log.Fatalf("safety violation: %v", res.Violation)
			}
			if !res.Decided {
				log.Fatalf("%s with k=%d did not decide", proto, k)
			}
			lat[i] = res.LatencyAfterTS
		}
		fmt.Printf("%4d  %15v (%4.1fδ)  %15v (%4.1fδ)\n",
			k,
			lat[0], float64(lat[0])/float64(delta),
			lat[1], float64(lat[1])/float64(delta))
	}

	fmt.Println()
	fmt.Println("Traditional Paxos degrades linearly with k (O(Nδ) with k=⌈N/2⌉−1);")
	fmt.Println("the modified algorithm absorbs the strongest legal equivalent attack.")
}
