package repro_test

// Population-scale checks for the dynamics family: consensus times measured
// at n = 100, 1000, 5000 must be consistent with the predicted O(log n)
// round counts (arXiv:2103.10366 for usd, arXiv:2503.02426 for 3-majority
// and 2-choices). The runs go through the batched broadcast path and
// arena-style storage reuse — the same machinery the scenario sweeps use —
// so these tests double as end-to-end coverage for population-scale N.

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/simnet"
)

// dynDelta is δ for the population runs.
const dynDelta = 10 * time.Millisecond

// runDynamics executes one population run on a shared arena and returns the
// time of the last decision.
func runDynamics(t *testing.T, arena *simnet.Arena, proto harness.Protocol, n int, seed int64) time.Duration {
	t.Helper()
	res, err := harness.Run(harness.Config{
		Protocol:    proto,
		N:           n,
		Delta:       dynDelta,
		Seed:        seed,
		OpinionPool: 2,
		Arena:       arena,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("%s n=%d seed=%d: safety violation: %v", proto, n, seed, res.Violation)
	}
	if !res.Decided {
		t.Fatalf("%s n=%d seed=%d: population did not decide (last=%v)", proto, n, seed, res.LastDecision)
	}
	return res.LastDecision
}

// medianDecision runs three seeds and returns the median last-decision time.
func medianDecision(t *testing.T, arena *simnet.Arena, proto harness.Protocol, n int) time.Duration {
	t.Helper()
	times := make([]time.Duration, 0, 3)
	for seed := int64(1); seed <= 3; seed++ {
		times = append(times, runDynamics(t, arena, proto, n, seed))
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[1]
}

// TestDynamicsLogScaling measures consensus time at a 50× population spread.
// O(log n) rounds (plus the O(log n) decision streak) predict roughly a
// log(5000)/log(100) ≈ 1.9× growth from n=100 to n=5000; any per-round
// linear component would show up as tens of ×. The assertion allows 6× —
// generous against round-count constants, impossible for linear growth.
func TestDynamicsLogScaling(t *testing.T) {
	sizes := []int{100, 1000, 5000}
	if testing.Short() {
		sizes = []int{100, 1000}
	}
	for _, proto := range []harness.Protocol{"usd", "3majority", "2choices"} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			arena := simnet.NewArena()
			base := medianDecision(t, arena, proto, sizes[0])
			if base <= 0 {
				t.Fatalf("degenerate base consensus time %v", base)
			}
			for _, n := range sizes[1:] {
				d := medianDecision(t, arena, proto, n)
				ratio := float64(d) / float64(base)
				t.Logf("%s: n=%d consensus=%v (%.2f× the n=%d time %v)", proto, n, d, ratio, sizes[0], base)
				if ratio > 6 {
					t.Errorf("%s: consensus time grew %.1f× from n=%d to n=%d — inconsistent with O(log n)",
						proto, ratio, sizes[0], n)
				}
			}
		})
	}
}

// BenchmarkDynamicsUSDN1000 is the population-dynamics sweep point held by
// the perfgate broadcast ratchet: one full undecided-state-dynamics run at
// n=1000 per op, on a shared arena — exactly the unit of work a population
// sweep executes per cell. Seeds rotate so the number is a cross-seed
// average, not one schedule's.
func BenchmarkDynamicsUSDN1000(b *testing.B) {
	arena := simnet.NewArena()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{
			Protocol:    "usd",
			N:           1000,
			Delta:       dynDelta,
			Seed:        int64(i%3) + 1,
			OpinionPool: 2,
			Arena:       arena,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Decided {
			b.Fatal("population did not decide")
		}
	}
}

// TestUSDPopulation5000WallClock is the acceptance check that a full
// undecided-state-dynamics run at n=5000 completes in seconds of wall
// clock, not minutes — the point of the batched broadcast fan-out.
func TestUSDPopulation5000WallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("population run at n=5000 skipped in -short mode")
	}
	start := time.Now()
	last := runDynamics(t, simnet.NewArena(), "usd", 5000, 1)
	wall := time.Since(start)
	t.Logf("usd n=5000: virtual consensus at %v, wall clock %v", last, wall)
	if wall > time.Minute {
		t.Errorf("usd n=5000 took %v wall clock, want seconds", wall)
	}
}
