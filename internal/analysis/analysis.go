// Package analysis is a stdlib-only static-analysis framework for this
// repository's domain invariants. It loads and type-checks module packages
// with go/parser + go/types (no external dependencies; the standard library
// is imported from source), and runs a fixed suite of analyzers over the
// typed syntax:
//
//   - detlint:      no wall-clock, global math/rand, or order-sensitive map
//     iteration in determinism-sensitive packages
//   - hotlint:      no closures, interface boxing, fmt, or per-iteration
//     map/slice allocation in //repro:hotpath functions
//   - tracelint:    code reachable from hot paths uses the interned dense
//     counter API, never the mutexed string-keyed slow path
//   - registrylint: every message type a protocol's handlers switch on is
//     listed in its Descriptor.Messages, and each protocol package
//     registers exactly one visible descriptor
//   - keylint:      every key passed to a storage.Store Put starts with a
//     prefix declared in the internal/storage key registry
//
// Every claim the repo makes about the ε+3τ+5δ bound rests on the simulator
// being byte-exactly deterministic, and every BENCH_*.json number rests on
// the hot path staying allocation-free. Golden tests catch violations after
// the fact; these analyzers point at the line that introduced them.
//
// Two source directives steer the suite:
//
//	//repro:hotpath
//	    in a function's doc comment: marks it as part of the simulator's
//	    per-event/per-message hot path, enabling hotlint and tracelint.
//
//	//repro:allow <analyzer> <reason>
//	    suppresses the named analyzer's diagnostics on the directive's own
//	    line and the line below it. The reason is mandatory; a malformed
//	    directive is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding (file path as loaded, 1-based line/column).
	Pos token.Position `json:"pos"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message describes the violation and how to resolve it.
	Message string `json:"message"`
}

// String renders the driver's diagnostic line format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's registry key — what //repro:allow directives
	// and diagnostics refer to.
	Name string
	// Doc is a one-line description for the driver's listing.
	Doc string
	// Applies filters packages by import path; nil applies everywhere.
	Applies func(pkgPath string) bool
	// Run inspects the package and reports through the pass.
	Run func(*Pass)
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Detlint, Hotlint, Tracelint, Registrylint, Keylint}
}

// analyzerNames is the set of valid //repro:allow targets.
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Fset returns the file set all syntax positions resolve through.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypeOf returns the type of an expression, or nil if the type-checker
// could not resolve it (analyzers must treat nil as "unknown" and stay
// silent rather than guess).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// Reportf records a diagnostic unless an //repro:allow directive for this
// analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunPackage runs every applicable analyzer over the package and returns
// the diagnostics sorted by position. Malformed //repro: directives are
// reported under the pseudo-analyzer "directive".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, pkg.badDirectives...)
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders by (file, line, column, analyzer, message) so
// driver output and golden tests are stable.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
