package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Registrylint cross-checks each protocol package's message plumbing
// against its registry descriptor:
//
//   - every message type the package's handlers switch on must appear in a
//     Descriptor.Messages list of the package. A missing entry is silent
//     rot: the live TCP transport never gob-registers the type (the first
//     wire message of that type kills the connection), and the harness
//     never pre-interns its trace counter (per-message accounting falls
//     back to first-use interning).
//   - a protocol package registers exactly one visible descriptor; ablation
//     and diagnostic variants must be Hidden so they never silently join
//     default protocol comparisons.
//   - every package under internal/core/ that handles consensus messages
//     must publish a descriptor at all.
//   - a descriptor with a constructor but no Messages list is flagged: it
//     would register a protocol whose every message misses the above.
var Registrylint = &Analyzer{
	Name: "registrylint",
	Doc:  "Descriptor.Messages completeness and one-visible-descriptor-per-package invariants",
	Run:  runRegistrylint,
}

// descriptorInfo is one protocol.Descriptor composite literal found in the
// package.
type descriptorInfo struct {
	lit      *ast.CompositeLit
	name     string // Name field when it is a string literal
	hidden   bool
	hasNew   bool
	messages []types.Type // element types of the Messages list
	hasMsgs  bool
}

func runRegistrylint(p *Pass) {
	descs := collectDescriptors(p)
	switches := collectMessageSwitches(p)

	corePkg := strings.HasPrefix(trimFixture(p.Pkg.Path), "repro/internal/core/") &&
		trimFixture(p.Pkg.Path) != "repro/internal/core/consensus"
	if len(descs) == 0 {
		if corePkg && len(switches) > 0 {
			p.Reportf(p.Pkg.Files[0].Name.Pos(),
				"package handles consensus messages but publishes no protocol.Descriptor; register one (see internal/protocol) so the protocol is reachable by name")
		}
		return
	}

	// Exactly one visible descriptor per package.
	visible := 0
	for _, d := range descs {
		if !d.hidden {
			visible++
		}
	}
	if visible > 1 {
		for _, d := range descs {
			if !d.hidden {
				p.Reportf(d.lit.Pos(), "package declares %d non-Hidden descriptors; a protocol package registers exactly one visible name (mark ablation variants Hidden: true)", visible)
			}
		}
	}

	// A constructor without a message list silently degrades every type.
	for _, d := range descs {
		if d.hasNew && !d.hasMsgs {
			p.Reportf(d.lit.Pos(), "descriptor %s has a constructor but no Messages list; live-backend gob registration and trace-counter pre-interning will miss every message type", descName(d))
		}
	}

	// Union of message types across the package's descriptors.
	listed := make(map[string]bool)
	for _, d := range descs {
		for _, t := range d.messages {
			listed[t.String()] = true
		}
	}
	for _, sw := range switches {
		seen := make(map[string]bool)
		for _, c := range sw.cases {
			key := c.t.String()
			if seen[key] || listed[key] {
				continue
			}
			seen[key] = true
			p.Reportf(c.pos, "handler switches on %s but no Descriptor.Messages entry lists it; the live backend cannot gob-decode it and its trace counter is never pre-interned", typeDisplay(c.t))
		}
	}
}

func descName(d descriptorInfo) string {
	if d.name != "" {
		return "\"" + d.name + "\""
	}
	return "literal"
}

// typeDisplay renders pkgname.Type for diagnostics.
func typeDisplay(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		return "*" + typeDisplay(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}

// isDescriptorType matches internal/protocol.Descriptor (or a fixture
// stand-in under a .../protostub path).
func isDescriptorType(t types.Type) bool {
	return namedType(t, "repro/internal/protocol", "Descriptor") ||
		namedTypeSuffix(t, "/protostub", "Descriptor")
}

// isMessageInterface matches the consensus.Message interface (or a fixture
// stand-in).
func isMessageInterface(t types.Type) bool {
	return namedType(t, "repro/internal/core/consensus", "Message") ||
		namedTypeSuffix(t, "/protostub", "Message")
}

// collectDescriptors finds every protocol.Descriptor composite literal.
func collectDescriptors(p *Pass) []descriptorInfo {
	var out []descriptorInfo
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isDescriptorType(p.TypeOf(lit)) {
				return true
			}
			d := descriptorInfo{lit: lit}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Name":
					if bl, ok := ast.Unparen(kv.Value).(*ast.BasicLit); ok {
						d.name = strings.Trim(bl.Value, "\"`")
					}
				case "Hidden":
					if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && id.Name == "true" {
						d.hidden = true
					}
				case "New":
					d.hasNew = true
				case "Messages":
					d.hasMsgs = true
					d.messages = messageListTypes(p, kv.Value)
				}
			}
			out = append(out, d)
			return true
		})
	}
	return out
}

// messageListTypes resolves a Messages field value — a composite literal,
// or a call to a package-local function returning one — to the element
// types.
func messageListTypes(p *Pass, v ast.Expr) []types.Type {
	v = ast.Unparen(v)
	if call, ok := v.(*ast.CallExpr); ok {
		fn := calleeFunc(p, call)
		if fn == nil {
			return nil
		}
		// Find the local declaration and use its last return expression.
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || p.Pkg.Info.Defs[fd.Name] != fn || fd.Body == nil {
					continue
				}
				var lit ast.Expr
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
						lit = ret.Results[0]
					}
					return true
				})
				if lit != nil {
					return messageListTypes(p, lit)
				}
			}
		}
		return nil
	}
	lit, ok := v.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var out []types.Type
	for _, el := range lit.Elts {
		if t := p.TypeOf(el); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// msgCase is one `case SomeMsg:` of a message type switch.
type msgCase struct {
	t   types.Type
	pos token.Pos
}

// msgSwitch is one type switch over a consensus.Message value.
type msgSwitch struct {
	cases []msgCase
}

// collectMessageSwitches finds every type switch whose subject is a
// consensus.Message and returns the concrete case types.
func collectMessageSwitches(p *Pass) []msgSwitch {
	var out []msgSwitch
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			var assert *ast.TypeAssertExpr
			switch a := ts.Assign.(type) {
			case *ast.AssignStmt:
				if len(a.Rhs) == 1 {
					assert, _ = ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr)
				}
			case *ast.ExprStmt:
				assert, _ = ast.Unparen(a.X).(*ast.TypeAssertExpr)
			}
			if assert == nil || !isMessageInterface(p.TypeOf(assert.X)) {
				return true
			}
			var sw msgSwitch
			for _, c := range ts.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, texpr := range cc.List {
					t := p.TypeOf(texpr)
					if t == nil || isInterface(t) {
						continue // `case nil:`, interface cases
					}
					if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
						continue
					}
					sw.cases = append(sw.cases, msgCase{t: t, pos: texpr.Pos()})
				}
			}
			if len(sw.cases) > 0 {
				out = append(out, sw)
			}
			return true
		})
	}
	return out
}
