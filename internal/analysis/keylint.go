package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Keylint enforces the stable-storage key registry: every key passed to a
// storage.Store Put must provably start with one of the Key* prefixes
// declared in internal/storage/keys.go. An undeclared key spelling is
// either invisible to recovery (no restore path scans its namespace) or,
// worse, shadows another component's namespace — and neither failure shows
// up until a restart.
//
// The key argument is resolved structurally: constant strings (including
// package-level consts aliasing registry entries), the left operand of a
// `+` concatenation, fmt.Sprintf's format literal up to its first verb, and
// single-return helper functions in the same package are all traced to a
// literal prefix. A key the analyzer cannot resolve is itself a diagnostic:
// generic wrappers that forward caller-supplied keys carry an
// //repro:allow keylint directive naming the namespace they forward into.
var Keylint = &Analyzer{
	Name: "keylint",
	Doc:  "Store.Put keys start with a prefix declared in the internal/storage key registry",
	Applies: func(pkgPath string) bool {
		// The registry itself and fixture stubs are exempt.
		return pkgPath != "repro/internal/storage" && !strings.HasSuffix(pkgPath, "/storestub")
	},
	Run: runKeylint,
}

// storagePackage finds internal/storage (or a fixture stand-in under a
// .../storestub path) in the package's transitive imports.
func storagePackage(pkg *types.Package) *types.Package {
	seen := make(map[*types.Package]bool)
	queue := []*types.Package{pkg}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if p.Path() == "repro/internal/storage" || strings.HasSuffix(p.Path(), "/storestub") {
			return p
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

// keyRegistry collects the exported Key* string constants of the storage
// package — the declared namespaces.
func keyRegistry(storage *types.Package) []string {
	var out []string
	scope := storage.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Key") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		out = append(out, constant.StringVal(c.Val()))
	}
	return out
}

// storeInterface returns the Store interface type of the storage package.
func storeInterface(storage *types.Package) *types.Interface {
	obj := storage.Scope().Lookup("Store")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func runKeylint(p *Pass) {
	if p.Pkg.Types == nil {
		return
	}
	storage := storagePackage(p.Pkg.Types)
	if storage == nil {
		return // the package persists nothing through the registry's stores
	}
	iface := storeInterface(storage)
	if iface == nil {
		return
	}
	registry := keyRegistry(storage)

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Name() != "Put" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !types.Implements(sig.Recv().Type(), iface) {
				return true
			}
			key, resolved := resolveKeyPrefix(p, call.Args[0], 0)
			if !resolved {
				p.Reportf(call.Args[0].Pos(),
					"cannot determine the key prefix %s passes to Store.Put; build keys from a registered storage.Key* prefix, or annotate the forwarding site with //repro:allow keylint",
					exprString(call.Args[0]))
				return true
			}
			for _, prefix := range registry {
				if strings.HasPrefix(key, prefix) {
					return true
				}
			}
			p.Reportf(call.Args[0].Pos(),
				"Store.Put key %q starts with no prefix declared in the storage key registry; declare the namespace in internal/storage/keys.go", key)
			return true
		})
	}
}

// resolveKeyPrefixDepth bounds helper inlining (self-recursive key builders
// would otherwise loop).
const resolveKeyPrefixDepth = 4

// resolveKeyPrefix traces a Put key expression to the literal string prefix
// it is guaranteed to start with.
func resolveKeyPrefix(p *Pass, e ast.Expr, depth int) (string, bool) {
	if depth > resolveKeyPrefixDepth {
		return "", false
	}
	e = ast.Unparen(e)
	// Anything the type-checker folded to a string constant — literals,
	// registry consts, local aliases, constant concatenations.
	if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if c, ok := p.ObjectOf(e).(*types.Const); ok && c.Val().Kind() == constant.String {
			return constant.StringVal(c.Val()), true
		}
	case *ast.BinaryExpr:
		// prefix + dynamic-suffix: the left operand bounds the namespace.
		if e.Op.String() == "+" {
			return resolveKeyPrefix(p, e.X, depth+1)
		}
	case *ast.CallExpr:
		fn := calleeFunc(p, e)
		if fn == nil {
			return "", false
		}
		// fmt.Sprintf("prefix%d", ...): the format literal up to its first
		// verb is the guaranteed prefix.
		if funcPkgPath(fn) == "fmt" && fn.Name() == "Sprintf" && len(e.Args) > 0 {
			format, ok := resolveKeyPrefix(p, e.Args[0], depth+1)
			if !ok {
				return "", false
			}
			if i := strings.IndexByte(format, '%'); i >= 0 {
				format = format[:i]
			}
			return format, true
		}
		// Same-package single-return helpers (slotKey, sessKey): resolve
		// the returned expression in place.
		if fn.Pkg() == p.Pkg.Types {
			if ret := singleReturnExpr(p, fn); ret != nil {
				return resolveKeyPrefix(p, ret, depth+1)
			}
		}
	}
	return "", false
}

// singleReturnExpr returns the sole returned expression of a function whose
// body is exactly one single-value return statement, or nil.
func singleReturnExpr(p *Pass, fn *types.Func) ast.Expr {
	for _, f := range p.Pkg.Files {
		if fn.Pos() < f.Pos() || fn.Pos() >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Pos() != fn.Pos() || fd.Body == nil || len(fd.Body.List) != 1 {
				continue
			}
			if ret, ok := fd.Body.List[0].(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
				return ret.Results[0]
			}
		}
	}
	return nil
}
