// Package reg2 is the registrylint fixture for the one-visible-descriptor
// rule: two non-Hidden descriptors, plus a Hidden ablation variant that is
// allowed.
package reg2

import "repro/internal/analysis/testdata/src/protostub"

var A = protostub.Descriptor{Name: "a"} // want `declares 2 non-Hidden descriptors`

var B = protostub.Descriptor{Name: "b"} // want `declares 2 non-Hidden descriptors`

var Ablation = protostub.Descriptor{Name: "a-ablation", Hidden: true}
