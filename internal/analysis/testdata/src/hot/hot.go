// Package hot is the hotlint fixture: allocation patterns inside functions
// annotated //repro:hotpath.
package hot

import "fmt"

type sink interface {
	accept(v any)
}

type event struct {
	at  int64
	seq int64
}

type engine struct {
	heap []event
	out  sink
	cb   func()
	seen map[int64]bool
}

func takesInterface(v any) {}

func takesPointer(p *event) {}

// step is the per-event inner loop.
//
//repro:hotpath
func (e *engine) step(ev event) {
	takesPointer(&ev)
	takesInterface(&ev)
	takesInterface(ev) // want `boxes a .*\.event into interface`
	if ev.seq < 0 {
		panic(fmt.Sprintf("hot: negative seq %d", ev.seq)) // fmt inside panic is exempt
	}
	fmt.Printf("stepping %d\n", ev.seq) // want `fmt.Printf on a //repro:hotpath function allocates`
	for i := range e.heap {
		tmp := make([]event, 0, 4) // want `make inside a hot-path loop allocates per iteration`
		_ = tmp
		m := map[int64]bool{ev.seq: true} // want `map literal allocated on every loop iteration`
		_ = m
		_ = i
	}
	e.cb = func() { e.release(ev.seq) } // want `closure captures "e"`
}

// release is hot but clean: no closures, no boxing, no fmt.
//
//repro:hotpath
func (e *engine) release(seq int64) {
	delete(e.seen, seq)
}

// coldPath does all the same things without the annotation; hotlint must
// stay silent here.
func (e *engine) coldPath(ev event) {
	takesInterface(ev)
	fmt.Printf("cold %d\n", ev.seq)
	e.cb = func() { e.release(ev.seq) }
}
