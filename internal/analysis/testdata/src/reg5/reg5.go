// Package reg5 is the registrylint fixture for the messages-as-function
// idiom (Descriptor.Messages populated by a package-local call, as the
// ablation descriptors do): coverage is complete, so the run is clean.
package reg5

import "repro/internal/analysis/testdata/src/protostub"

type Ping struct{}

func messages() []protostub.Message {
	return []protostub.Message{Ping{}}
}

func Descriptor() protostub.Descriptor {
	return protostub.Descriptor{
		Name:     "reg5",
		New:      func() any { return nil },
		Messages: messages(),
	}
}

func handle(m protostub.Message) {
	switch m.(type) {
	case Ping:
	}
}
