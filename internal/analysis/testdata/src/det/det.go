// Package det is the detlint fixture. The test loads it under a pretend
// import path inside repro/internal/sim so the analyzer treats it as
// determinism-sensitive. Each // want comment pins one diagnostic.
package det

import (
	"math/rand"
	"sort"
	"time"
)

type state struct {
	best    string
	applied map[string]int
}

type env struct{}

func (env) Send(to int, m any)    {}
func (env) Deliver(to int, m any) {}

func wallClock() time.Duration {
	t := time.Now()         // want `time.Now reads the wall clock`
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
	return time.Since(t)    // want `time.Since reads the wall clock`
}

func durationArithmeticIsFine(d time.Duration) time.Duration {
	return d * 3 / 2
}

func globalRand() int {
	return rand.Intn(6) // want `global rand.Intn draws from the process-wide source`
}

func seededRandIsFine(rng *rand.Rand) int {
	_ = rand.New(rand.NewSource(1))
	return rng.Intn(6)
}

func sendPerKey(e env, peers map[int]string) {
	for to := range peers {
		e.Send(to, "hello") // want `calls Send per key`
	}
}

func assignOuter(s *state, estimates map[int]string) {
	for _, est := range estimates {
		if est > s.best {
			s.best = est // want `writes s.best \(state outside the loop\)`
		}
	}
}

func assignOuterLocal(votes map[int]int) int {
	winner := -1
	for _, v := range votes {
		winner = v // want `assigns "winner" \(declared outside the loop\)`
	}
	return winner
}

func returnPerKey(m map[int]string) string {
	for _, v := range m {
		return v // want `returns a value chosen by the iteration`
	}
	return ""
}

func countingIsFine(votes map[int]string) map[string]int {
	counts := make(map[string]int)
	total := 0
	for _, v := range votes {
		counts[v]++
		total += 1
	}
	_ = total
	return counts
}

func sortedKeysAreFine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to "keys" \(declared outside the loop, not sorted afterwards\)`
	}
	return keys
}

func foundFlagIsFine(m map[string]int, needle string) bool {
	found := false
	for k := range m {
		if k == needle {
			found = true
			break
		}
	}
	return found
}

func breakWhileAccumulating(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
		if total > 100 {
			break // want `breaks out of an accumulating iteration`
		}
	}
	return total
}

func suppressed() time.Time {
	//repro:allow detlint fixture exercises the suppression path
	return time.Now()
}

func suppressedTrailing() time.Time {
	return time.Now() //repro:allow detlint fixture exercises trailing suppression
}
