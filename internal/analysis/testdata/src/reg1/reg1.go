// Package reg1 is the registrylint fixture for Messages completeness: the
// handler switches on one type the descriptor does not list.
package reg1

import "repro/internal/analysis/testdata/src/protostub"

type Ping struct{}
type Pong struct{}
type Stray struct{}

func Descriptor() protostub.Descriptor {
	return protostub.Descriptor{
		Name:     "reg1",
		New:      func() any { return nil },
		Messages: []protostub.Message{Ping{}, Pong{}},
	}
}

func handle(m protostub.Message) {
	switch m.(type) {
	case nil:
	case Ping:
	case Pong:
	case Stray: // want `handler switches on reg1.Stray but no Descriptor.Messages entry lists it`
	}
}
