// Package protostub is a fixture stand-in for internal/protocol and the
// consensus Message interface, so registrylint fixtures type-check in
// isolation. registrylint matches both types by the "/protostub" path
// suffix.
package protostub

// Message mirrors consensus.Message.
type Message any

// Descriptor mirrors the registry fields registrylint inspects.
type Descriptor struct {
	Name     string
	Doc      string
	New      func() any
	Messages []Message
	Hidden   bool
}
