// Package storestub is a fixture stand-in for internal/storage, so keylint
// fixtures type-check in isolation. keylint matches it by the "/storestub"
// path suffix: its Store interface and Key* constants play the registry.
package storestub

// Registry stand-ins.
const (
	KeyGoodPrefix = "good/"
	KeyExact      = "exact-key"
)

// Store mirrors storage.Store.
type Store interface {
	Put(key string, value any) error
	Get(key string, out any) (bool, error)
	Delete(key string) error
	Keys() ([]string, error)
}
