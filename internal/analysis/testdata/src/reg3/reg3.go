// Package reg3 is the registrylint fixture for a core protocol package that
// handles consensus messages but never publishes a descriptor. The test
// mounts it under a pretend repro/internal/core/... path.
package reg3 // want `package handles consensus messages but publishes no protocol.Descriptor`

import "repro/internal/analysis/testdata/src/protostub"

type Req struct{}

func handle(m protostub.Message) {
	switch m.(type) {
	case Req:
	}
}
