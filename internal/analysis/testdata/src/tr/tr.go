// Package tr is the tracelint fixture: slow-path collector calls reachable
// from //repro:hotpath roots, including through intra-package helpers.
package tr

import "repro/internal/analysis/testdata/src/tracestub"

type router struct {
	c      *tracestub.Collector
	sentID int
}

// route is the hot root.
//
//repro:hotpath
func (r *router) route(msg string) {
	r.c.SentID(r.sentID) // fast path: fine
	r.c.MessageSent(msg) // want `c.MessageSent is the mutexed string-keyed slow path, called from \*router.route; use Intern \+ SentID`
	r.helper(msg)
	r.logDrop(msg)
}

// helper is not annotated but is reachable from route.
func (r *router) helper(msg string) {
	r.c.ObserveLatency("hop", 1) // want `called from \*router.helper \(reachable from //repro:hotpath \*router.route\); use InternHist \+ ObserveHistID`
}

// logDrop is reachable too; Emit and Logf are both slow.
func (r *router) logDrop(msg string) {
	r.c.Emit("drop", 1) // want `c.Emit is the mutexed string-keyed slow path`
}

// report is NOT reachable from any hot root; the slow path is fine here.
func (r *router) report() {
	r.c.MessageDelivered("final")
	r.c.Logf("done %s", "x")
}
