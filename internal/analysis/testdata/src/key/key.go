// Package key is the keylint fixture: every Store.Put key must resolve to
// a prefix declared in the storestub registry — through consts, local
// aliases, concatenation, Sprintf formats, and single-return helpers — and
// unresolvable keys are diagnostics unless an //repro:allow covers them.
package key

import (
	"fmt"
	"strconv"

	"repro/internal/analysis/testdata/src/storestub"
)

const localGood = storestub.KeyGoodPrefix

const rogue = "rogue-"

func slotKey(n int64) string { return storestub.KeyGoodPrefix + strconv.FormatInt(n, 10) }

func rogueKey(n int64) string { return rogue + strconv.FormatInt(n, 10) }

func writes(st storestub.Store, n int64, name string) {
	_ = st.Put(storestub.KeyExact, 1)
	_ = st.Put(storestub.KeyGoodPrefix+name, 1)
	_ = st.Put(localGood+"x", 1)
	_ = st.Put(slotKey(n), 1)
	_ = st.Put(fmt.Sprintf("good/%d", n), 1)
	_ = st.Put("undeclared", 1)             // want `Store\.Put key "undeclared" starts with no prefix declared`
	_ = st.Put(rogueKey(n), 1)              // want `Store\.Put key "rogue-" starts with no prefix declared`
	_ = st.Put(fmt.Sprintf("bad-%d", n), 1) // want `Store\.Put key "bad-" starts with no prefix declared`
	_ = st.Put(name, 1)                     // want `cannot determine the key prefix name passes to Store\.Put`
	//repro:allow keylint fixture: forwarding wrapper under a registered namespace
	_ = st.Put(name+"x", 1)
}

// bag has a Put too, but does not implement the Store interface — keylint
// must not rule on it.
type bag map[string]int

func (b bag) Put(key string, v int) error {
	b[key] = v
	return nil
}

func fill(b bag) {
	_ = b.Put("whatever", 1)
}
