// Package reg4 is the registrylint fixture for a descriptor with a
// constructor but no Messages list.
package reg4

import "repro/internal/analysis/testdata/src/protostub"

var D = protostub.Descriptor{ // want `descriptor "d" has a constructor but no Messages list`
	Name: "d",
	New:  func() any { return nil },
}
