// Package tracestub is a fixture stand-in for internal/trace: a Collector
// exposing both the mutexed string-keyed slow path and the interned dense
// fast path, so tracelint fixtures type-check without dragging in the real
// collector. tracelint matches the type by the "/tracestub" path suffix.
package tracestub

// Collector mirrors the two write APIs of trace.Collector.
type Collector struct {
	counts []int64
}

// Slow path (string-keyed, mutexed in the real collector).

func (c *Collector) MessageSent(name string)             {}
func (c *Collector) MessageDelivered(name string)        {}
func (c *Collector) MessageDropped(name string)          {}
func (c *Collector) ObserveLatency(name string, v int64) {}
func (c *Collector) ObserveValue(name string, v int64)   {}
func (c *Collector) Emit(kind string, v int64)           {}
func (c *Collector) Logf(format string, args ...any)     {}

// Fast path (interned dense IDs).

func (c *Collector) Intern(name string) int {
	c.counts = append(c.counts, 0)
	return len(c.counts) - 1
}
func (c *Collector) SentID(id int)      { c.counts[id]++ }
func (c *Collector) DeliveredID(id int) { c.counts[id]++ }
func (c *Collector) DroppedID(id int)   { c.counts[id]++ }
