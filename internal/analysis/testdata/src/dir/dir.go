// Package dir is the fixture for malformed //repro: directives; the test
// pins the expected "directive" pseudo-analyzer diagnostics by line.
package dir

//repro:allow detlint

func missingReason() {}

//repro:allow fmtlint the analyzer does not exist

func unknownAnalyzer() {}

//repro:hotpath
var notAFunction int

//repro:frobnicate

func unknownDirective() {}

// wellFormed carries valid directives; no diagnostics.
//
//repro:hotpath
func wellFormed() {
	//repro:allow detlint fixture reason
	_ = notAFunction
}
