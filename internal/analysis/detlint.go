package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detlint enforces simulator determinism at the source level in the
// packages whose behavior the schedule goldens pin: no wall-clock reads, no
// global math/rand draws, and no order-sensitive iteration over maps.
//
// The map rule is the sharp one — it is exactly the class of bug PR 6 fixed
// in roundbased's estimate tie-break, which shipped in the seed and
// survived five PRs. A `range` over a map is flagged when its body does
// something whose outcome depends on iteration order: sending or emitting
// per key, appending to a slice that outlives the loop, writing protocol
// state, returning, or breaking. Order-insensitive bodies (counting into
// another map, commutative accumulation, deletes, appends the code sorts
// immediately afterwards) pass silently.
var Detlint = &Analyzer{
	Name:    "detlint",
	Doc:     "wall-clock, global rand, and order-sensitive map iteration in determinism-sensitive packages",
	Applies: detSensitive,
	Run:     runDetlint,
}

// detSensitive lists the packages whose code must be a pure function of
// (seed, parameters): the simulator substrate, the protocol cores and their
// sim-side machinery, and the engines that aggregate their reports.
func detSensitive(path string) bool {
	switch trimFixture(path) {
	case "repro/internal/sim", "repro/internal/simnet", "repro/internal/trace",
		"repro/internal/harness", "repro/internal/scenario", "repro/internal/rsm",
		"repro/internal/adversary", "repro/internal/leader", "repro/internal/oracle",
		"repro/internal/clock", "repro/internal/experiments":
		return true
	}
	return strings.HasPrefix(trimFixture(path), "repro/internal/core/")
}

// trimFixture lets testdata packages masquerade as the path their fixture
// declares (the loader mounts them at "<real path>/<fixture name>").
func trimFixture(path string) string {
	if i := strings.Index(path, "/testdata/"); i >= 0 {
		return path[:i]
	}
	return path
}

// wallClockFuncs are the time package functions that read or wait on the
// host clock. time.Duration arithmetic and constants are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandExempt are the math/rand package-level constructors that build
// seeded sources — the only legitimate global entry points here.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDetlint(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(p, n)
			case *ast.RangeStmt:
				// Map ranges are checked from their enclosing block so the
				// sorted-afterwards heuristic can see the following
				// statements; blocks are visited below.
			case *ast.BlockStmt:
				for i, stmt := range n.List {
					if rs, ok := stmt.(*ast.RangeStmt); ok {
						checkMapRange(p, rs, n.List[i+1:])
					}
				}
			case *ast.CaseClause:
				for i, stmt := range n.Body {
					if rs, ok := stmt.(*ast.RangeStmt); ok {
						checkMapRange(p, rs, n.Body[i+1:])
					}
				}
			}
			return true
		})
	}
}

// checkDetCall flags wall-clock reads and global math/rand draws.
func checkDetCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. *rand.Rand.Intn, engine.Now) are fine
	}
	switch funcPkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "time.%s reads the wall clock; simulated code must use the engine's virtual clock (env.Now)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandExempt[fn.Name()] {
			p.Reportf(call.Pos(), "global rand.%s draws from the process-wide source; use the engine's seeded *rand.Rand (env.Rand)", fn.Name())
		}
	}
}

// mapRangeViolation is one order-sensitive operation found in a map-range
// body.
type mapRangeViolation struct {
	pos  token.Pos
	what string
}

// orderSensitiveCalls are method names whose invocation inside a map range
// makes the schedule, the trace, or a report depend on iteration order:
// messaging and timers, trace emission, and incremental report writers.
var orderSensitiveCalls = map[string]bool{
	// messaging / protocol actions
	"Send": true, "Broadcast": true, "Inject": true, "Decide": true,
	"SetTimer": true, "CancelTimer": true, "Schedule": true, "After": true,
	"ScheduleDelivery": true,
	// trace emission
	"Emit": true, "Logf": true, "Span": true, "ObserveLatency": true,
	"ObserveValue": true, "ObserveHistID": true, "SentID": true,
	"DeliveredID": true, "DroppedID": true, "MessageSent": true,
	"MessageDelivered": true, "MessageDropped": true, "Observe": true,
	// incremental report/stream writers
	"Fprintf": true, "Fprintln": true, "Fprint": true, "Printf": true,
	"Println": true, "Print": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Write": true,
}

// checkMapRange flags a range over a map whose body is order-sensitive.
// following holds the statements after the range in its enclosing block,
// for the sorted-immediately-after exemption.
func checkMapRange(p *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	t := p.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	v := findMapRangeViolation(p, rs, following)
	if v == nil {
		return
	}
	p.Reportf(v.pos, "range over map %s: %s, so the result depends on map iteration order; sort the keys first, or annotate //repro:allow detlint <why safe>",
		exprString(rs.X), v.what)
}

// mapRangeEffects summarizes a map-range body for the order-sensitivity
// classification.
type mapRangeEffects struct {
	// constOnly holds outer variables whose every plain assignment in the
	// body stores the same compile-time constant (the `found = true` idiom).
	// Such assignments are idempotent, so neither they nor an early break
	// make the result order-sensitive.
	constOnly map[types.Object]bool
	// cumulative reports whether the body accumulates across iterations
	// (counters, compound assigns, indexed writes, appends, deletes). An
	// early break then leaves a partial accumulation whose contents depend
	// on which keys were visited first.
	cumulative bool
}

// analyzeMapRangeEffects pre-scans the body; see mapRangeEffects.
func analyzeMapRangeEffects(p *Pass, rs *ast.RangeStmt) mapRangeEffects {
	eff := mapRangeEffects{constOnly: make(map[types.Object]bool)}
	constVals := make(map[types.Object]string)
	poisoned := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			eff.cumulative = true
		case *ast.CallExpr:
			if isBuiltinCall(p, n, "delete") || isBuiltinCall(p, n, "append") {
				eff.cumulative = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			if n.Tok != token.ASSIGN {
				eff.cumulative = true
				return true
			}
			for i, lhs := range n.Lhs {
				lhs := ast.Unparen(lhs)
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					eff.cumulative = true
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.ObjectOf(id)
				if obj == nil || declaredWithin(obj, rs) {
					continue
				}
				val := ""
				if len(n.Lhs) == len(n.Rhs) {
					if tv, ok := p.Pkg.Info.Types[n.Rhs[i]]; ok && tv.Value != nil {
						val = tv.Value.ExactString()
					}
				}
				if val == "" || (constVals[obj] != "" && constVals[obj] != val) {
					poisoned[obj] = true
					continue
				}
				constVals[obj] = val
			}
		}
		return true
	})
	for obj := range constVals {
		if !poisoned[obj] {
			eff.constOnly[obj] = true
		}
	}
	return eff
}

// findMapRangeViolation scans the loop body for the first order-sensitive
// operation. It recurses manually so that break-binding is tracked: a break
// inside a nested switch or loop does not abort the map iteration.
func findMapRangeViolation(p *Pass, rs *ast.RangeStmt, following []ast.Stmt) *mapRangeViolation {
	eff := analyzeMapRangeEffects(p, rs)
	var found *mapRangeViolation
	report := func(pos token.Pos, format string, args ...any) {
		if found == nil {
			found = &mapRangeViolation{pos: pos, what: fmt.Sprintf(format, args...)}
		}
	}

	var walk func(n ast.Node, breakBindsHere bool)
	walkStmts := func(list []ast.Stmt, breakBindsHere bool) {
		for _, s := range list {
			walk(s, breakBindsHere)
		}
	}
	walk = func(n ast.Node, breakBindsHere bool) {
		if n == nil || found != nil {
			return
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			// A break is harmless in a pure scan (idempotent effects only):
			// skipping the remaining keys cannot change the outcome. It is
			// order-sensitive the moment the body accumulates anything.
			if n.Tok == token.BREAK && n.Label == nil && breakBindsHere && eff.cumulative {
				report(n.Pos(), "breaks out of an accumulating iteration (the partial result depends on which keys ran)")
			}
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				report(n.Pos(), "returns a value chosen by the iteration")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rs, n, following, eff, report)
			for _, rhs := range n.Rhs {
				walk(rhs, false)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(p, n); fn != nil && orderSensitiveCalls[fn.Name()] {
				report(n.Pos(), "calls %s per key", fn.Name())
			}
			for _, a := range n.Args {
				walk(a, false)
			}
			walk(n.Fun, false)
		case *ast.ForStmt:
			walk(n.Init, false)
			walk(n.Cond, false)
			walk(n.Post, false)
			walkStmts(n.Body.List, false)
		case *ast.RangeStmt:
			walk(n.X, false)
			walkStmts(n.Body.List, false)
		case *ast.SwitchStmt:
			walk(n.Init, false)
			walk(n.Tag, false)
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, false)
				}
			}
		case *ast.TypeSwitchStmt:
			walk(n.Init, false)
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, false)
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body, false)
				}
			}
		case *ast.IfStmt:
			walk(n.Init, breakBindsHere)
			walk(n.Cond, false)
			walkStmts(n.Body.List, breakBindsHere)
			walk(n.Else, breakBindsHere)
		case *ast.BlockStmt:
			walkStmts(n.List, breakBindsHere)
		case *ast.ExprStmt:
			walk(n.X, false)
		case *ast.IncDecStmt:
			// Commutative; fine.
		case *ast.DeferStmt, *ast.GoStmt:
			report(n.Pos(), "launches deferred/concurrent work per key")
		case *ast.FuncLit:
			// A closure's body runs later; analyzing it here would
			// misattribute order-sensitivity. The closure itself being
			// created per key is fine.
		case ast.Expr:
			ast.Inspect(n, func(sub ast.Node) bool {
				if call, ok := sub.(*ast.CallExpr); ok && found == nil {
					if fn := calleeFunc(p, call); fn != nil && orderSensitiveCalls[fn.Name()] {
						report(call.Pos(), "calls %s per key", fn.Name())
					}
				}
				return found == nil
			})
		default:
			// Other statements (decl, labeled, send): inspect generically.
			ast.Inspect(n, func(sub ast.Node) bool {
				if sub == n {
					return true
				}
				walk(sub, false)
				return false
			})
		}
	}
	walkStmts(rs.Body.List, true)
	return found
}

// checkMapRangeAssign classifies one assignment inside a map-range body.
func checkMapRangeAssign(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, following []ast.Stmt, eff mapRangeEffects, report func(token.Pos, string, ...any)) {
	switch as.Tok {
	case token.DEFINE:
		return // new variables scoped to the body
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return // commutative accumulation
	}
	for i, lhs := range as.Lhs {
		lhs := ast.Unparen(lhs)
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := p.ObjectOf(lhs)
			if obj == nil || declaredWithin(obj, rs) {
				continue
			}
			if eff.constOnly[obj] {
				continue // only ever set to one constant; idempotent
			}
			// x = append(x, ...) sorted right after the loop is the
			// canonical deterministic key-extraction idiom.
			if i < len(as.Rhs) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && isBuiltinCall(p, call, "append") {
					if sortedAfter(p, obj, following) {
						continue
					}
					report(as.Pos(), "appends to %q (declared outside the loop, not sorted afterwards)", lhs.Name)
					continue
				}
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// Multi-assign from one call: treat like plain overwrite.
				report(as.Pos(), "assigns %q (declared outside the loop)", lhs.Name)
				continue
			}
			report(as.Pos(), "assigns %q (declared outside the loop)", lhs.Name)
		case *ast.IndexExpr:
			if t := p.TypeOf(lhs.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					continue // map writes are set-semantics, order-free
				}
			}
			if mentionsLoopVar(p, lhs.Index, rs) {
				continue // slice[key-derived index]: each key hits its own slot
			}
			report(as.Pos(), "writes %s at a loop-independent index", exprString(lhs))
		case *ast.SelectorExpr, *ast.StarExpr:
			report(as.Pos(), "writes %s (state outside the loop)", exprString(lhs.(ast.Expr)))
		}
	}
}

// mentionsLoopVar reports whether the expression uses the range statement's
// key or value variable.
func mentionsLoopVar(p *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	loopObjs := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && v != nil {
			if obj := p.ObjectOf(id); obj != nil {
				loopObjs[obj] = true
			}
		}
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if loopObjs[p.ObjectOf(id)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether one of the next few statements after the
// range loop sorts the slice the loop appended to (sort.Strings(keys),
// sort.Slice(keys, ...), slices.Sort(keys), ...).
func sortedAfter(p *Pass, obj types.Object, following []ast.Stmt) bool {
	limit := 3
	if len(following) < limit {
		limit = len(following)
	}
	for _, stmt := range following[:limit] {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil {
				return true
			}
			pkg := funcPkgPath(fn)
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.ObjectOf(id) == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
