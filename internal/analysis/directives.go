package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces all analysis directives.
const directivePrefix = "//repro:"

// allowKey addresses one suppressed (file, line) pair.
type allowKey struct {
	file string
	line int
}

// parseDirectives scans every comment for //repro: directives, populating
// the package's hot-function and suppression tables. Malformed directives
// become diagnostics under the pseudo-analyzer "directive" — a suppression
// that silently failed to parse would otherwise look like a clean run.
func (p *Package) parseDirectives() {
	p.hot = make(map[*ast.FuncDecl]bool)
	p.allows = make(map[string]map[allowKey]bool)

	for _, f := range p.Files {
		// Hot-path marks live in function doc comments.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == "//repro:hotpath" || strings.HasPrefix(c.Text, "//repro:hotpath ") {
					p.hot[fd] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				p.parseDirective(c, text)
			}
		}
	}
}

// parseDirective handles one //repro:... comment.
func (p *Package) parseDirective(c *ast.Comment, text string) {
	fields := strings.Fields(strings.TrimPrefix(text, "//repro:"))
	pos := p.Fset.Position(c.Pos())
	bad := func(format string, args ...any) {
		p.badDirectives = append(p.badDirectives, Diagnostic{
			Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...),
		})
	}
	if len(fields) == 0 {
		bad("empty //repro: directive")
		return
	}
	switch fields[0] {
	case "hotpath":
		if !p.isHotpathDoc(c) {
			bad("//repro:hotpath must appear in a function's doc comment")
		}
	case "allow":
		if len(fields) < 2 {
			bad("//repro:allow needs an analyzer name and a reason")
			return
		}
		name := fields[1]
		if !analyzerNames()[name] {
			bad("//repro:allow names unknown analyzer %q", name)
			return
		}
		if len(fields) < 3 {
			bad("//repro:allow %s needs a reason (say why the site is safe)", name)
			return
		}
		if p.allows[name] == nil {
			p.allows[name] = make(map[allowKey]bool)
		}
		// The directive covers its own line, and — when it stands alone on
		// the line — the next line too, so it can sit above the flagged
		// statement without disturbing it.
		p.allows[name][allowKey{pos.Filename, pos.Line}] = true
		if !p.hasCodeBefore(pos) {
			p.allows[name][allowKey{pos.Filename, pos.Line + 1}] = true
		}
	default:
		bad("unknown directive //repro:%s", fields[0])
	}
}

// isHotpathDoc reports whether the comment belongs to some function's doc
// group (parseDirectives already recorded the mark; this validates stray
// //repro:hotpath comments elsewhere in the file).
func (p *Package) isHotpathDoc(c *ast.Comment) bool {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, dc := range fd.Doc.List {
				if dc == c {
					return true
				}
			}
		}
	}
	return false
}

// hasCodeBefore reports whether any non-whitespace source precedes the
// position on its line — i.e. the directive trails a statement rather than
// standing alone.
func (p *Package) hasCodeBefore(pos token.Position) bool {
	src, ok := p.src[pos.Filename]
	if !ok {
		return false
	}
	// Column is 1-based; Offset points at the comment's first byte.
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) != ""
}

// allowed reports whether an //repro:allow directive for the analyzer
// covers the diagnostic's line.
func (p *Package) allowed(analyzer string, pos token.Position) bool {
	return p.allows[analyzer][allowKey{pos.Filename, pos.Line}]
}
