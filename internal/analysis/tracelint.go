package analysis

import (
	"go/ast"
	"go/types"
)

// Tracelint keeps the mutexed, string-keyed trace.Collector slow path off
// the simulator's hot path. The collector has two write APIs: the interned
// dense-ID fast path (Intern/SentID/DeliveredID/DroppedID, InternHist/
// ObserveHistID) the single-threaded simulator uses, and the lock-and-map
// slow path (MessageSent/MessageDelivered/MessageDropped, ObserveLatency/
// ObserveValue, Emit, Logf) that exists for the concurrent live runtime.
// Any function reachable from a //repro:hotpath root through static calls
// in its package must use the former.
var Tracelint = &Analyzer{
	Name: "tracelint",
	Doc:  "mutexed string-keyed trace.Collector calls reachable from //repro:hotpath functions",
	Run:  runTracelint,
}

// slowCollectorMethods is the mutexed string-keyed API: each call locks the
// collector and hashes a string key (or formats, for Logf) per event.
var slowCollectorMethods = map[string]string{
	"MessageSent":      "Intern + SentID",
	"MessageDelivered": "Intern + DeliveredID",
	"MessageDropped":   "Intern + DroppedID",
	"ObserveLatency":   "InternHist + ObserveHistID",
	"ObserveValue":     "InternHist + ObserveHistID",
	"Emit":             "an interned counter or a post-run read",
	"Logf":             "nothing (hot paths do not log)",
}

// collectorPkg is the package defining the Collector the rule is about.
// Fixture packages under testdata provide their own Collector type; the
// suffix match lets them exercise the analyzer without importing the real
// trace package's whole dependency tree.
func isCollector(t types.Type) bool {
	return namedType(t, "repro/internal/trace", "Collector") ||
		namedTypeSuffix(t, "/tracestub", "Collector")
}

// namedTypeSuffix matches a named type by package-path suffix (testdata
// support; see isCollector).
func namedTypeSuffix(t types.Type, pathSuffix, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && name == obj.Name() && hasSuffix(obj.Pkg().Path(), pathSuffix)
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func runTracelint(p *Pass) {
	roots := p.Pkg.HotFuncs()
	if len(roots) == 0 {
		return
	}
	// Map every package function object to its declaration, for static
	// call-graph edges.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	// BFS from the hot roots over static intra-package calls, remembering
	// which root reaches each function for the diagnostic.
	rootOf := make(map[*ast.FuncDecl]string)
	var queue []*ast.FuncDecl
	for _, fd := range roots {
		if _, seen := rootOf[fd]; !seen {
			rootOf[fd] = funcDisplayName(fd)
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil {
			continue
		}
		root := rootOf[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkTraceCall(p, call, fd, root)
			fn := calleeFunc(p, call)
			if fn == nil {
				return true
			}
			if callee, ok := decls[fn]; ok {
				if _, seen := rootOf[callee]; !seen {
					rootOf[callee] = root
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
}

// checkTraceCall flags one slow-path collector call in a hot-reachable
// function.
func checkTraceCall(p *Pass, call *ast.CallExpr, fd *ast.FuncDecl, root string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	alt, slow := slowCollectorMethods[sel.Sel.Name]
	if !slow {
		return
	}
	if !isCollector(p.TypeOf(sel.X)) {
		return
	}
	where := funcDisplayName(fd)
	via := ""
	if where != root {
		via = " (reachable from //repro:hotpath " + root + ")"
	}
	p.Reportf(call.Pos(), "%s.%s is the mutexed string-keyed slow path, called from %s%s; use %s",
		exprString(sel.X), sel.Sel.Name, where, via, alt)
}
