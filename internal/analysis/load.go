package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module loads and type-checks the packages of one Go module from source.
// Module-internal imports are resolved by mapping import paths onto
// directories under Root; everything else (the standard library) is
// delegated to the compiler-independent source importer, so the loader
// works offline with no toolchain export data and no external packages.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path from the go.mod module line.
	Path string
	// Fset is shared by every package the module loads (positions from
	// different packages stay comparable).
	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package
	// loading guards against import cycles (invalid Go, but a cycle must
	// produce an error, not a stack overflow).
	loading map[string]bool
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the owning module's file set.
	Fset *token.FileSet
	// Files is the parsed syntax of the non-test sources, file-name order.
	Files []*ast.File
	// Types is the type-checked package object (present even when
	// TypeErrors is non-empty; analysis degrades to the resolvable parts).
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-checking problems without aborting the load.
	TypeErrors []error

	// src holds each file's bytes (directive parsing needs line context).
	src map[string][]byte

	hot           map[*ast.FuncDecl]bool
	allows        map[string]map[allowKey]bool
	badDirectives []Diagnostic
}

// IsHot reports whether the function carries a //repro:hotpath directive.
func (p *Package) IsHot(fd *ast.FuncDecl) bool { return p.hot[fd] }

// Sources returns the raw bytes of each loaded file, keyed by the file name
// positions resolve to (fixture tests scan them for expectations).
func (p *Package) Sources() map[string][]byte { return p.src }

// HotFuncs returns the //repro:hotpath functions in source order.
func (p *Package) HotFuncs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && p.hot[fd] {
				out = append(out, fd)
			}
		}
	}
	return out
}

// LoadModule prepares a loader rooted at the directory containing go.mod.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", abs, err)
	}
	path := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	m := &Module{
		Root:    abs,
		Path:    path,
		Fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom)
	return m, nil
}

// PackageDirs walks the module and returns the import paths of every
// directory holding non-test Go sources, sorted. testdata, hidden, and
// underscore-prefixed directories are skipped, as the go tool does.
func (m *Module) PackageDirs() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSources(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(m.Root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, m.Path)
		} else {
			paths = append(paths, m.Path+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// goSources lists the directory's non-test .go files, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// dirFor maps a module-internal import path onto its source directory.
func (m *Module) dirFor(importPath string) (string, bool) {
	if importPath == m.Path {
		return m.Root, true
	}
	if rest, ok := strings.CutPrefix(importPath, m.Path+"/"); ok {
		return filepath.Join(m.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Package loads (or returns the cached) package for an import path inside
// the module.
func (m *Module) Package(importPath string) (*Package, error) {
	if p, ok := m.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := m.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is not inside module %q", importPath, m.Path)
	}
	return m.PackageAt(dir, importPath)
}

// PackageAt loads and type-checks the sources in dir under the given import
// path. Fixture tests use it to analyze testdata packages as if they lived
// at an arbitrary path (analyzer scoping is path-based).
func (m *Module) PackageAt(dir, importPath string) (*Package, error) {
	if p, ok := m.pkgs[importPath]; ok {
		return p, nil
	}
	if m.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	m.loading[importPath] = true
	defer delete(m.loading, importPath)

	files, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	pkg := &Package{
		Path: importPath,
		Dir:  dir,
		Fset: m.Fset,
		src:  make(map[string][]byte),
	}
	for _, fname := range files {
		data, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(m.Fset, fname, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.src[fname] = data
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the first error too; TypeErrors already has it.
	pkg.Types, _ = conf.Check(importPath, m.Fset, pkg.Files, pkg.Info)
	pkg.parseDirectives()
	m.pkgs[importPath] = pkg
	return pkg, nil
}

// moduleImporter adapts Module to types.ImporterFrom: module-internal
// paths are loaded from source through the module cache, everything else
// goes to the standard library source importer.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	m := (*Module)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := m.dirFor(path); ok {
		pkg, err := m.Package(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}
