package analysis

import (
	"go/ast"
	"go/types"
)

// Hotlint checks functions annotated //repro:hotpath — the simulator's
// per-event/per-message inner loop — for the allocation patterns that
// AllocsPerRun regression tests catch only after the fact and without a
// source location: closures that capture state, values boxed into
// interfaces, fmt calls, and map/slice allocation inside loops.
//
// fmt calls whose result only feeds panic are exempt: a panic path runs
// zero times per event, and the engine's invariant panics are deliberate.
var Hotlint = &Analyzer{
	Name: "hotlint",
	Doc:  "closures, interface boxing, fmt, and per-iteration allocation in //repro:hotpath functions",
	Run:  runHotlint,
}

func runHotlint(p *Pass) {
	for _, fd := range p.Pkg.HotFuncs() {
		if fd.Body == nil {
			continue
		}
		checkHotFunc(p, fd)
	}
}

// checkHotFunc walks one hot function, tracking loop depth and whether the
// current subtree only feeds a panic.
func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, loopDepth int, inPanic bool)
	walk = func(n ast.Node, loopDepth int, inPanic bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walk(n.Init, loopDepth, inPanic)
			walk(n.Cond, loopDepth, inPanic)
			walk(n.Post, loopDepth+1, inPanic)
			walk(n.Body, loopDepth+1, inPanic)
			return
		case *ast.RangeStmt:
			walk(n.X, loopDepth, inPanic)
			walk(n.Body, loopDepth+1, inPanic)
			return
		case *ast.CallExpr:
			if isBuiltinCall(p, n, "panic") {
				for _, a := range n.Args {
					walk(a, loopDepth, true)
				}
				return
			}
			checkHotCall(p, n, loopDepth, inPanic)
		case *ast.FuncLit:
			if !inPanic {
				reportClosureCaptures(p, fd, n)
			}
			// The literal's body is not part of the hot function's own
			// execution; it runs whenever the closure is invoked. Its cost
			// is attributed to whoever calls it.
			return
		case *ast.CompositeLit:
			if loopDepth > 0 && !inPanic {
				if t := p.TypeOf(n); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						p.Reportf(n.Pos(), "map literal allocated on every loop iteration of hot path %s; hoist it out of the loop", funcDisplayName(fd))
					case *types.Slice:
						p.Reportf(n.Pos(), "slice literal allocated on every loop iteration of hot path %s; hoist it out of the loop", funcDisplayName(fd))
					}
				}
			}
		}
		// Generic recursion over children.
		ast.Inspect(n, func(sub ast.Node) bool {
			if sub == nil || sub == n {
				return sub == n
			}
			walk(sub, loopDepth, inPanic)
			return false
		})
	}
	walk(fd.Body, 0, false)
}

// checkHotCall flags fmt calls, make(map/slice) in loops, and arguments
// boxed into interface parameters.
func checkHotCall(p *Pass, call *ast.CallExpr, loopDepth int, inPanic bool) {
	if inPanic {
		return
	}
	if fn := calleeFunc(p, call); fn != nil && funcPkgPath(fn) == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s on a //repro:hotpath function allocates and reflects; format off the hot path (or gate it behind a disabled-by-default debug flag)", fn.Name())
		return
	}
	if loopDepth > 0 && isBuiltinCall(p, call, "make") && len(call.Args) > 0 {
		if t := p.TypeOf(call.Args[0]); t != nil {
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice, *types.Chan:
				p.Reportf(call.Pos(), "make inside a hot-path loop allocates per iteration; hoist or pool it")
			}
		}
	}
	checkBoxing(p, call)
}

// checkBoxing flags call arguments whose concrete, non-pointer-shaped
// values are converted to interface parameters — each such conversion heap-
// allocates a copy on every call.
func checkBoxing(p *Pass, call *ast.CallExpr) {
	sig, ok := typeAsSignature(p.TypeOf(call.Fun))
	if !ok {
		return // builtin, conversion, or unresolved
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				paramType = params.At(params.Len() - 1).Type() // slice passed whole
			} else {
				paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !isInterface(paramType) {
			continue
		}
		argType := p.TypeOf(arg)
		if argType == nil || isInterface(argType) || pointerShaped(argType) {
			continue
		}
		if b, ok := argType.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.Reportf(arg.Pos(), "argument %s boxes a %s into interface %s (allocates per call on a //repro:hotpath function)",
			exprString(arg), argType.String(), paramType.String())
	}
}

// typeAsSignature unwraps a callee type to its signature, if it has one.
func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// reportClosureCaptures flags a func literal in a hot function when it
// captures variables from the enclosing scope (a capturing closure
// allocates its context, and usually the func value too, per execution).
func reportClosureCaptures(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		obj := p.Pkg.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Captured = declared in the enclosing function but outside the
		// literal (parameters and receiver included).
		if declaredWithin(obj, fd) && !declaredWithin(obj, lit) {
			captured = v.Name()
		}
		return captured == ""
	})
	if captured != "" {
		p.Reportf(lit.Pos(), "closure captures %q in //repro:hotpath function %s; hot paths must be closure-free (pool the callback or use the delivery-sink pattern)",
			captured, funcDisplayName(fd))
	}
}
