package analysis_test

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loadFixture loads one testdata package under a pretend import path (the
// analyzers scope themselves by path, so fixtures masquerade as the package
// they exercise).
func loadFixture(t *testing.T, mod *analysis.Module, dir, importPath string) *analysis.Package {
	t.Helper()
	pkg, err := mod.PackageAt(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypeErrors[0])
	}
	return pkg
}

// wantRe matches one expectation comment: // want `regexp`
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the // want expectations from the fixture sources.
func parseWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for file, src := range pkg.Sources() {
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, m[1], err)
				}
				wants = append(wants, &want{file: file, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkWants verifies the diagnostics and expectations cover each other
// exactly: every diagnostic has a matching // want on its line, and every
// // want is hit.
func checkWants(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	mod, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir      string
		path     string
		analyzer *analysis.Analyzer
	}{
		// det masquerades as a simulator package so detlint applies.
		{"testdata/src/det", "repro/internal/sim/testdata/det", analysis.Detlint},
		{"testdata/src/hot", "repro/internal/analysis/testdata/src/hot", analysis.Hotlint},
		{"testdata/src/tr", "repro/internal/analysis/testdata/src/tr", analysis.Tracelint},
		{"testdata/src/reg1", "repro/internal/core/reg1/testdata/fix", analysis.Registrylint},
		{"testdata/src/reg2", "repro/internal/core/reg2/testdata/fix", analysis.Registrylint},
		{"testdata/src/reg3", "repro/internal/core/reg3/testdata/fix", analysis.Registrylint},
		{"testdata/src/reg4", "repro/internal/core/reg4/testdata/fix", analysis.Registrylint},
		{"testdata/src/reg5", "repro/internal/core/reg5/testdata/fix", analysis.Registrylint},
		{"testdata/src/key", "repro/internal/analysis/testdata/src/key", analysis.Keylint},
	}
	for _, tc := range cases {
		t.Run(tc.dir[len("testdata/src/"):], func(t *testing.T) {
			pkg := loadFixture(t, mod, tc.dir, tc.path)
			diags := analysis.RunPackage(pkg, []*analysis.Analyzer{tc.analyzer})
			checkWants(t, diags, parseWants(t, pkg))
		})
	}
}

// TestDirectiveDiagnostics pins the malformed-directive diagnostics (the
// "directive" pseudo-analyzer) against the dir fixture, line by line.
func TestDirectiveDiagnostics(t *testing.T) {
	mod, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, mod, "testdata/src/dir", "repro/internal/analysis/testdata/src/dir")
	diags := analysis.RunPackage(pkg, nil)
	expected := []struct {
		line    int
		message string
	}{
		{5, "//repro:allow detlint needs a reason (say why the site is safe)"},
		{9, `//repro:allow names unknown analyzer "fmtlint"`},
		{13, "//repro:hotpath must appear in a function's doc comment"},
		{16, "unknown directive //repro:frobnicate"},
	}
	var got, want []string
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("unexpected analyzer %q in directive fixture: %s", d.Analyzer, d)
			continue
		}
		got = append(got, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	for _, e := range expected {
		want = append(want, fmt.Sprintf("%d: %s", e.line, e.message))
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("directive diagnostics mismatch:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestRealTreeIsClean is the regression pin for the whole suite: the
// repository's own packages must lint clean. A new wall-clock call, hot-path
// allocation, or unregistered message type fails this test, not just CI.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	mod, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := mod.PackageDirs()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := mod.Package(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range analysis.RunPackage(pkg, analysis.Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}
