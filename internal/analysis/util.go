package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method, possibly from another package). It
// returns nil for builtins, conversions, calls through func values, and
// anything the type-checker could not resolve.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier (pkg.Func).
		if fn, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the defining package path of a function, or "" for
// builtins and universe-scope objects.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isBuiltinCall reports whether the call invokes the named builtin
// (append, make, panic, ...).
func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// namedType reports whether t (after unwrapping pointers and aliases) is
// the named type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isInterface reports whether the type's underlying form is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether storing a value of this type in an
// interface needs no allocation (the value is a single pointer word).
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// declaredWithin reports whether the object's declaration lies inside the
// node's source range (e.g. a variable declared inside a loop body).
func declaredWithin(obj types.Object, n ast.Node) bool {
	if obj == nil || n == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// exprString renders a short source-ish form of an expression for
// diagnostics (identifiers and selector chains; anything else is "<expr>").
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}

// enclosingFuncDecl returns the top-level function declaration containing
// pos, if any.
func enclosingFuncDecl(pkg *Package, pos ast.Node) *ast.FuncDecl {
	for _, f := range pkg.Files {
		if pos.Pos() < f.Pos() || pos.Pos() >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pos.Pos() >= fd.Pos() && pos.Pos() < fd.End() {
				return fd
			}
		}
	}
	return nil
}

// funcDisplayName renders "Recv.Name" or "Name" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return exprString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}
