package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d * time.Millisecond
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run(time.Second)
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("event %d ran at %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
}

func TestSimultaneousEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(time.Second)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events ran out of schedule order: %v", got)
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.After(10*time.Millisecond, func() {
		at = e.Now()
		e.After(5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run(time.Second)
	if at != 15*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 15ms", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.After(time.Millisecond, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("freshly scheduled event should be pending")
	}
	ev.Cancel()
	e.Run(time.Second)
	if ran {
		t.Fatal("canceled event ran")
	}
	if ev.Pending() {
		t.Fatal("Pending() should report false after Cancel")
	}
}

func TestCancelIsIdempotentAndZeroSafe(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(time.Millisecond, func() {})
	ev.Cancel()
	ev.Cancel()
	var zero Event
	zero.Cancel() // must not panic
	if zero.Pending() {
		t.Fatal("zero Event cannot be pending")
	}
	e.Run(time.Second)
}

func TestStaleHandleCannotTouchReusedSlot(t *testing.T) {
	// The engine reuses event slots. A handle to an already-executed (or
	// canceled) event must be inert even when its slot has been reused by a
	// newer event — the generation check.
	e := NewEngine(1)
	first := e.After(time.Millisecond, func() {})
	e.Run(2 * time.Millisecond) // first executes; its slot returns to the free list
	ran := false
	second := e.After(time.Millisecond, func() { ran = true }) // reuses the slot
	first.Cancel()                                             // stale: must not cancel second
	if !second.Pending() {
		t.Fatal("stale Cancel canceled the slot's new occupant")
	}
	e.Run(time.Second)
	if !ran {
		t.Fatal("second event did not run")
	}
	if first.Pending() || second.Pending() {
		t.Fatal("no event should be pending after the run")
	}
}

func TestRunHorizonStopsAndSetsClock(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(10*time.Millisecond, func() { ran++ })
	e.Schedule(20*time.Millisecond, func() { ran++ }) // exactly at horizon: runs
	e.Schedule(30*time.Millisecond, func() { ran++ }) // beyond horizon: queued
	e.Run(20 * time.Millisecond)
	if ran != 2 {
		t.Fatalf("ran %d events before horizon, want 2", ran)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v after horizon run, want 20ms", e.Now())
	}
	e.Run(time.Second)
	if ran != 3 {
		t.Fatalf("ran %d events total, want 3", ran)
	}
}

func TestRunDrainLeavesClockAtHorizon(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Millisecond, func() {})
	e.Run(time.Second)
	if e.Pending() != 0 {
		t.Fatalf("queue should be drained, %d pending", e.Pending())
	}
	if e.Now() != time.Second {
		t.Fatalf("clock at %v after the queue drained, want the 1s horizon", e.Now())
	}
	// A second run over an empty queue must not move the clock backwards.
	e.Run(500 * time.Millisecond)
	if e.Now() != time.Second {
		t.Fatalf("clock moved backwards to %v", e.Now())
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine(1)
	keep := 0
	e.Schedule(time.Millisecond, func() { keep++ })
	ev := e.Schedule(2*time.Millisecond, func() {})
	e.Schedule(3*time.Millisecond, func() { keep++ })
	ev.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after cancel, want 2 (canceled event still in heap)", e.Pending())
	}
	e.Run(time.Second)
	if keep != 2 {
		t.Fatalf("ran %d live events, want 2", keep)
	}
}

func TestRearmChurnKeepsHeapBounded(t *testing.T) {
	// The SetTimer pattern: every re-arm cancels the previous event. The
	// heap must stay O(live events), not O(total re-arms).
	e := NewEngine(1)
	var ev Event
	for i := 0; i < 10000; i++ {
		ev.Cancel()
		ev = e.After(time.Millisecond, func() {})
	}
	if p := e.Pending(); p != 1 {
		t.Fatalf("Pending = %d after 10000 re-arms, want 1", p)
	}
	if len(e.slots) > 4 {
		t.Fatalf("slot storage grew to %d under re-arm churn, want a handful", len(e.slots))
	}
}

func TestRunUntilPredicate(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	ok := e.RunUntil(func() bool { return count == 3 }, time.Second)
	if !ok || count != 3 {
		t.Fatalf("RunUntil stopped with count=%d ok=%v, want 3/true", count, ok)
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v, want 3ms", e.Now())
	}
}

func TestRunUntilHorizonMiss(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Hour, func() {})
	ok := e.RunUntil(func() bool { return false }, time.Second)
	if ok {
		t.Fatal("predicate cannot hold")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock should rest at horizon, got %v", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { ran++ })
	e.Run(time.Second)
	if ran != 1 {
		t.Fatalf("Stop did not halt the run: ran=%d", ran)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(5*time.Millisecond, func() {})
	})
	e.Run(time.Second)
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetEventLimit(5)
	count := 0
	var loop func()
	loop = func() {
		count++
		e.After(time.Millisecond, loop)
	}
	e.After(0, loop)
	e.Run(time.Hour)
	if count != 5 {
		t.Fatalf("event limit executed %d events, want 5", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var log []time.Duration
		var step func()
		step = func() {
			log = append(log, e.Now())
			if len(log) < 50 {
				e.After(time.Duration(1+e.Rand().Intn(10))*time.Millisecond, step)
			}
		}
		e.After(0, step)
		e.Run(time.Hour)
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different run lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// Property: any batch of randomly-timed events executes in nondecreasing
// time order and the clock never runs backwards.
func TestQuickMonotoneExecution(t *testing.T) {
	f := func(seed int64, delaysMs []uint16) bool {
		e := NewEngine(seed)
		var times []time.Duration
		for _, d := range delaysMs {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run(time.Hour)
		if len(times) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCancelRearmChurn measures the timer-re-arm hot path (cancel the
// previous event, schedule a replacement) and asserts the heap stays bounded
// under the churn — the regression the eager Cancel removal fixes.
func BenchmarkCancelRearmChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	var ev Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Cancel()
		ev = e.After(time.Millisecond, fn)
		if p := e.Pending(); p > 1 {
			b.Fatalf("heap grew to %d pending events under re-arm churn", p)
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run(time.Second)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}
