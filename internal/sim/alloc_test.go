package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestScheduleCancelChurnIsAllocFree pins the zero-alloc invariant of the
// engine's hottest edge: the SetTimer pattern (cancel the previous event,
// schedule a replacement). After warm-up the free list and heap capacity
// absorb all churn, so the steady state must not allocate at all.
func TestScheduleCancelChurnIsAllocFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	ev := e.After(time.Millisecond, fn) // warm up slot storage and heap capacity
	allocs := testing.AllocsPerRun(1000, func() {
		ev.Cancel()
		ev = e.After(time.Millisecond, fn)
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel churn allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestStepIsAllocFree pins the zero-alloc invariant of the execute path: a
// self-rescheduling event (the shape of every protocol timer and heartbeat)
// must drive Step without allocating.
func TestStepIsAllocFree(t *testing.T) {
	e := NewEngine(1)
	var tick func()
	tick = func() { e.After(time.Millisecond, tick) }
	e.After(0, tick)
	e.Step() // warm up
	allocs := testing.AllocsPerRun(1000, func() {
		if !e.Step() {
			t.Fatal("queue unexpectedly drained")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestScheduleDeliveryIsAllocFree pins the zero-alloc invariant of the
// payload path: scheduling and delivering a message through the sink must
// not allocate once a payload exists (the payload itself is the caller's;
// here it is boxed once outside the loop).
func TestScheduleDeliveryIsAllocFree(t *testing.T) {
	e := NewEngine(1)
	delivered := 0
	e.SetDeliverySink(func(from, to int32, aux int64, payload any) { delivered++ })
	var payload any = struct{ x int }{42} // boxed once, reused
	e.ScheduleDelivery(0, 0, 1, 7, payload)
	e.Step() // warm up
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleDelivery(e.Now(), 0, 1, 7, payload)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("delivery round-trip allocated %.1f allocs/op, want 0", allocs)
	}
	if delivered < 1000 {
		t.Fatalf("sink saw %d deliveries", delivered)
	}
}

// TestDeliverySinkReceivesPayload checks the sink is invoked with exactly
// the scheduled arguments, in schedule order for simultaneous deliveries.
func TestDeliverySinkReceivesPayload(t *testing.T) {
	e := NewEngine(1)
	type rec struct {
		from, to int32
		aux      int64
		payload  any
	}
	var got []rec
	e.SetDeliverySink(func(from, to int32, aux int64, payload any) {
		got = append(got, rec{from, to, aux, payload})
	})
	e.ScheduleDelivery(2*time.Millisecond, 3, 4, 99, "late")
	e.ScheduleDelivery(time.Millisecond, 1, 2, 7, "early")
	e.Run(time.Second)
	want := []rec{{1, 2, 7, "early"}, {3, 4, 99, "late"}}
	if len(got) != len(want) {
		t.Fatalf("sink saw %d deliveries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSecondSinkRegistrationPanics: one sink owner per engine.
func TestSecondSinkRegistrationPanics(t *testing.T) {
	e := NewEngine(1)
	e.SetDeliverySink(func(int32, int32, int64, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second SetDeliverySink should panic")
		}
	}()
	e.SetDeliverySink(func(int32, int32, int64, any) {})
}

// TestHeapStressAgainstReferenceOrder drives the pooled 4-ary heap through
// a large randomized schedule/cancel workload and checks execution matches
// exactly the reference schedule: the uncanceled events in (time, sequence)
// order — the total order the old binary container/heap implemented, which
// the determinism guarantee rests on.
func TestHeapStressAgainstReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := NewEngine(1)
	type key struct {
		at  time.Duration
		seq int
	}
	type scheduled struct {
		ev Event
		k  key
	}
	var got []key
	var live []scheduled
	canceled := make(map[key]bool)
	var all []key
	seq := 0
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			// Cancel a random pending event (exercises heapRemove at
			// arbitrary heap positions).
			j := rng.Intn(len(live))
			s := live[j]
			s.ev.Cancel()
			if s.ev.Pending() {
				t.Fatal("event still pending after Cancel")
			}
			canceled[s.k] = true
			live = append(live[:j], live[j+1:]...)
			continue
		}
		seq++
		k := key{time.Duration(rng.Intn(1000)) * time.Millisecond, seq}
		ev := e.Schedule(k.at, func() { got = append(got, k) })
		live = append(live, scheduled{ev, k})
		all = append(all, k)
	}
	e.Run(time.Hour)
	var want []key
	for _, k := range all {
		if !canceled[k] {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", e.Pending())
	}
}

// TestBatchedBroadcastIsAllocFree pins the zero-alloc invariant of the
// multicast fast path end to end: beginning a fan-out, adding every
// recipient, committing, and stepping all deliveries through the sink must
// not allocate once the slot pool and recipient-vector pool are warm.
func TestBatchedBroadcastIsAllocFree(t *testing.T) {
	const fanout = 64
	e := NewEngine(1)
	delivered := 0
	e.SetDeliverySink(func(from, to int32, aux int64, payload any) { delivered++ })
	var payload any = struct{ x int }{42} // boxed once, reused
	round := func() {
		mc := e.BeginMulticast(0, 7, payload, fanout)
		for i := 0; i < fanout; i++ {
			mc.Add(int32(i), e.Now()+time.Duration(i)*time.Microsecond)
		}
		mc.Commit()
		for e.Step() {
		}
	}
	round() // warm up slot, heap, and vector pools
	allocs := testing.AllocsPerRun(1000, round)
	if allocs != 0 {
		t.Fatalf("batched broadcast round allocated %.1f allocs/op, want 0", allocs)
	}
	if delivered < 1000*fanout {
		t.Fatalf("sink saw %d deliveries", delivered)
	}
}
