package sim

import (
	"math/rand"
	"testing"
	"time"
)

// deliv is one sink invocation with its full context.
type deliv struct {
	at       time.Duration
	from, to int32
	aux      int64
	pending  int
}

// fanoutTrace drives a randomized workload of fan-outs interleaved with
// unicast deliveries and timers, using either multicasts or the equivalent
// per-recipient ScheduleDelivery loop, and returns every sink invocation.
// Both variants draw delays from the same seeded RNG in the same order, so
// equal traces mean the schedules are byte-identical.
func fanoutTrace(batched bool) []deliv {
	e := NewEngine(1)
	var got []deliv
	e.SetDeliverySink(func(from, to int32, aux int64, payload any) {
		got = append(got, deliv{at: e.Now(), from: from, to: to, aux: aux, pending: e.Pending()})
	})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		from := int32(i % 5)
		fanout := 1 + rng.Intn(12)
		if batched {
			mc := e.BeginMulticast(from, int64(i), "payload", fanout)
			for r := 0; r < fanout; r++ {
				mc.Add(int32(r), e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond)
			}
			mc.Commit()
		} else {
			for r := 0; r < fanout; r++ {
				e.ScheduleDelivery(e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, from, int32(r), int64(i), "payload")
			}
		}
		// A plain unicast and a timer interleaved with every fan-out, so
		// multicast re-keying competes with ordinary heap entries.
		e.ScheduleDelivery(e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, 99, 1, -1, "unicast")
		e.After(time.Duration(rng.Intn(500))*time.Microsecond, func() {})
		// Advance partway so later fan-outs overlap in-flight ones.
		e.Run(time.Duration(rng.Intn(300)) * time.Microsecond)
	}
	e.Run(time.Hour)
	return got
}

// TestMulticastMatchesUnicastSchedule checks the engine-level equivalence:
// a multicast's expanded deliveries are indistinguishable — times,
// sequence-derived order, sink arguments, and instantaneous queue depth —
// from the per-recipient unicast loop it replaces.
func TestMulticastMatchesUnicastSchedule(t *testing.T) {
	got := fanoutTrace(true)
	want := fanoutTrace(false)
	if len(got) == 0 {
		t.Fatal("no deliveries recorded")
	}
	if len(got) != len(want) {
		t.Fatalf("batched delivered %d, unicast %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d diverges: batched %+v, unicast %+v", i, got[i], want[i])
		}
	}
}

// TestMulticastPendingCountsRecipients checks Pending() counts every
// undelivered recipient individually, exactly as the unicast schedule
// would — including mid-fan-out.
func TestMulticastPendingCountsRecipients(t *testing.T) {
	e := NewEngine(1)
	e.SetDeliverySink(func(int32, int32, int64, any) {})
	mc := e.BeginMulticast(0, 0, "m", 3)
	mc.Add(1, time.Millisecond)
	mc.Add(2, 2*time.Millisecond)
	mc.Add(3, 3*time.Millisecond)
	mc.Commit()
	for want := 3; want > 0; want-- {
		if p := e.Pending(); p != want {
			t.Fatalf("Pending() = %d, want %d", p, want)
		}
		if !e.Step() {
			t.Fatal("queue drained early")
		}
	}
	if p := e.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", p)
	}
}

// TestEmptyMulticastSchedulesNothing: a fan-out whose every recipient was
// dropped must leave no trace — no heap entry, no pending count, and its
// storage immediately reusable.
func TestEmptyMulticastSchedulesNothing(t *testing.T) {
	e := NewEngine(1)
	e.SetDeliverySink(func(int32, int32, int64, any) {})
	mc := e.BeginMulticast(0, 0, "m", 8)
	mc.Commit()
	if p := e.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after empty commit, want 0", p)
	}
	if e.Step() {
		t.Fatal("Step executed something after an empty multicast")
	}
}

// TestBeginMulticastWithoutSinkPanics mirrors ScheduleDelivery's contract.
func TestBeginMulticastWithoutSinkPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("BeginMulticast without a sink should panic")
		}
	}()
	e.BeginMulticast(0, 0, "m", 1)
}

// TestResetEngineMatchesFreshEngine: an engine reused via Reset must
// produce the same trace as a freshly constructed one — the arena reuse
// guarantee.
func TestResetEngineMatchesFreshEngine(t *testing.T) {
	fresh := fanoutTrace(true)
	e := NewEngine(999)
	// Dirty the engine with an unrelated partial workload.
	e.SetDeliverySink(func(int32, int32, int64, any) {})
	mc := e.BeginMulticast(5, 5, "x", 4)
	mc.Add(0, time.Millisecond)
	mc.Add(1, time.Millisecond)
	mc.Commit()
	e.ScheduleDelivery(time.Millisecond, 1, 2, 3, "y")
	e.Step()
	e.Reset(1)

	// Replay fanoutTrace's exact workload on the reused engine.
	var got []deliv
	e.SetDeliverySink(func(from, to int32, aux int64, payload any) {
		got = append(got, deliv{at: e.Now(), from: from, to: to, aux: aux, pending: e.Pending()})
	})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		from := int32(i % 5)
		fanout := 1 + rng.Intn(12)
		mc := e.BeginMulticast(from, int64(i), "payload", fanout)
		for r := 0; r < fanout; r++ {
			mc.Add(int32(r), e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond)
		}
		mc.Commit()
		e.ScheduleDelivery(e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, 99, 1, -1, "unicast")
		e.After(time.Duration(rng.Intn(500))*time.Microsecond, func() {})
		e.Run(time.Duration(rng.Intn(300)) * time.Microsecond)
	}
	e.Run(time.Hour)

	if len(got) != len(fresh) {
		t.Fatalf("reset engine delivered %d, fresh %d", len(got), len(fresh))
	}
	for i := range fresh {
		if got[i] != fresh[i] {
			t.Fatalf("delivery %d diverges: reset %+v, fresh %+v", i, got[i], fresh[i])
		}
	}
}
