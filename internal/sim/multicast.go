package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Batched multicast: one heap slot fanning a shared payload out to many
// recipients.
//
// The unicast delivery path costs one alloc-free but heap-resident event per
// link, so an all-to-all broadcast round at population scale (N in the
// thousands) pushes N² events through the priority queue and the queue
// dominates everything. A multicast keeps the per-link semantics — each
// recipient has its own delivery time, drawn by the caller with the same
// randomness a unicast loop would use — but stores them as one slot plus a
// compact (at, seq, to) vector sorted at commit time. The heap orders the
// slot by its earliest undelivered entry; each Step delivers exactly one
// entry and re-keys the slot in place (a single sift-down instead of a
// pop+push). Executed-event counts, clock advancement, and RunUntil
// predicate granularity are identical to the unicast schedule, and because
// every Add consumes the engine sequence number the equivalent
// ScheduleDelivery would have, the expanded delivery order is byte-identical
// too.

// multiEntry is one recipient of a multicast: its delivery time, the engine
// sequence number the delivery consumed at schedule time, and the recipient
// address.
type multiEntry struct {
	at  time.Duration
	seq uint64
	to  int32
}

// Multicast accumulates the recipients of one batched fan-out. Obtain with
// BeginMulticast, Add each surviving recipient in the caller's deterministic
// recipient order, then Commit exactly once. The zero value is not usable.
type Multicast struct {
	e  *Engine
	si int32
	mi int32
}

// BeginMulticast starts a batched payload fan-out from one sender: a single
// queue entry that will invoke the delivery sink once per added recipient,
// in (time, sequence) order interleaved correctly with every other event.
// sizeHint presizes the recipient vector (pass the cluster size; cold
// vectors take one allocation, warm ones none). Requires SetDeliverySink,
// like ScheduleDelivery.
//
//repro:hotpath
func (e *Engine) BeginMulticast(from int32, aux int64, payload any, sizeHint int) Multicast {
	if e.sink == nil {
		panic("sim: BeginMulticast requires a delivery sink (call SetDeliverySink)")
	}
	si := e.alloc()
	s := &e.slots[si]
	s.sink = true
	s.from = from
	s.aux = aux
	s.payload = payload
	mi := e.allocVec(sizeHint)
	s.multi = mi
	s.mpos = 0
	return Multicast{e: e, si: si, mi: mi}
}

// Add appends a recipient with its delivery time, consuming the next engine
// sequence number — exactly the one an equivalent unicast ScheduleDelivery
// would have taken, which is what keeps batched and unicast schedules
// identical. Dropped recipients are simply not added; a drop consumes no
// sequence number on the unicast path either. Delivery in the past panics,
// matching schedule.
//
//repro:hotpath
func (mc Multicast) Add(to int32, at time.Duration) {
	e := mc.e
	if at < e.now {
		panic(fmt.Sprintf("sim: multicast delivery at %v before now %v", at, e.now))
	}
	e.seq++
	e.multiExtra++
	e.mvecs[mc.mi] = append(e.mvecs[mc.mi], multiEntry{at: at, seq: e.seq, to: to})
}

// Commit sorts the recipient vector by (at, seq) and schedules the multicast
// as a single heap entry keyed by its earliest recipient. A multicast every
// link dropped schedules nothing and returns its storage immediately. The
// builder must not be used after Commit.
//
//repro:hotpath
func (mc Multicast) Commit() {
	e := mc.e
	vec := e.mvecs[mc.mi]
	s := &e.slots[mc.si]
	if len(vec) == 0 {
		s.multi = -1
		e.releaseVec(mc.mi)
		e.release(mc.si)
		return
	}
	sortEntries(vec)
	s.at = vec[0].at
	s.seq = vec[0].seq
	s.mpos = 0
	// The heap entry itself now stands for one recipient; Add counted all
	// of them in multiExtra.
	e.multiExtra--
	e.heapPush(mc.si)
}

// stepMulticast expands the next recipient of the multicast at the heap
// head. It delivers exactly one entry per call — executed counts, clock
// steps, and RunUntil predicate checks match the unicast schedule event for
// event — then re-keys the slot to its next entry in place, a single
// sift-down instead of a pop+push. The last entry pops the slot and returns
// its storage.
//
//repro:hotpath
func (e *Engine) stepMulticast(si int32) bool {
	s := &e.slots[si]
	if s.at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", s.at, e.now))
	}
	e.now = s.at
	e.executed++
	vec := e.mvecs[s.multi]
	ent := vec[s.mpos]
	// Copy the shared fields out before any slot bookkeeping: the sink may
	// schedule, and growth of e.slots would invalidate s.
	from, aux, payload := s.from, s.aux, s.payload
	s.mpos++
	if int(s.mpos) < len(vec) {
		// Advancing to a later entry only grows the key, so a downward
		// sift restores the heap property. The heap entry now stands for
		// the next recipient instead of the delivered one.
		s.at = vec[s.mpos].at
		s.seq = vec[s.mpos].seq
		e.multiExtra--
		e.siftDown(0)
	} else {
		e.popMin()
		mi := s.multi
		s.multi = -1
		e.releaseVec(mi)
		e.release(si)
	}
	e.sink(from, ent.to, aux, payload)
	return true
}

// allocVec takes a recipient vector from the pool (length zero, capacity
// whatever its last use grew it to), growing the pool only when every
// vector is attached to a scheduled multicast.
//
//repro:hotpath
func (e *Engine) allocVec(sizeHint int) int32 {
	var mi int32
	if n := len(e.mfree); n > 0 {
		mi = e.mfree[n-1]
		e.mfree = e.mfree[:n-1]
	} else {
		e.mvecs = append(e.mvecs, nil)
		mi = int32(len(e.mvecs) - 1)
	}
	if cap(e.mvecs[mi]) < sizeHint {
		e.mvecs[mi] = make([]multiEntry, 0, sizeHint)
	}
	return mi
}

// releaseVec returns a vector to the pool, keeping its capacity.
//
//repro:hotpath
func (e *Engine) releaseVec(mi int32) {
	e.mvecs[mi] = e.mvecs[mi][:0]
	e.mfree = append(e.mfree, mi)
}

// sortEntries orders a recipient vector ascending by (at, seq): an in-place
// heapsort rather than sort.Slice, whose closure would allocate on every
// broadcast. seq is unique per entry, so the order is total and needs no
// stability.
//
//repro:hotpath
func sortEntries(v []multiEntry) {
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownEntry(v, i, n)
	}
	for i := n - 1; i > 0; i-- {
		v[0], v[i] = v[i], v[0]
		siftDownEntry(v, 0, i)
	}
}

// siftDownEntry restores the max-heap property over v[:n] from position i.
//
//repro:hotpath
func siftDownEntry(v []multiEntry, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && entryBefore(v[c], v[c+1]) {
			c++
		}
		if !entryBefore(v[i], v[c]) {
			return
		}
		v[i], v[c] = v[c], v[i]
		i = c
	}
}

func entryBefore(a, b multiEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Reset returns the engine to its initial state under a fresh seed while
// keeping every piece of allocated storage — slot pool, heap backing array,
// multicast vectors — warm for reuse. Arena-style callers (scenario grid
// workers running thousands of cells) reset one engine per cell instead of
// constructing a new one; a reset engine produces schedules byte-identical
// to a freshly constructed engine's. The delivery sink is cleared so the
// next run's network can register its own, and all outstanding Event
// handles are invalidated.
func (e *Engine) Reset(seed int64) {
	e.now = 0
	e.seq = 0
	e.rng = rand.New(rand.NewSource(seed))
	e.stopped = false
	e.heap = e.heap[:0]
	e.sink = nil
	e.executed = 0
	e.limit = 0
	// Rebuild the free list in index order — alloc then hands out slots
	// 0, 1, 2, … exactly as a fresh engine would — bumping generations so
	// stale handles stay inert and dropping references so the pool does
	// not pin the previous run's callbacks or messages.
	e.free = -1
	for i := len(e.slots) - 1; i >= 0; i-- {
		s := &e.slots[i]
		s.gen++
		s.fn = nil
		s.payload = nil
		s.heapIdx = -1
		s.multi = -1
		s.next = e.free
		e.free = int32(i)
	}
	// Same for the vector pool: mfree ends [len-1 … 1 0], so allocVec
	// (which pops from the end) hands out vector 0 first, like a fresh
	// engine.
	e.mfree = e.mfree[:0]
	for i := len(e.mvecs) - 1; i >= 0; i-- {
		e.mvecs[i] = e.mvecs[i][:0]
		e.mfree = append(e.mfree, int32(i))
	}
	e.multiExtra = 0
}
