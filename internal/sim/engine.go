// Package sim implements a deterministic discrete-event simulator.
//
// The simulator advances a virtual global clock by executing scheduled
// events in (time, sequence) order. All scheduling happens through a single
// Engine; there are no goroutines, so a run is a pure function of the
// initial schedule and the seed of the engine's random source. This is the
// substrate on which the paper's eventually-synchronous system model
// (internal/simnet) is built.
//
// The engine owns all event storage: scheduling reuses slots from a free
// list and the ready queue is a specialized 4-ary min-heap of slot indices,
// so the steady state (schedule, cancel, execute — the simulator's entire
// inner loop) allocates nothing. Handles returned by Schedule/After are
// generation-checked values, making a stale Cancel on an already-executed
// event a safe no-op even after its slot has been reused.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// DeliverySink receives payload-carrying events scheduled with
// ScheduleDelivery. One sink serves the whole engine: the network layer
// registers a single closure at construction instead of allocating one
// closure per message in flight. from/to address the endpoints, aux carries
// a small caller-defined integer (simnet uses it for the interned
// message-type ID), and payload is the message itself.
type DeliverySink func(from, to int32, aux int64, payload any)

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// slots is the engine-owned event storage; free heads the free-slot
	// list threaded through slot.next (-1 when empty). heap holds the
	// indices of scheduled slots ordered by (at, seq).
	slots []slot
	free  int32
	heap  []int32

	// mvecs is the engine-owned storage for multicast recipient vectors
	// (see multicast.go); mfree stacks the indices of vectors not currently
	// attached to a scheduled multicast slot. Vectors keep their capacity
	// when released, so steady-state broadcasting allocates nothing.
	// multiExtra counts multicast recipients beyond the one the heap entry
	// represents, so Pending can report undelivered deliveries — the same
	// number a unicast schedule would — in O(1).
	mvecs      [][]multiEntry
	mfree      []int32
	multiExtra int

	sink DeliverySink

	// executed counts events run so far (for budget enforcement and tests).
	executed uint64
	// limit, when non-zero, bounds the number of executed events as a
	// runaway-schedule backstop.
	limit uint64
}

// slot is one unit of event storage. A slot is either scheduled (present in
// the heap, heapIdx ≥ 0) or free (on the free list via next, heapIdx = -1);
// gen increments every time the slot leaves the scheduled state, which is
// what invalidates stale Event handles.
type slot struct {
	at      time.Duration
	seq     uint64
	fn      func()
	payload any
	aux     int64
	from    int32
	to      int32
	gen     uint32
	heapIdx int32
	next    int32
	// multi indexes the slot's recipient vector in Engine.mvecs when the
	// slot is a multicast (-1 otherwise); mpos is the next vector entry to
	// deliver. While scheduled, (at, seq) mirror the entry at mpos, so the
	// heap orders a multicast by its earliest undelivered recipient.
	multi int32
	mpos  int32
	sink  bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), free: -1}
}

// Now returns the current virtual global time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Everything in a
// simulation that needs randomness must draw from this source (or a source
// derived from it) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetEventLimit bounds the total number of events the engine will execute;
// Run methods return early once the limit is hit. Zero means no limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// SetDeliverySink registers the engine's delivery sink. Exactly one caller
// owns the sink (the simulated network); a second registration always means
// two networks are sharing one engine, which would misroute every delivery,
// so it panics.
func (e *Engine) SetDeliverySink(s DeliverySink) {
	if e.sink != nil {
		panic("sim: delivery sink already set (two networks on one engine?)")
	}
	e.sink = s
}

// Event is a handle to a scheduled callback, valid until the event executes
// or is canceled. The zero value is inert: Cancel and Pending on it are
// safe no-ops. Handles are generation-checked, so holding one past its
// event's execution is harmless even though the engine reuses the slot.
type Event struct {
	e   *Engine
	idx int32
	gen uint32
}

// Cancel prevents the event from executing and removes it from the event
// queue immediately. Timer-re-arm-heavy protocols cancel an event per
// SetTimer, so a canceled event must not linger in the heap: it would bloat
// the queue and make Pending lie. Canceling an already-executed or
// already-canceled event is a no-op.
func (ev Event) Cancel() {
	e := ev.e
	if e == nil {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen || s.heapIdx < 0 {
		return
	}
	e.heapRemove(s.heapIdx)
	e.release(ev.idx)
}

// Pending reports whether the event is still scheduled (not yet executed or
// canceled).
func (ev Event) Pending() bool {
	if ev.e == nil {
		return false
	}
	s := &ev.e.slots[ev.idx]
	return s.gen == ev.gen && s.heapIdx >= 0
}

// At returns the virtual time the event is scheduled for, or 0 once it has
// executed or been canceled.
func (ev Event) At() time.Duration {
	if !ev.Pending() {
		return 0
	}
	return ev.e.slots[ev.idx].at
}

// alloc takes a slot from the free list, growing storage only when every
// slot is scheduled (amortized; the steady state never grows).
//
//repro:hotpath
func (e *Engine) alloc() int32 {
	if e.free >= 0 {
		si := e.free
		e.free = e.slots[si].next
		return si
	}
	e.slots = append(e.slots, slot{multi: -1})
	return int32(len(e.slots) - 1)
}

// release returns a slot to the free list, bumping its generation so stale
// handles can never touch the next occupant, and dropping references so the
// slot does not pin callbacks or payloads for the GC.
//
//repro:hotpath
func (e *Engine) release(si int32) {
	s := &e.slots[si]
	s.gen++
	s.fn = nil
	s.payload = nil
	s.heapIdx = -1
	s.next = e.free
	e.free = si
}

// schedule places a freshly-populated slot into the queue and returns its
// handle. The caller must have set every payload field; schedule assigns
// the (at, seq) ordering key.
//
//repro:hotpath
func (e *Engine) schedule(at time.Duration, si int32) Event {
	if at < e.now {
		// Scheduling in the past always indicates a bug in the model,
		// never a recoverable condition.
		e.release(si)
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	s := &e.slots[si]
	s.at = at
	s.seq = e.seq
	e.heapPush(si)
	return Event{e: e, idx: si, gen: s.gen}
}

// Schedule runs fn at virtual time at. Scheduling in the past (before Now)
// panics.
//
//repro:hotpath
func (e *Engine) Schedule(at time.Duration, fn func()) Event {
	si := e.alloc()
	s := &e.slots[si]
	s.fn = fn
	s.sink = false
	return e.schedule(at, si)
}

// After runs fn d from now. Negative d is treated as zero.
//
//repro:hotpath
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleDelivery schedules a payload-carrying event: at time at the
// engine's delivery sink is invoked with (from, to, aux, payload). This is
// the closure-free path for message traffic — the hot loop of every
// simulation — and requires SetDeliverySink to have been called.
//
//repro:hotpath
func (e *Engine) ScheduleDelivery(at time.Duration, from, to int32, aux int64, payload any) Event {
	si := e.alloc()
	s := &e.slots[si]
	s.sink = true
	s.from = from
	s.to = to
	s.aux = aux
	s.payload = payload
	return e.schedule(at, si)
}

// Stop makes the current Run call return after the current event finishes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, advancing the clock to its time.
// It returns false when no events remain.
//
// The heap holds exactly the live events — Cancel removes eagerly and
// execution pops before running the callback — so the head needs no
// liveness check (the invariant the pooled queue makes structural).
//
//repro:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	if e.slots[e.heap[0]].multi >= 0 {
		return e.stepMulticast(e.heap[0])
	}
	si := e.popMin()
	s := &e.slots[si]
	if s.at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", s.at, e.now))
	}
	e.now = s.at
	e.executed++
	// Copy the callback out and recycle the slot before invoking: the
	// callback may schedule (and the engine may hand it this very slot),
	// and growth of e.slots would invalidate s.
	fn, isSink := s.fn, s.sink
	from, to, aux, payload := s.from, s.to, s.aux, s.payload
	e.release(si)
	if isSink {
		e.sink(from, to, aux, payload)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains, the time horizon passes, Stop
// is called, or the event limit is reached. Events scheduled exactly at the
// horizon still run; the first event strictly beyond it stays queued and the
// clock is left at the horizon. Draining the queue also leaves the clock at
// the horizon (matching RunUntil); only Stop and the event limit abort the
// run with the clock mid-way.
func (e *Engine) Run(until time.Duration) {
	e.stopped = false
	for !e.stopped {
		if e.limit > 0 && e.executed >= e.limit {
			return
		}
		if len(e.heap) == 0 || e.slots[e.heap[0]].at > until {
			if until > e.now {
				e.now = until
			}
			return
		}
		e.Step()
	}
}

// RunUntil executes events until pred returns true (checked after each
// event), the horizon passes, or the queue drains. It reports whether pred
// held when it returned.
func (e *Engine) RunUntil(pred func() bool, horizon time.Duration) bool {
	if pred() {
		return true
	}
	e.stopped = false
	for !e.stopped {
		if e.limit > 0 && e.executed >= e.limit {
			return pred()
		}
		if len(e.heap) == 0 || e.slots[e.heap[0]].at > horizon {
			if e.now < horizon {
				e.now = horizon
			}
			return pred()
		}
		e.Step()
		if pred() {
			return true
		}
	}
	return pred()
}

// Pending returns the number of queued events, counting each undelivered
// multicast recipient individually — the value is identical to what an
// equivalent unicast schedule would report. Canceled events are removed
// eagerly, so they never count.
func (e *Engine) Pending() int { return len(e.heap) + e.multiExtra }

// --- the event queue ---
//
// A 4-ary min-heap of slot indices ordered by (at, seq). The ordering key
// is total (seq is unique per event), so the pop order — and therefore the
// schedule — is independent of heap arity and internal layout; switching
// from the binary container/heap changed no schedules. 4-ary trades
// slightly more comparisons per sift-down for half the tree depth and
// better cache locality, and the inlined sift loops avoid container/heap's
// interface dispatch and per-push boxing.
//
// Structural invariant: the heap contains exactly the scheduled slots.
// Cancel removes its event eagerly (heapRemove) and Step pops before
// executing, so the head is always live — the defensive canceled-event
// sweep the old queue needed in peek is gone because the state it swept
// can no longer exist.

// before reports whether slot a executes before slot b.
func (e *Engine) before(a, b *slot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends a slot and restores the heap property upward.
//
//repro:hotpath
func (e *Engine) heapPush(si int32) {
	e.heap = append(e.heap, si)
	e.siftUp(int32(len(e.heap) - 1))
}

// popMin removes and returns the earliest slot.
//
//repro:hotpath
func (e *Engine) popMin() int32 {
	h := e.heap
	si := h[0]
	e.slots[si].heapIdx = -1
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		e.slots[h[0]].heapIdx = 0
		e.heap = h[:n]
		e.siftDown(0)
	} else {
		e.heap = h[:0]
	}
	return si
}

// heapRemove removes the slot at heap position i (Cancel's path).
//
//repro:hotpath
func (e *Engine) heapRemove(i int32) {
	h := e.heap
	n := int32(len(h)) - 1
	e.slots[h[i]].heapIdx = -1
	if i == n {
		e.heap = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	e.slots[moved].heapIdx = i
	e.heap = h[:n]
	e.siftDown(i)
	// If siftDown left it in place it may still violate the property
	// upward; siftUp is a no-op otherwise.
	e.siftUp(e.slots[moved].heapIdx)
}

// siftUp restores the heap property from position i toward the root.
//
//repro:hotpath
func (e *Engine) siftUp(i int32) {
	h := e.heap
	si := h[i]
	s := &e.slots[si]
	for i > 0 {
		p := (i - 1) / 4
		ps := h[p]
		if e.before(&e.slots[ps], s) {
			break
		}
		h[i] = ps
		e.slots[ps].heapIdx = i
		i = p
	}
	h[i] = si
	s.heapIdx = i
}

// siftDown restores the heap property from position i toward the leaves.
//
//repro:hotpath
func (e *Engine) siftDown(i int32) {
	h := e.heap
	n := int32(len(h))
	si := h[i]
	s := &e.slots[si]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		bs := &e.slots[h[c]]
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			ks := &e.slots[h[k]]
			if e.before(ks, bs) {
				best, bs = k, ks
			}
		}
		if !e.before(bs, s) {
			break
		}
		h[i] = h[best]
		bs.heapIdx = i
		i = best
	}
	h[i] = si
	s.heapIdx = i
}
