// Package sim implements a deterministic discrete-event simulator.
//
// The simulator advances a virtual global clock by executing scheduled
// events in (time, sequence) order. All scheduling happens through a single
// Engine; there are no goroutines, so a run is a pure function of the
// initial schedule and the seed of the engine's random source. This is the
// substrate on which the paper's eventually-synchronous system model
// (internal/simnet) is built.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// executed counts events run so far (for budget enforcement and tests).
	executed uint64
	// limit, when non-zero, bounds the number of executed events as a
	// runaway-schedule backstop.
	limit uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual global time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Everything in a
// simulation that needs randomness must draw from this source (or a source
// derived from it) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetEventLimit bounds the total number of events the engine will execute;
// Run methods return early once the limit is hit. Zero means no limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Event is a handle to a scheduled callback. Cancel prevents a pending
// event from running.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int         // heap index, -1 once popped
	q        *eventQueue // owning queue, for eager removal on Cancel
}

// Cancel prevents the event from executing and removes it from the event
// queue. Timer-re-arm-heavy protocols cancel an event per SetTimer, so a
// canceled event must not linger in the heap: it would bloat the queue and
// make Pending lie. Canceling an already-executed or already-canceled event
// is a no-op.
func (ev *Event) Cancel() {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	ev.fn = nil
	if ev.q != nil && ev.index >= 0 {
		heap.Remove(ev.q, ev.index)
	}
	ev.q = nil
}

// Canceled reports whether the event has been canceled.
func (ev *Event) Canceled() bool { return ev != nil && ev.canceled }

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() time.Duration { return ev.at }

// Schedule runs fn at virtual time at. Scheduling in the past (before Now)
// panics: it always indicates a bug in the model, never a recoverable
// condition.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, q: &e.queue}
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Stop makes the current Run call return after the current event finishes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, e.now))
		}
		e.now = ev.at
		e.executed++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, the time horizon passes, Stop
// is called, or the event limit is reached. Events scheduled exactly at the
// horizon still run; the first event strictly beyond it stays queued and the
// clock is left at the horizon. Draining the queue also leaves the clock at
// the horizon (matching RunUntil); only Stop and the event limit abort the
// run with the clock mid-way.
func (e *Engine) Run(until time.Duration) {
	e.stopped = false
	for !e.stopped {
		if e.limit > 0 && e.executed >= e.limit {
			return
		}
		ev := e.queue.peek()
		if ev == nil {
			if until > e.now {
				e.now = until
			}
			return
		}
		if ev.at > until {
			if until > e.now {
				e.now = until
			}
			return
		}
		e.Step()
	}
}

// RunUntil executes events until pred returns true (checked after each
// event), the horizon passes, or the queue drains. It reports whether pred
// held when it returned.
func (e *Engine) RunUntil(pred func() bool, horizon time.Duration) bool {
	if pred() {
		return true
	}
	e.stopped = false
	for !e.stopped {
		if e.limit > 0 && e.executed >= e.limit {
			return pred()
		}
		ev := e.queue.peek()
		if ev == nil || ev.at > horizon {
			if e.now < horizon {
				e.now = horizon
			}
			return pred()
		}
		e.Step()
		if pred() {
			return true
		}
	}
	return pred()
}

// Pending returns the number of queued events. Canceled events are removed
// eagerly, so they never count.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventQueue is a min-heap ordered by (time, sequence), giving a total,
// deterministic order over simultaneous events.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

func (q *eventQueue) peek() *Event {
	// Cancel removes events eagerly, so the head is always live; the sweep
	// below is defense in depth only.
	for q.Len() > 0 {
		if !(*q)[0].canceled {
			return (*q)[0]
		}
		heap.Pop(q)
	}
	return nil
}
