package rsmbench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/live"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Run executes one benchmark configuration and returns its result. The
// invariant checks (apply order, session dedup, cross-replica agreement,
// completeness) always run; their failures land in Result.Violations
// rather than the error, which is reserved for configurations that cannot
// run at all.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	total := cfg.N + cfg.Clients

	collector := trace.NewCollector()
	collector.EnableHistograms()
	if cfg.Observe {
		collector.EnableSpans(cfg.SpanCapacity)
	}

	recorders := make([]*Recorder, cfg.N)
	for i := range recorders {
		recorders[i] = &Recorder{}
	}
	rsmFactory, err := rsm.New(rsm.Config{
		Paxos:       modpaxos.Config{Delta: cfg.Delta},
		MaxBatch:    cfg.MaxBatch,
		MaxInFlight: cfg.MaxInFlight,
		MaxQueue:    cfg.MaxQueue,
		Linger:      cfg.Linger,
		NewApplier: func(id consensus.ProcessID) rsm.Applier {
			return recorders[id]
		},
	})
	if err != nil {
		return nil, fmt.Errorf("rsmbench: %w", err)
	}

	clients := make([]*clientProc, cfg.Clients)
	factory := func(id consensus.ProcessID, _ int, proposal consensus.Value) consensus.Process {
		if int(id) < cfg.N {
			// The replica group is the first N nodes; the substrate's total
			// node count includes clients and must not leak into quorum math
			// or broadcasts.
			return &scopedProc{inner: rsmFactory(id, cfg.N, proposal), n: cfg.N}
		}
		cp := newClientProc(cfg, id)
		clients[int(id)-cfg.N] = cp
		return cp
	}
	proposals := make([]consensus.Value, total)
	clientIDs := make([]consensus.ProcessID, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		id := consensus.ProcessID(cfg.N + i)
		clientIDs[i] = id
		proposals[id] = doneValue
	}

	res := &Result{
		Backend: cfg.Backend, N: cfg.N, Clients: cfg.Clients, Ops: cfg.Ops, Keys: cfg.Keys,
		Seed: cfg.Seed, Linger: cfg.Linger, OpenInterval: cfg.OpenInterval,
		collector: collector,
	}
	// Echo the effective serving-path knobs (rsm defaults applied).
	eff := rsm.Config{MaxBatch: cfg.MaxBatch, MaxInFlight: cfg.MaxInFlight, MaxQueue: cfg.MaxQueue}
	res.MaxBatch, res.MaxInFlight, res.MaxQueue = effectiveKnobs(eff)

	switch cfg.Backend {
	case BackendSim:
		err = runSim(cfg, total, collector, factory, proposals, clientIDs, res)
	case BackendLive, BackendLiveTCP:
		err = runLive(cfg, total, collector, factory, proposals, clientIDs, res)
	default:
		return nil, fmt.Errorf("rsmbench: unknown backend %q", cfg.Backend)
	}
	if err != nil {
		return nil, err
	}

	for _, cp := range clients {
		res.TotalOps += int64(cp.acked)
		res.Busy += cp.busy
		res.Retries += cp.retries
	}
	if res.Duration > 0 {
		res.OpsPerSec = float64(res.TotalOps) / res.Duration.Seconds()
	}
	if h, ok := collector.HistogramCopy(trace.HistCommitLatency); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistCommitLatency)
		res.Commit = &s
	}
	if h, ok := collector.HistogramCopy(trace.HistSlotLatency); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistSlotLatency)
		res.Slot = &s
	}
	if h, ok := collector.HistogramCopy(trace.HistBatchSize); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistBatchSize)
		res.Batch = &s
	}
	res.Shed = int64(len(collector.Series("rsm-shed")))
	if n := len(recorders[0].Entries()); n > 0 {
		res.Slots = recorders[0].Entries()[n-1].Slot + 1
	}
	res.Violations = append(res.Violations, checkInvariants(cfg, recorders, clients, res.Completed)...)
	return res, nil
}

// effectiveKnobs reports the serving-path knobs after rsm defaulting, so
// reports show the values that actually ran.
func effectiveKnobs(c rsm.Config) (batch, inflight, queue int) {
	batch, inflight, queue = c.MaxBatch, c.MaxInFlight, c.MaxQueue
	if batch <= 0 {
		batch = 8
	}
	if inflight <= 0 {
		inflight = 4
	}
	if queue <= 0 {
		queue = 1024
	}
	return
}

func runSim(cfg Config, total int, collector *trace.Collector,
	factory consensus.Factory, proposals []consensus.Value,
	clientIDs []consensus.ProcessID, res *Result) error {

	eng := sim.NewEngine(cfg.Seed)
	nw, err := simnet.New(eng, simnet.Config{
		N: total, Delta: cfg.Delta, TS: 0, Collector: collector,
	}, factory, proposals)
	if err != nil {
		return fmt.Errorf("rsmbench: %w", err)
	}
	nw.Start()
	checker := nw.Checker()
	res.Completed = eng.RunUntil(func() bool {
		return checker.AllDecided(clientIDs)
	}, cfg.Horizon)
	if d, ok := checker.LastDecisionAmong(clientIDs); ok && res.Completed {
		res.Duration = d
	} else {
		res.Duration = eng.Now()
	}
	collector.RecordRunPhases(0, eng.Now())
	return nil
}

func runLive(cfg Config, total int, collector *trace.Collector,
	factory consensus.Factory, proposals []consensus.Value,
	clientIDs []consensus.ProcessID, res *Result) error {

	var transport live.Transport
	if cfg.Backend == BackendLiveTCP {
		rsm.RegisterMessages()
		ids := make([]consensus.ProcessID, total)
		for i := range ids {
			ids[i] = consensus.ProcessID(i)
		}
		tcp, err := live.NewTCPTransport(ids)
		if err != nil {
			return fmt.Errorf("rsmbench: %w", err)
		}
		transport = tcp
	} else {
		transport = live.NewMemTransport(live.MemTransportConfig{
			MaxDelay: cfg.Delta, Seed: cfg.Seed, Collector: collector,
		})
	}
	cluster, err := live.NewCluster(live.Config{
		N: total, Delta: cfg.Delta, TS: 0,
		Transport: transport, Collector: collector, Seed: cfg.Seed,
	}, factory, proposals)
	if err != nil {
		_ = transport.Close()
		return fmt.Errorf("rsmbench: %w", err)
	}
	started := time.Now()
	cluster.Start()
	res.Completed = cluster.WaitDecidedAmong(clientIDs, cfg.Horizon) == nil
	if d, ok := cluster.Checker().LastDecisionAmong(clientIDs); ok && res.Completed {
		res.Duration = d
	} else {
		res.Duration = time.Since(started)
	}
	// Stop joins the node goroutines so the recorders and client counters
	// are safe to read afterwards.
	if err := cluster.Stop(); err != nil {
		return fmt.Errorf("rsmbench: %w", err)
	}
	_ = transport.Close()
	collector.RecordRunPhases(0, time.Since(started))
	return nil
}

// checkInvariants verifies the run's correctness conditions from the
// per-replica apply recorders:
//
//  1. apply order: each replica applied (slot, idx) in strictly increasing
//     order;
//  2. session dedup: no (client, seq) with seq > 0 applied twice at any
//     replica;
//  3. agreement: all replicas applied the same command sequence (common
//     prefix — replicas may trail);
//  4. completeness (completed runs): the leader applied every client
//     operation exactly once.
func checkInvariants(cfg Config, recorders []*Recorder, clients []*clientProc, completed bool) []string {
	var out []string
	logs := make([][]ApplyRecord, len(recorders))
	for i, rec := range recorders {
		logs[i] = rec.Entries()
	}
	for id, entries := range logs {
		for i := 1; i < len(entries); i++ {
			a, b := entries[i-1], entries[i]
			if b.Slot < a.Slot || (b.Slot == a.Slot && b.Idx <= a.Idx) {
				out = append(out, fmt.Sprintf(
					"apply-order: replica %d applied slot %d idx %d after slot %d idx %d",
					id, b.Slot, b.Idx, a.Slot, a.Idx))
				break
			}
		}
		seen := make(map[[2]int64]int64, len(entries))
		for _, e := range entries {
			if e.Seq == 0 {
				continue
			}
			key := [2]int64{e.Client, int64(e.Seq)}
			if prev, ok := seen[key]; ok {
				out = append(out, fmt.Sprintf(
					"dedup: replica %d applied client %d seq %d twice (slots %d and %d)",
					id, e.Client, e.Seq, prev, e.Slot))
			} else {
				seen[key] = e.Slot
			}
		}
	}
	for id := 1; id < len(logs); id++ {
		n := len(logs[0])
		if len(logs[id]) < n {
			n = len(logs[id])
		}
		for i := 0; i < n; i++ {
			if logs[0][i] != logs[id][i] {
				out = append(out, fmt.Sprintf(
					"agreement: replica %d log[%d] = %+v, replica 0 has %+v",
					id, i, logs[id][i], logs[0][i]))
				break
			}
		}
	}
	if !completed {
		done := 0
		for _, cp := range clients {
			if cp.done {
				done++
			}
		}
		out = append(out, fmt.Sprintf("timeout: %d/%d clients completed within %v",
			done, len(clients), cfg.Horizon))
		return out
	}
	leader := logs[0]
	bySession := make(map[int64][]uint64)
	for _, e := range leader {
		if e.Seq != 0 {
			bySession[e.Client] = append(bySession[e.Client], e.Seq)
		}
	}
	for i := 0; i < cfg.Clients; i++ {
		client := int64(cfg.N + i)
		seqs := bySession[client]
		if len(seqs) != cfg.Ops {
			out = append(out, fmt.Sprintf(
				"completeness: leader applied %d ops for client %d, want %d",
				len(seqs), client, cfg.Ops))
			continue
		}
		sorted := append([]uint64(nil), seqs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for j, s := range sorted {
			if s != uint64(j+1) {
				out = append(out, fmt.Sprintf(
					"completeness: client %d seqs not 1..%d (saw %d at position %d)",
					client, cfg.Ops, s, j))
				break
			}
		}
	}
	return out
}
