package rsmbench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/live"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Run executes one benchmark configuration and returns its result. The
// invariant checks (apply order, session dedup, cross-replica agreement,
// completeness) always run; their failures land in Result.Violations
// rather than the error, which is reserved for configurations that cannot
// run at all.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	total := cfg.N + cfg.Clients

	collector := trace.NewCollector()
	collector.EnableHistograms()
	if cfg.Observe {
		collector.EnableSpans(cfg.SpanCapacity)
	}

	// Each incarnation gets a fresh recorder (a restarted replica replays
	// its surviving log prefix; reusing the recorder would double-count).
	// recorders[i] always points at replica i's latest incarnation.
	var recMu sync.Mutex
	recorders := make([]*Recorder, cfg.N)
	for i := range recorders {
		recorders[i] = &Recorder{}
	}
	rsmFactory, err := rsm.New(rsm.Config{
		Paxos:           modpaxos.Config{Delta: cfg.Delta},
		MaxBatch:        cfg.MaxBatch,
		MaxInFlight:     cfg.MaxInFlight,
		MaxQueue:        cfg.MaxQueue,
		Linger:          cfg.Linger,
		FailoverTimeout: cfg.FailoverTimeout,
		SnapshotEvery:   cfg.CompactEvery,
		NewApplier: func(id consensus.ProcessID) rsm.Applier {
			recMu.Lock()
			defer recMu.Unlock()
			if len(recorders[id].Entries()) > 0 {
				recorders[id] = &Recorder{}
			}
			return recorders[id]
		},
	})
	if err != nil {
		return nil, fmt.Errorf("rsmbench: %w", err)
	}

	clients := make([]*clientProc, cfg.Clients)
	factory := func(id consensus.ProcessID, _ int, proposal consensus.Value) consensus.Process {
		if int(id) < cfg.N {
			// The replica group is the first N nodes; the substrate's total
			// node count includes clients and must not leak into quorum math
			// or broadcasts.
			return &scopedProc{inner: rsmFactory(id, cfg.N, proposal), n: cfg.N}
		}
		cp := newClientProc(cfg, id)
		clients[int(id)-cfg.N] = cp
		return cp
	}
	proposals := make([]consensus.Value, total)
	clientIDs := make([]consensus.ProcessID, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		id := consensus.ProcessID(cfg.N + i)
		clientIDs[i] = id
		proposals[id] = doneValue
	}

	res := &Result{
		Backend: cfg.Backend, N: cfg.N, Clients: cfg.Clients, Ops: cfg.Ops, Keys: cfg.Keys,
		Seed: cfg.Seed, Linger: cfg.Linger, OpenInterval: cfg.OpenInterval,
		CrashLeaderAt: cfg.CrashLeaderAt, RestartLeaderAt: cfg.RestartLeaderAt,
		CompactEvery: cfg.CompactEvery, FailoverTimeout: cfg.FailoverTimeout,
		collector: collector,
	}
	// Echo the effective serving-path knobs (rsm defaults applied).
	eff := rsm.Config{MaxBatch: cfg.MaxBatch, MaxInFlight: cfg.MaxInFlight, MaxQueue: cfg.MaxQueue}
	res.MaxBatch, res.MaxInFlight, res.MaxQueue = effectiveKnobs(eff)

	switch cfg.Backend {
	case BackendSim:
		err = runSim(cfg, total, collector, factory, proposals, clientIDs, res)
	case BackendLive, BackendLiveTCP:
		err = runLive(cfg, total, collector, factory, proposals, clientIDs, res)
	default:
		return nil, fmt.Errorf("rsmbench: unknown backend %q", cfg.Backend)
	}
	if err != nil {
		return nil, err
	}

	for _, cp := range clients {
		res.TotalOps += int64(cp.acked)
		res.Busy += cp.busy
		res.Retries += cp.retries
	}
	if res.Duration > 0 {
		res.OpsPerSec = float64(res.TotalOps) / res.Duration.Seconds()
	}
	if h, ok := collector.HistogramCopy(trace.HistCommitLatency); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistCommitLatency)
		res.Commit = &s
	}
	if h, ok := collector.HistogramCopy(trace.HistSlotLatency); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistSlotLatency)
		res.Slot = &s
	}
	if h, ok := collector.HistogramCopy(trace.HistBatchSize); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistBatchSize)
		res.Batch = &s
	}
	if h, ok := collector.HistogramCopy(trace.HistFailoverLatency); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistFailoverLatency)
		res.Failover = &s
	}
	if h, ok := collector.HistogramCopy(trace.HistCatchupLatency); ok && h.Count() > 0 {
		s := h.Snapshot(trace.HistCatchupLatency)
		res.Catchup = &s
	}
	res.Shed = int64(len(collector.Series("rsm-shed")))
	if n := len(recorders[0].Entries()); n > 0 {
		res.Slots = recorders[0].Entries()[n-1].Slot + 1
	}
	res.Violations = append(res.Violations, checkInvariants(cfg, recorders, clients, res.Completed)...)
	return res, nil
}

// effectiveKnobs reports the serving-path knobs after rsm defaulting, so
// reports show the values that actually ran.
func effectiveKnobs(c rsm.Config) (batch, inflight, queue int) {
	batch, inflight, queue = c.MaxBatch, c.MaxInFlight, c.MaxQueue
	if batch <= 0 {
		batch = 8
	}
	if inflight <= 0 {
		inflight = 4
	}
	if queue <= 0 {
		queue = 1024
	}
	return
}

func runSim(cfg Config, total int, collector *trace.Collector,
	factory consensus.Factory, proposals []consensus.Value,
	clientIDs []consensus.ProcessID, res *Result) error {

	eng := sim.NewEngine(cfg.Seed)
	nw, err := simnet.New(eng, simnet.Config{
		N: total, Delta: cfg.Delta, TS: 0, Collector: collector,
	}, factory, proposals)
	if err != nil {
		return fmt.Errorf("rsmbench: %w", err)
	}
	nw.Start()
	if cfg.CrashLeaderAt > 0 {
		// The initial leader (epoch 0 = replica 0) dies mid-run; the group
		// fails over and, if a restart is scheduled, the crashed replica
		// rejoins and catches up (via snapshot when compaction outran it).
		nw.CrashAt(0, cfg.CrashLeaderAt)
		if cfg.RestartLeaderAt > 0 {
			nw.RestartAt(0, cfg.RestartLeaderAt)
		}
	}
	checker := nw.Checker()
	res.Completed = eng.RunUntil(func() bool {
		return checker.AllDecided(clientIDs)
	}, cfg.Horizon)
	if d, ok := checker.LastDecisionAmong(clientIDs); ok && res.Completed {
		res.Duration = d
	} else {
		res.Duration = eng.Now()
	}
	if cfg.chaos() {
		// Settle window: let the restarted replica finish catching up and
		// trailing snapshots truncate, so the log-key census is stable.
		eng.Run(eng.Now() + 50*cfg.Delta)
		for i := 0; i < cfg.N; i++ {
			res.LogKeys = append(res.LogKeys, countLogKeys(nw.Node(consensus.ProcessID(i)).Store()))
		}
	}
	collector.RecordRunPhases(0, eng.Now())
	return nil
}

// countLogKeys reports how many rsmlog/ decision records a replica's store
// holds — the quantity compaction is meant to bound.
func countLogKeys(st storage.Store) int64 {
	keys, err := st.Keys()
	if err != nil {
		return -1
	}
	var n int64
	for _, k := range keys {
		if strings.HasPrefix(k, storage.KeyRSMLogPrefix) {
			n++
		}
	}
	return n
}

func runLive(cfg Config, total int, collector *trace.Collector,
	factory consensus.Factory, proposals []consensus.Value,
	clientIDs []consensus.ProcessID, res *Result) error {

	var transport live.Transport
	if cfg.Backend == BackendLiveTCP {
		rsm.RegisterMessages()
		ids := make([]consensus.ProcessID, total)
		for i := range ids {
			ids[i] = consensus.ProcessID(i)
		}
		tcp, err := live.NewTCPTransport(ids)
		if err != nil {
			return fmt.Errorf("rsmbench: %w", err)
		}
		transport = tcp
	} else {
		transport = live.NewMemTransport(live.MemTransportConfig{
			MaxDelay: cfg.Delta, Seed: cfg.Seed, Collector: collector,
		})
	}
	cluster, err := live.NewCluster(live.Config{
		N: total, Delta: cfg.Delta, TS: 0,
		Transport: transport, Collector: collector, Seed: cfg.Seed,
	}, factory, proposals)
	if err != nil {
		_ = transport.Close()
		return fmt.Errorf("rsmbench: %w", err)
	}
	started := time.Now()
	cluster.Start()
	// Chaos schedule on wall clock. The mutex makes teardown deterministic:
	// cancelling grabs it, so an in-flight Crash/Restart callback finishes
	// before cluster.Stop runs, and late timers become no-ops.
	var chaosMu sync.Mutex
	chaosOver := false
	var timers []*time.Timer
	schedule := func(d time.Duration, f func()) {
		timers = append(timers, time.AfterFunc(d, func() {
			chaosMu.Lock()
			defer chaosMu.Unlock()
			if !chaosOver {
				f()
			}
		}))
	}
	if cfg.CrashLeaderAt > 0 {
		schedule(cfg.CrashLeaderAt, func() { cluster.Crash(0) })
		if cfg.RestartLeaderAt > 0 {
			schedule(cfg.RestartLeaderAt, func() { cluster.Restart(0) })
		}
	}
	res.Completed = cluster.WaitDecidedAmong(clientIDs, cfg.Horizon) == nil
	if cfg.chaos() {
		// Settle window mirroring the sim backend: give the restarted
		// replica time to catch up and trailing snapshots time to truncate.
		time.Sleep(50 * cfg.Delta)
	}
	chaosMu.Lock()
	chaosOver = true
	chaosMu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if d, ok := cluster.Checker().LastDecisionAmong(clientIDs); ok && res.Completed {
		res.Duration = d
	} else {
		res.Duration = time.Since(started)
	}
	// Stop joins the node goroutines so the recorders and client counters
	// are safe to read afterwards.
	if err := cluster.Stop(); err != nil {
		return fmt.Errorf("rsmbench: %w", err)
	}
	if cfg.chaos() {
		for i := 0; i < cfg.N; i++ {
			res.LogKeys = append(res.LogKeys, countLogKeys(cluster.Node(consensus.ProcessID(i)).Store()))
		}
	}
	_ = transport.Close()
	collector.RecordRunPhases(0, time.Since(started))
	return nil
}

// checkInvariants verifies the run's correctness conditions from the
// per-replica apply recorders:
//
//  1. apply order: each replica applied (slot, idx) in strictly increasing
//     order;
//  2. session dedup: no (client, seq) with seq > 0 applied twice at any
//     replica;
//  3. agreement: all replicas applied the same command sequence (common
//     prefix — replicas may trail);
//  4. completeness (completed runs): the leader applied every client
//     operation exactly once.
func checkInvariants(cfg Config, recorders []*Recorder, clients []*clientProc, completed bool) []string {
	var out []string
	logs := make([][]ApplyRecord, len(recorders))
	for i, rec := range recorders {
		logs[i] = rec.Entries()
	}
	for id, entries := range logs {
		for i := 1; i < len(entries); i++ {
			a, b := entries[i-1], entries[i]
			if b.Slot < a.Slot || (b.Slot == a.Slot && b.Idx <= a.Idx) {
				out = append(out, fmt.Sprintf(
					"apply-order: replica %d applied slot %d idx %d after slot %d idx %d",
					id, b.Slot, b.Idx, a.Slot, a.Idx))
				break
			}
		}
		seen := make(map[[2]int64]int64, len(entries))
		for _, e := range entries {
			if e.Seq == 0 {
				continue
			}
			key := [2]int64{e.Client, int64(e.Seq)}
			if prev, ok := seen[key]; ok {
				out = append(out, fmt.Sprintf(
					"dedup: replica %d applied client %d seq %d twice (slots %d and %d)",
					id, e.Client, e.Seq, prev, e.Slot))
			} else {
				seen[key] = e.Slot
			}
		}
	}
	if cfg.chaos() {
		return append(out, checkChaosInvariants(cfg, logs, clients, completed)...)
	}
	for id := 1; id < len(logs); id++ {
		n := len(logs[0])
		if len(logs[id]) < n {
			n = len(logs[id])
		}
		for i := 0; i < n; i++ {
			if logs[0][i] != logs[id][i] {
				out = append(out, fmt.Sprintf(
					"agreement: replica %d log[%d] = %+v, replica 0 has %+v",
					id, i, logs[id][i], logs[0][i]))
				break
			}
		}
	}
	if !completed {
		done := 0
		for _, cp := range clients {
			if cp.done {
				done++
			}
		}
		out = append(out, fmt.Sprintf("timeout: %d/%d clients completed within %v",
			done, len(clients), cfg.Horizon))
		return out
	}
	leader := logs[0]
	bySession := make(map[int64][]uint64)
	for _, e := range leader {
		if e.Seq != 0 {
			bySession[e.Client] = append(bySession[e.Client], e.Seq)
		}
	}
	for i := 0; i < cfg.Clients; i++ {
		client := int64(cfg.N + i)
		seqs := bySession[client]
		if len(seqs) != cfg.Ops {
			out = append(out, fmt.Sprintf(
				"completeness: leader applied %d ops for client %d, want %d",
				len(seqs), client, cfg.Ops))
			continue
		}
		sorted := append([]uint64(nil), seqs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for j, s := range sorted {
			if s != uint64(j+1) {
				out = append(out, fmt.Sprintf(
					"completeness: client %d seqs not 1..%d (saw %d at position %d)",
					client, cfg.Ops, s, j))
				break
			}
		}
	}
	return out
}

// checkChaosInvariants replaces the prefix-agreement and leader-complete
// checks for runs with crashes or compaction. A restarted replica's recorder
// starts at its replay point (possibly a snapshot base), and the crashed
// leader's log may genuinely trail, so agreement is judged slot-aligned —
// any position applied by two replicas must match — exactly-once is judged
// globally by (client, seq), and completeness on the union of all replicas.
func checkChaosInvariants(cfg Config, logs [][]ApplyRecord, clients []*clientProc, completed bool) []string {
	var out []string
	type pos struct {
		Slot int64
		Idx  int
	}
	byPos := make(map[pos]ApplyRecord)
	firstAt := make(map[pos]int)
	seqPos := make(map[[2]int64]pos)
	for id, entries := range logs {
		for _, e := range entries {
			p := pos{e.Slot, e.Idx}
			if prev, ok := byPos[p]; ok {
				if prev != e {
					out = append(out, fmt.Sprintf(
						"agreement: slot %d idx %d is %+v at replica %d but %+v at replica %d",
						e.Slot, e.Idx, e, id, prev, firstAt[p]))
				}
			} else {
				byPos[p] = e
				firstAt[p] = id
			}
			if e.Seq == 0 {
				continue
			}
			key := [2]int64{e.Client, int64(e.Seq)}
			if prev, ok := seqPos[key]; ok {
				if prev != p {
					out = append(out, fmt.Sprintf(
						"exactly-once: client %d seq %d applied at slot %d idx %d and at slot %d idx %d",
						e.Client, e.Seq, prev.Slot, prev.Idx, e.Slot, e.Idx))
				}
			} else {
				seqPos[key] = p
			}
		}
	}
	if !completed {
		done := 0
		for _, cp := range clients {
			if cp.done {
				done++
			}
		}
		return append(out, fmt.Sprintf("timeout: %d/%d clients completed within %v",
			done, len(clients), cfg.Horizon))
	}
	for i := 0; i < cfg.Clients; i++ {
		client := int64(cfg.N + i)
		for s := 1; s <= cfg.Ops; s++ {
			if _, ok := seqPos[[2]int64{client, int64(s)}]; !ok {
				out = append(out, fmt.Sprintf(
					"completeness: client %d seq %d was never applied at any replica", client, s))
			}
		}
	}
	return out
}
