package rsmbench

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestClosedLoopSimCompletes(t *testing.T) {
	res, err := Run(Config{Backend: BackendSim, Clients: 4, Ops: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.TotalOps != 20 {
		t.Fatalf("TotalOps = %d, want 20", res.TotalOps)
	}
	if res.OpsPerSec <= 0 {
		t.Fatalf("OpsPerSec = %v", res.OpsPerSec)
	}
	if res.Commit == nil || res.Commit.Count != 20 {
		t.Fatalf("commit histogram missing or wrong count: %+v", res.Commit)
	}
	if res.Slots <= 0 || res.Slots > 20 {
		t.Fatalf("Slots = %d", res.Slots)
	}
}

func TestSimIsDeterministic(t *testing.T) {
	run := func() (time.Duration, int64, float64) {
		res, err := Run(Config{Backend: BackendSim, Clients: 3, Ops: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration, res.TotalOps, res.OpsPerSec
	}
	d1, o1, r1 := run()
	d2, o2, r2 := run()
	if d1 != d2 || o1 != o2 || r1 != r2 {
		t.Fatalf("nondeterministic bench: (%v,%d,%v) vs (%v,%d,%v)", d1, o1, r1, d2, o2, r2)
	}
}

func TestBatchingPipeliningBeatsSingleSlot(t *testing.T) {
	base := Config{Backend: BackendSim, Clients: 16, Ops: 10}

	single := base
	single.MaxBatch, single.MaxInFlight = 1, 1
	sres, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Passed() {
		t.Fatalf("single-slot run failed: completed=%v violations=%v", sres.Completed, sres.Violations)
	}

	batched := base
	batched.MaxBatch, batched.MaxInFlight = 8, 4
	bres, err := Run(batched)
	if err != nil {
		t.Fatal(err)
	}
	if !bres.Passed() {
		t.Fatalf("batched run failed: completed=%v violations=%v", bres.Completed, bres.Violations)
	}

	// The acceptance bar is 5×; in-test we assert a conservative 3× so a
	// slow CI machine cannot flake the suite (BENCH_7.json tracks the real
	// number). On the virtual-time simulator this ratio is deterministic.
	if bres.OpsPerSec < 3*sres.OpsPerSec {
		t.Fatalf("batched %0.f ops/s < 3× single-slot %0.f ops/s", bres.OpsPerSec, sres.OpsPerSec)
	}
	// Batching evidence: the log used far fewer slots than ops.
	if bres.Slots >= bres.TotalOps/2 {
		t.Fatalf("batched run used %d slots for %d ops — no coalescing", bres.Slots, bres.TotalOps)
	}
}

func TestOpenLoop(t *testing.T) {
	res, err := Run(Config{
		Backend: BackendSim, Clients: 4, Ops: 6,
		OpenInterval: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("open-loop run failed: completed=%v violations=%v", res.Completed, res.Violations)
	}
	if res.TotalOps != 24 {
		t.Fatalf("TotalOps = %d, want 24", res.TotalOps)
	}
}

func TestBackpressureShedsAndRecovers(t *testing.T) {
	// A tiny queue with no pipelining forces Busy rejections; client
	// retries with session dedup must still finish exactly-once.
	res, err := Run(Config{
		Backend: BackendSim, Clients: 12, Ops: 4,
		MaxBatch: 1, MaxInFlight: 1, MaxQueue: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("backpressure run did not complete (busy=%d shed=%d)", res.Busy, res.Shed)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations under backpressure: %v", res.Violations)
	}
	if res.Busy == 0 || res.Shed == 0 {
		t.Fatalf("expected load shedding, got busy=%d shed=%d", res.Busy, res.Shed)
	}
}

func TestLiveMemBackend(t *testing.T) {
	res, err := Run(Config{Backend: BackendLive, Clients: 3, Ops: 4, Delta: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("live run failed: completed=%v violations=%v", res.Completed, res.Violations)
	}
	if res.TotalOps != 12 {
		t.Fatalf("TotalOps = %d, want 12", res.TotalOps)
	}
}

func TestObserveSpansRecorded(t *testing.T) {
	res, err := Run(Config{Backend: BackendSim, Clients: 2, Ops: 3, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("run failed: %v", res.Violations)
	}
	c := res.Collector()
	spans := trace.PairSpans(c.SpanEvents(), c.SpanKindName, res.Duration)
	var ops, commits int
	for _, s := range spans {
		switch {
		case s.Kind == "rsm-op":
			ops++
		case len(s.Kind) > 5 && s.Kind[:4] == "slot" && s.Kind[len(s.Kind)-7:] == "-commit":
			commits++
		}
	}
	if ops != 6 {
		t.Fatalf("rsm-op spans = %d, want 6", ops)
	}
	if commits == 0 {
		t.Fatal("no slotN-commit spans recorded")
	}
}

func TestChaosLeaderCrashCompletes(t *testing.T) {
	// The ISSUE 10 acceptance configuration: batch=8, K=4, 32 clients, with
	// the leader killed mid-run and restarted behind the compaction horizon.
	res, err := Run(Config{
		Backend: BackendSim, Clients: 32, Ops: 5, Seed: 9,
		MaxBatch: 8, MaxInFlight: 4,
		CrashLeaderAt:   10 * time.Millisecond,
		RestartLeaderAt: 60 * time.Millisecond,
		CompactEvery:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("chaos run did not complete (retries=%d)", res.Retries)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations under leader crash: %v", res.Violations)
	}
	if res.TotalOps != 160 {
		t.Fatalf("TotalOps = %d, want 160", res.TotalOps)
	}
	// Clients only finish by resuming on the new leader, which shows up as
	// retransmissions and a recorded failover recovery window.
	if res.Retries == 0 {
		t.Fatal("no client retries — the crash did not bite")
	}
	if res.Failover == nil || res.Failover.Count == 0 {
		t.Fatal("no failover recovery latency recorded")
	}
	if len(res.LogKeys) != res.N {
		t.Fatalf("LogKeys = %v, want one census per replica", res.LogKeys)
	}
	// Compaction bound: every surviving replica truncated below its snapshot
	// horizon, so live rsmlog/ records stay within a few snapshot windows
	// even though the run consumed far more slots.
	for id, n := range res.LogKeys {
		if n < 0 || n > 3*res.CompactEvery {
			t.Fatalf("replica %d holds %d rsmlog keys (slots=%d, compact-every=%d)",
				id, n, res.Slots, res.CompactEvery)
		}
	}
	if res.Slots <= res.CompactEvery {
		t.Fatalf("run too short to exercise compaction: %d slots", res.Slots)
	}
}

func TestChaosRunIsDeterministic(t *testing.T) {
	run := func() (time.Duration, int64, int64) {
		res, err := Run(Config{
			Backend: BackendSim, Clients: 8, Ops: 4, Seed: 5,
			MaxBatch: 4, MaxInFlight: 2,
			CrashLeaderAt:   8 * time.Millisecond,
			RestartLeaderAt: 40 * time.Millisecond,
			CompactEvery:    8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("chaos run failed: completed=%v violations=%v", res.Completed, res.Violations)
		}
		return res.Duration, res.TotalOps, res.Retries
	}
	d1, o1, r1 := run()
	d2, o2, r2 := run()
	if d1 != d2 || o1 != o2 || r1 != r2 {
		t.Fatalf("nondeterministic chaos bench: (%v,%d,%d) vs (%v,%d,%d)", d1, o1, r1, d2, o2, r2)
	}
}
