package rsmbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/trace"
)

// Result is one benchmark run's outcome.
type Result struct {
	Backend      string        `json:"backend"`
	N            int           `json:"n"`
	Clients      int           `json:"clients"`
	Ops          int           `json:"ops_per_client"`
	Keys         int           `json:"keys"`
	MaxBatch     int           `json:"max_batch"`
	MaxInFlight  int           `json:"max_in_flight"`
	MaxQueue     int           `json:"max_queue"`
	Linger       time.Duration `json:"linger_ns"`
	OpenInterval time.Duration `json:"open_interval_ns"`
	Seed         int64         `json:"seed"`

	// Completed is true when every client committed its quota before the
	// horizon.
	Completed bool `json:"completed"`
	// Duration spans run start to the last client's completion: virtual
	// time on the simulator (deterministic), wall time on live.
	Duration  time.Duration `json:"duration_ns"`
	TotalOps  int64         `json:"total_ops"`
	OpsPerSec float64       `json:"ops_per_sec"`
	// Slots is the log length consumed (commands ÷ slots ≈ achieved batch).
	Slots int64 `json:"slots"`
	// Busy counts Busy rejections clients saw; Shed counts leader-side
	// queue rejections; Retries counts client retransmissions.
	Busy    int64 `json:"busy"`
	Shed    int64 `json:"shed"`
	Retries int64 `json:"retries"`

	// Chaos schedule (zero when the run had no crash/compaction): when the
	// initial leader was killed and restarted, the snapshot cadence, and the
	// failover silence window the replicas ran with.
	CrashLeaderAt   time.Duration `json:"crash_leader_at_ns,omitempty"`
	RestartLeaderAt time.Duration `json:"restart_leader_at_ns,omitempty"`
	CompactEvery    int64         `json:"compact_every,omitempty"`
	FailoverTimeout time.Duration `json:"failover_timeout_ns,omitempty"`

	// Commit is the client-observed submit→ack latency histogram; Slot the
	// proposer's flush→decide latency; Batch the commands-per-slot size.
	Commit *trace.HistogramSnapshot `json:"commit_latency,omitempty"`
	Slot   *trace.HistogramSnapshot `json:"slot_latency,omitempty"`
	Batch  *trace.HistogramSnapshot `json:"batch_size,omitempty"`

	// Failover is the crash→repaired recovery latency histogram; Catchup the
	// restarted replica's rejoin→caught-up latency. LogKeys counts the
	// rsmlog/ records left in each replica's store after the run — bounded
	// when compaction is on, one per slot otherwise.
	Failover *trace.HistogramSnapshot `json:"failover_latency,omitempty"`
	Catchup  *trace.HistogramSnapshot `json:"catchup_latency,omitempty"`
	LogKeys  []int64                  `json:"log_keys,omitempty"`

	Violations []string `json:"violations,omitempty"`

	collector *trace.Collector
}

// Collector exposes the run's trace collector (timeline export).
func (r *Result) Collector() *trace.Collector { return r.collector }

// Passed reports whether the run completed with no invariant violations.
func (r *Result) Passed() bool { return r.Completed && len(r.Violations) == 0 }

// header is the shared column layout of Text and CSV.
var columns = []string{
	"backend", "clients", "ops", "batch", "pipeline",
	"duration", "ops/sec", "p50", "p95", "p99",
	"slots", "busy", "retries", "violations",
}

// row renders one result under columns.
func (r *Result) row() []string {
	p50, p95, p99 := "-", "-", "-"
	if r.Commit != nil {
		p50 = time.Duration(r.Commit.P50).String()
		p95 = time.Duration(r.Commit.P95).String()
		p99 = time.Duration(r.Commit.P99).String()
	}
	return []string{
		r.Backend,
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%d", r.TotalOps),
		fmt.Sprintf("%d", r.MaxBatch),
		fmt.Sprintf("%d", r.MaxInFlight),
		r.Duration.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", r.OpsPerSec),
		p50, p95, p99,
		fmt.Sprintf("%d", r.Slots),
		fmt.Sprintf("%d", r.Busy),
		fmt.Sprintf("%d", r.Retries),
		fmt.Sprintf("%d", len(r.Violations)),
	}
}

// Text renders results as an aligned terminal table, with violations (if
// any) listed underneath.
func Text(results []*Result) string {
	var b strings.Builder
	widths := make([]int, len(columns))
	rows := [][]string{columns}
	for _, r := range results {
		rows = append(rows, r.row())
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	for _, r := range results {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "violation [%s batch=%d k=%d]: %s\n", r.Backend, r.MaxBatch, r.MaxInFlight, v)
		}
	}
	return b.String()
}

// CSV renders results as comma-separated rows under a header.
func CSV(results []*Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(columns, ","))
	b.WriteString("\n")
	for _, r := range results {
		b.WriteString(strings.Join(r.row(), ","))
		b.WriteString("\n")
	}
	return b.String()
}

// JSON renders results as an indented JSON array.
func JSON(results []*Result) (string, error) {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
