// Package rsmbench is a multi-client workload generator for the RSM
// serving path. Clients are ordinary consensus.Processes living on node IDs
// above the replica range, so the exact same workload runs on the
// deterministic simulator (virtual-time throughput, reproducible by seed)
// and the live runtime (wall-clock throughput over the in-memory or TCP
// transport).
//
// Each client runs one session: in closed-loop mode it keeps exactly one
// operation outstanding and issues the next on commit; in open-loop mode it
// issues on a fixed interval regardless of acks. Unacked operations are
// retransmitted with their original sequence numbers, so the server's
// session dedup keeps the log exactly-once — which the per-replica
// invariant recorder then verifies.
package rsmbench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/rsm"
	"repro/internal/trace"
)

// Backend names accepted by Config.Backend.
const (
	BackendSim     = "sim"
	BackendLive    = "live"
	BackendLiveTCP = "live-tcp"
)

// doneValue is what a client "decides" when its workload completes; the
// run's safety checker then doubles as the completion barrier.
const doneValue consensus.Value = "done"

// Config parameterizes one benchmark run.
type Config struct {
	// Backend selects the substrate: sim (default), live, live-tcp.
	Backend string
	// N is the replica count (default 3).
	N int
	// Clients is the number of workload clients (default 8).
	Clients int
	// Ops is the number of operations per client (default 20).
	Ops int
	// Keys is the key-space size commands write into (default 16).
	Keys int
	// MaxBatch, MaxInFlight, MaxQueue and Linger pass through to
	// rsm.Config (rsm defaults apply when zero; MaxBatch=1 with
	// MaxInFlight=1 is the single-slot baseline).
	MaxBatch    int
	MaxInFlight int
	MaxQueue    int
	Linger      time.Duration
	// Delta is the network delay bound δ (default 2ms).
	Delta time.Duration
	// Seed drives the substrate's randomness (default 1).
	Seed int64
	// OpenInterval switches clients to open-loop issue at this interval
	// (0 = closed loop).
	OpenInterval time.Duration
	// RetryEvery is the client retransmission period (default 25δ).
	RetryEvery time.Duration
	// Horizon bounds the run (default 5 minutes virtual on sim, scaled to
	// the op count on live).
	Horizon time.Duration
	// Observe enables span recording so the run can be exported as a
	// Chrome-trace timeline (histograms are always on).
	Observe bool
	// SpanCapacity sizes the span ring when Observe is set.
	SpanCapacity int

	// CrashLeaderAt, when set, kills the epoch-0 leader (replica 0) at this
	// run time; clients must fail over to the promoted replica to finish.
	CrashLeaderAt time.Duration
	// RestartLeaderAt, when set with CrashLeaderAt, restarts the crashed
	// leader, which must catch up (and be deposed by the higher epoch).
	RestartLeaderAt time.Duration
	// CompactEvery passes through to rsm.Config.SnapshotEvery: replicas
	// snapshot and truncate their logs every this many applied slots.
	CompactEvery int64
	// FailoverTimeout passes through to rsm.Config.FailoverTimeout. With
	// CrashLeaderAt set and this zero, it defaults to 10δ so crash runs can
	// actually fail over.
	FailoverTimeout time.Duration
}

// chaos reports whether the run injects faults or compaction — the modes
// where per-incarnation recorders disagree on prefixes and the invariant
// checks switch to slot-aligned agreement plus union completeness.
func (c Config) chaos() bool { return c.CrashLeaderAt > 0 || c.CompactEvery > 0 }

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = BackendSim
	}
	if c.N == 0 {
		c.N = 3
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Ops == 0 {
		c.Ops = 20
	}
	if c.Keys == 0 {
		c.Keys = 16
	}
	if c.Delta == 0 {
		c.Delta = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RetryEvery == 0 {
		c.RetryEvery = 25 * c.Delta
	}
	if c.CrashLeaderAt > 0 && c.FailoverTimeout == 0 {
		c.FailoverTimeout = 10 * c.Delta
	}
	if c.Horizon == 0 {
		// Generous: even the unpipelined baseline at ~4δ per op finishes a
		// serial log well inside this.
		perOp := 8 * c.Delta
		c.Horizon = time.Duration(c.Clients*c.Ops)*perOp + 10*time.Second
		if c.CrashLeaderAt > 0 {
			// Failover stalls the log for up to n silence windows plus the
			// repair round trips before clients make progress again.
			c.Horizon += time.Duration(c.N+1)*c.FailoverTimeout + 50*c.Delta
		}
	}
	return c
}

// client timer IDs.
const (
	retryTimerID consensus.TimerID = 0
	issueTimerID consensus.TimerID = 1
)

// pendingOp is one issued-but-unacked operation.
type pendingOp struct {
	op     consensus.Value
	sentAt time.Duration
}

// clientProc is one workload client as a consensus.Process. It proposes to
// the RSM leader, observes commit latency into the shared collector, and
// "decides" doneValue when its quota is committed.
type clientProc struct {
	cfg    Config
	id     consensus.ProcessID
	env    consensus.Environment
	leader consensus.ProcessID
	// epoch is the highest leadership epoch seen in a Redirect; silent
	// counts consecutive unanswered retry rounds, the client's failover
	// trigger (crash runs only, mirroring rsm.Client).
	epoch  int64
	silent int

	issued  int
	acked   int
	pending map[uint64]pendingOp
	done    bool

	busy    int64
	retries int64
}

var _ consensus.Process = (*clientProc)(nil)

func newClientProc(cfg Config, id consensus.ProcessID) *clientProc {
	return &clientProc{cfg: cfg, id: id, leader: rsm.Leader(), pending: make(map[uint64]pendingOp)}
}

// Init implements consensus.Process.
func (c *clientProc) Init(env consensus.Environment) {
	c.env = env
	c.issueNext()
	if c.cfg.OpenInterval > 0 && c.issued < c.cfg.Ops {
		env.SetTimer(issueTimerID, c.cfg.OpenInterval)
	}
	env.SetTimer(retryTimerID, c.cfg.RetryEvery)
}

// issueNext sends the client's next operation (seq = op index + 1).
func (c *clientProc) issueNext() {
	if c.issued >= c.cfg.Ops {
		return
	}
	c.issued++
	seq := uint64(c.issued)
	key := (int(c.id) + c.issued) % c.cfg.Keys
	op := consensus.Value(fmt.Sprintf("set k%d c%d-%d", key, int(c.id), seq))
	c.pending[seq] = pendingOp{op: op, sentAt: c.env.Now()}
	consensus.BeginSpan(c.env, trace.SpanRSMOp, int64(seq))
	c.send(seq)
}

func (c *clientProc) send(seq uint64) {
	p, ok := c.pending[seq]
	if !ok {
		return
	}
	c.env.Send(c.leader, rsm.ClientPropose{Client: int64(c.id), Seq: seq, Cmd: p.op})
}

// HandleMessage implements consensus.Process.
func (c *clientProc) HandleMessage(_ consensus.ProcessID, m consensus.Message) {
	switch msg := m.(type) {
	case rsm.Committed:
		p, ok := c.pending[msg.Seq]
		if !ok {
			return // duplicate ack
		}
		delete(c.pending, msg.Seq)
		c.acked++
		if d := c.env.Now() - p.sentAt; d >= 0 {
			consensus.ObserveDuration(c.env, trace.HistCommitLatency, d)
		}
		consensus.EndSpan(c.env, trace.SpanRSMOp, int64(msg.Seq))
		c.silent = 0
		if c.acked >= c.cfg.Ops {
			c.finish()
			return
		}
		if c.cfg.OpenInterval == 0 {
			c.issueNext()
		}
	case rsm.Busy:
		// Load was shed; the retry timer re-proposes after a full period,
		// which is the client's backoff.
		c.busy++
		c.silent = 0
	case rsm.Redirect:
		if msg.Epoch < c.epoch {
			return // staler leadership view than ours
		}
		c.epoch = msg.Epoch
		c.leader = msg.Leader
		c.silent = 0
		c.resendUnacked()
	}
}

// HandleTimer implements consensus.Process.
func (c *clientProc) HandleTimer(id consensus.TimerID) {
	if c.done {
		return
	}
	switch id {
	case retryTimerID:
		if n := c.resendUnacked(); n > 0 {
			c.retries += n
			c.silent++
			if c.cfg.CrashLeaderAt > 0 && c.silent >= 2 {
				// Sustained silence on a crash run: treat the leader as dead
				// and rotate to the next replica, which either serves us
				// (it promoted) or answers with an epoch-stamped Redirect.
				c.leader = consensus.ProcessID((int(c.leader) + 1) % c.cfg.N)
				c.silent = 0
				c.resendUnacked()
			}
		}
		c.env.SetTimer(retryTimerID, c.cfg.RetryEvery)
	case issueTimerID:
		c.issueNext()
		if c.issued < c.cfg.Ops {
			c.env.SetTimer(issueTimerID, c.cfg.OpenInterval)
		}
	}
}

// resendUnacked retransmits pending operations in sequence order (session
// dedup requires a client's retries to stay ordered) and returns how many.
func (c *clientProc) resendUnacked() int64 {
	if len(c.pending) == 0 {
		return 0
	}
	lo, hi := uint64(1), uint64(c.issued)
	var n int64
	for seq := lo; seq <= hi; seq++ {
		if _, ok := c.pending[seq]; ok {
			c.send(seq)
			n++
		}
	}
	return n
}

func (c *clientProc) finish() {
	c.done = true
	c.env.CancelTimer(retryTimerID)
	c.env.CancelTimer(issueTimerID)
	c.env.Decide(doneValue)
}

// ApplyRecord is one applied command as seen by a replica's recorder.
type ApplyRecord struct {
	Slot   int64
	Idx    int
	Client int64
	Seq    uint64
}

// Recorder is an rsm.EntryApplier that logs every applied command so the
// run can verify apply order, dedup, and cross-replica agreement. The
// mutex is for the live runtime, where each replica applies on its own
// goroutine.
type Recorder struct {
	mu      sync.Mutex
	entries []ApplyRecord
}

var (
	_ rsm.Applier      = (*Recorder)(nil)
	_ rsm.EntryApplier = (*Recorder)(nil)
)

// Apply implements rsm.Applier (unused: ApplyEntry is preferred).
func (r *Recorder) Apply(slot int64, _ consensus.Value) {
	r.mu.Lock()
	r.entries = append(r.entries, ApplyRecord{Slot: slot})
	r.mu.Unlock()
}

// ApplyEntry implements rsm.EntryApplier.
func (r *Recorder) ApplyEntry(slot int64, idx int, cmd rsm.Command) {
	r.mu.Lock()
	r.entries = append(r.entries, ApplyRecord{Slot: slot, Idx: idx, Client: cmd.Client, Seq: cmd.Seq})
	r.mu.Unlock()
}

// Entries returns a snapshot of the applied log.
func (r *Recorder) Entries() []ApplyRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ApplyRecord, len(r.entries))
	copy(out, r.entries)
	return out
}

// scopedProc narrows a replica's view of the cluster to the first n nodes:
// the bench cluster hosts N replicas plus C clients, but the consensus
// group is the replicas only, so broadcasts (and majority math) must not
// include client nodes.
type scopedProc struct {
	inner consensus.Process
	n     int
}

func (p *scopedProc) Init(env consensus.Environment) {
	p.inner.Init(&scopedEnv{Environment: env, n: p.n})
}
func (p *scopedProc) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	p.inner.HandleMessage(from, m)
}
func (p *scopedProc) HandleTimer(id consensus.TimerID) { p.inner.HandleTimer(id) }

// scopedEnv overrides N and Broadcast to span only the replica group, and
// forwards the optional observability interfaces the embedded interface
// value would otherwise hide.
type scopedEnv struct {
	consensus.Environment
	n int
}

func (e *scopedEnv) N() int { return e.n }

func (e *scopedEnv) Broadcast(m consensus.Message) {
	for i := 0; i < e.n; i++ {
		e.Environment.Send(consensus.ProcessID(i), m)
	}
}

func (e *scopedEnv) Span(kind string, begin bool, value int64) {
	if s, ok := e.Environment.(consensus.SpanSink); ok {
		s.Span(kind, begin, value)
	}
}

func (e *scopedEnv) SpansEnabled() bool {
	if s, ok := e.Environment.(interface{ SpansEnabled() bool }); ok {
		return s.SpansEnabled()
	}
	return false
}

func (e *scopedEnv) ObserveDuration(name string, d time.Duration) {
	consensus.ObserveDuration(e.Environment, name, d)
}

func (e *scopedEnv) ObserveValue(name string, v int64) {
	consensus.ObserveValue(e.Environment, name, v)
}
