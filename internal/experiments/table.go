// Package experiments regenerates every experiment table and figure in
// EXPERIMENTS.md (the paper's claims C1–C6 recast as measurable series; see
// DESIGN.md §3 for the index). Each generator builds its workloads through
// internal/harness, so the CLI (cmd/experiments), the root benchmarks
// (bench_test.go), and the tests all run identical code.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one rendered experiment: an ID matching the DESIGN.md index, the
// paper's predicted shape, and the measured rows.
type Table struct {
	// ID is the experiment identifier ("Table 1", "Figure 1", ...).
	ID string
	// Title is a one-line description.
	Title string
	// Claim restates the paper's prediction for this experiment.
	Claim string
	// Columns are the column headers.
	Columns []string
	// Rows hold the measured data, one cell per column.
	Rows [][]string
	// Notes carries methodology remarks (seeds, parameters).
	Notes string
}

// Markdown renders the table as a GitHub-flavoured markdown section.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Paper's prediction**: %s\n\n", t.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}

// String renders a plain-text view for terminals.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// inDelta formats a duration as a multiple of δ with two decimals.
func inDelta(d, delta time.Duration) string {
	return fmt.Sprintf("%.2fδ", float64(d)/float64(delta))
}

// medianOf returns the median of the (non-empty) sample set.
func medianOf(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// maxOf returns the maximum of the sample set.
func maxOf(samples []time.Duration) time.Duration {
	var best time.Duration
	for _, s := range samples {
		if s > best {
			best = s
		}
	}
	return best
}
