package experiments

import (
	"fmt"
	"time"

	"repro/internal/harness"
	"repro/internal/protocol"
)

// Params are the common experiment knobs. The zero value is not usable;
// call DefaultParams.
type Params struct {
	// Delta is δ for all runs.
	Delta time.Duration
	// TS is the stabilization time for unstable-start runs.
	TS time.Duration
	// Seeds is the number of independent runs per configuration; tables
	// report the median (and sometimes max) across seeds.
	Seeds int
	// Rho is the clock-drift bound used where the experiment doesn't
	// sweep it.
	Rho float64
}

// DefaultParams returns the parameters used for EXPERIMENTS.md: δ = 10ms,
// TS = 200ms, 5 seeds, ρ = 1%.
func DefaultParams() Params {
	return Params{Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond, Seeds: 5, Rho: 0.01}
}

// modpaxosBound asks the registry for modified Paxos's declared decision
// bound (ε + 3τ + 5δ) at the given parameters — the line every latency
// table is compared against.
func modpaxosBound(delta, sigma time.Duration, rho float64) (time.Duration, error) {
	d, err := protocol.Get(string(harness.ModifiedPaxos))
	if err != nil {
		return 0, err
	}
	return d.DecisionBound(protocol.Params{Delta: delta, Sigma: sigma, Rho: rho})
}

// run executes one harness config and fails loudly: experiments are
// generators, and a run that cannot decide or violates safety must never be
// silently folded into a table.
func run(cfg harness.Config) (harness.Result, error) {
	res, err := harness.Run(cfg)
	if err != nil {
		return res, err
	}
	if res.Violation != nil {
		return res, fmt.Errorf("experiments: safety violation in %s run: %w", cfg.Protocol, res.Violation)
	}
	if !res.Decided {
		return res, fmt.Errorf("experiments: %s run (n=%d seed=%d attack=%s/%d) did not decide",
			cfg.Protocol, cfg.N, cfg.Seed, cfg.Attack, cfg.AttackK)
	}
	return res, nil
}

// latencies collects LatencyAfterTS over p.Seeds seeds of the base config.
func latencies(p Params, base harness.Config) ([]time.Duration, error) {
	out := make([]time.Duration, 0, p.Seeds)
	for s := 0; s < p.Seeds; s++ {
		cfg := base
		cfg.Seed = int64(1000 + s)
		res, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res.LatencyAfterTS)
	}
	return out, nil
}

// Table1LatencyVsN is E1: decision latency after TS as the cluster grows.
// Modified Paxos and modified B-Consensus stay O(δ); traditional Paxos
// under the obsolete-ballot attack and the round-based algorithm under dead
// coordinators grow with N.
func Table1LatencyVsN(p Params) (Table, error) {
	t := Table{
		ID:    "Table 1",
		Title: "decision latency after TS vs N (median across seeds, in δ)",
		Claim: "modified Paxos and modified B-Consensus decide in O(δ) independent of N; " +
			"traditional Paxos (obsolete ballots) and rotating-coordinator round-based " +
			"(dead coordinators) degrade as O(Nδ) (§2–§5)",
		Columns: []string{"N", "mod-paxos", "trad-paxos+attack", "round-based+attack", "mod-b-consensus"},
		Notes: fmt.Sprintf("δ=%v TS=%v seeds=%d; attack strength scales with N: ⌈N/2⌉−1 obsolete ballots / dead coordinators",
			p.Delta, p.TS, p.Seeds),
	}
	for _, n := range []int{3, 5, 9, 17, 33} {
		k := (n+1)/2 - 1
		row := []string{fmt.Sprintf("%d", n)}
		cells := []harness.Config{
			{Protocol: harness.ModifiedPaxos, N: n, Delta: p.Delta, TS: p.TS, Rho: p.Rho},
			{Protocol: harness.TraditionalPaxos, N: n, Delta: p.Delta, TS: p.TS, Attack: harness.ObsoleteBallots, AttackK: k},
			{Protocol: harness.RoundBased, N: n, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Attack: harness.DeadCoordinators, AttackK: k},
			{Protocol: harness.ModifiedBConsensus, N: n, Delta: p.Delta, TS: p.TS, Rho: p.Rho},
		}
		for _, cfg := range cells {
			lats, err := latencies(p, cfg)
			if err != nil {
				return Table{}, err
			}
			row = append(row, inDelta(medianOf(lats), p.Delta))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table2LatencyVsDelta is E2: modified-Paxos latency is linear in δ with a
// constant below the paper's ε+3τ+5δ bound.
func Table2LatencyVsDelta(p Params) (Table, error) {
	t := Table{
		ID:    "Table 2",
		Title: "modified-Paxos latency after TS vs δ",
		Claim: "latency is O(δ): it scales linearly in δ and stays below the ε+3τ+5δ bound (≈18δ at defaults, ≈17δ for σ≈4δ, ε≪δ) (§4)",
		Columns: []string{
			"δ", "median latency", "median (in δ)", "max (in δ)", "paper bound (in δ)",
		},
		Notes: fmt.Sprintf("N=5 TS=%v seeds=%d rho=%.2f", p.TS, p.Seeds, p.Rho),
	}
	for _, delta := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	} {
		lats, err := latencies(p, harness.Config{
			Protocol: harness.ModifiedPaxos, N: 5, Delta: delta, TS: p.TS, Rho: p.Rho,
		})
		if err != nil {
			return Table{}, err
		}
		bound, err := modpaxosBound(delta, 0, p.Rho)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			delta.String(),
			medianOf(lats).String(),
			inDelta(medianOf(lats), delta),
			inDelta(maxOf(lats), delta),
			inDelta(bound, delta),
		})
	}
	return t, nil
}

// Table3RestartRecovery is E3: a process restarting after TS decides within
// O(δ) of its restart, however late it comes back.
func Table3RestartRecovery(p Params) (Table, error) {
	t := Table{
		ID:      "Table 3",
		Title:   "modified-Paxos restart recovery (restart at TS+offset)",
		Claim:   "every process that restarts after TS decides within O(δ) of its restart (§4, Process Restarts)",
		Columns: []string{"restart offset after TS", "median recovery", "median (in δ)", "max (in δ)"},
		Notes: fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; process 4 crashes at TS/2 and restarts at the offset; decision gossip every 2δ",
			p.Delta, p.TS, p.Seeds),
	}
	for _, mult := range []int{2, 10, 30, 100} {
		offset := time.Duration(mult) * p.Delta
		var recs []time.Duration
		for s := 0; s < p.Seeds; s++ {
			res, err := run(harness.Config{
				Protocol: harness.ModifiedPaxos, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho,
				Seed: int64(2000 + s),
				Restarts: []harness.Restart{
					{Proc: 4, CrashAt: p.TS / 2, RestartAt: p.TS + offset},
				},
				Horizon: p.TS + offset + 100*p.Delta,
			})
			if err != nil {
				return Table{}, err
			}
			rec, ok := res.RestartRecovery[4]
			if !ok {
				return Table{}, fmt.Errorf("experiments: no recovery recorded (seed %d offset %v)", s, offset)
			}
			recs = append(recs, rec)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d·δ", mult),
			medianOf(recs).String(),
			inDelta(medianOf(recs), p.Delta),
			inDelta(maxOf(recs), p.Delta),
		})
	}
	return t, nil
}

// Table4EpsilonTradeoff is E4: the ε-heartbeat trades stable-period message
// rate against post-stabilization decision latency.
func Table4EpsilonTradeoff(p Params) (Table, error) {
	t := Table{
		ID:    "Table 4",
		Title: "ε trade-off: message rate before TS vs decision latency after TS",
		Claim: "increasing ε sends fewer phase 1a heartbeats but delays the post-stability decision; " +
			"frequent message sending is an unavoidable cost of fast recovery (§4, Reducing Message Complexity)",
		Columns: []string{"ε", "heartbeats/process/δ before TS", "median latency after TS (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; pre-TS policy drops everything, so all pre-TS sends are heartbeats", p.Delta, p.TS, p.Seeds),
	}
	for _, frac := range []struct {
		label string
		eps   time.Duration
	}{
		{"δ/10", p.Delta / 10},
		{"δ/2", p.Delta / 2},
		{"δ", p.Delta},
		{"2δ", 2 * p.Delta},
		{"4δ", 4 * p.Delta},
	} {
		var lats []time.Duration
		var preRate float64
		for s := 0; s < p.Seeds; s++ {
			res, err := run(harness.Config{
				Protocol: harness.ModifiedPaxos, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho,
				Eps: frac.eps, Seed: int64(3000 + s),
			})
			if err != nil {
				return Table{}, err
			}
			lats = append(lats, res.LatencyAfterTS)
			// Messages dropped before TS are exactly the pre-TS sends
			// under DropAll; normalize per process per δ.
			preSends := res.Collector.TotalDropped()
			preRate += float64(preSends) / 5 / (float64(p.TS) / float64(p.Delta))
		}
		preRate /= float64(p.Seeds)
		t.Rows = append(t.Rows, []string{
			frac.label,
			fmt.Sprintf("%.1f", preRate),
			inDelta(medianOf(lats), p.Delta),
		})
	}
	return t, nil
}

// Figure1SessionConvergence is E5: the proof's session ladder. After TS the
// maximum session climbs s0+1, s0+2, s0+3 and the decision lands within 5δ
// of the last entry.
func Figure1SessionConvergence(p Params) (Table, error) {
	res, err := run(harness.Config{
		Protocol: harness.ModifiedPaxos, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Seed: 4242,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Figure 1",
		Title: "max session number over time (one run, sessions entered after TS)",
		Claim: "proof steps 3–5: sessions s0+1, s0+2, s0+3 are entered within τ of each other; " +
			"step 8: every nonfaulty process decides within 5δ of the last session start (§4)",
		Columns: []string{"event", "global time", "time after TS (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seed=4242; s0 is the max session at TS", p.Delta, p.TS),
	}
	var maxSession int64 = -1
	for _, s := range res.Collector.Series("session") {
		if s.Value > maxSession {
			maxSession = s.Value
			after := s.At - p.TS
			if after < 0 {
				after = 0
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("first process enters session %d", s.Value),
				s.At.String(),
				inDelta(after, p.Delta),
			})
		}
	}
	t.Rows = append(t.Rows, []string{
		"last process decides",
		res.LastDecision.String(),
		inDelta(res.LastDecision-p.TS, p.Delta),
	})
	return t, nil
}

// Table5ObsoleteBallots is E6: attack strength k vs latency — the headline
// contrast between §2 and §4.
func Table5ObsoleteBallots(p Params) (Table, error) {
	t := Table{
		ID:    "Table 5",
		Title: "obsolete-ballot attack strength k vs latency after TS (median, in δ)",
		Claim: "traditional Paxos pays ≈2δ per obsolete ballot (O(Nδ) with k=⌈N/2⌉−1 failed processes); " +
			"the modified algorithm's session cap makes the equivalent legal attack free (§2 vs §4)",
		Columns: []string{"k", "trad-paxos", "mod-paxos"},
		Notes: fmt.Sprintf("N=17 δ=%v TS=%v seeds=%d; adaptive release against 15 victims; "+
			"worst-case delivery (every message takes exactly δ) for both protocols", p.Delta, p.TS, p.Seeds),
	}
	for _, k := range []int{0, 2, 4, 6, 8} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, proto := range []harness.Protocol{harness.TraditionalPaxos, harness.ModifiedPaxos} {
			lats, err := latencies(p, harness.Config{
				Protocol: proto, N: 17, Delta: p.Delta, TS: p.TS,
				Attack: harness.ObsoleteBallots, AttackK: k, WorstCaseDelays: true,
			})
			if err != nil {
				return Table{}, err
			}
			row = append(row, inDelta(medianOf(lats), p.Delta))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table6StablePath is E7: with phase 1 pre-executed, decisions take ~3
// message delays and O(N²) phase-2 messages, matching ordinary Paxos in the
// stable case.
func Table6StablePath(p Params) (Table, error) {
	t := Table{
		ID:    "Table 6",
		Title: "stable-state fast path (phase 1 pre-executed, TS=0)",
		Claim: "with ε large and phase 1 executed in advance, all nonfaulty processes decide within 3 message " +
			"delays, like ordinary stable-case Paxos (§4, Reducing Message Complexity)",
		Columns: []string{"N", "median decision time (in δ)", "messages to decide (median)"},
		Notes:   fmt.Sprintf("δ=%v seeds=%d; 'messages' counts phase-2 and decision traffic for one instance", p.Delta, p.Seeds),
	}
	for _, n := range []int{3, 5, 9, 17} {
		var lats []time.Duration
		var msgs []time.Duration // reuse duration median helper via cast
		for s := 0; s < p.Seeds; s++ {
			res, err := run(harness.Config{
				Protocol: harness.ModifiedPaxos, N: n, Delta: p.Delta, Prepared: true,
				Seed: int64(5000 + s), Horizon: time.Second,
			})
			if err != nil {
				return Table{}, err
			}
			lats = append(lats, res.LastDecision)
			count := res.MessagesByType["p2a"] + res.MessagesByType["p2b"] + res.MessagesByType["decided"]
			msgs = append(msgs, time.Duration(count))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			inDelta(medianOf(lats), p.Delta),
			fmt.Sprintf("%d", int64(medianOf(msgs))),
		})
	}
	return t, nil
}

// Table7SigmaSweep is E8: latency tracks ε+3·max(2δ+ε, σ)+5δ as σ grows.
func Table7SigmaSweep(p Params) (Table, error) {
	t := Table{
		ID:      "Table 7",
		Title:   "modified-Paxos latency after TS vs σ",
		Claim:   "decision time is ≤ ε+3τ+5δ with τ = max(2δ+ε, σ): growing σ stretches the session ladder linearly (§4)",
		Columns: []string{"σ (in δ)", "median latency (in δ)", "max (in δ)", "bound (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d", p.Delta, p.TS, p.Seeds),
	}
	for _, mult := range []float64{4.3, 6, 8, 12} {
		sigma := time.Duration(mult * float64(p.Delta))
		lats, err := latencies(p, harness.Config{
			Protocol: harness.ModifiedPaxos, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Sigma: sigma,
		})
		if err != nil {
			return Table{}, err
		}
		bound, err := modpaxosBound(p.Delta, sigma, p.Rho)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fδ", mult),
			inDelta(medianOf(lats), p.Delta),
			inDelta(maxOf(lats), p.Delta),
			inDelta(bound, p.Delta),
		})
	}
	return t, nil
}

// Table8BConsensus is E9: the modified B-Consensus decides in O(δ) after
// TS, flat in N.
func Table8BConsensus(p Params) (Table, error) {
	t := Table{
		ID:    "Table 8",
		Title: "modified B-Consensus latency after TS vs N (median, in δ)",
		Claim: "the leaderless oracle-based algorithm decides within O(δ) of TS, independent of N, with " +
			"about the same delay as modified Paxos (§5)",
		Columns: []string{"N", "median latency (in δ)", "max (in δ)"},
		Notes:   fmt.Sprintf("δ=%v TS=%v seeds=%d; oracle hold-back 2δ", p.Delta, p.TS, p.Seeds),
	}
	for _, n := range []int{3, 5, 9, 17} {
		lats, err := latencies(p, harness.Config{
			Protocol: harness.ModifiedBConsensus, N: n, Delta: p.Delta, TS: p.TS, Rho: p.Rho,
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			inDelta(medianOf(lats), p.Delta),
			inDelta(maxOf(lats), p.Delta),
		})
	}
	return t, nil
}

// Table9ClockDrift is E10: robustness of the bound as ρ grows (σ must grow
// with ρ, so the ladder stretches but remains O(δ)).
func Table9ClockDrift(p Params) (Table, error) {
	t := Table{
		ID:      "Table 9",
		Title:   "modified-Paxos latency after TS vs clock-rate error ρ",
		Claim:   "the session-timer window [4δ, σ] requires σ ≥ 4δ(1+ρ)/(1−ρ): latency degrades smoothly as clocks worsen (§4)",
		Columns: []string{"ρ", "σ used (in δ)", "median latency (in δ)", "bound (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; σ at its per-ρ default", p.Delta, p.TS, p.Seeds),
	}
	for _, rho := range []float64{0, 0.01, 0.05, 0.10} {
		lats, err := latencies(p, harness.Config{
			Protocol: harness.ModifiedPaxos, N: 5, Delta: p.Delta, TS: p.TS, Rho: rho,
		})
		if err != nil {
			return Table{}, err
		}
		bound, err := modpaxosBound(p.Delta, 0, rho)
		if err != nil {
			return Table{}, err
		}
		// Recover the default σ the config picked for this ρ.
		sigma := defaultSigma(p.Delta, rho)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", rho*100),
			inDelta(sigma, p.Delta),
			inDelta(medianOf(lats), p.Delta),
			inDelta(bound, p.Delta),
		})
	}
	return t, nil
}

// Figure2OracleRounds traces one modified-B-Consensus run: the round
// numbers processes enter and when the oracle's first deliveries happen,
// showing the §5 mechanism — rounds churn harmlessly before TS, and the
// first round that begins cleanly after TS+2δ decides.
func Figure2OracleRounds(p Params) (Table, error) {
	res, err := run(harness.Config{
		Protocol: harness.ModifiedBConsensus, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Seed: 777,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Figure 2",
		Title: "modified B-Consensus: round entries and oracle deliveries (one run)",
		Claim: "after TS the hold-back oracle delivers round messages in the same order everywhere, " +
			"so the first clean round decides; obsolete rounds before that are harmless (§5)",
		Columns: []string{"event", "global time", "time after TS (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seed=777; hold-back 2δ", p.Delta, p.TS),
	}
	addFirst := func(kind, label string) {
		var maxSeen int64 = -1
		for _, s := range res.Collector.Series(kind) {
			if s.Value > maxSeen {
				maxSeen = s.Value
				after := s.At - p.TS
				if after < 0 {
					after = 0
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%s %d", label, s.Value),
					s.At.String(),
					inDelta(after, p.Delta),
				})
			}
		}
	}
	addFirst("round", "first process enters round")
	addFirst("wadeliver", "first oracle delivery for round")
	t.Rows = append(t.Rows, []string{
		"last process decides",
		res.LastDecision.String(),
		inDelta(res.LastDecision-p.TS, p.Delta),
	})
	return t, nil
}

// Table10EntryRuleAblation shows the majority-session-entry rule is load
// bearing: with it disabled, a failed process could legally have produced
// arbitrarily high sessions before TS, and their adaptive release delays
// consensus linearly in k, far past the paper's bound.
func Table10EntryRuleAblation(p Params) (Table, error) {
	t := Table{
		ID:    "Table 10",
		Title: "ABLATION: modified Paxos with the session-entry rule disabled",
		Claim: "the majority-entry rule is what caps obsolete sessions (proof step 1): " +
			"without it the §2 problem returns and latency grows without bound in k; " +
			"with it the strongest legal attack is absorbed within ε+3τ+5δ",
		Columns: []string{"k", "rule enabled (legal attack)", "rule DISABLED (high sessions)", "bound"},
		Notes: fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; worst-case delivery; adaptive release timed against each ballot",
			p.Delta, p.TS, p.Seeds),
	}
	bound, err := modpaxosBound(p.Delta, 0, p.Rho)
	if err != nil {
		return Table{}, err
	}
	// Both arms run through the ordinary harness: the ablated algorithm is
	// just another registered protocol ("modpaxos-norule", the hidden
	// variant shipped by protocol/all), and each descriptor's Obsolete hook
	// mounts the strongest attack its rules allow — session-capped for the
	// real algorithm, adaptive high-session release for the ablated one.
	for _, k := range []int{0, 2, 4, 8} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, proto := range []harness.Protocol{harness.ModifiedPaxos, "modpaxos-norule"} {
			var lats []time.Duration
			for s := 0; s < p.Seeds; s++ {
				res, err := run(harness.Config{
					Protocol: proto, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho,
					Attack: harness.ObsoleteBallots, AttackK: k,
					WorstCaseDelays: true,
					Seed:            int64(7000 + s),
					Horizon:         5 * time.Minute,
				})
				if err != nil {
					return Table{}, err
				}
				lats = append(lats, res.LatencyAfterTS)
			}
			row = append(row, inDelta(medianOf(lats), p.Delta))
		}
		row = append(row, inDelta(bound, p.Delta))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table11MessageComplexity compares total messages sent until decision
// across protocols and cluster sizes — the cost axis of §4's "Reducing
// Message Complexity" discussion. All four are O(N²) per round; the
// interesting column is modified Paxos's heartbeat overhead, which is the
// price of its O(δ) recovery.
func Table11MessageComplexity(p Params) (Table, error) {
	t := Table{
		ID:    "Table 11",
		Title: "messages sent until global decision (median across seeds)",
		Claim: "every protocol sends O(N²) messages per phase; the modified algorithm additionally " +
			"pays the ε-heartbeat during instability — the unavoidable cost of fast recovery (§4)",
		Columns: []string{"N", "mod-paxos", "trad-paxos", "round-based", "mod-b-consensus"},
		Notes:   fmt.Sprintf("δ=%v TS=%v seeds=%d, no attack; counts include pre-TS sends", p.Delta, p.TS, p.Seeds),
	}
	for _, n := range []int{3, 5, 9, 17} {
		row := []string{fmt.Sprintf("%d", n)}
		for _, proto := range []harness.Protocol{
			harness.ModifiedPaxos, harness.TraditionalPaxos, harness.RoundBased, harness.ModifiedBConsensus,
		} {
			var counts []time.Duration // reuse the duration median helper
			for s := 0; s < p.Seeds; s++ {
				res, err := run(harness.Config{
					Protocol: proto, N: n, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Seed: int64(8000 + s),
				})
				if err != nil {
					return Table{}, err
				}
				counts = append(counts, time.Duration(res.Messages))
			}
			row = append(row, fmt.Sprintf("%d", int64(medianOf(counts))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// defaultSigma mirrors modpaxos's default σ selection (minimum legal + 5%).
func defaultSigma(delta time.Duration, rho float64) time.Duration {
	min := time.Duration(float64(4*delta) * (1 + rho) / (1 - rho))
	return min + min/20
}

// All runs every experiment in DESIGN.md order.
func All(p Params) ([]Table, error) {
	gens := []func(Params) (Table, error){
		Table1LatencyVsN,
		Table2LatencyVsDelta,
		Table3RestartRecovery,
		Table4EpsilonTradeoff,
		Figure1SessionConvergence,
		Table5ObsoleteBallots,
		Table6StablePath,
		Table7SigmaSweep,
		Table8BConsensus,
		Figure2OracleRounds,
		Table9ClockDrift,
		Table10EntryRuleAblation,
		Table11MessageComplexity,
	}
	out := make([]Table, 0, len(gens))
	for _, gen := range gens {
		t, err := gen(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
