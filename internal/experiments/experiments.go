package experiments

import (
	"fmt"
	"time"

	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// Params are the common experiment knobs. The zero value is not usable;
// call DefaultParams.
type Params struct {
	// Delta is δ for all runs.
	Delta time.Duration
	// TS is the stabilization time for unstable-start runs.
	TS time.Duration
	// Seeds is the number of independent runs per configuration; tables
	// report the median (and sometimes max) across seeds.
	Seeds int
	// Rho is the clock-drift bound used where the experiment doesn't
	// sweep it.
	Rho float64
}

// DefaultParams returns the parameters used for EXPERIMENTS.md: δ = 10ms,
// TS = 200ms, 5 seeds, ρ = 1%.
func DefaultParams() Params {
	return Params{Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond, Seeds: 5, Rho: 0.01}
}

// modpaxosBound asks the registry for modified Paxos's declared decision
// bound (ε + 3τ + 5δ) at the given parameters — the line every latency
// table is compared against.
func modpaxosBound(delta, sigma time.Duration, rho float64) (time.Duration, error) {
	d, err := protocol.Get(string(harness.ModifiedPaxos))
	if err != nil {
		return 0, err
	}
	return d.DecisionBound(protocol.Params{Delta: delta, Sigma: sigma, Rho: rho})
}

// base is the spec every grid-backed table starts from: the experiment's
// shared parameters, named after the table.
func (p Params) base(name string) scenario.Spec {
	return scenario.Spec{
		Name: name, Delta: p.Delta, TS: p.TS, Seeds: p.Seeds,
		Clocks: scenario.ClockProfile{Rho: p.Rho},
	}
}

// sweepTable fills t.Rows from a single-protocol sweep over ax: one row per
// cell, labelled by its axis value, the remaining columns rendered by cell.
// tweak (optional) adjusts the base spec first (seeds, horizon, raw-run
// retention).
func (p Params) sweepTable(t *Table, proto harness.Protocol, tweak func(*scenario.Spec), ax scenario.Axis, cell func(scenario.GridCell) []string) error {
	base := p.base(t.ID)
	base.Protocols = []harness.Protocol{proto}
	if tweak != nil {
		tweak(&base)
	}
	rep, err := runGrid(scenario.Grid{Base: base, Axes: []scenario.Axis{ax}})
	if err != nil {
		return err
	}
	for _, c := range rep.Cells {
		t.Rows = append(t.Rows, append([]string{c.Coords[0].Value}, cell(c)...))
	}
	return nil
}

// axisOf builds a labelled axis from values and a per-value spec setter —
// for the axes the tables state in experiment-specific units (multiples of
// δ, percentages) rather than raw parameter values.
func axisOf[T any](name string, vals []T, label func(T) string, set func(*scenario.Spec, T)) scenario.Axis {
	ax := scenario.Axis{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, scenario.AxisValue{
			Label: label(v),
			Apply: func(s *scenario.Spec) { set(s, v) },
		})
	}
	return ax
}

// runGrid executes a table's grid and fails loudly: experiments are
// generators, and a run that cannot decide or violates an invariant must
// never be silently folded into a table.
func runGrid(g scenario.Grid) (*scenario.GridReport, error) {
	rep, err := g.Run()
	if err != nil {
		return nil, err
	}
	for _, c := range rep.Cells {
		for _, v := range c.Report.Violations {
			return nil, fmt.Errorf("experiments: %s cell %v: %s seed %d violates %s: %s",
				g.Base.Name, c.Coords, v.Protocol, v.Seed, v.Check, v.Detail)
		}
	}
	return rep, nil
}

// column pins one protocol (and optionally its adversary or clocks) for a
// table column — the axis comparison tables sweep beside a model parameter.
func column(label string, proto harness.Protocol, tweak func(*scenario.Spec)) scenario.AxisValue {
	return scenario.AxisValue{Label: label, Apply: func(s *scenario.Spec) {
		s.Protocols = []harness.Protocol{proto}
		if tweak != nil {
			tweak(s)
		}
	}}
}

// tableRows folds a grid whose last axis is the table's column axis into
// rows: one row per leading-axis value (labelled by it), one rendered cell
// per column value.
func tableRows(rep *scenario.GridReport, cols int, cell func(scenario.GridCell) string) [][]string {
	var rows [][]string
	for i := 0; i+cols <= len(rep.Cells); i += cols {
		row := []string{rep.Cells[i].Coords[0].Value}
		for j := 0; j < cols; j++ {
			row = append(row, cell(rep.Cells[i+j]))
		}
		rows = append(rows, row)
	}
	return rows
}

// only returns the report of a single-protocol cell.
func only(c scenario.GridCell) scenario.ProtocolReport { return c.Report.Protocols[0] }

// medianCell renders a single-protocol cell's median latency in units of δ.
func medianCell(c scenario.GridCell) string { return inDelta(only(c).Latency.Median, c.Report.Delta) }

// run executes one harness config and fails loudly — the single-run escape
// hatch the trace-walking figures use (they need one run's Collector, which
// aggregated grid cells do not carry).
func run(cfg harness.Config) (harness.Result, error) {
	res, err := harness.Run(cfg)
	if err != nil {
		return res, err
	}
	if res.Violation != nil {
		return res, fmt.Errorf("experiments: safety violation in %s run: %w", cfg.Protocol, res.Violation)
	}
	if !res.Decided {
		return res, fmt.Errorf("experiments: %s run (n=%d seed=%d attack=%s/%d) did not decide",
			cfg.Protocol, cfg.N, cfg.Seed, cfg.Attack, cfg.AttackK)
	}
	return res, nil
}

// Table1LatencyVsN is E1: decision latency after TS as the cluster grows.
// Modified Paxos and modified B-Consensus stay O(δ); traditional Paxos
// under the obsolete-ballot attack and the round-based algorithm under dead
// coordinators grow with N.
func Table1LatencyVsN(p Params) (Table, error) {
	t := Table{
		ID:    "Table 1",
		Title: "decision latency after TS vs N (median across seeds, in δ)",
		Claim: "modified Paxos and modified B-Consensus decide in O(δ) independent of N; " +
			"traditional Paxos (obsolete ballots) and rotating-coordinator round-based " +
			"(dead coordinators) degrade as O(Nδ) (§2–§5)",
		Columns: []string{"N", "mod-paxos", "trad-paxos+attack", "round-based+attack", "mod-b-consensus"},
		Notes: fmt.Sprintf("δ=%v TS=%v seeds=%d; attack strength scales with N: ⌈N/2⌉−1 obsolete ballots / dead coordinators",
			p.Delta, p.TS, p.Seeds),
	}
	// Attack strength 0 means "scale with N" (⌈N/2⌉−1, the paper's
	// maximum), so one column definition serves every cluster size.
	algos := scenario.CustomAxis("algorithm",
		column("mod-paxos", harness.ModifiedPaxos, nil),
		column("trad-paxos", harness.TraditionalPaxos, func(s *scenario.Spec) {
			s.Clocks.Rho = 0
			s.Adversary = scenario.AdversaryProfile{Attack: harness.ObsoleteBallots}
		}),
		column("round-based", harness.RoundBased, func(s *scenario.Spec) {
			s.Adversary = scenario.AdversaryProfile{Attack: harness.DeadCoordinators}
		}),
		column("mod-b-consensus", harness.ModifiedBConsensus, nil),
	)
	rep, err := runGrid(scenario.Grid{Base: p.base("Table 1"), Axes: []scenario.Axis{scenario.NAxis(3, 5, 9, 17, 33), algos}})
	if err != nil {
		return Table{}, err
	}
	t.Rows = tableRows(rep, len(algos.Values), medianCell)
	return t, nil
}

// Table2LatencyVsDelta is E2: modified-Paxos latency is linear in δ with a
// constant below the paper's ε+3τ+5δ bound.
func Table2LatencyVsDelta(p Params) (Table, error) {
	t := Table{
		ID:      "Table 2",
		Title:   "modified-Paxos latency after TS vs δ",
		Claim:   "latency is O(δ): it scales linearly in δ and stays below the ε+3τ+5δ bound (≈18δ at defaults, ≈17δ for σ≈4δ, ε≪δ) (§4)",
		Columns: []string{"δ", "median latency", "median (in δ)", "max (in δ)", "paper bound (in δ)"},
		Notes:   fmt.Sprintf("N=5 TS=%v seeds=%d rho=%.2f", p.TS, p.Seeds, p.Rho),
	}
	err := p.sweepTable(&t, harness.ModifiedPaxos, nil, scenario.DeltaAxis(
		time.Millisecond, 2*time.Millisecond, 5*time.Millisecond,
		10*time.Millisecond, 20*time.Millisecond, 50*time.Millisecond,
	), func(c scenario.GridCell) []string {
		pr, delta := only(c), c.Report.Delta
		return []string{pr.Latency.Median.String(), inDelta(pr.Latency.Median, delta),
			inDelta(pr.Latency.Max, delta), inDelta(pr.Bound, delta)}
	})
	return t, err
}

// Table3RestartRecovery is E3: a process restarting after TS decides within
// O(δ) of its restart, however late it comes back.
func Table3RestartRecovery(p Params) (Table, error) {
	t := Table{
		ID:      "Table 3",
		Title:   "modified-Paxos restart recovery (restart at TS+offset)",
		Claim:   "every process that restarts after TS decides within O(δ) of its restart (§4, Process Restarts)",
		Columns: []string{"restart offset after TS", "median recovery", "median (in δ)", "max (in δ)"},
		Notes: fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; process 4 crashes at TS/2 and restarts at the offset; decision gossip every 2δ",
			p.Delta, p.TS, p.Seeds),
	}
	offsets := axisOf("restart-offset", []int{2, 10, 30, 100},
		func(m int) string { return fmt.Sprintf("%d·δ", m) },
		func(s *scenario.Spec, m int) {
			s.Faults = []scenario.Fault{scenario.CrashRestart{
				Proc: 4, Crash: scenario.AtAbs(p.TS / 2), Restart: scenario.AfterTS(float64(m)),
			}}
			s.Horizon = p.TS + time.Duration(m)*p.Delta + 100*p.Delta
		})
	var missing error
	err := p.sweepTable(&t, harness.ModifiedPaxos,
		func(s *scenario.Spec) { s.BaseSeed = 2000; s.KeepRuns = true }, offsets,
		func(c scenario.GridCell) []string {
			var recs []time.Duration
			for _, r := range c.Report.Runs() {
				rec, ok := r.Res.RestartRecovery[4]
				if !ok {
					missing = fmt.Errorf("experiments: no recovery recorded (seed %d offset %s)", r.Seed, c.Coords[0].Value)
					return nil
				}
				recs = append(recs, rec)
			}
			return []string{medianOf(recs).String(), inDelta(medianOf(recs), p.Delta), inDelta(maxOf(recs), p.Delta)}
		})
	if err == nil {
		err = missing
	}
	return t, err
}

// Table4EpsilonTradeoff is E4: the ε-heartbeat trades stable-period message
// rate against post-stabilization decision latency.
func Table4EpsilonTradeoff(p Params) (Table, error) {
	t := Table{
		ID:    "Table 4",
		Title: "ε trade-off: message rate before TS vs decision latency after TS",
		Claim: "increasing ε sends fewer phase 1a heartbeats but delays the post-stability decision; " +
			"frequent message sending is an unavoidable cost of fast recovery (§4, Reducing Message Complexity)",
		Columns: []string{"ε", "heartbeats/process/δ before TS", "median latency after TS (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; pre-TS policy drops everything, so all pre-TS sends are heartbeats", p.Delta, p.TS, p.Seeds),
	}
	type frac struct {
		label string
		eps   time.Duration
	}
	eps := axisOf("eps", []frac{
		{"δ/10", p.Delta / 10}, {"δ/2", p.Delta / 2}, {"δ", p.Delta},
		{"2δ", 2 * p.Delta}, {"4δ", 4 * p.Delta},
	},
		func(f frac) string { return f.label },
		func(s *scenario.Spec, f frac) { s.Eps = f.eps })
	err := p.sweepTable(&t, harness.ModifiedPaxos,
		func(s *scenario.Spec) { s.BaseSeed = 3000; s.KeepRuns = true }, eps,
		func(c scenario.GridCell) []string {
			// Messages dropped before TS are exactly the pre-TS sends under
			// DropAll; normalize per process per δ, averaged over seeds.
			var preRate float64
			for _, r := range c.Report.Runs() {
				preSends := r.Res.Collector.TotalDropped()
				preRate += float64(preSends) / float64(c.Report.N) / (float64(p.TS) / float64(p.Delta))
			}
			preRate /= float64(c.Report.Seeds)
			return []string{fmt.Sprintf("%.1f", preRate), medianCell(c)}
		})
	return t, err
}

// Figure1SessionConvergence is E5: the proof's session ladder. After TS the
// maximum session climbs s0+1, s0+2, s0+3 and the decision lands within 5δ
// of the last entry.
func Figure1SessionConvergence(p Params) (Table, error) {
	res, err := run(harness.Config{
		Protocol: harness.ModifiedPaxos, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Seed: 4242,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Figure 1",
		Title: "max session number over time (one run, sessions entered after TS)",
		Claim: "proof steps 3–5: sessions s0+1, s0+2, s0+3 are entered within τ of each other; " +
			"step 8: every nonfaulty process decides within 5δ of the last session start (§4)",
		Columns: []string{"event", "global time", "time after TS (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seed=4242; s0 is the max session at TS", p.Delta, p.TS),
	}
	var maxSession int64 = -1
	for _, s := range res.Collector.Series("session") {
		if s.Value > maxSession {
			maxSession = s.Value
			after := s.At - p.TS
			if after < 0 {
				after = 0
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("first process enters session %d", s.Value),
				s.At.String(),
				inDelta(after, p.Delta),
			})
		}
	}
	t.Rows = append(t.Rows, []string{
		"last process decides",
		res.LastDecision.String(),
		inDelta(res.LastDecision-p.TS, p.Delta),
	})
	return t, nil
}

// Table5ObsoleteBallots is E6: attack strength k vs latency — the headline
// contrast between §2 and §4.
func Table5ObsoleteBallots(p Params) (Table, error) {
	t := Table{
		ID:    "Table 5",
		Title: "obsolete-ballot attack strength k vs latency after TS (median, in δ)",
		Claim: "traditional Paxos pays ≈2δ per obsolete ballot (O(Nδ) with k=⌈N/2⌉−1 failed processes); " +
			"the modified algorithm's session cap makes the equivalent legal attack free (§2 vs §4)",
		Columns: []string{"k", "trad-paxos", "mod-paxos"},
		Notes: fmt.Sprintf("N=17 δ=%v TS=%v seeds=%d; adaptive release against 15 victims; "+
			"worst-case delivery (every message takes exactly δ) for both protocols", p.Delta, p.TS, p.Seeds),
	}
	base := scenario.Spec{
		Name: "Table 5", N: 17, Delta: p.Delta, TS: p.TS, Seeds: p.Seeds,
		WorstCaseDelays: true,
		Adversary:       scenario.AdversaryProfile{Attack: harness.ObsoleteBallots},
	}
	algos := scenario.CustomAxis("algorithm",
		column("trad-paxos", harness.TraditionalPaxos, nil),
		column("mod-paxos", harness.ModifiedPaxos, nil))
	rep, err := runGrid(scenario.Grid{Base: base, Axes: []scenario.Axis{scenario.AttackKAxis(0, 2, 4, 6, 8), algos}})
	if err != nil {
		return Table{}, err
	}
	t.Rows = tableRows(rep, len(algos.Values), medianCell)
	return t, nil
}

// Table6StablePath is E7: with phase 1 pre-executed, decisions take ~3
// message delays and O(N²) phase-2 messages, matching ordinary Paxos in the
// stable case.
func Table6StablePath(p Params) (Table, error) {
	t := Table{
		ID:    "Table 6",
		Title: "stable-state fast path (phase 1 pre-executed, TS=0)",
		Claim: "with ε large and phase 1 executed in advance, all nonfaulty processes decide within 3 message " +
			"delays, like ordinary stable-case Paxos (§4, Reducing Message Complexity)",
		Columns: []string{"N", "median decision time (in δ)", "messages to decide (median)"},
		Notes:   fmt.Sprintf("δ=%v seeds=%d; 'messages' counts phase-2 and decision traffic for one instance", p.Delta, p.Seeds),
	}
	err := p.sweepTable(&t, harness.ModifiedPaxos, func(s *scenario.Spec) {
		s.StableFromStart, s.Prepared = true, true
		s.Clocks.Rho = 0
		s.BaseSeed, s.Horizon, s.KeepRuns = 5000, time.Second, true
	}, scenario.NAxis(3, 5, 9, 17), func(c scenario.GridCell) []string {
		var msgs []time.Duration // reuse the duration median helper via cast
		for _, r := range c.Report.Runs() {
			count := r.Res.MessagesByType["p2a"] + r.Res.MessagesByType["p2b"] + r.Res.MessagesByType["decided"]
			msgs = append(msgs, time.Duration(count))
		}
		return []string{medianCell(c), fmt.Sprintf("%d", int64(medianOf(msgs)))}
	})
	return t, err
}

// Table7SigmaSweep is E8: latency tracks ε+3·max(2δ+ε, σ)+5δ as σ grows.
func Table7SigmaSweep(p Params) (Table, error) {
	t := Table{
		ID:      "Table 7",
		Title:   "modified-Paxos latency after TS vs σ",
		Claim:   "decision time is ≤ ε+3τ+5δ with τ = max(2δ+ε, σ): growing σ stretches the session ladder linearly (§4)",
		Columns: []string{"σ (in δ)", "median latency (in δ)", "max (in δ)", "bound (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d", p.Delta, p.TS, p.Seeds),
	}
	sigmas := axisOf("sigma", []float64{4.3, 6, 8, 12},
		func(m float64) string { return fmt.Sprintf("%.1fδ", m) },
		func(s *scenario.Spec, m float64) { s.Sigma = time.Duration(m * float64(p.Delta)) })
	err := p.sweepTable(&t, harness.ModifiedPaxos, nil, sigmas, func(c scenario.GridCell) []string {
		pr := only(c)
		return []string{inDelta(pr.Latency.Median, p.Delta), inDelta(pr.Latency.Max, p.Delta), inDelta(pr.Bound, p.Delta)}
	})
	return t, err
}

// Table8BConsensus is E9: the modified B-Consensus decides in O(δ) after
// TS, flat in N.
func Table8BConsensus(p Params) (Table, error) {
	t := Table{
		ID:    "Table 8",
		Title: "modified B-Consensus latency after TS vs N (median, in δ)",
		Claim: "the leaderless oracle-based algorithm decides within O(δ) of TS, independent of N, with " +
			"about the same delay as modified Paxos (§5)",
		Columns: []string{"N", "median latency (in δ)", "max (in δ)"},
		Notes:   fmt.Sprintf("δ=%v TS=%v seeds=%d; oracle hold-back 2δ", p.Delta, p.TS, p.Seeds),
	}
	err := p.sweepTable(&t, harness.ModifiedBConsensus, nil, scenario.NAxis(3, 5, 9, 17),
		func(c scenario.GridCell) []string {
			return []string{inDelta(only(c).Latency.Median, p.Delta), inDelta(only(c).Latency.Max, p.Delta)}
		})
	return t, err
}

// Table9ClockDrift is E10: robustness of the bound as ρ grows (σ must grow
// with ρ, so the ladder stretches but remains O(δ)).
func Table9ClockDrift(p Params) (Table, error) {
	t := Table{
		ID:      "Table 9",
		Title:   "modified-Paxos latency after TS vs clock-rate error ρ",
		Claim:   "the session-timer window [4δ, σ] requires σ ≥ 4δ(1+ρ)/(1−ρ): latency degrades smoothly as clocks worsen (§4)",
		Columns: []string{"ρ", "σ used (in δ)", "median latency (in δ)", "bound (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; σ at its per-ρ default", p.Delta, p.TS, p.Seeds),
	}
	rhos := axisOf("rho", []float64{0, 0.01, 0.05, 0.10},
		func(r float64) string { return fmt.Sprintf("%.0f%%", r*100) },
		func(s *scenario.Spec, r float64) { s.Clocks.Rho = r })
	err := p.sweepTable(&t, harness.ModifiedPaxos, nil, rhos, func(c scenario.GridCell) []string {
		// Recover the default σ the config picked for this cell's ρ.
		return []string{inDelta(defaultSigma(p.Delta, c.Params.Rho), p.Delta),
			inDelta(only(c).Latency.Median, p.Delta), inDelta(only(c).Bound, p.Delta)}
	})
	return t, err
}

// Figure2OracleRounds traces one modified-B-Consensus run: the round
// numbers processes enter and when the oracle's first deliveries happen,
// showing the §5 mechanism — rounds churn harmlessly before TS, and the
// first round that begins cleanly after TS+2δ decides.
func Figure2OracleRounds(p Params) (Table, error) {
	res, err := run(harness.Config{
		Protocol: harness.ModifiedBConsensus, N: 5, Delta: p.Delta, TS: p.TS, Rho: p.Rho, Seed: 777,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Figure 2",
		Title: "modified B-Consensus: round entries and oracle deliveries (one run)",
		Claim: "after TS the hold-back oracle delivers round messages in the same order everywhere, " +
			"so the first clean round decides; obsolete rounds before that are harmless (§5)",
		Columns: []string{"event", "global time", "time after TS (in δ)"},
		Notes:   fmt.Sprintf("N=5 δ=%v TS=%v seed=777; hold-back 2δ", p.Delta, p.TS),
	}
	addFirst := func(kind, label string) {
		var maxSeen int64 = -1
		for _, s := range res.Collector.Series(kind) {
			if s.Value > maxSeen {
				maxSeen = s.Value
				after := s.At - p.TS
				if after < 0 {
					after = 0
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%s %d", label, s.Value),
					s.At.String(),
					inDelta(after, p.Delta),
				})
			}
		}
	}
	addFirst("round", "first process enters round")
	addFirst("wadeliver", "first oracle delivery for round")
	t.Rows = append(t.Rows, []string{
		"last process decides",
		res.LastDecision.String(),
		inDelta(res.LastDecision-p.TS, p.Delta),
	})
	return t, nil
}

// Table10EntryRuleAblation shows the majority-session-entry rule is load
// bearing: with it disabled, a failed process could legally have produced
// arbitrarily high sessions before TS, and their adaptive release delays
// consensus linearly in k, far past the paper's bound.
func Table10EntryRuleAblation(p Params) (Table, error) {
	t := Table{
		ID:    "Table 10",
		Title: "ABLATION: modified Paxos with the session-entry rule disabled",
		Claim: "the majority-entry rule is what caps obsolete sessions (proof step 1): " +
			"without it the §2 problem returns and latency grows without bound in k; " +
			"with it the strongest legal attack is absorbed within ε+3τ+5δ",
		Columns: []string{"k", "rule enabled (legal attack)", "rule DISABLED (high sessions)", "bound"},
		Notes: fmt.Sprintf("N=5 δ=%v TS=%v seeds=%d; worst-case delivery; adaptive release timed against each ballot",
			p.Delta, p.TS, p.Seeds),
	}
	bound, err := modpaxosBound(p.Delta, 0, p.Rho)
	if err != nil {
		return Table{}, err
	}
	// Both arms run through the ordinary scenario engine: the ablated
	// algorithm is just another registered protocol ("modpaxos-norule", the
	// hidden variant shipped by protocol/all), and each descriptor's
	// Obsolete hook mounts the strongest attack its rules allow —
	// session-capped for the real algorithm, adaptive high-session release
	// for the ablated one.
	base := p.base("Table 10")
	base.BaseSeed = 7000
	base.WorstCaseDelays = true
	base.Horizon = 5 * time.Minute
	base.Adversary = scenario.AdversaryProfile{Attack: harness.ObsoleteBallots}
	algos := scenario.CustomAxis("algorithm",
		column("rule-enabled", harness.ModifiedPaxos, nil),
		column("rule-disabled", "modpaxos-norule", nil))
	rep, err := runGrid(scenario.Grid{Base: base, Axes: []scenario.Axis{scenario.AttackKAxis(0, 2, 4, 8), algos}})
	if err != nil {
		return Table{}, err
	}
	t.Rows = tableRows(rep, len(algos.Values), medianCell)
	for i := range t.Rows {
		t.Rows[i] = append(t.Rows[i], inDelta(bound, p.Delta))
	}
	return t, nil
}

// Table11MessageComplexity compares total messages sent until decision
// across protocols and cluster sizes — the cost axis of §4's "Reducing
// Message Complexity" discussion. All four are O(N²) per round; the
// interesting column is modified Paxos's heartbeat overhead, which is the
// price of its O(δ) recovery.
func Table11MessageComplexity(p Params) (Table, error) {
	t := Table{
		ID:    "Table 11",
		Title: "messages sent until global decision (median across seeds)",
		Claim: "every protocol sends O(N²) messages per phase; the modified algorithm additionally " +
			"pays the ε-heartbeat during instability — the unavoidable cost of fast recovery (§4)",
		Columns: []string{"N", "mod-paxos", "trad-paxos", "round-based", "mod-b-consensus"},
		Notes:   fmt.Sprintf("δ=%v TS=%v seeds=%d, no attack; counts include pre-TS sends", p.Delta, p.TS, p.Seeds),
	}
	base := p.base("Table 11")
	base.BaseSeed = 8000
	base.Protocols = []harness.Protocol{
		harness.ModifiedPaxos, harness.TraditionalPaxos, harness.RoundBased, harness.ModifiedBConsensus,
	}
	rep, err := runGrid(scenario.Grid{Base: base, Axes: []scenario.Axis{scenario.NAxis(3, 5, 9, 17)}})
	if err != nil {
		return Table{}, err
	}
	for _, c := range rep.Cells {
		row := []string{c.Coords[0].Value}
		for _, pr := range c.Report.Protocols {
			row = append(row, fmt.Sprintf("%d", int64(pr.Messages.Median)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// defaultSigma mirrors modpaxos's default σ selection (minimum legal + 5%).
func defaultSigma(delta time.Duration, rho float64) time.Duration {
	min := time.Duration(float64(4*delta) * (1 + rho) / (1 - rho))
	return min + min/20
}

// All runs every experiment in DESIGN.md order.
func All(p Params) ([]Table, error) {
	gens := []func(Params) (Table, error){
		Table1LatencyVsN,
		Table2LatencyVsDelta,
		Table3RestartRecovery,
		Table4EpsilonTradeoff,
		Figure1SessionConvergence,
		Table5ObsoleteBallots,
		Table6StablePath,
		Table7SigmaSweep,
		Table8BConsensus,
		Figure2OracleRounds,
		Table9ClockDrift,
		Table10EntryRuleAblation,
		Table11MessageComplexity,
	}
	out := make([]Table, 0, len(gens))
	for _, gen := range gens {
		t, err := gen(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
