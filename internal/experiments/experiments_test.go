package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// fastParams keeps experiment tests quick: fewer seeds.
func fastParams() Params {
	p := DefaultParams()
	p.Seeds = 2
	return p
}

// parseDelta reads a "12.34δ" cell back into a float.
func parseDelta(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell, "δ")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a δ-multiple: %v", cell, err)
	}
	return v
}

func TestTable1ShapeHolds(t *testing.T) {
	tab, err := Table1LatencyVsN(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(tab.Rows))
	}
	// Columns: N, mod-paxos, trad-paxos+attack, round-based+attack, bcons.
	firstRow, lastRow := tab.Rows[0], tab.Rows[len(tab.Rows)-1]

	// The paper's shape: the baselines degrade with N, the modified
	// algorithms stay flat (within 1.7× across an 11× N growth).
	modFirst, modLast := parseDelta(t, firstRow[1]), parseDelta(t, lastRow[1])
	if modLast > 1.7*modFirst+2 {
		t.Errorf("modified paxos not flat in N: %.1fδ → %.1fδ", modFirst, modLast)
	}
	bconsFirst, bconsLast := parseDelta(t, firstRow[4]), parseDelta(t, lastRow[4])
	if bconsLast > 1.7*bconsFirst+2 {
		t.Errorf("b-consensus not flat in N: %.1fδ → %.1fδ", bconsFirst, bconsLast)
	}
	// Each obsolete ballot costs the leader ≈1–2δ; from k=1 (N=3) to
	// k=16 (N=33) the absolute growth must be clearly linear-in-N.
	tradFirst, tradLast := parseDelta(t, firstRow[2]), parseDelta(t, lastRow[2])
	if tradLast < tradFirst+4 {
		t.Errorf("traditional paxos not degrading with N: %.1fδ → %.1fδ", tradFirst, tradLast)
	}
	rbFirst, rbLast := parseDelta(t, firstRow[3]), parseDelta(t, lastRow[3])
	if rbLast < 2*rbFirst {
		t.Errorf("round-based not degrading with N: %.1fδ → %.1fδ", rbFirst, rbLast)
	}
	// At N=33 the modified algorithm must beat both baselines.
	if modLast >= tradLast || modLast >= rbLast {
		t.Errorf("modified paxos (%.1fδ) should beat baselines (%.1fδ, %.1fδ) at N=33", modLast, tradLast, rbLast)
	}
}

func TestTable2LinearInDeltaAndUnderBound(t *testing.T) {
	tab, err := Table2LatencyVsDelta(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		med, bound := parseDelta(t, row[2]), parseDelta(t, row[4])
		if med > bound {
			t.Errorf("δ=%s: median %.1fδ exceeds bound %.1fδ", row[0], med, bound)
		}
		// Under DropAll nothing is in flight at TS, so the cluster can
		// decide in session s0+1 without the full ladder — but it still
		// needs heartbeat + phase 1 + phase 2 round trips (> 1.5δ).
		if med < 1.5 {
			t.Errorf("δ=%s: median %.1fδ below the post-TS message pipeline (suspicious)", row[0], med)
		}
	}
}

func TestTable3RecoveryWithinODelta(t *testing.T) {
	tab, err := Table3RestartRecovery(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if max := parseDelta(t, row[3]); max > 5 {
			t.Errorf("offset %s: max recovery %.1fδ, want ≤ 5δ", row[0], max)
		}
	}
}

func TestTable4RateFallsLatencyRises(t *testing.T) {
	tab, err := Table4EpsilonTradeoff(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	rateFirst, _ := strconv.ParseFloat(first[1], 64)
	rateLast, _ := strconv.ParseFloat(last[1], 64)
	if rateLast >= rateFirst {
		t.Errorf("heartbeat rate should fall as ε grows: %.1f → %.1f", rateFirst, rateLast)
	}
	latFirst, latLast := parseDelta(t, first[2]), parseDelta(t, last[2])
	if latLast <= latFirst {
		t.Errorf("latency should rise as ε grows: %.1fδ → %.1fδ", latFirst, latLast)
	}
}

func TestFigure1LadderAndDecision(t *testing.T) {
	tab, err := Figure1SessionConvergence(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("expected at least two session entries plus the decision, got %d rows", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "last process decides" {
		t.Fatalf("last row should be the decision, got %q", last[0])
	}
	if dec := parseDelta(t, last[2]); dec > 19 {
		t.Errorf("decision at %.1fδ after TS, want within the ≈18δ bound", dec)
	}
}

func TestTable5ContrastHolds(t *testing.T) {
	tab, err := Table5ObsoleteBallots(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	k0, k2, kMax := tab.Rows[0], tab.Rows[1], tab.Rows[len(tab.Rows)-1]
	tradGrowth := parseDelta(t, kMax[1]) - parseDelta(t, k0[1])
	if tradGrowth < 5 {
		t.Errorf("traditional paxos grew only %.1fδ over k sweep", tradGrowth)
	}
	// The first obsolete message costs modified Paxos one session rung
	// (the cluster climbs to the injected session's +1 before a clean
	// ballot); additional messages must be free — flat from k=2 on.
	modGrowth := parseDelta(t, kMax[2]) - parseDelta(t, k2[2])
	if modGrowth > 1 {
		t.Errorf("modified paxos grew %.1fδ from k=2 to k=8, want ≈0", modGrowth)
	}
}

func TestTable6ThreeDelayFastPath(t *testing.T) {
	tab, err := Table6StablePath(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if lat := parseDelta(t, row[1]); lat > 3 {
			t.Errorf("N=%s: stable path took %.1fδ, want ≤ 3δ", row[0], lat)
		}
	}
	// Message count grows quadratically-ish: N=17 ≫ N=3.
	m3, _ := strconv.Atoi(tab.Rows[0][2])
	m17, _ := strconv.Atoi(tab.Rows[len(tab.Rows)-1][2])
	if m17 < 9*m3 {
		t.Errorf("phase-2 traffic not ~quadratic: N=3 %d vs N=17 %d", m3, m17)
	}
}

func TestTable7BoundTracksSigma(t *testing.T) {
	tab, err := Table7SigmaSweep(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	prevMed := 0.0
	for _, row := range tab.Rows {
		med, bound := parseDelta(t, row[1]), parseDelta(t, row[3])
		if med > bound {
			t.Errorf("σ=%s: median %.1fδ above bound %.1fδ", row[0], med, bound)
		}
		if med < prevMed-2 {
			t.Errorf("σ=%s: latency should not fall as σ grows (%.1fδ after %.1fδ)", row[0], med, prevMed)
		}
		prevMed = med
	}
}

func TestTable8FlatInN(t *testing.T) {
	tab, err := Table8BConsensus(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	first := parseDelta(t, tab.Rows[0][1])
	last := parseDelta(t, tab.Rows[len(tab.Rows)-1][1])
	if last > 1.7*first+2 {
		t.Errorf("b-consensus latency scales with N: %.1fδ → %.1fδ", first, last)
	}
}

func TestTable9DriftDegradesGracefully(t *testing.T) {
	tab, err := Table9ClockDrift(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		med, bound := parseDelta(t, row[2]), parseDelta(t, row[3])
		if med > bound {
			t.Errorf("ρ=%s: median %.1fδ above bound %.1fδ", row[0], med, bound)
		}
	}
	// Worst clocks should cost more than perfect clocks, but stay O(δ).
	best := parseDelta(t, tab.Rows[0][2])
	worst := parseDelta(t, tab.Rows[len(tab.Rows)-1][2])
	if worst > 2.5*best {
		t.Errorf("10%% drift more than 2.5×: %.1fδ vs %.1fδ", worst, best)
	}
}

func TestMarkdownAndStringRendering(t *testing.T) {
	tab := Table{
		ID: "Table X", Title: "demo", Claim: "c",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   "n",
	}
	md := tab.Markdown()
	for _, want := range []string{"### Table X", "| a | b |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	txt := tab.String()
	if !strings.Contains(txt, "Table X") || !strings.Contains(txt, "1") {
		t.Errorf("plain rendering broken:\n%s", txt)
	}
}

func TestMedianAndMax(t *testing.T) {
	samples := []time.Duration{30, 10, 20}
	if m := medianOf(samples); m != 20 {
		t.Fatalf("medianOf = %v, want 20", m)
	}
	if m := maxOf(samples); m != 30 {
		t.Fatalf("maxOf = %v, want 30", m)
	}
	if medianOf(nil) != 0 || maxOf(nil) != 0 {
		t.Fatal("empty samples should give 0")
	}
}

func TestTable10AblationContrast(t *testing.T) {
	tab, err := Table10EntryRuleAblation(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		enabled, bound := parseDelta(t, row[1]), parseDelta(t, row[3])
		if enabled > bound {
			t.Errorf("k=%s: rule-enabled latency %.1fδ exceeds bound %.1fδ", row[0], enabled, bound)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	ablated, bound := parseDelta(t, last[2]), parseDelta(t, last[3])
	if ablated <= bound {
		t.Errorf("ablated k=8 latency %.1fδ should exceed the bound %.1fδ", ablated, bound)
	}
	// Linear growth in k for the ablated column.
	k2, k8 := parseDelta(t, tab.Rows[1][2]), ablated
	if k8 < 2*k2 {
		t.Errorf("ablated latency not growing with k: k2=%.1fδ k8=%.1fδ", k2, k8)
	}
}

func TestFigure2OracleRoundsEndsWithDecision(t *testing.T) {
	tab, err := Figure2OracleRounds(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "last process decides" {
		t.Fatalf("last row = %q", last[0])
	}
	if dec := parseDelta(t, last[2]); dec > 20 {
		t.Errorf("b-consensus decided %.1fδ after TS, want O(δ)", dec)
	}
}

func TestTable11MessageCountsGrowWithN(t *testing.T) {
	tab, err := Table11MessageComplexity(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 4; col++ {
		first, _ := strconv.Atoi(tab.Rows[0][col])
		last, _ := strconv.Atoi(tab.Rows[len(tab.Rows)-1][col])
		if last <= first {
			t.Errorf("column %d (%s): messages did not grow with N (%d → %d)",
				col, tab.Columns[col], first, last)
		}
	}
}
