package simnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
)

// stamp carries its global send time (processes use perfect clocks here, so
// local time equals global time).
type stamp struct {
	SentAt time.Duration
}

func (stamp) Type() string { return "stamp" }

// chatter broadcasts a stamped message every millisecond forever.
type chatter struct {
	env consensus.Environment
}

func (c *chatter) Init(env consensus.Environment) {
	c.env = env
	env.SetTimer(1, time.Millisecond)
}
func (c *chatter) HandleMessage(consensus.ProcessID, consensus.Message) {}
func (c *chatter) HandleTimer(consensus.TimerID) {
	c.env.Broadcast(stamp{SentAt: c.env.Now()})
	c.env.SetTimer(1, time.Millisecond)
}

// TestPostStabilizationDeliveryBound is the model's central guarantee: every
// message sent at or after TS is delivered within δ; messages sent before TS
// are never delivered early relative to physics (delay ≥ 0) but may arrive
// arbitrarily late — including after TS.
func TestPostStabilizationDeliveryBound(t *testing.T) {
	delta := 10 * time.Millisecond
	ts := 100 * time.Millisecond
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			factory := func(consensus.ProcessID, int, consensus.Value) consensus.Process {
				return &chatter{}
			}
			nw, err := New(eng, Config{
				N: 4, Delta: delta, TS: ts,
				Policy: Chaos{DropProb: 0.4, MaxDelay: 3 * ts},
			}, factory, proposals(4))
			if err != nil {
				t.Fatal(err)
			}
			var postTSDeliveries, lateObsolete int
			nw.Observe(func(at time.Duration, from, to consensus.ProcessID, m consensus.Message) {
				s, ok := m.(stamp)
				if !ok {
					return
				}
				transit := at - s.SentAt
				if transit < 0 {
					t.Fatalf("message delivered before it was sent: %v", transit)
				}
				if s.SentAt >= ts {
					postTSDeliveries++
					if transit > delta {
						t.Fatalf("post-TS message took %v > δ=%v", transit, delta)
					}
				} else if at > ts {
					lateObsolete++ // pre-TS message surfacing after TS
				}
			})
			nw.Start()
			eng.Run(ts + 200*time.Millisecond)
			if postTSDeliveries == 0 {
				t.Fatal("no post-TS deliveries observed")
			}
			if lateObsolete == 0 {
				t.Fatal("chaos policy produced no obsolete (post-TS) deliveries — the hard case is untested")
			}
		})
	}
}

// TestCrashCancelsTimersButKeepsStorage pins the crash semantics the
// protocols rely on.
func TestCrashCancelsTimersButKeepsStorage(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	factory := func(id consensus.ProcessID, n int, _ consensus.Value) consensus.Process {
		return &timerAndStore{fired: &fired}
	}
	nw, err := New(eng, Config{N: 1, Delta: time.Millisecond, TS: 0}, factory, proposals(1))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.CrashAt(0, 5*time.Millisecond) // before the 10ms timer fires
	nw.RestartAt(0, 20*time.Millisecond)
	eng.Run(100 * time.Millisecond)

	// The pre-crash timer must not fire; the restart arms a new one which
	// does. So exactly 1.
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1 (pre-crash timer canceled)", fired)
	}
	// Stable storage carried the boot count across the crash.
	var boots int
	if _, err := nw.Node(0).Store().Get("boots", &boots); err != nil {
		t.Fatal(err)
	}
	if boots != 2 {
		t.Fatalf("boots = %d, want 2", boots)
	}
}

type timerAndStore struct {
	fired *int
}

func (p *timerAndStore) Init(env consensus.Environment) {
	var boots int
	if _, err := env.Store().Get("boots", &boots); err != nil {
		env.Logf("get: %v", err)
	}
	boots++
	if err := env.Store().Put("boots", boots); err != nil {
		env.Logf("put: %v", err)
	}
	env.SetTimer(1, 10*time.Millisecond)
}
func (p *timerAndStore) HandleMessage(consensus.ProcessID, consensus.Message) {}
func (p *timerAndStore) HandleTimer(consensus.TimerID)                        { *p.fired++ }

// TestObserverSeesEveryDelivery checks observer completeness against the
// collector's accounting.
func TestObserverSeesEveryDelivery(t *testing.T) {
	eng := sim.NewEngine(3)
	nw, err := New(eng, Config{N: 3, Delta: 5 * time.Millisecond, TS: 0},
		func(consensus.ProcessID, int, consensus.Value) consensus.Process { return &chatter{} },
		proposals(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	nw.Observe(func(time.Duration, consensus.ProcessID, consensus.ProcessID, consensus.Message) { seen++ })
	nw.Start()
	eng.Run(50 * time.Millisecond)
	// Sent == delivered + in-flight; all observed deliveries counted.
	delivered := nw.Collector().TotalSent() - nw.Collector().TotalDropped() - eng.Pending()
	if seen == 0 || seen < delivered-3*3 { // small slack for in-flight at horizon
		t.Fatalf("observer saw %d deliveries, collector ≈ %d", seen, delivered)
	}
}
