// Package simnet realizes the paper's eventually-synchronous system model on
// top of the deterministic simulator (internal/sim):
//
//   - There is a global stabilization time TS. Messages sent at or after TS
//     between nonfaulty processes are delivered within δ (δ includes
//     processing time; handlers execute instantaneously at delivery).
//   - Messages sent before TS are handed to a pre-stability Policy, which
//     may drop them or delay them arbitrarily — including past TS. These
//     late deliveries are exactly the "obsolete messages" that make the
//     paper's problem hard.
//   - Processes may crash and restart. A crash discards volatile state and
//     cancels timers; stable storage survives. A restarted process resumes
//     via its protocol factory reading the store.
//   - Each process has a local clock with a bounded rate error ρ; protocol
//     timers count local time.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes one simulated cluster.
type Config struct {
	// N is the number of processes (numbered 0..N−1).
	N int
	// Delta is δ, the post-stabilization message-delivery bound.
	Delta time.Duration
	// TS is the global stabilization time.
	TS time.Duration
	// MinDelay is the lower edge of post-TS delivery latency. Defaults to
	// Delta/10 if zero; must be ≤ Delta.
	MinDelay time.Duration
	// Policy governs messages sent before TS. Nil means Synchronous (the
	// network behaves as if stable from time 0 — only meaningful with
	// TS=0 or as a best-case baseline).
	Policy Policy
	// Rho is the bound on local clock rate error after TS.
	Rho float64
	// Drift optionally supplies an explicit clock per process; when nil,
	// clocks get deterministic rates spread across [1−Rho, 1+Rho].
	Drift func(id consensus.ProcessID) clock.Drift
	// Collector receives trace events; one is created when nil.
	Collector *trace.Collector
	// Arena, when non-nil, supplies pooled node storage reused across runs
	// (see Arena). The engine passed to New must then be the arena's own
	// (Arena.Engine), so node timer state and event storage reset together.
	Arena *Arena
	// Debug enables Logf forwarding into the collector.
	Debug bool
}

func (c *Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("simnet: N must be ≥ 1, got %d", c.N)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("simnet: Delta must be positive, got %v", c.Delta)
	}
	if c.TS < 0 {
		return fmt.Errorf("simnet: TS must be ≥ 0, got %v", c.TS)
	}
	if c.MinDelay < 0 || c.MinDelay > c.Delta {
		return fmt.Errorf("simnet: MinDelay %v outside [0, Delta=%v]", c.MinDelay, c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return fmt.Errorf("simnet: Rho must be in [0,1), got %v", c.Rho)
	}
	return nil
}

// Network is a simulated cluster of processes.
type Network struct {
	eng       *sim.Engine
	cfg       Config
	nodes     []*Node
	collector *trace.Collector
	checker   *consensus.SafetyChecker
	observers []DeliveryObserver

	// pendingRestarts counts scheduled-but-not-yet-executed restarts, so
	// run loops can refuse to stop while a process is still due back.
	pendingRestarts int

	// Interned histogram IDs for the route() hot path, populated lazily
	// only when the collector has histograms enabled. deliveryHist is
	// indexed by interned message-type ID and stores histID+1 (0 =
	// unassigned); queueHist likewise stores its histID+1.
	deliveryHist []int
	queueHist    int

	// Scratch buffers returned by UpIDs/AllIDs (see their docs).
	upScratch  []consensus.ProcessID
	allScratch []consensus.ProcessID
}

// DeliveryObserver is notified after every successful message delivery.
// Adaptive adversaries use this to time their injections against protocol
// progress (modeling a worst-case scheduler).
type DeliveryObserver func(at time.Duration, from, to consensus.ProcessID, m consensus.Message)

// New builds a network on the engine. Processes are created but not started;
// call Start (or StartExcept) to bring them up at the current virtual time.
func New(eng *sim.Engine, cfg Config, factory consensus.Factory, proposals []consensus.Value) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(proposals) != cfg.N {
		return nil, fmt.Errorf("simnet: %d proposals for %d processes", len(proposals), cfg.N)
	}
	if cfg.MinDelay == 0 {
		cfg.MinDelay = cfg.Delta / 10
	}
	if cfg.Policy == nil {
		cfg.Policy = Synchronous{}
	}
	if cfg.Collector == nil {
		cfg.Collector = trace.NewCollector()
	}

	nw := &Network{
		eng:       eng,
		cfg:       cfg,
		collector: cfg.Collector,
		checker:   consensus.NewSafetyChecker(),
	}
	// All message traffic flows through the engine's delivery sink: one
	// closure per network instead of one per message in flight. The sink's
	// aux value is the interned message-type ID, so delivery accounting
	// never re-hashes the type string.
	eng.SetDeliverySink(func(from, to int32, aux int64, payload any) {
		nw.nodes[to].deliver(consensus.ProcessID(from), payload.(consensus.Message), int(aux))
	})
	for i := 0; i < cfg.N; i++ {
		id := consensus.ProcessID(i)
		d := nw.driftFor(id)
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("simnet: process %d: %w", i, err)
		}
		var node *Node
		if cfg.Arena != nil {
			node = cfg.Arena.node(nw, id, factory, proposals[i], d)
		} else {
			node = newNode(nw, id, factory, proposals[i], d)
		}
		nw.nodes = append(nw.nodes, node)
		nw.checker.RecordProposal(id, proposals[i])
	}
	return nw, nil
}

// driftFor assigns clock rates deterministically across [1−ρ, 1+ρ] so that
// different processes genuinely disagree about elapsed time.
func (nw *Network) driftFor(id consensus.ProcessID) clock.Drift {
	if nw.cfg.Drift != nil {
		return nw.cfg.Drift(id)
	}
	if nw.cfg.Rho == 0 || nw.cfg.N == 1 {
		return clock.Perfect()
	}
	frac := float64(id) / float64(nw.cfg.N-1) // 0..1 across processes
	rate := 1 - nw.cfg.Rho + 2*nw.cfg.Rho*frac
	return clock.WithRate(rate)
}

// Engine returns the underlying simulation engine.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Collector returns the run's trace collector.
func (nw *Network) Collector() *trace.Collector { return nw.collector }

// Checker returns the run's safety checker.
func (nw *Network) Checker() *consensus.SafetyChecker { return nw.checker }

// Config returns the network's configuration (with defaults applied).
func (nw *Network) Config() Config { return nw.cfg }

// Node returns the node for a process.
func (nw *Network) Node(id consensus.ProcessID) *Node { return nw.nodes[id] }

// Start brings every process up at the current virtual time.
func (nw *Network) Start() {
	for _, n := range nw.nodes {
		n.start()
	}
}

// StartExcept brings up every process not listed in down; the listed ones
// stay crashed until explicitly restarted (they model processes that failed
// before TS and may or may not ever come back).
func (nw *Network) StartExcept(down ...consensus.ProcessID) {
	excluded := make(map[consensus.ProcessID]bool, len(down))
	for _, id := range down {
		excluded[id] = true
	}
	for _, n := range nw.nodes {
		if !excluded[n.id] {
			n.start()
		}
	}
}

// CrashAt schedules a crash of process id at virtual time at.
func (nw *Network) CrashAt(id consensus.ProcessID, at time.Duration) {
	nw.eng.Schedule(at, func() { nw.nodes[id].crash() })
}

// RestartAt schedules a restart of process id at virtual time at.
func (nw *Network) RestartAt(id consensus.ProcessID, at time.Duration) {
	nw.pendingRestarts++
	nw.eng.Schedule(at, func() {
		nw.pendingRestarts--
		nw.nodes[id].start()
	})
}

// RestartsPending returns the number of scheduled restarts that have not
// executed yet.
func (nw *Network) RestartsPending() int { return nw.pendingRestarts }

// Inject schedules delivery of a message to a process at an absolute virtual
// time, bypassing the delay model. Adversaries use this to plant obsolete
// messages ("sent" by failed processes before TS) and oracles use it for
// out-of-band announcements.
func (nw *Network) Inject(at time.Duration, from, to consensus.ProcessID, m consensus.Message) {
	nw.eng.ScheduleDelivery(at, int32(from), int32(to), int64(nw.collector.Intern(m.Type())), m)
}

// Observe registers a delivery observer.
func (nw *Network) Observe(fn DeliveryObserver) {
	nw.observers = append(nw.observers, fn)
}

// notifyDelivered runs the registered observers.
func (nw *Network) notifyDelivered(from, to consensus.ProcessID, m consensus.Message) {
	for _, fn := range nw.observers {
		fn(nw.eng.Now(), from, to, m)
	}
}

// Up reports whether the process is currently running.
func (nw *Network) Up(id consensus.ProcessID) bool { return nw.nodes[id].up }

// UpIDs returns the IDs of all currently-running processes. The slice is a
// scratch buffer owned by the network, valid until the next UpIDs call —
// run-loop predicates call this every event, so it must not allocate at
// population scale. Callers that retain it must copy.
func (nw *Network) UpIDs() []consensus.ProcessID {
	ids := nw.upScratch[:0]
	for _, n := range nw.nodes {
		if n.up {
			ids = append(ids, n.id)
		}
	}
	nw.upScratch = ids
	return ids
}

// AllIDs returns every process ID. Like UpIDs, the slice is a network-owned
// scratch buffer, valid until the next AllIDs call.
func (nw *Network) AllIDs() []consensus.ProcessID {
	ids := nw.allScratch[:0]
	for i := 0; i < nw.cfg.N; i++ {
		ids = append(ids, consensus.ProcessID(i))
	}
	nw.allScratch = ids
	return ids
}

// route computes and schedules delivery of a protocol message. The hot
// path is allocation-free: the delivery is a pooled sink event carrying
// (from, to, interned type ID, message) — no per-message closure — and the
// counters are interned-ID increments, not locked map writes.
//
//repro:hotpath
func (nw *Network) route(from, to consensus.ProcessID, m consensus.Message) {
	typeID := nw.collector.Intern(m.Type())
	nw.collector.SentID(typeID)
	nw.routeInterned(from, to, m, typeID)
}

// routeInterned is route with the type already interned, so loops over many
// recipients of one message (broadcastUnicast) pay the map read once.
//
//repro:hotpath
func (nw *Network) routeInterned(from, to consensus.ProcessID, m consensus.Message, typeID int) {
	now := nw.eng.Now()

	var delay time.Duration
	if now >= nw.cfg.TS {
		// Stable: deliver within δ.
		span := nw.cfg.Delta - nw.cfg.MinDelay
		delay = nw.cfg.MinDelay + time.Duration(nw.eng.Rand().Int63n(int64(span)+1))
	} else {
		fate := nw.cfg.Policy.Fate(Transmission{From: from, To: to, Msg: m, SentAt: now, TS: nw.cfg.TS, Delta: nw.cfg.Delta}, nw.eng.Rand())
		if fate.Drop {
			nw.collector.DroppedID(typeID)
			return
		}
		delay = fate.Delay
		if delay < 0 {
			delay = 0
		}
		// Network-induced re-deliveries (Duplicate policy). They are not
		// protocol sends, so only the delivery is accounted.
		for _, d := range fate.Duplicates {
			if d < 0 {
				d = 0
			}
			if nw.collector.HistogramsEnabled() {
				nw.observeDelivery(typeID, d)
			}
			nw.eng.ScheduleDelivery(now+d, int32(from), int32(to), int64(typeID), m)
		}
	}

	if nw.collector.HistogramsEnabled() {
		// The delay is already computed for scheduling, so observing it
		// consumes no randomness and schedules nothing: enabling
		// histograms leaves the delivery schedule byte-identical.
		nw.observeDelivery(typeID, delay)
		nw.observeQueueDepth()
	}
	nw.eng.ScheduleDelivery(now+delay, int32(from), int32(to), int64(typeID), m)
}

// observeDelivery records a delivery latency into the per-message-type
// histogram, mapping the interned message-type ID to an interned histogram
// ID so the steady state is two array reads and an increment.
//
//repro:hotpath
func (nw *Network) observeDelivery(typeID int, delay time.Duration) {
	for typeID >= len(nw.deliveryHist) {
		nw.deliveryHist = append(nw.deliveryHist, 0)
	}
	id := nw.deliveryHist[typeID]
	if id == 0 {
		id = nw.collector.InternHist(trace.HistDeliveryPrefix+nw.collector.TypeName(typeID), trace.UnitNanos) + 1
		nw.deliveryHist[typeID] = id
	}
	nw.collector.ObserveHistID(id-1, int64(delay))
}

// observeQueueDepth samples the engine's pending-event count — the
// simulator's analogue of transport queue depth.
//
//repro:hotpath
func (nw *Network) observeQueueDepth() {
	if nw.queueHist == 0 {
		nw.queueHist = nw.collector.InternHist(trace.HistQueueDepth, trace.UnitCount) + 1
	}
	nw.collector.ObserveHistID(nw.queueHist-1, int64(nw.eng.Pending()))
}

// RunUntilAllDecided runs the simulation until every currently-up process
// has decided, or the horizon passes. It reports whether all up processes
// decided and returns any safety violation.
func (nw *Network) RunUntilAllDecided(horizon time.Duration) (bool, error) {
	ok := nw.eng.RunUntil(func() bool {
		if nw.checker.Violation() != nil {
			return true // stop immediately on violation
		}
		for _, n := range nw.nodes {
			if n.up && !n.decided {
				return false
			}
		}
		return true
	}, horizon)
	if err := nw.checker.Violation(); err != nil {
		return false, err
	}
	return ok, nil
}
