package simnet

import (
	"time"

	"repro/internal/core/consensus"
)

// Broadcast implements consensus.Environment: sends to every process,
// including the sender (the paper's leaders message themselves too).
//
// This is the batched fast path for population-scale clusters: the message
// type is interned once instead of N times, the send counter is bumped once
// by N, and the whole fan-out occupies a single multicast queue entry
// instead of N heap events — an all-to-all round at N=5000 holds ~N
// multicasts in the heap, not N². Per-link semantics are unchanged: every
// recipient gets its own post-TS delay draw (or pre-TS Policy fate,
// including drops and duplicates) from the engine RNG in recipient order,
// and every delivery consumes the same sequence number the unicast loop
// would have, so the delivery schedule is byte-identical to
// broadcastUnicast (kept below for A/B benchmarks and the
// schedule-equality test).
//
//repro:hotpath
func (n *Node) Broadcast(m consensus.Message) {
	nw := n.nw
	N := nw.cfg.N
	typeID := nw.collector.Intern(m.Type())
	nw.collector.SentIDN(typeID, N)
	now := nw.eng.Now()
	hist := nw.collector.HistogramsEnabled()
	mc := nw.eng.BeginMulticast(int32(n.id), int64(typeID), m, N)

	if now >= nw.cfg.TS {
		// Stable: every link delivers within δ. Same draw as route, in
		// recipient order.
		span := int64(nw.cfg.Delta-nw.cfg.MinDelay) + 1
		rng := nw.eng.Rand()
		for to := 0; to < N; to++ {
			delay := nw.cfg.MinDelay + time.Duration(rng.Int63n(span))
			if hist {
				nw.observeDelivery(typeID, delay)
				nw.observeQueueDepth()
			}
			mc.Add(int32(to), now+delay)
		}
		mc.Commit()
		return
	}

	// Pre-TS: each link's fate comes from the Policy, exactly as route
	// draws it. Drops are counted in one batch increment; duplicates are
	// network re-deliveries and stay individual events (they are rare by
	// construction — a duplicating policy at population scale would be N²
	// events again regardless of representation).
	dropped := 0
	for to := 0; to < N; to++ {
		fate := nw.cfg.Policy.Fate(Transmission{From: n.id, To: consensus.ProcessID(to), Msg: m, SentAt: now, TS: nw.cfg.TS, Delta: nw.cfg.Delta}, nw.eng.Rand())
		if fate.Drop {
			dropped++
			continue
		}
		delay := fate.Delay
		if delay < 0 {
			delay = 0
		}
		for _, d := range fate.Duplicates {
			if d < 0 {
				d = 0
			}
			if hist {
				nw.observeDelivery(typeID, d)
			}
			nw.eng.ScheduleDelivery(now+d, int32(n.id), int32(to), int64(typeID), m)
		}
		if hist {
			nw.observeDelivery(typeID, delay)
			nw.observeQueueDepth()
		}
		mc.Add(int32(to), now+delay)
	}
	if dropped > 0 {
		nw.collector.DroppedIDN(typeID, dropped)
	}
	mc.Commit()
}

// broadcastUnicast is the pre-batching fan-out: one routed event per
// recipient. It is the reference implementation the batched Broadcast is
// tested to schedule identically to, and the baseline BenchmarkBroadcastN1000
// measures against. The type ID is interned once, not once per recipient.
//
//repro:hotpath
func (n *Node) broadcastUnicast(m consensus.Message) {
	nw := n.nw
	typeID := nw.collector.Intern(m.Type())
	for i := 0; i < nw.cfg.N; i++ {
		nw.collector.SentID(typeID)
		nw.routeInterned(n.id, consensus.ProcessID(i), m, typeID)
	}
}
