package simnet

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/trace"
)

// delivRec is one observed delivery: when, over which link, and the exact
// engine queue depth at handling time — the strictest schedule fingerprint
// available from inside a process.
type delivRec struct {
	at       time.Duration
	from, to consensus.ProcessID
	pending  int
}

// recProc records every delivery it handles.
type recProc struct {
	id  consensus.ProcessID
	eng *sim.Engine
	log *[]delivRec
}

func (recProc) Init(consensus.Environment) {}
func (p *recProc) HandleMessage(from consensus.ProcessID, _ consensus.Message) {
	*p.log = append(*p.log, delivRec{at: p.eng.Now(), from: from, to: p.id, pending: p.eng.Pending()})
}
func (recProc) HandleTimer(consensus.TimerID) {}

// dupChaos is a pre-TS policy exercising every fate the batched path must
// reproduce: drops, delays, and network duplicates.
type dupChaos struct{}

func (dupChaos) Fate(tx Transmission, rng *rand.Rand) Fate {
	f := Fate{Delay: time.Duration(rng.Int63n(int64(5 * time.Millisecond)))}
	switch r := rng.Float64(); {
	case r < 0.2:
		f.Drop = true
	case r < 0.4:
		f.Duplicates = []time.Duration{f.Delay + time.Millisecond}
	}
	return f
}

// broadcastTrace runs a fixed schedule of fan-outs — overlapping, pre- and
// post-TS — through either the batched Broadcast or the unicast reference,
// and returns the full delivery log plus the collector.
func broadcastTrace(t *testing.T, batched bool) ([]delivRec, *trace.Collector) {
	t.Helper()
	eng := sim.NewEngine(1)
	var log []delivRec
	factory := func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &recProc{id: id, eng: eng, log: &log}
	}
	collector := trace.NewCollector()
	collector.EnableHistograms()
	cfg := Config{
		N: 16, Delta: 10 * time.Millisecond, TS: 100 * time.Millisecond,
		Policy: dupChaos{}, Collector: collector,
	}
	nw, err := New(eng, cfg, factory, proposals(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	send := func(from consensus.ProcessID) {
		if batched {
			nw.Node(from).Broadcast(pingMsg{V: "x"})
		} else {
			nw.Node(from).broadcastUnicast(pingMsg{V: "x"})
		}
	}
	// Overlapping pre-TS fan-outs from two senders, another mid-flight, then
	// two more after stabilization while earlier deliveries are still queued.
	send(0)
	send(1)
	eng.Run(3 * time.Millisecond)
	send(2)
	eng.Run(cfg.TS - eng.Now() + time.Millisecond)
	send(3)
	send(0)
	eng.Run(time.Second)
	return log, collector
}

// TestBatchedBroadcastMatchesUnicastSchedule is the equivalence property
// the whole batching design hangs on: the batched fast path must deliver
// the same messages over the same links at the same times in the same
// order — with identical queue-depth evolution and identical trace
// accounting — as the per-recipient unicast loop, drops and duplicates
// included.
func TestBatchedBroadcastMatchesUnicastSchedule(t *testing.T) {
	gotLog, gotCol := broadcastTrace(t, true)
	wantLog, wantCol := broadcastTrace(t, false)
	if len(gotLog) == 0 {
		t.Fatal("no deliveries recorded")
	}
	if !reflect.DeepEqual(gotLog, wantLog) {
		for i := range wantLog {
			if i >= len(gotLog) || gotLog[i] != wantLog[i] {
				t.Fatalf("delivery %d diverges: batched %+v, unicast %+v (lengths %d vs %d)",
					i, gotLog[i], wantLog[i], len(gotLog), len(wantLog))
			}
		}
		t.Fatalf("batched log has %d extra deliveries", len(gotLog)-len(wantLog))
	}
	if gotCol.TotalSent() != wantCol.TotalSent() || gotCol.TotalDropped() != wantCol.TotalDropped() {
		t.Fatalf("accounting diverges: batched sent=%d dropped=%d, unicast sent=%d dropped=%d",
			gotCol.TotalSent(), gotCol.TotalDropped(), wantCol.TotalSent(), wantCol.TotalDropped())
	}
	if !reflect.DeepEqual(gotCol.SentByType(), wantCol.SentByType()) {
		t.Fatalf("per-type sends diverge: %v vs %v", gotCol.SentByType(), wantCol.SentByType())
	}
}
