package simnet

import (
	"math/rand"
	"time"

	"repro/internal/core/consensus"
)

// Transmission describes one message in flight before stabilization, given
// to the Policy to decide its fate.
type Transmission struct {
	From, To consensus.ProcessID
	Msg      consensus.Message
	// SentAt is the global send time (< TS by construction).
	SentAt time.Duration
	// TS and Delta restate the network parameters for convenience.
	TS    time.Duration
	Delta time.Duration
}

// Fate is a policy's ruling on a pre-stability message.
type Fate struct {
	// Drop loses the message entirely.
	Drop bool
	// Delay is the transit time when not dropped. It may exceed TS−SentAt:
	// that is how obsolete messages surface after stabilization.
	Delay time.Duration
	// Duplicates lists the transit times of extra copies the network
	// delivers beyond the original — Byzantine-flavored re-delivery. Each
	// entry is an independent delay from the send instant and, like Delay,
	// may land after TS. Correct protocols must be idempotent under it.
	Duplicates []time.Duration
}

// Policy decides the fate of every message sent before TS. Implementations
// must draw randomness only from the supplied source to keep runs
// deterministic.
type Policy interface {
	Fate(tx Transmission, rng *rand.Rand) Fate
}

// Synchronous makes the pre-TS network behave exactly like the post-TS one:
// delivery within δ. Useful as a best-case baseline and for TS=0 runs.
type Synchronous struct{}

// Fate implements Policy.
func (Synchronous) Fate(tx Transmission, rng *rand.Rand) Fate {
	return Fate{Delay: tx.Delta / 10 * time.Duration(1+rng.Int63n(9))}
}

// DropAll loses every pre-TS message — total partition until stabilization.
// This is the scenario behind the paper's observation that consensus must
// take Ω(δ) after TS: no pre-TS communication survives.
type DropAll struct{}

// Fate implements Policy.
func (DropAll) Fate(Transmission, *rand.Rand) Fate { return Fate{Drop: true} }

// Chaos drops each pre-TS message with probability DropProb and delays
// survivors uniformly in [0, MaxDelay]. With MaxDelay > TS−SentAt, survivors
// can arrive after stabilization as obsolete messages.
type Chaos struct {
	// DropProb is the per-message loss probability in [0,1].
	DropProb float64
	// MaxDelay is the maximum transit time of surviving messages. Zero
	// means 2·TS (so roughly half of late messages land after TS).
	MaxDelay time.Duration
}

// Fate implements Policy.
func (c Chaos) Fate(tx Transmission, rng *rand.Rand) Fate {
	if rng.Float64() < c.DropProb {
		return Fate{Drop: true}
	}
	maxDelay := c.MaxDelay
	if maxDelay == 0 {
		maxDelay = 2 * tx.TS
	}
	if maxDelay <= 0 {
		return Fate{Delay: 0}
	}
	return Fate{Delay: time.Duration(rng.Int63n(int64(maxDelay) + 1))}
}

// Partition splits processes into groups; messages crossing group boundaries
// before TS are dropped, messages within a group are delivered within δ.
type Partition struct {
	// Group maps each process to a partition index.
	Group map[consensus.ProcessID]int
}

// Fate implements Policy.
func (p Partition) Fate(tx Transmission, rng *rand.Rand) Fate {
	if p.Group[tx.From] != p.Group[tx.To] {
		return Fate{Drop: true}
	}
	return Synchronous{}.Fate(tx, rng)
}

// SplitBrain returns the group map of a two-way split: processes 0..⌈n/2⌉−1
// in group 0 (the majority side for odd n), the rest in group 1.
func SplitBrain(n int) map[consensus.ProcessID]int {
	groups := make(map[consensus.ProcessID]int, n)
	half := (n + 1) / 2
	for i := 0; i < n; i++ {
		g := 0
		if i >= half {
			g = 1
		}
		groups[consensus.ProcessID(i)] = g
	}
	return groups
}

// Chain composes policies. Each link rules on the message in order; the
// first link that drops it wins and later links are not consulted (so they
// draw no randomness for that message — composition order is observable).
// When no link drops, the delay is the maximum over all links: each link
// expresses a floor on how badly the network treats the message, and
// composing adversities can only make delivery worse, never better.
type Chain []Policy

// Fate implements Policy.
func (c Chain) Fate(tx Transmission, rng *rand.Rand) Fate {
	var out Fate
	for _, p := range c {
		f := p.Fate(tx, rng)
		if f.Drop {
			return Fate{Drop: true}
		}
		if f.Delay > out.Delay {
			out.Delay = f.Delay
		}
		// Re-deliveries merge as a union: every link's copies arrive.
		out.Duplicates = append(out.Duplicates, f.Duplicates...)
	}
	return out
}

// PartitionUntilTS is a healing partition: messages crossing group
// boundaries are dropped until HealAt, then flow normally (within δ) for the
// remainder of the pre-TS period. With HealAt = 0 the partition heals
// exactly at TS — the network is stable from the very first post-TS instant,
// the paper's sharpest "total communication failure, then stability" regime.
type PartitionUntilTS struct {
	// Group maps each process to a partition index.
	Group map[consensus.ProcessID]int
	// HealAt is the global time the partition disappears; 0 means TS.
	HealAt time.Duration
}

// Fate implements Policy.
func (p PartitionUntilTS) Fate(tx Transmission, rng *rand.Rand) Fate {
	healAt := p.HealAt
	if healAt == 0 {
		healAt = tx.TS
	}
	if tx.SentAt < healAt && p.Group[tx.From] != p.Group[tx.To] {
		return Fate{Drop: true}
	}
	return Synchronous{}.Fate(tx, rng)
}

// LossBurst drops messages with probability DropProb during the window
// [From, To) and defers to Base outside it. Bursts model transient storms
// (a flapping switch, a GC pause on the path) inside an otherwise healthy
// pre-TS network.
type LossBurst struct {
	// From and To bound the burst window in global time. A zero To means
	// the burst lasts until TS.
	From, To time.Duration
	// DropProb is the loss probability inside the window; 0 means 1
	// (a total black-out, the common case for a named burst).
	DropProb float64
	// Targets, when non-nil, restricts the burst to messages to or from a
	// target (a flaky minority); nil means the burst hits everyone.
	Targets map[consensus.ProcessID]bool
	// Base rules outside the window (default Synchronous).
	Base Policy
}

// Fate implements Policy.
func (l LossBurst) Fate(tx Transmission, rng *rand.Rand) Fate {
	to := l.To
	if to == 0 {
		to = tx.TS
	}
	hit := l.Targets == nil || l.Targets[tx.From] || l.Targets[tx.To]
	if hit && tx.SentAt >= l.From && tx.SentAt < to {
		p := l.DropProb
		if p == 0 {
			p = 1
		}
		if rng.Float64() < p {
			return Fate{Drop: true}
		}
	}
	base := l.Base
	if base == nil {
		base = Synchronous{}
	}
	return base.Fate(tx, rng)
}

// GroupChurn is a randomly churning partition: pre-TS time is cut into
// Period-long windows and every process is hashed into one of Groups groups
// per window, so the partition layout reshuffles as the clock advances —
// quorums form, dissolve, and re-form along different cut lines. Unlike
// Partition (one static cut) this exercises protocols against membership
// flapping: state accumulated with one quorum must survive the next cut.
// Group membership is a pure hash of (Seed, window, process), never the
// rng, so every message sent in the same window sees the same cut.
type GroupChurn struct {
	// Groups is the number of partitions per window (default 2).
	Groups int
	// Period is the window length (default 4δ).
	Period time.Duration
	// Seed decorrelates the membership hash from the run seed; runs with
	// different seeds churn along different cut lines.
	Seed int64
	// Base rules intra-group messages (default Synchronous).
	Base Policy
}

// group hashes one process into its window's partition (splitmix64 finisher
// over the seed/window/process mix).
func (g GroupChurn) group(window int64, p consensus.ProcessID, groups int) int {
	x := uint64(g.Seed)*0x9e3779b97f4a7c15 ^ uint64(window)*0xbf58476d1ce4e5b9 ^ uint64(p)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(groups))
}

// Fate implements Policy.
func (g GroupChurn) Fate(tx Transmission, rng *rand.Rand) Fate {
	groups := g.Groups
	if groups <= 0 {
		groups = 2
	}
	period := g.Period
	if period <= 0 {
		period = 4 * tx.Delta
	}
	w := int64(tx.SentAt / period)
	if g.group(w, tx.From, groups) != g.group(w, tx.To, groups) {
		return Fate{Drop: true}
	}
	base := g.Base
	if base == nil {
		base = Synchronous{}
	}
	return base.Fate(tx, rng)
}

// TargetedDelay singles out a set of processes: every message to or from a
// target takes exactly Delay to arrive (which may exceed TS−SentAt, turning
// the target's traffic into obsolete messages). Non-target traffic defers to
// Base. This models a slow coordinator or a degraded link without any loss.
type TargetedDelay struct {
	// Targets are the slowed processes.
	Targets map[consensus.ProcessID]bool
	// Delay is the transit time of targeted messages (default 2δ).
	Delay time.Duration
	// Base rules non-targeted messages (default Synchronous).
	Base Policy
}

// Fate implements Policy.
func (t TargetedDelay) Fate(tx Transmission, rng *rand.Rand) Fate {
	if t.Targets[tx.From] || t.Targets[tx.To] {
		d := t.Delay
		if d == 0 {
			d = 2 * tx.Delta
		}
		return Fate{Delay: d}
	}
	base := t.Base
	if base == nil {
		base = Synchronous{}
	}
	return base.Fate(tx, rng)
}

// Duplicate re-delivers surviving pre-TS messages probabilistically: each
// message that Base lets through spawns up to MaxExtra additional copies,
// each with probability Prob, arriving after the original by up to Spread.
// The network never promises exactly-once delivery before stabilization;
// this policy makes that Byzantine-flavored slack concrete, so protocols
// prove their handlers idempotent under it.
type Duplicate struct {
	// Prob is the per-copy duplication probability (default 0.5).
	Prob float64
	// MaxExtra caps the extra copies per message (default 1).
	MaxExtra int
	// Spread bounds how long after the original each copy arrives
	// (default 2δ) — copies of late pre-TS messages can land post-TS,
	// turning duplication into obsolete-message pressure.
	Spread time.Duration
	// Base rules the original delivery (default Synchronous).
	Base Policy
}

// Fate implements Policy.
func (d Duplicate) Fate(tx Transmission, rng *rand.Rand) Fate {
	base := d.Base
	if base == nil {
		base = Synchronous{}
	}
	f := base.Fate(tx, rng)
	if f.Drop {
		return f
	}
	prob := d.Prob
	if prob == 0 {
		prob = 0.5
	}
	maxExtra := d.MaxExtra
	if maxExtra == 0 {
		maxExtra = 1
	}
	spread := d.Spread
	if spread == 0 {
		spread = 2 * tx.Delta
	}
	if spread <= 0 {
		spread = 1
	}
	for i := 0; i < maxExtra; i++ {
		if rng.Float64() < prob {
			f.Duplicates = append(f.Duplicates, f.Delay+1+time.Duration(rng.Int63n(int64(spread))))
		}
	}
	return f
}

// Reorder is a delay-jitter storm: every surviving pre-TS message gets an
// independent extra delay uniform in [0, Jitter], so FIFO ordering between
// any pair of processes is destroyed (a message sent later routinely
// arrives earlier). Protocols relying on channel ordering rather than
// message contents fail here.
type Reorder struct {
	// Jitter bounds the extra delay (default 4δ — enough to invert the
	// order of messages sent up to four δ apart).
	Jitter time.Duration
	// Base rules loss and the baseline delay (default Synchronous).
	Base Policy
}

// Fate implements Policy.
func (r Reorder) Fate(tx Transmission, rng *rand.Rand) Fate {
	base := r.Base
	if base == nil {
		base = Synchronous{}
	}
	f := base.Fate(tx, rng)
	if f.Drop {
		return f
	}
	jitter := r.Jitter
	if jitter == 0 {
		jitter = 4 * tx.Delta
	}
	f.Delay += time.Duration(rng.Int63n(int64(jitter) + 1))
	return f
}
