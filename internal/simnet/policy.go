package simnet

import (
	"math/rand"
	"time"

	"repro/internal/core/consensus"
)

// Transmission describes one message in flight before stabilization, given
// to the Policy to decide its fate.
type Transmission struct {
	From, To consensus.ProcessID
	Msg      consensus.Message
	// SentAt is the global send time (< TS by construction).
	SentAt time.Duration
	// TS and Delta restate the network parameters for convenience.
	TS    time.Duration
	Delta time.Duration
}

// Fate is a policy's ruling on a pre-stability message.
type Fate struct {
	// Drop loses the message entirely.
	Drop bool
	// Delay is the transit time when not dropped. It may exceed TS−SentAt:
	// that is how obsolete messages surface after stabilization.
	Delay time.Duration
}

// Policy decides the fate of every message sent before TS. Implementations
// must draw randomness only from the supplied source to keep runs
// deterministic.
type Policy interface {
	Fate(tx Transmission, rng *rand.Rand) Fate
}

// Synchronous makes the pre-TS network behave exactly like the post-TS one:
// delivery within δ. Useful as a best-case baseline and for TS=0 runs.
type Synchronous struct{}

// Fate implements Policy.
func (Synchronous) Fate(tx Transmission, rng *rand.Rand) Fate {
	return Fate{Delay: tx.Delta / 10 * time.Duration(1+rng.Int63n(9))}
}

// DropAll loses every pre-TS message — total partition until stabilization.
// This is the scenario behind the paper's observation that consensus must
// take Ω(δ) after TS: no pre-TS communication survives.
type DropAll struct{}

// Fate implements Policy.
func (DropAll) Fate(Transmission, *rand.Rand) Fate { return Fate{Drop: true} }

// Chaos drops each pre-TS message with probability DropProb and delays
// survivors uniformly in [0, MaxDelay]. With MaxDelay > TS−SentAt, survivors
// can arrive after stabilization as obsolete messages.
type Chaos struct {
	// DropProb is the per-message loss probability in [0,1].
	DropProb float64
	// MaxDelay is the maximum transit time of surviving messages. Zero
	// means 2·TS (so roughly half of late messages land after TS).
	MaxDelay time.Duration
}

// Fate implements Policy.
func (c Chaos) Fate(tx Transmission, rng *rand.Rand) Fate {
	if rng.Float64() < c.DropProb {
		return Fate{Drop: true}
	}
	maxDelay := c.MaxDelay
	if maxDelay == 0 {
		maxDelay = 2 * tx.TS
	}
	if maxDelay <= 0 {
		return Fate{Delay: 0}
	}
	return Fate{Delay: time.Duration(rng.Int63n(int64(maxDelay) + 1))}
}

// Partition splits processes into groups; messages crossing group boundaries
// before TS are dropped, messages within a group are delivered within δ.
type Partition struct {
	// Group maps each process to a partition index.
	Group map[consensus.ProcessID]int
}

// Fate implements Policy.
func (p Partition) Fate(tx Transmission, rng *rand.Rand) Fate {
	if p.Group[tx.From] != p.Group[tx.To] {
		return Fate{Drop: true}
	}
	return Synchronous{}.Fate(tx, rng)
}
