package simnet

import (
	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/sim"
)

// Arena pools the expensive per-run state of simulated clusters — the
// engine's event storage and the per-process Node objects with their timer
// tables, cached timer closures, and stable stores — so a grid sweep can
// run thousands of cells without rebuilding any of it. Population-scale
// cells make this matter: constructing 5000 nodes per cell costs more than
// simulating some cells.
//
// One Arena serves one goroutine at a time (the scenario runner gives each
// worker its own); runs on an arena are byte-identical to runs on fresh
// storage, which TestArenaRunsAreIdentical pins.
type Arena struct {
	eng   *sim.Engine
	nodes []*Node
}

// NewArena returns an empty arena; storage grows on first use and is
// retained across runs.
func NewArena() *Arena { return &Arena{} }

// Engine returns the arena's engine reset for a new run under seed,
// constructing it on first use. The reset engine's schedules are
// byte-identical to a fresh NewEngine(seed)'s.
func (a *Arena) Engine(seed int64) *sim.Engine {
	if a.eng == nil {
		a.eng = sim.NewEngine(seed)
	} else {
		a.eng.Reset(seed)
	}
	return a.eng
}

// node hands out process id's pooled node, reset and re-bound to the new
// run, growing the pool the first time each size is reached. Networks ask
// for ids in order 0..N−1, so the pool is a plain slice.
func (a *Arena) node(nw *Network, id consensus.ProcessID, factory consensus.Factory, proposal consensus.Value, drift clock.Drift) *Node {
	if int(id) < len(a.nodes) {
		n := a.nodes[id]
		n.reset(nw, factory, proposal, drift)
		return n
	}
	n := newNode(nw, id, factory, proposal, drift)
	a.nodes = append(a.nodes, n)
	return n
}
