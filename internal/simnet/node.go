package simnet

import (
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Node hosts one process inside a simulated network and implements
// consensus.Environment for it. The node owns the process's stable storage
// (which survives crashes) and its pending timers (which do not).
type Node struct {
	nw       *Network
	id       consensus.ProcessID
	factory  consensus.Factory
	proposal consensus.Value
	drift    clock.Drift

	proc   consensus.Process
	up     bool
	store  *storage.MemStore
	timers map[consensus.TimerID]*sim.Event

	decided     bool
	decision    consensus.Value
	decidedAt   time.Duration // global time of first decision
	startedAt   time.Duration // global time of most recent start/restart
	crashCount  int
	restartedAt time.Duration // global time of most recent post-crash start
	restarted   bool
}

func newNode(nw *Network, id consensus.ProcessID, factory consensus.Factory, proposal consensus.Value, drift clock.Drift) *Node {
	return &Node{
		nw:       nw,
		id:       id,
		factory:  factory,
		proposal: proposal,
		drift:    drift,
		store:    storage.NewMemStore(),
		timers:   make(map[consensus.TimerID]*sim.Event),
	}
}

// start boots (or reboots) the process at the current virtual time.
func (n *Node) start() {
	if n.up {
		return
	}
	n.up = true
	n.startedAt = n.nw.eng.Now()
	if n.crashCount > 0 {
		n.restartedAt = n.startedAt
		n.restarted = true
	}
	n.proc = n.factory(n.id, n.nw.cfg.N, n.proposal)
	n.proc.Init(n)
}

// crash stops the process: volatile state (the Process object and all
// pending timers) is discarded; stable storage is kept.
func (n *Node) crash() {
	if !n.up {
		return
	}
	n.up = false
	n.proc = nil
	n.crashCount++
	for id, ev := range n.timers {
		ev.Cancel()
		delete(n.timers, id)
	}
}

// deliver hands a message to the process if it is up; messages arriving at a
// crashed process are lost (omission model).
func (n *Node) deliver(from consensus.ProcessID, m consensus.Message) {
	if !n.up {
		n.nw.collector.MessageDropped(m.Type())
		return
	}
	n.nw.collector.MessageDelivered(m.Type())
	n.proc.HandleMessage(from, m)
	n.nw.notifyDelivered(from, n.id, m)
}

// --- consensus.Environment implementation ---

var _ consensus.Environment = (*Node)(nil)

// ID implements consensus.Environment.
func (n *Node) ID() consensus.ProcessID { return n.id }

// N implements consensus.Environment.
func (n *Node) N() int { return n.nw.cfg.N }

// Now implements consensus.Environment: the local (possibly drifting) clock.
func (n *Node) Now() time.Duration { return n.drift.Local(n.nw.eng.Now()) }

// GlobalNow returns the global virtual time (for tests and metrics; not part
// of the Environment interface, so protocols cannot cheat with it).
func (n *Node) GlobalNow() time.Duration { return n.nw.eng.Now() }

// Send implements consensus.Environment.
func (n *Node) Send(to consensus.ProcessID, m consensus.Message) {
	n.nw.route(n.id, to, m)
}

// Broadcast implements consensus.Environment: sends to every process,
// including the sender (the paper's leaders message themselves too).
func (n *Node) Broadcast(m consensus.Message) {
	for i := 0; i < n.nw.cfg.N; i++ {
		n.nw.route(n.id, consensus.ProcessID(i), m)
	}
}

// SetTimer implements consensus.Environment. The duration counts on the
// process's local clock; the node converts it to global time. Re-arming an
// already-pending timer replaces it.
func (n *Node) SetTimer(id consensus.TimerID, d time.Duration) {
	if prev, ok := n.timers[id]; ok {
		prev.Cancel()
	}
	global := n.drift.GlobalElapsed(d)
	n.timers[id] = n.nw.eng.After(global, func() {
		delete(n.timers, id)
		if n.up {
			n.proc.HandleTimer(id)
		}
	})
}

// CancelTimer implements consensus.Environment.
func (n *Node) CancelTimer(id consensus.TimerID) {
	if ev, ok := n.timers[id]; ok {
		ev.Cancel()
		delete(n.timers, id)
	}
}

// Store implements consensus.Environment.
func (n *Node) Store() storage.Store { return n.store }

// Rand implements consensus.Environment.
func (n *Node) Rand() *rand.Rand { return n.nw.eng.Rand() }

// Decide implements consensus.Environment.
func (n *Node) Decide(v consensus.Value) {
	now := n.nw.eng.Now()
	// The checker flags disagreement and re-decision with a different
	// value; a repeated identical Decide (restart) is idempotent.
	_ = n.nw.checker.RecordDecision(consensus.Decision{Proc: n.id, Value: v, At: now})
	if !n.decided {
		n.decided = true
		n.decision = v
		n.decidedAt = now
		n.nw.collector.Emit(now, int(n.id), "decide", 1)
	}
}

// Emit implements consensus.Environment.
func (n *Node) Emit(kind string, value int64) {
	n.nw.collector.Emit(n.nw.eng.Now(), int(n.id), kind, value)
}

// Logf implements consensus.Environment.
func (n *Node) Logf(format string, args ...any) {
	if n.nw.cfg.Debug {
		n.nw.collector.Logf(n.nw.eng.Now(), int(n.id), format, args...)
	}
}

// --- inspection helpers for tests and the harness ---

// Decided reports whether the process has decided, and the value.
func (n *Node) Decided() (consensus.Value, bool) { return n.decision, n.decided }

// DecidedAtGlobal returns the global time of the first decision.
func (n *Node) DecidedAtGlobal() (time.Duration, bool) { return n.decidedAt, n.decided }

// StartedAtGlobal returns the global time of the most recent (re)start.
func (n *Node) StartedAtGlobal() time.Duration { return n.startedAt }

// RestartRecovery returns the gap between the node's most recent post-crash
// restart and its decision. It reports false for nodes that never restarted
// or whose decision predates the restart (they recovered instantly from
// stable storage or had nothing to recover).
func (n *Node) RestartRecovery() (time.Duration, bool) {
	if !n.restarted || !n.decided || n.decidedAt < n.restartedAt {
		return 0, false
	}
	return n.decidedAt - n.restartedAt, true
}

// CrashCount returns how many times the process has crashed.
func (n *Node) CrashCount() int { return n.crashCount }

// Up reports whether the process is currently running.
func (n *Node) Up() bool { return n.up }

// Process returns the hosted protocol instance (nil while crashed). Tests
// use this to inspect protocol-level state; production code must not.
func (n *Node) Process() consensus.Process { return n.proc }
