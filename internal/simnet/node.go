package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Node hosts one process inside a simulated network and implements
// consensus.Environment for it. The node owns the process's stable storage
// (which survives crashes) and its pending timers (which do not).
type Node struct {
	nw       *Network
	id       consensus.ProcessID
	factory  consensus.Factory
	proposal consensus.Value
	drift    clock.Drift

	proc  consensus.Process
	up    bool
	store *storage.MemStore

	// timers is a dense table indexed by TimerID for IDs below
	// denseTimerCap (protocols declare small integer constants, so their
	// timers all land here). The zero Event means "not armed". timerFns
	// caches one firing closure per dense timer ID, created on first arm
	// and reused by every re-arm — the re-arm churn of a heartbeat
	// protocol allocates nothing. IDs at or above the cap (the RSM
	// multiplexes per-slot timers into unbounded ID blocks) fall back to
	// the sparse map, which holds only live timers so memory stays
	// bounded by concurrency, not by the highest ID ever armed.
	timers   []sim.Event
	timerFns []func()
	timersXL map[consensus.TimerID]sim.Event

	decided     bool
	decision    consensus.Value
	decidedAt   time.Duration // global time of first decision
	startedAt   time.Duration // global time of most recent start/restart
	crashCount  int
	restartedAt time.Duration // global time of most recent post-crash start
	restarted   bool
}

func newNode(nw *Network, id consensus.ProcessID, factory consensus.Factory, proposal consensus.Value, drift clock.Drift) *Node {
	return &Node{
		nw:       nw,
		id:       id,
		factory:  factory,
		proposal: proposal,
		drift:    drift,
		store:    storage.NewMemStore(),
	}
}

// reset re-binds a pooled node (Arena reuse) to a new run: fresh network,
// factory, proposal, and clock; emptied stable storage; cleared decision
// bookkeeping. The dense timer table and its cached firing closures are
// kept — each closure captures only the node pointer and its timer index,
// both stable across reuse, and reads the current proc/up state when it
// fires — so a reused cell's timer churn allocates nothing from its very
// first round. The previous run's engine has been Reset, which invalidated
// every outstanding timer Event, so the stale handles left in the tables
// are inert; they are zeroed here anyway to keep Pending() queries honest.
func (n *Node) reset(nw *Network, factory consensus.Factory, proposal consensus.Value, drift clock.Drift) {
	n.nw = nw
	n.factory = factory
	n.proposal = proposal
	n.drift = drift
	n.proc = nil
	n.up = false
	n.store.Reset()
	for i := range n.timers {
		n.timers[i] = sim.Event{}
	}
	for id := range n.timersXL {
		delete(n.timersXL, id)
	}
	n.decided = false
	n.decision = ""
	n.decidedAt = 0
	n.startedAt = 0
	n.crashCount = 0
	n.restartedAt = 0
	n.restarted = false
}

// start boots (or reboots) the process at the current virtual time.
func (n *Node) start() {
	if n.up {
		return
	}
	n.up = true
	n.startedAt = n.nw.eng.Now()
	if n.crashCount > 0 {
		n.restartedAt = n.startedAt
		n.restarted = true
		// Close the crash window opened by crash() (no-op unless spans on).
		n.nw.collector.Span(n.startedAt, int(n.id), trace.SpanDown, false, int64(n.crashCount))
	}
	n.proc = n.factory(n.id, n.nw.cfg.N, n.proposal)
	n.proc.Init(n)
}

// crash stops the process: volatile state (the Process object and all
// pending timers) is discarded; stable storage is kept.
func (n *Node) crash() {
	if !n.up {
		return
	}
	n.up = false
	n.proc = nil
	n.crashCount++
	n.nw.collector.Span(n.nw.eng.Now(), int(n.id), trace.SpanDown, true, int64(n.crashCount))
	for i := range n.timers {
		n.timers[i].Cancel()
		n.timers[i] = sim.Event{}
	}
	for id, ev := range n.timersXL {
		ev.Cancel()
		delete(n.timersXL, id)
	}
}

// deliver hands a message to the process if it is up; messages arriving at
// a crashed process are lost (omission model). typeID is the message type
// interned in the run's collector, carried by the delivery event so
// accounting needs no string handling.
//
//repro:hotpath
func (n *Node) deliver(from consensus.ProcessID, m consensus.Message, typeID int) {
	if !n.up {
		n.nw.collector.DroppedID(typeID)
		return
	}
	n.nw.collector.DeliveredID(typeID)
	n.proc.HandleMessage(from, m)
	n.nw.notifyDelivered(from, n.id, m)
}

// --- consensus.Environment implementation ---

var _ consensus.Environment = (*Node)(nil)

// ID implements consensus.Environment.
func (n *Node) ID() consensus.ProcessID { return n.id }

// N implements consensus.Environment.
func (n *Node) N() int { return n.nw.cfg.N }

// Now implements consensus.Environment: the local (possibly drifting) clock.
func (n *Node) Now() time.Duration { return n.drift.Local(n.nw.eng.Now()) }

// GlobalNow returns the global virtual time (for tests and metrics; not part
// of the Environment interface, so protocols cannot cheat with it).
func (n *Node) GlobalNow() time.Duration { return n.nw.eng.Now() }

// Send implements consensus.Environment.
//
//repro:hotpath
func (n *Node) Send(to consensus.ProcessID, m consensus.Message) {
	n.nw.route(n.id, to, m)
}

// denseTimerCap bounds the dense timer table: every protocol constant is a
// single-digit ID, while the RSM's slot-multiplexed IDs grow without bound
// and must not size a per-node array.
const denseTimerCap = 32

// SetTimer implements consensus.Environment. The duration counts on the
// process's local clock; the node converts it to global time. Re-arming an
// already-pending timer replaces it.
//
//repro:hotpath
func (n *Node) SetTimer(id consensus.TimerID, d time.Duration) {
	i := int(id)
	if i < 0 {
		panic(fmt.Sprintf("simnet: negative timer ID %d", id))
	}
	global := n.drift.GlobalElapsed(d)
	if i >= denseTimerCap {
		// Sparse fallback: one closure per arm (like the pre-overhaul
		// map), entries deleted on fire/cancel so only live timers are
		// held.
		if prev, ok := n.timersXL[id]; ok {
			prev.Cancel()
		}
		if n.timersXL == nil {
			n.timersXL = make(map[consensus.TimerID]sim.Event)
		}
		//repro:allow hotlint sparse fallback beyond denseTimerCap, off the steady-state path
		n.timersXL[id] = n.nw.eng.After(global, func() {
			delete(n.timersXL, id)
			if n.up {
				n.proc.HandleTimer(id)
			}
		})
		return
	}
	for i >= len(n.timers) {
		n.timers = append(n.timers, sim.Event{})
		n.timerFns = append(n.timerFns, nil)
	}
	n.timers[i].Cancel() // no-op unless armed
	if n.timerFns[i] == nil {
		// Created once per (node, timer ID) and cached; re-arms reuse it,
		// so the steady state allocates nothing.
		//repro:allow hotlint allocated once then cached in timerFns
		n.timerFns[i] = func() {
			n.timers[i] = sim.Event{}
			if n.up {
				n.proc.HandleTimer(id)
			}
		}
	}
	n.timers[i] = n.nw.eng.After(global, n.timerFns[i])
}

// CancelTimer implements consensus.Environment.
//
//repro:hotpath
func (n *Node) CancelTimer(id consensus.TimerID) {
	i := int(id)
	if i >= denseTimerCap {
		if ev, ok := n.timersXL[id]; ok {
			ev.Cancel()
			delete(n.timersXL, id)
		}
		return
	}
	if i >= 0 && i < len(n.timers) {
		n.timers[i].Cancel()
		n.timers[i] = sim.Event{}
	}
}

// Store implements consensus.Environment.
func (n *Node) Store() storage.Store { return n.store }

// Rand implements consensus.Environment.
func (n *Node) Rand() *rand.Rand { return n.nw.eng.Rand() }

// Decide implements consensus.Environment.
func (n *Node) Decide(v consensus.Value) {
	now := n.nw.eng.Now()
	// The checker flags disagreement and re-decision with a different
	// value; a repeated identical Decide (restart) is idempotent.
	_ = n.nw.checker.RecordDecision(consensus.Decision{Proc: n.id, Value: v, At: now})
	if !n.decided {
		n.decided = true
		n.decision = v
		n.decidedAt = now
		n.nw.collector.Emit(now, int(n.id), "decide", 1)
		if n.nw.collector.HistogramsEnabled() {
			// The paper's headline metric, per process: global decision
			// time minus TS, clamped like Result.LatencyAfterTS.
			lat := now - n.nw.cfg.TS
			if lat < 0 {
				lat = 0
			}
			n.nw.collector.ObserveLatency(trace.HistDecideLatency, lat)
		}
	}
}

// Emit implements consensus.Environment.
func (n *Node) Emit(kind string, value int64) {
	n.nw.collector.Emit(n.nw.eng.Now(), int(n.id), kind, value)
}

// Span implements consensus.SpanSink: protocol phase spans are stamped with
// global virtual time (spans from different processes must share one
// timeline; local clocks drift).
func (n *Node) Span(kind string, begin bool, value int64) {
	n.nw.collector.Span(n.nw.eng.Now(), int(n.id), kind, begin, value)
}

// SpansEnabled lets layered environments (the RSM slot env) skip span
// bookkeeping when recording is off.
func (n *Node) SpansEnabled() bool { return n.nw.collector.SpansEnabled() }

// ObserveDuration implements consensus.DurationObserver.
func (n *Node) ObserveDuration(name string, d time.Duration) {
	n.nw.collector.ObserveLatency(name, d)
}

// ObserveValue implements consensus.ValueObserver.
func (n *Node) ObserveValue(name string, v int64) {
	n.nw.collector.ObserveValue(name, v)
}

// Logf implements consensus.Environment.
func (n *Node) Logf(format string, args ...any) {
	if n.nw.cfg.Debug {
		n.nw.collector.Logf(n.nw.eng.Now(), int(n.id), format, args...)
	}
}

// --- inspection helpers for tests and the harness ---

// Decided reports whether the process has decided, and the value.
func (n *Node) Decided() (consensus.Value, bool) { return n.decision, n.decided }

// DecidedAtGlobal returns the global time of the first decision.
func (n *Node) DecidedAtGlobal() (time.Duration, bool) { return n.decidedAt, n.decided }

// StartedAtGlobal returns the global time of the most recent (re)start.
func (n *Node) StartedAtGlobal() time.Duration { return n.startedAt }

// RestartRecovery returns the gap between the node's most recent post-crash
// restart and its decision. It reports false for nodes that never restarted
// or whose decision predates the restart (they recovered instantly from
// stable storage or had nothing to recover).
func (n *Node) RestartRecovery() (time.Duration, bool) {
	if !n.restarted || !n.decided || n.decidedAt < n.restartedAt {
		return 0, false
	}
	return n.decidedAt - n.restartedAt, true
}

// CrashCount returns how many times the process has crashed.
func (n *Node) CrashCount() int { return n.crashCount }

// Up reports whether the process is currently running.
func (n *Node) Up() bool { return n.up }

// Process returns the hosted protocol instance (nil while crashed). Tests
// use this to inspect protocol-level state; production code must not.
func (n *Node) Process() consensus.Process { return n.proc }
