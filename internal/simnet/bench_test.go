package simnet

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/trace"
)

// nullProc ignores everything: the benchmark measures the network and
// engine, not a protocol.
type nullProc struct{}

func (nullProc) Init(consensus.Environment)                           {}
func (nullProc) HandleMessage(consensus.ProcessID, consensus.Message) {}
func (nullProc) HandleTimer(consensus.TimerID)                        {}

// benchNetwork builds an N-process network on the given arena (nil = fresh
// storage), started and past TS so every fan-out takes the stable path.
func benchNetwork(b *testing.B, arena *Arena, n int, seed int64) (*sim.Engine, *Network) {
	b.Helper()
	var eng *sim.Engine
	if arena != nil {
		eng = arena.Engine(seed)
	} else {
		eng = sim.NewEngine(seed)
	}
	factory := func(consensus.ProcessID, int, consensus.Value) consensus.Process { return nullProc{} }
	nw, err := New(eng, Config{
		N: n, Delta: 10 * time.Millisecond,
		Collector: trace.NewCollector(), Arena: arena,
	}, factory, proposals(n))
	if err != nil {
		b.Fatal(err)
	}
	nw.Start()
	return eng, nw
}

// BenchmarkBroadcastN1000 is the tentpole A/B: one all-to-all broadcast
// round at N=1000 — every process fans one message out to every process,
// and the engine drains the resulting million deliveries. Network and
// engine construction happen outside the timed region; the measurement is
// the broadcast round itself.
//
// The unicast baseline is the pre-batching reality: one pooled heap event
// per link, so the round pushes N² entries through the priority queue —
// the engine's slot pool and heap must grow to a million entries and every
// pop sifts a million-entry heap. The batched variant is what population
// runs actually execute: arena-warm storage and one multicast slot per
// sender, so the heap never exceeds N entries and the round allocates
// nothing. The perfgate broadcast mode holds the batched numbers to
// BENCH_9.json.
func BenchmarkBroadcastN1000(b *testing.B) {
	const n = 1000
	// Boxed once: the senders share one interface value, as a protocol
	// broadcasting a prepared message would.
	var msg consensus.Message = pingMsg{V: "x"}

	b.Run("unicast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, nw := benchNetwork(b, nil, n, int64(i)+1)
			b.StartTimer()
			for p := 0; p < n; p++ {
				nw.Node(consensus.ProcessID(p)).broadcastUnicast(msg)
			}
			eng.Run(time.Second)
		}
	})

	b.Run("batched", func(b *testing.B) {
		arena := NewArena()
		// Warm the arena as a scenario worker's first cell would.
		eng, nw := benchNetwork(b, arena, n, 1)
		for p := 0; p < n; p++ {
			nw.Node(consensus.ProcessID(p)).Broadcast(msg)
		}
		eng.Run(time.Second)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, nw := benchNetwork(b, arena, n, int64(i)+1)
			b.StartTimer()
			for p := 0; p < n; p++ {
				nw.Node(consensus.ProcessID(p)).Broadcast(msg)
			}
			eng.Run(time.Second)
		}
	})
}
