package simnet

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/sim"
)

// echoMsg is a trivial test message.
type echoMsg struct{ Hop int }

func (echoMsg) Type() string { return "echo" }

// pingMsg triggers a decision at the recipient.
type pingMsg struct{ V consensus.Value }

func (pingMsg) Type() string { return "ping" }

// testProc is a minimal protocol used to exercise the substrate: process 0
// broadcasts its proposal once started; every process decides on the first
// ping it receives, and also re-broadcasts once.
type testProc struct {
	id       consensus.ProcessID
	proposal consensus.Value
	env      consensus.Environment
	sent     bool
}

func newTestFactory() consensus.Factory {
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &testProc{id: id, proposal: proposal}
	}
}

func (p *testProc) Init(env consensus.Environment) {
	p.env = env
	// Recover "already decided" from stable storage.
	var v consensus.Value
	if ok, _ := env.Store().Get("decided", &v); ok {
		env.Decide(v)
		p.sent = true
		return
	}
	if p.id == 0 {
		env.Broadcast(pingMsg{V: p.proposal})
	}
	// Retry broadcast until decided, to survive pre-TS loss.
	env.SetTimer(1, 50*time.Millisecond)
}

func (p *testProc) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	if ping, ok := m.(pingMsg); ok {
		if err := p.env.Store().Put("decided", ping.V); err != nil {
			p.env.Logf("store: %v", err)
			return
		}
		p.env.Decide(ping.V)
		if !p.sent {
			p.sent = true
			p.env.Broadcast(pingMsg{V: ping.V})
		}
	}
}

func (p *testProc) HandleTimer(id consensus.TimerID) {
	if p.id == 0 && !p.sent {
		p.env.Broadcast(pingMsg{V: p.proposal})
		p.env.SetTimer(1, 50*time.Millisecond)
	}
}

func proposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value("v0")
	}
	return out
}

func build(t *testing.T, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw, err := New(eng, cfg, newTestFactory(), proposals(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func TestSynchronousDeliveryWithinDelta(t *testing.T) {
	delta := 10 * time.Millisecond
	eng, nw := build(t, Config{N: 5, Delta: delta, TS: 0})
	nw.Start()
	ok, err := nw.RunUntilAllDecided(time.Second)
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if !ok {
		t.Fatal("cluster did not decide")
	}
	// All decisions must land within 2δ: one hop ping from process 0.
	for _, id := range nw.AllIDs() {
		at, decided := nw.Node(id).DecidedAtGlobal()
		if !decided {
			t.Fatalf("process %d undecided", id)
		}
		if at > 2*delta {
			t.Fatalf("process %d decided at %v, want ≤ 2δ=%v", id, at, 2*delta)
		}
	}
	if eng.Now() > time.Second {
		t.Fatalf("simulation overran: %v", eng.Now())
	}
}

func TestDropAllBlocksUntilTS(t *testing.T) {
	delta := 10 * time.Millisecond
	ts := 500 * time.Millisecond
	_, nw := build(t, Config{N: 3, Delta: delta, TS: ts, Policy: DropAll{}})
	nw.Start()
	ok, err := nw.RunUntilAllDecided(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cluster did not decide after TS")
	}
	for _, id := range nw.AllIDs() {
		at, _ := nw.Node(id).DecidedAtGlobal()
		if at < ts {
			t.Fatalf("process %d decided at %v, before TS=%v despite DropAll", id, at, ts)
		}
	}
}

func TestTimerRearmDoesNotBloatEventQueue(t *testing.T) {
	// Protocols that re-arm a timer on every message (modpaxos's session
	// timer) cancel the previous event each SetTimer; the canceled events
	// must leave the engine's heap immediately, or Pending lies and the
	// queue grows with the churn.
	eng, nw := build(t, Config{N: 3, Delta: 10 * time.Millisecond})
	node := nw.Node(0)
	for i := 0; i < 1000; i++ {
		node.SetTimer(1, 50*time.Millisecond)
	}
	if p := eng.Pending(); p != 1 {
		t.Fatalf("engine has %d pending events after 1000 re-arms of one timer, want 1", p)
	}
}

func TestCrashedProcessDropsMessagesAndTimers(t *testing.T) {
	delta := 10 * time.Millisecond
	_, nw := build(t, Config{N: 3, Delta: delta, TS: 0})
	nw.Start()
	nw.CrashAt(2, 1*time.Millisecond) // crash before the ping lands
	ok, err := nw.RunUntilAllDecided(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("up processes did not decide")
	}
	if _, decided := nw.Node(2).Decided(); decided {
		t.Fatal("crashed process decided")
	}
	if nw.Up(2) {
		t.Fatal("process 2 should be down")
	}
	if got := len(nw.UpIDs()); got != 2 {
		t.Fatalf("UpIDs = %d processes, want 2", got)
	}
}

func TestRestartRecoversFromStableStorage(t *testing.T) {
	delta := 10 * time.Millisecond
	eng, nw := build(t, Config{N: 3, Delta: delta, TS: 0})
	nw.Start()
	ok, err := nw.RunUntilAllDecided(time.Second)
	if err != nil || !ok {
		t.Fatalf("initial decide failed: ok=%v err=%v", ok, err)
	}
	decideTime := eng.Now()

	nw.CrashAt(1, decideTime+10*time.Millisecond)
	nw.RestartAt(1, decideTime+50*time.Millisecond)
	eng.Run(decideTime + 100*time.Millisecond)

	if !nw.Up(1) {
		t.Fatal("process 1 should be up after restart")
	}
	v, decided := nw.Node(1).Decided()
	if !decided || v != "v0" {
		t.Fatalf("restarted process lost its decision: %q %v", v, decided)
	}
	if nw.Node(1).CrashCount() != 1 {
		t.Fatalf("CrashCount = %d, want 1", nw.Node(1).CrashCount())
	}
	if err := nw.Checker().Violation(); err != nil {
		t.Fatalf("restart caused safety violation: %v", err)
	}
}

func TestStartExceptKeepsProcessesDown(t *testing.T) {
	_, nw := build(t, Config{N: 5, Delta: 10 * time.Millisecond, TS: 0})
	nw.StartExcept(3, 4)
	if nw.Up(3) || nw.Up(4) {
		t.Fatal("excluded processes should be down")
	}
	if !nw.Up(0) || !nw.Up(1) || !nw.Up(2) {
		t.Fatal("non-excluded processes should be up")
	}
}

func TestInjectDeliversAtExactTime(t *testing.T) {
	eng, nw := build(t, Config{N: 3, Delta: 10 * time.Millisecond, TS: 0})
	// Only start process 2 so nothing else delivers pings.
	nw.StartExcept(0, 1)
	nw.Inject(123*time.Millisecond, 0, 2, pingMsg{V: "v0"})
	eng.Run(time.Second)
	at, decided := nw.Node(2).DecidedAtGlobal()
	if !decided || at != 123*time.Millisecond {
		t.Fatalf("inject decided=%v at=%v, want decision exactly at 123ms", decided, at)
	}
}

func TestTimersFollowLocalClocks(t *testing.T) {
	// A process with a 25% fast clock must fire a 100ms timer after only
	// 80ms of global time.
	eng := sim.NewEngine(1)
	cfg := Config{
		N: 1, Delta: 10 * time.Millisecond, TS: 0,
		Drift: func(consensus.ProcessID) clock.Drift { return clock.WithRate(1.25) },
	}
	var firedAt time.Duration
	factory := func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &timerProbe{firedAt: &firedAt, eng: eng}
	}
	nw, err := New(eng, cfg, factory, proposals(1))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	eng.Run(time.Second)
	want := 80 * time.Millisecond
	if diff := firedAt - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("timer fired at global %v, want ~%v", firedAt, want)
	}
}

type timerProbe struct {
	firedAt *time.Duration
	eng     *sim.Engine
}

func (p *timerProbe) Init(env consensus.Environment) { env.SetTimer(1, 100*time.Millisecond) }
func (p *timerProbe) HandleMessage(consensus.ProcessID, consensus.Message) {
}
func (p *timerProbe) HandleTimer(consensus.TimerID) { *p.firedAt = p.eng.Now() }

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	bad := []Config{
		{N: 0, Delta: time.Millisecond},
		{N: 3, Delta: 0},
		{N: 3, Delta: time.Millisecond, TS: -1},
		{N: 3, Delta: time.Millisecond, MinDelay: 2 * time.Millisecond},
		{N: 3, Delta: time.Millisecond, Rho: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(eng, cfg, newTestFactory(), proposals(cfg.N)); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := New(eng, Config{N: 3, Delta: time.Millisecond}, newTestFactory(), proposals(2)); err == nil {
		t.Error("proposal count mismatch should be rejected")
	}
}

func TestDriftSpreadAcrossRho(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{N: 5, Delta: time.Millisecond, Rho: 0.05}
	nw, err := New(eng, cfg, newTestFactory(), proposals(5))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 slowest, node 4 fastest, all within [1−ρ, 1+ρ].
	slow := nw.Node(0).Now()
	_ = slow
	g := 100 * time.Millisecond
	eng.Schedule(g, func() {})
	eng.Run(g)
	lo := nw.Node(0).Now()
	hi := nw.Node(4).Now()
	if lo >= hi {
		t.Fatalf("expected clock spread, got lo=%v hi=%v", lo, hi)
	}
	if lo < time.Duration(float64(g)*0.95) || hi > time.Duration(float64(g)*1.05)+time.Microsecond {
		t.Fatalf("clocks outside ρ band: lo=%v hi=%v", lo, hi)
	}
}

func TestChaosPolicyStatistics(t *testing.T) {
	// With heavy drop probability, most pre-TS messages are lost but the
	// cluster still decides after TS.
	delta := 10 * time.Millisecond
	ts := 300 * time.Millisecond
	_, nw := build(t, Config{
		N: 3, Delta: delta, TS: ts,
		Policy: Chaos{DropProb: 0.9},
	})
	nw.Start()
	ok, err := nw.RunUntilAllDecided(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cluster did not decide under chaos")
	}
	if nw.Collector().TotalDropped() == 0 {
		t.Fatal("chaos policy dropped nothing (suspicious)")
	}
}

func TestPartitionPolicy(t *testing.T) {
	groups := map[consensus.ProcessID]int{0: 0, 1: 0, 2: 1}
	p := Partition{Group: groups}
	tx := Transmission{From: 0, To: 2, Delta: time.Millisecond, TS: time.Second}
	if f := p.Fate(tx, sim.NewEngine(1).Rand()); !f.Drop {
		t.Fatal("cross-partition message should drop")
	}
	tx.To = 1
	if f := p.Fate(tx, sim.NewEngine(1).Rand()); f.Drop {
		t.Fatal("same-partition message should pass")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		eng := sim.NewEngine(42)
		nw, err := New(eng, Config{N: 5, Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond, Policy: Chaos{DropProb: 0.5}}, newTestFactory(), proposals(5))
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		if _, err := nw.RunUntilAllDecided(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		last, _ := nw.Checker().LastDecisionAmong(nw.AllIDs())
		return last, nw.Collector().TotalSent()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("identical seeds diverged: (%v,%d) vs (%v,%d)", t1, m1, t2, m2)
	}
}

func TestSparseTimerIDsStayBounded(t *testing.T) {
	// The RSM multiplexes per-slot timers into unbounded ID blocks
	// (slot*timersPerSlot + id). Those must not size the dense per-node
	// timer table: large IDs take the sparse map, which holds only live
	// timers, and they must still fire and cancel correctly.
	eng, nw := build(t, Config{N: 1, Delta: 10 * time.Millisecond})
	node := nw.Node(0)

	// March through ever-growing IDs, canceling each before arming the
	// next — the RSM's advancing-slot shape.
	for slot := 0; slot < 1000; slot++ {
		id := consensus.TimerID(slot*8 + 1)
		node.SetTimer(id, 50*time.Millisecond)
		node.CancelTimer(id)
	}
	if got := len(node.timers); got > denseTimerCap {
		t.Fatalf("dense timer table grew to %d entries under sparse IDs, cap is %d", got, denseTimerCap)
	}
	if got := len(node.timersXL); got != 0 {
		t.Fatalf("sparse timer map holds %d entries after cancels, want 0", got)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("engine has %d pending events after all cancels, want 0", p)
	}

	// A sparse timer re-arms (replacing the pending one) and fires.
	node.SetTimer(9999, time.Hour)
	node.SetTimer(9999, 10*time.Millisecond)
	if p := eng.Pending(); p != 1 {
		t.Fatalf("re-arming a sparse timer left %d events pending, want 1", p)
	}
	fired := false
	node.up = true
	node.proc = timerRecorder{onTimer: func(id consensus.TimerID) {
		if id == 9999 {
			fired = true
		}
	}}
	eng.Run(time.Second)
	if !fired {
		t.Fatal("sparse timer did not fire")
	}
	if got := len(node.timersXL); got != 0 {
		t.Fatalf("sparse timer map holds %d entries after firing, want 0", got)
	}
}

// timerRecorder is a minimal Process capturing HandleTimer calls.
type timerRecorder struct{ onTimer func(consensus.TimerID) }

func (timerRecorder) Init(consensus.Environment)                           {}
func (timerRecorder) HandleMessage(consensus.ProcessID, consensus.Message) {}
func (r timerRecorder) HandleTimer(id consensus.TimerID)                   { r.onTimer(id) }
