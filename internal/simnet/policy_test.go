package simnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core/consensus"
)

const (
	testDelta = 10 * time.Millisecond
	testTS    = 200 * time.Millisecond
)

// tx builds a transmission from→to at sentAt with the test parameters.
func tx(from, to consensus.ProcessID, sentAt time.Duration) Transmission {
	return Transmission{
		From: from, To: to, Msg: echoMsg{}, SentAt: sentAt,
		TS: testTS, Delta: testDelta,
	}
}

// fates runs the policy over a fixed message sequence with a fixed seed and
// returns the resulting fates.
func fates(p Policy, seed int64) []Fate {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fate, 0, 64)
	for i := 0; i < 64; i++ {
		from := consensus.ProcessID(i % 5)
		to := consensus.ProcessID((i + 1 + i/5) % 5)
		at := time.Duration(i) * testTS / 64
		out = append(out, p.Fate(tx(from, to, at), rng))
	}
	return out
}

// TestCompositePoliciesDeterministic checks that every composite policy is a
// pure function of (message sequence, seed): two runs with the same seed
// agree fate-for-fate.
func TestCompositePoliciesDeterministic(t *testing.T) {
	groups := SplitBrain(5)
	policies := map[string]Policy{
		"chain": Chain{
			LossBurst{From: testTS / 2, DropProb: 0.5},
			TargetedDelay{Targets: map[consensus.ProcessID]bool{0: true}, Delay: 3 * testDelta},
			Chaos{DropProb: 0.2},
		},
		"partition-until-ts": PartitionUntilTS{Group: groups},
		"loss-burst":         LossBurst{From: testTS / 4, To: testTS / 2, DropProb: 0.7},
		"targeted-delay":     TargetedDelay{Targets: map[consensus.ProcessID]bool{2: true}},
		"duplicate":          Duplicate{Prob: 0.6, MaxExtra: 2, Base: Chaos{DropProb: 0.3}},
		"reorder":            Reorder{Base: LossBurst{From: testTS / 2, DropProb: 0.4}},
	}
	for name, p := range policies {
		a := fates(p, 42)
		b := fates(p, 42)
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Errorf("%s: fate %d differs between identically-seeded runs: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

// TestPartitionUntilTSHealsExactlyAtTS pins the heal edge: a cross-group
// message sent one instant before TS is dropped; messages within a group
// are always delivered; and once healed (HealAt < TS) cross-group traffic
// flows within δ.
func TestPartitionUntilTSHealsExactlyAtTS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	groups := SplitBrain(5) // {0,1,2} vs {3,4}
	p := PartitionUntilTS{Group: groups}

	// Cross-group, one nanosecond before TS: still partitioned.
	if f := p.Fate(tx(0, 4, testTS-time.Nanosecond), rng); !f.Drop {
		t.Errorf("cross-group message at TS−1ns should drop, got %+v", f)
	}
	// Same group: always flows, with a δ-bounded delay.
	if f := p.Fate(tx(0, 2, testTS/2), rng); f.Drop || f.Delay > testDelta {
		t.Errorf("intra-group message should deliver within δ, got %+v", f)
	}
	// The simulated network never consults the policy at or after TS, so
	// healing "exactly at TS" means: there is no pre-TS instant at which
	// cross-group traffic flows. With an explicit earlier HealAt there is.
	healed := PartitionUntilTS{Group: groups, HealAt: testTS / 2}
	if f := healed.Fate(tx(0, 4, testTS/2), rng); f.Drop || f.Delay > testDelta {
		t.Errorf("cross-group message after HealAt should deliver within δ, got %+v", f)
	}
	if f := healed.Fate(tx(0, 4, testTS/2-time.Nanosecond), rng); !f.Drop {
		t.Errorf("cross-group message before HealAt should drop, got %+v", f)
	}
}

// TestChainCompositionOrder pins Chain's semantics: links are consulted in
// order, the first Drop short-circuits (later links draw no randomness), and
// surviving messages take the maximum delay over all links.
func TestChainCompositionOrder(t *testing.T) {
	slow := TargetedDelay{Targets: map[consensus.ProcessID]bool{0: true}, Delay: 5 * testDelta}

	// Drop-first: the dropping link short-circuits, so the rng is
	// untouched and stays aligned with a fresh source.
	rngA := rand.New(rand.NewSource(7))
	chain := Chain{DropAll{}, Chaos{DropProb: 0.5}}
	for i := 0; i < 8; i++ {
		if f := chain.Fate(tx(0, 1, testTS/2), rngA); !f.Drop {
			t.Fatalf("Chain{DropAll, …} must drop, got %+v", f)
		}
	}
	rngB := rand.New(rand.NewSource(7))
	if got, want := rngA.Int63(), rngB.Int63(); got != want {
		t.Errorf("short-circuited chain consumed randomness: %d vs %d", got, want)
	}

	// Drop-last: the same links in the other order consume Chaos's draws
	// before dropping — composition order is observable through the rng.
	rngC := rand.New(rand.NewSource(7))
	reversed := Chain{Chaos{DropProb: 0.5}, DropAll{}}
	for i := 0; i < 8; i++ {
		if f := reversed.Fate(tx(0, 1, testTS/2), rngC); !f.Drop {
			t.Fatalf("Chain{…, DropAll} must drop, got %+v", f)
		}
	}
	rngD := rand.New(rand.NewSource(7))
	if got, want := rngC.Int63(), rngD.Int63(); got == want {
		t.Error("reversed chain should have consumed randomness before dropping")
	}

	// Max-delay merge: a targeted 5δ link dominates the synchronous base
	// regardless of position.
	for _, c := range []Chain{{slow, Synchronous{}}, {Synchronous{}, slow}} {
		f := c.Fate(tx(0, 1, testTS/2), rand.New(rand.NewSource(3)))
		if f.Drop || f.Delay != 5*testDelta {
			t.Errorf("chain %v: want delay 5δ, got %+v", c, f)
		}
	}
}

// TestLossBurstWindowAndTargets pins the burst window edges and targeting.
func TestLossBurstWindowAndTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	burst := LossBurst{From: testTS / 2, To: testTS * 3 / 4}
	if f := burst.Fate(tx(0, 1, testTS/2), rng); !f.Drop {
		t.Errorf("message at burst start should drop, got %+v", f)
	}
	if f := burst.Fate(tx(0, 1, testTS*3/4), rng); f.Drop {
		t.Errorf("message at burst end should survive, got %+v", f)
	}
	if f := burst.Fate(tx(0, 1, 0), rng); f.Drop || f.Delay > testDelta {
		t.Errorf("message before burst should deliver within δ, got %+v", f)
	}

	targeted := LossBurst{Targets: map[consensus.ProcessID]bool{4: true}}
	if f := targeted.Fate(tx(4, 1, testTS/2), rng); !f.Drop {
		t.Errorf("message from target should drop, got %+v", f)
	}
	if f := targeted.Fate(tx(1, 4, testTS/2), rng); !f.Drop {
		t.Errorf("message to target should drop, got %+v", f)
	}
	if f := targeted.Fate(tx(0, 1, testTS/2), rng); f.Drop {
		t.Errorf("untargeted message should survive, got %+v", f)
	}
}

// TestDuplicateSpawnsLateCopies pins the Duplicate policy: dropped messages
// spawn nothing, surviving messages spawn at most MaxExtra copies, and every
// copy arrives strictly after the original (re-delivery, not pre-delivery).
func TestDuplicateSpawnsLateCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Duplicate{Prob: 1, MaxExtra: 3, Spread: testDelta}
	f := p.Fate(tx(0, 1, testTS/2), rng)
	if f.Drop {
		t.Fatalf("synchronous base must not drop, got %+v", f)
	}
	if len(f.Duplicates) != 3 {
		t.Fatalf("Prob=1 MaxExtra=3: want 3 copies, got %d", len(f.Duplicates))
	}
	for i, d := range f.Duplicates {
		if d <= f.Delay || d > f.Delay+testDelta {
			t.Errorf("copy %d arrives at %v, want in (%v, %v]", i, d, f.Delay, f.Delay+testDelta)
		}
	}
	// A dropped original spawns no copies.
	dropped := Duplicate{Prob: 1, Base: DropAll{}}
	if f := dropped.Fate(tx(0, 1, testTS/2), rng); !f.Drop || len(f.Duplicates) != 0 {
		t.Errorf("dropped message must spawn no duplicates, got %+v", f)
	}
	// Prob=0 means the 0.5 default, not "never": over many draws some
	// messages must duplicate.
	def := Duplicate{}
	n := 0
	for i := 0; i < 64; i++ {
		n += len(def.Fate(tx(0, 1, testTS/2), rng).Duplicates)
	}
	if n == 0 {
		t.Error("default Duplicate never spawned a copy over 64 messages")
	}
	// Chain must carry re-deliveries through its merge, or composed
	// regimes silently lose the duplication they advertise.
	chained := Chain{Duplicate{Prob: 1, MaxExtra: 2, Spread: testDelta}, Synchronous{}}
	if f := chained.Fate(tx(0, 1, testTS/2), rng); len(f.Duplicates) != 2 {
		t.Errorf("Chain dropped re-deliveries: %+v", f)
	}
	// A zero Delta (unset PolicyTransportConfig) must not panic the
	// default-spread draw.
	zero := Transmission{From: 0, To: 1, Msg: echoMsg{}, SentAt: 0, TS: testTS, Delta: 0}
	if f := (Duplicate{Prob: 1}).Fate(zero, rng); len(f.Duplicates) != 1 {
		t.Errorf("Duplicate with zero Delta: %+v", f)
	}
}

// TestReorderBreaksFIFO pins the Reorder policy: the jitter stays within
// [base, base+Jitter], and with the default 4δ jitter two back-to-back
// messages on the same link are observably inverted somewhere in a short
// deterministic sequence.
func TestReorderBreaksFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Reorder{Jitter: 2 * testDelta, Base: TargetedDelay{Targets: map[consensus.ProcessID]bool{0: true}, Delay: testDelta}}
	for i := 0; i < 32; i++ {
		f := p.Fate(tx(0, 1, testTS/2), rng)
		if f.Drop {
			t.Fatalf("reorder must not drop, got %+v", f)
		}
		if f.Delay < testDelta || f.Delay > 3*testDelta {
			t.Errorf("jittered delay %v outside [δ, 3δ]", f.Delay)
		}
	}
	// Default jitter (4δ) inverts consecutive sends: find a pair where the
	// earlier send arrives later.
	def := Reorder{}
	inverted := false
	var prevArrival time.Duration
	for i := 0; i < 32; i++ {
		sent := time.Duration(i) * testDelta / 4
		f := def.Fate(tx(0, 1, sent), rng)
		arrival := sent + f.Delay
		if i > 0 && arrival < prevArrival {
			inverted = true
		}
		prevArrival = arrival
	}
	if !inverted {
		t.Error("default Reorder never inverted delivery order over 32 back-to-back sends")
	}
}

// TestSplitBrainGroups pins the grouping convention the library depends on:
// the low half (majority for odd n) is group 0.
func TestSplitBrainGroups(t *testing.T) {
	g := SplitBrain(5)
	for id, want := range map[consensus.ProcessID]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 1} {
		if g[id] != want {
			t.Errorf("SplitBrain(5)[%d] = %d, want %d", id, g[id], want)
		}
	}
}

// TestGroupChurnReshufflesCuts pins GroupChurn: membership is a pure
// function of (Seed, window, process) — consistent within a window, no rng
// consumed for the cut — cross-group messages drop, intra-group ones defer
// to Base, and the layout actually changes across windows and seeds.
func TestGroupChurnReshufflesCuts(t *testing.T) {
	p := GroupChurn{Groups: 2, Period: 4 * testDelta, Seed: 1}
	const procs = 8

	// Within one window the cut is stable: a message between two processes
	// either always drops or always survives, whatever the rng says.
	for a := consensus.ProcessID(0); a < procs; a++ {
		for b := consensus.ProcessID(0); b < procs; b++ {
			if a == b {
				continue
			}
			first := p.Fate(tx(a, b, 0), rand.New(rand.NewSource(1))).Drop
			for s := int64(2); s < 5; s++ {
				if got := p.Fate(tx(a, b, testDelta), rand.New(rand.NewSource(s))).Drop; got != first {
					t.Fatalf("cut %d→%d flapped within a window (rng seed %d)", a, b, s)
				}
			}
			// Symmetric cut: if a cannot reach b, b cannot reach a.
			if back := p.Fate(tx(b, a, 0), rand.New(rand.NewSource(1))).Drop; back != first {
				t.Fatalf("cut %d→%d asymmetric", a, b)
			}
		}
	}

	// Across windows the layout reshuffles: some pair must change sides
	// within a handful of periods, and different seeds cut differently.
	layout := func(g GroupChurn, window int64) (s string) {
		for i := consensus.ProcessID(0); i < procs; i++ {
			s += fmt.Sprintf("%d", g.group(window, i, 2))
		}
		return
	}
	changed := false
	for w := int64(1); w < 8; w++ {
		if layout(p, w) != layout(p, 0) {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("group layout never changed over 8 windows")
	}
	if layout(p, 0) == layout(GroupChurn{Groups: 2, Seed: 99}, 0) {
		t.Error("seeds 1 and 99 produced the same window-0 layout")
	}

	// Intra-group traffic defers to Base; default Base is Synchronous.
	for a := consensus.ProcessID(0); a < procs; a++ {
		for b := consensus.ProcessID(0); b < procs; b++ {
			if a == b || p.group(0, a, 2) != p.group(0, b, 2) {
				continue
			}
			if f := p.Fate(tx(a, b, 0), rand.New(rand.NewSource(1))); f.Drop || f.Delay > testDelta {
				t.Fatalf("intra-group %d→%d not synchronous: %+v", a, b, f)
			}
		}
	}
}
