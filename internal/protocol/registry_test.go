package protocol_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/protocol"

	_ "repro/internal/protocol/all"
)

const delta = 10 * time.Millisecond

func TestGetUnknownName(t *testing.T) {
	_, err := protocol.Get("no-such-protocol")
	if err == nil {
		t.Fatal("unknown name should error")
	}
	if !strings.Contains(err.Error(), "no-such-protocol") {
		t.Errorf("error %q does not name the unknown protocol", err)
	}
	// The error lists the registered names, so a typo is self-diagnosing.
	if !strings.Contains(err.Error(), "modpaxos") {
		t.Errorf("error %q does not list registered protocols", err)
	}
}

func TestRegisterRejectsInvalidAndDuplicate(t *testing.T) {
	if err := protocol.Register(protocol.Descriptor{Name: ""}); err == nil {
		t.Error("empty name should be rejected")
	}
	if err := protocol.Register(protocol.Descriptor{Name: "no-constructor"}); err == nil {
		t.Error("nil constructor should be rejected")
	}
	d := protocol.Descriptor{
		Name: "dup-test",
		New: func(p protocol.Params) (consensus.Factory, error) {
			return nil, nil
		},
	}
	if err := protocol.Register(d); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if err := protocol.Register(d); err == nil {
		t.Error("duplicate registration should be rejected")
	}
}

func TestBuiltinsRegisteredInCanonicalOrder(t *testing.T) {
	var names, visible []string
	for _, d := range protocol.All() {
		names = append(names, d.Name)
	}
	for _, d := range protocol.Visible() {
		visible = append(visible, d.Name)
	}
	// All() preserves registration order; protocol/all registers the four
	// built-ins first, then the hidden ablation variants.
	for i, want := range []string{"paxos", "modpaxos", "roundbased", "bconsensus", "modpaxos-norule"} {
		if i >= len(names) || names[i] != want {
			t.Fatalf("All() = %v, want prefix [paxos modpaxos roundbased bconsensus modpaxos-norule]", names)
		}
	}
	for _, v := range visible {
		if v == "modpaxos-norule" {
			t.Error("hidden ablation variant leaked into Visible()")
		}
	}
}

// builtins returns the descriptors shipped by protocol/all, skipping any
// registered by other tests in this binary.
func builtins(t *testing.T) []protocol.Descriptor {
	t.Helper()
	var out []protocol.Descriptor
	for _, name := range []string{"paxos", "modpaxos", "roundbased", "bconsensus", "modpaxos-norule"} {
		d, err := protocol.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func TestDescriptorShapes(t *testing.T) {
	for _, d := range builtins(t) {
		if d.Doc == "" {
			t.Errorf("%s: no Doc", d.Name)
		}
		if len(d.Messages) == 0 {
			t.Errorf("%s: no wire messages declared", d.Name)
		}
		f, err := d.Build(protocol.Params{Delta: delta})
		if err != nil {
			t.Errorf("%s: Build failed: %v", d.Name, err)
		} else if f == nil {
			t.Errorf("%s: Build returned nil factory", d.Name)
		}
	}
	mp, err := protocol.Get("modpaxos")
	if err != nil {
		t.Fatal(err)
	}
	if mp.DecisionBound == nil {
		t.Fatal("modpaxos must declare its ε+3τ+5δ bound")
	}
	if bound, err := mp.DecisionBound(protocol.Params{Delta: delta}); err != nil || bound <= 0 {
		t.Fatalf("modpaxos bound = %v, %v", bound, err)
	}
	norule, err := protocol.Get("modpaxos-norule")
	if err != nil {
		t.Fatal(err)
	}
	if norule.DecisionBound != nil {
		t.Error("the entry-rule ablation must not claim the paper's bound")
	}
	if norule.Obsolete == nil {
		t.Error("the entry-rule ablation must define its high-session attack")
	}
}

func TestPreparedCapabilityGating(t *testing.T) {
	for _, name := range []string{"paxos", "roundbased", "bconsensus", "modpaxos-norule"} {
		d, err := protocol.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Build(protocol.Params{Delta: delta, Prepared: true}); err == nil {
			t.Errorf("%s: Prepared should be rejected without SupportsPrepared", name)
		}
	}
	mp, err := protocol.Get("modpaxos")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Build(protocol.Params{Delta: delta, Prepared: true}); err != nil {
		t.Errorf("modpaxos supports Prepared but Build rejected it: %v", err)
	}
}

func TestOnlyTraditionalPaxosNeedsLeaderOracle(t *testing.T) {
	for _, d := range builtins(t) {
		want := d.Name == "paxos"
		if d.NeedsLeaderOracle != want {
			t.Errorf("%s: NeedsLeaderOracle = %v, want %v", d.Name, d.NeedsLeaderOracle, want)
		}
	}
}

func TestOnlyModpaxosClaimsFastRecovery(t *testing.T) {
	for _, d := range builtins(t) {
		want := d.Name == "modpaxos"
		if d.ClaimsFastRecovery != want {
			t.Errorf("%s: ClaimsFastRecovery = %v, want %v", d.Name, d.ClaimsFastRecovery, want)
		}
	}
}
