// Package protocol is the registry that makes consensus protocols pluggable
// across every layer of this repository. A protocol is published as a
// Descriptor — its name, a paper-claim tag, a constructor from the common
// parameter set, and optional per-protocol hooks (decision-time bound,
// obsolete-message adversary) plus capability flags — and every consumer
// (the harness, the scenario engine, the experiment generators, the CLIs,
// the live runtime's wire registration) resolves protocols by name through
// the registry instead of switching over hard-coded variants.
//
// Adding a protocol (or an ablation variant of an existing one) is therefore
// a single registration:
//
//	protocol.MustRegister(protocol.Descriptor{
//		Name: "myvariant",
//		Doc:  "modified Paxos with the entry rule disabled",
//		New: func(p protocol.Params) (consensus.Factory, error) {
//			return modpaxos.New(modpaxos.Config{Delta: p.Delta, DisableEntryRule: true})
//		},
//	})
//
// and the new name immediately works everywhere a protocol name is accepted:
// harness.Config.Protocol, scenario.Spec.Protocols, `consensus-sim
// -protocol`, `livedemo -protocol`, and the `scenario list` enumeration.
// No harness, scenario, or CLI source changes are needed — that is the
// extension point every future protocol/workload PR builds on.
//
// The built-in descriptors live next to the protocols they describe (each
// core package ships one) and are registered by the protocol/all package;
// the harness imports protocol/all, so the four paper protocols are always
// available wherever experiments run.
package protocol

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
)

// Params is the protocol-independent parameter set a Descriptor's
// constructor is given — the union of the model parameters the paper's four
// algorithms consume. Each descriptor maps the fields it understands onto
// its package's own Config and ignores the rest (δ is universal; σ and ε
// are modified-Paxos/B-Consensus knobs; ρ budgets local timers).
type Params struct {
	// Delta is δ, the known post-stabilization delivery bound.
	Delta time.Duration
	// Sigma is σ, the session-timeout upper edge (modpaxos; 0 = default).
	Sigma time.Duration
	// Eps is ε, the heartbeat/retransmission interval (0 = default).
	Eps time.Duration
	// Rho is ρ, the clock-rate error bound.
	Rho float64
	// Prepared requests the stable-state fast path (phase 1 pre-executed).
	// Build rejects it for descriptors without SupportsPrepared.
	Prepared bool
}

// ObsoleteSpec describes one obsolete-message attack (§2's adversary) the
// harness wants mounted: K obsolete messages carried by failed process From,
// released against Victims after TS. The descriptor's Obsolete hook turns it
// into the strongest schedule the protocol's rules allow — unbounded ballots
// for traditional Paxos, the session-capped legal equivalent for the
// modified algorithm.
type ObsoleteSpec struct {
	// N is the cluster size.
	N int
	// Delta and TS are the run's timing parameters.
	Delta time.Duration
	TS    time.Duration
	// K is the attack strength (number of obsolete messages).
	K int
	// From is the failed process the messages claim to come from; it stays
	// down for the whole run.
	From consensus.ProcessID
	// Victims receive each release.
	Victims []consensus.ProcessID
}

// Installer wires an adversary onto a simulated network before start.
type Installer func(*simnet.Network)

// Descriptor publishes one consensus protocol to the registry.
type Descriptor struct {
	// Name is the registry key — the string harness.Config.Protocol,
	// scenario specs, and the CLIs' -protocol flags resolve.
	Name string
	// Doc is a one-line description tying the protocol to the paper claim
	// it reproduces; CLIs show it when enumerating protocols.
	Doc string
	// New builds the protocol's process factory from the common parameters.
	New func(Params) (consensus.Factory, error)
	// DecisionBound, if non-nil, returns the protocol's proven post-TS
	// decision-time bound for the given parameters (modified Paxos's
	// ε + 3τ + 5δ). Checks and reports that compare measured latency
	// against "the paper bound" apply exactly to protocols declaring one.
	DecisionBound func(Params) (time.Duration, error)
	// Obsolete, if non-nil, mounts the protocol's variant of the
	// obsolete-message adversary. Nil means the attack is undefined for
	// this protocol and the harness rejects it.
	Obsolete func(Params, ObsoleteSpec) Installer
	// Messages lists one zero value of every wire message type the
	// protocol sends; the live TCP transport registers them with gob.
	Messages []consensus.Message
	// SupportsPrepared marks protocols implementing the stable-state fast
	// path; Build rejects Params.Prepared for all others.
	SupportsPrepared bool
	// ClaimsFastRecovery marks protocols claiming §4's restart bound — a
	// process restarting after TS decides within O(δ) of its restart. The
	// scenario RecoveryBound check applies exactly to these. It is a
	// separate claim from DecisionBound: a protocol may bound decision
	// latency without bounding restart recovery, and vice versa.
	ClaimsFastRecovery bool
	// NeedsLeaderOracle marks protocols that require an external leader
	// oracle (traditional Paxos). The harness installs the simulated
	// oracle for them; the live runtime, which has none, refuses them.
	NeedsLeaderOracle bool
	// Hidden excludes the protocol from default enumerations
	// (harness.Protocols, scenario protocol defaults) while keeping it
	// resolvable by name — for ablation and diagnostic variants that
	// should not silently join every comparison.
	Hidden bool
}

// MessageTypes returns the wire-type names of the descriptor's Messages —
// the strings the trace collector interns into dense counter IDs at run
// setup, so the simulator's per-message accounting never grows the table
// mid-run. Protocols whose descriptors list their messages get fully
// pre-interned counters for free.
func (d Descriptor) MessageTypes() []string {
	out := make([]string, 0, len(d.Messages))
	for _, m := range d.Messages {
		out = append(out, m.Type())
	}
	return out
}

// Build constructs the factory after enforcing capability gates.
func (d Descriptor) Build(p Params) (consensus.Factory, error) {
	if p.Prepared && !d.SupportsPrepared {
		return nil, fmt.Errorf("protocol: %q does not support the Prepared fast path", d.Name)
	}
	return d.New(p)
}

// registry is the process-global descriptor table. Registration order is
// preserved: All returns descriptors in the order they were registered, so
// enumerations (CLI listings, default protocol sets) are deterministic.
var registry = struct {
	sync.RWMutex
	byName map[string]Descriptor
	order  []string
}{byName: make(map[string]Descriptor)}

// Register adds a descriptor to the registry. It rejects descriptors with
// an empty name or nil constructor and names that are already taken —
// duplicate registration is always a bug (two packages claiming one name),
// never a recoverable condition.
func Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("protocol: descriptor with empty name")
	}
	if d.New == nil {
		return fmt.Errorf("protocol: descriptor %q has no constructor", d.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[d.Name]; dup {
		return fmt.Errorf("protocol: %q already registered", d.Name)
	}
	registry.byName[d.Name] = d
	registry.order = append(registry.order, d.Name)
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Get resolves a protocol name.
func Get(name string) (Descriptor, error) {
	registry.RLock()
	defer registry.RUnlock()
	d, ok := registry.byName[name]
	if !ok {
		return Descriptor{}, fmt.Errorf("protocol: unknown protocol %q (registered: %v)", name, registry.order)
	}
	return d, nil
}

// All returns every registered descriptor, hidden ones included, in
// registration order.
func All() []Descriptor {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Descriptor, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Visible returns the non-hidden descriptors in registration order — the
// set default protocol enumerations use.
func Visible() []Descriptor {
	var out []Descriptor
	for _, d := range All() {
		if !d.Hidden {
			out = append(out, d)
		}
	}
	return out
}
