package protocol_test

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// TestRegisteredVariantRunsEverywhere is the registry's payoff proof: a
// derived protocol variant (modified Paxos with the entry rule disabled,
// built here from the modpaxos package directly) is registered under a new
// name and then runs through harness.Run — including its own variant of the
// obsolete-message adversary — and through a scenario Spec, without a
// single change to harness or scenario source.
func TestRegisteredVariantRunsEverywhere(t *testing.T) {
	const name = "test-modpaxos-norule"
	protocol.MustRegister(protocol.Descriptor{
		Name:   name,
		Doc:    "test-registered ablation: modified Paxos without the majority-entry rule",
		Hidden: true, // keep it out of other tests' default protocol sets
		New: func(p protocol.Params) (consensus.Factory, error) {
			return modpaxos.New(modpaxos.Config{
				Delta: p.Delta, Sigma: p.Sigma, Eps: p.Eps, Rho: p.Rho,
				DisableEntryRule: true,
			})
		},
		Obsolete: func(_ protocol.Params, s protocol.ObsoleteSpec) protocol.Installer {
			return func(nw *simnet.Network) {
				modpaxos.ReactiveSessionAttack{K: s.K, From: s.From, Victims: s.Victims}.Install(nw)
			}
		},
	})

	// Through the harness, with the variant's own adversary mounted.
	res, err := harness.Run(harness.Config{
		Protocol: name, N: 5, Delta: delta, TS: 100 * time.Millisecond,
		Attack: harness.ObsoleteBallots, AttackK: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.Violation != nil {
		t.Fatalf("harness run of the registered variant failed: decided=%v violation=%v",
			res.Decided, res.Violation)
	}

	// Through a scenario Spec, alongside the real algorithm, under the
	// default safety checks.
	rep, err := scenario.Run(scenario.Spec{
		Name:      "registered-variant",
		Protocols: []harness.Protocol{harness.ModifiedPaxos, name},
		N:         5, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("scenario violations: %+v", rep.Violations)
	}
	if len(rep.Protocols) != 2 || rep.Protocols[1].Protocol != name {
		t.Fatalf("report sections: %+v", rep.Protocols)
	}
	if rep.Protocols[1].Decided != 2 {
		t.Fatalf("variant decided %d/2 seeds", rep.Protocols[1].Decided)
	}
	// The real algorithm reports its bound; the ablation, which declares
	// none, must not.
	if rep.Protocols[0].Bound <= 0 {
		t.Error("modpaxos section missing its bound")
	}
	if rep.Protocols[1].Bound != 0 {
		t.Error("ablation variant must not report a bound it does not claim")
	}

	// The variant never joins default comparisons (it is hidden) …
	for _, p := range harness.Protocols() {
		if p == name {
			t.Error("hidden variant leaked into harness.Protocols()")
		}
	}
	// … but the Prepared fast path is gated off for it.
	if _, err := harness.Run(harness.Config{
		Protocol: name, N: 3, Delta: delta, Prepared: true, Seed: 1,
	}); err == nil {
		t.Error("Prepared should be rejected for the variant")
	}
}

// TestHarnessRejectsUnknownProtocol pins the harness's registry error path.
func TestHarnessRejectsUnknownProtocol(t *testing.T) {
	if _, err := harness.Run(harness.Config{Protocol: "never-registered", N: 3, Delta: delta}); err == nil {
		t.Fatal("unregistered protocol should error")
	}
}

// TestHarnessRejectsObsoleteAttackWithoutHook pins the capability gate: the
// obsolete-message attack only runs against protocols whose descriptor
// defines it.
func TestHarnessRejectsObsoleteAttackWithoutHook(t *testing.T) {
	_, err := harness.Run(harness.Config{
		Protocol: harness.RoundBased, N: 5, Delta: delta, TS: 50 * time.Millisecond,
		Attack: harness.ObsoleteBallots, AttackK: 2,
	})
	if err == nil {
		t.Fatal("obsolete attack on roundbased should error (no Obsolete hook)")
	}
}
