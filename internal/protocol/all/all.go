// Package all registers every built-in protocol descriptor with the
// protocol registry, in the canonical comparison order the experiment
// tables use. It is the one package outside the cores that may import the
// protocol implementations; everything else resolves protocols by name.
//
// The harness imports this package, so any program that can run an
// experiment has the paper's four protocols (plus the shipped ablation
// variant) available. A new protocol is added by writing its descriptor
// next to its implementation and registering it here — or, for variants
// that should not ship, by calling protocol.Register from the code that
// needs them (tests do exactly that).
package all

import (
	"repro/internal/core/bconsensus"
	"repro/internal/core/majority"
	"repro/internal/core/minority"
	"repro/internal/core/modpaxos"
	"repro/internal/core/paxos"
	"repro/internal/core/roundbased"
	"repro/internal/core/usd"
	"repro/internal/protocol"
)

func init() {
	// Visible protocols, in the canonical comparison order.
	protocol.MustRegister(paxos.Descriptor())
	protocol.MustRegister(modpaxos.Descriptor())
	protocol.MustRegister(roundbased.Descriptor())
	protocol.MustRegister(bconsensus.Descriptor())
	// Hidden ablation variants: resolvable by name (Table 10, CLIs), never
	// part of default comparisons.
	protocol.MustRegister(modpaxos.AblationDescriptor())
	// Hidden population-dynamics family: probabilistic large-N gossip
	// protocols for the population-scale scenarios and sweeps. Minority is
	// the deliberate poly(n) contrast to the O(log n) trio.
	protocol.MustRegister(usd.Descriptor())
	protocol.MustRegister(majority.Descriptor())
	protocol.MustRegister(majority.TwoChoicesDescriptor())
	protocol.MustRegister(minority.Descriptor())
}
