package consensus

import "time"

// SpanSink is optionally implemented by Environments whose collector can
// record typed begin/end phase spans (session, ballot, round). It is a
// separate optional interface — not an Environment method — so protocol
// instrumentation composes with every existing Environment implementation
// (harness substrates, the RSM's slot environments, scripted test
// environments) without widening the core contract.
type SpanSink interface {
	// Span records a phase boundary at the environment's current time.
	Span(kind string, begin bool, value int64)
}

// DurationObserver is optionally implemented by Environments whose
// collector can record latency histogram observations.
type DurationObserver interface {
	// ObserveDuration records one duration into the named histogram.
	ObserveDuration(name string, d time.Duration)
}

// ValueObserver is optionally implemented by Environments whose collector
// can record dimensionless histogram observations (batch sizes, queue
// depths).
type ValueObserver interface {
	// ObserveValue records one count observation into the named histogram.
	ObserveValue(name string, v int64)
}

// BeginSpan opens (or re-opens — a begin for an already-open kind closes
// the previous span) a phase span on environments that support spans; a
// no-op elsewhere. The type assertion is the only cost on unsupporting or
// disabled environments, keeping protocol hot paths allocation-free.
func BeginSpan(env Environment, kind string, value int64) {
	if s, ok := env.(SpanSink); ok {
		s.Span(kind, true, value)
	}
}

// EndSpan closes a phase span on environments that support spans.
func EndSpan(env Environment, kind string, value int64) {
	if s, ok := env.(SpanSink); ok {
		s.Span(kind, false, value)
	}
}

// ObserveDuration records a latency observation on environments that
// support histograms; a no-op elsewhere.
func ObserveDuration(env Environment, name string, d time.Duration) {
	if o, ok := env.(DurationObserver); ok {
		o.ObserveDuration(name, d)
	}
}

// ObserveValue records a count observation on environments that support
// histograms; a no-op elsewhere.
func ObserveValue(env Environment, name string, v int64) {
	if o, ok := env.(ValueObserver); ok {
		o.ObserveValue(name, v)
	}
}
