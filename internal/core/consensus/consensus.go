// Package consensus defines the types shared by every protocol in this
// repository: process identities, values, ballots with the paper's session
// structure, the message/timer event model, and the Environment interface
// that both substrates (the deterministic simulator and the live goroutine
// runtime) implement.
//
// A protocol is a deterministic state machine (Process) driven by three
// inputs — Init, HandleMessage, HandleTimer — and it affects the world only
// through its Environment. This is what lets the identical protocol code run
// reproducibly under simulation and natively under goroutines.
package consensus

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/storage"
)

// ProcessID identifies a process; processes are numbered 0 through N−1 as
// in the paper.
type ProcessID int

// Value is a proposed or decided consensus value. The empty string is a
// legal value; absence is always signalled separately.
type Value string

// TimerID names a protocol-defined timer. Each protocol declares its own
// constants; an environment keys pending timers by TimerID, and re-arming an
// ID replaces the previous timer.
type TimerID int

// Message is a protocol message. Implementations must be plain data structs
// (gob-encodable, no pointers shared with the sender) because the live TCP
// transport serializes them and the simulator may deliver them arbitrarily
// later.
type Message interface {
	// Type returns a short stable name used for tracing and metrics.
	Type() string
}

// Environment is everything a Process may do to the outside world. All
// methods must be called only from within the process's event handlers
// (Init/HandleMessage/HandleTimer); environments are not safe for use from
// other goroutines.
type Environment interface {
	// ID returns this process's identity.
	ID() ProcessID
	// N returns the total number of processes.
	N() int
	// Now returns the process's local clock reading. Local clocks may
	// drift (bounded rate error ρ after stabilization) and are not
	// synchronized across processes.
	Now() time.Duration
	// Send transmits m to process to. Delivery obeys the partial-synchrony
	// model: arbitrary loss/delay before stabilization, within δ after.
	Send(to ProcessID, m Message)
	// Broadcast sends m to every process, including the sender.
	Broadcast(m Message)
	// SetTimer arms (or re-arms) the one-shot timer id to fire after d on
	// the local clock. HandleTimer(id) is invoked when it fires.
	SetTimer(id TimerID, d time.Duration)
	// CancelTimer disarms a pending timer; canceling an unarmed timer is a
	// no-op.
	CancelTimer(id TimerID)
	// Store returns the process's stable storage, which survives crashes.
	Store() storage.Store
	// Rand returns a deterministic (under simulation) random source.
	Rand() *rand.Rand
	// Decide reports that this process has irrevocably decided v. The
	// environment records the decision for safety checking and metrics;
	// calling Decide twice with different values is a detected violation.
	Decide(v Value)
	// Emit records a named time-series observation (for example the
	// current session number) with the trace collector.
	Emit(kind string, value int64)
	// Logf writes a debug log line tagged with the process and time.
	Logf(format string, args ...any)
}

// Process is a consensus protocol instance at one process. Implementations
// must be deterministic: all nondeterminism comes from the Environment.
//
// Init is called when the process (re)starts. On a restart after a crash
// the Process is a fresh object and must recover its durable state from
// env.Store() — the paper's "resuming where it left off".
type Process interface {
	Init(env Environment)
	HandleMessage(from ProcessID, m Message)
	HandleTimer(id TimerID)
}

// Factory constructs a protocol instance for one process. It is invoked at
// start and again at every restart.
type Factory func(id ProcessID, n int, proposal Value) Process

// Majority returns the size of a strict majority of n processes
// (⌊n/2⌋ + 1). The paper's quorums — ⌈N/2⌉ phase-1b messages and a majority
// of phase-2b messages — both intersect with this quorum; we use the strict
// majority uniformly, which is safe for all n.
func Majority(n int) int { return n/2 + 1 }

// Ballot is a Paxos ballot number. The paper structures ballots into
// sessions: session(b) = ⌊b/N⌋, and ballot b belongs to (is "owned by")
// process b mod N.
type Ballot int64

// NoBallot marks "nothing accepted yet"; it is smaller than every real
// ballot.
const NoBallot Ballot = -1

// Session returns ⌊b/n⌋, the session of the ballot (§4).
func (b Ballot) Session(n int) int64 {
	if b < 0 {
		return -1
	}
	return int64(b) / int64(n)
}

// Owner returns b mod n, the process that owns the ballot. Phase 1a
// messages are treated as if sent by the ballot's owner.
func (b Ballot) Owner(n int) ProcessID {
	if b < 0 {
		return -1
	}
	return ProcessID(int64(b) % int64(n))
}

// BallotFor returns the ballot in the given session owned by process p:
// session·n + p.
func BallotFor(session int64, p ProcessID, n int) Ballot {
	return Ballot(session*int64(n) + int64(p))
}

// String implements fmt.Stringer.
func (b Ballot) String() string {
	if b == NoBallot {
		return "⊥"
	}
	return fmt.Sprintf("%d", int64(b))
}
