package consensus

import (
	"testing"
	"testing/quick"
)

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 4, 17: 9, 33: 17}
	for n, want := range cases {
		if got := Majority(n); got != want {
			t.Errorf("Majority(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: two majorities of n always intersect.
func TestQuickMajoritiesIntersect(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		return 2*Majority(n) > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBallotSessionOwner(t *testing.T) {
	const n = 5
	cases := []struct {
		b       Ballot
		session int64
		owner   ProcessID
	}{
		{0, 0, 0}, {3, 0, 3}, {4, 0, 4}, {5, 1, 0}, {7, 1, 2}, {23, 4, 3},
	}
	for _, c := range cases {
		if got := c.b.Session(n); got != c.session {
			t.Errorf("Ballot(%d).Session(%d) = %d, want %d", c.b, n, got, c.session)
		}
		if got := c.b.Owner(n); got != c.owner {
			t.Errorf("Ballot(%d).Owner(%d) = %d, want %d", c.b, n, got, c.owner)
		}
	}
	if NoBallot.Session(n) != -1 || NoBallot.Owner(n) != -1 {
		t.Error("NoBallot should have session/owner -1")
	}
}

// Property: BallotFor is the inverse of (Session, Owner), and the paper's
// Start Phase 1 update mbal ← (⌊mbal/N⌋+1)·N + p always advances the session
// by at least one and preserves ownership.
func TestQuickBallotStructure(t *testing.T) {
	f := func(sessRaw uint16, pRaw, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := ProcessID(int(pRaw) % n)
		sess := int64(sessRaw)
		b := BallotFor(sess, p, n)
		if b.Session(n) != sess || b.Owner(n) != p {
			return false
		}
		next := BallotFor(b.Session(n)+1, p, n)
		return next.Session(n) == sess+1 && next.Owner(n) == p && next > b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBallotString(t *testing.T) {
	if NoBallot.String() != "⊥" {
		t.Errorf("NoBallot.String() = %q", NoBallot.String())
	}
	if Ballot(17).String() != "17" {
		t.Errorf("Ballot(17).String() = %q", Ballot(17).String())
	}
}

func TestCheckerAgreementViolation(t *testing.T) {
	c := NewSafetyChecker()
	c.RecordProposal(0, "a")
	c.RecordProposal(1, "b")
	if err := c.RecordDecision(Decision{Proc: 0, Value: "a"}); err != nil {
		t.Fatalf("first decision: %v", err)
	}
	if err := c.RecordDecision(Decision{Proc: 1, Value: "b"}); err == nil {
		t.Fatal("conflicting decision not detected")
	}
	if c.Violation() == nil {
		t.Fatal("violation not remembered")
	}
}

func TestCheckerValidityViolation(t *testing.T) {
	c := NewSafetyChecker()
	c.RecordProposal(0, "a")
	if err := c.RecordDecision(Decision{Proc: 0, Value: "zzz"}); err == nil {
		t.Fatal("unproposed decision not detected")
	}
}

func TestCheckerIntegrity(t *testing.T) {
	c := NewSafetyChecker()
	c.RecordProposal(0, "a")
	if err := c.RecordDecision(Decision{Proc: 0, Value: "a", At: 1}); err != nil {
		t.Fatal(err)
	}
	// Re-deciding the same value (restart) is fine.
	if err := c.RecordDecision(Decision{Proc: 0, Value: "a", At: 2}); err != nil {
		t.Fatalf("idempotent re-decision rejected: %v", err)
	}
	if c.DecidedCount() != 1 {
		t.Fatalf("DecidedCount = %d, want 1", c.DecidedCount())
	}
	// Re-deciding a different value is an integrity violation.
	if err := c.RecordDecision(Decision{Proc: 0, Value: "b", At: 3}); err == nil {
		t.Fatal("changed decision not detected")
	}
}

func TestCheckerQueries(t *testing.T) {
	c := NewSafetyChecker()
	c.RecordProposal(0, "a")
	c.RecordProposal(1, "a")
	c.RecordProposal(2, "a")
	must := func(d Decision) {
		t.Helper()
		if err := c.RecordDecision(d); err != nil {
			t.Fatal(err)
		}
	}
	must(Decision{Proc: 1, Value: "a", At: 10})
	must(Decision{Proc: 0, Value: "a", At: 5})

	if d, ok := c.DecisionOf(1); !ok || d.At != 10 {
		t.Fatalf("DecisionOf(1) = %+v, %v", d, ok)
	}
	if _, ok := c.DecisionOf(2); ok {
		t.Fatal("DecisionOf(2) should be absent")
	}
	first, ok := c.FirstDecision()
	if !ok || first.Proc != 0 {
		t.Fatalf("FirstDecision = %+v, %v; want proc 0", first, ok)
	}
	if c.AllDecided([]ProcessID{0, 1, 2}) {
		t.Fatal("AllDecided should be false with 2 undecided")
	}
	if !c.AllDecided([]ProcessID{0, 1}) {
		t.Fatal("AllDecided([0,1]) should be true")
	}
	if _, ok := c.LastDecisionAmong([]ProcessID{0, 1, 2}); ok {
		t.Fatal("LastDecisionAmong should report missing decision")
	}
	last, ok := c.LastDecisionAmong([]ProcessID{0, 1})
	if !ok || last != 10 {
		t.Fatalf("LastDecisionAmong = %v, %v; want 10, true", last, ok)
	}
	if got := len(c.Decisions()); got != 2 {
		t.Fatalf("Decisions() len = %d, want 2", got)
	}
}

// Property: the checker accepts any sequence of identical decisions over any
// subset of proposers and never reports a violation.
func TestQuickCheckerAcceptsUnanimity(t *testing.T) {
	f := func(procs []uint8, v string) bool {
		c := NewSafetyChecker()
		for i := 0; i < 8; i++ {
			c.RecordProposal(ProcessID(i), Value(v))
		}
		for _, p := range procs {
			if err := c.RecordDecision(Decision{Proc: ProcessID(p % 8), Value: Value(v)}); err != nil {
				return false
			}
		}
		return c.Violation() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
