package consensus

import (
	"fmt"
	"sync"
	"time"
)

// Decision records one process's irrevocable decision.
type Decision struct {
	Proc  ProcessID
	Value Value
	// At is the global time of the decision (supplied by the substrate,
	// not the process's drifting clock).
	At time.Duration
}

// SafetyChecker validates the three standard consensus safety properties as
// decisions arrive:
//
//   - Agreement: no two processes decide different values.
//   - Validity: every decided value was proposed by some process.
//   - Integrity: a process decides at most once (re-deciding the same value,
//     e.g. after a restart, is permitted and idempotent).
//
// The checker is safe for concurrent use so the live runtime can share it
// across node goroutines.
type SafetyChecker struct {
	mu        sync.Mutex
	proposals map[ProcessID]Value
	decisions map[ProcessID]Decision
	order     []Decision
	violation error
}

// NewSafetyChecker returns an empty checker.
func NewSafetyChecker() *SafetyChecker {
	return &SafetyChecker{
		proposals: make(map[ProcessID]Value),
		decisions: make(map[ProcessID]Decision),
	}
}

// RecordProposal registers the value proposed by p (used for validity).
func (c *SafetyChecker) RecordProposal(p ProcessID, v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proposals[p] = v
}

// RecordDecision registers a decision, returning an error (and remembering
// it) if the decision violates agreement, validity, or integrity.
func (c *SafetyChecker) RecordDecision(d Decision) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	if prev, ok := c.decisions[d.Proc]; ok {
		if prev.Value != d.Value {
			return c.violate("integrity: process %d decided %q at %v then %q at %v",
				d.Proc, prev.Value, prev.At, d.Value, d.At)
		}
		return nil // idempotent re-decision (e.g. after restart)
	}
	// Scan the arrival-ordered slice, not the map, so the witness named in
	// a violation is deterministic (the earliest conflicting decision).
	for _, other := range c.order {
		if other.Value != d.Value {
			return c.violate("agreement: process %d decided %q but process %d decided %q",
				other.Proc, other.Value, d.Proc, d.Value)
		}
	}
	valid := false
	for _, v := range c.proposals {
		if v == d.Value {
			valid = true
			break
		}
	}
	if !valid && len(c.proposals) > 0 {
		return c.violate("validity: process %d decided %q, which no process proposed", d.Proc, d.Value)
	}
	c.decisions[d.Proc] = d
	c.order = append(c.order, d)
	return nil
}

func (c *SafetyChecker) violate(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	if c.violation == nil {
		c.violation = err
	}
	return err
}

// Violation returns the first recorded safety violation, or nil.
func (c *SafetyChecker) Violation() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violation
}

// Decisions returns a copy of all distinct decisions in arrival order.
func (c *SafetyChecker) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.order))
	copy(out, c.order)
	return out
}

// DecisionOf returns p's decision, if any.
func (c *SafetyChecker) DecisionOf(p ProcessID) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.decisions[p]
	return d, ok
}

// DecidedCount returns the number of processes that have decided.
func (c *SafetyChecker) DecidedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.decisions)
}

// AllDecided reports whether every process in ids has decided.
func (c *SafetyChecker) AllDecided(ids []ProcessID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		if _, ok := c.decisions[id]; !ok {
			return false
		}
	}
	return true
}

// FirstDecision returns the earliest decision by global time, if any.
func (c *SafetyChecker) FirstDecision() (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return Decision{}, false
	}
	best := c.order[0]
	for _, d := range c.order[1:] {
		if d.At < best.At {
			best = d
		}
	}
	return best, true
}

// LastDecisionAmong returns the latest decision time among the given
// processes, and whether all of them have decided.
func (c *SafetyChecker) LastDecisionAmong(ids []ProcessID) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var last time.Duration
	for _, id := range ids {
		d, ok := c.decisions[id]
		if !ok {
			return 0, false
		}
		if d.At > last {
			last = d.At
		}
	}
	return last, true
}
