// Package consensustest provides a scripted, inspectable Environment for
// handler-level protocol unit tests: tests drive a Process by hand
// (Init/HandleMessage/HandleTimer) and assert exactly which messages were
// sent, which timers were (re)armed, and what was decided — no simulator,
// no goroutines, no time.
package consensustest

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// Sent records one outgoing message. Broadcast appears as one Sent per
// destination, in destination order.
type Sent struct {
	To  consensus.ProcessID
	Msg consensus.Message
}

// Env is the scripted environment. Mutate Clock directly to model local
// time passing between handler calls.
type Env struct {
	PID consensus.ProcessID
	NN  int
	// Clock is the local-clock reading returned by Now.
	Clock time.Duration
	// Outbox collects every Send/Broadcast in order.
	Outbox []Sent
	// Timers maps armed timer IDs to their most recent duration.
	Timers map[consensus.TimerID]time.Duration
	// Armings counts SetTimer calls per ID (to observe re-arming).
	Armings map[consensus.TimerID]int
	// Canceled lists CancelTimer calls in order.
	Canceled []consensus.TimerID
	// Decisions lists every Decide call (protocol bugs may call twice).
	Decisions []consensus.Value
	// Storage is the stable store (shared across restarts in tests).
	Storage *storage.MemStore
	// Emitted collects Emit observations per kind.
	Emitted map[string][]int64
	// Spans collects Span calls in order (tests assert phase progression).
	Spans []SpanCall
	// Durations collects ObserveDuration observations per histogram name.
	Durations map[string][]time.Duration
	// Logs collects Logf lines.
	Logs []string

	rng *rand.Rand
}

// SpanCall records one consensus.SpanSink invocation.
type SpanCall struct {
	Kind  string
	Begin bool
	Value int64
}

var _ consensus.Environment = (*Env)(nil)
var _ consensus.SpanSink = (*Env)(nil)
var _ consensus.DurationObserver = (*Env)(nil)

// New returns an environment for process id of n.
func New(id consensus.ProcessID, n int) *Env {
	return &Env{
		PID:       id,
		NN:        n,
		Timers:    make(map[consensus.TimerID]time.Duration),
		Armings:   make(map[consensus.TimerID]int),
		Storage:   storage.NewMemStore(),
		Emitted:   make(map[string][]int64),
		Durations: make(map[string][]time.Duration),
		rng:       rand.New(rand.NewSource(1)),
	}
}

// ID implements consensus.Environment.
func (e *Env) ID() consensus.ProcessID { return e.PID }

// N implements consensus.Environment.
func (e *Env) N() int { return e.NN }

// Now implements consensus.Environment.
func (e *Env) Now() time.Duration { return e.Clock }

// Send implements consensus.Environment.
func (e *Env) Send(to consensus.ProcessID, m consensus.Message) {
	e.Outbox = append(e.Outbox, Sent{To: to, Msg: m})
}

// Broadcast implements consensus.Environment.
func (e *Env) Broadcast(m consensus.Message) {
	for i := 0; i < e.NN; i++ {
		e.Send(consensus.ProcessID(i), m)
	}
}

// SetTimer implements consensus.Environment.
func (e *Env) SetTimer(id consensus.TimerID, d time.Duration) {
	e.Timers[id] = d
	e.Armings[id]++
}

// CancelTimer implements consensus.Environment.
func (e *Env) CancelTimer(id consensus.TimerID) {
	delete(e.Timers, id)
	e.Canceled = append(e.Canceled, id)
}

// Store implements consensus.Environment.
func (e *Env) Store() storage.Store { return e.Storage }

// Rand implements consensus.Environment.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Decide implements consensus.Environment.
func (e *Env) Decide(v consensus.Value) { e.Decisions = append(e.Decisions, v) }

// Emit implements consensus.Environment.
func (e *Env) Emit(kind string, value int64) {
	e.Emitted[kind] = append(e.Emitted[kind], value)
}

// Span implements consensus.SpanSink.
func (e *Env) Span(kind string, begin bool, value int64) {
	e.Spans = append(e.Spans, SpanCall{Kind: kind, Begin: begin, Value: value})
}

// ObserveDuration implements consensus.DurationObserver.
func (e *Env) ObserveDuration(name string, d time.Duration) {
	e.Durations[name] = append(e.Durations[name], d)
}

// Logf implements consensus.Environment.
func (e *Env) Logf(format string, args ...any) {
	e.Logs = append(e.Logs, fmt.Sprintf(format, args...))
}

// --- assertion helpers ---

// ClearOutbox drops recorded sends (typically after Init).
func (e *Env) ClearOutbox() { e.Outbox = nil }

// SentTo returns the messages sent to one process, in order.
func (e *Env) SentTo(to consensus.ProcessID) []consensus.Message {
	var out []consensus.Message
	for _, s := range e.Outbox {
		if s.To == to {
			out = append(out, s.Msg)
		}
	}
	return out
}

// CountType returns how many outbox entries have the given Message.Type.
func (e *Env) CountType(msgType string) int {
	n := 0
	for _, s := range e.Outbox {
		if s.Msg.Type() == msgType {
			n++
		}
	}
	return n
}

// BroadcastsOf returns how many full broadcasts (one send per process) of
// the given type were made, assuming broadcasts are not interleaved.
func (e *Env) BroadcastsOf(msgType string) int {
	return e.CountType(msgType) / e.NN
}

// Decided returns the single decided value; it reports an error string for
// zero or conflicting decisions.
func (e *Env) Decided() (consensus.Value, bool) {
	if len(e.Decisions) == 0 {
		return "", false
	}
	return e.Decisions[0], true
}
