package consensustest

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
)

type ping struct{}

func (ping) Type() string { return "ping" }

type pong struct{}

func (pong) Type() string { return "pong" }

func TestOutboxAndHelpers(t *testing.T) {
	e := New(1, 3)
	e.Send(0, ping{})
	e.Broadcast(pong{})
	if len(e.Outbox) != 4 {
		t.Fatalf("outbox = %d entries, want 1 + 3", len(e.Outbox))
	}
	if got := e.CountType("pong"); got != 3 {
		t.Fatalf("CountType(pong) = %d, want 3", got)
	}
	if got := e.BroadcastsOf("pong"); got != 1 {
		t.Fatalf("BroadcastsOf(pong) = %d, want 1", got)
	}
	if got := e.SentTo(0); len(got) != 2 {
		t.Fatalf("SentTo(0) = %d messages, want ping+pong", len(got))
	}
	e.ClearOutbox()
	if len(e.Outbox) != 0 {
		t.Fatal("ClearOutbox left entries")
	}
}

func TestTimersAndArmings(t *testing.T) {
	e := New(0, 1)
	e.SetTimer(1, time.Second)
	e.SetTimer(1, 2*time.Second)
	if e.Timers[1] != 2*time.Second {
		t.Fatalf("timer duration = %v, want latest", e.Timers[1])
	}
	if e.Armings[1] != 2 {
		t.Fatalf("armings = %d, want 2", e.Armings[1])
	}
	e.CancelTimer(1)
	if _, ok := e.Timers[1]; ok {
		t.Fatal("cancel left the timer armed")
	}
	if len(e.Canceled) != 1 || e.Canceled[0] != 1 {
		t.Fatalf("canceled = %v", e.Canceled)
	}
}

func TestDecisionsEmitLogsClock(t *testing.T) {
	e := New(0, 1)
	if _, ok := e.Decided(); ok {
		t.Fatal("fresh env decided")
	}
	e.Decide("v")
	e.Decide("v")
	if v, ok := e.Decided(); !ok || v != "v" {
		t.Fatalf("Decided = (%q,%v)", v, ok)
	}
	if len(e.Decisions) != 2 {
		t.Fatal("every Decide call must be recorded")
	}
	e.Emit("round", 7)
	if e.Emitted["round"][0] != 7 {
		t.Fatalf("Emitted = %v", e.Emitted)
	}
	e.Logf("x=%d", 1)
	if len(e.Logs) != 1 || e.Logs[0] != "x=1" {
		t.Fatalf("Logs = %v", e.Logs)
	}
	e.Clock = 5 * time.Second
	if e.Now() != 5*time.Second {
		t.Fatal("Now must reflect Clock")
	}
	if e.ID() != 0 || e.N() != 1 || e.Rand() == nil || e.Store() == nil {
		t.Fatal("identity accessors broken")
	}
	var _ consensus.Environment = e
}
