package paxos

import (
	"repro/internal/core/consensus"
	"repro/internal/leader"
	"repro/internal/protocol"
	"repro/internal/simnet"
)

// Descriptor returns the protocol-registry entry for traditional Paxos.
// It is registered by the protocol/all package.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name: "paxos",
		Doc:  "traditional Paxos (§2, claim C1): O(Nδ) after TS under obsolete-ballot release",
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta}), nil
		},
		// The §2 attack: adaptive release of obsolete high-ballot phase 1a
		// messages, each timed to abort the incumbent leader's ballot.
		Obsolete: func(_ protocol.Params, s protocol.ObsoleteSpec) protocol.Installer {
			return func(nw *simnet.Network) {
				ReactiveObsoleteAttack{K: s.K, From: s.From, Victims: s.Victims}.Install(nw)
			}
		},
		Messages: []consensus.Message{
			P1a{}, P1b{}, P2a{}, P2b{}, Reject{}, Decided{}, leader.Announce{},
		},
		// The baseline assumes a leader oracle ("a leader is eventually
		// elected"); the harness installs the simulated one, and the live
		// runtime, which has none, refuses the protocol.
		NeedsLeaderOracle: true,
	}
}
