// Package paxos implements the traditional Paxos consensus algorithm
// exactly as recalled in §2 of the paper: ballot numbers in stable storage,
// an external leader-election oracle, spontaneous Start Phase 1 by the
// leader, and Reject messages that force the leader to higher ballots.
//
// This is the baseline whose worst case the paper criticizes: obsolete
// pre-stabilization messages carrying anomalously high ballot numbers can
// force the leader through O(N) Reject/retry cycles, so consensus can take
// O(Nδ) after stabilization (claim C1 in DESIGN.md). The modified algorithm
// that fixes this is in internal/core/modpaxos.
package paxos

import (
	"time"

	"repro/internal/core/consensus"
	"repro/internal/leader"
	"repro/internal/storage"
)

// Timer identifiers.
const (
	// tickTimer drives the leader's spontaneous Start Phase 1 and, after
	// deciding, the periodic decision broadcast.
	tickTimer consensus.TimerID = 1
)

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyPaxosState

// Config holds the tunable parameters of the baseline.
type Config struct {
	// Delta is δ; it sizes the retry interval.
	Delta time.Duration
	// RetryInterval is how often the leader spontaneously re-executes
	// Start Phase 1 ("every O(δ) seconds"). Default 6δ — long enough for
	// a full 4δ round plus slack, so the leader does not trample its own
	// in-flight ballot.
	RetryInterval time.Duration
	// GossipInterval is how often a decided process re-broadcasts its
	// decision. Default 2δ.
	GossipInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.RetryInterval == 0 {
		c.RetryInterval = 6 * c.Delta
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 2 * c.Delta
	}
	return c
}

// durable is the stable-storage image ("the process keeps mbal[p] and the
// rest of its state in stable storage").
type durable struct {
	MBal consensus.Ballot
	ABal consensus.Ballot
	AVal consensus.Value
	// Sent2a/Chosen are durable so a leader restarting mid-ballot cannot
	// send a second, different value at the same ballot.
	Sent2a  bool
	Chosen  consensus.Value
	Decided bool
	Dec     consensus.Value
}

// Process is one traditional-Paxos participant.
type Process struct {
	id       consensus.ProcessID
	n        int
	cfg      Config
	proposal consensus.Value
	env      consensus.Environment

	st durable

	// Volatile per-ballot bookkeeping.
	leader  consensus.ProcessID // current oracle belief; -1 = unknown
	p1bs    map[consensus.ProcessID]P1b
	p2bs    map[consensus.ProcessID]P2b
	started bool // executed Start Phase 1 at least once for current mbal
}

var _ consensus.Process = (*Process)(nil)

// New returns a Factory producing traditional-Paxos processes.
func New(cfg Config) consensus.Factory {
	cfg = cfg.withDefaults()
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &Process{id: id, n: n, cfg: cfg, proposal: proposal, leader: -1}
	}
}

// Init implements consensus.Process. On restart it resumes from stable
// storage, exactly as §2 prescribes.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	p.p1bs = make(map[consensus.ProcessID]P1b)
	p.p2bs = make(map[consensus.ProcessID]P2b)

	ok, err := env.Store().Get(stateKey, &p.st)
	if err != nil {
		env.Logf("paxos: restore: %v", err)
	}
	if !ok {
		// First boot: initial mbal[p] = p (the paper's convention).
		p.st = durable{MBal: consensus.Ballot(p.id), ABal: consensus.NoBallot}
		p.persist()
	}
	if p.st.Decided {
		env.Decide(p.st.Dec)
		env.Broadcast(Decided{Val: p.st.Dec})
	}
	env.SetTimer(tickTimer, p.cfg.RetryInterval)
}

func (p *Process) persist() {
	if err := p.env.Store().Put(stateKey, p.st); err != nil {
		p.env.Logf("paxos: persist: %v", err)
	}
}

func (p *Process) majority() int { return consensus.Majority(p.n) }

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	// A decided process answers everything with its decision (the
	// "respond to every message by announcing the value" optimization).
	if p.st.Decided {
		if _, isDecided := m.(Decided); !isDecided {
			p.env.Send(from, Decided{Val: p.st.Dec})
		}
	}
	switch msg := m.(type) {
	case leader.Announce:
		p.onLeader(msg)
	case P1a:
		p.onP1a(from, msg)
	case P1b:
		p.onP1b(from, msg)
	case P2a:
		p.onP2a(from, msg)
	case P2b:
		p.onP2b(from, msg)
	case Reject:
		p.onReject(msg)
	case Decided:
		p.decide(msg.Val)
	}
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	if id != tickTimer {
		return
	}
	switch {
	case p.st.Decided:
		p.env.Broadcast(Decided{Val: p.st.Dec})
		p.env.SetTimer(tickTimer, p.cfg.GossipInterval)
	case p.leader == p.id:
		// Spontaneous Start Phase 1 "every O(δ) seconds".
		p.startPhase1(p.st.MBal + 1)
		p.env.SetTimer(tickTimer, p.cfg.RetryInterval)
	default:
		p.env.SetTimer(tickTimer, p.cfg.RetryInterval)
	}
}

func (p *Process) onLeader(msg leader.Announce) {
	wasLeader := p.leader == p.id
	p.leader = msg.Leader
	if !wasLeader && p.leader == p.id && !p.st.Decided {
		// Newly elected: start a ballot immediately rather than waiting
		// for the next tick.
		p.startPhase1(p.st.MBal + 1)
	}
}

// startPhase1 executes the Start Phase 1 action with the smallest ballot
// ≥ atLeast owned by p ("increase mbal[p] to an arbitrary value congruent to
// p mod N").
func (p *Process) startPhase1(atLeast consensus.Ballot) {
	if p.st.Decided || p.leader != p.id {
		return
	}
	b := nextOwned(atLeast, p.id, p.n)
	if b <= p.st.MBal {
		b = nextOwned(p.st.MBal+1, p.id, p.n)
	}
	p.st.MBal = b
	p.st.Sent2a = false
	p.persist()
	p.p1bs = make(map[consensus.ProcessID]P1b)
	p.p2bs = make(map[consensus.ProcessID]P2b)
	p.started = true
	p.env.Emit("ballot", int64(b))
	consensus.BeginSpan(p.env, "ballot", int64(b))
	p.env.Broadcast(P1a{Bal: b})
}

// nextOwned returns the smallest ballot ≥ atLeast congruent to owner mod n.
func nextOwned(atLeast consensus.Ballot, owner consensus.ProcessID, n int) consensus.Ballot {
	session := atLeast.Session(n)
	b := consensus.BallotFor(session, owner, n)
	if b < atLeast {
		b = consensus.BallotFor(session+1, owner, n)
	}
	return b
}

func (p *Process) onP1a(from consensus.ProcessID, m P1a) {
	owner := m.Bal.Owner(p.n)
	switch {
	case m.Bal > p.st.MBal:
		p.st.MBal = m.Bal
		p.st.Sent2a = false
		p.persist()
		p.env.Send(owner, P1b{Bal: m.Bal, ABal: p.st.ABal, AVal: p.st.AVal})
	case m.Bal == p.st.MBal:
		// Duplicate of the current ballot: re-answer (Paxos tolerates
		// duplication; this restores 1b messages lost before TS).
		p.env.Send(owner, P1b{Bal: m.Bal, ABal: p.st.ABal, AVal: p.st.AVal})
	default:
		// Reject Message action: tell the ballot's owner our mbal.
		p.env.Send(owner, Reject{Bal: p.st.MBal})
	}
}

func (p *Process) onP1b(from consensus.ProcessID, m P1b) {
	if m.Bal != p.st.MBal || p.st.MBal.Owner(p.n) != p.id || !p.started {
		return
	}
	if p.st.Sent2a {
		// Late or re-sent 1b: retransmit 2a to that process only, in case
		// our earlier 2a was lost before stabilization.
		p.env.Send(from, P2a{Bal: p.st.MBal, Val: p.st.Chosen})
		return
	}
	p.p1bs[from] = m
	if len(p.p1bs) < p.majority() {
		return
	}
	// Start Phase 2: choose the value of the highest-ballot acceptance
	// reported, or our own proposal if none.
	val := p.proposal
	best := consensus.NoBallot
	for _, b1 := range p.p1bs {
		if b1.ABal > best {
			// Acceptors reporting the same ABal accepted the same value
			// (one value per ballot), so ties resolve identically in any
			// visiting order and the strict argmax is order-free.
			//repro:allow detlint equal ballots carry equal values
			best = b1.ABal
			val = b1.AVal
		}
	}
	p.st.Sent2a = true
	p.st.Chosen = val
	p.persist()
	p.env.Broadcast(P2a{Bal: p.st.MBal, Val: val})
}

func (p *Process) onP2a(from consensus.ProcessID, m P2a) {
	if m.Bal >= p.st.MBal {
		p.st.MBal = m.Bal
		p.st.ABal = m.Bal
		p.st.AVal = m.Val
		p.persist()
		// Phase 2b goes to every process: everyone is a learner.
		p.env.Broadcast(P2b{Bal: m.Bal, Val: m.Val})
	} else {
		p.env.Send(m.Bal.Owner(p.n), Reject{Bal: p.st.MBal})
	}
}

func (p *Process) onP2b(from consensus.ProcessID, m P2b) {
	p.p2bs[from] = m
	count := 0
	for _, b2 := range p.p2bs {
		if b2.Bal == m.Bal {
			count++
		}
	}
	if count >= p.majority() {
		p.decide(m.Val)
	}
}

func (p *Process) onReject(m Reject) {
	if p.leader != p.id || p.st.Decided {
		return
	}
	if m.Bal >= p.st.MBal {
		// A higher ballot is out there; retry above it. This is the loop
		// the obsolete-ballot adversary drives O(N) times.
		p.startPhase1(m.Bal + 1)
	}
}

func (p *Process) decide(v consensus.Value) {
	if p.st.Decided {
		return
	}
	p.st.Decided = true
	p.st.Dec = v
	p.persist()
	p.env.Decide(v)
	consensus.EndSpan(p.env, "ballot", int64(p.st.MBal))
	p.env.Broadcast(Decided{Val: v})
	p.env.SetTimer(tickTimer, p.cfg.GossipInterval)
}
