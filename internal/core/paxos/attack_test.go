package paxos_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/paxos"
	"repro/internal/leader"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const delta = 10 * time.Millisecond

func proposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func TestObsoleteBallotAttackBuild(t *testing.T) {
	a := paxos.ObsoleteBallotAttack{K: 3, From: 4, Victims: []consensus.ProcessID{1, 2}}
	ts := 100 * time.Millisecond
	inj := a.Build(5, delta, ts)
	if len(inj) != 6 {
		t.Fatalf("got %d injections, want 3 ballots × 2 victims = 6", len(inj))
	}
	var prevBal consensus.Ballot = -1
	var prevAt time.Duration
	for i, in := range inj {
		if in.At <= ts || in.At < prevAt {
			t.Fatalf("injection %d at %v not after TS/previous", i, in.At)
		}
		m, ok := in.Msg.(paxos.P1a)
		if !ok {
			t.Fatalf("injection %d is %T, want paxos.P1a", i, in.Msg)
		}
		if m.Bal.Owner(5) != 4 {
			t.Fatalf("ballot %v not owned by failed process 4", m.Bal)
		}
		// Each ballot must exceed the previous batch's by ≥ 2N so it
		// beats the leader's bump.
		if m.Bal != prevBal && m.Bal < prevBal+consensus.Ballot(2*5) {
			t.Fatalf("ballot %v does not outpace leader bumps (prev %v)", m.Bal, prevBal)
		}
		prevBal, prevAt = m.Bal, in.At
	}
}

// runPaxosWithAttack measures traditional Paxos's post-TS decision latency
// under k obsolete ballots.
func runPaxosWithAttack(t *testing.T, k int) time.Duration {
	t.Helper()
	const n = 5
	ts := 100 * time.Millisecond
	eng := sim.NewEngine(11)
	nw, err := simnet.New(eng, simnet.Config{N: n, Delta: delta, TS: ts, Policy: simnet.DropAll{}},
		paxos.New(paxos.Config{Delta: delta}), proposals(n))
	if err != nil {
		t.Fatal(err)
	}
	leader.Install(nw, leader.Config{Stable: 0})
	paxos.ReactiveObsoleteAttack{K: k, From: 4, Victims: []consensus.ProcessID{1, 2, 3}}.Install(nw)
	nw.StartExcept(4) // process 4 "failed before TS"
	ok, err := nw.RunUntilAllDecided(time.Minute)
	if err != nil {
		t.Fatalf("k=%d: safety violation: %v", k, err)
	}
	if !ok {
		t.Fatalf("k=%d: no decision", k)
	}
	last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
	return last - ts
}

// TestObsoleteBallotsDelayTraditionalPaxosLinearly is the paper's §2
// observation: each obsolete high ballot costs the leader a Reject/retry
// cycle, so latency grows roughly linearly with the number of obsolete
// messages.
func TestObsoleteBallotsDelayTraditionalPaxosLinearly(t *testing.T) {
	lat0 := runPaxosWithAttack(t, 0)
	lat4 := runPaxosWithAttack(t, 4)
	lat8 := runPaxosWithAttack(t, 8)

	// Each obsolete ballot costs the leader one Reject/retry cycle
	// (phase 1a out + Reject back ≈ 2δ in the worst case, ~1.5δ on
	// average with uniform delays): growth must be clearly linear.
	if lat4 <= lat0 || lat8 <= lat4 {
		t.Fatalf("latency not increasing: k0=%v k4=%v k8=%v", lat0, lat4, lat8)
	}
	if lat8 < 12*delta {
		t.Fatalf("k=8 latency %v suspiciously low; attack not biting", lat8)
	}
	// Linearity: the marginal cost of ballots 5..8 should be comparable
	// to that of ballots 1..4 (within a factor of 3 either way).
	d1, d2 := lat4-lat0, lat8-lat4
	if d2*3 < d1 || d1*3 < d2 {
		t.Errorf("growth not roughly linear: +%v for k 0→4, +%v for k 4→8", d1, d2)
	}
	t.Logf("traditional paxos latency after TS: k=0 %v, k=4 %v, k=8 %v", lat0, lat4, lat8)
}
