package paxos

import "repro/internal/core/consensus"

// P1a is a phase 1a ("prepare") message for ballot Bal. It is treated as if
// sent by the ballot's owner, Bal mod N.
type P1a struct {
	Bal consensus.Ballot
}

// Type implements consensus.Message.
func (P1a) Type() string { return "p1a" }

// P1b is a phase 1b ("promise") answer: the acceptor has set mbal to Bal and
// reports its highest acceptance (ABal, AVal), with ABal = NoBallot if it
// has accepted nothing.
type P1b struct {
	Bal  consensus.Ballot
	ABal consensus.Ballot
	AVal consensus.Value
}

// Type implements consensus.Message.
func (P1b) Type() string { return "p1b" }

// P2a is a phase 2a ("accept") message proposing Val at ballot Bal.
type P2a struct {
	Bal consensus.Ballot
	Val consensus.Value
}

// Type implements consensus.Message.
func (P2a) Type() string { return "p2a" }

// P2b is a phase 2b ("accepted") message, broadcast to all processes.
type P2b struct {
	Bal consensus.Ballot
	Val consensus.Value
}

// Type implements consensus.Message.
func (P2b) Type() string { return "p2b" }

// Reject tells a ballot's owner that the sender has promised a higher
// ballot (its current mbal). Only the traditional algorithm uses Reject;
// the modified algorithm's timeouts make it unnecessary (§4).
type Reject struct {
	Bal consensus.Ballot
}

// Type implements consensus.Message.
func (Reject) Type() string { return "reject" }

// Decided announces a decision; recipients decide immediately.
type Decided struct {
	Val consensus.Value
}

// Type implements consensus.Message.
func (Decided) Type() string { return "decided" }
