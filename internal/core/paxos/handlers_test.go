package paxos

// Handler-level unit tests driving a single traditional-Paxos process by
// hand; the §2 actions are asserted exactly.

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/consensus/consensustest"
	"repro/internal/leader"
)

const (
	n5     = 5
	uDelta = 10 * time.Millisecond
)

func boot(t *testing.T, id consensus.ProcessID) (*Process, *consensustest.Env) {
	t.Helper()
	p := New(Config{Delta: uDelta})(id, n5, consensus.Value("mine")).(*Process)
	env := consensustest.New(id, n5)
	p.Init(env)
	env.ClearOutbox()
	return p, env
}

func elect(t *testing.T, p *Process, env *consensustest.Env) consensus.Ballot {
	t.Helper()
	p.HandleMessage(p.id, leader.Announce{Leader: p.id})
	if env.BroadcastsOf("p1a") != 1 {
		t.Fatalf("election did not trigger Start Phase 1: %v", env.Outbox)
	}
	return p.st.MBal
}

func TestElectionTriggersStartPhase1(t *testing.T) {
	p, env := boot(t, 0)
	b := elect(t, p, env)
	if b.Owner(n5) != 0 || b <= 0 {
		t.Fatalf("ballot %v not a fresh ballot owned by 0", b)
	}
}

func TestNonLeaderNeverStartsBallots(t *testing.T) {
	p, env := boot(t, 1)
	p.HandleMessage(1, leader.Announce{Leader: 0})
	p.HandleTimer(tickTimer)
	if env.CountType("p1a") != 0 {
		t.Fatalf("non-leader sent p1a: %v", env.Outbox)
	}
	if _, ok := env.Timers[tickTimer]; !ok {
		t.Fatal("tick timer must re-arm")
	}
}

func TestRejectOnLowerBallot(t *testing.T) {
	p, env := boot(t, 3) // mbal = 3
	p.HandleMessage(0, P1a{Bal: 1})
	msgs := env.SentTo(1) // rejected message goes to the ballot owner (1 mod 5)
	if len(msgs) != 1 {
		t.Fatalf("sent %v, want one Reject to owner 1", env.Outbox)
	}
	if r, ok := msgs[0].(Reject); !ok || r.Bal != 3 {
		t.Fatalf("reply = %#v, want Reject{3}", msgs[0])
	}
}

func TestRejectMakesLeaderRetryHigher(t *testing.T) {
	p, env := boot(t, 0)
	b := elect(t, p, env)
	env.ClearOutbox()
	p.HandleMessage(2, Reject{Bal: b + 37})
	if p.st.MBal <= b+37 {
		t.Fatalf("mbal %v did not jump past the rejected ballot %v", p.st.MBal, b+37)
	}
	if p.st.MBal.Owner(n5) != 0 {
		t.Fatalf("retry ballot %v not owned by leader", p.st.MBal)
	}
	if env.BroadcastsOf("p1a") != 1 {
		t.Fatal("retry did not broadcast a fresh phase 1a")
	}
}

func TestRejectIgnoredByNonLeader(t *testing.T) {
	p, env := boot(t, 1)
	p.HandleMessage(1, leader.Announce{Leader: 0})
	env.ClearOutbox()
	before := p.st.MBal
	p.HandleMessage(2, Reject{Bal: 99})
	if p.st.MBal != before || len(env.Outbox) != 0 {
		t.Fatal("non-leader reacted to Reject")
	}
}

func TestPhase2PicksHighestAcceptedAndDecides(t *testing.T) {
	p, env := boot(t, 0)
	b := elect(t, p, env)
	env.ClearOutbox()
	p.HandleMessage(0, P1b{Bal: b, ABal: consensus.NoBallot})
	p.HandleMessage(1, P1b{Bal: b, ABal: 6, AVal: "locked"})
	p.HandleMessage(2, P1b{Bal: b, ABal: 2, AVal: "older"})
	if env.BroadcastsOf("p2a") != 1 {
		t.Fatalf("2a broadcasts = %d, want 1", env.BroadcastsOf("p2a"))
	}
	if m := env.SentTo(0)[0].(P2a); m.Val != "locked" {
		t.Fatalf("2a value %q, want locked", m.Val)
	}
	// Majority of matching 2b decides.
	env.ClearOutbox()
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, P2b{Bal: b, Val: "locked"})
	}
	v, decided := env.Decided()
	if !decided || v != "locked" {
		t.Fatalf("decision = (%q,%v)", v, decided)
	}
}

func TestSpontaneousRetryOnTick(t *testing.T) {
	p, env := boot(t, 0)
	b := elect(t, p, env)
	env.ClearOutbox()
	p.HandleTimer(tickTimer)
	if p.st.MBal <= b {
		t.Fatal("tick did not advance the ballot")
	}
	if env.BroadcastsOf("p1a") != 1 {
		t.Fatal("tick did not re-broadcast phase 1a")
	}
}

func TestDecidedProcessGossipsOnTick(t *testing.T) {
	p, env := boot(t, 2)
	p.HandleMessage(0, Decided{Val: "v"})
	env.ClearOutbox()
	p.HandleTimer(tickTimer)
	if env.BroadcastsOf("decided") != 1 {
		t.Fatalf("decided tick sent %v", env.Outbox)
	}
}

func TestRestartKeepsPromiseAndAcceptance(t *testing.T) {
	p, env := boot(t, 2)
	p.HandleMessage(0, P1a{Bal: 10})
	p.HandleMessage(0, P2a{Bal: 10, Val: "v"})
	if p.st.ABal != 10 {
		t.Fatal("setup: acceptance missing")
	}
	p2 := New(Config{Delta: uDelta})(2, n5, "mine").(*Process)
	env2 := consensustest.New(2, n5)
	env2.Storage = env.Storage
	p2.Init(env2)
	if p2.st.MBal != 10 || p2.st.ABal != 10 || p2.st.AVal != "v" {
		t.Fatalf("restart lost state: %+v", p2.st)
	}
	// A fresh P1a below the promise is still rejected after restart.
	env2.ClearOutbox()
	p2.HandleMessage(0, P1a{Bal: 5})
	if len(env2.SentTo(0)) != 1 {
		t.Fatalf("restarted process did not reject: %v", env2.Outbox)
	}
}
