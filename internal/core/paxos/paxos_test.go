package paxos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/leader"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const delta = 10 * time.Millisecond

func distinctProposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func cluster(t *testing.T, seed int64, netCfg simnet.Config, lead consensus.ProcessID) (*sim.Engine, *simnet.Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw, err := simnet.New(eng, netCfg, New(Config{Delta: netCfg.Delta}), distinctProposals(netCfg.N))
	if err != nil {
		t.Fatal(err)
	}
	leader.Install(nw, leader.Config{Stable: lead})
	return eng, nw
}

func requireAllDecided(t *testing.T, nw *simnet.Network, horizon time.Duration) time.Duration {
	t.Helper()
	ok, err := nw.RunUntilAllDecided(horizon)
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if !ok {
		t.Fatalf("cluster did not decide by %v (decided %d/%d)",
			horizon, nw.Checker().DecidedCount(), nw.Config().N)
	}
	last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
	return last
}

func TestDecidesSynchronous(t *testing.T) {
	for _, n := range []int{1, 3, 5, 9} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, nw := cluster(t, 1, simnet.Config{N: n, Delta: delta, TS: 0}, 0)
			nw.Start()
			last := requireAllDecided(t, nw, 5*time.Second)
			// Election at ~0, phase 1+2 ≈ 4δ, decide ≤ ~5δ.
			if last > 6*delta {
				t.Errorf("decided at %v, want ≤ 6δ in the stable case", last)
			}
		})
	}
}

func TestDecidesValueOfHighestAcceptedBallot(t *testing.T) {
	// Seed one acceptor with a pre-accepted value at a high ballot; the
	// new leader must choose that value, not its own proposal.
	eng := sim.NewEngine(1)
	nw, err := simnet.New(eng, simnet.Config{N: 3, Delta: delta, TS: 0}, New(Config{Delta: delta}), distinctProposals(3))
	if err != nil {
		t.Fatal(err)
	}
	// Plant an accepted (ballot, value) pair at process 2 via a direct
	// phase 2a injection before the leader is announced. The planted
	// value is process 1's proposal "v1"; leader 0 would propose "v0" if
	// it (incorrectly) ignored the acceptance it learns in phase 1.
	planted := consensus.Ballot(7) // owned by process 1
	nw.Inject(0, 1, 2, P2a{Bal: planted, Val: "v1"})
	leader.Install(nw, leader.Config{Stable: 0, Period: 20 * delta})
	nw.Start()
	requireAllDecided(t, nw, 5*time.Second)
	for _, d := range nw.Checker().Decisions() {
		if d.Value != "v1" {
			t.Fatalf("process %d decided %q, want the planted value v1", d.Proc, d.Value)
		}
	}
}

func TestChaoticLeadershipBeforeTSIsSafe(t *testing.T) {
	ts := 200 * time.Millisecond
	eng := sim.NewEngine(4)
	nw, err := simnet.New(eng, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.5}}, New(Config{Delta: delta}), distinctProposals(5))
	if err != nil {
		t.Fatal(err)
	}
	leader.Install(nw, leader.Config{Stable: 2, ChaoticBeforeTS: true})
	nw.Start()
	requireAllDecided(t, nw, 10*time.Second)
	if err := nw.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
}

func TestMinorityCrashStillDecides(t *testing.T) {
	_, nw := cluster(t, 3, simnet.Config{N: 5, Delta: delta, TS: 0}, 0)
	nw.StartExcept(3, 4)
	ok, err := nw.RunUntilAllDecided(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("majority did not decide with 2/5 down")
	}
}

func TestRestartResumesAndDecides(t *testing.T) {
	ts := 150 * time.Millisecond
	eng, nw := cluster(t, 5, simnet.Config{N: 3, Delta: delta, TS: ts, Policy: simnet.DropAll{}}, 0)
	nw.Start()
	nw.CrashAt(2, 40*time.Millisecond)
	restartAt := ts + 300*time.Millisecond
	nw.RestartAt(2, restartAt)
	eng.RunUntil(func() bool {
		_, d := nw.Node(2).Decided()
		return d
	}, 5*time.Second)
	if err := nw.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
	at, decided := nw.Node(2).DecidedAtGlobal()
	if !decided {
		t.Fatal("restarted process did not decide")
	}
	// Decision gossip runs every 2δ: recovery within ~4δ.
	if got := at - restartAt; got > 5*delta {
		t.Errorf("restarted process took %v to decide", got)
	}
}

func TestNextOwned(t *testing.T) {
	cases := []struct {
		atLeast consensus.Ballot
		owner   consensus.ProcessID
		n       int
		want    consensus.Ballot
	}{
		{0, 0, 5, 0},
		{1, 0, 5, 5},
		{5, 2, 5, 7},
		{8, 2, 5, 12},
		{7, 2, 5, 7},
		{100, 3, 5, 103},
	}
	for _, c := range cases {
		if got := nextOwned(c.atLeast, c.owner, c.n); got != c.want {
			t.Errorf("nextOwned(%d, %d, %d) = %d, want %d", c.atLeast, c.owner, c.n, got, c.want)
		}
		got := nextOwned(c.atLeast, c.owner, c.n)
		if got < c.atLeast || got.Owner(c.n) != c.owner {
			t.Errorf("nextOwned(%d, %d, %d) = %d violates contract", c.atLeast, c.owner, c.n, got)
		}
	}
}

func TestSafetyUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := eng.Rand()
			n := 3 + rng.Intn(4)
			ts := time.Duration(100+rng.Intn(200)) * time.Millisecond
			nw, err := simnet.New(eng, simnet.Config{
				N: n, Delta: delta, TS: ts,
				Policy: simnet.Chaos{DropProb: 0.3 + 0.5*rng.Float64()},
			}, New(Config{Delta: delta}), distinctProposals(n))
			if err != nil {
				t.Fatal(err)
			}
			leader.Install(nw, leader.Config{Stable: consensus.ProcessID(rng.Intn(n)), ChaoticBeforeTS: true})
			nw.Start()
			crashes := rng.Intn(consensus.Majority(n))
			for i := 0; i < crashes; i++ {
				id := consensus.ProcessID(rng.Intn(n))
				at := time.Duration(rng.Int63n(int64(ts)))
				nw.CrashAt(id, at)
				nw.RestartAt(id, at+time.Duration(rng.Int63n(int64(ts))))
			}
			ok, err := nw.RunUntilAllDecided(20 * time.Second)
			if err != nil {
				t.Fatalf("safety violation: %v", err)
			}
			if !ok {
				t.Fatalf("no decision by horizon (decided %d/%d)", nw.Checker().DecidedCount(), n)
			}
		})
	}
}
