package paxos

import (
	"time"

	"repro/internal/adversary"
	"repro/internal/core/consensus"
	"repro/internal/simnet"
)

// ObsoleteBallotAttack builds k obsolete traditional-Paxos phase 1a
// messages "sent" before TS by failed process From, arriving at the victim
// acceptors at Spacing intervals starting at TS+Spacing (§2's delayed
// pre-stabilization traffic). Ballot i is chosen high enough (stepping by
// 2N) that it still exceeds the leader's bump in response to ballot i−1, so
// each injection forces a fresh Reject/retry cycle.
type ObsoleteBallotAttack struct {
	// K is the number of obsolete messages (the paper allows up to
	// ⌈N/2⌉−1 failed processes; one failed process suffices to carry
	// arbitrarily many ballots, so K may exceed that here).
	K int
	// From is the failed process the messages claim to come from. It
	// should be a process that is down for the whole run.
	From consensus.ProcessID
	// Victims are the nonfaulty acceptors that receive each injection.
	// To actually force a retry the victims must deny the leader a
	// majority: at least (up processes − majority + 1) of them. Passing
	// every up process except the leader is the paper's worst case.
	Victims []consensus.ProcessID
	// Spacing is the interval between successive obsolete ballots
	// (default 3δ: one Reject round trip plus slack, so the leader has
	// started its next ballot before the next obsolete message lands).
	Spacing time.Duration
}

// Build returns the injection schedule for a network with parameters n, δ,
// TS.
func (a ObsoleteBallotAttack) Build(n int, delta, ts time.Duration) []adversary.Injection {
	spacing := a.Spacing
	if spacing == 0 {
		spacing = 3 * delta
	}
	out := make([]adversary.Injection, 0, a.K*len(a.Victims))
	for i := 0; i < a.K; i++ {
		// Sessions 10, 12, 14, ... of the failed process: each ballot
		// exceeds the leader's response to the previous one (the leader
		// bumps by < N per Reject, we step by 2N).
		bal := consensus.BallotFor(int64(10+2*i), a.From, n)
		at := ts + time.Duration(i+1)*spacing
		for _, v := range a.Victims {
			out = append(out, adversary.Injection{
				At:   at,
				From: a.From,
				To:   v,
				Msg:  P1a{Bal: bal},
			})
		}
	}
	return out
}

// ReactiveObsoleteAttack is the adaptive worst-case version of
// ObsoleteBallotAttack: instead of a fixed schedule, the adversary watches
// deliveries (it controls the network, so it knows when the leader's latest
// phase 1a reaches an acceptor) and releases the next obsolete ballot at
// exactly that moment. This guarantees one full Reject/retry cycle (≈3δ:
// phase 1a + phase 2a + Reject transit) per obsolete ballot — the paper's
// O(Nδ) worst case with K = ⌈N/2⌉−1 failed processes' worth of messages.
type ReactiveObsoleteAttack struct {
	// K is the number of obsolete ballots to release.
	K int
	// From is the failed process the ballots belong to.
	From consensus.ProcessID
	// Victims receive each release; they must be able to deny the leader
	// a majority.
	Victims []consensus.ProcessID
}

// Install registers the adversary on the network. It returns a counter
// function reporting how many ballots have been released.
func (a ReactiveObsoleteAttack) Install(nw *simnet.Network) func() int {
	victim := make(map[consensus.ProcessID]bool, len(a.Victims))
	for _, v := range a.Victims {
		victim[v] = true
	}
	return adversary.Reactive{
		K: a.K, From: a.From, Victims: a.Victims,
		// The leader's own phase 1a reaching a victim acceptor means it has
		// moved past the previous obsolete ballot.
		Trigger: func(n int, to consensus.ProcessID, m consensus.Message) (consensus.Ballot, bool) {
			p1a, ok := m.(P1a)
			if !ok || !victim[to] {
				return 0, false
			}
			return p1a.Bal, true
		},
		Forge: func(bal consensus.Ballot) consensus.Message { return P1a{Bal: bal} },
	}.Install(nw)
}
