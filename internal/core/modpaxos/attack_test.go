package modpaxos_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const delta = 10 * time.Millisecond

func proposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func TestSessionCappedAttackBuild(t *testing.T) {
	a := modpaxos.SessionCappedAttack{K: 4, From: 3, Victims: []consensus.ProcessID{0}, Cap: 2}
	inj := a.Build(5, delta, 100*time.Millisecond)
	if len(inj) != 4 {
		t.Fatalf("got %d injections, want 4", len(inj))
	}
	for _, in := range inj {
		m, ok := in.Msg.(modpaxos.P1a)
		if !ok {
			t.Fatalf("injection is %T, want modpaxos.P1a", in.Msg)
		}
		if m.Bal.Session(5) != 2 {
			t.Fatalf("session %d, want cap 2", m.Bal.Session(5))
		}
	}
}

// TestModifiedPaxosAbsorbsEquivalentAttack shows the contrast (claim C3):
// the strongest legal injection against the modified algorithm leaves it
// within its O(δ) bound, independent of k.
func TestModifiedPaxosAbsorbsEquivalentAttack(t *testing.T) {
	const n = 5
	ts := 100 * time.Millisecond
	run := func(k int) time.Duration {
		eng := sim.NewEngine(11)
		nw, err := simnet.New(eng, simnet.Config{N: n, Delta: delta, TS: ts, Policy: simnet.DropAll{}, Rho: 0.01},
			modpaxos.MustNew(modpaxos.Config{Delta: delta, Rho: 0.01}), proposals(n))
		if err != nil {
			t.Fatal(err)
		}
		// With DropAll every live process idles in session 1 at TS, so
		// the legal cap is s0+1 = 2.
		adversary.Apply(nw, modpaxos.SessionCappedAttack{
			K: k, From: 4, Victims: []consensus.ProcessID{1, 2, 3}, Cap: 2,
		}.Build(n, delta, ts))
		nw.StartExcept(4)
		ok, err := nw.RunUntilAllDecided(time.Minute)
		if err != nil {
			t.Fatalf("k=%d: safety violation: %v", k, err)
		}
		if !ok {
			t.Fatalf("k=%d: no decision", k)
		}
		last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
		return last - ts
	}
	bound, err := modpaxos.DecisionBound(modpaxos.Config{Delta: delta, Rho: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	lat0, lat8 := run(0), run(8)
	if lat0 > bound || lat8 > bound {
		t.Fatalf("modified paxos exceeded bound %v: k0=%v k8=%v", bound, lat0, lat8)
	}
	t.Logf("modified paxos latency after TS: k=0 %v, k=8 %v (bound %v)", lat0, lat8, bound)
}

// TestAblationEntryRuleIsLoadBearing shows why the majority-session-entry
// rule exists: with it disabled, a failed process could legally have built
// arbitrarily high sessions before TS, and the adaptive release of its
// obsolete messages delays consensus far past the paper's bound. With the
// rule enabled, the strongest legal attack (session-capped) is absorbed.
func TestAblationEntryRuleIsLoadBearing(t *testing.T) {
	const n = 5
	ts := 100 * time.Millisecond
	victims := []consensus.ProcessID{0, 1, 2, 3}

	run := func(disableRule bool, k int) time.Duration {
		eng := sim.NewEngine(5)
		factory := modpaxos.MustNew(modpaxos.Config{Delta: delta, Rho: 0.01, DisableEntryRule: disableRule})
		nw, err := simnet.New(eng, simnet.Config{
			N: n, Delta: delta, TS: ts, MinDelay: delta, // worst-case delivery
			Policy: simnet.DropAll{}, Rho: 0.01,
		}, factory, proposals(n))
		if err != nil {
			t.Fatal(err)
		}
		if disableRule {
			modpaxos.ReactiveSessionAttack{K: k, From: 4, Victims: victims}.Install(nw)
		} else {
			adversary.Apply(nw, modpaxos.SessionCappedAttack{
				K: k, From: 4, Victims: victims, Cap: 2,
			}.Build(n, delta, ts))
		}
		nw.StartExcept(4)
		ok, err := nw.RunUntilAllDecided(time.Minute)
		if err != nil {
			t.Fatalf("disableRule=%v k=%d: safety violation: %v", disableRule, k, err)
		}
		if !ok {
			t.Fatalf("disableRule=%v k=%d: no decision", disableRule, k)
		}
		last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
		return last - ts
	}

	bound, err := modpaxos.DecisionBound(modpaxos.Config{Delta: delta, Rho: 0.01})
	if err != nil {
		t.Fatal(err)
	}

	withRule := run(false, 8)
	if withRule > bound {
		t.Fatalf("rule enabled: %v exceeds bound %v", withRule, bound)
	}
	ablated := run(true, 8)
	if ablated <= bound {
		t.Fatalf("ablated algorithm still within bound (%v ≤ %v); attack not biting", ablated, bound)
	}
	// Growth with k: more obsolete sessions, more delay.
	ablated4 := run(true, 4)
	if ablated <= ablated4 {
		t.Fatalf("ablated latency not growing with k: k4=%v k8=%v", ablated4, ablated)
	}
	t.Logf("with rule: %v; ablated k=4: %v; ablated k=8: %v (bound %v)", withRule, ablated4, ablated, bound)
}

// TestAblationHeartbeatIsLoadBearing shows why the ε-heartbeat exists: with
// every pre-TS message lost and no heartbeat, communication is never
// re-established after TS and the cluster cannot decide.
func TestAblationHeartbeatIsLoadBearing(t *testing.T) {
	const n = 5
	ts := 100 * time.Millisecond

	eng := sim.NewEngine(6)
	factory := modpaxos.MustNew(modpaxos.Config{Delta: delta, Rho: 0.01, DisableHeartbeat: true})
	nw, err := simnet.New(eng, simnet.Config{
		N: n, Delta: delta, TS: ts, Policy: simnet.DropAll{}, Rho: 0.01,
	}, factory, proposals(n))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	ok, err := nw.RunUntilAllDecided(ts + 100*delta) // 100δ of post-TS time
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if ok {
		t.Fatal("cluster decided without the heartbeat despite total pre-TS loss")
	}
	if nw.Checker().DecidedCount() != 0 {
		t.Fatalf("%d processes decided", nw.Checker().DecidedCount())
	}
}
