// Package modpaxos implements the paper's modified Paxos algorithm (§4),
// the primary contribution of "How Fast Can Eventual Synchrony Lead to
// Consensus?" (Dutta, Guerraoui, Lamport, DSN 2005).
//
// The modifications over traditional Paxos are exactly the paper's:
//
//  1. Ballots are structured into sessions: session(b) = ⌊b/N⌋, and a
//     process is in session ⌊mbal/N⌋. A process may not enter session s+1
//     until (i) its session timer has expired and (ii) it is in session 0
//     or has received a message of its current session from a majority of
//     processes. This emulates how round-based algorithms cap anomalously
//     high round numbers: any message ever sent has session at most one
//     above some nonfaulty process's session (proof step 1).
//  2. Whenever a process enters a new session it resets its session timer
//     to expire between 4δ and σ (global) seconds later, which it achieves
//     by arming a local-clock timer of σ·(1−ρ); the paper's requirement
//     σ ≥ 4δ·(1+ρ)/(1−ρ) makes the global window come out right.
//  3. A process broadcasts a phase 1a message whenever it begins a new
//     session, and re-broadcasts one every ε if it has sent no phase 1a/2a
//     message in the last ε seconds (the heartbeat that restores
//     communication after stabilization).
//  4. There is no leader election and no Reject message. Leadership is
//     implicit: the owner of the highest ballot in the newest session wins.
//
// Every process nonfaulty at TS decides by TS + ε + 3τ + 5δ with
// τ = max(2δ+ε, σ) — about TS + 17δ for σ ≈ 4δ and ε ≪ δ (claim C3).
package modpaxos

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// Timer identifiers.
const (
	// sessionTimer is the paper's session timer.
	sessionTimer consensus.TimerID = 1
	// heartbeatTimer drives the ε-periodic phase 1a re-broadcast.
	heartbeatTimer consensus.TimerID = 2
	// gossipTimer re-broadcasts the decision after deciding.
	gossipTimer consensus.TimerID = 3
)

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyModPaxosState

// Config holds the algorithm parameters. All of Delta, Sigma, Eps are as in
// the paper; Rho is the clock-rate error bound used to budget local timers.
type Config struct {
	// Delta is δ, the known post-stabilization delivery bound.
	Delta time.Duration
	// Sigma is σ, the upper edge of the session-timeout window. It must
	// satisfy σ ≥ 4δ·(1+ρ)/(1−ρ); zero selects the smallest legal value
	// rounded up 5% for slack.
	Sigma time.Duration
	// Eps is ε, the heartbeat interval (an arbitrary positive O(δ)
	// value); zero selects δ/2.
	Eps time.Duration
	// Rho is ρ, the clock-rate error bound.
	Rho float64
	// GossipInterval is the decided-value re-broadcast period (default 2δ).
	GossipInterval time.Duration
	// DisableEntryRule is an ABLATION switch: it drops condition (ii) of
	// Start Phase 1 (the majority-session-entry rule) and lets a process
	// adopt any ballot regardless of session. With it off, the paper's
	// step-1 invariant fails and obsolete high-session messages can
	// disrupt the algorithm — the experiment that shows why the rule
	// exists.
	DisableEntryRule bool
	// DisableHeartbeat is an ABLATION switch: it removes the ε-periodic
	// phase 1a re-broadcast. With all pre-TS messages lost, nothing
	// restores communication after TS and the algorithm loses liveness.
	DisableHeartbeat bool
	// Prepared bootstraps the stable-state fast path (§4, "Reducing
	// Message Complexity"): all processes start with mbal equal to
	// process 0's session-1 ballot, and process 0 behaves as if phase 1
	// had completed in advance, sending phase 2a immediately. Decisions
	// then take 3 message delays, like ordinary stable-state Paxos.
	Prepared bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta <= 0 {
		return c, fmt.Errorf("modpaxos: Delta must be positive, got %v", c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return c, fmt.Errorf("modpaxos: Rho must be in [0,1), got %v", c.Rho)
	}
	minSigma := clock.SigmaFor(c.Delta, c.Rho)
	if c.Sigma == 0 {
		c.Sigma = minSigma + minSigma/20
	}
	if c.Sigma < minSigma {
		return c, fmt.Errorf("modpaxos: Sigma %v below 4δ(1+ρ)/(1−ρ) = %v", c.Sigma, minSigma)
	}
	if c.Eps == 0 {
		c.Eps = c.Delta / 2
	}
	if c.Eps < 0 {
		return c, fmt.Errorf("modpaxos: Eps must be positive, got %v", c.Eps)
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 2 * c.Delta
	}
	return c, nil
}

// sessionTimerLocal is the local-clock duration to arm the session timer
// with: σ·(1−ρ) local seconds fire after global time in
// [σ·(1−ρ)/(1+ρ), σ] ⊇ [4δ, σ] given the σ constraint.
func (c Config) sessionTimerLocal() time.Duration {
	return time.Duration(float64(c.Sigma) * (1 - c.Rho))
}

// durable is the stable-storage image — mbal "and the rest of its state"
// (§2). Sent2a/Chosen must be durable: a ballot owner that crashes after
// sending phase 2a and restarts must never send a different value at the
// same ballot (equivocation would break the quorum-intersection argument).
type durable struct {
	MBal    consensus.Ballot
	ABal    consensus.Ballot
	AVal    consensus.Value
	Sent2a  bool
	Chosen  consensus.Value
	Decided bool
	Dec     consensus.Value
}

// Process is one modified-Paxos participant.
type Process struct {
	id       consensus.ProcessID
	n        int
	cfg      Config
	proposal consensus.Value
	env      consensus.Environment

	st durable

	// contacts is the set of processes from which we have received a
	// message of our current session (condition (ii) of Start Phase 1);
	// it always contains the process itself.
	contacts map[consensus.ProcessID]bool
	// timerExpired records that the session timer has fired and Start
	// Phase 1 is pending condition (ii).
	timerExpired bool

	// Ballot-owner bookkeeping (meaningful while we own mbal).
	p1bs map[consensus.ProcessID]P1b

	// p2bs holds the latest phase 2b from each process.
	p2bs map[consensus.ProcessID]P2b

	// lastAnnounce is the local time of the last phase 1a/2a send.
	lastAnnounce time.Duration
}

var _ consensus.Process = (*Process)(nil)

// New returns a Factory producing modified-Paxos processes, or an error for
// invalid parameters.
func New(cfg Config) (consensus.Factory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &Process{id: id, n: n, cfg: cfg, proposal: proposal}
	}, nil
}

// MustNew is New for callers with static configs; it panics on invalid
// parameters.
func MustNew(cfg Config) consensus.Factory {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Init implements consensus.Process. On a restart the process resumes from
// stable storage with a fresh session timer, as the paper prescribes.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	p.contacts = map[consensus.ProcessID]bool{p.id: true}
	p.p1bs = make(map[consensus.ProcessID]P1b)
	p.p2bs = make(map[consensus.ProcessID]P2b)

	ok, err := env.Store().Get(stateKey, &p.st)
	if err != nil {
		env.Logf("modpaxos: restore: %v", err)
	}
	if !ok {
		// First boot: initial mbal[p] = p (session 0), or the prepared
		// fast-path state.
		p.st = durable{MBal: consensus.Ballot(p.id), ABal: consensus.NoBallot}
		if p.cfg.Prepared {
			p.st.MBal = consensus.BallotFor(1, 0, p.n)
		}
		p.persist()
	}
	if p.st.Decided {
		p.env.Decide(p.st.Dec)
		p.env.Broadcast(Decided{Val: p.st.Dec})
		p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
		return
	}

	p.env.Emit("session", p.session())
	consensus.BeginSpan(p.env, "session", p.session())

	switch {
	case p.cfg.Prepared && p.id == 0 && !p.st.Sent2a && p.proposal != "" &&
		p.st.MBal == consensus.BallotFor(1, 0, p.n) && p.st.ABal == consensus.NoBallot:
		// Phase 1 was executed in advance: go straight to phase 2a.
		p.st.Sent2a = true
		p.st.Chosen = p.proposal
		p.persist()
		p.announce2a()
	case p.st.Sent2a && p.ownsBallot():
		// Restarted mid-ballot: re-announce the same chosen value.
		p.announce2a()
	default:
		p.announce1a()
	}

	// "Session timers are set initially to time out within σ seconds."
	p.env.SetTimer(sessionTimer, p.cfg.sessionTimerLocal())
	if !p.cfg.DisableHeartbeat {
		p.env.SetTimer(heartbeatTimer, p.cfg.Eps)
	}
}

func (p *Process) persist() {
	if err := p.env.Store().Put(stateKey, p.st); err != nil {
		p.env.Logf("modpaxos: persist: %v", err)
	}
}

func (p *Process) session() int64   { return p.st.MBal.Session(p.n) }
func (p *Process) majority() int    { return consensus.Majority(p.n) }
func (p *Process) ownsBallot() bool { return p.st.MBal.Owner(p.n) == p.id }

func (p *Process) announce1a() {
	p.lastAnnounce = p.env.Now()
	p.env.Broadcast(P1a{Bal: p.st.MBal})
}

func (p *Process) announce2a() {
	p.lastAnnounce = p.env.Now()
	p.env.Broadcast(P2a{Bal: p.st.MBal, Val: p.st.Chosen})
}

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	if p.st.Decided {
		// A decided process answers everything by announcing its value.
		if _, isDecided := m.(Decided); !isDecided {
			p.env.Send(from, Decided{Val: p.st.Dec})
		}
		if d, isDecided := m.(Decided); isDecided {
			p.decide(d.Val)
		}
		return
	}
	switch msg := m.(type) {
	case P1a:
		p.witness(from, msg.Bal)
		p.onP1a(msg)
	case P1b:
		p.witness(from, msg.Bal)
		p.onP1b(from, msg)
	case P2a:
		p.witness(from, msg.Bal)
		p.onP2a(msg)
	case P2b:
		p.witness(from, msg.Bal)
		p.onP2b(from, msg)
	case Decided:
		p.decide(msg.Val)
	}
}

// witness folds a received message into the session machinery: messages of
// a higher ballot advance mbal (possibly entering a new session), and
// messages of the current session accumulate toward condition (ii).
func (p *Process) witness(from consensus.ProcessID, b consensus.Ballot) {
	if b > p.st.MBal {
		p.adopt(b)
	}
	if b.Session(p.n) == p.session() {
		p.contacts[from] = true
		p.maybeStartPhase1()
	}
}

// adopt raises mbal to b; entering a new session resets the session state.
func (p *Process) adopt(b consensus.Ballot) {
	oldSession := p.session()
	p.st.MBal = b
	p.st.Sent2a = false
	p.persist()
	p.p1bs = make(map[consensus.ProcessID]P1b)
	if b.Session(p.n) > oldSession {
		p.enterSession()
	}
}

// enterSession performs the bookkeeping common to every session entry:
// reset the contact set, reset the session timer to the [4δ, σ] window, and
// broadcast a phase 1a announcing the session (modification 3).
func (p *Process) enterSession() {
	p.contacts = map[consensus.ProcessID]bool{p.id: true}
	p.timerExpired = false
	p.env.SetTimer(sessionTimer, p.cfg.sessionTimerLocal())
	p.env.Emit("session", p.session())
	// A begin for an already-open span kind closes the previous session, so
	// session progression renders as adjacent phase spans.
	consensus.BeginSpan(p.env, "session", p.session())
	p.announce1a()
}

// maybeStartPhase1 executes Start Phase 1 if both enabling conditions hold:
// (i) the session timer has expired, and (ii) session 0 or a majority of
// current-session contacts.
func (p *Process) maybeStartPhase1() {
	if !p.timerExpired {
		return
	}
	if !p.cfg.DisableEntryRule && p.session() != 0 && len(p.contacts) < p.majority() {
		return
	}
	// mbal ← (⌊mbal/N⌋ + 1)·N + p.
	p.st.MBal = consensus.BallotFor(p.session()+1, p.id, p.n)
	p.st.Sent2a = false
	p.persist()
	p.p1bs = make(map[consensus.ProcessID]P1b)
	p.enterSession()
}

func (p *Process) onP1a(m P1a) {
	if m.Bal < p.st.MBal {
		return // no Reject action in the modified algorithm
	}
	// m.Bal == mbal here (witness already adopted any higher ballot).
	// Answer the ballot's owner, also on duplicates: heartbeat 1a
	// messages re-elicit 1b messages lost before stabilization.
	p.env.Send(m.Bal.Owner(p.n), P1b{Bal: m.Bal, ABal: p.st.ABal, AVal: p.st.AVal})
}

func (p *Process) onP1b(from consensus.ProcessID, m P1b) {
	if m.Bal != p.st.MBal || !p.ownsBallot() {
		return
	}
	if p.st.Sent2a {
		// Targeted retransmit for a straggler.
		p.env.Send(from, P2a{Bal: p.st.MBal, Val: p.st.Chosen})
		return
	}
	p.p1bs[from] = m
	if len(p.p1bs) < p.majority() {
		return
	}
	// Start Phase 2 with the value of the highest acceptance, or our own
	// proposal if the quorum reported none.
	val := p.proposal
	best := consensus.NoBallot
	for _, b1 := range p.p1bs {
		if b1.ABal > best {
			// Acceptors reporting the same ABal accepted the same value
			// (one value per ballot), so ties resolve identically in any
			// visiting order and the strict argmax is order-free.
			//repro:allow detlint equal ballots carry equal values
			best = b1.ABal
			val = b1.AVal
		}
	}
	p.st.Sent2a = true
	p.st.Chosen = val
	p.persist()
	p.announce2a()
}

func (p *Process) onP2a(m P2a) {
	if m.Bal < p.st.MBal {
		return
	}
	p.st.ABal = m.Bal
	p.st.AVal = m.Val
	p.persist()
	p.env.Broadcast(P2b{Bal: m.Bal, Val: m.Val})
}

func (p *Process) onP2b(from consensus.ProcessID, m P2b) {
	p.p2bs[from] = m
	count := 0
	for _, b2 := range p.p2bs {
		if b2.Bal == m.Bal {
			count++
		}
	}
	if count >= p.majority() {
		p.decide(m.Val)
	}
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	switch id {
	case sessionTimer:
		if p.st.Decided {
			return
		}
		p.timerExpired = true
		p.maybeStartPhase1()
	case heartbeatTimer:
		if p.st.Decided {
			return
		}
		// Modification 3: re-broadcast phase 1a if quiet for ε.
		if p.env.Now()-p.lastAnnounce >= p.cfg.Eps {
			p.announce1a()
		}
		p.env.SetTimer(heartbeatTimer, p.cfg.Eps)
	case gossipTimer:
		if p.st.Decided {
			p.env.Broadcast(Decided{Val: p.st.Dec})
			p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
		}
	}
}

func (p *Process) decide(v consensus.Value) {
	if p.st.Decided {
		return
	}
	p.st.Decided = true
	p.st.Dec = v
	p.persist()
	p.env.Decide(v)
	consensus.EndSpan(p.env, "session", p.session())
	p.env.CancelTimer(sessionTimer)
	p.env.CancelTimer(heartbeatTimer)
	p.env.Broadcast(Decided{Val: v})
	p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
}

// Claim jumps an undecided instance to the ballot this process owns in the
// given session and opens phase 1 immediately, bypassing the session-timer
// wait. It is the hook a replicated-state-machine layer uses to hand a
// failed-over leader the initiative the prepared session-1 owner enjoys:
// claiming a session above every earlier epoch's gives the new leader's
// proposals a dominating ballot without burning σ waiting for the crashed
// owner's ballot to expire — and without it, each of its proposals would
// duel the other followers' NoOp recovery ballots. A claim at or below the
// current ballot is ignored, as is one on a decided instance.
func (p *Process) Claim(session int64) {
	if p.st.Decided {
		return
	}
	b := consensus.BallotFor(session, p.id, p.n)
	if b <= p.st.MBal {
		return
	}
	p.st.MBal = b
	p.st.Sent2a = false
	p.persist()
	p.p1bs = make(map[consensus.ProcessID]P1b)
	p.enterSession()
}

// DecisionBound returns the paper's decision-time bound after TS:
// ε + 3τ + 5δ with τ = max(2δ+ε, σ). Experiments compare measurements
// against this.
func DecisionBound(cfg Config) (time.Duration, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	tau := 2*cfg.Delta + cfg.Eps
	if cfg.Sigma > tau {
		tau = cfg.Sigma
	}
	return cfg.Eps + 3*tau + 5*cfg.Delta, nil
}
