package modpaxos

import (
	"time"

	"repro/internal/adversary"
	"repro/internal/core/consensus"
	"repro/internal/protocol"
	"repro/internal/simnet"
)

// config maps the registry's common parameter set onto this package's
// Config.
func config(p protocol.Params) Config {
	return Config{Delta: p.Delta, Sigma: p.Sigma, Eps: p.Eps, Rho: p.Rho, Prepared: p.Prepared}
}

// messages lists the wire message types for gob registration.
func messages() []consensus.Message {
	return []consensus.Message{P1a{}, P1b{}, P2a{}, P2b{}, Decided{}}
}

// Descriptor returns the protocol-registry entry for modified Paxos — the
// paper's contribution. It is registered by the protocol/all package.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name: "modpaxos",
		Doc:  "modified Paxos (§4, claim C3): decides by TS + ε + 3τ + 5δ under any pre-TS adversary",
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(config(p))
		},
		DecisionBound: func(p protocol.Params) (time.Duration, error) {
			return DecisionBound(config(p))
		},
		// The strongest legal injection: proof step 1 caps every session at
		// s0+1, which is 2 under the harness's DropAll pre-TS policy (all
		// live processes idle in session 1 at TS).
		Obsolete: func(_ protocol.Params, s protocol.ObsoleteSpec) protocol.Installer {
			return func(nw *simnet.Network) {
				adversary.Apply(nw, SessionCappedAttack{
					K: s.K, From: s.From, Victims: s.Victims, Cap: 2,
				}.Build(s.N, s.Delta, s.TS))
			}
		},
		Messages:           messages(),
		SupportsPrepared:   true,
		ClaimsFastRecovery: true,
	}
}

// AblationDescriptor returns the entry-rule ablation variant: modified
// Paxos with condition (ii) of Start Phase 1 (the majority-session-entry
// rule) disabled. Without the rule a failed process could legally have
// produced arbitrarily high sessions before TS, so its Obsolete hook mounts
// the adaptive high-session release — the §2 problem returning, which is
// exactly why the rule exists (Table 10). The variant is Hidden: it never
// joins default protocol comparisons, but resolves by name everywhere.
//
// It deliberately declares no DecisionBound: the paper's ε+3τ+5δ claim
// does not hold for the ablated algorithm.
func AblationDescriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name:   "modpaxos-norule",
		Doc:    "ABLATION: modified Paxos without the majority-entry rule — obsolete high sessions delay it without bound",
		Hidden: true,
		New: func(p protocol.Params) (consensus.Factory, error) {
			cfg := config(p)
			cfg.DisableEntryRule = true
			return New(cfg)
		},
		Obsolete: func(_ protocol.Params, s protocol.ObsoleteSpec) protocol.Installer {
			// The ablated attack targets every up process: there is no
			// leader to spare in modified Paxos, and the point is the
			// strongest schedule the missing rule would have forbidden.
			var victims []consensus.ProcessID
			for i := 0; i < s.N; i++ {
				if id := consensus.ProcessID(i); id != s.From {
					victims = append(victims, id)
				}
			}
			return func(nw *simnet.Network) {
				ReactiveSessionAttack{K: s.K, From: s.From, Victims: victims}.Install(nw)
			}
		},
		Messages: messages(),
	}
}
