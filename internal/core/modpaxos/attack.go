package modpaxos

import (
	"time"

	"repro/internal/adversary"
	"repro/internal/core/consensus"
	"repro/internal/simnet"
)

// SessionCappedAttack is the strongest injection the §2 adversary can mount
// against the modified algorithm. The session rule (proof step 1) means no
// message with session greater than s0+1 can exist, where s0 is the highest
// session among processes nonfaulty at TS; the adversary therefore injects
// session-Cap phase 1a messages — the strongest legal forgery, which the
// modified algorithm absorbs in O(δ).
type SessionCappedAttack struct {
	// K is the number of injected messages.
	K int
	// From is the failed process they claim to come from.
	From consensus.ProcessID
	// Victims receive each injection.
	Victims []consensus.ProcessID
	// Cap is the session number to use (s0+1 for the run's schedule).
	Cap int64
	// Spacing is the interval between injections (default 3δ).
	Spacing time.Duration
}

// Build returns the injection schedule.
func (a SessionCappedAttack) Build(n int, delta, ts time.Duration) []adversary.Injection {
	spacing := a.Spacing
	if spacing == 0 {
		spacing = 3 * delta
	}
	out := make([]adversary.Injection, 0, a.K*len(a.Victims))
	for i := 0; i < a.K; i++ {
		bal := consensus.BallotFor(a.Cap, a.From, n)
		at := ts + time.Duration(i+1)*spacing
		for _, v := range a.Victims {
			out = append(out, adversary.Injection{
				At:   at,
				From: a.From,
				To:   v,
				Msg:  P1a{Bal: bal},
			})
		}
	}
	return out
}

// ReactiveSessionAttack is the modified-Paxos analogue of
// paxos.ReactiveObsoleteAttack for ABLATION runs: it releases obsolete
// messages with ever-higher session numbers, timed to abort each in-flight
// ballot. Against the real algorithm such messages cannot exist (proof
// step 1 — the majority-entry rule caps legal sessions at s0+1); against
// the ablated algorithm (Config.DisableEntryRule) a failed process could
// legally have produced them before TS, and they delay consensus
// indefinitely, which is exactly why the rule exists.
type ReactiveSessionAttack struct {
	// K is the number of obsolete messages to release.
	K int
	// From is the failed process they claim to come from.
	From consensus.ProcessID
	// Victims receive each release (typically every up process).
	Victims []consensus.ProcessID
}

// Install registers the adversary; it returns a released-count reporter.
func (a ReactiveSessionAttack) Install(nw *simnet.Network) func() int {
	return adversary.Reactive{
		K: a.K, From: a.From, Victims: a.Victims,
		// Trigger on the first phase 1b reaching the incumbent ballot's
		// owner: the owner is one message delay away from broadcasting
		// phase 2a, so a higher session released NOW reaches the victims
		// before that 2a does and aborts the ballot.
		Trigger: func(n int, to consensus.ProcessID, m consensus.Message) (consensus.Ballot, bool) {
			p1b, ok := m.(P1b)
			if !ok || p1b.Bal.Owner(n) != to {
				return 0, false
			}
			return p1b.Bal, true
		},
		Forge: func(bal consensus.Ballot) consensus.Message { return P1a{Bal: bal} },
	}.Install(nw)
}
