package modpaxos

// Handler-level unit tests: each test drives a single Process by hand
// through consensustest.Env and asserts the exact messages, timers, and
// persistence the paper's actions prescribe. The integration-level timing
// behaviour is covered in modpaxos_test.go.

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/consensus/consensustest"
)

const (
	n5     = 5
	uDelta = 10 * time.Millisecond
)

// boot creates a process on a fresh env and clears Init's announcements.
func boot(t *testing.T, id consensus.ProcessID, cfg Config) (*Process, *consensustest.Env) {
	t.Helper()
	cfg.Delta = uDelta
	factory, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := factory(id, n5, consensus.Value("mine")).(*Process)
	env := consensustest.New(id, n5)
	p.Init(env)
	env.ClearOutbox()
	return p, env
}

func TestInitBroadcastsPhase1aAndArmsTimers(t *testing.T) {
	factory := MustNew(Config{Delta: uDelta})
	p := factory(2, n5, "v").(*Process)
	env := consensustest.New(2, n5)
	p.Init(env)
	if got := env.BroadcastsOf("p1a"); got != 1 {
		t.Fatalf("Init broadcast %d phase 1a rounds, want 1", got)
	}
	if _, ok := env.Timers[sessionTimer]; !ok {
		t.Fatal("session timer not armed at Init")
	}
	if _, ok := env.Timers[heartbeatTimer]; !ok {
		t.Fatal("heartbeat timer not armed at Init")
	}
	// Initial ballot is the process id (session 0).
	if p.st.MBal != 2 {
		t.Fatalf("initial mbal = %v, want 2", p.st.MBal)
	}
}

func TestP1aLowerBallotIgnoredNoReject(t *testing.T) {
	p, env := boot(t, 3, Config{})
	p.HandleMessage(1, P1a{Bal: 1}) // lower than mbal=3
	if len(env.Outbox) != 0 {
		t.Fatalf("lower-ballot p1a triggered %v; the modified algorithm has no Reject", env.Outbox)
	}
}

func TestP1aEqualBallotReAnswersOwner(t *testing.T) {
	p, env := boot(t, 3, Config{})
	p.HandleMessage(3, P1a{Bal: 3}) // duplicate of own current ballot
	msgs := env.SentTo(3)
	if len(msgs) != 1 {
		t.Fatalf("sent %v, want one p1b to owner 3", env.Outbox)
	}
	if m, ok := msgs[0].(P1b); !ok || m.Bal != 3 || m.ABal != consensus.NoBallot {
		t.Fatalf("reply = %#v, want P1b{3, ⊥}", msgs[0])
	}
}

func TestAdoptHigherBallotSameSessionNoTimerReset(t *testing.T) {
	p, env := boot(t, 0, Config{})
	before := env.Armings[sessionTimer]
	p.HandleMessage(4, P1a{Bal: 4}) // session 0, higher than mbal=0
	if p.st.MBal != 4 {
		t.Fatalf("mbal = %v, want 4", p.st.MBal)
	}
	if env.Armings[sessionTimer] != before {
		t.Fatal("same-session adoption reset the session timer")
	}
	// Still answers the owner.
	if len(env.SentTo(4)) != 1 {
		t.Fatalf("no p1b to owner: %v", env.Outbox)
	}
}

func TestAdoptHigherSessionResetsTimerAndAnnounces(t *testing.T) {
	p, env := boot(t, 0, Config{})
	before := env.Armings[sessionTimer]
	b := consensus.BallotFor(3, 2, n5) // session 3 owned by 2
	p.HandleMessage(2, P1a{Bal: b})
	if p.session() != 3 {
		t.Fatalf("session = %d, want 3", p.session())
	}
	if env.Armings[sessionTimer] != before+1 {
		t.Fatal("session entry must reset the session timer")
	}
	if env.BroadcastsOf("p1a") != 1 {
		t.Fatalf("session entry must broadcast a phase 1a; outbox %v", env.Outbox)
	}
	// Contact set resets to {self, sender}.
	if len(p.contacts) != 2 || !p.contacts[0] || !p.contacts[2] {
		t.Fatalf("contacts after session entry = %v, want {0,2}", p.contacts)
	}
}

func TestStartPhase1RequiresTimerAndMajority(t *testing.T) {
	p, env := boot(t, 0, Config{})
	// Put the process in session 1 (ballot 5+0 = owned by 0).
	p.HandleMessage(1, P1a{Bal: consensus.BallotFor(1, 1, n5)})
	if p.session() != 1 {
		t.Fatalf("setup: session = %d", p.session())
	}
	env.ClearOutbox()

	// Timer expired, but only 2 contacts (self + 1): condition (ii) fails.
	p.HandleTimer(sessionTimer)
	if p.session() != 1 {
		t.Fatal("Start Phase 1 ran without a majority of contacts")
	}
	// Third contact arrives (majority of 5 = 3): the pending action fires.
	p.HandleMessage(2, P1a{Bal: consensus.BallotFor(1, 1, n5)})
	if p.session() != 2 {
		t.Fatalf("session = %d, want 2 after majority + expired timer", p.session())
	}
	if p.st.MBal != consensus.BallotFor(2, 0, n5) {
		t.Fatalf("mbal = %v, want own session-2 ballot %v", p.st.MBal, consensus.BallotFor(2, 0, n5))
	}
	_ = env
}

func TestStartPhase1Session0NeedsNoMajority(t *testing.T) {
	p, _ := boot(t, 0, Config{})
	p.HandleTimer(sessionTimer)
	if p.session() != 1 {
		t.Fatalf("session = %d; session 0 should advance on timer alone", p.session())
	}
}

func TestOwnerSendsPhase2aWithHighestAcceptedValue(t *testing.T) {
	p, env := boot(t, 0, Config{})
	p.HandleTimer(sessionTimer) // enter session 1 with own ballot 5
	env.ClearOutbox()
	b := p.st.MBal

	p.HandleMessage(0, P1b{Bal: b, ABal: consensus.NoBallot})
	p.HandleMessage(1, P1b{Bal: b, ABal: 2, AVal: "old-2"})
	if env.CountType("p2a") != 0 {
		t.Fatal("sent 2a before majority of 1b")
	}
	p.HandleMessage(2, P1b{Bal: b, ABal: 4, AVal: "old-4"})
	if got := env.BroadcastsOf("p2a"); got != 1 {
		t.Fatalf("2a broadcasts = %d, want 1", got)
	}
	m := env.SentTo(1)[0].(P2a)
	if m.Val != "old-4" {
		t.Fatalf("2a value = %q, want the highest accepted (old-4)", m.Val)
	}
	if !p.st.Sent2a || p.st.Chosen != "old-4" {
		t.Fatal("Sent2a/Chosen not recorded durably")
	}
}

func TestOwnerProposesOwnValueWhenQuorumEmpty(t *testing.T) {
	p, env := boot(t, 0, Config{})
	p.HandleTimer(sessionTimer)
	env.ClearOutbox()
	b := p.st.MBal
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, P1b{Bal: b, ABal: consensus.NoBallot})
	}
	m := env.SentTo(0)[0].(P2a)
	if m.Val != "mine" {
		t.Fatalf("2a value = %q, want own proposal", m.Val)
	}
}

func TestLatePhase1bGetsTargetedRetransmit(t *testing.T) {
	p, env := boot(t, 0, Config{})
	p.HandleTimer(sessionTimer)
	b := p.st.MBal
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, P1b{Bal: b, ABal: consensus.NoBallot})
	}
	env.ClearOutbox()
	p.HandleMessage(4, P1b{Bal: b, ABal: consensus.NoBallot}) // straggler
	msgs := env.SentTo(4)
	if len(msgs) != 1 {
		t.Fatalf("straggler got %v, want exactly one targeted 2a", env.Outbox)
	}
	if _, ok := msgs[0].(P2a); !ok {
		t.Fatalf("straggler got %#v, want P2a", msgs[0])
	}
	if len(env.Outbox) != 1 {
		t.Fatalf("retransmit must be targeted, not broadcast: %v", env.Outbox)
	}
}

func TestPhase2aAcceptanceBroadcastsPhase2b(t *testing.T) {
	p, env := boot(t, 1, Config{})
	b := consensus.BallotFor(1, 0, n5)
	p.HandleMessage(0, P2a{Bal: b, Val: "v"})
	if p.st.ABal != b || p.st.AVal != "v" {
		t.Fatalf("acceptance not recorded: %+v", p.st)
	}
	if env.BroadcastsOf("p2b") != 1 {
		t.Fatalf("2b broadcasts = %d, want 1 (everyone is a learner)", env.BroadcastsOf("p2b"))
	}
}

func TestStalePhase2aIgnored(t *testing.T) {
	p, env := boot(t, 1, Config{})
	p.HandleMessage(2, P1a{Bal: consensus.BallotFor(2, 2, n5)}) // mbal → session 2
	env.ClearOutbox()
	p.HandleMessage(0, P2a{Bal: consensus.BallotFor(1, 0, n5), Val: "v"})
	if p.st.ABal != consensus.NoBallot {
		t.Fatal("stale 2a was accepted")
	}
	if env.CountType("p2b") != 0 {
		t.Fatal("stale 2a produced 2b")
	}
}

func TestDecideOnMajorityOfMatchingPhase2b(t *testing.T) {
	p, env := boot(t, 1, Config{})
	b := consensus.BallotFor(1, 0, n5)
	p.HandleMessage(0, P2b{Bal: b, Val: "v"})
	p.HandleMessage(2, P2b{Bal: b - 1, Val: "w"}) // different ballot: no count
	p.HandleMessage(3, P2b{Bal: b, Val: "v"})
	if _, decided := env.Decided(); decided {
		t.Fatal("decided with only 2 matching 2b")
	}
	p.HandleMessage(4, P2b{Bal: b, Val: "v"})
	v, decided := env.Decided()
	if !decided || v != "v" {
		t.Fatalf("decision = (%q,%v), want (v,true)", v, decided)
	}
	// Deciding cancels protocol timers and announces.
	if env.BroadcastsOf("decided") != 1 {
		t.Fatal("decision not broadcast")
	}
	if _, armed := env.Timers[gossipTimer]; !armed {
		t.Fatal("gossip timer not armed after decision")
	}
}

func TestDecidedProcessAnswersEverythingWithDecision(t *testing.T) {
	p, env := boot(t, 1, Config{})
	p.HandleMessage(0, Decided{Val: "v"})
	env.ClearOutbox()
	p.HandleMessage(2, P1a{Bal: consensus.BallotFor(9, 2, n5)})
	msgs := env.SentTo(2)
	if len(msgs) != 1 {
		t.Fatalf("decided process sent %v, want one Decided", env.Outbox)
	}
	if d, ok := msgs[0].(Decided); !ok || d.Val != "v" {
		t.Fatalf("reply = %#v, want Decided{v}", msgs[0])
	}
	// And its ballot state is frozen.
	if p.session() == 9 {
		t.Fatal("decided process kept playing the session game")
	}
}

func TestHeartbeatOnlyWhenQuiet(t *testing.T) {
	p, env := boot(t, 0, Config{Eps: 5 * time.Millisecond})
	// Quiet period elapsed: heartbeat re-broadcasts 1a.
	env.Clock += 6 * time.Millisecond
	p.HandleTimer(heartbeatTimer)
	if env.BroadcastsOf("p1a") != 1 {
		t.Fatalf("quiet heartbeat sent %d p1a broadcasts, want 1", env.BroadcastsOf("p1a"))
	}
	env.ClearOutbox()
	// Recently announced (lastAnnounce == now): heartbeat stays silent.
	p.HandleTimer(heartbeatTimer)
	if env.CountType("p1a") != 0 {
		t.Fatal("heartbeat fired despite recent announcement")
	}
	// Heartbeat always re-arms itself.
	if env.Armings[heartbeatTimer] < 2 {
		t.Fatal("heartbeat did not re-arm")
	}
}

func TestRestartResumesBallotAndChosenValue(t *testing.T) {
	p, env := boot(t, 0, Config{})
	p.HandleTimer(sessionTimer)
	b := p.st.MBal
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, P1b{Bal: b, ABal: consensus.NoBallot})
	}
	if !p.st.Sent2a {
		t.Fatal("setup: 2a not sent")
	}

	// "Restart": fresh Process over the same store.
	factory := MustNew(Config{Delta: uDelta})
	p2 := factory(0, n5, "mine").(*Process)
	env2 := consensustest.New(0, n5)
	env2.Storage = env.Storage
	p2.Init(env2)

	if p2.st.MBal != b {
		t.Fatalf("restart lost mbal: %v, want %v", p2.st.MBal, b)
	}
	if !p2.st.Sent2a || p2.st.Chosen != "mine" {
		t.Fatalf("restart lost 2a record: %+v", p2.st)
	}
	// It re-announces 2a (same value), never a fresh choice.
	if env2.BroadcastsOf("p2a") != 1 {
		t.Fatalf("restart announced %d p2a broadcasts, want 1", env2.BroadcastsOf("p2a"))
	}
	if m := env2.SentTo(1)[0].(P2a); m.Val != "mine" || m.Bal != b {
		t.Fatalf("restart 2a = %#v, want same ballot and value", m)
	}
}

func TestContactsCountedOnlyForCurrentSession(t *testing.T) {
	p, _ := boot(t, 0, Config{})
	p.HandleMessage(1, P1a{Bal: consensus.BallotFor(1, 1, n5)}) // enter session 1
	if len(p.contacts) != 2 {
		t.Fatalf("contacts = %v", p.contacts)
	}
	// A session-0 message must not count toward session 1.
	p.HandleMessage(3, P1b{Bal: 3, ABal: consensus.NoBallot})
	if p.contacts[3] {
		t.Fatal("old-session message counted as a current-session contact")
	}
}

func TestEmitSessionSeries(t *testing.T) {
	p, env := boot(t, 0, Config{})
	p.HandleTimer(sessionTimer)
	p.HandleMessage(2, P1a{Bal: consensus.BallotFor(4, 2, n5)})
	got := env.Emitted["session"]
	if len(got) < 2 || got[len(got)-1] != 4 {
		t.Fatalf("session series = %v, want ... 4", got)
	}
	_ = p
}
