package modpaxos

import "repro/internal/core/consensus"

// P1a is a phase 1a message for ballot Bal. It doubles as the session
// announcement and the ε-heartbeat; it is treated as if sent by the
// ballot's owner, Bal mod N.
type P1a struct {
	Bal consensus.Ballot
}

// Type implements consensus.Message.
func (P1a) Type() string { return "p1a" }

// P1b is a phase 1b answer carrying the acceptor's highest acceptance.
type P1b struct {
	Bal  consensus.Ballot
	ABal consensus.Ballot
	AVal consensus.Value
}

// Type implements consensus.Message.
func (P1b) Type() string { return "p1b" }

// P2a proposes Val at ballot Bal.
type P2a struct {
	Bal consensus.Ballot
	Val consensus.Value
}

// Type implements consensus.Message.
func (P2a) Type() string { return "p2a" }

// P2b reports acceptance of Val at Bal; it is broadcast to every process.
type P2b struct {
	Bal consensus.Ballot
	Val consensus.Value
}

// Type implements consensus.Message.
func (P2b) Type() string { return "p2b" }

// Decided announces a decision.
type Decided struct {
	Val consensus.Value
}

// Type implements consensus.Message.
func (Decided) Type() string { return "decided" }
