package modpaxos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const delta = 10 * time.Millisecond

func distinctProposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func cluster(t *testing.T, seed int64, netCfg simnet.Config, cfg Config) (*sim.Engine, *simnet.Network) {
	t.Helper()
	cfg.Delta = netCfg.Delta
	cfg.Rho = netCfg.Rho
	factory, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	nw, err := simnet.New(eng, netCfg, factory, distinctProposals(netCfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func requireAllDecided(t *testing.T, nw *simnet.Network, horizon time.Duration) time.Duration {
	t.Helper()
	ok, err := nw.RunUntilAllDecided(horizon)
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if !ok {
		t.Fatalf("cluster did not decide by %v (decided %d/%d)",
			horizon, nw.Checker().DecidedCount(), nw.Config().N)
	}
	last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
	return last
}

func TestDecidesSynchronous(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 9} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, nw := cluster(t, 1, simnet.Config{N: n, Delta: delta, TS: 0}, Config{})
			nw.Start()
			last := requireAllDecided(t, nw, 5*time.Second)
			bound, _ := DecisionBound(Config{Delta: delta})
			if last > bound {
				t.Errorf("decision at %v exceeds paper bound %v", last, bound)
			}
		})
	}
}

func TestDecidesWithinPaperBoundAfterTS(t *testing.T) {
	ts := 300 * time.Millisecond
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		_, nw := cluster(t, seed,
			simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.DropAll{}, Rho: 0.01},
			Config{})
		nw.Start()
		last := requireAllDecided(t, nw, 5*time.Second)
		bound, err := DecisionBound(Config{Delta: delta, Rho: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if got := last - ts; got > bound {
			t.Errorf("seed %d: decided %v after TS, paper bound is %v (≈%.1fδ)",
				seed, got, bound, float64(bound)/float64(delta))
		}
	}
}

func TestDecidesUnderPreStabilityChaos(t *testing.T) {
	ts := 300 * time.Millisecond
	for _, seed := range []int64{10, 11, 12, 13, 14, 15, 16, 17} {
		_, nw := cluster(t, seed,
			simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.6}, Rho: 0.01},
			Config{})
		nw.Start()
		last := requireAllDecided(t, nw, 10*time.Second)
		bound, _ := DecisionBound(Config{Delta: delta, Rho: 0.01})
		// Chaos can only help or leave unchanged relative to DropAll
		// (messages may get through early); bound still applies after TS.
		if last > ts+bound {
			t.Errorf("seed %d: decided at %v, want ≤ TS+bound = %v", seed, last, ts+bound)
		}
	}
}

func TestAgreementAndValidityWithDistinctProposals(t *testing.T) {
	_, nw := cluster(t, 7, simnet.Config{N: 5, Delta: delta, TS: 100 * time.Millisecond, Policy: simnet.Chaos{DropProb: 0.5}}, Config{})
	nw.Start()
	requireAllDecided(t, nw, 5*time.Second)
	decisions := nw.Checker().Decisions()
	v := decisions[0].Value
	for _, d := range decisions {
		if d.Value != v {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
	// Validity is checked by the SafetyChecker already; double-check the
	// value is one of the distinct proposals.
	found := false
	for _, prop := range distinctProposals(5) {
		if v == prop {
			found = true
		}
	}
	if !found {
		t.Fatalf("decided value %q was never proposed", v)
	}
}

func TestMinorityCrashStillDecides(t *testing.T) {
	// ⌈N/2⌉−1 = 2 of 5 processes are down for the whole run.
	_, nw := cluster(t, 3, simnet.Config{N: 5, Delta: delta, TS: 0}, Config{})
	nw.StartExcept(3, 4)
	ok, err := nw.RunUntilAllDecided(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("majority did not decide with 2/5 down")
	}
}

func TestRestartedProcessDecidesWithinODelta(t *testing.T) {
	// Claim C4: a process that restarts after TS decides within O(δ) of
	// its restart (with decision gossip every 2δ, within ~3δ once others
	// have decided).
	ts := 200 * time.Millisecond
	eng, nw := cluster(t, 5, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.DropAll{}}, Config{})
	nw.Start()
	nw.CrashAt(4, 50*time.Millisecond)
	restartAt := ts + 500*time.Millisecond // long after the others decided
	nw.RestartAt(4, restartAt)
	eng.RunUntil(func() bool {
		_, d := nw.Node(4).Decided()
		return d
	}, 5*time.Second)
	if err := nw.Checker().Violation(); err != nil {
		t.Fatal(err)
	}

	at, decided := nw.Node(4).DecidedAtGlobal()
	if !decided {
		t.Fatal("restarted process did not decide")
	}
	if got := at - restartAt; got > 4*delta {
		t.Errorf("restarted process took %v (> 4δ) after restart to decide", got)
	}
	_ = eng
}

func TestRestartResumesFromStableStorage(t *testing.T) {
	// Crash a process mid-protocol (before TS) and restart it; its mbal
	// must not regress (it resumes "where it left off") and safety holds.
	ts := 300 * time.Millisecond
	_, nw := cluster(t, 9, simnet.Config{N: 3, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.3}}, Config{})
	nw.Start()
	nw.CrashAt(1, 60*time.Millisecond)
	nw.RestartAt(1, 150*time.Millisecond)
	requireAllDecided(t, nw, 5*time.Second)
	if err := nw.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
}

func TestObsoleteSessionMessagesDoNotDelayDecision(t *testing.T) {
	// Claim C3/C1 contrast: inject "obsolete" phase 1a messages carrying
	// the highest session any pre-TS message could legally have (s0+1,
	// per proof step 1). The modified algorithm must absorb them without
	// leaving its O(δ) envelope. Here all processes idle in session 1 at
	// TS (DropAll), so s0+1 = 2 and the injected ballots are session-2.
	ts := 300 * time.Millisecond
	eng, nw := cluster(t, 21, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.DropAll{}, Rho: 0.01}, Config{})
	// A "failed process 3" legally reached session 2 before TS; its old
	// phase 1a messages arrive at staggered times after TS.
	for i := 0; i < 8; i++ {
		at := ts + time.Duration(i)*3*delta
		nw.Inject(at, 3, consensus.ProcessID(i%5), P1a{Bal: consensus.BallotFor(2, 3, 5)})
	}
	nw.Start()
	last := requireAllDecided(t, nw, 5*time.Second)
	bound, _ := DecisionBound(Config{Delta: delta, Rho: 0.01})
	if got := last - ts; got > bound {
		t.Errorf("obsolete messages pushed decision to %v after TS, bound %v", got, bound)
	}
	_ = eng
}

func TestPreparedFastPathDecidesInThreeDelays(t *testing.T) {
	// Claim C5: with phase 1 pre-executed, decisions take ~3 message
	// delays (2a + 2b here, plus the notional proposal hop).
	_, nw := cluster(t, 2, simnet.Config{N: 5, Delta: delta, TS: 0}, Config{Prepared: true})
	nw.Start()
	last := requireAllDecided(t, nw, time.Second)
	if last > 3*delta {
		t.Errorf("prepared fast path decided at %v, want ≤ 3δ = %v", last, 3*delta)
	}
}

func TestSessionNumbersNeverSkipAheadOfMajority(t *testing.T) {
	// Proof step 1 invariant: a process can be in session s ≥ 2 only if a
	// majority of processes have been in session s−1. We verify the
	// weaker observable: per-process session series are nondecreasing and
	// the global max session never jumps by more than 1 at a time.
	ts := 200 * time.Millisecond
	_, nw := cluster(t, 31, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.4}}, Config{})
	nw.Start()
	requireAllDecided(t, nw, 5*time.Second)

	series := nw.Collector().Series("session")
	perProc := map[int]int64{}
	globalMax := int64(0)
	for _, s := range series {
		if prev, ok := perProc[s.Proc]; ok && s.Value < prev {
			t.Fatalf("process %d session regressed %d → %d", s.Proc, prev, s.Value)
		}
		perProc[s.Proc] = s.Value
		if s.Value > globalMax+1 {
			t.Fatalf("global session jumped %d → %d", globalMax, s.Value)
		}
		if s.Value > globalMax {
			globalMax = s.Value
		}
	}
	if globalMax == 0 {
		t.Fatal("no session progress recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                           // no delta
		{Delta: -time.Millisecond},   // negative delta
		{Delta: delta, Rho: 1.0},     // rho too large
		{Delta: delta, Sigma: delta}, // sigma below 4δ(1+ρ)/(1−ρ)
		{Delta: delta, Eps: -1},      // negative eps
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Delta: delta}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestDecisionBound(t *testing.T) {
	// With σ ≈ 4δ and ε ≪ δ the bound approaches the paper's 17δ.
	cfg := Config{Delta: delta, Sigma: 41 * time.Millisecond, Eps: delta / 100, Rho: 0.001}
	bound, err := DecisionBound(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inDelta := float64(bound) / float64(delta)
	if inDelta < 17 || inDelta > 17.6 {
		t.Errorf("bound = %.2fδ, want ≈ 17δ (ε+3τ+5δ with τ=σ≈4.1δ)", inDelta)
	}
	if _, err := DecisionBound(Config{}); err == nil {
		t.Error("DecisionBound should reject invalid config")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		eng := sim.NewEngine(77)
		factory := MustNew(Config{Delta: delta, Rho: 0.01})
		nw, err := simnet.New(eng, simnet.Config{N: 5, Delta: delta, TS: 150 * time.Millisecond, Policy: simnet.Chaos{DropProb: 0.5}, Rho: 0.01}, factory, distinctProposals(5))
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		if _, err := nw.RunUntilAllDecided(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		last, _ := nw.Checker().LastDecisionAmong(nw.AllIDs())
		return last, nw.Collector().TotalSent()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, m1, t2, m2)
	}
}

// TestSafetyUnderRandomSchedules is the core property test: across many
// random seeds, pre-stability chaos levels, and crash/restart schedules,
// the algorithm never violates agreement/validity/integrity. (Liveness is
// asserted only loosely here; the timing tests above pin it down.)
func TestSafetyUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := eng.Rand()
			n := 3 + rng.Intn(4) // 3..6
			ts := time.Duration(100+rng.Intn(300)) * time.Millisecond
			cfg := simnet.Config{
				N: n, Delta: delta, TS: ts,
				Policy: simnet.Chaos{DropProb: 0.3 + 0.5*rng.Float64()},
				Rho:    0.02 * rng.Float64(),
			}
			factory := MustNew(Config{Delta: delta, Rho: cfg.Rho})
			nw, err := simnet.New(eng, cfg, factory, distinctProposals(n))
			if err != nil {
				t.Fatal(err)
			}
			nw.Start()
			// Random minority crash/restart schedule before TS.
			crashes := rng.Intn(consensus.Majority(n))
			for i := 0; i < crashes; i++ {
				id := consensus.ProcessID(rng.Intn(n))
				at := time.Duration(rng.Int63n(int64(ts)))
				nw.CrashAt(id, at)
				if rng.Intn(2) == 0 {
					back := at + time.Duration(rng.Int63n(int64(ts)))
					nw.RestartAt(id, back)
				}
			}
			ok, err := nw.RunUntilAllDecided(20 * time.Second)
			if err != nil {
				t.Fatalf("safety violation: %v", err)
			}
			if !ok {
				t.Fatalf("no decision by horizon (decided %d/%d)", nw.Checker().DecidedCount(), n)
			}
		})
	}
}
