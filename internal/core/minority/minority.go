// Package minority implements minority dynamics, the contrarian member of
// the population-dynamics family analyzed in arXiv:2310.13558 ("Minority
// Dynamics and the Power of Synchronicity").
//
// The dynamics are binary: every process repeatedly samples three
// uniformly random processes and adopts the opinion that is in the
// *minority* among the sample — the lone dissenter of a two-versus-one
// split, and, when the sample is unanimous, the opinion *absent* from it
// (each process tracks the complement of its opinion as it observes it).
// That absent-opinion case is what distinguishes minority from a mere
// tiebreak rule: writing a for one opinion's population fraction and
// b = 1−a, a synchronous round maps a to b³+3ab², whose derivative at the
// balanced point a = ½ is −3/2 — balance is an unstable oscillating fixed
// point, so sampling noise is amplified by 3/2 per round until the whole
// population reaches one opinion and then flips it in lockstep every round
// (the paper's almost-consensus: unanimity whose value alternates).
//
// Synchronicity is load-bearing here, exactly as the paper's title says:
// the amplification argument needs the whole population to update
// simultaneously, and asynchronous (jittered) updates erode emerging
// majorities node by node instead. This implementation therefore paces its
// rounds in lockstep — unlike usd and majority it adds no per-arm jitter,
// so with undrifted clocks (ρ=0) every round timer fires at the same
// virtual instant, and because queries sent at a round boundary are
// delivered at strictly later (time, sequence) positions, every process
// steps on the *previous* round's opinions: a genuinely synchronous
// update. Nonzero ρ desynchronizes the rounds and the dynamics may stall
// at a mixed equilibrium; that failure mode is the paper's subject, not a
// bug.
//
// Termination reuses the streak criterion described in package usd. The
// sampling lag makes it sound during the oscillation too: a process always
// samples the generation its own opinion belongs to, so "my opinion equals
// every sample" holds every round once the population is unanimous, even
// as the unanimous value alternates, and the lockstep rounds mean
// same-round deciders share one current value while stragglers are caught
// by the Decided broadcast well before their next boundary. The dynamics
// remain the family's contrast case — binary opinion spaces only, no
// O(log n) guarantee in the paper's asynchronous settings — so the scaling
// assertions cover usd and 3majority while minority is exercised at small
// n, and the descriptor is Hidden like the rest of the dynamics family.
package minority

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// roundTimer drives the sampling rounds.
const roundTimer consensus.TimerID = 1

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyMinorityState

// samples is the per-round sample size the rule is defined over.
const samples = 3

// Config holds the dynamics parameters.
type Config struct {
	// Delta is δ.
	Delta time.Duration
	// RoundInterval is the local-clock gap between sampling rounds; it must
	// cover a query/reply round trip (> 2δ). Zero selects 3δ. Unlike the
	// other dynamics there is no per-arm jitter: the rule only converges
	// when the whole population updates in lockstep (see the package
	// comment).
	RoundInterval time.Duration
	// StreakLen is the number of consecutive unanimous rounds required to
	// decide. Zero selects log₂(n)+4 at construction time.
	StreakLen int
	// Rho is the clock-rate error bound. Accepted for interface symmetry,
	// but any nonzero value desynchronizes the rounds the rule depends on.
	Rho float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta <= 0 {
		return c, fmt.Errorf("minority: Delta must be positive, got %v", c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return c, fmt.Errorf("minority: Rho must be in [0,1), got %v", c.Rho)
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 3 * c.Delta
	}
	if c.RoundInterval <= 2*c.Delta {
		return c, fmt.Errorf("minority: RoundInterval %v must exceed a 2δ round trip (δ=%v)", c.RoundInterval, c.Delta)
	}
	if c.StreakLen < 0 {
		return c, fmt.Errorf("minority: StreakLen must be ≥ 0, got %d", c.StreakLen)
	}
	return c, nil
}

// defaultStreak matches package majority's three-sample analysis.
func defaultStreak(n int) int {
	return bits.Len(uint(n)) + 4
}

// New validates the configuration and returns a process factory.
func New(cfg Config) (consensus.Factory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		c := cfg
		if c.StreakLen == 0 {
			c.StreakLen = defaultStreak(n)
		}
		return &Process{id: id, n: n, cfg: c, opinion: proposal}
	}, nil
}

// durable is the stable-storage image.
type durable struct {
	Opinion consensus.Value
	Decided bool
}

// Process is one minority-dynamics participant.
type Process struct {
	id  consensus.ProcessID
	n   int
	cfg Config
	env consensus.Environment

	opinion consensus.Value
	// other is the complement opinion as last observed — the value the
	// binary rule adopts when a unanimous sample leaves the minority
	// opinion absent. Volatile: a restarted process re-learns it from its
	// first mixed sample.
	other   consensus.Value
	round   int64
	sample  [samples]consensus.Value
	got     int
	streak  int
	decided bool
}

// Init implements consensus.Process.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	var st durable
	if ok, err := env.Store().Get(stateKey, &st); err == nil && ok {
		p.opinion = st.Opinion
		p.decided = st.Decided
	}
	if p.decided {
		p.env.Decide(p.opinion)
		return
	}
	p.beginRound()
	p.armRound()
}

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	switch m := m.(type) {
	case Query:
		p.env.Send(from, Reply{Round: m.Round, Opinion: p.opinion})
	case Reply:
		if p.decided || m.Round != p.round || p.got >= samples {
			return
		}
		if m.Opinion != p.opinion {
			p.other = m.Opinion
		}
		p.sample[p.got] = m.Opinion
		p.got++
	case Decided:
		p.adopt(m.Val)
	}
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	if id != roundTimer || p.decided {
		return
	}
	if p.got == samples {
		p.step()
		if p.decided {
			return
		}
	}
	p.beginRound()
	p.armRound()
}

// beginRound starts the next sampling round: query three uniformly random
// processes (with replacement, self included).
func (p *Process) beginRound() {
	p.round++
	p.got = 0
	for i := 0; i < samples; i++ {
		peer := consensus.ProcessID(p.env.Rand().Intn(p.n))
		p.env.Send(peer, Query{Round: p.round})
	}
}

// armRound schedules the next round tick. Deliberately jitter-free: the
// population must update in lockstep for the contrarian rule to amplify
// bias instead of eroding it.
func (p *Process) armRound() {
	p.env.SetTimer(roundTimer, p.cfg.RoundInterval)
}

// step applies the minority rule to the completed round's samples and
// advances the decision streak (judged on the pre-update state; the
// sampling lag keeps it sound through the lockstep oscillation, see the
// package comment).
func (p *Process) step() {
	unanimous := p.sample[0] == p.opinion && p.sample[1] == p.opinion && p.sample[2] == p.opinion
	s0, s1, s2 := p.sample[0], p.sample[1], p.sample[2]
	switch {
	case s0 == s1 && s1 == s2:
		// Unanimous sample: the minority opinion is the one absent from
		// it. Adopt the complement when one is known — the binary
		// oscillation — and the sample itself when none is (a one-opinion
		// population, already a fixed point).
		if p.other != "" && p.other != s0 {
			p.setOpinion(p.other)
		} else {
			p.setOpinion(s0)
		}
	case s0 == s1:
		p.setOpinion(s2)
	case s0 == s2:
		p.setOpinion(s1)
	case s1 == s2:
		p.setOpinion(s0)
	default:
		// Three or more opinions leave no unique minority; the analyzed
		// dynamics are binary. Take the first sample as a tiebreak.
		p.setOpinion(s0)
	}
	if unanimous {
		p.streak++
	} else {
		p.streak = 0
	}
	if p.streak >= p.cfg.StreakLen {
		p.decided = true
		p.persist()
		p.env.CancelTimer(roundTimer)
		p.env.Decide(p.opinion)
		p.env.Broadcast(Decided{Val: p.opinion})
	}
}

// setOpinion installs a possibly new opinion, persisting only on change
// and remembering the displaced opinion as the complement.
func (p *Process) setOpinion(v consensus.Value) {
	if v == p.opinion {
		return
	}
	p.other = p.opinion
	p.opinion = v
	p.persist()
}

// adopt takes a decision learned from a Decided broadcast; see usd.adopt.
func (p *Process) adopt(v consensus.Value) {
	if p.decided {
		return
	}
	p.decided = true
	p.opinion = v
	p.streak = 0
	p.persist()
	p.env.CancelTimer(roundTimer)
	p.env.Decide(v)
}

// persist writes the durable image; failures are logged, not fatal.
func (p *Process) persist() {
	if err := p.env.Store().Put(stateKey, durable{Opinion: p.opinion, Decided: p.decided}); err != nil {
		p.env.Logf("minority: persist: %v", err)
	}
}
