package minority

import "repro/internal/core/consensus"

// Query asks a uniformly sampled peer for its current opinion. Round lets
// the sampler discard replies that straggle in after the round closed.
type Query struct {
	Round int64
}

// Type implements consensus.Message.
func (Query) Type() string { return "min-query" }

// Reply returns the responder's opinion for one sampling round.
type Reply struct {
	Round   int64
	Opinion consensus.Value
}

// Type implements consensus.Message.
func (Reply) Type() string { return "min-reply" }

// Decided announces a threshold decision so the rest of the population can
// stop sampling. Receivers adopt without re-broadcasting.
type Decided struct {
	Val consensus.Value
}

// Type implements consensus.Message.
func (Decided) Type() string { return "min-decided" }
