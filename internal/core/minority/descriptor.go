package minority

import (
	"repro/internal/core/consensus"
	"repro/internal/protocol"
)

// Descriptor publishes minority dynamics to the protocol registry. Hidden
// like the rest of the dynamics family — and doubly so here: the binary
// contrarian rule converges only under lockstep rounds (the paper's
// "power of synchronicity") and exists in the registry as the contrast
// case the O(log n) scaling assertions are checked against.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name:   "minority",
		Doc:    "minority dynamics (arXiv:2310.13558) — sample three, adopt the minority; converges only in lockstep rounds, the family's contrast case",
		Hidden: true,
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta, Rho: p.Rho})
		},
		Messages: []consensus.Message{Query{}, Reply{}, Decided{}},
	}
}
