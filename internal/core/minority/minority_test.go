package minority_test

import (
	"testing"
	"time"

	"repro/internal/core/minority"
	"repro/internal/harness"
)

const delta = 10 * time.Millisecond

// TestConvergesSmallN exercises minority dynamics where poly(n) still fits
// a test horizon. The contrarian rule erodes emerging majorities, so the
// population is deliberately small and the virtual horizon generous; the
// O(log n) scaling assertions elsewhere intentionally exclude this
// protocol (it is the registry's contrast case).
func TestConvergesSmallN(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res, err := harness.Run(harness.Config{
			Protocol:    "minority",
			N:           21,
			Delta:       delta,
			Seed:        seed,
			OpinionPool: 2,
			Horizon:     10 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: safety violation: %v", seed, res.Violation)
		}
		if !res.Decided {
			t.Fatalf("seed %d: population did not decide (last=%v)", seed, res.LastDecision)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []minority.Config{
		{},                                   // missing Delta
		{Delta: delta, Rho: 1},               // Rho out of range
		{Delta: delta, RoundInterval: delta}, // interval inside round trip
	}
	for i, cfg := range cases {
		if _, err := minority.New(cfg); err == nil {
			t.Errorf("case %d: config %+v unexpectedly accepted", i, cfg)
		}
	}
	if _, err := minority.New(minority.Config{Delta: delta}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
