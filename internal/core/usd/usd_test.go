package usd_test

import (
	"testing"
	"time"

	"repro/internal/core/usd"
	"repro/internal/harness"
)

const delta = 10 * time.Millisecond

// run executes one USD population run with a bounded opinion space.
func run(t *testing.T, n, pool int, seed int64) harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{
		Protocol:    "usd",
		N:           n,
		Delta:       delta,
		Seed:        seed,
		OpinionPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation: %v", res.Violation)
	}
	return res
}

// TestConvergesBoundedOpinions is the basic population run: every process
// decides, on one of the proposed opinions, across seeds.
func TestConvergesBoundedOpinions(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res := run(t, 100, 2, seed)
		if !res.Decided {
			t.Fatalf("seed %d: population did not decide (last=%v)", seed, res.LastDecision)
		}
		if res.Value != "v0" && res.Value != "v1" {
			t.Fatalf("seed %d: decided %q, not a proposed opinion", seed, res.Value)
		}
	}
}

// TestManyOpinions starts from the worst case for the undecided-state
// mechanism: every process proposes a distinct opinion.
func TestManyOpinions(t *testing.T) {
	res := run(t, 100, 100, 1)
	if !res.Decided {
		t.Fatalf("population did not decide from distinct opinions (last=%v)", res.LastDecision)
	}
}

// TestRestartRejoins crashes one process before the population decides and
// restarts it after; decided peers' replies pull it forward to the same
// decision.
func TestRestartRejoins(t *testing.T) {
	res, err := harness.Run(harness.Config{
		Protocol:    "usd",
		N:           50,
		Delta:       delta,
		Seed:        1,
		OpinionPool: 2,
		Restarts: []harness.Restart{
			{Proc: 3, CrashAt: 50 * time.Millisecond, RestartAt: 3 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation: %v", res.Violation)
	}
	if !res.Decided {
		t.Fatal("restarted process never caught up")
	}
	if _, ok := res.RestartRecovery[3]; !ok {
		t.Fatal("no recovery measurement for the restarted process")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []usd.Config{
		{},                                       // missing Delta
		{Delta: delta, Rho: 1},                   // Rho out of range
		{Delta: delta, RoundInterval: 2 * delta}, // interval inside round trip
		{Delta: delta, StreakLen: -1},            // negative streak
	}
	for i, cfg := range cases {
		if _, err := usd.New(cfg); err == nil {
			t.Errorf("case %d: config %+v unexpectedly accepted", i, cfg)
		}
	}
	if _, err := usd.New(usd.Config{Delta: delta}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
