package usd

import "repro/internal/core/consensus"

// Query asks a uniformly sampled peer for its current state. Round lets the
// sampler discard replies that straggle in after the round closed.
type Query struct {
	Round int64
}

// Type implements consensus.Message.
func (Query) Type() string { return "usd-query" }

// Reply returns the responder's state for one sampling round. Undecided
// marks the USD-specific third state, in which Opinion is stale.
type Reply struct {
	Round     int64
	Opinion   consensus.Value
	Undecided bool
}

// Type implements consensus.Message.
func (Reply) Type() string { return "usd-reply" }

// Decided announces a threshold decision so the rest of the population can
// stop sampling. Receivers adopt without re-broadcasting.
type Decided struct {
	Val consensus.Value
}

// Type implements consensus.Message.
func (Decided) Type() string { return "usd-decided" }
