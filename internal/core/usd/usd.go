// Package usd implements synchronous undecided-state dynamics (USD), the
// population-scale opinion protocol analyzed by Bankhamer, Berenbrink,
// Biermeier, Elsässer, Hosseinpour, Kaaser and Kling (arXiv:2103.10366).
//
// Every process holds an opinion (initially its proposal) and repeatedly
// samples one uniformly random process:
//
//   - a process with an opinion that samples a different opinion becomes
//     undecided (it drops its opinion);
//   - an undecided process adopts whatever opinion it samples (staying
//     undecided when it samples another undecided process);
//   - otherwise nothing changes.
//
// The undecided state is the mechanism that makes the dynamics fast: ties
// between opinions are broken through the undecided population rather than
// by direct opinion switches, and with a bounded opinion space the whole
// population reaches a single opinion within O(log n) rounds w.h.p. —
// consensus time grows with the logarithm of the cluster size, which the
// population-dynamics sweep checks at n=100, 1000, 5000.
//
// Termination on top of the dynamics is the standard local criterion: a
// process that has held the same opinion through StreakLen consecutive
// unanimous rounds (its own opinion equal to every sample) decides it and
// broadcasts a Decided message; everyone else adopts that decision on
// receipt, without re-broadcasting. StreakLen defaults to 2·log₂(n)+4
// rounds, making a premature decision (a lucky streak before global
// convergence) a ≤ 1/n²-per-window event while adding only O(log n) rounds
// to the consensus time. Decisions remain guarded by the run's safety
// checker like every other protocol's.
//
// This is a gossip protocol, not an agreement protocol in the paper's
// model: its guarantees are probabilistic and its theory is about N → ∞.
// Its descriptor is therefore Hidden — it runs when named (the
// population-dynamics scenarios) but does not join default paper
// comparisons at N=5.
package usd

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// roundTimer drives the sampling rounds.
const roundTimer consensus.TimerID = 1

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyUSDState

// Config holds the dynamics parameters.
type Config struct {
	// Delta is δ.
	Delta time.Duration
	// RoundInterval is the local-clock gap between sampling rounds; it must
	// cover a query/reply round trip (> 2δ). Zero selects 3δ. Each arm adds
	// a uniform jitter from [0, δ) so the population's rounds interleave —
	// desynchronized decisions let the first Decided broadcast suppress
	// most of the others.
	RoundInterval time.Duration
	// StreakLen is the number of consecutive unanimous rounds required to
	// decide. Zero selects 2·log₂(n)+4 at construction time, when the
	// cluster size is known.
	StreakLen int
	// Rho is the clock-rate error bound (accepted for interface symmetry;
	// the dynamics are timeout-free beyond the round pacing).
	Rho float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta <= 0 {
		return c, fmt.Errorf("usd: Delta must be positive, got %v", c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return c, fmt.Errorf("usd: Rho must be in [0,1), got %v", c.Rho)
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 3 * c.Delta
	}
	if c.RoundInterval <= 2*c.Delta {
		return c, fmt.Errorf("usd: RoundInterval %v must exceed a 2δ round trip (δ=%v)", c.RoundInterval, c.Delta)
	}
	if c.StreakLen < 0 {
		return c, fmt.Errorf("usd: StreakLen must be ≥ 0, got %d", c.StreakLen)
	}
	return c, nil
}

// defaultStreak is the decision streak for a cluster of n: twice the
// opinion-fraction analysis' log₂(n) plus slack, so a single-sample
// protocol's chance of a lucky pre-convergence streak is ≤ 1/n² per window.
func defaultStreak(n int) int {
	return 2*bits.Len(uint(n)) + 4
}

// New validates the configuration and returns a process factory.
func New(cfg Config) (consensus.Factory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		c := cfg
		if c.StreakLen == 0 {
			c.StreakLen = defaultStreak(n)
		}
		return &Process{id: id, n: n, cfg: c, opinion: proposal}
	}, nil
}

// durable is the stable-storage image: the opinion survives a restart so a
// revived process rejoins the dynamics where it left off.
type durable struct {
	Opinion   consensus.Value
	Undecided bool
	Decided   bool
}

// Process is one USD participant.
type Process struct {
	id  consensus.ProcessID
	n   int
	cfg Config
	env consensus.Environment

	opinion   consensus.Value
	undecided bool
	round     int64
	// sample collects the current round's reply (USD samples one process
	// per round); got counts how many arrived.
	sample  consensus.Value
	sampleU bool
	got     int
	// streak counts consecutive unanimous rounds; StreakLen of them decide.
	streak  int
	decided bool
}

// Init implements consensus.Process.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	var st durable
	if ok, err := env.Store().Get(stateKey, &st); err == nil && ok {
		p.opinion = st.Opinion
		p.undecided = st.Undecided
		p.decided = st.Decided
	}
	if p.decided {
		p.env.Decide(p.opinion)
		return
	}
	p.beginRound()
	p.armRound()
}

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	switch m := m.(type) {
	case Query:
		// Answer with the current state; decided processes answer with
		// their decision, pulling stragglers forward.
		p.env.Send(from, Reply{Round: m.Round, Opinion: p.opinion, Undecided: p.undecided})
	case Reply:
		if p.decided || m.Round != p.round || p.got >= 1 {
			return
		}
		p.sample = m.Opinion
		p.sampleU = m.Undecided
		p.got++
	case Decided:
		p.adopt(m.Val)
	}
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	if id != roundTimer || p.decided {
		return
	}
	if p.got == 1 {
		p.step()
		if p.decided {
			return
		}
	}
	p.beginRound()
	p.armRound()
}

// beginRound starts the next sampling round: pick one uniformly random
// process (self included, as the dynamics prescribe) and query its state.
func (p *Process) beginRound() {
	p.round++
	p.got = 0
	peer := consensus.ProcessID(p.env.Rand().Intn(p.n))
	p.env.Send(peer, Query{Round: p.round})
}

// armRound schedules the next round tick with fresh jitter.
func (p *Process) armRound() {
	jitter := time.Duration(p.env.Rand().Int63n(int64(p.cfg.Delta)))
	p.env.SetTimer(roundTimer, p.cfg.RoundInterval+jitter)
}

// step applies the USD update rule to the completed round's sample and
// advances the decision streak.
func (p *Process) step() {
	// Unanimity is judged on the pre-update state: an opinionated process
	// whose sample matches keeps its opinion, so the update is a no-op on
	// exactly the rounds that extend the streak.
	unanimous := !p.undecided && !p.sampleU && p.sample == p.opinion
	switch {
	case p.undecided:
		if !p.sampleU {
			p.opinion = p.sample
			p.undecided = false
			p.persist()
		}
	case p.sampleU:
		// Sampling an undecided process changes nothing.
	case p.sample != p.opinion:
		p.undecided = true
		p.persist()
	}
	if unanimous {
		p.streak++
	} else {
		p.streak = 0
	}
	if p.streak >= p.cfg.StreakLen {
		p.decided = true
		p.persist()
		p.env.CancelTimer(roundTimer)
		p.env.Decide(p.opinion)
		// One broadcast per threshold decision; adopters stay silent, so
		// the decision wave is O(deciders·n) deliveries, not O(n²) always.
		p.env.Broadcast(Decided{Val: p.opinion})
	}
}

// adopt takes a decision learned from a Decided broadcast. Decisions are
// sticky: a process that already decided ignores later broadcasts (any
// conflict is the original deciders' and the safety checker flags it).
func (p *Process) adopt(v consensus.Value) {
	if p.decided {
		return
	}
	p.decided = true
	p.opinion = v
	p.undecided = false
	p.streak = 0
	p.persist()
	p.env.CancelTimer(roundTimer)
	p.env.Decide(v)
}

// persist writes the durable image; failures are logged, not fatal (the
// in-memory state remains correct for this incarnation).
func (p *Process) persist() {
	if err := p.env.Store().Put(stateKey, durable{Opinion: p.opinion, Undecided: p.undecided, Decided: p.decided}); err != nil {
		p.env.Logf("usd: persist: %v", err)
	}
}
