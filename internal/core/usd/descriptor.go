package usd

import (
	"repro/internal/core/consensus"
	"repro/internal/protocol"
)

// Descriptor publishes USD to the protocol registry. The descriptor is
// Hidden: population dynamics give probabilistic, large-N guarantees rather
// than the paper's worst-case agreement bounds, so the protocol resolves by
// name (the population-dynamics scenarios and sweeps) but never joins the
// default N=5 paper comparisons. It declares no DecisionBound — O(log n)
// rounds w.h.p. is not a worst-case latency.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name:   "usd",
		Doc:    "undecided-state dynamics (arXiv:2103.10366) — population-scale opinion consensus in O(log n) rounds w.h.p.",
		Hidden: true,
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta, Rho: p.Rho})
		},
		Messages: []consensus.Message{Query{}, Reply{}, Decided{}},
	}
}
