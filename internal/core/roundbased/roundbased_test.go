package roundbased

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const delta = 10 * time.Millisecond

func distinctProposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func cluster(t *testing.T, seed int64, netCfg simnet.Config) (*sim.Engine, *simnet.Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw, err := simnet.New(eng, netCfg, MustNew(Config{Delta: netCfg.Delta, Rho: netCfg.Rho}), distinctProposals(netCfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func requireAllDecided(t *testing.T, nw *simnet.Network, horizon time.Duration) time.Duration {
	t.Helper()
	ok, err := nw.RunUntilAllDecided(horizon)
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if !ok {
		t.Fatalf("cluster did not decide by %v (decided %d/%d)",
			horizon, nw.Checker().DecidedCount(), nw.Config().N)
	}
	last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
	return last
}

func TestDecidesSynchronous(t *testing.T) {
	for _, n := range []int{1, 3, 5, 9} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, nw := cluster(t, 1, simnet.Config{N: n, Delta: delta, TS: 0})
			nw.Start()
			last := requireAllDecided(t, nw, 5*time.Second)
			// Round 0's coordinator is up: estimate + coord + ack +
			// decided ≈ 4δ.
			if last > 5*delta {
				t.Errorf("decided at %v, want ≤ 5δ with a live coordinator", last)
			}
		})
	}
}

func TestDecidesAfterTSWithChaos(t *testing.T) {
	ts := 200 * time.Millisecond
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		_, nw := cluster(t, seed, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.7}, Rho: 0.01})
		nw.Start()
		last := requireAllDecided(t, nw, 10*time.Second)
		// Generous envelope: a couple of timeouts plus a clean round.
		if last > ts+4*5*delta+10*delta {
			t.Errorf("seed %d: decided at %v, unexpectedly slow", seed, last)
		}
	}
}

// TestDeadCoordinatorsCostLinearTime is claim C2: k crashed coordinators
// cost ~k·Θ after stabilization.
func TestDeadCoordinatorsCostLinearTime(t *testing.T) {
	run := func(k int) time.Duration {
		const n = 9
		ts := 100 * time.Millisecond
		eng := sim.NewEngine(7)
		nw, err := simnet.New(eng, simnet.Config{N: n, Delta: delta, TS: ts, Policy: simnet.DropAll{}},
			MustNew(Config{Delta: delta}), distinctProposals(n))
		if err != nil {
			t.Fatal(err)
		}
		nw.StartExcept(adversary.CoordinatorKiller(n, k)...)
		ok, err := nw.RunUntilAllDecided(time.Minute)
		if err != nil {
			t.Fatalf("k=%d: safety violation: %v", k, err)
		}
		if !ok {
			t.Fatalf("k=%d: no decision", k)
		}
		last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
		return last - ts
	}
	lat0 := run(0)
	lat2 := run(2)
	lat4 := run(4)
	theta := 5 * delta
	if lat2 <= lat0 || lat4 <= lat2 {
		t.Fatalf("latency not increasing with dead coordinators: %v %v %v", lat0, lat2, lat4)
	}
	// k dead coordinators cost at least (k−1)·Θ beyond the base case
	// (the first timeout may overlap the stabilization transient).
	if lat4-lat0 < 3*theta {
		t.Errorf("4 dead coordinators only cost %v, want ≥ 3Θ = %v", lat4-lat0, 3*theta)
	}
	t.Logf("round-based latency after TS: k=0 %v, k=2 %v, k=4 %v", lat0, lat2, lat4)
}

func TestLockedValueWinsAcrossRounds(t *testing.T) {
	// If a value is locked (majority acked) in round r, later rounds must
	// choose it. Simulate by seeding a high tsRound estimate: process 2
	// restores a durable state claiming round-5 lock on "v2"; the next
	// coordinator must pick it.
	eng := sim.NewEngine(3)
	n := 3
	nw, err := simnet.New(eng, simnet.Config{N: n, Delta: delta, TS: 0}, MustNew(Config{Delta: delta}), distinctProposals(n))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-seed process 2's stable storage before it starts.
	if err := nw.Node(2).Store().Put(stateKey, durable{Est: "v2", TSRound: 5, Round: 6}); err != nil {
		t.Fatal(err)
	}
	nw.Start()
	requireAllDecided(t, nw, 10*time.Second)
	for _, d := range nw.Checker().Decisions() {
		if d.Value != "v2" {
			t.Fatalf("process %d decided %q, want locked value v2", d.Proc, d.Value)
		}
	}
}

func TestRoundNumbersRespectMajorityEntry(t *testing.T) {
	// The paper's rule: the global max round never jumps by more than one
	// past what a majority has begun. Observable proxy: per-process round
	// series are nondecreasing and global max advances by ≤ 1.
	ts := 200 * time.Millisecond
	_, nw := cluster(t, 13, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.5}})
	nw.Start()
	requireAllDecided(t, nw, 10*time.Second)
	perProc := map[int]int64{}
	globalMax := int64(0)
	for _, s := range nw.Collector().Series("round") {
		if prev, ok := perProc[s.Proc]; ok && s.Value < prev {
			t.Fatalf("process %d round regressed %d → %d", s.Proc, prev, s.Value)
		}
		perProc[s.Proc] = s.Value
		if s.Value > globalMax+1 {
			t.Fatalf("global round jumped %d → %d", globalMax, s.Value)
		}
		if s.Value > globalMax {
			globalMax = s.Value
		}
	}
}

func TestRestartResumesRound(t *testing.T) {
	ts := 200 * time.Millisecond
	eng, nw := cluster(t, 5, simnet.Config{N: 3, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.4}})
	nw.Start()
	nw.CrashAt(1, 80*time.Millisecond)
	nw.RestartAt(1, ts+400*time.Millisecond)
	eng.RunUntil(func() bool {
		_, d := nw.Node(1).Decided()
		return d
	}, 10*time.Second)
	if err := nw.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
	if _, d := nw.Node(1).Decided(); !d {
		t.Fatal("restarted process did not decide")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Delta: delta, Theta: delta},
		{Delta: delta, Rho: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestSafetyUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := eng.Rand()
			n := 3 + rng.Intn(4)
			ts := time.Duration(100+rng.Intn(200)) * time.Millisecond
			nw, err := simnet.New(eng, simnet.Config{
				N: n, Delta: delta, TS: ts,
				Policy: simnet.Chaos{DropProb: 0.3 + 0.5*rng.Float64()},
				Rho:    0.02 * rng.Float64(),
			}, MustNew(Config{Delta: delta, Rho: 0.02}), distinctProposals(n))
			if err != nil {
				t.Fatal(err)
			}
			nw.Start()
			crashes := rng.Intn(consensus.Majority(n))
			for i := 0; i < crashes; i++ {
				id := consensus.ProcessID(rng.Intn(n))
				at := time.Duration(rng.Int63n(int64(ts)))
				nw.CrashAt(id, at)
				nw.RestartAt(id, at+time.Duration(rng.Int63n(int64(ts))))
			}
			ok, err := nw.RunUntilAllDecided(30 * time.Second)
			if err != nil {
				t.Fatalf("safety violation: %v", err)
			}
			if !ok {
				t.Fatalf("no decision by horizon (decided %d/%d)", nw.Checker().DecidedCount(), n)
			}
		})
	}
}
