package roundbased

import "repro/internal/core/consensus"

// InRound announces that the sender has begun the given round; the
// majority-entry rule counts these.
type InRound struct {
	Round int64
}

// Type implements consensus.Message.
func (InRound) Type() string { return "inround" }

// Estimate carries a process's current estimate and its lock round to the
// round's coordinator.
type Estimate struct {
	Round   int64
	Est     consensus.Value
	TSRound int64
}

// Type implements consensus.Message.
func (Estimate) Type() string { return "estimate" }

// Coord is the coordinator's chosen value for the round.
type Coord struct {
	Round int64
	V     consensus.Value
}

// Type implements consensus.Message.
func (Coord) Type() string { return "coord" }

// Ack confirms that the sender adopted the coordinator's value.
type Ack struct {
	Round int64
}

// Type implements consensus.Message.
func (Ack) Type() string { return "ack" }

// Decided announces a decision.
type Decided struct {
	Val consensus.Value
}

// Type implements consensus.Message.
func (Decided) Type() string { return "decided" }
