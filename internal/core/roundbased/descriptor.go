package roundbased

import (
	"repro/internal/core/consensus"
	"repro/internal/protocol"
)

// Descriptor returns the protocol-registry entry for the rotating-
// coordinator round-based baseline. It is registered by the protocol/all
// package. The obsolete-message attack is undefined for it; its worst case
// is dead coordinators (harness.DeadCoordinators), which is
// protocol-independent.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name: "roundbased",
		Doc:  "rotating-coordinator round-based (§3, claim C2): O(Nδ) after TS under dead coordinators",
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta, Rho: p.Rho})
		},
		Messages: []consensus.Message{
			InRound{}, Estimate{}, Coord{}, Ack{}, Decided{},
		},
	}
}
