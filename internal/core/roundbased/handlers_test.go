package roundbased

// Handler-level unit tests for the rotating-coordinator algorithm.

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/consensus/consensustest"
)

const (
	n5     = 5
	uDelta = 10 * time.Millisecond
)

func boot(t *testing.T, id consensus.ProcessID, proposal consensus.Value) (*Process, *consensustest.Env) {
	t.Helper()
	p := MustNew(Config{Delta: uDelta})(id, n5, proposal).(*Process)
	env := consensustest.New(id, n5)
	p.Init(env)
	return p, env
}

func TestRoundZeroEntry(t *testing.T) {
	p, env := boot(t, 1, "v1")
	if env.BroadcastsOf("inround") != 1 {
		t.Fatal("round entry must broadcast InRound")
	}
	// Estimate goes to coordinator of round 0 = process 0.
	found := false
	for _, m := range env.SentTo(0) {
		if e, ok := m.(Estimate); ok && e.Round == 0 && e.Est == "v1" && e.TSRound == -1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no initial estimate to coordinator: %v", env.Outbox)
	}
	if _, ok := env.Timers[roundTimer]; !ok {
		t.Fatal("round timer not armed")
	}
	_ = p
}

func TestCoordinatorPicksMaxTSRound(t *testing.T) {
	p, env := boot(t, 0, "v0") // coordinator of round 0
	env.ClearOutbox()
	p.HandleMessage(0, Estimate{Round: 0, Est: "v0", TSRound: -1})
	p.HandleMessage(1, Estimate{Round: 0, Est: "newest", TSRound: 7})
	if env.CountType("coord") != 0 {
		t.Fatal("coordinated before majority of estimates")
	}
	p.HandleMessage(2, Estimate{Round: 0, Est: "older", TSRound: 3})
	if env.BroadcastsOf("coord") != 1 {
		t.Fatalf("coord broadcasts = %d, want 1", env.BroadcastsOf("coord"))
	}
	if m := env.SentTo(0)[0].(Coord); m.V != "newest" {
		t.Fatalf("coordinated %q, want the max-tsRound estimate", m.V)
	}
	if p.st.CoordRound != 0 || p.st.CoordVal != "newest" {
		t.Fatalf("coordination not made durable: %+v", p.st)
	}
}

func TestCoordAdoptionLocksAndAcks(t *testing.T) {
	p, env := boot(t, 3, "v3")
	env.ClearOutbox()
	p.HandleMessage(0, Coord{Round: 0, V: "chosen"})
	if p.st.Est != "chosen" || p.st.TSRound != 0 {
		t.Fatalf("lock not taken: %+v", p.st)
	}
	acks := 0
	for _, m := range env.SentTo(0) {
		if _, ok := m.(Ack); ok {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("acks to coordinator = %d, want 1", acks)
	}
}

func TestMajorityAcksDecide(t *testing.T) {
	p, env := boot(t, 0, "v0")
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, Estimate{Round: 0, Est: "v0", TSRound: -1})
	}
	env.ClearOutbox()
	p.HandleMessage(1, Ack{Round: 0})
	p.HandleMessage(2, Ack{Round: 0})
	if _, decided := env.Decided(); decided {
		t.Fatal("decided with 2 acks")
	}
	p.HandleMessage(3, Ack{Round: 0})
	v, decided := env.Decided()
	if !decided || v != "v0" {
		t.Fatalf("decision = (%q,%v)", v, decided)
	}
	if env.BroadcastsOf("decided") != 1 {
		t.Fatal("decision not broadcast")
	}
}

func TestTimeoutNeedsMajorityInRound(t *testing.T) {
	p, env := boot(t, 1, "v1")
	env.ClearOutbox()
	p.HandleTimer(roundTimer)
	if p.st.Round != 0 {
		t.Fatal("advanced without majority InRound")
	}
	// Timeout re-announces for recovery.
	if env.BroadcastsOf("inround") != 1 || env.CountType("estimate") != 1 {
		t.Fatalf("timeout did not retransmit: %v", env.Outbox)
	}
	p.HandleMessage(2, InRound{Round: 0})
	if p.st.Round != 0 {
		t.Fatal("advanced with 2/5 in round")
	}
	p.HandleMessage(3, InRound{Round: 0})
	if p.st.Round != 1 {
		t.Fatalf("round = %d, want 1 after majority + timeout", p.st.Round)
	}
}

func TestJumpToHigherRound(t *testing.T) {
	p, env := boot(t, 1, "v1")
	env.ClearOutbox()
	p.HandleMessage(4, InRound{Round: 7})
	if p.st.Round != 7 {
		t.Fatalf("round = %d, want 7 (jump)", p.st.Round)
	}
	// Jump re-announces and re-estimates to round 7's coordinator (2).
	if env.BroadcastsOf("inround") != 1 {
		t.Fatal("jump did not announce the new round")
	}
	if len(env.SentTo(2)) == 0 {
		t.Fatal("no estimate to round-7 coordinator")
	}
}

func TestLowerRoundMessagesIgnored(t *testing.T) {
	p, env := boot(t, 1, "v1")
	p.HandleMessage(4, InRound{Round: 3})
	env.ClearOutbox()
	p.HandleMessage(0, Coord{Round: 0, V: "stale"})
	if p.st.Est == "stale" {
		t.Fatal("adopted a stale coordination")
	}
	if len(env.Outbox) != 0 {
		t.Fatalf("reacted to stale message: %v", env.Outbox)
	}
}

func TestCoordinatorRestartResendsSameValue(t *testing.T) {
	p, env := boot(t, 0, "v0")
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, Estimate{Round: 0, Est: "v0", TSRound: -1})
	}
	// Restart the coordinator mid-round.
	p2 := MustNew(Config{Delta: uDelta})(0, n5, "v0").(*Process)
	env2 := consensustest.New(0, n5)
	env2.Storage = env.Storage
	p2.Init(env2)
	env2.ClearOutbox()
	// New estimates trickle in; the coordinator must re-send "v0" — the
	// recorded coordination — even if the new estimates would pick
	// something else.
	p2.HandleMessage(4, Estimate{Round: 0, Est: "other", TSRound: 99})
	coords := 0
	for _, s := range env2.Outbox {
		if c, ok := s.Msg.(Coord); ok {
			if c.V != "v0" {
				t.Fatalf("restarted coordinator equivocated: %q", c.V)
			}
			coords++
		}
	}
	if coords == 0 {
		t.Fatal("restarted coordinator did not re-send its value")
	}
}

func TestDecidedReplies(t *testing.T) {
	p, env := boot(t, 2, "v2")
	p.HandleMessage(0, Decided{Val: "v"})
	env.ClearOutbox()
	p.HandleMessage(3, InRound{Round: 5})
	msgs := env.SentTo(3)
	if len(msgs) != 1 {
		t.Fatalf("decided process sent %v", env.Outbox)
	}
	if d, ok := msgs[0].(Decided); !ok || d.Val != "v" {
		t.Fatalf("reply = %#v", msgs[0])
	}
}
