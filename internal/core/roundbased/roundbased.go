// Package roundbased implements the classic rotating-coordinator
// round-based consensus algorithm discussed in §3 of the paper (the shape
// of Dwork-Lynch-Stockmeyer and Chandra-Toueg ◇S algorithms), including the
// majority-round-entry rule the paper highlights:
//
//	"… not allowing a process spontaneously to enter round i+1 until it has
//	 learned that a majority of the processes have begun round i."
//
// That rule eliminates the obsolete-message problem (no round number can
// run ahead of the nonfaulty majority by more than one), but it does not fix
// the coordinator problem: round r is coordinated by process r mod N, and up
// to ⌈N/2⌉−1 consecutive coordinators may have failed before stabilization,
// each costing a timeout of Θ = O(δ). Hence this algorithm needs O(Nδ)
// after TS in the worst case (claim C2), which is what the paper's modified
// Paxos avoids.
//
// Round structure (standard ◇S skeleton, locked by (estimate, tsRound)):
//
//  1. On entering round r every process broadcasts InRound{r} and sends
//     Estimate{r, est, tsRound} to the coordinator, then arms a timer Θ.
//  2. The coordinator, on a majority of estimates, broadcasts
//     Coord{r, v} where v is the estimate with the highest tsRound.
//  3. On Coord{r, v} a process adopts (est, tsRound) = (v, r), persists,
//     and sends Ack{r} to the coordinator.
//  4. The coordinator, on a majority of acks, broadcasts Decided{v}.
//  5. On timeout a process wants round r+1; it may enter it only once it
//     has seen InRound{r} from a majority (counting itself). Receiving
//     any message of a round j > r jumps straight to round j.
package roundbased

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// Timer identifiers.
const (
	// roundTimer expires a round that is making no progress.
	roundTimer consensus.TimerID = 1
	// gossipTimer re-broadcasts the decision after deciding.
	gossipTimer consensus.TimerID = 2
)

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyRoundBasedState

// Config holds the algorithm parameters.
type Config struct {
	// Delta is δ.
	Delta time.Duration
	// Theta is the round timeout measured in global time; it must cover a
	// full round trip through the coordinator (≥ 4δ). Zero selects 5δ.
	// The local timer is budgeted with Rho so it never fires before
	// Theta global seconds.
	Theta time.Duration
	// Rho is the clock-rate error bound.
	Rho float64
	// GossipInterval is the decided-value re-broadcast period (default 2δ).
	GossipInterval time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta <= 0 {
		return c, fmt.Errorf("roundbased: Delta must be positive, got %v", c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return c, fmt.Errorf("roundbased: Rho must be in [0,1), got %v", c.Rho)
	}
	if c.Theta == 0 {
		c.Theta = 5 * c.Delta
	}
	if c.Theta < 4*c.Delta {
		return c, fmt.Errorf("roundbased: Theta %v below 4δ = %v", c.Theta, 4*c.Delta)
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 2 * c.Delta
	}
	return c, nil
}

// durable is the stable-storage image: the (est, tsRound) lock plus the
// round number, so a restarted process cannot regress.
type durable struct {
	Est     consensus.Value
	TSRound int64 // last round whose coordinator updated Est; -1 initially
	Round   int64
	// CoordRound/CoordVal record the last round this process coordinated
	// a value for: a coordinator restarting mid-round must re-send the
	// same value, never pick a second one for the same round.
	CoordRound int64
	CoordVal   consensus.Value
	Decided    bool
	Dec        consensus.Value
}

// Process is one round-based participant.
type Process struct {
	id  consensus.ProcessID
	n   int
	cfg Config
	env consensus.Environment

	st durable

	// timedOut is set when the round timer fires; the process then wants
	// round+1 and enters it as soon as the majority-entry rule allows.
	timedOut bool
	// inRound tracks which processes are known to have begun the current
	// round (from InRound and any other current-round message).
	inRound map[consensus.ProcessID]bool
	// Coordinator bookkeeping for the current round.
	estimates map[consensus.ProcessID]Estimate
	sentCoord bool
	coordVal  consensus.Value
	acks      map[consensus.ProcessID]bool
}

var _ consensus.Process = (*Process)(nil)

// New returns a Factory producing round-based processes, or an error for
// invalid parameters.
func New(cfg Config) (consensus.Factory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &Process{id: id, n: n, cfg: cfg, st: durable{Est: proposal, TSRound: -1, CoordRound: -1}}
	}, nil
}

// MustNew is New for static configs; it panics on invalid parameters.
func MustNew(cfg Config) consensus.Factory {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Init implements consensus.Process.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	var st durable
	if ok, err := env.Store().Get(stateKey, &st); err != nil {
		env.Logf("roundbased: restore: %v", err)
	} else if ok {
		p.st = st
	} else {
		p.persist()
	}
	if p.st.Decided {
		env.Decide(p.st.Dec)
		env.Broadcast(Decided{Val: p.st.Dec})
		env.SetTimer(gossipTimer, p.cfg.GossipInterval)
		return
	}
	p.enterRound(p.st.Round)
}

func (p *Process) persist() {
	if err := p.env.Store().Put(stateKey, p.st); err != nil {
		p.env.Logf("roundbased: persist: %v", err)
	}
}

func (p *Process) majority() int { return consensus.Majority(p.n) }

func (p *Process) coordinator(r int64) consensus.ProcessID {
	return consensus.ProcessID(r % int64(p.n))
}

// enterRound resets per-round state, announces the round, and sends the
// estimate to the coordinator.
func (p *Process) enterRound(r int64) {
	p.st.Round = r
	p.persist()
	p.timedOut = false
	p.inRound = map[consensus.ProcessID]bool{p.id: true}
	p.estimates = make(map[consensus.ProcessID]Estimate)
	p.sentCoord = false
	p.acks = make(map[consensus.ProcessID]bool)
	p.env.Emit("round", r)
	consensus.BeginSpan(p.env, "round", r)

	p.env.Broadcast(InRound{Round: r})
	p.env.Send(p.coordinator(r), Estimate{Round: r, Est: p.st.Est, TSRound: p.st.TSRound})
	p.env.SetTimer(roundTimer, clock.TimerBudget(p.cfg.Theta, p.cfg.Rho))
}

// witness folds any received message into round bookkeeping: higher rounds
// cause a jump, current-round messages mark the sender as in-round.
func (p *Process) witness(from consensus.ProcessID, r int64) bool {
	if r > p.st.Round {
		p.enterRound(r)
	}
	if r == p.st.Round {
		p.inRound[from] = true
		p.maybeAdvance()
	}
	return r == p.st.Round
}

// maybeAdvance spontaneously enters round+1 if the timer has expired and a
// majority is known to have begun the current round (the paper's rule).
func (p *Process) maybeAdvance() {
	if !p.timedOut || p.st.Decided {
		return
	}
	if len(p.inRound) < p.majority() {
		return
	}
	p.enterRound(p.st.Round + 1)
}

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	if p.st.Decided {
		if _, isDecided := m.(Decided); !isDecided {
			p.env.Send(from, Decided{Val: p.st.Dec})
		}
		if d, isDecided := m.(Decided); isDecided {
			p.decide(d.Val)
		}
		return
	}
	switch msg := m.(type) {
	case InRound:
		p.witness(from, msg.Round)
	case Estimate:
		if !p.witness(from, msg.Round) {
			return
		}
		p.onEstimate(from, msg)
	case Coord:
		if !p.witness(from, msg.Round) {
			return
		}
		p.onCoord(msg)
	case Ack:
		if !p.witness(from, msg.Round) {
			return
		}
		p.onAck(from, msg)
	case Decided:
		p.decide(msg.Val)
	}
}

// onEstimate runs at the coordinator: with a majority of estimates, pick the
// one with the highest tsRound and broadcast it.
func (p *Process) onEstimate(from consensus.ProcessID, m Estimate) {
	if p.coordinator(p.st.Round) != p.id {
		return
	}
	if p.sentCoord {
		// Late estimate (e.g. its sender just jumped to our round):
		// retransmit the coordination message to that process only.
		p.env.Send(from, Coord{Round: p.st.Round, V: p.coordVal})
		return
	}
	if p.st.CoordRound == p.st.Round {
		// Restarted mid-round after already coordinating a value for it:
		// re-send the recorded value; choosing again could equivocate.
		p.sentCoord = true
		p.coordVal = p.st.CoordVal
		p.env.Broadcast(Coord{Round: p.st.Round, V: p.coordVal})
		return
	}
	p.estimates[from] = m
	if len(p.estimates) < p.majority() {
		return
	}
	// Pick the estimate with the highest tsRound. Ties are legitimate (all
	// initial estimates carry tsRound -1 with distinct values) and must
	// break deterministically — lowest sender wins — or the decided value
	// would follow map iteration order and differ run to run.
	best := Estimate{TSRound: -2}
	bestFrom := consensus.ProcessID(-1)
	for from, e := range p.estimates {
		if e.TSRound > best.TSRound || (e.TSRound == best.TSRound && from < bestFrom) {
			// The (tsRound, lowest sender) tie-break above totally orders
			// the candidates, so the argmax is the same in any visit order.
			//repro:allow detlint tie-break totally orders candidates
			best, bestFrom = e, from
		}
	}
	p.sentCoord = true
	p.coordVal = best.Est
	p.st.CoordRound = p.st.Round
	p.st.CoordVal = best.Est
	p.persist()
	p.env.Broadcast(Coord{Round: p.st.Round, V: best.Est})
}

// onCoord adopts the coordinator's value, locking (est, tsRound).
func (p *Process) onCoord(m Coord) {
	p.st.Est = m.V
	p.st.TSRound = p.st.Round
	p.persist()
	p.env.Send(p.coordinator(p.st.Round), Ack{Round: p.st.Round})
}

// onAck runs at the coordinator: a majority of acks means a majority locked
// the value — decide and tell everyone.
func (p *Process) onAck(from consensus.ProcessID, m Ack) {
	if p.coordinator(p.st.Round) != p.id || !p.sentCoord {
		return
	}
	p.acks[from] = true
	if len(p.acks) >= p.majority() {
		p.decide(p.coordVal)
	}
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	switch id {
	case roundTimer:
		if p.st.Decided {
			return
		}
		p.timedOut = true
		// Re-announce the round and re-send the estimate: the originals
		// may have been lost before stabilization, and the announcements
		// are what lets others satisfy the majority-entry rule.
		p.env.Broadcast(InRound{Round: p.st.Round})
		p.env.Send(p.coordinator(p.st.Round), Estimate{Round: p.st.Round, Est: p.st.Est, TSRound: p.st.TSRound})
		p.env.SetTimer(roundTimer, clock.TimerBudget(p.cfg.Theta, p.cfg.Rho))
		p.maybeAdvance()
	case gossipTimer:
		if p.st.Decided {
			p.env.Broadcast(Decided{Val: p.st.Dec})
			p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
		}
	}
}

func (p *Process) decide(v consensus.Value) {
	if p.st.Decided {
		return
	}
	p.st.Decided = true
	p.st.Dec = v
	p.persist()
	p.env.Decide(v)
	consensus.EndSpan(p.env, "round", p.st.Round)
	p.env.CancelTimer(roundTimer)
	p.env.Broadcast(Decided{Val: v})
	p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
}
