package majority_test

import (
	"testing"
	"time"

	"repro/internal/core/majority"
	"repro/internal/harness"
)

const delta = 10 * time.Millisecond

func run(t *testing.T, proto harness.Protocol, n, pool int, seed int64) harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{
		Protocol:    proto,
		N:           n,
		Delta:       delta,
		Seed:        seed,
		OpinionPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation: %v", res.Violation)
	}
	return res
}

// Test3MajorityConverges runs the three-sample rule on a population with a
// three-way opinion split.
func Test3MajorityConverges(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res := run(t, "3majority", 100, 3, seed)
		if !res.Decided {
			t.Fatalf("seed %d: population did not decide (last=%v)", seed, res.LastDecision)
		}
	}
}

// Test2ChoicesConverges runs the two-sample rule on a two-way split.
func Test2ChoicesConverges(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res := run(t, "2choices", 100, 2, seed)
		if !res.Decided {
			t.Fatalf("seed %d: population did not decide (last=%v)", seed, res.LastDecision)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []majority.Config{
		{},                                   // missing Delta
		{Delta: delta, Samples: 4},           // unsupported sample size
		{Delta: delta, Rho: -0.1},            // Rho out of range
		{Delta: delta, RoundInterval: delta}, // interval inside round trip
	}
	for i, cfg := range cases {
		if _, err := majority.New(cfg); err == nil {
			t.Errorf("case %d: config %+v unexpectedly accepted", i, cfg)
		}
	}
	if _, err := majority.New(majority.Config{Delta: delta}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
