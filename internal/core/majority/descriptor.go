package majority

import (
	"repro/internal/core/consensus"
	"repro/internal/protocol"
)

// Descriptor publishes the 3-majority dynamics to the protocol registry.
// Hidden for the same reason as usd: probabilistic large-N guarantees, not
// the paper's worst-case agreement bounds, so it resolves by name in the
// population-dynamics scenarios but never joins default comparisons.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name:   "3majority",
		Doc:    "3-majority dynamics (arXiv:2503.02426) — sample three, adopt the majority; plurality consensus in O(log n) rounds w.h.p.",
		Hidden: true,
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta, Rho: p.Rho, Samples: 3})
		},
		Messages: []consensus.Message{Query{}, Reply{}, Decided{}},
	}
}

// TwoChoicesDescriptor publishes the 2-choices variant: sample two, adopt
// only on agreement. Hidden like the rest of the dynamics family.
func TwoChoicesDescriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name:   "2choices",
		Doc:    "2-choices dynamics (arXiv:2503.02426) — sample two, adopt on agreement; O(log n) rounds w.h.p. given initial bias",
		Hidden: true,
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta, Rho: p.Rho, Samples: 2})
		},
		Messages: []consensus.Message{Query{}, Reply{}, Decided{}},
	}
}
