// Package majority implements the 3-majority and 2-choices population
// dynamics, the sampling-based opinion protocols surveyed by Becchetti,
// Clementi and Natale and analyzed through smoothed population models in
// arXiv:2503.02426.
//
// Every process holds an opinion (initially its proposal) and repeatedly
// samples uniformly random processes:
//
//   - 3-majority samples three; if at least two agree it adopts their
//     opinion, otherwise it adopts the first sample;
//   - 2-choices samples two; if both agree it adopts their opinion,
//     otherwise it keeps its own.
//
// Both drive a bounded opinion space to plurality consensus within
// O(log n) rounds w.h.p. (for 2-choices, given a sufficient initial bias),
// without USD's third state: the sample-size-of-three (or tie-keep)
// tiebreak plays the role the undecided state plays there. The
// population-dynamics sweep checks the logarithmic growth at n=100, 1000,
// 5000.
//
// Termination reuses the streak criterion described in package usd: a
// process whose own opinion matched every sample for StreakLen consecutive
// rounds decides and broadcasts Decided; receivers adopt silently. With
// k ≥ 2 samples a lucky streak is k-times less likely per round, so
// StreakLen defaults to log₂(n)+4.
//
// Like usd, the descriptors are Hidden: the guarantees are probabilistic
// and about N → ∞, so the protocols resolve by name in the
// population-dynamics scenarios but stay out of default paper comparisons.
package majority

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// roundTimer drives the sampling rounds.
const roundTimer consensus.TimerID = 1

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyMajorityState

// maxSamples bounds the per-round sample vector (3-majority's three).
const maxSamples = 3

// Config holds the dynamics parameters.
type Config struct {
	// Delta is δ.
	Delta time.Duration
	// Samples is the per-round sample size: 3 selects the 3-majority rule,
	// 2 the 2-choices rule. Zero selects 3.
	Samples int
	// RoundInterval is the local-clock gap between sampling rounds; it must
	// cover a query/reply round trip (> 2δ). Zero selects 3δ. Each arm adds
	// a uniform jitter from [0, δ); see package usd for why.
	RoundInterval time.Duration
	// StreakLen is the number of consecutive unanimous rounds required to
	// decide. Zero selects log₂(n)+4 at construction time.
	StreakLen int
	// Rho is the clock-rate error bound (interface symmetry only).
	Rho float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta <= 0 {
		return c, fmt.Errorf("majority: Delta must be positive, got %v", c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return c, fmt.Errorf("majority: Rho must be in [0,1), got %v", c.Rho)
	}
	if c.Samples == 0 {
		c.Samples = 3
	}
	if c.Samples != 2 && c.Samples != 3 {
		return c, fmt.Errorf("majority: Samples must be 2 (2-choices) or 3 (3-majority), got %d", c.Samples)
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 3 * c.Delta
	}
	if c.RoundInterval <= 2*c.Delta {
		return c, fmt.Errorf("majority: RoundInterval %v must exceed a 2δ round trip (δ=%v)", c.RoundInterval, c.Delta)
	}
	if c.StreakLen < 0 {
		return c, fmt.Errorf("majority: StreakLen must be ≥ 0, got %d", c.StreakLen)
	}
	return c, nil
}

// defaultStreak is the decision streak for a cluster of n with k ≥ 2
// samples per round: log₂(n) plus slack keeps a lucky pre-convergence
// streak a ≤ 1/n²-per-window event (each unanimous round already needs k
// independent agreeing samples).
func defaultStreak(n int) int {
	return bits.Len(uint(n)) + 4
}

// New validates the configuration and returns a process factory.
func New(cfg Config) (consensus.Factory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		c := cfg
		if c.StreakLen == 0 {
			c.StreakLen = defaultStreak(n)
		}
		return &Process{id: id, n: n, cfg: c, opinion: proposal}
	}, nil
}

// durable is the stable-storage image.
type durable struct {
	Opinion consensus.Value
	Decided bool
}

// Process is one participant of the 3-majority or 2-choices dynamics.
type Process struct {
	id  consensus.ProcessID
	n   int
	cfg Config
	env consensus.Environment

	opinion consensus.Value
	round   int64
	// sample collects the current round's replies in arrival order; got
	// counts how many arrived. A fixed array keeps the hot path map-free
	// and allocation-free.
	sample [maxSamples]consensus.Value
	got    int
	// streak counts consecutive unanimous rounds; StreakLen of them decide.
	streak  int
	decided bool
}

// Init implements consensus.Process.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	var st durable
	if ok, err := env.Store().Get(stateKey, &st); err == nil && ok {
		p.opinion = st.Opinion
		p.decided = st.Decided
	}
	if p.decided {
		p.env.Decide(p.opinion)
		return
	}
	p.beginRound()
	p.armRound()
}

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	switch m := m.(type) {
	case Query:
		p.env.Send(from, Reply{Round: m.Round, Opinion: p.opinion})
	case Reply:
		if p.decided || m.Round != p.round || p.got >= p.cfg.Samples {
			return
		}
		p.sample[p.got] = m.Opinion
		p.got++
	case Decided:
		p.adopt(m.Val)
	}
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	if id != roundTimer || p.decided {
		return
	}
	if p.got == p.cfg.Samples {
		p.step()
		if p.decided {
			return
		}
	}
	p.beginRound()
	p.armRound()
}

// beginRound starts the next sampling round: query Samples uniformly random
// processes (with replacement, self included, as the dynamics prescribe).
func (p *Process) beginRound() {
	p.round++
	p.got = 0
	for i := 0; i < p.cfg.Samples; i++ {
		peer := consensus.ProcessID(p.env.Rand().Intn(p.n))
		p.env.Send(peer, Query{Round: p.round})
	}
}

// armRound schedules the next round tick with fresh jitter.
func (p *Process) armRound() {
	jitter := time.Duration(p.env.Rand().Int63n(int64(p.cfg.Delta)))
	p.env.SetTimer(roundTimer, p.cfg.RoundInterval+jitter)
}

// step applies the update rule to the completed round's samples and
// advances the decision streak.
func (p *Process) step() {
	unanimous := true
	for i := 0; i < p.cfg.Samples; i++ {
		if p.sample[i] != p.opinion {
			unanimous = false
			break
		}
	}
	if p.cfg.Samples == 3 {
		// 3-majority: adopt any pairwise agreement, else the first sample.
		switch {
		case p.sample[0] == p.sample[1] || p.sample[0] == p.sample[2]:
			p.setOpinion(p.sample[0])
		case p.sample[1] == p.sample[2]:
			p.setOpinion(p.sample[1])
		default:
			p.setOpinion(p.sample[0])
		}
	} else {
		// 2-choices: adopt only on agreement, else keep.
		if p.sample[0] == p.sample[1] {
			p.setOpinion(p.sample[0])
		}
	}
	if unanimous {
		p.streak++
	} else {
		p.streak = 0
	}
	if p.streak >= p.cfg.StreakLen {
		p.decided = true
		p.persist()
		p.env.CancelTimer(roundTimer)
		p.env.Decide(p.opinion)
		p.env.Broadcast(Decided{Val: p.opinion})
	}
}

// setOpinion installs a possibly new opinion, persisting only on change.
func (p *Process) setOpinion(v consensus.Value) {
	if v == p.opinion {
		return
	}
	p.opinion = v
	p.persist()
}

// adopt takes a decision learned from a Decided broadcast; see usd.adopt.
func (p *Process) adopt(v consensus.Value) {
	if p.decided {
		return
	}
	p.decided = true
	p.opinion = v
	p.streak = 0
	p.persist()
	p.env.CancelTimer(roundTimer)
	p.env.Decide(v)
}

// persist writes the durable image; failures are logged, not fatal.
func (p *Process) persist() {
	if err := p.env.Store().Put(stateKey, durable{Opinion: p.opinion, Decided: p.decided}); err != nil {
		p.env.Logf("majority: persist: %v", err)
	}
}
