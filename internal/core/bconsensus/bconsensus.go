// Package bconsensus implements the modified B-Consensus algorithm
// sketched in §5 of the paper: the leaderless round-based algorithm of
// Pedone, Schiper, Urbán and Cavin, driven by a message-delivery oracle,
// modified so it reaches consensus within O(δ) of stabilization.
//
// The paper does not reprint the pseudo-code of B-Consensus, so this is a
// reconstruction (documented in DESIGN.md) of the standard Ben-Or-shaped
// algorithm over a weak ordering oracle, with exactly the property the
// paper relies on: a round reaches consensus if more than N/2 processes are
// nonfaulty and all messages w-abcast in that round are delivered by the
// oracle to all processes in the same order.
//
// Round r has three stages:
//
//	stage 1  w-abcast ⟨r, est⟩ through the oracle; adopt the value of the
//	         FIRST oracle-delivered round-r message as est.
//	stage 2  send ⟨FIRST, r, est⟩ to all; on a majority of FIRST votes,
//	         set maj := v if ≥ ⌈(N+1)/2⌉ of them carry the same v, else ⊥.
//	stage 3  send ⟨SECOND, r, maj⟩ to all; on a majority of SECOND votes:
//	         if any carries v ≠ ⊥, set est := v; if a majority carry the
//	         same v ≠ ⊥, decide v; otherwise enter round r+1.
//
// Safety is the Ben-Or argument: two non-⊥ maj values would need two
// intersecting majorities of FIRST votes, and a decision forces every
// process completing the round to adopt v (every majority of SECOND votes
// intersects the deciding majority).
//
// The paper's modifications, all implemented here:
//
//   - The oracle is implemented with Lamport-timestamped broadcast plus a
//     2δ hold-back, delivering in (timestamp, sender) order
//     (internal/oracle). After stabilization all processes deliver round
//     messages in the same order, so the first stage adopts the same value
//     everywhere and the round decides.
//   - Round entry respects the majority rule implicitly: a process
//     advances from r to r+1 only after a majority of SECOND votes, whose
//     senders are all in round r. Hence no message can carry a round more
//     than one above some nonfaulty process's round, bounding obsolete
//     messages exactly as in §4's step 1.
//   - Round jumping: a message of round j > r moves the process straight
//     to round j — it does not execute rounds r+1..j−1. The jumper adopts
//     the message's Est, which preserves the locking invariant (any
//     process in a round after a decision carries the decided value), so
//     jumping is safe.
package bconsensus

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/oracle"
	"repro/internal/storage"
)

// Timer identifiers.
const (
	// oracleTimer fires at the hold-back queue's next delivery deadline.
	oracleTimer consensus.TimerID = 1
	// heartbeatTimer retransmits the current stage's message every ε.
	heartbeatTimer consensus.TimerID = 2
	// gossipTimer re-broadcasts the decision after deciding.
	gossipTimer consensus.TimerID = 3
)

// stateKey is the stable-storage key holding durable state.
const stateKey = storage.KeyBConsensusState

// Config holds the algorithm parameters.
type Config struct {
	// Delta is δ; the oracle hold-back is 2δ (budgeted against Rho).
	Delta time.Duration
	// Eps is the retransmission interval (default δ/2).
	Eps time.Duration
	// Rho is the clock-rate error bound.
	Rho float64
	// GossipInterval is the decided-value re-broadcast period (default 2δ).
	GossipInterval time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta <= 0 {
		return c, fmt.Errorf("bconsensus: Delta must be positive, got %v", c.Delta)
	}
	if c.Rho < 0 || c.Rho >= 1 {
		return c, fmt.Errorf("bconsensus: Rho must be in [0,1), got %v", c.Rho)
	}
	if c.Eps == 0 {
		c.Eps = c.Delta / 2
	}
	if c.Eps < 0 {
		return c, fmt.Errorf("bconsensus: Eps must be positive, got %v", c.Eps)
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 2 * c.Delta
	}
	return c, nil
}

// holdLocal is the local-clock hold-back duration: 2δ·(1+ρ) local seconds
// never elapse in less than 2δ global seconds.
func (c Config) holdLocal() time.Duration {
	return clock.TimerBudget(2*c.Delta, c.Rho)
}

// Stage numbers within a round.
const (
	stageWab    = 1
	stageFirst  = 2
	stageSecond = 3
)

// durable is the stable-storage image. The Lamport clock is durable so a
// restarted process never reuses a timestamp (oracle deduplication relies
// on (timestamp, sender) uniqueness). The per-round votes are durable so a
// process restarting mid-round re-sends the votes it already cast instead
// of voting again — double voting would break the majority-intersection
// arguments behind both stage 2 and stage 3.
type durable struct {
	Round   int64
	Est     consensus.Value
	LC      uint64
	Decided bool
	Dec     consensus.Value

	// Votes cast in round Round.
	FirstVoted  bool
	FirstVal    consensus.Value
	SecondVoted bool
	SecondHasV  bool
	SecondVal   consensus.Value
}

// secondVote is a recorded stage-3 vote.
type secondVote struct {
	hasV bool
	v    consensus.Value
}

// Process is one B-Consensus participant.
type Process struct {
	id  consensus.ProcessID
	n   int
	cfg Config
	env consensus.Environment

	st durable
	lc clock.Lamport

	stage int
	// wabLC is the timestamp of this round's w-abcast (retransmissions
	// reuse it: they are the same logical message).
	wabLC uint64
	hb    oracle.Holdback
	// firstDelivered records, per round, the estimate of the first
	// oracle-delivered message of that round.
	firstDelivered map[int64]consensus.Value
	firstVotes     map[int64]map[consensus.ProcessID]consensus.Value
	secondVotes    map[int64]map[consensus.ProcessID]secondVote
	maj            consensus.Value
	hasMaj         bool
}

var _ consensus.Process = (*Process)(nil)

// New returns a Factory producing B-Consensus processes, or an error for
// invalid parameters.
func New(cfg Config) (consensus.Factory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(id consensus.ProcessID, n int, proposal consensus.Value) consensus.Process {
		return &Process{id: id, n: n, cfg: cfg, st: durable{Est: proposal}}
	}, nil
}

// MustNew is New for static configs; it panics on invalid parameters.
func MustNew(cfg Config) consensus.Factory {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Init implements consensus.Process.
func (p *Process) Init(env consensus.Environment) {
	p.env = env
	p.firstDelivered = make(map[int64]consensus.Value)
	p.firstVotes = make(map[int64]map[consensus.ProcessID]consensus.Value)
	p.secondVotes = make(map[int64]map[consensus.ProcessID]secondVote)

	var st durable
	if ok, err := env.Store().Get(stateKey, &st); err != nil {
		env.Logf("bconsensus: restore: %v", err)
	} else if ok {
		p.st = st
	} else {
		p.persist()
	}
	// Resume the Lamport clock strictly above its persisted value so a
	// restarted process never reuses a timestamp.
	p.lc = clock.Lamport{}
	if p.st.LC > 0 {
		p.lc.Witness(p.st.LC)
	}
	if p.st.Decided {
		env.Decide(p.st.Dec)
		env.Broadcast(Decided{Val: p.st.Dec})
		env.SetTimer(gossipTimer, p.cfg.GossipInterval)
		return
	}
	p.resumeRound()
	env.SetTimer(heartbeatTimer, p.cfg.Eps)
}

func (p *Process) persist() {
	p.st.LC = p.lc.Now()
	if err := p.env.Store().Put(stateKey, p.st); err != nil {
		p.env.Logf("bconsensus: persist: %v", err)
	}
}

func (p *Process) majority() int { return consensus.Majority(p.n) }

// tick advances and persists the Lamport clock for an outgoing message.
func (p *Process) tick() uint64 {
	ts := p.lc.Tick()
	p.persist()
	return ts
}

// enterRound begins round r at stage 1: w-abcast the estimate and, if the
// oracle already delivered a round-r message (possible after a jump),
// adopt it immediately. Entering a round clears the durable vote record —
// this is a NEW round, distinct from resumeRound.
func (p *Process) enterRound(r int64) {
	p.st.Round = r
	p.st.FirstVoted = false
	p.st.SecondVoted = false
	p.stage = stageWab
	p.hasMaj = false
	p.env.Emit("round", r)
	consensus.BeginSpan(p.env, "round", r)
	p.wabLC = p.tick()
	p.env.Broadcast(Wab{LC: p.wabLC, Round: r, Est: p.st.Est})
	p.maybeAdoptFirst()
}

// resumeRound re-enters the stored round after a restart, replaying any
// votes already cast instead of casting fresh ones.
func (p *Process) resumeRound() {
	p.env.Emit("round", p.st.Round)
	consensus.BeginSpan(p.env, "round", p.st.Round)
	p.wabLC = p.tick()
	p.env.Broadcast(Wab{LC: p.wabLC, Round: p.st.Round, Est: p.st.Est})
	switch {
	case p.st.SecondVoted:
		p.stage = stageSecond
		p.hasMaj = p.st.SecondHasV
		p.maj = p.st.SecondVal
		p.env.Broadcast(Second{LC: p.tick(), Round: p.st.Round, Est: p.st.Est, HasV: p.hasMaj, V: p.maj})
		p.maybeCloseSecond()
	case p.st.FirstVoted:
		p.stage = stageFirst
		p.env.Broadcast(First{LC: p.tick(), Round: p.st.Round, Est: p.st.FirstVal})
		p.maybeCloseFirst()
	default:
		p.stage = stageWab
		p.hasMaj = false
		p.maybeAdoptFirst()
	}
}

// maybeAdoptFirst completes stage 1 when the first round-r oracle delivery
// is known.
func (p *Process) maybeAdoptFirst() {
	if p.stage != stageWab {
		return
	}
	v, ok := p.firstDelivered[p.st.Round]
	if !ok {
		return
	}
	p.st.Est = v
	p.st.FirstVoted = true
	p.st.FirstVal = v
	p.stage = stageFirst
	p.persist()
	p.env.Broadcast(First{LC: p.tick(), Round: p.st.Round, Est: p.st.Est})
	p.maybeCloseFirst()
}

// maybeCloseFirst completes stage 2 on a majority of FIRST votes.
func (p *Process) maybeCloseFirst() {
	if p.stage != stageFirst {
		return
	}
	votes := p.firstVotes[p.st.Round]
	if len(votes) < p.majority() {
		return
	}
	counts := make(map[consensus.Value]int)
	for _, v := range votes {
		counts[v]++
	}
	p.hasMaj = false
	for v, c := range counts {
		if c >= p.majority() {
			// At most one value can reach a majority count, so the winner
			// is unique whatever order the counts are visited in.
			//repro:allow detlint at most one value can hold a majority
			p.maj = v
			p.hasMaj = true
		}
	}
	p.stage = stageSecond
	p.st.SecondVoted = true
	p.st.SecondHasV = p.hasMaj
	p.st.SecondVal = p.maj
	p.env.Broadcast(Second{LC: p.tick(), Round: p.st.Round, Est: p.st.Est, HasV: p.hasMaj, V: p.maj})
	p.maybeCloseSecond()
}

// maybeCloseSecond completes stage 3 on a majority of SECOND votes:
// adopt any non-⊥ value, decide on a majority of non-⊥ votes, otherwise
// next round.
func (p *Process) maybeCloseSecond() {
	if p.stage != stageSecond {
		return
	}
	votes := p.secondVotes[p.st.Round]
	if len(votes) < p.majority() {
		return
	}
	nonBot := 0
	var v consensus.Value
	for _, sv := range votes {
		if sv.hasV {
			nonBot++
			// Ben-Or lemma: every non-⊥ SECOND vote of a round carries the
			// same value (it derives from a majority of FIRST votes), so
			// whichever vote is seen last yields the same v.
			//repro:allow detlint all non-bottom second votes carry one value
			v = sv.v
		}
	}
	if nonBot > 0 {
		p.st.Est = v
		p.persist()
	}
	if nonBot >= p.majority() {
		p.decide(v)
		return
	}
	p.enterRound(p.st.Round + 1)
}

// witness handles round bookkeeping for any received protocol message:
// jumping adopts the sender's estimate (see the package comment for why
// that preserves safety).
func (p *Process) witness(lcTS uint64, round int64, est consensus.Value) {
	p.lc.Witness(lcTS)
	if round > p.st.Round {
		p.st.Est = est
		p.enterRound(round)
	}
}

// HandleMessage implements consensus.Process.
func (p *Process) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	if p.st.Decided {
		if _, isDecided := m.(Decided); !isDecided {
			p.env.Send(from, Decided{Val: p.st.Dec})
		}
		if d, isDecided := m.(Decided); isDecided {
			p.decide(d.Val)
		}
		return
	}
	switch msg := m.(type) {
	case Wab:
		p.witness(msg.LC, msg.Round, msg.Est)
		// Into the hold-back queue; actual w-adelivery happens on the
		// oracle timer, in (timestamp, sender) order.
		p.hb.Add(oracle.Item{
			TS:      msg.LC,
			Sender:  int(from),
			ReadyAt: p.env.Now() + p.cfg.holdLocal(),
			Payload: msg,
		})
		p.armOracleTimer()
	case First:
		p.witness(msg.LC, msg.Round, msg.Est)
		votes := p.firstVotes[msg.Round]
		if votes == nil {
			votes = make(map[consensus.ProcessID]consensus.Value)
			p.firstVotes[msg.Round] = votes
		}
		votes[from] = msg.Est
		if msg.Round == p.st.Round {
			p.maybeCloseFirst()
		}
	case Second:
		p.witness(msg.LC, msg.Round, msg.Est)
		votes := p.secondVotes[msg.Round]
		if votes == nil {
			votes = make(map[consensus.ProcessID]secondVote)
			p.secondVotes[msg.Round] = votes
		}
		votes[from] = secondVote{hasV: msg.HasV, v: msg.V}
		if msg.Round == p.st.Round {
			p.maybeCloseSecond()
		}
	case Decided:
		p.decide(msg.Val)
	}
}

// armOracleTimer (re)arms the oracle timer for the hold-back queue's next
// delivery deadline.
func (p *Process) armOracleTimer() {
	deadline, ok := p.hb.NextDeadline()
	if !ok {
		return
	}
	// Floor the re-arm delay at 1µs: clock-drift conversions round
	// through floats, and a zero-delay timer could otherwise re-fire at
	// the same instant without the local clock ever passing the deadline.
	d := deadline - p.env.Now()
	if d < time.Microsecond {
		d = time.Microsecond
	}
	p.env.SetTimer(oracleTimer, d)
}

// HandleTimer implements consensus.Process.
func (p *Process) HandleTimer(id consensus.TimerID) {
	switch id {
	case oracleTimer:
		if p.st.Decided {
			return
		}
		for _, it := range p.hb.Ready(p.env.Now()) {
			msg := it.Payload.(Wab)
			if _, ok := p.firstDelivered[msg.Round]; !ok {
				p.firstDelivered[msg.Round] = msg.Est
				p.env.Emit("wadeliver", msg.Round)
			}
			if msg.Round == p.st.Round {
				p.maybeAdoptFirst()
			}
		}
		p.armOracleTimer()
	case heartbeatTimer:
		if p.st.Decided {
			return
		}
		// Retransmit the current stage's message; pre-stabilization
		// losses make this necessary for liveness. The w-abcast reuses
		// its original timestamp (it is the same logical message, and
		// the oracle deduplicates by (timestamp, sender)).
		switch p.stage {
		case stageWab:
			p.env.Broadcast(Wab{LC: p.wabLC, Round: p.st.Round, Est: p.st.Est})
		case stageFirst:
			p.env.Broadcast(First{LC: p.tick(), Round: p.st.Round, Est: p.st.Est})
		case stageSecond:
			p.env.Broadcast(Second{LC: p.tick(), Round: p.st.Round, Est: p.st.Est, HasV: p.hasMaj, V: p.maj})
		}
		p.env.SetTimer(heartbeatTimer, p.cfg.Eps)
	case gossipTimer:
		if p.st.Decided {
			p.env.Broadcast(Decided{Val: p.st.Dec})
			p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
		}
	}
}

func (p *Process) decide(v consensus.Value) {
	if p.st.Decided {
		return
	}
	p.st.Decided = true
	p.st.Dec = v
	p.persist()
	p.env.Decide(v)
	consensus.EndSpan(p.env, "round", p.st.Round)
	p.env.CancelTimer(oracleTimer)
	p.env.CancelTimer(heartbeatTimer)
	p.env.Broadcast(Decided{Val: v})
	p.env.SetTimer(gossipTimer, p.cfg.GossipInterval)
}
