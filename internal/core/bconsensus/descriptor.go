package bconsensus

import (
	"repro/internal/core/consensus"
	"repro/internal/protocol"
)

// Descriptor returns the protocol-registry entry for the modified
// B-Consensus of §5. It is registered by the protocol/all package.
func Descriptor() protocol.Descriptor {
	return protocol.Descriptor{
		Name: "bconsensus",
		Doc:  "modified B-Consensus (§5, claim C6): leaderless, oracle-based, O(δ) after TS independent of N",
		New: func(p protocol.Params) (consensus.Factory, error) {
			return New(Config{Delta: p.Delta, Eps: p.Eps, Rho: p.Rho})
		},
		Messages: []consensus.Message{
			Wab{}, First{}, Second{}, Decided{},
		},
	}
}
