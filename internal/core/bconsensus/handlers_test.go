package bconsensus

// Handler-level unit tests for the modified B-Consensus: the oracle path
// (hold-back, first delivery), the two voting stages, round jumping with
// estimate adoption, and durable vote replay on restart.

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/consensus/consensustest"
)

const (
	n5     = 5
	uDelta = 10 * time.Millisecond
)

func boot(t *testing.T, id consensus.ProcessID, proposal consensus.Value) (*Process, *consensustest.Env) {
	t.Helper()
	p := MustNew(Config{Delta: uDelta})(id, n5, proposal).(*Process)
	env := consensustest.New(id, n5)
	p.Init(env)
	return p, env
}

// deliverWab pushes a Wab through the hold-back by advancing the clock past
// the hold duration and firing the oracle timer.
func deliverWab(p *Process, env *consensustest.Env, from consensus.ProcessID, m Wab) {
	p.HandleMessage(from, m)
	env.Clock += 3 * uDelta // > 2δ(1+ρ)
	p.HandleTimer(oracleTimer)
}

func TestInitWabcastsProposal(t *testing.T) {
	p, env := boot(t, 2, "v2")
	if env.BroadcastsOf("wab") != 1 {
		t.Fatalf("Init w-abcast %d rounds, want 1", env.BroadcastsOf("wab"))
	}
	m := env.SentTo(0)[0].(Wab)
	if m.Round != 0 || m.Est != "v2" || m.LC == 0 {
		t.Fatalf("wab = %#v", m)
	}
	if p.stage != stageWab {
		t.Fatalf("stage = %d, want 1", p.stage)
	}
}

func TestHoldbackDelaysDelivery(t *testing.T) {
	p, env := boot(t, 0, "v0")
	env.ClearOutbox()
	p.HandleMessage(1, Wab{LC: 5, Round: 0, Est: "w"})
	// Before the hold-back expires, no FIRST vote.
	p.HandleTimer(oracleTimer)
	if env.CountType("first") != 0 {
		t.Fatal("w-adelivered before the 2δ hold-back")
	}
	env.Clock += 3 * uDelta
	p.HandleTimer(oracleTimer)
	if env.BroadcastsOf("first") != 1 {
		t.Fatalf("first-vote broadcasts = %d, want 1", env.BroadcastsOf("first"))
	}
	if p.st.Est != "w" || !p.st.FirstVoted || p.st.FirstVal != "w" {
		t.Fatalf("first delivery not adopted durably: %+v", p.st)
	}
}

func TestFirstDeliveryIsSmallestTimestamp(t *testing.T) {
	p, env := boot(t, 0, "v0")
	env.ClearOutbox()
	// Two round-0 wabs arrive; the smaller (LC, sender) must win even
	// though the larger arrived first.
	p.HandleMessage(3, Wab{LC: 9, Round: 0, Est: "big"})
	p.HandleMessage(1, Wab{LC: 4, Round: 0, Est: "small"})
	env.Clock += 3 * uDelta
	p.HandleTimer(oracleTimer)
	if p.st.Est != "small" {
		t.Fatalf("adopted %q, want the timestamp-order first (small)", p.st.Est)
	}
}

func TestStageTwoMajorityAllEqual(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	env.ClearOutbox()
	p.HandleMessage(1, First{LC: 10, Round: 0, Est: "w"})
	p.HandleMessage(2, First{LC: 11, Round: 0, Est: "w"})
	// p's own FIRST vote is in the outbox, not in its own vote map until
	// the loopback arrives; feed it.
	p.HandleMessage(0, First{LC: 12, Round: 0, Est: "w"})
	if env.BroadcastsOf("second") != 1 {
		t.Fatalf("second-vote broadcasts = %d, want 1", env.BroadcastsOf("second"))
	}
	m := env.SentTo(0)[len(env.SentTo(0))-1].(Second)
	if !m.HasV || m.V != "w" {
		t.Fatalf("second vote = %#v, want maj=w", m)
	}
}

func TestStageTwoSplitVotesYieldBottom(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	env.ClearOutbox()
	p.HandleMessage(0, First{LC: 10, Round: 0, Est: "a"})
	p.HandleMessage(1, First{LC: 11, Round: 0, Est: "b"})
	p.HandleMessage(2, First{LC: 12, Round: 0, Est: "c"})
	m := env.SentTo(0)[len(env.SentTo(0))-1].(Second)
	if m.HasV {
		t.Fatalf("split votes produced maj=%q, want ⊥", m.V)
	}
}

func TestStageThreeDecidesOnMajorityValue(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, First{LC: 20 + uint64(from), Round: 0, Est: "w"})
	}
	env.ClearOutbox()
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, Second{LC: 30 + uint64(from), Round: 0, Est: "w", HasV: true, V: "w"})
	}
	v, decided := env.Decided()
	if !decided || v != "w" {
		t.Fatalf("decision = (%q,%v), want (w,true)", v, decided)
	}
	if env.BroadcastsOf("decided") != 1 {
		t.Fatal("decision not broadcast")
	}
}

func TestStageThreeAllBottomAdvancesRound(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	env.ClearOutbox()
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, First{LC: 20 + uint64(from), Round: 0, Est: consensus.Value("v" + string(rune('0'+from)))})
	}
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, Second{LC: 30 + uint64(from), Round: 0, Est: "x", HasV: false})
	}
	if _, decided := env.Decided(); decided {
		t.Fatal("decided on all-⊥ votes")
	}
	if p.st.Round != 1 {
		t.Fatalf("round = %d, want 1", p.st.Round)
	}
	if env.BroadcastsOf("wab") != 1 {
		t.Fatal("new round did not w-abcast")
	}
}

func TestStageThreeSingleValueAdoptedNotDecided(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, First{LC: 20 + uint64(from), Round: 0, Est: "w"})
	}
	env.ClearOutbox()
	p.HandleMessage(0, Second{LC: 30, Round: 0, Est: "w", HasV: true, V: "w"})
	p.HandleMessage(1, Second{LC: 31, Round: 0, Est: "x", HasV: false})
	p.HandleMessage(2, Second{LC: 32, Round: 0, Est: "x", HasV: false})
	if _, decided := env.Decided(); decided {
		t.Fatal("decided with a single non-⊥ vote")
	}
	if p.st.Round != 1 || p.st.Est != "w" {
		t.Fatalf("must adopt w and advance: round=%d est=%q", p.st.Round, p.st.Est)
	}
}

func TestJumpAdoptsSenderEstimate(t *testing.T) {
	p, env := boot(t, 0, "v0")
	env.ClearOutbox()
	p.HandleMessage(3, First{LC: 50, Round: 6, Est: "locked"})
	if p.st.Round != 6 {
		t.Fatalf("round = %d, want 6", p.st.Round)
	}
	if p.st.Est != "locked" {
		t.Fatalf("est = %q; jumping must adopt the sender's estimate", p.st.Est)
	}
	// The jump w-abcasts the adopted estimate for round 6.
	m := env.SentTo(0)[0].(Wab)
	if m.Round != 6 || m.Est != "locked" {
		t.Fatalf("post-jump wab = %#v", m)
	}
}

func TestLamportWitnessAdvancesClock(t *testing.T) {
	p, _ := boot(t, 0, "v0")
	before := p.lc.Now()
	p.HandleMessage(1, Wab{LC: 1000, Round: 0, Est: "w"})
	if p.lc.Now() <= 1000 || p.lc.Now() <= before {
		t.Fatalf("lamport clock %d did not witness 1000", p.lc.Now())
	}
}

func TestHeartbeatRetransmitsCurrentStage(t *testing.T) {
	p, env := boot(t, 0, "v0")
	env.ClearOutbox()
	p.HandleTimer(heartbeatTimer)
	if env.BroadcastsOf("wab") != 1 {
		t.Fatal("stage-1 heartbeat must re-wabcast")
	}
	// Same logical message: identical timestamp.
	if m := env.SentTo(0)[0].(Wab); m.LC != p.wabLC {
		t.Fatalf("re-wab used a new timestamp %d (want %d)", m.LC, p.wabLC)
	}
	deliverWab(p, env, 1, Wab{LC: 2, Round: 0, Est: "w"})
	env.ClearOutbox()
	p.HandleTimer(heartbeatTimer)
	if env.BroadcastsOf("first") != 1 {
		t.Fatal("stage-2 heartbeat must re-send the FIRST vote")
	}
}

func TestRestartReplaysFirstVote(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	if !p.st.FirstVoted {
		t.Fatal("setup: no first vote")
	}
	p2 := MustNew(Config{Delta: uDelta})(0, n5, "v0").(*Process)
	env2 := consensustest.New(0, n5)
	env2.Storage = env.Storage
	p2.Init(env2)
	// The restarted process is back at stage 2 with the SAME vote.
	if p2.stage != stageFirst {
		t.Fatalf("stage = %d, want 2 (resume)", p2.stage)
	}
	votes := 0
	for _, s := range env2.Outbox {
		if f, ok := s.Msg.(First); ok {
			if f.Est != "w" {
				t.Fatalf("restart re-voted %q, want w", f.Est)
			}
			votes++
		}
	}
	if votes != n5 {
		t.Fatalf("restart sent %d FIRST messages, want one broadcast", votes)
	}
	// And its Lamport clock moved strictly past the persisted value.
	if p2.lc.Now() <= p.st.LC-1 {
		t.Fatalf("lamport clock regressed: %d", p2.lc.Now())
	}
}

func TestRestartReplaysSecondVote(t *testing.T) {
	p, env := boot(t, 0, "v0")
	deliverWab(p, env, 1, Wab{LC: 3, Round: 0, Est: "w"})
	for from := consensus.ProcessID(0); from < 3; from++ {
		p.HandleMessage(from, First{LC: 20 + uint64(from), Round: 0, Est: "w"})
	}
	if !p.st.SecondVoted {
		t.Fatal("setup: no second vote")
	}
	p2 := MustNew(Config{Delta: uDelta})(0, n5, "v0").(*Process)
	env2 := consensustest.New(0, n5)
	env2.Storage = env.Storage
	p2.Init(env2)
	if p2.stage != stageSecond {
		t.Fatalf("stage = %d, want 3 (resume)", p2.stage)
	}
	seconds := 0
	for _, s := range env2.Outbox {
		if sv, ok := s.Msg.(Second); ok {
			if !sv.HasV || sv.V != "w" {
				t.Fatalf("restart re-voted %#v, want maj=w", sv)
			}
			seconds++
		}
	}
	if seconds != n5 {
		t.Fatalf("restart sent %d SECOND messages, want one broadcast", seconds)
	}
}

func TestDecidedReplies(t *testing.T) {
	p, env := boot(t, 0, "v0")
	p.HandleMessage(1, Decided{Val: "v"})
	env.ClearOutbox()
	p.HandleMessage(2, Wab{LC: 9, Round: 3, Est: "x"})
	msgs := env.SentTo(2)
	if len(msgs) != 1 {
		t.Fatalf("decided process sent %v", env.Outbox)
	}
	if d, ok := msgs[0].(Decided); !ok || d.Val != "v" {
		t.Fatalf("reply = %#v", msgs[0])
	}
}
