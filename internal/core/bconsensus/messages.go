package bconsensus

import "repro/internal/core/consensus"

// Wab is a stage-1 message w-abcast through the ordering oracle. LC is the
// sender's Lamport timestamp; the oracle delivers Wab messages in
// (LC, sender) order after a 2δ hold-back.
type Wab struct {
	LC    uint64
	Round int64
	Est   consensus.Value
}

// Type implements consensus.Message.
func (Wab) Type() string { return "wab" }

// First is a stage-2 vote: the sender adopted Est from the oracle's first
// round-Round delivery.
type First struct {
	LC    uint64
	Round int64
	Est   consensus.Value
}

// Type implements consensus.Message.
func (First) Type() string { return "first" }

// Second is a stage-3 vote: HasV reports whether the sender observed a
// majority value V in stage 2 (V is meaningless when HasV is false). Est is
// the sender's current estimate, carried for round jumping.
type Second struct {
	LC    uint64
	Round int64
	Est   consensus.Value
	HasV  bool
	V     consensus.Value
}

// Type implements consensus.Message.
func (Second) Type() string { return "second" }

// Decided announces a decision.
type Decided struct {
	Val consensus.Value
}

// Type implements consensus.Message.
func (Decided) Type() string { return "decided" }
