package bconsensus

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const delta = 10 * time.Millisecond

func distinctProposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func cluster(t *testing.T, seed int64, netCfg simnet.Config) (*sim.Engine, *simnet.Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw, err := simnet.New(eng, netCfg, MustNew(Config{Delta: netCfg.Delta, Rho: netCfg.Rho}), distinctProposals(netCfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func requireAllDecided(t *testing.T, nw *simnet.Network, horizon time.Duration) time.Duration {
	t.Helper()
	ok, err := nw.RunUntilAllDecided(horizon)
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if !ok {
		t.Fatalf("cluster did not decide by %v (decided %d/%d)",
			horizon, nw.Checker().DecidedCount(), nw.Config().N)
	}
	last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
	return last
}

func TestDecidesSynchronous(t *testing.T) {
	for _, n := range []int{1, 3, 5, 9} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, nw := cluster(t, 1, simnet.Config{N: n, Delta: delta, TS: 0})
			nw.Start()
			last := requireAllDecided(t, nw, 5*time.Second)
			// One clean round: wab (δ) + hold-back (2δ+) + two vote
			// stages (2δ) + decided (δ) ≈ 6-7δ.
			if last > 9*delta {
				t.Errorf("decided at %v, want ≤ 9δ in one clean round", last)
			}
		})
	}
}

func TestDecidesODeltaAfterTS(t *testing.T) {
	// Claim C6: modified B-Consensus decides within O(δ) of TS, with a
	// delay "about the same as for the modified Paxos algorithm" (~17δ).
	ts := 300 * time.Millisecond
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		_, nw := cluster(t, seed, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.DropAll{}, Rho: 0.01})
		nw.Start()
		last := requireAllDecided(t, nw, 10*time.Second)
		if got := last - ts; got > 20*delta {
			t.Errorf("seed %d: decided %v after TS, want ≤ 20δ", seed, got)
		}
	}
}

func TestDecidesUnderChaos(t *testing.T) {
	ts := 200 * time.Millisecond
	for _, seed := range []int64{10, 11, 12, 13, 14} {
		_, nw := cluster(t, seed, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.6}, Rho: 0.01})
		nw.Start()
		last := requireAllDecided(t, nw, 10*time.Second)
		if got := last - ts; got > 25*delta {
			t.Errorf("seed %d: decided %v after TS", seed, got)
		}
	}
}

func TestFlatInN(t *testing.T) {
	// Leaderless: latency after TS must not scale with N (contrast with
	// the rotating-coordinator baseline).
	ts := 200 * time.Millisecond
	lat := map[int]time.Duration{}
	for _, n := range []int{3, 9, 17} {
		_, nw := cluster(t, 7, simnet.Config{N: n, Delta: delta, TS: ts, Policy: simnet.DropAll{}})
		nw.Start()
		last := requireAllDecided(t, nw, 10*time.Second)
		lat[n] = last - ts
	}
	if lat[17] > 3*lat[3]+5*delta {
		t.Errorf("latency scales with N: %v", lat)
	}
}

func TestMinorityCrashStillDecides(t *testing.T) {
	_, nw := cluster(t, 3, simnet.Config{N: 5, Delta: delta, TS: 0})
	nw.StartExcept(3, 4)
	ok, err := nw.RunUntilAllDecided(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("majority did not decide with 2/5 down")
	}
}

func TestAgreementWithDistinctProposals(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		_, nw := cluster(t, seed, simnet.Config{N: 5, Delta: delta, TS: 150 * time.Millisecond, Policy: simnet.Chaos{DropProb: 0.5}})
		nw.Start()
		requireAllDecided(t, nw, 10*time.Second)
		if err := nw.Checker().Violation(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRestartedProcessCatchesUp(t *testing.T) {
	ts := 200 * time.Millisecond
	eng, nw := cluster(t, 5, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.DropAll{}})
	nw.Start()
	nw.CrashAt(4, 50*time.Millisecond)
	restartAt := ts + 500*time.Millisecond
	nw.RestartAt(4, restartAt)
	eng.RunUntil(func() bool {
		_, d := nw.Node(4).Decided()
		return d
	}, 10*time.Second)
	if err := nw.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
	at, decided := nw.Node(4).DecidedAtGlobal()
	if !decided {
		t.Fatal("restarted process did not decide")
	}
	if got := at - restartAt; got > 4*delta {
		t.Errorf("restarted process took %v after restart, want ≤ 4δ", got)
	}
}

func TestOracleDeliversSameOrderAfterTS(t *testing.T) {
	// The §5 oracle property: after TS+2δ, the per-process sequences of
	// w-adelivered rounds must be consistent (we check the first
	// delivery of each round seeds the same estimate everywhere via the
	// agreement of FIRST votes — observable as: every process that emits
	// "wadeliver" for round r after TS+2δ proceeds to a decision without
	// conflicting votes, which the checker enforces).
	ts := 200 * time.Millisecond
	_, nw := cluster(t, 9, simnet.Config{N: 5, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.5}})
	nw.Start()
	requireAllDecided(t, nw, 10*time.Second)
	if len(nw.Collector().Series("wadeliver")) == 0 {
		t.Fatal("no oracle deliveries recorded")
	}
}

func TestRoundJumpingSkipsIntermediateRounds(t *testing.T) {
	// A process isolated before TS stays in a low round; when the
	// partition heals it must jump directly to the group's round, not
	// execute every intermediate round.
	ts := 400 * time.Millisecond
	eng := sim.NewEngine(4)
	groups := map[consensus.ProcessID]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1}
	nw, err := simnet.New(eng, simnet.Config{
		N: 5, Delta: delta, TS: ts,
		Policy: simnet.Partition{Group: groups},
	}, MustNew(Config{Delta: delta}), distinctProposals(5))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	requireAllDecided(t, nw, 10*time.Second)

	// Process 4's round series must not enumerate every round: the jump
	// shows up as an increment > 1 somewhere, or process 4 decided
	// having observed at most a couple of rounds. (Pre-TS the majority
	// partition burns through rounds; 4 is stuck in round 0.)
	series := nw.Collector().Series("round")
	maxOthers, p4Entries := int64(0), 0
	var p4Jump bool
	var p4Prev int64 = -1
	for _, s := range series {
		if s.Proc == 4 {
			p4Entries++
			if p4Prev >= 0 && s.Value > p4Prev+1 {
				p4Jump = true
			}
			p4Prev = s.Value
		} else if s.Value > maxOthers {
			maxOthers = s.Value
		}
	}
	if maxOthers < 2 {
		t.Skipf("majority partition only reached round %d; jump not exercised", maxOthers)
	}
	if !p4Jump && p4Entries > int(maxOthers)+1 {
		t.Errorf("process 4 executed %d round entries up to round %d without jumping", p4Entries, maxOthers)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Delta: delta, Rho: 1},
		{Delta: delta, Eps: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestSafetyUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := eng.Rand()
			n := 3 + rng.Intn(4)
			ts := time.Duration(100+rng.Intn(200)) * time.Millisecond
			nw, err := simnet.New(eng, simnet.Config{
				N: n, Delta: delta, TS: ts,
				Policy: simnet.Chaos{DropProb: 0.3 + 0.5*rng.Float64()},
				Rho:    0.02 * rng.Float64(),
			}, MustNew(Config{Delta: delta, Rho: 0.02}), distinctProposals(n))
			if err != nil {
				t.Fatal(err)
			}
			nw.Start()
			crashes := rng.Intn(consensus.Majority(n))
			for i := 0; i < crashes; i++ {
				id := consensus.ProcessID(rng.Intn(n))
				at := time.Duration(rng.Int63n(int64(ts)))
				nw.CrashAt(id, at)
				nw.RestartAt(id, at+time.Duration(rng.Int63n(int64(ts))))
			}
			ok, err := nw.RunUntilAllDecided(30 * time.Second)
			if err != nil {
				t.Fatalf("safety violation: %v", err)
			}
			if !ok {
				t.Fatalf("no decision by horizon (decided %d/%d)", nw.Checker().DecidedCount(), n)
			}
		})
	}
}
