package clock

// Lamport is a Lamport logical clock [Lamport 1978], used by the modified
// B-Consensus message-delivery oracle (§5): every broadcast is timestamped,
// and after a process receives a message m, every message it sends carries a
// timestamp greater than m's.
//
// Lamport is not safe for concurrent use; in this repository each process
// owns its clock and all calls happen on the process's event loop.
type Lamport struct {
	now uint64
}

// Now returns the current logical time without advancing the clock.
func (l *Lamport) Now() uint64 { return l.now }

// Tick advances the clock for a local event (such as sending a message) and
// returns the new timestamp.
func (l *Lamport) Tick() uint64 {
	l.now++
	return l.now
}

// Witness merges an observed remote timestamp into the clock: the clock
// jumps to max(local, remote) + 1, guaranteeing that every subsequent
// timestamp exceeds the witnessed one.
func (l *Lamport) Witness(remote uint64) uint64 {
	if remote > l.now {
		l.now = remote
	}
	l.now++
	return l.now
}
