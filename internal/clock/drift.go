// Package clock provides the clock models used throughout the repository:
// drifting physical clocks with a bounded rate error (the paper's ρ), and
// Lamport logical clocks (used by the §5 message-delivery oracle).
package clock

import (
	"fmt"
	"time"
)

// Drift models a process-local physical clock as an affine function of
// global time:
//
//	local(t) = Offset + Rate·(t − Start)   for global time t ≥ Start.
//
// The paper assumes that after stabilization every clock has a rate error of
// at most ρ ≪ 1, i.e. Rate ∈ [1−ρ, 1+ρ]. Offset may be arbitrary: the paper
// never assumes synchronized clocks, only bounded rates.
//
// The zero value is a perfect clock (Rate treated as 1, no offset).
type Drift struct {
	// Rate is the speed of the local clock relative to global time.
	// A Rate of 0 is interpreted as 1 (so the zero value is usable).
	Rate float64
	// Offset is the local clock reading at global time Start.
	Offset time.Duration
	// Start is the global time at which this clock description begins.
	Start time.Duration
}

// Perfect returns a drift-free clock with zero offset.
func Perfect() Drift { return Drift{Rate: 1} }

// WithRate returns a zero-offset clock running at the given rate.
func WithRate(rate float64) Drift { return Drift{Rate: rate} }

// rate returns the effective rate, mapping the zero value to 1.
func (d Drift) rate() float64 {
	if d.Rate == 0 {
		return 1
	}
	return d.Rate
}

// Local converts a global time to this clock's local reading.
func (d Drift) Local(global time.Duration) time.Duration {
	return d.Offset + time.Duration(float64(global-d.Start)*d.rate())
}

// Global converts a local clock reading back to global time. It is the
// inverse of Local.
func (d Drift) Global(local time.Duration) time.Duration {
	return d.Start + time.Duration(float64(local-d.Offset)/d.rate())
}

// GlobalElapsed returns the global time that passes while the local clock
// advances by the given local duration.
func (d Drift) GlobalElapsed(local time.Duration) time.Duration {
	return time.Duration(float64(local) / d.rate())
}

// LocalElapsed returns the local-clock advance over the given global
// duration.
func (d Drift) LocalElapsed(global time.Duration) time.Duration {
	return time.Duration(float64(global) * d.rate())
}

// Validate reports an error if the drift is not a usable clock (non-positive
// rate).
func (d Drift) Validate() error {
	if d.rate() <= 0 {
		return fmt.Errorf("clock: non-positive rate %v", d.Rate)
	}
	return nil
}

// String implements fmt.Stringer.
func (d Drift) String() string {
	return fmt.Sprintf("Drift{rate=%.4f offset=%v}", d.rate(), d.Offset)
}

// TimerBudget computes the local-clock duration a process should arm a timer
// with so that, for any clock rate in [1−rho, 1+rho], the timer fires no
// earlier than minGlobal global seconds after it is set. The worst case for
// firing early is a fast clock (rate 1+rho).
//
// This is exactly the paper's session-timer construction (§4): the process
// wants a timeout in the global window [4δ, σ]; arming
// TimerBudget(4δ, ρ) = 4δ·(1+ρ) local seconds guarantees the lower edge, and
// the upper edge is MaxGlobal(TimerBudget(4δ,ρ), ρ) = 4δ·(1+ρ)/(1−ρ) ≤ σ.
func TimerBudget(minGlobal time.Duration, rho float64) time.Duration {
	return time.Duration(float64(minGlobal) * (1 + rho))
}

// MaxGlobal returns the largest global duration a timer armed with the given
// local duration can take to fire, over all rates in [1−rho, 1+rho]. The
// worst case is a slow clock (rate 1−rho).
func MaxGlobal(local time.Duration, rho float64) time.Duration {
	return time.Duration(float64(local) / (1 - rho))
}

// SigmaFor returns the smallest σ compatible with the paper's session-timer
// requirement for a given δ and ρ: σ = 4δ·(1+ρ)/(1−ρ) ≥ 4δ.
func SigmaFor(delta time.Duration, rho float64) time.Duration {
	return MaxGlobal(TimerBudget(4*delta, rho), rho)
}
