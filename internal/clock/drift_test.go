package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueIsPerfectClock(t *testing.T) {
	var d Drift
	if got := d.Local(10 * time.Second); got != 10*time.Second {
		t.Fatalf("zero-value Local(10s) = %v, want 10s", got)
	}
	if got := d.Global(10 * time.Second); got != 10*time.Second {
		t.Fatalf("zero-value Global(10s) = %v, want 10s", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("zero value should validate: %v", err)
	}
}

func TestLocalGlobalRoundTrip(t *testing.T) {
	cases := []Drift{
		Perfect(),
		WithRate(1.01),
		WithRate(0.99),
		{Rate: 1.05, Offset: 3 * time.Second, Start: time.Second},
		{Rate: 0.9, Offset: -2 * time.Second, Start: 5 * time.Second},
	}
	for _, d := range cases {
		for _, g := range []time.Duration{0, time.Millisecond, time.Second, 90 * time.Second} {
			local := d.Local(g)
			back := d.Global(local)
			if diff := back - g; diff < -time.Microsecond || diff > time.Microsecond {
				t.Errorf("%v: round trip of %v gave %v (diff %v)", d, g, back, diff)
			}
		}
	}
}

func TestFastClockReadsAhead(t *testing.T) {
	fast := WithRate(1.1)
	slow := WithRate(0.9)
	g := 10 * time.Second
	if fast.Local(g) <= g {
		t.Errorf("fast clock should read ahead of global: %v <= %v", fast.Local(g), g)
	}
	if slow.Local(g) >= g {
		t.Errorf("slow clock should read behind global: %v >= %v", slow.Local(g), g)
	}
}

func TestGlobalElapsed(t *testing.T) {
	// A clock running 10% fast reaches a 1s local timeout in less than 1s
	// of global time.
	fast := WithRate(1.1)
	got := fast.GlobalElapsed(1100 * time.Millisecond)
	if diff := got - time.Second; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("GlobalElapsed = %v, want ~1s", got)
	}
}

func TestValidate(t *testing.T) {
	if err := WithRate(-1).Validate(); err == nil {
		t.Error("negative rate should not validate")
	}
	if err := WithRate(1).Validate(); err != nil {
		t.Errorf("unit rate should validate: %v", err)
	}
}

// TestTimerBudgetNeverFiresEarly is the paper's session-timer requirement:
// a timer armed with TimerBudget(minGlobal, rho) local seconds must take at
// least minGlobal global seconds to fire, for every rate in [1-rho, 1+rho],
// and at most SigmaFor(delta, rho) when minGlobal = 4delta.
func TestTimerBudgetNeverFiresEarly(t *testing.T) {
	const rho = 0.01
	delta := 10 * time.Millisecond
	minGlobal := 4 * delta
	local := TimerBudget(minGlobal, rho)
	sigma := SigmaFor(delta, rho)

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		rate := 1 - rho + 2*rho*rng.Float64()
		d := WithRate(rate)
		globalToFire := d.GlobalElapsed(local)
		if globalToFire < minGlobal-time.Microsecond {
			t.Fatalf("rate %.4f: timer fired after %v global, before the %v floor", rate, globalToFire, minGlobal)
		}
		if globalToFire > sigma+time.Microsecond {
			t.Fatalf("rate %.4f: timer fired after %v global, beyond sigma=%v", rate, globalToFire, sigma)
		}
	}
}

func TestSigmaForApproaches4DeltaForAccurateTimers(t *testing.T) {
	delta := 10 * time.Millisecond
	sigma := SigmaFor(delta, 0.0001)
	if sigma < 4*delta {
		t.Fatalf("sigma %v below 4delta %v", sigma, 4*delta)
	}
	if sigma > 4*delta+delta/100 {
		t.Fatalf("sigma %v should be within 1%% of 4delta for rho=0.01%%", sigma)
	}
}

// Property: Local and Global are inverses (within integer-nanosecond
// rounding) for all reasonable rates and times.
func TestQuickLocalGlobalInverse(t *testing.T) {
	f := func(rateMilli uint16, offMs int32, gMs uint32) bool {
		rate := 0.5 + float64(rateMilli%1000)/1000.0 // [0.5, 1.5)
		d := Drift{Rate: rate, Offset: time.Duration(offMs) * time.Millisecond}
		g := time.Duration(gMs) * time.Millisecond
		back := d.Global(d.Local(g))
		diff := back - g
		return diff >= -time.Microsecond && diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLamportMonotone(t *testing.T) {
	var l Lamport
	prev := l.Now()
	for i := 0; i < 100; i++ {
		ts := l.Tick()
		if ts <= prev {
			t.Fatalf("Tick not strictly increasing: %d after %d", ts, prev)
		}
		prev = ts
	}
}

func TestLamportWitness(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	if got := l.Witness(10); got != 11 {
		t.Fatalf("Witness(10) = %d, want 11", got)
	}
	if got := l.Witness(5); got != 12 {
		t.Fatalf("Witness(5) after 11 = %d, want 12", got)
	}
}

// Property: after witnessing any remote timestamp, the next local timestamp
// strictly exceeds it (the happened-before guarantee the oracle relies on).
func TestQuickWitnessExceedsRemote(t *testing.T) {
	f := func(local, remote uint32) bool {
		l := Lamport{now: uint64(local)}
		return l.Witness(uint64(remote)) > uint64(remote)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
