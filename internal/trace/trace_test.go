package trace

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMessageCounters(t *testing.T) {
	c := NewCollector()
	c.MessageSent("p1a")
	c.MessageSent("p1a")
	c.MessageSent("p2b")
	c.MessageDelivered("p1a")
	c.MessageDropped("p2b")

	if got := c.TotalSent(); got != 3 {
		t.Fatalf("TotalSent = %d, want 3", got)
	}
	if got := c.TotalDropped(); got != 1 {
		t.Fatalf("TotalDropped = %d, want 1", got)
	}
	byType := c.SentByType()
	if byType["p1a"] != 2 || byType["p2b"] != 1 {
		t.Fatalf("SentByType = %v", byType)
	}
	report := c.MessageReport()
	if !strings.Contains(report, "p1a") || !strings.Contains(report, "p2b") {
		t.Fatalf("report missing types:\n%s", report)
	}
}

func TestSentBetweenSnapshots(t *testing.T) {
	c := NewCollector()
	c.MessageSent("x")
	before := c.SentByType()
	c.MessageSent("x")
	c.MessageSent("y")
	after := c.SentByType()
	if got := c.SentBetween(before, after); got != 2 {
		t.Fatalf("SentBetween = %d, want 2", got)
	}
}

func TestSeries(t *testing.T) {
	c := NewCollector()
	c.Emit(10*time.Millisecond, 0, "session", 1)
	c.Emit(20*time.Millisecond, 1, "session", 2)
	c.Emit(30*time.Millisecond, 0, "session", 3)
	c.Emit(5*time.Millisecond, 2, "round", 1)

	s := c.Series("session")
	if len(s) != 3 || s[1].Value != 2 || s[1].Proc != 1 {
		t.Fatalf("Series = %+v", s)
	}
	names := c.SeriesNames()
	if len(names) != 2 || names[0] != "round" || names[1] != "session" {
		t.Fatalf("SeriesNames = %v", names)
	}
	if v, ok := c.MaxSeriesValueAt("session", 25*time.Millisecond); !ok || v != 2 {
		t.Fatalf("MaxSeriesValueAt(25ms) = %d, %v; want 2, true", v, ok)
	}
	if v, ok := c.MaxSeriesValueAt("session", time.Hour); !ok || v != 3 {
		t.Fatalf("MaxSeriesValueAt(1h) = %d, %v; want 3, true", v, ok)
	}
	if _, ok := c.MaxSeriesValueAt("nosuch", time.Hour); ok {
		t.Fatal("MaxSeriesValueAt on missing series should report absence")
	}
	// Returned slice must be a copy.
	s[0].Value = 999
	if c.Series("session")[0].Value == 999 {
		t.Fatal("Series aliased internal storage")
	}
}

func TestLogging(t *testing.T) {
	c := NewCollector()
	c.Logf(time.Millisecond, 0, "dropped %d", 1) // disabled: discarded
	if len(c.Logs()) != 0 {
		t.Fatal("logging should be off by default")
	}
	c.EnableLogging(2)
	c.Logf(time.Millisecond, 0, "a")
	c.Logf(time.Millisecond, 1, "b")
	c.Logf(time.Millisecond, 2, "c") // over limit: discarded
	logs := c.Logs()
	if len(logs) != 2 {
		t.Fatalf("got %d log lines, want 2", len(logs))
	}
	if !strings.Contains(logs[0], "p0") || !strings.Contains(logs[0], "a") {
		t.Fatalf("unexpected log line %q", logs[0])
	}
}

func TestCollectorConcurrentUse(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.MessageSent("m")
				c.Emit(time.Duration(j), p, "k", int64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := c.TotalSent(); got != 800 {
		t.Fatalf("TotalSent = %d, want 800", got)
	}
	if got := len(c.Series("k")); got != 800 {
		t.Fatalf("series len = %d, want 800", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{40, 10, 20, 30})
	if s.Count != 4 || s.Min != 10 || s.Max != 40 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Mean != 25 {
		t.Fatalf("Mean = %v, want 25", s.Mean)
	}
	if s.Median != 25 {
		t.Fatalf("Median = %v, want 25", s.Median)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty Summarize should be zero")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {-1, 10}, {2, 50},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%.2f) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile of empty should be 0")
	}
}

// Property: Min ≤ Median ≤ P95 ≤ Max and Min ≤ Mean ≤ Max for any sample set.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, r := range raw {
			samples[i] = time.Duration(r)
		}
		s := Summarize(samples)
		return s.Min <= s.Median && s.Median <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestInDelta(t *testing.T) {
	if got := InDelta(170*time.Millisecond, 10*time.Millisecond); got != "17.0δ" {
		t.Fatalf("InDelta = %q, want 17.0δ", got)
	}
	if got := InDelta(time.Second, 0); got != "1s" {
		t.Fatalf("InDelta with zero delta = %q", got)
	}
}

func TestSummaryStrings(t *testing.T) {
	s := Summarize([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	if str := s.String(); !strings.Contains(str, "n=2") {
		t.Fatalf("String = %q", str)
	}
	if str := s.StringInDelta(10 * time.Millisecond); !strings.Contains(str, "δ") {
		t.Fatalf("StringInDelta = %q", str)
	}
}

// TestInternedCountersMergeWithStringPath checks the two write paths — the
// simulator's interned lock-free counters and the live runtime's mutexed
// string-keyed methods — surface as one merged table to every reader, and
// that pre-interned types the run never used stay invisible.
func TestInternedCountersMergeWithStringPath(t *testing.T) {
	c := NewCollector()
	p1a := c.Intern("p1a")
	unused := c.Intern("never-sent")
	if p1a == unused {
		t.Fatal("distinct names interned to one ID")
	}
	if again := c.Intern("p1a"); again != p1a {
		t.Fatalf("re-intern returned %d, want %d", again, p1a)
	}
	c.SentID(p1a)
	c.SentID(p1a)
	c.DeliveredID(p1a)
	c.DroppedID(p1a)
	c.MessageSent("p1a") // live-path write to the same type name
	c.MessageSent("live-only")
	c.MessageDropped("live-only")

	if got := c.TotalSent(); got != 4 {
		t.Fatalf("TotalSent = %d, want 4", got)
	}
	if got := c.TotalDropped(); got != 2 {
		t.Fatalf("TotalDropped = %d, want 2", got)
	}
	sent := c.SentByType()
	if sent["p1a"] != 3 || sent["live-only"] != 1 {
		t.Fatalf("SentByType = %v", sent)
	}
	if _, ok := sent["never-sent"]; ok {
		t.Fatalf("unused pre-interned type surfaced in SentByType: %v", sent)
	}
	if got := c.DeliveredByType()["p1a"]; got != 1 {
		t.Fatalf("DeliveredByType[p1a] = %d, want 1", got)
	}
	report := c.MessageReport()
	if !strings.Contains(report, "p1a") || !strings.Contains(report, "live-only") {
		t.Fatalf("MessageReport missing merged rows:\n%s", report)
	}
	if strings.Contains(report, "never-sent") {
		t.Fatalf("MessageReport shows unused type:\n%s", report)
	}
}
