package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimelineProcess is one run in a Chrome-trace timeline: the snapshot's
// spans render under one trace "process" (pid), with one "thread" (tid) per
// consensus process plus a run-level lane. A multi-run report exports each
// (protocol, seed) run as its own pid so timelines stay side by side in one
// file.
type TimelineProcess struct {
	// PID is the trace process ID (any distinct small integer).
	PID int
	// Name labels the process in the viewer ("scenario/protocol/seed=N").
	Name string
	// Snap is the run's observability snapshot.
	Snap Snapshot
}

// chromeEvent is one entry of the Chrome trace event format
// (chrome://tracing and https://ui.perfetto.dev consume it). Only the "X"
// (complete) and "M" (metadata) phases are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// runLevelTID is the tid of the run-level lane (spans with Proc −1);
// process p renders as tid p+1. Chrome trace tids must be non-negative.
const runLevelTID = 0

// WriteChromeTrace writes the runs as one Chrome-trace-format JSON document.
// Span times are exported in microseconds (the format's unit); virtual
// simulator time and live wall time are both durations since run start, so
// the same Spec produces directly comparable timelines on either backend.
func WriteChromeTrace(w io.Writer, procs []TimelineProcess) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, p := range procs {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: p.PID, TID: runLevelTID,
			Args: map[string]any{"name": p.Name},
		})
		tids := map[int]bool{}
		for _, sp := range p.Snap.Spans {
			tids[sp.Proc+1] = true
		}
		tidList := make([]int, 0, len(tids))
		for tid := range tids {
			tidList = append(tidList, tid)
		}
		sort.Ints(tidList)
		for _, tid := range tidList {
			name := fmt.Sprintf("p%d", tid-1)
			if tid == runLevelTID {
				name = "run"
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: p.PID, TID: tid,
				Args: map[string]any{"name": name},
			})
		}
		for _, sp := range p.Snap.Spans {
			dur := float64(sp.End-sp.Start) / 1e3
			args := map[string]any{"value": sp.Value}
			if sp.Open {
				args["open"] = true
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s %d", sp.Kind, sp.Value),
				Cat:  sp.Kind,
				Ph:   "X",
				Ts:   float64(sp.Start) / 1e3,
				Dur:  &dur,
				PID:  p.PID,
				TID:  sp.Proc + 1,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
