package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanRingWraparound(t *testing.T) {
	c := NewCollector()
	c.EnableSpans(4)
	for i := 0; i < 10; i++ {
		c.Span(time.Duration(i)*time.Millisecond, 0, SpanRound, true, int64(i))
	}
	evs := c.SpanEvents()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 returned %d events", len(evs))
	}
	// Oldest-first unwrap: the last 4 writes, in emission order.
	for i, ev := range evs {
		if want := int64(6 + i); ev.Value != want {
			t.Fatalf("event %d has value %d, want %d (events %+v)", i, ev.Value, want, evs)
		}
	}
	if got := c.SpansDropped(); got != 6 {
		t.Fatalf("SpansDropped = %d, want 6", got)
	}
	// A snapshot surfaces the loss.
	if snap := c.Snapshot(); snap.SpansDropped != 6 {
		t.Fatalf("Snapshot.SpansDropped = %d, want 6", snap.SpansDropped)
	}
}

func TestSpanDisabledRecordsNothing(t *testing.T) {
	c := NewCollector()
	c.Span(time.Millisecond, 0, SpanRound, true, 1)
	if got := c.SpanEvents(); len(got) != 0 {
		t.Fatalf("disabled collector recorded %d span events", len(got))
	}
}

func TestPairSpansBeginReplacesOpen(t *testing.T) {
	c := NewCollector()
	c.EnableSpans(0)
	// Round progression on proc 0: begins only; a new begin closes the
	// previous round. Proc 1 interleaves without interference.
	c.Span(1*time.Millisecond, 0, SpanRound, true, 1)
	c.Span(2*time.Millisecond, 1, SpanRound, true, 1)
	c.Span(5*time.Millisecond, 0, SpanRound, true, 2)
	c.Span(9*time.Millisecond, 0, SpanRound, false, 2)
	// Unmatched end: dropped.
	c.Span(9*time.Millisecond, 2, SpanBallot, false, 7)

	snap := c.Snapshot()
	var got []Span
	for _, s := range snap.Spans {
		if s.Kind == SpanRound {
			got = append(got, s)
		}
	}
	if len(got) != 3 {
		t.Fatalf("got %d round spans, want 3: %+v", len(got), got)
	}
	// Sorted by start: p0 r1 [1,5), p1 r1 [2,end) open, p0 r2 [5,9].
	if got[0].Proc != 0 || got[0].Start != 1*time.Millisecond || got[0].End != 5*time.Millisecond || got[0].Open {
		t.Fatalf("first span %+v", got[0])
	}
	if got[1].Proc != 1 || !got[1].Open || got[1].End != snap.End {
		t.Fatalf("second span %+v (end %v)", got[1], snap.End)
	}
	if got[2].Proc != 0 || got[2].Start != 5*time.Millisecond || got[2].End != 9*time.Millisecond || got[2].Open {
		t.Fatalf("third span %+v", got[2])
	}
	for _, s := range snap.Spans {
		if s.Kind == SpanBallot {
			t.Fatalf("unmatched end survived pairing: %+v", s)
		}
	}
}

func TestRecordRunPhases(t *testing.T) {
	c := NewCollector()
	c.EnableSpans(0)
	c.RecordRunPhases(200*time.Millisecond, 350*time.Millisecond)
	snap := c.Snapshot()
	want := map[string][2]time.Duration{
		SpanRun:    {0, 350 * time.Millisecond},
		SpanPreTS:  {0, 200 * time.Millisecond},
		SpanPostTS: {200 * time.Millisecond, 350 * time.Millisecond},
	}
	if len(snap.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d: %+v", len(snap.Spans), len(want), snap.Spans)
	}
	for _, s := range snap.Spans {
		w, ok := want[s.Kind]
		if !ok {
			t.Fatalf("unexpected span kind %q", s.Kind)
		}
		if s.Start != w[0] || s.End != w[1] || s.Proc != -1 || s.Open {
			t.Fatalf("span %q = %+v, want [%v, %v] on proc -1", s.Kind, s, w[0], w[1])
		}
	}
	// TS at or beyond the end: no empty post-ts span.
	c2 := NewCollector()
	c2.EnableSpans(0)
	c2.RecordRunPhases(400*time.Millisecond, 350*time.Millisecond)
	for _, s := range c2.Snapshot().Spans {
		if s.Kind == SpanPostTS {
			t.Fatalf("post-ts span recorded for TS beyond run end: %+v", s)
		}
	}
}

// TestDisabledPathAllocFree pins the PR 5 guarantee this feature must not
// regress: with spans and histograms off, the instrumented call sites cost a
// branch and allocate nothing.
func TestDisabledPathAllocFree(t *testing.T) {
	c := NewCollector()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Span(time.Millisecond, 0, SpanRound, true, 1)
		c.ObserveLatency(HistDecideLatency, time.Millisecond)
		c.ObserveValue(HistQueueDepth, 9)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestChromeTraceWriter(t *testing.T) {
	c := NewCollector()
	c.EnableSpans(0)
	c.EnableHistograms()
	c.Span(1*time.Millisecond, 0, SpanRound, true, 1)
	c.Span(4*time.Millisecond, 0, SpanRound, false, 1)
	c.RecordRunPhases(2*time.Millisecond, 5*time.Millisecond)
	c.ObserveLatency(HistDecideLatency, 3*time.Millisecond)

	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []TimelineProcess{{PID: 0, Name: "test/run", Snap: c.Snapshot()}})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, meta int
	var sawRound bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur == nil {
				t.Fatalf("complete event without dur: %+v", ev)
			}
			if ev.Cat == SpanRound {
				sawRound = true
				// Proc 0 renders on tid 1 (tid 0 is the run-level lane).
				if ev.TID != 1 {
					t.Fatalf("round span on tid %d, want 1", ev.TID)
				}
				if ev.Ts != 1000 || *ev.Dur != 3000 {
					t.Fatalf("round span ts=%v dur=%v, want 1000/3000 µs", ev.Ts, *ev.Dur)
				}
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete < 4 || meta < 2 || !sawRound {
		t.Fatalf("trace has %d complete events, %d metadata, round=%v:\n%s",
			complete, meta, sawRound, buf.String())
	}
	if !strings.Contains(buf.String(), `"process_name"`) {
		t.Fatal("missing process_name metadata")
	}
}

func TestSnapshotSummary(t *testing.T) {
	c := NewCollector()
	c.EnableSpans(0)
	c.EnableHistograms()
	c.RecordRunPhases(100*time.Millisecond, 300*time.Millisecond)
	c.ObserveLatency(HistDecideLatency, 42*time.Millisecond)
	s := c.Snapshot().Summary()
	for _, want := range []string{SpanRun, SpanPreTS, SpanPostTS, HistDecideLatency} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
