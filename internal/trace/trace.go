// Package trace collects events and metrics from a consensus run: message
// counts by type, per-process decision times, and arbitrary named time
// series (session numbers, round numbers) that the experiments plot.
//
// A single Collector is shared by all nodes of a run. It is safe for
// concurrent use so the live goroutine runtime can share it; under the
// single-threaded simulator the locking is uncontended.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample is one observation in a named time series.
type Sample struct {
	// At is the global time of the observation.
	At time.Duration
	// Proc is the observing process.
	Proc int
	// Value is the observed value (for example a session number).
	Value int64
}

// Collector accumulates the events of one run. The zero value is ready to
// use.
//
// Message counting has two write paths. The single-threaded simulator
// interns message-type strings into dense IDs (Intern) and bumps plain
// per-ID counters (SentID/DeliveredID/DroppedID) — no lock, no map, no
// allocation per message. The live goroutine runtime keeps using the
// mutexed string-keyed methods (MessageSent/MessageDelivered/
// MessageDropped). Every reader merges both tables, so reports are
// identical whichever substrate fed the collector.
type Collector struct {
	mu sync.Mutex

	sent      map[string]int // messages sent, by Message.Type
	delivered map[string]int // messages delivered, by Message.Type
	dropped   map[string]int // messages dropped (loss or dead recipient)
	series    map[string][]Sample
	logs      []string
	logLimit  int
	logging   bool
	observers []func(kind string, s Sample)

	// Interned counter table: ids maps a type name to its dense ID (an
	// index into types and the three counter slices). Written only by the
	// single-threaded sim backend; see Intern.
	ids         map[string]int
	types       []string
	sentByID    []int64
	deliveredID []int64
	droppedByID []int64

	// Span ring (span.go). spansOn gates emission with a plain bool read;
	// it must be set (EnableSpans) before the run starts. spanTotal counts
	// every record ever written, so wraparound drops are observable.
	spansOn       bool
	spanBuf       []SpanEvent
	spanHead      int
	spanTotal     uint64
	spanKindIDs   map[string]int32
	spanKindNames []string

	// Histogram registry (hist.go). histOn gates observation like spansOn.
	// histIDs/histByID form the sim-only interned fast path, mirroring the
	// message-type counter table above.
	histOn   bool
	hists    map[string]*Histogram
	histIDs  map[string]int
	histByID []*Histogram
}

// NewCollector returns an empty collector with logging disabled.
func NewCollector() *Collector { return &Collector{} }

// Intern returns the dense counter ID for a message-type name, assigning
// the next ID on first use. The interned fast path is deliberately
// lock-free: only the deterministic simulator — a single goroutine — calls
// Intern and the per-ID increment methods, and its results are read after
// the run completes. Concurrent writers (the live runtime) must use the
// mutexed string-keyed methods instead.
//
// The protocol registry's Messages lists are pre-interned by the harness at
// run setup, so in the steady state Intern is a single map read.
func (c *Collector) Intern(name string) int {
	if id, ok := c.ids[name]; ok {
		return id
	}
	if c.ids == nil {
		c.ids = make(map[string]int, 8)
	}
	id := len(c.types)
	c.ids[name] = id
	c.types = append(c.types, name)
	c.sentByID = append(c.sentByID, 0)
	c.deliveredID = append(c.deliveredID, 0)
	c.droppedByID = append(c.droppedByID, 0)
	return id
}

// TypeName resolves an interned message-type ID (sim backend only; the
// table is written lock-free by Intern).
func (c *Collector) TypeName(id int) string {
	if id < 0 || id >= len(c.types) {
		return ""
	}
	return c.types[id]
}

// SentID records a send on the interned fast path (sim backend only).
func (c *Collector) SentID(id int) { c.sentByID[id]++ }

// DeliveredID records a delivery on the interned fast path.
func (c *Collector) DeliveredID(id int) { c.deliveredID[id]++ }

// DroppedID records a drop on the interned fast path.
func (c *Collector) DroppedID(id int) { c.droppedByID[id]++ }

// SentIDN records n sends of one type in a single increment — the batched
// broadcast path's O(1) accounting (sim backend only).
func (c *Collector) SentIDN(id, n int) { c.sentByID[id] += int64(n) }

// DroppedIDN records n drops of one type in a single increment.
func (c *Collector) DroppedIDN(id, n int) { c.droppedByID[id] += int64(n) }

// EnableLogging turns on retention of Logf lines, keeping at most limit
// lines (0 means unlimited).
func (c *Collector) EnableLogging(limit int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logging = true
	c.logLimit = limit
}

// MessageSent records that a message of the given type was handed to the
// network.
func (c *Collector) MessageSent(msgType string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sent == nil {
		c.sent = make(map[string]int)
	}
	c.sent[msgType]++
}

// MessageDelivered records a successful delivery.
func (c *Collector) MessageDelivered(msgType string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.delivered == nil {
		c.delivered = make(map[string]int)
	}
	c.delivered[msgType]++
}

// MessageDropped records a message lost in transit or arriving at a crashed
// process.
func (c *Collector) MessageDropped(msgType string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped == nil {
		c.dropped = make(map[string]int)
	}
	c.dropped[msgType]++
}

// Emit appends an observation to the named series.
func (c *Collector) Emit(at time.Duration, proc int, kind string, value int64) {
	s := Sample{At: at, Proc: proc, Value: value}
	c.mu.Lock()
	if c.series == nil {
		c.series = make(map[string][]Sample)
	}
	c.series[kind] = append(c.series[kind], s)
	obs := c.observers
	c.mu.Unlock()
	// Observers run outside the lock so they may re-enter the collector
	// (e.g. a fault schedule crashing the emitting process, which drops
	// messages and records the drops here).
	for _, fn := range obs {
		fn(kind, s)
	}
}

// OnEmit registers an observer called synchronously on every Emit. The
// scenario engine's fault schedules use this to react to protocol progress
// (a process entering a round or session) without protocol-specific wiring.
func (c *Collector) OnEmit(fn func(kind string, s Sample)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observers = append(c.observers, fn)
}

// Logf records a formatted log line if logging is enabled.
func (c *Collector) Logf(at time.Duration, proc int, format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.logging {
		return
	}
	if c.logLimit > 0 && len(c.logs) >= c.logLimit {
		return
	}
	c.logs = append(c.logs, fmt.Sprintf("%10v p%-2d %s", at, proc, fmt.Sprintf(format, args...)))
}

// Logs returns the retained log lines.
func (c *Collector) Logs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.logs))
	copy(out, c.logs)
	return out
}

// TotalSent returns the total number of messages sent.
func (c *Collector) TotalSent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.sent {
		total += n
	}
	for _, n := range c.sentByID {
		total += int(n)
	}
	return total
}

// TotalDropped returns the total number of messages dropped.
func (c *Collector) TotalDropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.dropped {
		total += n
	}
	for _, n := range c.droppedByID {
		total += int(n)
	}
	return total
}

// merged returns the union of a string-keyed count map and an interned
// counter column, skipping zero entries of the interned table (a
// pre-interned type the run never used must not surface as "type: 0").
func (c *Collector) merged(m map[string]int, byID []int64) map[string]int {
	out := make(map[string]int, len(m)+len(byID))
	for k, v := range m {
		out[k] = v
	}
	for id, v := range byID {
		if v != 0 {
			out[c.types[id]] += int(v)
		}
	}
	return out
}

// SentByType returns a copy of the per-type send counts.
func (c *Collector) SentByType() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged(c.sent, c.sentByID)
}

// DeliveredByType returns a copy of the per-type delivery counts.
func (c *Collector) DeliveredByType() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged(c.delivered, c.deliveredID)
}

// DroppedByType returns a copy of the per-type drop counts.
func (c *Collector) DroppedByType() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged(c.dropped, c.droppedByID)
}

// TypeCount is one entry of a sorted per-type counts listing.
type TypeCount struct {
	Type  string `json:"type"`
	Count int    `json:"count"`
}

// sortedCounts renders a counts map as a name-sorted slice.
func sortedCounts(m map[string]int) []TypeCount {
	out := make([]TypeCount, 0, len(m))
	for k, v := range m {
		out = append(out, TypeCount{Type: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// SentCounts returns the per-type send counts sorted by type name — the
// deterministically ordered form of SentByType, for renderers and tests
// that iterate.
func (c *Collector) SentCounts() []TypeCount {
	return sortedCounts(c.SentByType())
}

// DeliveredCounts returns the per-type delivery counts sorted by type name.
func (c *Collector) DeliveredCounts() []TypeCount {
	return sortedCounts(c.DeliveredByType())
}

// DroppedCounts returns the per-type drop counts sorted by type name.
func (c *Collector) DroppedCounts() []TypeCount {
	return sortedCounts(c.DroppedByType())
}

// SentBetween returns how many send events of series-agnostic messages
// occurred; the network calls MessageSent once per Send, so rates over an
// interval are computed by the caller from snapshots.
func (c *Collector) SentBetween(before, after map[string]int) int {
	total := 0
	for k, v := range after {
		total += v - before[k]
	}
	return total
}

// Series returns a copy of the named time series ordered by observation
// time (stable, so samples at the same instant keep emission order). Under
// the simulator emission order already is time order; under the live
// runtime concurrent writers append in scheduler order, and the sort makes
// the returned series deterministic in content, not in race outcome.
func (c *Collector) Series(kind string) []Sample {
	c.mu.Lock()
	s := c.series[kind]
	out := make([]Sample, len(s))
	copy(out, s)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// SeriesNames returns the names of all emitted series, sorted.
func (c *Collector) SeriesNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.series))
	for k := range c.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MaxSeriesValueAt returns the maximum value observed in the named series at
// or before the given time, and whether any observation exists.
func (c *Collector) MaxSeriesValueAt(kind string, at time.Duration) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best int64
	found := false
	for _, s := range c.series[kind] {
		if s.At <= at && (!found || s.Value > best) {
			best = s.Value
			found = true
		}
	}
	return best, found
}

// MessageReport formats the send/deliver/drop counts as a small table. The
// three tables are snapshotted under one lock so the report is a coherent
// instant even while a live cluster is still feeding the collector.
func (c *Collector) MessageReport() string {
	c.mu.Lock()
	sent := c.merged(c.sent, c.sentByID)
	delivered := c.merged(c.delivered, c.deliveredID)
	dropped := c.merged(c.dropped, c.droppedByID)
	c.mu.Unlock()
	types := make(map[string]bool)
	for k := range sent {
		types[k] = true
	}
	for k := range delivered {
		// Delivered-only types exist: oracle/adversary Inject traffic is
		// not a protocol send but must still show in the table.
		types[k] = true
	}
	for k := range dropped {
		types[k] = true
	}
	names := make([]string, 0, len(types))
	for k := range types {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %8s\n", "type", "sent", "delivered", "dropped")
	for _, k := range names {
		fmt.Fprintf(&b, "%-14s %8d %10d %8d\n", k, sent[k], delivered[k], dropped[k])
	}
	return b.String()
}
