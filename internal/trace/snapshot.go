package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is an immutable view of one run's observability state: paired
// phase spans, histogram statistics, and message counts. It is the exchange
// format between a collector and the exporters (Chrome-trace timelines,
// plaintext summaries) and is identical in shape for the simulator (virtual
// time) and the live runtime (wall time since run start).
type Snapshot struct {
	// End is the latest event time seen (the run-level span's end when
	// RecordRunPhases ran, otherwise the latest span event).
	End time.Duration `json:"end_ns"`
	// Spans are the paired phase intervals, sorted by (Start, Proc, Kind).
	Spans []Span `json:"spans,omitempty"`
	// SpansDropped counts span events lost to ring wraparound.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
	// Histograms are the non-empty histograms, sorted by name.
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	// Sent, Delivered, and Dropped are the per-type message counts, sorted
	// by type name.
	Sent      []TypeCount `json:"sent,omitempty"`
	Delivered []TypeCount `json:"delivered,omitempty"`
	Dropped   []TypeCount `json:"dropped,omitempty"`
}

// Snapshot captures the collector's current observability state. It takes
// the collector lock per section (never across user code), so a live
// cluster may still be feeding the collector; each section is internally
// coherent.
func (c *Collector) Snapshot() Snapshot {
	events := c.SpanEvents()
	var end time.Duration
	for _, ev := range events {
		if ev.At > end {
			end = ev.At
		}
	}
	kinds := c.SpanKindNames()
	name := func(id int32) string {
		if id < 0 || int(id) >= len(kinds) {
			return ""
		}
		return kinds[id]
	}
	return Snapshot{
		End:          end,
		Spans:        PairSpans(events, name, end),
		SpansDropped: c.SpansDropped(),
		Histograms:   c.HistogramSnapshots(),
		Sent:         c.SentCounts(),
		Delivered:    c.DeliveredCounts(),
		Dropped:      c.DroppedCounts(),
	}
}

// spanKindStat aggregates one span kind for the summary.
type spanKindStat struct {
	kind  string
	count int
	total time.Duration
}

// Summary renders the snapshot as a plaintext report: per-kind span
// statistics followed by histogram quantiles — the `-hist` output of
// cmd/scenario.
func (s Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run end: %v\n", s.End)
	if len(s.Spans) > 0 {
		byKind := make(map[string]*spanKindStat)
		var order []string
		for _, sp := range s.Spans {
			st, ok := byKind[sp.Kind]
			if !ok {
				st = &spanKindStat{kind: sp.Kind}
				byKind[sp.Kind] = st
				order = append(order, sp.Kind)
			}
			st.count++
			st.total += sp.End - sp.Start
		}
		sort.Strings(order)
		b.WriteString("\nspans:\n")
		fmt.Fprintf(&b, "  %-16s %8s %14s %14s\n", "kind", "count", "total", "mean")
		for _, k := range order {
			st := byKind[k]
			mean := time.Duration(0)
			if st.count > 0 {
				mean = st.total / time.Duration(st.count)
			}
			fmt.Fprintf(&b, "  %-16s %8d %14v %14v\n", st.kind, st.count, st.total, mean)
		}
		if s.SpansDropped > 0 {
			fmt.Fprintf(&b, "  (%d span events lost to ring wraparound)\n", s.SpansDropped)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("\nhistograms:\n")
		fmt.Fprintf(&b, "  %-24s %8s %12s %12s %12s %12s\n", "name", "count", "p50", "p95", "p99", "max")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-24s %8d %12s %12s %12s %12s\n",
				h.Name, h.Count, h.format(h.P50), h.format(h.P95), h.format(h.P99), h.format(h.Max))
		}
	}
	return b.String()
}
