package trace

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistogramBucketing pins the bucket layout: bucket 0 holds v ≤ 0,
// bucket i holds [2^(i-1), 2^i), and BucketBounds agrees with bucketOf on
// every boundary.
func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {1<<62 - 1, HistBuckets - 1}, {1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		if bucketOf(lo) != i {
			t.Errorf("bucket %d: lower bound %d maps to bucket %d", i, lo, bucketOf(lo))
		}
		if bucketOf(hi-1) != i {
			t.Errorf("bucket %d: last value %d maps to bucket %d", i, hi-1, bucketOf(hi-1))
		}
		if bucketOf(hi) != i+1 {
			t.Errorf("bucket %d: upper bound %d maps to bucket %d, want %d", i, hi, bucketOf(hi), i+1)
		}
	}
}

// TestHistogramMergeExactness verifies the headline property the grid
// aggregation relies on: merging per-run shards is *exactly* the histogram
// of the concatenated samples — identical count, sum, min, max, and every
// bucket count — not an approximation.
func TestHistogramMergeExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const shards = 5
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewHistogram(UnitNanos)
	}
	whole := NewHistogram(UnitNanos)
	for i := 0; i < 10_000; i++ {
		// Mix magnitudes so many buckets are populated.
		v := rng.Int63n(1 << uint(1+rng.Intn(40)))
		parts[i%shards].Observe(v)
		whole.Observe(v)
	}
	merged := NewHistogram(UnitNanos)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary (count=%d sum=%d min=%d max=%d) != whole (count=%d sum=%d min=%d max=%d)",
			merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
			whole.Count(), whole.Sum(), whole.Min(), whole.Max())
	}
	for i := 0; i < HistBuckets; i++ {
		if merged.BucketCount(i) != whole.BucketCount(i) {
			t.Fatalf("bucket %d: merged %d != whole %d", i, merged.BucketCount(i), whole.BucketCount(i))
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("quantile %.2f: merged %d != whole %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramMergeUnitMismatch(t *testing.T) {
	a, b := NewHistogram(UnitNanos), NewHistogram(UnitCount)
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging ns into count histograms should fail")
	}
	// An empty histogram adopts the unit instead.
	c := NewHistogram("")
	if err := c.Merge(b); err != nil {
		t.Fatal(err)
	}
	if c.Unit() != UnitCount {
		t.Fatalf("empty histogram adopted unit %q, want %q", c.Unit(), UnitCount)
	}
}

// TestHistogramQuantilesClamped checks the interpolated quantiles never
// leave the observed range — a single sample reports itself for every
// quantile, not a bucket midpoint.
func TestHistogramQuantilesClamped(t *testing.T) {
	h := NewHistogram(UnitNanos)
	h.Observe(1000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%v) of a single sample = %d, want 1000", q, got)
		}
	}
	h2 := NewHistogram(UnitNanos)
	h2.Observe(10)
	h2.Observe(20)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h2.Quantile(q); got < 10 || got > 20 {
			t.Fatalf("Quantile(%v) = %d, outside [10, 20]", q, got)
		}
	}
}

func TestCollectorHistogramPaths(t *testing.T) {
	c := NewCollector()
	// Disabled: observations vanish.
	c.ObserveLatency(HistDecideLatency, time.Millisecond)
	if names := c.HistogramNames(); len(names) != 0 {
		t.Fatalf("disabled collector recorded %v", names)
	}
	c.EnableHistograms()
	c.ObserveLatency(HistDecideLatency, 2*time.Millisecond)
	c.ObserveValue(HistQueueDepth, 3)
	id := c.InternHist("delivery/x", UnitNanos)
	c.ObserveHistID(id, 500)
	c.ObserveHistID(id, 700)

	snaps := c.HistogramSnapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d histograms, want 3: %+v", len(snaps), snaps)
	}
	// Name-sorted: delivery/x, decide-latency, queue-depth.
	if snaps[0].Name != HistDecideLatency || snaps[1].Name != "delivery/x" || snaps[2].Name != HistQueueDepth {
		t.Fatalf("snapshot order %q, %q, %q", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	if h, ok := c.HistogramCopy("delivery/x"); !ok || h.Count() != 2 || h.Sum() != 1200 {
		t.Fatalf("delivery/x copy = %+v ok=%v", h, ok)
	}
	if _, ok := c.HistogramCopy("missing"); ok {
		t.Fatal("HistogramCopy of unknown name reported ok")
	}
}
