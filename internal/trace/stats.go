package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds order statistics over a set of duration samples; the
// experiment tables report these.
type Summary struct {
	Count  int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	Stddev time.Duration
}

// Summarize computes a Summary of the samples. An empty input yields a zero
// Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))

	var sq float64
	for _, s := range sorted {
		d := float64(s) - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}

	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Median: Percentile(sorted, 0.5),
		P95:    Percentile(sorted, 0.95),
		Stddev: time.Duration(std),
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 1) of sorted samples using
// nearest-rank interpolation. The input must already be sorted.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// InDelta formats a duration as a multiple of δ, the unit the paper states
// all its bounds in (for example "16.9δ").
func InDelta(d, delta time.Duration) string {
	if delta == 0 {
		return d.String()
	}
	return fmt.Sprintf("%.1fδ", float64(d)/float64(delta))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v median=%v mean=%v p95=%v max=%v",
		s.Count, s.Min, s.Median, s.Mean, s.P95, s.Max)
}

// MergeCounts adds src's per-type counts into dst and returns dst,
// allocating it when nil. Reports aggregate message counts across seeds and
// protocols with it.
func MergeCounts(dst, src map[string]int) map[string]int {
	if dst == nil {
		dst = make(map[string]int, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

// StringInDelta renders the summary with every statistic expressed in units
// of δ.
func (s Summary) StringInDelta(delta time.Duration) string {
	return fmt.Sprintf("n=%d min=%s median=%s mean=%s p95=%s max=%s",
		s.Count, InDelta(s.Min, delta), InDelta(s.Median, delta),
		InDelta(s.Mean, delta), InDelta(s.P95, delta), InDelta(s.Max, delta))
}
