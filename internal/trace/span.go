package trace

import (
	"sort"
	"time"
)

// The span kinds emitted by this repository's instrumentation. Span kinds
// are open-ended strings (interned per collector); these constants name the
// taxonomy the harness, cores, and oracles emit so exporters and tests can
// refer to them.
const (
	// SpanRun covers the whole run (proc −1).
	SpanRun = "run"
	// SpanPreTS covers time before stabilization (proc −1).
	SpanPreTS = "pre-ts"
	// SpanPostTS covers stabilization to the end of the run (proc −1).
	SpanPostTS = "post-ts"
	// SpanLeaderEpoch covers one leader's reign under the Ω oracle
	// (proc −1, value = leader ID).
	SpanLeaderEpoch = "leader-epoch"
	// SpanSession covers one modified-Paxos ballot session at one process
	// (value = session number).
	SpanSession = "session"
	// SpanBallot covers one traditional-Paxos ballot attempt at one process
	// (value = ballot number).
	SpanBallot = "ballot"
	// SpanRound covers one round of the round-based or B-Consensus
	// algorithms at one process (value = round number).
	SpanRound = "round"
	// SpanDown covers a crash window at one process (value = crash count).
	SpanDown = "down"
	// SpanRSMOp covers one RSM client operation from submit to commit ack
	// at the issuing client (value = sequence number). Together with the
	// proposer's per-slot "slotN-commit"/"slotN-apply" lanes it gives the
	// timeline the full propose→commit→apply path.
	SpanRSMOp = "rsm-op"
	// SpanRSMFailover covers an RSM leadership takeover at the promoted
	// replica (value = adopted epoch): from the moment the old leader was
	// last heard to the new leader finishing log repair. Its length is the
	// replica-side recovery window of a failover.
	SpanRSMFailover = "rsm-failover"
)

// SpanEvent is one raw begin/end record in the collector's span ring. Spans
// are recorded as independent typed events — not paired objects — so the hot
// path writes one fixed-size slot and pairing happens once, at export
// (PairSpans).
type SpanEvent struct {
	// At is the event time: virtual time under the simulator, time since
	// run start under the live runtime.
	At time.Duration
	// Value is the kind-specific payload (session/round/ballot number,
	// leader ID, crash count).
	Value int64
	// Kind is the interned span-kind ID (Collector.SpanKindName resolves).
	Kind int32
	// Proc is the process the span belongs to, or −1 for run-level lanes.
	Proc int32
	// Begin distinguishes begin records from end records.
	Begin bool
}

// defaultSpanCapacity sizes the ring when EnableSpans is called with a
// non-positive capacity.
const defaultSpanCapacity = 4096

// EnableSpans turns on span collection into a preallocated ring buffer of
// the given capacity (≤ 0 selects the default). When the ring wraps, the
// oldest events are overwritten (SpansDropped counts them) — observability
// must never grow memory without bound on a pathological run. Call before
// the run starts feeding the collector: the per-record gate (SpansEnabled)
// is a plain flag read, unsynchronized against this write.
func (c *Collector) EnableSpans(capacity int) {
	if capacity <= 0 {
		capacity = defaultSpanCapacity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spanBuf = make([]SpanEvent, capacity)
	c.spanHead = 0
	c.spanTotal = 0
	c.spansOn = true
}

// SpansEnabled reports whether span collection is on. Like
// HistogramsEnabled it is a plain bool read, so the disabled emission path
// costs a branch and allocates nothing.
func (c *Collector) SpansEnabled() bool { return c.spansOn }

// Span records one begin/end event at an explicit time. No-op unless
// EnableSpans was called. Safe for concurrent use (live-runtime writers);
// under the simulator the lock is uncontended. The enabled path allocates
// only when a new kind string is interned — steady-state emission writes a
// preallocated ring slot.
func (c *Collector) Span(at time.Duration, proc int, kind string, begin bool, value int64) {
	if !c.spansOn {
		return
	}
	c.mu.Lock()
	id, ok := c.spanKindIDs[kind]
	if !ok {
		if c.spanKindIDs == nil {
			c.spanKindIDs = make(map[string]int32, 8)
		}
		id = int32(len(c.spanKindNames))
		c.spanKindIDs[kind] = id
		c.spanKindNames = append(c.spanKindNames, kind)
	}
	c.spanBuf[c.spanHead] = SpanEvent{At: at, Value: value, Kind: id, Proc: int32(proc), Begin: begin}
	c.spanHead++
	if c.spanHead == len(c.spanBuf) {
		c.spanHead = 0
	}
	c.spanTotal++
	c.mu.Unlock()
}

// SpanKindName resolves an interned span-kind ID.
func (c *Collector) SpanKindName(id int32) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || int(id) >= len(c.spanKindNames) {
		return ""
	}
	return c.spanKindNames[id]
}

// SpanKindNames returns a copy of the interned kind table, indexed by ID.
func (c *Collector) SpanKindNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.spanKindNames))
	copy(out, c.spanKindNames)
	return out
}

// SpanEvents returns the retained span events in record order (oldest
// first), unwrapping the ring.
func (c *Collector) SpanEvents() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spanTotal == 0 {
		return nil
	}
	if c.spanTotal <= uint64(len(c.spanBuf)) {
		out := make([]SpanEvent, c.spanHead)
		copy(out, c.spanBuf[:c.spanHead])
		return out
	}
	out := make([]SpanEvent, 0, len(c.spanBuf))
	out = append(out, c.spanBuf[c.spanHead:]...)
	out = append(out, c.spanBuf[:c.spanHead]...)
	return out
}

// SpansDropped returns how many events were overwritten by ring wraparound.
func (c *Collector) SpansDropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spanTotal <= uint64(len(c.spanBuf)) {
		return 0
	}
	return c.spanTotal - uint64(len(c.spanBuf))
}

// RecordRunPhases emits the run-level phase spans — run, pre-TS, post-TS —
// with explicit timestamps. Both backends call it once after the run
// completes, so phase accounting schedules no events and draws no
// randomness: enabling observability cannot perturb a schedule.
func (c *Collector) RecordRunPhases(ts, end time.Duration) {
	if !c.spansOn {
		return
	}
	c.Span(0, -1, SpanRun, true, 0)
	if ts > 0 {
		preEnd := ts
		if preEnd > end {
			preEnd = end
		}
		c.Span(0, -1, SpanPreTS, true, 0)
		c.Span(preEnd, -1, SpanPreTS, false, 0)
	}
	if end > ts {
		c.Span(ts, -1, SpanPostTS, true, 0)
		c.Span(end, -1, SpanPostTS, false, 0)
	}
	c.Span(end, -1, SpanRun, false, 0)
}

// Span is one paired phase interval, produced by PairSpans.
type Span struct {
	// Kind is the resolved span kind name.
	Kind string `json:"kind"`
	// Proc is the owning process, or −1 for run-level lanes.
	Proc int `json:"proc"`
	// Start and End bound the interval.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Value is the begin record's payload.
	Value int64 `json:"value"`
	// Open marks a span that was still open when the snapshot was taken
	// (its End is the snapshot end time).
	Open bool `json:"open,omitempty"`
}

// PairSpans pairs raw begin/end events into intervals. A begin record for a
// (kind, proc) that already has an open span closes it — entering session 4
// ends session 3 without the protocol emitting an explicit end. End records
// without a matching begin (the begin was overwritten by ring wraparound)
// are dropped. Spans still open after the last event are closed at end and
// marked Open. The result is sorted by (Start, Proc, Kind) — deterministic
// whatever goroutine interleaving recorded the events.
func PairSpans(events []SpanEvent, kindName func(int32) string, end time.Duration) []Span {
	type key struct {
		kind int32
		proc int32
	}
	open := make(map[key]SpanEvent)
	var out []Span
	closeSpan := func(begin SpanEvent, at time.Duration, stillOpen bool) {
		out = append(out, Span{
			Kind:  kindName(begin.Kind),
			Proc:  int(begin.Proc),
			Start: begin.At,
			End:   at,
			Value: begin.Value,
			Open:  stillOpen,
		})
	}
	for _, ev := range events {
		k := key{kind: ev.Kind, proc: ev.Proc}
		if ev.Begin {
			if prev, ok := open[k]; ok {
				closeSpan(prev, ev.At, false)
			}
			open[k] = ev
			continue
		}
		if prev, ok := open[k]; ok {
			closeSpan(prev, ev.At, false)
			delete(open, k)
		}
	}
	for _, begin := range open {
		at := end
		if at < begin.At {
			at = begin.At
		}
		closeSpan(begin, at, true)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
