package trace

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// HistBuckets is the fixed bucket count of every Histogram. Buckets are
// powers of two: bucket 0 holds values ≤ 0, bucket i (i ≥ 1) holds values in
// [2^(i−1), 2^i). With nanosecond values the top bucket starts around 73
// years, so no realistic observation clamps.
const HistBuckets = 62

// Histogram is a fixed-bucket histogram over int64 observations
// (nanoseconds for latencies, raw counts for depths). The fixed layout makes
// histograms mergeable: two histograms over the same quantity can be added
// bucket-wise, so per-run shards aggregate exactly into per-protocol or
// per-grid-cell quantiles — unlike percentiles, which cannot be averaged.
//
// The zero value is an empty histogram ready to use. Histogram is not
// internally synchronized; the Collector serializes access for its own
// histograms.
type Histogram struct {
	unit   string
	count  int64
	sum    int64
	min    int64
	max    int64
	counts [HistBuckets]int64
}

// The histogram names emitted by this repository's instrumentation, so the
// substrates and the report aggregators agree on spelling.
const (
	// HistDecideLatency is per-process decision latency after TS (clamped
	// at zero), the paper's headline metric. Both substrates observe it, so
	// scenario reports aggregate p50/p95/p99 identically for sim and live.
	HistDecideLatency = "decide-latency"
	// HistQueueDepth is the simulator event-queue depth sampled at each
	// send.
	HistQueueDepth = "queue-depth"
	// HistDeliveryPrefix prefixes per-message-type delivery latency
	// histograms ("delivery/p1a").
	HistDeliveryPrefix = "delivery/"
	// HistSlotLatency is the RSM's per-slot propose-to-decide latency.
	HistSlotLatency = "rsm-slot-latency"
	// HistCommitLatency is the RSM client-path submit-to-ack latency per
	// operation (the rsm-bench headline quantiles).
	HistCommitLatency = "rsm-commit-latency"
	// HistApplyLag is the RSM's per-slot decide-to-apply lag (time spent
	// waiting for earlier pipelined slots to fill the gap).
	HistApplyLag = "rsm-apply-lag"
	// HistBatchSize is the number of client commands coalesced per RSM slot.
	HistBatchSize = "rsm-batch-size"
	// HistRSMQueueDepth is the RSM leader's proposal-queue depth at each
	// enqueue.
	HistRSMQueueDepth = "rsm-queue-depth"
	// HistFailoverLatency is the RSM leadership-recovery window per
	// failover: from the last sign of life of the previous leader to the
	// promoted replica finishing log repair (its undecided slots applied).
	HistFailoverLatency = "rsm-failover-latency"
	// HistCatchupLatency is the time a restarted RSM replica takes to
	// become gap-free again (snapshot install + Learn replay), measured
	// from its own re-Init to the first moment it has applied every slot
	// it knows to exist after hearing from a peer.
	HistCatchupLatency = "rsm-catchup-latency"
	// HistInboxWait is the live runtime's enqueue-to-handle wait per
	// message (wall-clock receive-side queuing).
	HistInboxWait = "inbox-wait"
	// HistInboxDepth is the live runtime's inbox depth at each enqueue.
	HistInboxDepth = "inbox-depth"
	// HistSendInterval is the live runtime's wall-clock gap between
	// consecutive sends of one process.
	HistSendInterval = "send-interval"
)

// The units histograms are observed in.
const (
	// UnitNanos marks duration-valued histograms (stored as nanoseconds).
	UnitNanos = "ns"
	// UnitCount marks dimensionless histograms (queue depths, sizes).
	UnitCount = "count"
)

// NewHistogram returns an empty histogram carrying a unit label.
func NewHistogram(unit string) *Histogram { return &Histogram{unit: unit} }

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	// v in [2^(k), 2^(k+1)) has bit length k+1 and lands in bucket k+1.
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketBounds returns bucket i's half-open value range [lo, hi).
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return math.MinInt64, 1
	}
	if i >= HistBuckets-1 {
		return 1 << (HistBuckets - 2), math.MaxInt64
	}
	return 1 << (i - 1), 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketOf(v)]++
}

// ObserveDuration records a duration observation (nanoseconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Unit returns the histogram's unit label.
func (h *Histogram) Unit() string { return h.unit }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// BucketCount returns the observation count of bucket i.
func (h *Histogram) BucketCount(i int) int64 {
	if i < 0 || i >= HistBuckets {
		return 0
	}
	return h.counts[i]
}

// Merge adds o's state into h. Merging shard histograms of the same quantity
// yields exactly the histogram of the concatenated samples: bucket counts,
// count, sum, min, and max are all exact (only quantile interpolation within
// a bucket stays approximate, as it is for any single histogram). It returns
// an error when the units disagree — merging a latency into a depth
// histogram is a caller bug worth surfacing.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if h.unit == "" {
		h.unit = o.unit
	} else if o.unit != "" && o.unit != h.unit {
		return fmt.Errorf("trace: merging %q histogram into %q histogram", o.unit, h.unit)
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	return nil
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// [Min, Max]. The estimate is deterministic in the bucket counts, so merged
// shards report identical quantiles regardless of merge order.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// 1-based target rank.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := BucketBounds(i)
		if lo < h.min {
			lo = h.min
		}
		if hi > h.max {
			hi = h.max
		}
		if hi <= lo {
			return clampInt64(lo, h.min, h.max)
		}
		// Position of the target rank within this bucket, interpolated
		// across the bucket's clamped value range.
		frac := float64(rank-cum) / float64(c)
		est := float64(lo) + frac*float64(hi-lo)
		return clampInt64(int64(est), h.min, h.max)
	}
	return h.max
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HistogramBucket is one non-empty bucket of a snapshot.
type HistogramBucket struct {
	// Lo and Hi are the bucket's half-open value range [Lo, Hi).
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is an immutable, JSON-friendly view of a histogram.
// Grid reports embed these, so the field set is part of the pinned report
// schema.
type HistogramSnapshot struct {
	Name  string `json:"name"`
	Unit  string `json:"unit,omitempty"`
	Count int64  `json:"count"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	// Buckets lists the non-empty buckets in value order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot renders the histogram under the given name.
func (h *Histogram) Snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name: name, Unit: h.unit,
		Count: h.count, Min: h.min, Max: h.max, Mean: h.Mean(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// format renders a snapshot value in its unit.
func (s HistogramSnapshot) format(v int64) string {
	if s.Unit == UnitNanos {
		return time.Duration(v).String()
	}
	return fmt.Sprintf("%d", v)
}

// String renders the headline statistics on one line.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("%s: n=%d p50=%s p95=%s p99=%s max=%s",
		s.Name, s.Count, s.format(s.P50), s.format(s.P95), s.format(s.P99), s.format(s.Max))
}

// --- Collector integration ---

// EnableHistograms turns on histogram collection. Call it before the run
// starts feeding the collector: the per-observation gate (HistogramsEnabled)
// is a plain flag read, unsynchronized against this write.
func (c *Collector) EnableHistograms() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.histOn = true
}

// HistogramsEnabled reports whether histogram collection is on. It is the
// hot-path gate: a plain bool read so the disabled path costs nothing and
// allocates nothing.
func (c *Collector) HistogramsEnabled() bool { return c.histOn }

// histogram returns (creating on demand) the named histogram. Caller holds
// c.mu.
func (c *Collector) histogramLocked(name, unit string) *Histogram {
	if h, ok := c.hists[name]; ok {
		return h
	}
	if c.hists == nil {
		c.hists = make(map[string]*Histogram, 8)
	}
	h := NewHistogram(unit)
	c.hists[name] = h
	return h
}

// ObserveLatency records a duration observation into the named histogram
// (created with UnitNanos on first use). No-op unless EnableHistograms was
// called. Safe for concurrent use (the live runtime's write path).
func (c *Collector) ObserveLatency(name string, d time.Duration) {
	if !c.histOn {
		return
	}
	c.mu.Lock()
	c.histogramLocked(name, UnitNanos).Observe(int64(d))
	c.mu.Unlock()
}

// ObserveValue records a dimensionless observation (queue depth, size) into
// the named histogram (created with UnitCount on first use). No-op unless
// EnableHistograms was called.
func (c *Collector) ObserveValue(name string, v int64) {
	if !c.histOn {
		return
	}
	c.mu.Lock()
	c.histogramLocked(name, UnitCount).Observe(v)
	c.mu.Unlock()
}

// InternHist returns a dense histogram ID for the interned fast path. Like
// Intern, it is for the single-threaded simulator only: ObserveHistID
// increments without locking, and results are read after the run completes.
// The histogram is also registered under name, so readers see interned and
// string-keyed histograms identically.
func (c *Collector) InternHist(name, unit string) int {
	if id, ok := c.histIDs[name]; ok {
		return id
	}
	if c.histIDs == nil {
		c.histIDs = make(map[string]int, 8)
	}
	c.mu.Lock()
	h := c.histogramLocked(name, unit)
	c.mu.Unlock()
	id := len(c.histByID)
	c.histIDs[name] = id
	c.histByID = append(c.histByID, h)
	return id
}

// ObserveHistID records into an interned histogram (sim backend only; see
// InternHist). The caller gates on HistogramsEnabled.
func (c *Collector) ObserveHistID(id int, v int64) { c.histByID[id].Observe(v) }

// HistogramNames returns the names of all histograms, sorted.
func (c *Collector) HistogramNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.hists))
	for k := range c.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// HistogramCopy returns a value copy of the named histogram, and whether it
// exists with at least one observation.
func (c *Collector) HistogramCopy(name string) (Histogram, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hists[name]
	if !ok || h.count == 0 {
		return Histogram{}, false
	}
	return *h, true
}

// HistogramSnapshots returns snapshots of every non-empty histogram, sorted
// by name — deterministic output whichever substrate fed the collector.
func (c *Collector) HistogramSnapshots() []HistogramSnapshot {
	c.mu.Lock()
	names := make([]string, 0, len(c.hists))
	for k, h := range c.hists {
		if h.count > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	out := make([]HistogramSnapshot, 0, len(names))
	for _, k := range names {
		out = append(out, c.hists[k].Snapshot(k))
	}
	c.mu.Unlock()
	return out
}
