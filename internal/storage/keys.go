package storage

// The stable-storage key registry. Every key a component persists through
// Store.Put must start with one of the prefixes declared here — the keylint
// analyzer (internal/analysis) enforces it, so a new subsystem inventing a
// key spelling in place fails `repro-lint` until the prefix is registered.
// One registry keeps the namespaces visibly disjoint: restore paths scan
// Keys() by prefix, and an undeclared key is either invisible to recovery
// or, worse, shadows another component's namespace.
const (
	// KeyRSMLogPrefix prefixes the RSM's per-slot decision records
	// ("rsmlog/<slot>"). Compaction truncates this namespace below the
	// snapshot horizon.
	KeyRSMLogPrefix = "rsmlog/"
	// KeyRSMSessPrefix prefixes spilled client-session dedup records
	// ("rsm-sess-<client>"), written when the in-memory session table
	// evicts. Snapshots fold these in and clear them.
	KeyRSMSessPrefix = "rsm-sess-"
	// KeyRSMNext is the RSM proposer's next-slot counter.
	KeyRSMNext = "rsm-next"
	// KeyRSMSnapshot is the RSM compaction snapshot (state machine image +
	// full session table as of the snapshot horizon).
	KeyRSMSnapshot = "rsm-snap"
	// KeyRSMEpoch is the RSM replica's highest adopted leadership epoch.
	KeyRSMEpoch = "rsm-epoch"
	// KeySlotPrefix prefixes the per-slot instance namespaces the RSM hands
	// its inner protocol instances ("slot<N>/<inner key>").
	KeySlotPrefix = "slot"

	// Per-protocol durable state records (one blob per process).
	KeyModPaxosState   = "modpaxos-state"
	KeyPaxosState      = "paxos-state"
	KeyRoundBasedState = "roundbased-state"
	KeyBConsensusState = "bconsensus-state"
	KeyUSDState        = "usd-state"
	KeyMajorityState   = "majority-state"
	KeyMinorityState   = "minority-state"
)
