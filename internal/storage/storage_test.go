package storage

import (
	"testing"
	"testing/quick"
)

type fakeState struct {
	Ballot  int
	Value   string
	Decided bool
}

func testStore(t *testing.T, s Store) {
	t.Helper()

	// Absent key.
	var st fakeState
	ok, err := s.Get("state", &st)
	if err != nil {
		t.Fatalf("Get absent: %v", err)
	}
	if ok {
		t.Fatal("Get reported presence for absent key")
	}

	// Round trip.
	want := fakeState{Ballot: 42, Value: "v7", Decided: true}
	if err := s.Put("state", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ok, err = s.Get("state", &st)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if st != want {
		t.Fatalf("round trip mismatch: got %+v want %+v", st, want)
	}

	// Overwrite.
	want.Ballot = 43
	if err := s.Put("state", want); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if _, err := s.Get("state", &st); err != nil {
		t.Fatalf("Get after overwrite: %v", err)
	}
	if st.Ballot != 43 {
		t.Fatalf("overwrite not visible: %+v", st)
	}

	// Keys.
	if err := s.Put("aux", 7); err != nil {
		t.Fatalf("Put aux: %v", err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 2 || keys[0] != "aux" || keys[1] != "state" {
		t.Fatalf("Keys = %v, want [aux state]", keys)
	}

	// Delete.
	if err := s.Delete("aux"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete("aux"); err != nil {
		t.Fatalf("Delete absent should be nil: %v", err)
	}
	ok, err = s.Get("aux", new(int))
	if err != nil {
		t.Fatalf("Get deleted: %v", err)
	}
	if ok {
		t.Fatal("deleted key still present")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }
func TestFileStore(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

// TestMemStoreDeepCopies checks the crash-semantics property: mutating a
// value after Put must not change what a later Get observes.
func TestMemStoreDeepCopies(t *testing.T) {
	s := NewMemStore()
	v := []int{1, 2, 3}
	if err := s.Put("slice", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99
	var got []int
	if _, err := s.Get("slice", &got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("Put aliased caller memory: got %v", got)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("mbal", 17); err != nil {
		t.Fatal(err)
	}
	// "Restart": a brand-new handle over the same directory.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	ok, err := s2.Get("mbal", &got)
	if err != nil || !ok || got != 17 {
		t.Fatalf("reopen Get = (%d, %v, %v), want (17, true, nil)", got, ok, err)
	}
}

func TestFileStoreKeyEscaping(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/b", 1); err != nil {
		t.Fatalf("Put with separator: %v", err)
	}
	var got int
	ok, err := s.Get("a/b", &got)
	if err != nil || !ok || got != 1 {
		t.Fatalf("Get escaped key = (%d, %v, %v)", got, ok, err)
	}
}

// Property: any string value round-trips through either store.
func TestQuickRoundTrip(t *testing.T) {
	mem := NewMemStore()
	f := func(key, value string) bool {
		if key == "" {
			key = "k"
		}
		if err := mem.Put(key, value); err != nil {
			return false
		}
		var got string
		ok, err := mem.Get(key, &got)
		return ok && err == nil && got == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
