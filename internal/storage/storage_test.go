package storage

import (
	"testing"
	"testing/quick"
)

type fakeState struct {
	Ballot  int
	Value   string
	Decided bool
}

func testStore(t *testing.T, s Store) {
	t.Helper()

	// Absent key.
	var st fakeState
	ok, err := s.Get("state", &st)
	if err != nil {
		t.Fatalf("Get absent: %v", err)
	}
	if ok {
		t.Fatal("Get reported presence for absent key")
	}

	// Round trip.
	want := fakeState{Ballot: 42, Value: "v7", Decided: true}
	if err := s.Put("state", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ok, err = s.Get("state", &st)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if st != want {
		t.Fatalf("round trip mismatch: got %+v want %+v", st, want)
	}

	// Overwrite.
	want.Ballot = 43
	if err := s.Put("state", want); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if _, err := s.Get("state", &st); err != nil {
		t.Fatalf("Get after overwrite: %v", err)
	}
	if st.Ballot != 43 {
		t.Fatalf("overwrite not visible: %+v", st)
	}

	// Keys.
	if err := s.Put("aux", 7); err != nil {
		t.Fatalf("Put aux: %v", err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 2 || keys[0] != "aux" || keys[1] != "state" {
		t.Fatalf("Keys = %v, want [aux state]", keys)
	}

	// Delete.
	if err := s.Delete("aux"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete("aux"); err != nil {
		t.Fatalf("Delete absent should be nil: %v", err)
	}
	ok, err = s.Get("aux", new(int))
	if err != nil {
		t.Fatalf("Get deleted: %v", err)
	}
	if ok {
		t.Fatal("deleted key still present")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }
func TestFileStore(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

// TestMemStoreDeepCopies checks the crash-semantics property: mutating a
// value after Put must not change what a later Get observes.
func TestMemStoreDeepCopies(t *testing.T) {
	s := NewMemStore()
	v := []int{1, 2, 3}
	if err := s.Put("slice", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99
	var got []int
	if _, err := s.Get("slice", &got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("Put aliased caller memory: got %v", got)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("mbal", 17); err != nil {
		t.Fatal(err)
	}
	// "Restart": a brand-new handle over the same directory.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	ok, err := s2.Get("mbal", &got)
	if err != nil || !ok || got != 17 {
		t.Fatalf("reopen Get = (%d, %v, %v), want (17, true, nil)", got, ok, err)
	}
}

func TestFileStoreKeyEscaping(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/b", 1); err != nil {
		t.Fatalf("Put with separator: %v", err)
	}
	var got int
	ok, err := s.Get("a/b", &got)
	if err != nil || !ok || got != 1 {
		t.Fatalf("Get escaped key = (%d, %v, %v)", got, ok, err)
	}
}

// Property: any string value round-trips through either store.
func TestQuickRoundTrip(t *testing.T) {
	mem := NewMemStore()
	f := func(key, value string) bool {
		if key == "" {
			key = "k"
		}
		if err := mem.Put(key, value); err != nil {
			return false
		}
		var got string
		ok, err := mem.Get(key, &got)
		return ok && err == nil && got == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMemStorePlainFastPath pins the behaviour of the plain-data
// representation the simulator's persist hot path rides on: struct values
// without mutable indirection skip the gob round-trip but must keep the
// exact same isolation and typing semantics as the encoded path.
func TestMemStorePlainFastPath(t *testing.T) {
	type durable struct {
		MBal    int
		Val     string
		Decided bool
	}
	s := NewMemStore()
	v := durable{MBal: 3, Val: "x", Decided: true}
	if err := s.Put("state", v); err != nil {
		t.Fatal(err)
	}
	v.MBal = 99 // mutating the caller's copy must not reach the store
	var got durable
	ok, err := s.Get("state", &got)
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v)", ok, err)
	}
	if got != (durable{MBal: 3, Val: "x", Decided: true}) {
		t.Fatalf("Get returned %+v", got)
	}

	// Type mismatch errors like the gob path would.
	var wrong int
	if _, err := s.Get("state", &wrong); err == nil {
		t.Fatal("Get into mismatched type should error")
	}

	// A key can move between representations; the old value must not
	// shadow the new one, in either direction.
	if err := s.Put("state", []int{1}); err != nil {
		t.Fatal(err)
	}
	var sl []int
	if ok, err := s.Get("state", &sl); err != nil || !ok || len(sl) != 1 {
		t.Fatalf("after plain→gob rewrite: Get = (%v, %v, %v)", sl, ok, err)
	}
	if err := s.Put("state", durable{MBal: 7}); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Get("state", &got); err != nil || !ok || got.MBal != 7 {
		t.Fatalf("after gob→plain rewrite: Get = (%+v, %v, %v)", got, ok, err)
	}

	// Keys sees both representations exactly once.
	if err := s.Put("enc", map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "enc" || keys[1] != "state" {
		t.Fatalf("Keys = %v", keys)
	}
	if err := s.Delete("state"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Get("state", &got); ok {
		t.Fatal("deleted key still present")
	}
}

// TestMemStorePutIsCheap pins the allocation budget of the persist hot
// path: a steady-state Put of a plain-data struct must cost at most the
// caller's interface boxing plus the map write — no encoder machinery.
func TestMemStorePutIsCheap(t *testing.T) {
	type durable struct {
		MBal    int
		Val     string
		Decided bool
	}
	s := NewMemStore()
	v := durable{MBal: 1, Val: "v"}
	if err := s.Put("state", v); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		v.MBal++
		if err := s.Put("state", v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 { // the box Put's any parameter forces
		t.Fatalf("plain-data Put allocated %.1f allocs/op, want ≤ 1", allocs)
	}
}

// TestMemStoreUnexportedFieldsMatchGobSemantics pins the substrate-parity
// rule: a struct with unexported fields must take the gob fallback, so the
// simulator's MemStore restores exactly what the live FileStore would —
// exported fields only.
func TestMemStoreUnexportedFieldsMatchGobSemantics(t *testing.T) {
	type mixed struct {
		Exported int
		hidden   int
	}
	s := NewMemStore()
	if err := s.Put("k", mixed{Exported: 5, hidden: 9}); err != nil {
		t.Fatal(err)
	}
	var got mixed
	ok, err := s.Get("k", &got)
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v)", ok, err)
	}
	if got.Exported != 5 {
		t.Fatalf("exported field lost: %+v", got)
	}
	if got.hidden != 0 {
		t.Fatalf("unexported field persisted (%+v); gob would have dropped it", got)
	}
}
