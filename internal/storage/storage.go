// Package storage provides the stable-storage abstraction that lets a
// process survive a crash/restart boundary, as the paper's model requires:
// "The process keeps mbal[p] (and the rest of its state) in stable storage
// so it can restart after failure by simply resuming where it left off."
//
// Two implementations are provided: an in-memory store used by the
// deterministic simulator (the store holds isolated copies — plain-data
// values as boxed copies, everything else gob round-tripped — exactly like
// real persistence), and a file-backed store used by the live goroutine
// runtime.
package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
)

// Store is a small key-value stable store. Implementations must guarantee
// that data written by Put survives a crash of the owning process (in the
// simulator, that the data survives the process object being discarded).
type Store interface {
	// Put durably stores value (gob-encoded) under key.
	Put(key string, value any) error
	// Get decodes the value stored under key into out (a pointer). It
	// reports whether the key was present.
	Get(key string, out any) (bool, error)
	// Delete removes a key; deleting an absent key is not an error.
	Delete(key string) error
	// Keys returns all present keys in sorted order.
	Keys() ([]string, error)
}

// MemStore is an in-memory Store. A Get never aliases memory written by
// Put — mutating a value after Put does not change what a later Get
// returns, matching disk semantics.
//
// Two representations provide that guarantee. Values whose type is plain
// data — no pointers, slices, maps, or other mutable indirection (strings
// are immutable, so they count as plain) — are kept as the boxed copy Put
// received: the caller cannot reach that copy, so it is already as
// isolated as encoded bytes, for free. Every protocol's durable state is
// such a struct, which takes the gob round-trip out of the simulator's
// persist path entirely. Other types fall back to the gob round-trip.
//
// MemStore is safe for concurrent use. The zero value is ready to use.
type MemStore struct {
	mu    sync.Mutex
	data  map[string][]byte // gob-encoded values (types with indirection)
	plain map[string]any    // boxed copies (plain-data types)
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

var _ Store = (*MemStore)(nil)

// Put implements Store.
func (s *MemStore) Put(key string, value any) error {
	if value != nil && isPlainData(reflect.TypeOf(value)) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.plain == nil {
			s.plain = make(map[string]any)
		}
		s.plain[key] = value
		delete(s.data, key) // the key may previously have held an encoded value
		return nil
	}
	buf, err := encode(value)
	if err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string][]byte)
	}
	s.data[key] = buf
	delete(s.plain, key)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	v, plainOK := s.plain[key]
	buf, ok := s.data[key]
	s.mu.Unlock()
	if plainOK {
		rout := reflect.ValueOf(out)
		if rout.Kind() != reflect.Pointer || rout.IsNil() {
			return false, fmt.Errorf("storage: get %q: out must be a non-nil pointer", key)
		}
		rv := reflect.ValueOf(v)
		if rv.Type() != rout.Elem().Type() {
			return false, fmt.Errorf("storage: get %q: stored %s, requested %s", key, rv.Type(), rout.Elem().Type())
		}
		rout.Elem().Set(rv)
		return true, nil
	}
	if !ok {
		return false, nil
	}
	if err := decode(buf, out); err != nil {
		return false, fmt.Errorf("storage: get %q: %w", key, err)
	}
	return true, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	delete(s.plain, key)
	return nil
}

// Reset empties the store in place, keeping the map storage warm. Arena
// reuse (internal/simnet) resets each pooled node's store between runs
// instead of allocating a fresh one per grid cell.
func (s *MemStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.data)
	clear(s.plain)
}

// Keys implements Store.
func (s *MemStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data)+len(s.plain))
	for k := range s.data {
		keys = append(keys, k)
	}
	for k := range s.plain {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// plainDataTypes caches the per-type verdict of isPlainData.
var plainDataTypes sync.Map // reflect.Type → bool

// isPlainData reports whether values of t carry no mutable indirection: a
// copy of such a value shares nothing mutable with the original, so storing
// the copy is equivalent to storing encoded bytes. Strings qualify because
// Go strings are immutable; pointers, slices, maps, chans, funcs, and
// interfaces do not.
func isPlainData(t reflect.Type) bool {
	if v, ok := plainDataTypes.Load(t); ok {
		return v.(bool)
	}
	plain := computePlainData(t)
	plainDataTypes.Store(t, plain)
	return plain
}

func computePlainData(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return true
	case reflect.Array:
		return computePlainData(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			// Unexported fields force the gob fallback: gob drops them
			// (and errors when no exported field exists), and the sim's
			// store must restore exactly what the live FileStore would —
			// persisting more state than gob does would make crash
			// recovery diverge between substrates.
			if f.PkgPath != "" || !computePlainData(f.Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// FileStore persists each key as a gob file in a directory, writing through
// a temp file + rename so a torn write never corrupts a previous value.
// FileStore is safe for concurrent use by one process.
type FileStore struct {
	mu  sync.Mutex
	dir string
}

// NewFileStore creates (if needed) and opens a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

var _ Store = (*FileStore)(nil)

func (s *FileStore) path(key string) string {
	// Keys are protocol-chosen short identifiers; escape path separators
	// defensively.
	safe := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c == '/' || c == '\\' || c == 0 {
			safe = append(safe, '_')
		} else {
			safe = append(safe, c)
		}
	}
	return filepath.Join(s.dir, string(safe)+".gob")
}

// Put implements Store.
func (s *FileStore) Put(key string, value any) error {
	buf, err := encode(value)
	if err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	buf, err := os.ReadFile(s.path(key))
	s.mu.Unlock()
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("storage: get %q: %w", key, err)
	}
	if err := decode(buf, out); err != nil {
		return false, fmt.Errorf("storage: get %q: %w", key, err)
	}
	return true, nil
}

// Delete implements Store.
func (s *FileStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete %q: %w", key, err)
	}
	return nil
}

// Keys implements Store.
func (s *FileStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: keys: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".gob" {
			keys = append(keys, name[:len(name)-len(".gob")])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func encode(value any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(value); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(buf []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(out)
}
