// Package storage provides the stable-storage abstraction that lets a
// process survive a crash/restart boundary, as the paper's model requires:
// "The process keeps mbal[p] (and the rest of its state) in stable storage
// so it can restart after failure by simply resuming where it left off."
//
// Two implementations are provided: an in-memory store used by the
// deterministic simulator (values are gob round-tripped so the store holds
// deep copies, exactly like real persistence), and a file-backed store used
// by the live goroutine runtime.
package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is a small key-value stable store. Implementations must guarantee
// that data written by Put survives a crash of the owning process (in the
// simulator, that the data survives the process object being discarded).
type Store interface {
	// Put durably stores value (gob-encoded) under key.
	Put(key string, value any) error
	// Get decodes the value stored under key into out (a pointer). It
	// reports whether the key was present.
	Get(key string, out any) (bool, error)
	// Delete removes a key; deleting an absent key is not an error.
	Delete(key string) error
	// Keys returns all present keys in sorted order.
	Keys() ([]string, error)
}

// MemStore is an in-memory Store. Values are stored as encoded bytes, so a
// Get never aliases memory written by Put — mutating a value after Put does
// not change what a later Get returns, matching disk semantics.
//
// MemStore is safe for concurrent use. The zero value is ready to use.
type MemStore struct {
	mu   sync.Mutex
	data map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

var _ Store = (*MemStore)(nil)

// Put implements Store.
func (s *MemStore) Put(key string, value any) error {
	buf, err := encode(value)
	if err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string][]byte)
	}
	s.data[key] = buf
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	buf, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := decode(buf, out); err != nil {
		return false, fmt.Errorf("storage: get %q: %w", key, err)
	}
	return true, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	return nil
}

// Keys implements Store.
func (s *MemStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// FileStore persists each key as a gob file in a directory, writing through
// a temp file + rename so a torn write never corrupts a previous value.
// FileStore is safe for concurrent use by one process.
type FileStore struct {
	mu  sync.Mutex
	dir string
}

// NewFileStore creates (if needed) and opens a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

var _ Store = (*FileStore)(nil)

func (s *FileStore) path(key string) string {
	// Keys are protocol-chosen short identifiers; escape path separators
	// defensively.
	safe := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c == '/' || c == '\\' || c == 0 {
			safe = append(safe, '_')
		} else {
			safe = append(safe, c)
		}
	}
	return filepath.Join(s.dir, string(safe)+".gob")
}

// Put implements Store.
func (s *FileStore) Put(key string, value any) error {
	buf, err := encode(value)
	if err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	buf, err := os.ReadFile(s.path(key))
	s.mu.Unlock()
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("storage: get %q: %w", key, err)
	}
	if err := decode(buf, out); err != nil {
		return false, fmt.Errorf("storage: get %q: %w", key, err)
	}
	return true, nil
}

// Delete implements Store.
func (s *FileStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete %q: %w", key, err)
	}
	return nil
}

// Keys implements Store.
func (s *FileStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: keys: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".gob" {
			keys = append(keys, name[:len(name)-len(".gob")])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func encode(value any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(value); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(buf []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(out)
}
