// Package leader provides the Ω-style leader-election oracle assumed by the
// traditional Paxos baseline (§2 of the paper). The paper's comparison only
// requires that such a procedure exists and that it elects a unique
// nonfaulty leader within O(δ) of stabilization; its internals are
// irrelevant to the O(Nδ) behaviour being demonstrated, so we implement it
// as an out-of-band announcer layered on the simulated network.
//
// Before stabilization the oracle may report arbitrary (even different)
// leaders to different processes; from TS + δ on it reports one fixed
// nonfaulty leader to everybody, repeatedly, so that restarted processes
// re-learn it within one period.
package leader

import (
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Announce tells a process who the oracle currently believes is leader.
// It is delivered like a message but originates from the oracle, not from
// another process.
type Announce struct {
	Leader consensus.ProcessID
}

// Type implements consensus.Message.
func (Announce) Type() string { return "leader" }

// Config configures the oracle installation.
type Config struct {
	// Stable is the leader announced from TS+Delta onward. It must be a
	// process that is nonfaulty after TS.
	Stable consensus.ProcessID
	// Period is the re-announcement interval (default δ).
	Period time.Duration
	// ChaoticBeforeTS, when true, announces rotating bogus leaders before
	// stabilization — modeling an oracle that misbehaves while the system
	// is unstable (permitted: Ω's guarantee is only eventual).
	ChaoticBeforeTS bool
	// Horizon stops announcements after this time (0 = no announcements
	// beyond 1000·Period, a backstop against unbounded schedules).
	Horizon time.Duration
}

// Install starts the oracle on the network. Announcements are injected
// directly (they do not consume network randomness and are not subject to
// loss, which only makes the traditional-Paxos baseline *faster* — the
// paper's comparison survives giving the baseline a perfect oracle).
func Install(nw *simnet.Network, cfg Config) {
	if cfg.Period == 0 {
		cfg.Period = nw.Config().Delta
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 1000 * cfg.Period
	}
	ts := nw.Config().TS
	delta := nw.Config().Delta
	n := nw.Config().N

	var announce func()
	round := 0
	// Leader-epoch spans: a new epoch begins whenever the announced leader
	// changes (a begin for an open span kind closes the previous epoch, so
	// chaotic pre-TS rotation renders as adjacent epochs).
	var lastLead consensus.ProcessID = -1
	announce = func() {
		now := nw.Engine().Now()
		if now > cfg.Horizon {
			return
		}
		lead := cfg.Stable
		if cfg.ChaoticBeforeTS && now < ts+delta {
			// Rotate through bogus leaders during instability.
			lead = consensus.ProcessID(round % n)
			round++
		}
		if lead != lastLead {
			nw.Collector().Span(now, -1, trace.SpanLeaderEpoch, true, int64(lead))
			lastLead = lead
		}
		for i := 0; i < n; i++ {
			id := consensus.ProcessID(i)
			if nw.Up(id) {
				nw.Inject(now, lead, id, Announce{Leader: lead})
			}
		}
		nw.Engine().After(cfg.Period, announce)
	}
	nw.Engine().After(0, announce)
}
