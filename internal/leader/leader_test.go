package leader

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// recorder captures leader announcements at one process.
type recorder struct {
	announced []consensus.ProcessID
}

func (r *recorder) Init(consensus.Environment) {}
func (r *recorder) HandleMessage(_ consensus.ProcessID, m consensus.Message) {
	if a, ok := m.(Announce); ok {
		r.announced = append(r.announced, a.Leader)
	}
}
func (r *recorder) HandleTimer(consensus.TimerID) {}

func build(t *testing.T, n int, ts time.Duration) (*sim.Engine, *simnet.Network, []*recorder) {
	t.Helper()
	eng := sim.NewEngine(1)
	recs := make([]*recorder, n)
	factory := func(id consensus.ProcessID, _ int, _ consensus.Value) consensus.Process {
		recs[id] = &recorder{}
		return recs[id]
	}
	props := make([]consensus.Value, n)
	for i := range props {
		props[i] = "v"
	}
	nw, err := simnet.New(eng, simnet.Config{N: n, Delta: 10 * time.Millisecond, TS: ts, Policy: simnet.DropAll{}}, factory, props)
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw, recs
}

func TestStableLeaderAnnouncedToEveryone(t *testing.T) {
	eng, nw, recs := build(t, 3, 0)
	nw.Start()
	Install(nw, Config{Stable: 2, Horizon: 100 * time.Millisecond})
	eng.Run(200 * time.Millisecond)
	for i, r := range recs {
		if len(r.announced) == 0 {
			t.Fatalf("process %d never heard from the oracle", i)
		}
		for _, l := range r.announced {
			if l != 2 {
				t.Fatalf("process %d told leader %d, want stable leader 2", i, l)
			}
		}
	}
}

func TestChaoticBeforeTSThenStable(t *testing.T) {
	ts := 100 * time.Millisecond
	eng, nw, recs := build(t, 3, ts)
	nw.Start()
	Install(nw, Config{Stable: 1, ChaoticBeforeTS: true, Horizon: 300 * time.Millisecond})
	eng.Run(400 * time.Millisecond)
	r := recs[0]
	if len(r.announced) < 3 {
		t.Fatalf("too few announcements: %d", len(r.announced))
	}
	// The final announcements (past TS+δ) must all be the stable leader.
	last := r.announced[len(r.announced)-1]
	if last != 1 {
		t.Fatalf("final announcement %d, want stable leader 1", last)
	}
	// And at least one pre-TS announcement differs (chaotic rotation).
	sawChaos := false
	for _, l := range r.announced {
		if l != 1 {
			sawChaos = true
		}
	}
	if !sawChaos {
		t.Log("note: rotation happened to match the stable leader early on")
	}
}

func TestCrashedProcessesSkipped(t *testing.T) {
	eng, nw, recs := build(t, 3, 0)
	nw.StartExcept(2)
	Install(nw, Config{Stable: 0, Horizon: 50 * time.Millisecond})
	eng.Run(100 * time.Millisecond)
	if recs[2] != nil && len(recs[2].announced) != 0 {
		t.Fatalf("down process received %d announcements", len(recs[2].announced))
	}
	if len(recs[0].announced) == 0 {
		t.Fatal("up process received nothing")
	}
}

func TestHorizonStopsAnnouncements(t *testing.T) {
	eng, nw, recs := build(t, 3, 0)
	nw.Start()
	Install(nw, Config{Stable: 0, Period: 10 * time.Millisecond, Horizon: 50 * time.Millisecond})
	eng.Run(time.Second)
	n := len(recs[0].announced)
	// ~6 announcements in 50ms at 10ms period; certainly < 10.
	if n == 0 || n > 10 {
		t.Fatalf("announcement count %d outside horizoned range", n)
	}
	if eng.Pending() != 0 {
		t.Fatalf("oracle left %d events pending after horizon", eng.Pending())
	}
}
