package harness

// Cross-protocol failure-injection suite: every protocol is subjected to
// randomized crash/restart storms before stabilization, a spectrum of
// pre-TS network pathologies, and permanent minority failures. The
// invariants are uniform: no safety violation ever, and a decision within
// the horizon whenever a majority is up after TS.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
)

func TestCrashStormBeforeTS(t *testing.T) {
	if testing.Short() {
		t.Skip("long fault-injection suite")
	}
	ts := 300 * time.Millisecond
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 4 + rng.Intn(3) // 4..6
				var restarts []Restart
				// Up to 2·N crash/restart events, all completed before TS
				// (the model lets processes fail only before TS).
				events := rng.Intn(2*n + 1)
				for i := 0; i < events; i++ {
					proc := consensus.ProcessID(rng.Intn(n))
					crash := time.Duration(rng.Int63n(int64(ts * 3 / 4)))
					back := crash + time.Duration(rng.Int63n(int64(ts/4)))
					restarts = append(restarts, Restart{Proc: proc, CrashAt: crash, RestartAt: back})
				}
				res, err := Run(Config{
					Protocol: proto, N: n, Delta: delta, TS: ts, Rho: 0.01,
					Policy: simnet.Chaos{DropProb: 0.5},
					Seed:   seed, Restarts: restarts,
					Horizon: 30 * time.Second,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Violation != nil {
					t.Fatalf("seed %d: safety violation: %v", seed, res.Violation)
				}
				if !res.Decided {
					t.Fatalf("seed %d (n=%d, %d restarts): no decision", seed, n, events)
				}
			}
		})
	}
}

func TestPermanentMinorityDown(t *testing.T) {
	ts := 200 * time.Millisecond
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			// ⌈N/2⌉−1 processes crash before TS and never return.
			n := 7
			down := consensus.Majority(n) - 1
			var restarts []Restart
			for i := 0; i < down; i++ {
				restarts = append(restarts, Restart{
					Proc:    consensus.ProcessID(n - 1 - i),
					CrashAt: time.Duration(10+i) * time.Millisecond,
				})
			}
			res, err := Run(Config{
				Protocol: proto, N: n, Delta: delta, TS: ts, Rho: 0.01,
				Seed: 9, Restarts: restarts, Horizon: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatal(res.Violation)
			}
			if !res.Decided {
				t.Fatal("majority did not decide with a permanent minority down")
			}
		})
	}
}

func TestPreTSPolicySpectrum(t *testing.T) {
	ts := 200 * time.Millisecond
	policies := map[string]simnet.Policy{
		"dropall":     simnet.DropAll{},
		"light":       simnet.Chaos{DropProb: 0.1},
		"heavy":       simnet.Chaos{DropProb: 0.9},
		"slow-only":   simnet.Chaos{DropProb: 0, MaxDelay: 3 * ts},
		"partition":   simnet.Partition{Group: map[consensus.ProcessID]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 1}},
		"synchronous": simnet.Synchronous{},
	}
	for _, proto := range Protocols() {
		for name, policy := range policies {
			proto, name, policy := proto, name, policy
			t.Run(fmt.Sprintf("%s/%s", proto, name), func(t *testing.T) {
				res, err := Run(Config{
					Protocol: proto, N: 5, Delta: delta, TS: ts, Rho: 0.01,
					Policy: policy, Seed: 11, Horizon: 30 * time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Violation != nil {
					t.Fatal(res.Violation)
				}
				if !res.Decided {
					t.Fatal("no decision")
				}
			})
		}
	}
}

// TestEveryoneRestartsOnce is the harshest restart schedule: every single
// process crashes and comes back before TS (staggered so a majority is
// never simultaneously down for long).
func TestEveryoneRestartsOnce(t *testing.T) {
	ts := 300 * time.Millisecond
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			n := 5
			var restarts []Restart
			for i := 0; i < n; i++ {
				crash := time.Duration(20+30*i) * time.Millisecond
				restarts = append(restarts, Restart{
					Proc: consensus.ProcessID(i), CrashAt: crash, RestartAt: crash + 25*time.Millisecond,
				})
			}
			res, err := Run(Config{
				Protocol: proto, N: n, Delta: delta, TS: ts, Rho: 0.01,
				Policy: simnet.Chaos{DropProb: 0.4}, Seed: 13, Restarts: restarts,
				Horizon: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatal(res.Violation)
			}
			if !res.Decided {
				t.Fatal("no decision after full restart wave")
			}
		})
	}
}
