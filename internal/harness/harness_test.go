package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
	"repro/internal/trace"
)

const delta = 10 * time.Millisecond

func TestRunAllProtocolsSynchronous(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res, err := Run(Config{Protocol: proto, N: 5, Delta: delta, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("safety violation: %v", res.Violation)
			}
			if !res.Decided {
				t.Fatal("did not decide")
			}
			if res.Value == "" {
				t.Fatal("no decided value reported")
			}
			if res.Messages == 0 || len(res.MessagesByType) == 0 {
				t.Fatal("no message accounting")
			}
			if res.FirstDecision > res.LastDecision {
				t.Fatalf("FirstDecision %v > LastDecision %v", res.FirstDecision, res.LastDecision)
			}
		})
	}
}

func TestRunAllProtocolsAfterStabilization(t *testing.T) {
	ts := 200 * time.Millisecond
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res, err := Run(Config{Protocol: proto, N: 5, Delta: delta, TS: ts, Rho: 0.01, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Decided {
				t.Fatal("did not decide after TS")
			}
			if res.LastDecision < ts {
				t.Fatalf("decided at %v before TS %v under DropAll", res.LastDecision, ts)
			}
			if res.LatencyAfterTS != res.LastDecision-ts {
				t.Fatalf("LatencyAfterTS = %v, want %v", res.LatencyAfterTS, res.LastDecision-ts)
			}
		})
	}
}

func TestLatencyAfterTSClampsWhenDecisionPredatesTS(t *testing.T) {
	// A synchronous pre-TS network lets the cluster decide long before
	// stabilization. The headline metric must then clamp to zero (the
	// "decide by TS + bound" claim is trivially met), not fall back to
	// LastDecision — the fallback made harness.Result disagree with
	// scenario.RunResult.LatencyAfterTS on the same run.
	res, err := Run(Config{
		Protocol: ModifiedPaxos, N: 3, Delta: delta,
		TS: 10 * time.Second, Policy: simnet.Synchronous{}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided {
		t.Fatal("did not decide")
	}
	if res.LastDecision >= 10*time.Second {
		t.Fatalf("decision at %v should predate TS", res.LastDecision)
	}
	if res.LatencyAfterTS != 0 {
		t.Fatalf("LatencyAfterTS = %v for a pre-TS decision, want 0 (clamped)", res.LatencyAfterTS)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Protocol: "nope", N: 3, Delta: delta}); err == nil {
		t.Error("unknown protocol should error")
	}
	if _, err := Run(Config{Protocol: ModifiedPaxos, N: 0, Delta: delta}); err == nil {
		t.Error("bad N should error")
	}
	if _, err := Run(Config{Protocol: RoundBased, N: 3, Delta: delta, Attack: "bogus"}); err == nil {
		t.Error("unknown attack should error")
	}
	if _, err := Run(Config{Protocol: RoundBased, N: 5, Delta: delta, Attack: ObsoleteBallots, AttackK: 2}); err == nil {
		t.Error("obsolete-ballot attack on round-based should error")
	}
}

func TestObsoleteBallotAttackThroughHarness(t *testing.T) {
	ts := 100 * time.Millisecond
	runK := func(proto Protocol, k int) time.Duration {
		res, err := Run(Config{
			Protocol: proto, N: 7, Delta: delta, TS: ts, Seed: 3,
			Attack: ObsoleteBallots, AttackK: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided {
			t.Fatalf("%s k=%d did not decide", proto, k)
		}
		return res.LatencyAfterTS
	}
	tradFlat := runK(TraditionalPaxos, 0)
	tradHit := runK(TraditionalPaxos, 6)
	modFlat := runK(ModifiedPaxos, 0)
	modHit := runK(ModifiedPaxos, 6)
	if tradHit <= tradFlat+5*delta {
		t.Errorf("attack did not slow traditional paxos: %v vs %v", tradHit, tradFlat)
	}
	if modHit > modFlat+5*delta {
		t.Errorf("attack slowed modified paxos: %v vs %v", modHit, modFlat)
	}
	t.Logf("trad: %v→%v; mod: %v→%v", tradFlat, tradHit, modFlat, modHit)
}

func TestDeadCoordinatorsThroughHarness(t *testing.T) {
	ts := 100 * time.Millisecond
	runK := func(proto Protocol, k int) time.Duration {
		res, err := Run(Config{
			Protocol: proto, N: 9, Delta: delta, TS: ts, Seed: 4,
			Attack: DeadCoordinators, AttackK: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided {
			t.Fatalf("%s k=%d did not decide", proto, k)
		}
		return res.LatencyAfterTS
	}
	rbFlat := runK(RoundBased, 0)
	rbHit := runK(RoundBased, 4)
	if rbHit <= rbFlat+2*5*delta {
		t.Errorf("dead coordinators did not slow round-based: %v vs %v", rbHit, rbFlat)
	}
	// The same crashed processes barely affect modified paxos.
	modFlat := runK(ModifiedPaxos, 0)
	modHit := runK(ModifiedPaxos, 4)
	if modHit > 2*modFlat+5*delta {
		t.Errorf("crashes slowed modified paxos disproportionately: %v vs %v", modHit, modFlat)
	}
	t.Logf("roundbased: %v→%v; modpaxos: %v→%v", rbFlat, rbHit, modFlat, modHit)
}

func TestRestartRecoveryMetric(t *testing.T) {
	ts := 200 * time.Millisecond
	restartAt := ts + 400*time.Millisecond
	res, err := Run(Config{
		Protocol: ModifiedPaxos, N: 5, Delta: delta, TS: ts, Seed: 5,
		Restarts: []Restart{{Proc: 4, CrashAt: 50 * time.Millisecond, RestartAt: restartAt}},
		Horizon:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := res.RestartRecovery[4]
	if !ok {
		t.Fatal("no restart recovery recorded for process 4")
	}
	if rec > 4*delta {
		t.Errorf("restart recovery %v, want ≤ 4δ", rec)
	}
}

func TestPreparedFastPath(t *testing.T) {
	res, err := Run(Config{Protocol: ModifiedPaxos, N: 5, Delta: delta, Seed: 6, Prepared: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.LastDecision > 3*delta {
		t.Errorf("prepared fast path: decided=%v at %v, want ≤ 3δ", res.Decided, res.LastDecision)
	}
}

func TestDefaultProposalsDistinct(t *testing.T) {
	props := DefaultProposals(5)
	seen := map[consensus.Value]bool{}
	for _, p := range props {
		if seen[p] {
			t.Fatalf("duplicate proposal %q", p)
		}
		seen[p] = true
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		res, err := Run(Config{Protocol: ModifiedPaxos, N: 5, Delta: delta, TS: 150 * time.Millisecond, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.LastDecision != b.LastDecision || a.Messages != b.Messages || a.Value != b.Value {
		t.Fatalf("nondeterministic harness runs: %+v vs %+v",
			fmt.Sprintf("%v/%d/%s", a.LastDecision, a.Messages, a.Value),
			fmt.Sprintf("%v/%d/%s", b.LastDecision, b.Messages, b.Value))
	}
}

// TestObserveDoesNotPerturbSchedule pins the observability invariant:
// enabling spans and histograms consumes no randomness and schedules no
// events, so the simulated schedule is identical with them on or off —
// every protocol, same decision times, same message counts, same per-type
// traffic.
func TestObserveDoesNotPerturbSchedule(t *testing.T) {
	for _, p := range Protocols() {
		run := func(observe bool) Result {
			res, err := Run(Config{
				Protocol: p, N: 5, Delta: delta, TS: 150 * time.Millisecond,
				Seed: 42, Rho: 0.01, Observe: observe,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		plain, observed := run(false), run(true)
		if plain.LastDecision != observed.LastDecision ||
			plain.Messages != observed.Messages ||
			plain.Value != observed.Value {
			t.Errorf("%s: observation perturbed the schedule: %v/%d/%s vs %v/%d/%s",
				p, plain.LastDecision, plain.Messages, plain.Value,
				observed.LastDecision, observed.Messages, observed.Value)
		}
		for typ, n := range plain.MessagesByType {
			if observed.MessagesByType[typ] != n {
				t.Errorf("%s: per-type count %q changed: %d vs %d",
					p, typ, n, observed.MessagesByType[typ])
			}
		}
		// And the observed run actually observed: every process decided, so
		// the decide-latency histogram carries N samples.
		if h, ok := observed.Collector.HistogramCopy(trace.HistDecideLatency); !ok || h.Count() != 5 {
			t.Errorf("%s: decide-latency count = %v (ok=%v), want 5", p, h.Count(), ok)
		}
		if len(observed.Collector.SpanEvents()) == 0 {
			t.Errorf("%s: observed run recorded no span events", p)
		}
	}
}
