package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
)

// headline projects the deterministically comparable part of a Result.
func headline(r Result) map[string]any {
	return map[string]any{
		"decided": r.Decided,
		"value":   r.Value,
		"first":   r.FirstDecision,
		"last":    r.LastDecision,
		"msgs":    r.Messages,
		"byType":  r.MessagesByType,
	}
}

// TestArenaRunsMatchFreshRuns is the storage-reuse guarantee: runs on a
// shared arena — across different protocols and shrinking and growing
// cluster sizes, in sequence — must be byte-identical to runs on fresh
// engines and nodes. This is what lets the scenario runner keep one arena
// per worker without the worker count or job order leaking into reports.
func TestArenaRunsMatchFreshRuns(t *testing.T) {
	configs := []Config{
		{Protocol: "usd", N: 200, Delta: 10 * time.Millisecond, Seed: 3, OpinionPool: 2},
		{Protocol: ModifiedPaxos, N: 5, Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond, Seed: 1},
		{Protocol: "3majority", N: 100, Delta: 10 * time.Millisecond, Seed: 2, OpinionPool: 3},
		{Protocol: RoundBased, N: 9, Delta: 10 * time.Millisecond, TS: 200 * time.Millisecond, Seed: 4},
	}
	var fresh []map[string]any
	for _, cfg := range configs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s fresh: %v", cfg.Protocol, err)
		}
		if res.Violation != nil {
			t.Fatalf("%s fresh: safety violation: %v", cfg.Protocol, res.Violation)
		}
		fresh = append(fresh, headline(res))
	}
	arena := simnet.NewArena()
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range configs {
			cfg.Arena = arena
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s arena pass %d: %v", cfg.Protocol, pass, err)
			}
			if got := headline(res); !reflect.DeepEqual(got, fresh[i]) {
				t.Fatalf("%s arena pass %d diverges from fresh run:\narena: %v\nfresh: %v",
					cfg.Protocol, pass, got, fresh[i])
			}
		}
	}
}
