// Package harness runs complete consensus experiments: it assembles a
// simulated cluster for a chosen protocol, adversary, and parameter set,
// runs it to global decision, and extracts the metrics the paper's claims
// are stated in (decision latency after stabilization, per-process restart
// recovery, message counts, session/round progressions).
//
// Every experiment table in EXPERIMENTS.md and every benchmark in
// bench_test.go is generated through this package, so the CLI, the
// benchmarks, and the tests all measure exactly the same code paths.
//
// Protocols are resolved by name through the protocol registry
// (internal/protocol): the harness holds no protocol-specific code, so a
// newly registered protocol — or an ablation variant registered by a test —
// runs through Run unchanged, including its variant of the obsolete-message
// adversary (the descriptor's Obsolete hook) and its leader-oracle needs.
package harness

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/leader"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"

	// Make the built-in protocols available wherever the harness runs.
	_ "repro/internal/protocol/all"
)

// Protocol names a consensus algorithm in the protocol registry
// (internal/protocol). Any registered name is accepted; the constants cover
// the paper's four built-ins.
type Protocol string

// The built-in protocols.
const (
	// TraditionalPaxos is the §2 baseline (claim C1).
	TraditionalPaxos Protocol = "paxos"
	// ModifiedPaxos is the paper's contribution (§4, claim C3).
	ModifiedPaxos Protocol = "modpaxos"
	// RoundBased is the rotating-coordinator baseline (§3, claim C2).
	RoundBased Protocol = "roundbased"
	// ModifiedBConsensus is the §5 algorithm (claim C6).
	ModifiedBConsensus Protocol = "bconsensus"
)

// Protocols lists the registered protocols that take part in default
// comparisons (hidden ablation variants are excluded; they run only when
// named explicitly).
func Protocols() []Protocol {
	ds := protocol.Visible()
	out := make([]Protocol, len(ds))
	for i, d := range ds {
		out[i] = Protocol(d.Name)
	}
	return out
}

// AttackKind selects the adversarial schedule.
type AttackKind string

// The implemented adversaries.
const (
	// NoAttack runs only the pre-TS network policy.
	NoAttack AttackKind = "none"
	// ObsoleteBallots is the §2 attack: adaptive release of obsolete
	// high-ballot messages (traditional Paxos) or their session-capped
	// legal equivalent (modified Paxos).
	ObsoleteBallots AttackKind = "obsolete"
	// DeadCoordinators keeps the processes coordinating the first rounds
	// down (§3 attack; also applied to other protocols as plain crashes).
	DeadCoordinators AttackKind = "deadcoords"
)

// Config describes one run.
type Config struct {
	Protocol Protocol
	// N is the cluster size.
	N int
	// Delta is δ.
	Delta time.Duration
	// TS is the stabilization time.
	TS time.Duration
	// Policy is the pre-TS network policy (defaults to DropAll when TS>0,
	// Synchronous otherwise).
	Policy simnet.Policy
	// Rho is the clock-rate error bound.
	Rho float64
	// Sigma, Eps override the modified-Paxos (and ε for B-Consensus)
	// parameters; zero uses protocol defaults.
	Sigma time.Duration
	Eps   time.Duration
	// Attack selects the adversary; AttackK is its strength (number of
	// obsolete ballots or dead coordinators).
	Attack  AttackKind
	AttackK int
	// WorstCaseDelays makes every post-TS delivery take exactly δ (the
	// model's worst case) instead of a uniform draw from (0, δ]. The
	// O(Nδ) lower-bound behaviours are sharpest under this setting.
	WorstCaseDelays bool
	// Seed drives all randomness.
	Seed int64
	// Horizon bounds the run (default 2 minutes of virtual time).
	Horizon time.Duration
	// Prepared enables the modified-Paxos stable-state fast path.
	Prepared bool
	// Restarts schedules crash/restart pairs.
	Restarts []Restart
	// Drift optionally supplies an explicit clock per process (a scenario
	// clock profile); nil spreads rates across [1−ρ, 1+ρ] as before.
	Drift func(id consensus.ProcessID) clock.Drift
	// PreStart hooks run after the adversary is installed but before any
	// process starts. The scenario engine uses them to install fault
	// schedules (assassins, churn) that need direct network access.
	PreStart []func(*simnet.Network)
	// Arena, when non-nil, supplies pooled engine and node storage reused
	// across runs (simnet.Arena). The scenario runner gives each worker
	// its own arena so population-scale grid cells stop paying per-cell
	// construction; results are byte-identical to fresh-storage runs.
	Arena *simnet.Arena
	// OpinionPool, when > 0, draws the processes' proposals round-robin
	// from a pool of this many distinct values ("v0".."v(k-1)") instead of
	// the default one-distinct-value-per-process. Population-dynamics
	// protocols (usd, 3majority, minority) converge on the theory's
	// O(log n) timescale only when the opinion space is bounded; validity
	// is unaffected, since every pooled value is some process's proposal.
	OpinionPool int
	// Observe enables run-level observability: phase spans (run/pre-TS/
	// post-TS, protocol sessions and rounds, leader epochs, crash windows)
	// and latency/queue-depth histograms in the collector, exportable via
	// trace.Snapshot. Disabled (the default), the instrumentation costs a
	// branch per hook and allocates nothing; enabled, it consumes no
	// randomness and schedules no events, so the delivery schedule is
	// byte-identical either way.
	Observe bool
	// SpanCapacity sizes the span ring buffer when Observe is set (0 uses
	// the trace package default).
	SpanCapacity int
	// Debug retains per-event logs in the collector.
	Debug bool
}

// Restart schedules a crash at CrashAt and (if RestartAt > 0) a restart.
type Restart struct {
	Proc      consensus.ProcessID
	CrashAt   time.Duration
	RestartAt time.Duration
}

// Result summarizes one run.
type Result struct {
	// Decided reports whether every process that was up at the end
	// decided within the horizon.
	Decided bool
	// Value is the decided value.
	Value consensus.Value
	// FirstDecision and LastDecision are global decision times over the
	// processes that were up at the end.
	FirstDecision time.Duration
	LastDecision  time.Duration
	// LatencyAfterTS is LastDecision − TS, clamped at zero (the paper's
	// headline metric; a run that decides before stabilization meets
	// "decide by TS + bound" trivially). The clamp matches
	// scenario.RunResult.LatencyAfterTS, so every caller reports the same
	// headline number.
	LatencyAfterTS time.Duration
	// Messages is the total number of messages handed to the network up
	// to the last decision... (total for the run; see MessagesByType).
	Messages int
	// MessagesByType breaks sends down by message type.
	MessagesByType map[string]int
	// RestartRecovery maps each restarted process to the gap between its
	// last restart and its decision.
	RestartRecovery map[consensus.ProcessID]time.Duration
	// Collector exposes the raw trace for custom analysis.
	Collector *trace.Collector
	// Violation is any safety violation detected (always nil for a
	// correct implementation; recorded so harness users can assert).
	Violation error
}

// Params maps the config's protocol parameters onto the registry's common
// parameter set.
func (c Config) Params() protocol.Params {
	return protocol.Params{
		Delta: c.Delta, Sigma: c.Sigma, Eps: c.Eps, Rho: c.Rho, Prepared: c.Prepared,
	}
}

// DefaultProposals returns the proposals used by harness runs: distinct
// per-process values so agreement is observable.
func DefaultProposals(n int) []consensus.Value {
	return PooledProposals(n, n)
}

// PooledProposals assigns proposals round-robin from a pool of k distinct
// values, so population-dynamics runs can model a bounded opinion space
// (Config.OpinionPool). k is clamped to [1, n].
func PooledProposals(n, k int) []consensus.Value {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	pool := make([]consensus.Value, k)
	for i := range pool {
		pool[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = pool[i%k]
	}
	return out
}

// Run executes one experiment.
func Run(cfg Config) (Result, error) {
	if cfg.Horizon == 0 {
		cfg.Horizon = 2 * time.Minute
	}
	if cfg.Policy == nil {
		if cfg.TS > 0 {
			cfg.Policy = simnet.DropAll{}
		} else {
			cfg.Policy = simnet.Synchronous{}
		}
	}
	desc, err := protocol.Get(string(cfg.Protocol))
	if err != nil {
		return Result{}, fmt.Errorf("harness: %w", err)
	}
	factory, err := desc.Build(cfg.Params())
	if err != nil {
		return Result{}, err
	}

	var eng *sim.Engine
	if cfg.Arena != nil {
		eng = cfg.Arena.Engine(cfg.Seed)
	} else {
		eng = sim.NewEngine(cfg.Seed)
	}
	collector := trace.NewCollector()
	if cfg.Debug {
		collector.EnableLogging(10000)
	}
	if cfg.Observe {
		collector.EnableSpans(cfg.SpanCapacity)
		collector.EnableHistograms()
	}
	// Pre-intern the protocol's wire types (and the oracle's announcement)
	// into the collector's dense counter table: the run's hot path then
	// never grows the table, and unknown types still intern lazily.
	for _, name := range desc.MessageTypes() {
		collector.Intern(name)
	}
	if desc.NeedsLeaderOracle {
		collector.Intern(leader.Announce{}.Type())
	}
	var minDelay time.Duration
	if cfg.WorstCaseDelays {
		minDelay = cfg.Delta
	}
	proposals := DefaultProposals(cfg.N)
	if cfg.OpinionPool > 0 {
		proposals = PooledProposals(cfg.N, cfg.OpinionPool)
	}
	nw, err := simnet.New(eng, simnet.Config{
		N: cfg.N, Delta: cfg.Delta, TS: cfg.TS, MinDelay: minDelay,
		Policy: cfg.Policy, Rho: cfg.Rho, Drift: cfg.Drift,
		Collector: collector, Arena: cfg.Arena, Debug: cfg.Debug,
	}, factory, proposals)
	if err != nil {
		return Result{}, err
	}

	down, err := installAdversary(nw, desc, cfg)
	if err != nil {
		return Result{}, err
	}

	if desc.NeedsLeaderOracle {
		leader.Install(nw, leader.Config{Stable: stableLeader(cfg, down)})
	}

	for _, hook := range cfg.PreStart {
		hook(nw)
	}

	nw.StartExcept(down...)
	for _, r := range cfg.Restarts {
		nw.CrashAt(r.Proc, r.CrashAt)
		if r.RestartAt > 0 {
			nw.RestartAt(r.Proc, r.RestartAt)
		}
	}

	decided, violation := nw.RunUntilAllDecided(cfg.Horizon)

	// A restart scheduled after the surviving processes decided still has
	// to be simulated: keep running until every restarted process has
	// decided too (decision gossip brings it up to date). This covers
	// restarts scheduled by PreStart hooks (which the harness cannot
	// enumerate) as well as cfg.Restarts.
	if violation == nil {
		ok := nw.Engine().RunUntil(func() bool {
			if nw.Checker().Violation() != nil {
				return true
			}
			if nw.RestartsPending() > 0 {
				return false
			}
			for _, id := range nw.UpIDs() {
				if _, d := nw.Node(id).Decided(); !d {
					return false
				}
			}
			return true
		}, cfg.Horizon)
		decided = decided && ok
	}

	// Run-level phase spans are recorded after the fact with explicit
	// timestamps — no events scheduled, no randomness drawn — so observed
	// and unobserved runs replay identical schedules.
	collector.RecordRunPhases(cfg.TS, eng.Now())

	res := BuildResult(cfg, collector, nw.Checker(), nw.UpIDs(), decided)
	// Recovery is read from the nodes, not cfg.Restarts, so restarts
	// scheduled dynamically (PreStart fault schedules) are measured too.
	for _, id := range nw.AllIDs() {
		if rec, ok := nw.Node(id).RestartRecovery(); ok {
			res.RestartRecovery[id] = rec
		}
	}
	return res, nil
}

// BuildResult assembles a Result from a run's collector and safety checker.
// It is the single place the headline metrics are derived — the simulator
// path (Run) and the scenario engine's live backend both report through it,
// so decision latency against TS carries identical clamping and message
// accounting whatever the execution substrate. up lists the processes whose
// decisions bound LastDecision (those up at the end of the run);
// RestartRecovery is left empty for substrates that do not measure it.
func BuildResult(cfg Config, collector *trace.Collector, checker *consensus.SafetyChecker, up []consensus.ProcessID, decided bool) Result {
	violation := checker.Violation()
	res := Result{
		Decided:         decided && violation == nil,
		Messages:        collector.TotalSent(),
		MessagesByType:  collector.SentByType(),
		RestartRecovery: make(map[consensus.ProcessID]time.Duration),
		Collector:       collector,
		Violation:       violation,
	}
	if d, ok := checker.FirstDecision(); ok {
		res.FirstDecision = d.At
		res.Value = d.Value
	}
	if last, ok := checker.LastDecisionAmong(up); ok {
		res.LastDecision = last
		res.LatencyAfterTS = last - cfg.TS
		if res.LatencyAfterTS < 0 {
			res.LatencyAfterTS = 0
		}
	}
	return res
}

// stableLeader picks the lowest-id process not scheduled to be down.
func stableLeader(cfg Config, down []consensus.ProcessID) consensus.ProcessID {
	isDown := make(map[consensus.ProcessID]bool, len(down))
	for _, d := range down {
		isDown[d] = true
	}
	for _, r := range cfg.Restarts {
		if r.RestartAt == 0 {
			isDown[r.Proc] = true
		}
	}
	for i := 0; i < cfg.N; i++ {
		if !isDown[consensus.ProcessID(i)] {
			return consensus.ProcessID(i)
		}
	}
	return 0
}

// installAdversary wires the configured attack and returns the processes
// that must stay down from the start. The obsolete-message attack is
// protocol-specific (each protocol's rules bound what the adversary can
// forge), so its construction is delegated to the descriptor's hook; the
// dead-coordinator attack is plain crashes and needs no protocol knowledge.
func installAdversary(nw *simnet.Network, desc protocol.Descriptor, cfg Config) ([]consensus.ProcessID, error) {
	switch cfg.Attack {
	case "", NoAttack:
		return nil, nil

	case ObsoleteBallots:
		if cfg.AttackK == 0 {
			return nil, nil
		}
		if desc.Obsolete == nil {
			return nil, fmt.Errorf("harness: obsolete-ballot attack not defined for %q", cfg.Protocol)
		}
		// The failed process carrying the obsolete messages is the
		// highest-id process; the victims are every other non-leader.
		from := consensus.ProcessID(cfg.N - 1)
		var victims []consensus.ProcessID
		for i := 1; i < cfg.N-1; i++ {
			victims = append(victims, consensus.ProcessID(i))
		}
		desc.Obsolete(cfg.Params(), protocol.ObsoleteSpec{
			N: cfg.N, Delta: cfg.Delta, TS: cfg.TS,
			K: cfg.AttackK, From: from, Victims: victims,
		})(nw)
		return []consensus.ProcessID{from}, nil

	case DeadCoordinators:
		return adversary.CoordinatorKiller(cfg.N, cfg.AttackK), nil

	default:
		return nil, fmt.Errorf("harness: unknown attack %q", cfg.Attack)
	}
}
