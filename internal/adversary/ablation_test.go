package adversary

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestAblationEntryRuleIsLoadBearing shows why the majority-session-entry
// rule exists: with it disabled, a failed process could legally have built
// arbitrarily high sessions before TS, and the adaptive release of its
// obsolete messages delays consensus far past the paper's bound. With the
// rule enabled, the strongest legal attack (session-capped) is absorbed.
func TestAblationEntryRuleIsLoadBearing(t *testing.T) {
	const n = 5
	const delta = 10 * time.Millisecond
	ts := 100 * time.Millisecond
	victims := []consensus.ProcessID{0, 1, 2, 3}

	run := func(disableRule bool, k int) time.Duration {
		eng := sim.NewEngine(5)
		factory := modpaxos.MustNew(modpaxos.Config{Delta: delta, Rho: 0.01, DisableEntryRule: disableRule})
		nw, err := simnet.New(eng, simnet.Config{
			N: n, Delta: delta, TS: ts, MinDelay: delta, // worst-case delivery
			Policy: simnet.DropAll{}, Rho: 0.01,
		}, factory, proposals(n))
		if err != nil {
			t.Fatal(err)
		}
		if disableRule {
			ReactiveSessionAttack{K: k, From: 4, Victims: victims}.Install(nw)
		} else {
			Apply(nw, SessionCappedAttack{K: k, From: 4, Victims: victims, Cap: 2}.Build(n, delta, ts))
		}
		nw.StartExcept(4)
		ok, err := nw.RunUntilAllDecided(time.Minute)
		if err != nil {
			t.Fatalf("disableRule=%v k=%d: safety violation: %v", disableRule, k, err)
		}
		if !ok {
			t.Fatalf("disableRule=%v k=%d: no decision", disableRule, k)
		}
		last, _ := nw.Checker().LastDecisionAmong(nw.UpIDs())
		return last - ts
	}

	bound, err := modpaxos.DecisionBound(modpaxos.Config{Delta: delta, Rho: 0.01})
	if err != nil {
		t.Fatal(err)
	}

	withRule := run(false, 8)
	if withRule > bound {
		t.Fatalf("rule enabled: %v exceeds bound %v", withRule, bound)
	}
	ablated := run(true, 8)
	if ablated <= bound {
		t.Fatalf("ablated algorithm still within bound (%v ≤ %v); attack not biting", ablated, bound)
	}
	// Growth with k: more obsolete sessions, more delay.
	ablated4 := run(true, 4)
	if ablated <= ablated4 {
		t.Fatalf("ablated latency not growing with k: k4=%v k8=%v", ablated4, ablated)
	}
	t.Logf("with rule: %v; ablated k=4: %v; ablated k=8: %v (bound %v)", withRule, ablated4, ablated, bound)
}

// TestAblationHeartbeatIsLoadBearing shows why the ε-heartbeat exists: with
// every pre-TS message lost and no heartbeat, communication is never
// re-established after TS and the cluster cannot decide.
func TestAblationHeartbeatIsLoadBearing(t *testing.T) {
	const n = 5
	const delta = 10 * time.Millisecond
	ts := 100 * time.Millisecond

	eng := sim.NewEngine(6)
	factory := modpaxos.MustNew(modpaxos.Config{Delta: delta, Rho: 0.01, DisableHeartbeat: true})
	nw, err := simnet.New(eng, simnet.Config{
		N: n, Delta: delta, TS: ts, Policy: simnet.DropAll{}, Rho: 0.01,
	}, factory, proposals(n))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	ok, err := nw.RunUntilAllDecided(ts + 100*delta) // 100δ of post-TS time
	if err != nil {
		t.Fatalf("safety violation: %v", err)
	}
	if ok {
		t.Fatal("cluster decided without the heartbeat despite total pre-TS loss")
	}
	if nw.Checker().DecidedCount() != 0 {
		t.Fatalf("%d processes decided", nw.Checker().DecidedCount())
	}
}
