// Package adversary builds the adversarial schedules the paper's analysis
// turns on:
//
//   - ObsoleteBallotAttack (§2): pre-stabilization, a process that has since
//     failed ran Start Phase 1 repeatedly, inflating its ballot number
//     without bound (traditional Paxos lets a process do this unilaterally).
//     Its old phase 1a messages were delayed in the network and surface one
//     by one after TS, each timed to abort the incumbent leader's ballot and
//     force a retry — the O(Nδ) worst case.
//
//   - SessionCappedAttack: the strongest injection the same adversary can
//     mount against the modified algorithm. Proof step 1 caps every message
//     ever sent at session s0+1, so the "obsolete" messages carry session
//     s0+1 ballots; the modified algorithm absorbs them in O(δ).
//
//   - CoordinatorKiller (§3): for rotating-coordinator round-based
//     algorithms, the ⌈N/2⌉−1 processes that coordinate the first rounds
//     after stabilization are crashed from the start, so each of their
//     rounds burns a timeout — the other O(Nδ) worst case.
package adversary

import (
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/paxos"
	"repro/internal/simnet"

	modpaxosproto "repro/internal/core/modpaxos"
)

// Injection is one obsolete message to plant.
type Injection struct {
	At   time.Duration
	From consensus.ProcessID
	To   consensus.ProcessID
	Msg  consensus.Message
}

// ObsoleteBallotAttack builds k obsolete traditional-Paxos phase 1a
// messages "sent" before TS by failed process from, arriving at the victim
// acceptor at Spacing intervals starting at TS+Spacing. Ballot i is chosen
// high enough (stepping by 2N) that it still exceeds the leader's bump in
// response to ballot i−1, so each injection forces a fresh Reject/retry
// cycle.
type ObsoleteBallotAttack struct {
	// K is the number of obsolete messages (the paper allows up to
	// ⌈N/2⌉−1 failed processes; one failed process suffices to carry
	// arbitrarily many ballots, so K may exceed that here).
	K int
	// From is the failed process the messages claim to come from. It
	// should be a process that is down for the whole run.
	From consensus.ProcessID
	// Victims are the nonfaulty acceptors that receive each injection.
	// To actually force a retry the victims must deny the leader a
	// majority: at least (up processes − majority + 1) of them. Passing
	// every up process except the leader is the paper's worst case.
	Victims []consensus.ProcessID
	// Spacing is the interval between successive obsolete ballots
	// (default 3δ: one Reject round trip plus slack, so the leader has
	// started its next ballot before the next obsolete message lands).
	Spacing time.Duration
}

// Build returns the injection schedule for a network with parameters n, δ,
// TS.
func (a ObsoleteBallotAttack) Build(n int, delta, ts time.Duration) []Injection {
	spacing := a.Spacing
	if spacing == 0 {
		spacing = 3 * delta
	}
	out := make([]Injection, 0, a.K*len(a.Victims))
	for i := 0; i < a.K; i++ {
		// Sessions 10, 12, 14, ... of the failed process: each ballot
		// exceeds the leader's response to the previous one (the leader
		// bumps by < N per Reject, we step by 2N).
		bal := consensus.BallotFor(int64(10+2*i), a.From, n)
		at := ts + time.Duration(i+1)*spacing
		for _, v := range a.Victims {
			out = append(out, Injection{
				At:   at,
				From: a.From,
				To:   v,
				Msg:  paxos.P1a{Bal: bal},
			})
		}
	}
	return out
}

// SessionCappedAttack is the equivalent adversary against the modified
// algorithm. The session rule (proof step 1) means no message with session
// greater than s0+1 can exist, where s0 is the highest session among
// processes nonfaulty at TS; the adversary therefore injects session-Cap
// phase 1a messages — the strongest legal forgery.
type SessionCappedAttack struct {
	// K is the number of injected messages.
	K int
	// From is the failed process they claim to come from.
	From consensus.ProcessID
	// Victims receive each injection.
	Victims []consensus.ProcessID
	// Cap is the session number to use (s0+1 for the run's schedule).
	Cap int64
	// Spacing is the interval between injections (default 3δ).
	Spacing time.Duration
}

// Build returns the injection schedule.
func (a SessionCappedAttack) Build(n int, delta, ts time.Duration) []Injection {
	spacing := a.Spacing
	if spacing == 0 {
		spacing = 3 * delta
	}
	out := make([]Injection, 0, a.K*len(a.Victims))
	for i := 0; i < a.K; i++ {
		bal := consensus.BallotFor(a.Cap, a.From, n)
		at := ts + time.Duration(i+1)*spacing
		for _, v := range a.Victims {
			out = append(out, Injection{
				At:   at,
				From: a.From,
				To:   v,
				Msg:  modpaxosproto.P1a{Bal: bal},
			})
		}
	}
	return out
}

// Apply schedules the injections on a network.
func Apply(nw *simnet.Network, injections []Injection) {
	for _, inj := range injections {
		nw.Inject(inj.At, inj.From, inj.To, inj.Msg)
	}
}

// ReactiveObsoleteAttack is the adaptive worst-case version of
// ObsoleteBallotAttack: instead of a fixed schedule, the adversary watches
// deliveries (it controls the network, so it knows when the leader's latest
// phase 1a reaches an acceptor) and releases the next obsolete ballot at
// exactly that moment. This guarantees one full Reject/retry cycle (≈3δ:
// phase 1a + phase 2a + Reject transit) per obsolete ballot — the paper's
// O(Nδ) worst case with K = ⌈N/2⌉−1 failed processes' worth of messages.
type ReactiveObsoleteAttack struct {
	// K is the number of obsolete ballots to release.
	K int
	// From is the failed process the ballots belong to.
	From consensus.ProcessID
	// Victims receive each release; they must be able to deny the leader
	// a majority.
	Victims []consensus.ProcessID
}

// Install registers the adversary on the network. It returns a counter
// function reporting how many ballots have been released.
func (a ReactiveObsoleteAttack) Install(nw *simnet.Network) func() int {
	n := nw.Config().N
	ts := nw.Config().TS
	released := 0
	var lastInjected consensus.Ballot = -1
	victim := make(map[consensus.ProcessID]bool, len(a.Victims))
	for _, v := range a.Victims {
		victim[v] = true
	}
	nw.Observe(func(at time.Duration, from, to consensus.ProcessID, m consensus.Message) {
		if released >= a.K || at < ts || !victim[to] {
			return
		}
		p1a, ok := m.(paxos.P1a)
		if !ok || p1a.Bal.Owner(n) == a.From || p1a.Bal <= lastInjected {
			return
		}
		// The leader has moved past our last obsolete ballot: release the
		// next one, high enough to beat the current ballot.
		bal := consensus.BallotFor(p1a.Bal.Session(n)+2, a.From, n)
		lastInjected = bal
		released++
		for _, v := range a.Victims {
			nw.Inject(at, a.From, v, paxos.P1a{Bal: bal})
		}
	})
	return func() int { return released }
}

// ReactiveSessionAttack is the modified-Paxos analogue of
// ReactiveObsoleteAttack for ABLATION runs: it releases obsolete messages
// with ever-higher session numbers, timed to abort each in-flight ballot.
// Against the real algorithm such messages cannot exist (proof step 1 —
// the majority-entry rule caps legal sessions at s0+1); against the
// ablated algorithm (modpaxos.Config.DisableEntryRule) a failed process
// could legally have produced them before TS, and they delay consensus
// indefinitely, which is exactly why the rule exists.
type ReactiveSessionAttack struct {
	// K is the number of obsolete messages to release.
	K int
	// From is the failed process they claim to come from.
	From consensus.ProcessID
	// Victims receive each release (typically every up process).
	Victims []consensus.ProcessID
}

// Install registers the adversary; it returns a released-count reporter.
func (a ReactiveSessionAttack) Install(nw *simnet.Network) func() int {
	n := nw.Config().N
	ts := nw.Config().TS
	released := 0
	var lastInjected consensus.Ballot = -1
	nw.Observe(func(at time.Duration, from, to consensus.ProcessID, m consensus.Message) {
		if released >= a.K || at < ts {
			return
		}
		// Trigger on the first phase 1b reaching the incumbent ballot's
		// owner: the owner is one message delay away from broadcasting
		// phase 2a, so a higher session released NOW reaches the victims
		// before that 2a does and aborts the ballot.
		p1b, ok := m.(modpaxosproto.P1b)
		if !ok || p1b.Bal.Owner(n) != to || p1b.Bal.Owner(n) == a.From || p1b.Bal <= lastInjected {
			return
		}
		bal := consensus.BallotFor(p1b.Bal.Session(n)+2, a.From, n)
		lastInjected = bal
		released++
		for _, v := range a.Victims {
			nw.Inject(at, a.From, v, modpaxosproto.P1a{Bal: bal})
		}
	})
	return func() int { return released }
}

// CoordinatorKiller returns the set of processes to keep down from the
// start so that the round-based algorithm's first k post-stabilization
// coordinators are all faulty. Round r is coordinated by r mod N and rounds
// begin at 0, so processes 0..k−1 are the victims; k is capped at
// ⌈N/2⌉−1 = Majority(N)−1 so a majority stays up.
func CoordinatorKiller(n, k int) []consensus.ProcessID {
	maxDown := consensus.Majority(n) - 1
	if k > maxDown {
		k = maxDown
	}
	out := make([]consensus.ProcessID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, consensus.ProcessID(i))
	}
	return out
}
