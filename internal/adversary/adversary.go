// Package adversary provides the protocol-independent machinery for the
// adversarial schedules the paper's analysis turns on: scheduled injection
// of forged "obsolete" messages (§2's delayed pre-stabilization traffic),
// the adaptive-release skeleton that times each forgery to abort the
// incumbent ballot, and the dead-coordinator selector (§3).
//
// The protocol-specific halves — which message type triggers a release and
// which message is forged — live with the protocols themselves
// (paxos.ReactiveObsoleteAttack, modpaxos.SessionCappedAttack, …), wired to
// the harness through each protocol's registry descriptor
// (protocol.Descriptor.Obsolete). This package knows nothing about any
// particular protocol.
package adversary

import (
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
)

// Injection is one obsolete message to plant.
type Injection struct {
	At   time.Duration
	From consensus.ProcessID
	To   consensus.ProcessID
	Msg  consensus.Message
}

// Apply schedules the injections on a network.
func Apply(nw *simnet.Network, injections []Injection) {
	for _, inj := range injections {
		nw.Inject(inj.At, inj.From, inj.To, inj.Msg)
	}
}

// Reactive is the adaptive worst-case release skeleton shared by the
// protocol attacks: the adversary controls the network, so it watches
// deliveries and releases the next obsolete message at exactly the moment
// the incumbent has moved past the previous one — guaranteeing one full
// abort/retry cycle per forgery, the paper's O(Nδ) construction.
//
// Trigger and Forge carry the protocol-specific halves: Trigger recognizes
// the delivery showing the incumbent ballot has progressed and returns that
// ballot; Forge builds the protocol's phase 1a message for the forged
// ballot, which Reactive picks two sessions ahead so it beats the
// incumbent's bump in response to the previous forgery.
type Reactive struct {
	// K is the number of obsolete messages to release.
	K int
	// From is the failed process the messages claim to come from.
	From consensus.ProcessID
	// Victims receive each release; to abort a ballot they must be able to
	// deny it a majority.
	Victims []consensus.ProcessID
	// Trigger inspects a delivery on a cluster of n processes and reports
	// the ballot the incumbent has progressed to (ok=false ignores the
	// delivery). Deliveries before TS, ballots owned by From, and ballots
	// not exceeding the last forgery are filtered out by Reactive itself.
	Trigger func(n int, to consensus.ProcessID, m consensus.Message) (bal consensus.Ballot, ok bool)
	// Forge builds the protocol's message carrying the forged ballot.
	Forge func(bal consensus.Ballot) consensus.Message
}

// Install registers the adversary on the network. It returns a counter
// function reporting how many messages have been released.
func (a Reactive) Install(nw *simnet.Network) func() int {
	n := nw.Config().N
	ts := nw.Config().TS
	released := 0
	var lastInjected consensus.Ballot = -1
	nw.Observe(func(at time.Duration, from, to consensus.ProcessID, m consensus.Message) {
		if released >= a.K || at < ts {
			return
		}
		bal, ok := a.Trigger(n, to, m)
		if !ok || bal.Owner(n) == a.From || bal <= lastInjected {
			return
		}
		// The incumbent has moved past our last forgery: release the next
		// one, two sessions ahead so it beats the incumbent's bump (the
		// incumbent bumps by < N per abort, we step by 2N).
		next := consensus.BallotFor(bal.Session(n)+2, a.From, n)
		lastInjected = next
		released++
		for _, v := range a.Victims {
			nw.Inject(at, a.From, v, a.Forge(next))
		}
	})
	return func() int { return released }
}

// CoordinatorKiller returns the set of processes to keep down from the
// start so that the round-based algorithm's first k post-stabilization
// coordinators are all faulty. Round r is coordinated by r mod N and rounds
// begin at 0, so processes 0..k−1 are the victims; k is capped at
// ⌈N/2⌉−1 = Majority(N)−1 so a majority stays up.
func CoordinatorKiller(n, k int) []consensus.ProcessID {
	maxDown := consensus.Majority(n) - 1
	if k > maxDown {
		k = maxDown
	}
	out := make([]consensus.ProcessID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, consensus.ProcessID(i))
	}
	return out
}
