package adversary

import (
	"testing"
)

// The protocol-specific attacks (and their end-to-end effect on latency)
// are tested with the protocols that define them: see
// internal/core/paxos/attack_test.go and
// internal/core/modpaxos/attack_test.go.

func TestCoordinatorKiller(t *testing.T) {
	if got := CoordinatorKiller(5, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("CoordinatorKiller(5,2) = %v", got)
	}
	// Capped at ⌈N/2⌉−1 so a majority survives.
	if got := CoordinatorKiller(5, 10); len(got) != 2 {
		t.Fatalf("CoordinatorKiller(5,10) = %v, want 2 victims", got)
	}
	if got := CoordinatorKiller(3, 0); len(got) != 0 {
		t.Fatalf("CoordinatorKiller(3,0) = %v, want none", got)
	}
}
