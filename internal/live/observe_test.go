package live

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestCollectorReadersDuringLiveRun is the race-detector regression for the
// collector's reader methods: a polling goroutine hammers every read API
// (counters, series, reports, snapshots) while a live cluster writes to the
// same collector from node and transport goroutines. Run under -race this
// fails on any unlocked reader; run plain it still asserts the readers
// return deterministically-ordered data mid-flight.
func TestCollectorReadersDuringLiveRun(t *testing.T) {
	collector := trace.NewCollector()
	collector.EnableSpans(0)
	collector.EnableHistograms()
	transport := NewMemTransport(MemTransportConfig{
		MaxDelay: delta, Seed: 1, Collector: collector,
	})
	c, err := NewCluster(Config{
		N: 5, Delta: delta, TS: 0,
		Transport: transport, Collector: collector, Seed: 1,
	}, factory(t, "modpaxos", delta), distinctProposals(5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	}()

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = collector.SentByType()
			_ = collector.SentCounts()
			_ = collector.MessageReport()
			_ = collector.SeriesNames()
			for _, s := range collector.Series("session") {
				_ = s
			}
			_ = collector.HistogramSnapshots()
			snap := collector.Snapshot()
			for i := 1; i < len(snap.Spans); i++ {
				a, b := snap.Spans[i-1], snap.Spans[i]
				if b.Start < a.Start {
					t.Error("Snapshot spans out of order")
					return
				}
			}
			for i := 1; i < len(snap.Sent); i++ {
				if snap.Sent[i].Type < snap.Sent[i-1].Type {
					t.Error("Snapshot sent counts out of order")
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	c.Start()
	if err := c.WaitAllDecided(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-readerDone
	if err := c.Checker().Violation(); err != nil {
		t.Fatal(err)
	}

	// The run recorded what the instrumentation promises: a decide-latency
	// sample per process and at least one session span.
	if h, ok := collector.HistogramCopy(trace.HistDecideLatency); !ok || h.Count() != 5 {
		t.Fatalf("decide-latency count = %v (ok=%v), want 5", h.Count(), ok)
	}
	sawSession := false
	for _, s := range collector.Snapshot().Spans {
		if s.Kind == "session" {
			sawSession = true
			break
		}
	}
	if !sawSession {
		t.Fatal("no session span recorded by a live modpaxos run")
	}
}
