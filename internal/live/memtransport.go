package live

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/trace"
)

// MemTransportConfig tunes the in-memory transport's fault model, mapping
// the paper's eventual synchrony onto wall-clock time.
type MemTransportConfig struct {
	// MaxDelay bounds per-message delivery delay after stabilization
	// (the live δ). Zero means immediate delivery.
	MaxDelay time.Duration
	// StabilizeAfter is the wall-clock duration of the unstable period
	// from transport creation: until then, messages are dropped with
	// LossProb and delayed up to UnstableMaxDelay.
	StabilizeAfter time.Duration
	// LossProb is the pre-stabilization loss probability.
	LossProb float64
	// UnstableMaxDelay bounds pre-stabilization delays (default
	// 2·StabilizeAfter, so late messages can arrive after stabilization
	// — live obsolete messages).
	UnstableMaxDelay time.Duration
	// Seed seeds the transport's fault randomness. Zero means a fixed
	// default seed — zero-config transports are reproducible. (Zero used
	// to fall back to time-based seeding, which made every scenario-driven
	// live report unrepeatable; callers wanting varied runs must now seed
	// explicitly.)
	Seed int64
	// Collector, when set and with histograms enabled, records per-type
	// delivery latency (the delay the transport itself imposes — the live
	// counterpart of the simulator's delivery histograms).
	Collector *trace.Collector
}

// defaultTransportSeed replaces a zero MemTransportConfig.Seed.
const defaultTransportSeed = 1

// MemTransport delivers messages between in-process nodes via their
// registered handlers, applying the configured loss/delay model. It is safe
// for concurrent use.
type MemTransport struct {
	cfg   MemTransportConfig
	start time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	handlers map[consensus.ProcessID]func(consensus.ProcessID, consensus.Message)
	closed   bool
	timers   map[*time.Timer]struct{}
	wg       sync.WaitGroup
}

var _ Transport = (*MemTransport)(nil)

// NewMemTransport returns a transport with the given fault model.
func NewMemTransport(cfg MemTransportConfig) *MemTransport {
	if cfg.UnstableMaxDelay == 0 {
		cfg.UnstableMaxDelay = 2 * cfg.StabilizeAfter
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = defaultTransportSeed
	}
	return &MemTransport{
		cfg:      cfg,
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[consensus.ProcessID]func(consensus.ProcessID, consensus.Message)),
		timers:   make(map[*time.Timer]struct{}),
	}
}

// Register implements Transport.
func (t *MemTransport) Register(id consensus.ProcessID, h func(consensus.ProcessID, consensus.Message)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[id] = h
}

// Send implements Transport.
func (t *MemTransport) Send(from, to consensus.ProcessID, m consensus.Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	h := t.handlers[to]
	var delay time.Duration
	stable := time.Since(t.start) >= t.cfg.StabilizeAfter
	if stable {
		if t.cfg.MaxDelay > 0 {
			delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay) + 1))
		}
	} else {
		if t.rng.Float64() < t.cfg.LossProb {
			t.mu.Unlock()
			return
		}
		if t.cfg.UnstableMaxDelay > 0 {
			delay = time.Duration(t.rng.Int63n(int64(t.cfg.UnstableMaxDelay) + 1))
		}
	}
	t.mu.Unlock()

	if c := t.cfg.Collector; c != nil && c.HistogramsEnabled() {
		// The delay is already drawn, so observation cannot perturb the
		// transport's randomness stream.
		c.ObserveLatency(trace.HistDeliveryPrefix+m.Type(), delay)
	}
	if h == nil {
		return
	}
	if delay == 0 {
		h(from, m)
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	var timer *time.Timer
	timer = time.AfterFunc(delay, func() {
		defer t.wg.Done()
		t.mu.Lock()
		delete(t.timers, timer)
		closed := t.closed
		t.mu.Unlock()
		if !closed {
			h(from, m)
		}
	})
	t.timers[timer] = struct{}{}
	t.mu.Unlock()
}

// Close implements Transport: it stops pending deliveries and waits for
// in-flight callbacks to finish.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for timer := range t.timers {
		if timer.Stop() {
			// Callback will never run; release its waitgroup slot.
			t.wg.Done()
		}
		delete(t.timers, timer)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
