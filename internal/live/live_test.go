package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/protocol"
)

const delta = 20 * time.Millisecond

// factory resolves a protocol factory through the registry — the same path
// the live CLIs use.
func factory(t *testing.T, name string, d time.Duration) consensus.Factory {
	t.Helper()
	desc, err := protocol.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	f, err := desc.Build(protocol.Params{Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func distinctProposals(n int) []consensus.Value {
	out := make([]consensus.Value, n)
	for i := range out {
		out[i] = consensus.Value(fmt.Sprintf("v%d", i))
	}
	return out
}

func TestModifiedPaxosLiveMemoryTransport(t *testing.T) {
	c, err := NewCluster(Config{N: 5, Delta: delta},
		factory(t, "modpaxos", delta), distinctProposals(5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	}()
	c.Start()
	if err := c.WaitAllDecided(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
}

func TestModifiedPaxosLiveWithUnstablePeriod(t *testing.T) {
	// Real-time eventual synchrony: 300ms of 60% loss and long delays,
	// then a stable network. The cluster must decide shortly after
	// stabilization.
	transport := NewMemTransport(MemTransportConfig{
		MaxDelay:       delta,
		StabilizeAfter: 300 * time.Millisecond,
		LossProb:       0.6,
	})
	c, err := NewCluster(Config{N: 5, Delta: delta, Transport: transport},
		factory(t, "modpaxos", delta), distinctProposals(5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Stop() }()
	start := time.Now()
	c.Start()
	if err := c.WaitAllDecided(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Generous real-time envelope: stabilization + bound (~18δ) + sched
	// noise. This is a smoke bound, not a timing assertion.
	if elapsed > 300*time.Millisecond+40*delta {
		t.Logf("note: live decision took %v (scheduling noise)", elapsed)
	}
}

func TestRoundBasedLive(t *testing.T) {
	c, err := NewCluster(Config{N: 3, Delta: delta},
		factory(t, "roundbased", delta), distinctProposals(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Stop() }()
	c.Start()
	if err := c.WaitAllDecided(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestBConsensusLive(t *testing.T) {
	c, err := NewCluster(Config{N: 3, Delta: delta},
		factory(t, "bconsensus", delta), distinctProposals(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Stop() }()
	c.Start()
	if err := c.WaitAllDecided(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestLiveCrashRestartRecovers(t *testing.T) {
	if testing.Short() {
		// The crash phase deliberately lets WaitAllDecided run out its
		// full 10s timeout; keep that out of the fast loop (CI runs the
		// suite without -short).
		t.Skip("skipping ~10s crash/restart wall-clock test in -short mode")
	}
	c, err := NewCluster(Config{N: 5, Delta: delta},
		factory(t, "modpaxos", delta), distinctProposals(5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Stop() }()
	c.Start()
	c.Crash(4)
	if err := c.WaitAllDecided(10 * time.Second); err == nil {
		t.Fatal("WaitAllDecided should fail with process 4 down")
	} else if err := c.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
	// Majority decides without process 4.
	ids := []consensus.ProcessID{0, 1, 2, 3}
	deadline := time.Now().Add(10 * time.Second)
	for !c.Checker().AllDecided(ids) {
		if time.Now().After(deadline) {
			t.Fatalf("majority undecided (%d/5)", c.Checker().DecidedCount())
		}
		time.Sleep(time.Millisecond)
	}
	// Process 4 restarts and catches up via decision gossip.
	c.Restart(4)
	v, err := c.WaitDecided(4, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := c.Checker().DecisionOf(0); d.Value != v {
		t.Fatalf("restarted decision %q differs from cluster's %q", v, d.Value)
	}
}

func TestLiveTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping real-TCP cluster test in -short mode")
	}
	RegisterMessages()
	ids := []consensus.ProcessID{0, 1, 2}
	transport, err := NewTCPTransport(ids)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{N: 3, Delta: delta, Transport: transport},
		factory(t, "modpaxos", delta), distinctProposals(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	}()
	for _, id := range ids {
		if transport.Addr(id) == "" {
			t.Fatalf("no listen address for %d", id)
		}
	}
	c.Start()
	if err := c.WaitAllDecided(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	f := factory(t, "modpaxos", delta)
	if _, err := NewCluster(Config{N: 0, Delta: delta}, f, nil); err == nil {
		t.Error("N=0 should be rejected")
	}
	if _, err := NewCluster(Config{N: 3, Delta: 0}, f, distinctProposals(3)); err == nil {
		t.Error("Delta=0 should be rejected")
	}
	if _, err := NewCluster(Config{N: 3, Delta: delta}, f, distinctProposals(2)); err == nil {
		t.Error("proposal mismatch should be rejected")
	}
}

func TestMemTransportCloseStopsDeliveries(t *testing.T) {
	tr := NewMemTransport(MemTransportConfig{MaxDelay: 50 * time.Millisecond})
	got := make(chan consensus.Message, 16)
	tr.Register(1, func(_ consensus.ProcessID, m consensus.Message) { got <- m })
	for i := 0; i < 8; i++ {
		tr.Send(0, 1, modpaxos.Decided{Val: "x"})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close returns, no further deliveries may happen.
	n := len(got)
	time.Sleep(80 * time.Millisecond)
	if len(got) != n {
		t.Fatalf("deliveries after Close: %d → %d", n, len(got))
	}
	// Close is idempotent.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPSendAfterCloseIsSilent pins the omission model at the edge: Send
// on a closed transport neither panics nor delivers.
func TestTCPSendAfterCloseIsSilent(t *testing.T) {
	ids := []consensus.ProcessID{0, 1}
	tr, err := NewTCPTransport(ids)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan consensus.Message, 8)
	tr.Register(1, func(_ consensus.ProcessID, m consensus.Message) { got <- m })
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 1, modpaxos.Decided{Val: "x"})
	time.Sleep(50 * time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("delivery after Close: %d messages", len(got))
	}
	if tr.Addr(1) == "" {
		t.Error("Addr should survive Close for logging")
	}
}

// TestTCPLateHandlerRegistration pins the pre-registration buffer: an
// envelope arriving before the destination's handler is installed is held
// and delivered when Register runs, rather than silently lost.
func TestTCPLateHandlerRegistration(t *testing.T) {
	ids := []consensus.ProcessID{0, 1}
	tr, err := NewTCPTransport(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	// Send before process 1 has registered; wait until the envelope has
	// been read off the socket and buffered.
	tr.Send(0, 1, modpaxos.Decided{Val: "early"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr.mu.Lock()
		buffered := len(tr.pending[1])
		tr.mu.Unlock()
		if buffered == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("envelope never reached the pre-registration buffer")
		}
		time.Sleep(time.Millisecond)
	}

	got := make(chan consensus.Message, 8)
	tr.Register(1, func(_ consensus.ProcessID, m consensus.Message) { got <- m })
	select {
	case m := <-got:
		if d, ok := m.(modpaxos.Decided); !ok || d.Val != "early" {
			t.Fatalf("flushed message = %#v, want the early Decided", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Register did not flush the buffered envelope")
	}
	// Subsequent traffic flows directly.
	tr.Send(0, 1, modpaxos.Decided{Val: "late"})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("post-registration delivery failed")
	}
}

// TestMemTransportZeroSeedIsDeterministic pins the seed fix: two transports
// with the zero-value seed make identical drop decisions for the same send
// sequence (zero used to mean time-based seeding, so no live report was
// reproducible).
func TestMemTransportZeroSeedIsDeterministic(t *testing.T) {
	script := func() []int {
		tr := NewMemTransport(MemTransportConfig{
			StabilizeAfter:   time.Hour, // stay in the lossy regime
			LossProb:         0.5,
			UnstableMaxDelay: time.Nanosecond, // effectively immediate
		})
		defer func() { _ = tr.Close() }()
		var mu sync.Mutex
		var delivered []int
		tr.Register(1, func(_ consensus.ProcessID, m consensus.Message) {
			mu.Lock()
			delivered = append(delivered, len(m.Type()))
			mu.Unlock()
		})
		for i := 0; i < 64; i++ {
			tr.Send(0, 1, modpaxos.Decided{Val: "x"})
		}
		// 1ns timers: give any delayed survivors a moment.
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), delivered...)
	}
	a, b := script(), script()
	if len(a) != len(b) {
		t.Fatalf("zero-seed transports delivered %d vs %d of 64 messages", len(a), len(b))
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("want a mixed drop pattern, got %d/64 delivered", len(a))
	}
}

func TestStopIsIdempotentAndWaitsForGoroutines(t *testing.T) {
	c, err := NewCluster(Config{N: 3, Delta: delta},
		factory(t, "modpaxos", delta), distinctProposals(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStateDirSurvivesClusterTeardown(t *testing.T) {
	dir := t.TempDir()
	proposalsSet := distinctProposals(3)

	// First incarnation decides and is torn down completely.
	c1, err := NewCluster(Config{N: 3, Delta: delta, StateDir: dir},
		factory(t, "modpaxos", delta), proposalsSet)
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	if err := c1.WaitAllDecided(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var want consensus.Value
	if d, ok := c1.Checker().DecisionOf(0); ok {
		want = d.Value
	}
	if err := c1.Stop(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation over the same directory: every process recovers
	// its decision from disk at Init, without any network exchange needed
	// (the decided state is durable).
	c2, err := NewCluster(Config{N: 3, Delta: delta, StateDir: dir},
		factory(t, "modpaxos", delta), proposalsSet)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Stop() }()
	c2.Start()
	if err := c2.WaitAllDecided(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d, _ := c2.Checker().DecisionOf(0); d.Value != want {
		t.Fatalf("recovered decision %q, want %q", d.Value, want)
	}
	if err := c2.Checker().Violation(); err != nil {
		t.Fatal(err)
	}
}
