// Package live runs the same consensus protocols natively: one goroutine
// per process, real clocks, real timers, and pluggable transports (an
// in-memory channel transport with injectable loss/delay, and a TCP
// transport over encoding/gob). This is the "simulate rounds with
// goroutines" substrate: examples and integration tests exercise protocol
// code identical to what the deterministic simulator verifies.
//
// The eventually-synchronous model maps onto real time: the memory
// transport can drop and delay messages until a configured stabilization
// instant, after which it delivers within δ.
package live

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/trace"
)

// Transport moves messages between processes. Implementations must be safe
// for concurrent use; delivery must invoke the handler registered for the
// destination (on any goroutine — nodes serialize internally).
type Transport interface {
	// Register installs the delivery handler for a process. It must be
	// called for every process before Send is used.
	Register(id consensus.ProcessID, h func(from consensus.ProcessID, m consensus.Message))
	// Send transmits m from one process to another.
	Send(from, to consensus.ProcessID, m consensus.Message)
	// Close releases transport resources.
	Close() error
}

// Config describes a live cluster.
type Config struct {
	// N is the number of processes.
	N int
	// Delta is δ, handed to protocol configurations; with the memory
	// transport it also bounds post-stabilization delivery delay.
	Delta time.Duration
	// TS is the stabilization instant as a wall-clock offset from cluster
	// start. It is an observability anchor only (decision-latency
	// histograms measure against it, matching the simulator's headline
	// metric); the transport's own StabilizeAfter governs actual fault
	// injection.
	TS time.Duration
	// Transport defaults to a loss-free memory transport.
	Transport Transport
	// Collector defaults to a fresh collector.
	Collector *trace.Collector
	// StateDir, when set, backs each node's stable storage with gob files
	// under StateDir/p<ID> instead of memory, so state survives even OS
	// process restarts. Empty means in-memory stable storage (which still
	// survives Crash/Restart within this Cluster).
	StateDir string
	// Seed, when nonzero, seeds each node's protocol randomness
	// deterministically (the scenario live backend derives it from the
	// spec's seed matrix). Zero keeps time-based node seeds.
	Seed int64
}

// Cluster is a set of live processes.
type Cluster struct {
	cfg       Config
	factory   consensus.Factory
	proposals []consensus.Value
	transport Transport
	collector *trace.Collector
	checker   *consensus.SafetyChecker
	nodes     []*Node

	mu        sync.Mutex
	started   bool
	startedAt time.Time
}

// NewCluster builds a cluster; processes are created but not started.
func NewCluster(cfg Config, factory consensus.Factory, proposals []consensus.Value) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("live: N must be ≥ 1, got %d", cfg.N)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("live: Delta must be positive, got %v", cfg.Delta)
	}
	if len(proposals) != cfg.N {
		return nil, fmt.Errorf("live: %d proposals for %d processes", len(proposals), cfg.N)
	}
	if cfg.Transport == nil {
		cfg.Transport = NewMemTransport(MemTransportConfig{MaxDelay: cfg.Delta})
	}
	if cfg.Collector == nil {
		cfg.Collector = trace.NewCollector()
	}
	c := &Cluster{
		cfg:       cfg,
		factory:   factory,
		proposals: proposals,
		transport: cfg.Transport,
		collector: cfg.Collector,
		checker:   consensus.NewSafetyChecker(),
	}
	for i := 0; i < cfg.N; i++ {
		id := consensus.ProcessID(i)
		c.checker.RecordProposal(id, proposals[i])
		node, err := newLiveNode(c, id)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		c.transport.Register(id, node.enqueueMessage)
	}
	return c, nil
}

// Start boots every process.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	c.startedAt = time.Now()
	for _, n := range c.nodes {
		n.start()
	}
}

// sinceStart returns the wall-clock offset from cluster start — the live
// runtime's run timeline (0 before Start).
func (c *Cluster) sinceStart() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return 0
	}
	return time.Since(c.startedAt)
}

// Stop gracefully shuts down all processes and the transport, waiting for
// every goroutine to exit.
func (c *Cluster) Stop() error {
	for _, n := range c.nodes {
		n.stop()
	}
	return c.transport.Close()
}

// Checker returns the shared safety checker.
func (c *Cluster) Checker() *consensus.SafetyChecker { return c.checker }

// Collector returns the shared trace collector.
func (c *Cluster) Collector() *trace.Collector { return c.collector }

// Node returns the node hosting a process.
func (c *Cluster) Node(id consensus.ProcessID) *Node { return c.nodes[id] }

// Crash stops one process abruptly (volatile state and timers lost; stable
// storage kept).
func (c *Cluster) Crash(id consensus.ProcessID) {
	c.collector.Span(c.sinceStart(), int(id), trace.SpanDown, true, 1)
	c.nodes[id].stop()
}

// Restart boots a crashed process again from its stable storage.
func (c *Cluster) Restart(id consensus.ProcessID) {
	c.collector.Span(c.sinceStart(), int(id), trace.SpanDown, false, 1)
	c.nodes[id].start()
}

// AllIDs returns every process ID.
func (c *Cluster) AllIDs() []consensus.ProcessID {
	ids := make([]consensus.ProcessID, c.cfg.N)
	for i := range ids {
		ids[i] = consensus.ProcessID(i)
	}
	return ids
}

// WaitAllDecided blocks until every process has decided or the timeout
// elapses. It returns an error on timeout or safety violation.
func (c *Cluster) WaitAllDecided(timeout time.Duration) error {
	return c.WaitDecidedAmong(c.AllIDs(), timeout)
}

// WaitDecidedAmong blocks until every listed process has decided or the
// timeout elapses — the wait the scenario live backend uses, where
// processes crashed for good are excluded. It returns an error on timeout
// or safety violation.
func (c *Cluster) WaitDecidedAmong(ids []consensus.ProcessID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := c.checker.Violation(); err != nil {
			return fmt.Errorf("live: safety violation: %w", err)
		}
		if c.checker.AllDecided(ids) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("live: %d/%d processes decided within %v",
				c.checker.DecidedCount(), len(ids), timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// WaitDecided blocks until one specific process decides.
func (c *Cluster) WaitDecided(id consensus.ProcessID, timeout time.Duration) (consensus.Value, error) {
	deadline := time.Now().Add(timeout)
	for {
		if d, ok := c.checker.DecisionOf(id); ok {
			return d.Value, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("live: process %d undecided after %v", id, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}
