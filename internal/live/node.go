package live

import (
	"fmt"
	"log"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/storage"
	"repro/internal/trace"
)

// event is one item on a node's serial event loop.
type event struct {
	// kind is eventMessage or eventTimer.
	kind  int
	from  consensus.ProcessID
	msg   consensus.Message
	timer consensus.TimerID
	// epoch stamps timer events so timers armed before a crash cannot
	// fire into a restarted incarnation.
	epoch uint64
	// enqueuedAt stamps messages on enqueue so the loop can observe inbox
	// wait time (zero when histograms are off).
	enqueuedAt time.Time
}

const (
	eventMessage = 1
	eventTimer   = 2
)

// Node hosts one live process: a goroutine owning the consensus.Process,
// fed by an inbox channel. All protocol code runs on that single goroutine,
// so the Process needs no locking — the same execution model as the
// simulator.
type Node struct {
	cluster *Cluster
	id      consensus.ProcessID

	// inbox is deliberately deeply buffered (contrary to the usual
	// size-one default): N processes broadcasting simultaneously would
	// deadlock on unbuffered channels when two nodes send to each other
	// from their own event loops. Overflow falls back to dropping the
	// message, which the omission fault model explicitly permits.
	inbox chan event

	store    storage.Store
	rng      *rand.Rand
	bootedAt time.Time

	mu      sync.Mutex
	running bool
	epoch   uint64
	proc    consensus.Process
	timers  map[consensus.TimerID]*time.Timer
	done    chan struct{}
	wg      sync.WaitGroup

	decided   bool
	decidedAt time.Duration

	// lastSendAt tracks the previous Send's wall-clock instant for the
	// send-interval histogram. Touched only from the loop goroutine (Send
	// is Environment API, called from handlers), so it needs no lock.
	lastSendAt time.Time
}

func newLiveNode(c *Cluster, id consensus.ProcessID) (*Node, error) {
	var store storage.Store = storage.NewMemStore()
	if c.cfg.StateDir != "" {
		fs, err := storage.NewFileStore(filepath.Join(c.cfg.StateDir, fmt.Sprintf("p%d", id)))
		if err != nil {
			return nil, fmt.Errorf("live: node %d storage: %w", id, err)
		}
		store = fs
	}
	seed := time.Now().UnixNano() ^ int64(id)
	if c.cfg.Seed != 0 {
		seed = mixSeed(c.cfg.Seed, id, id, 0)
	}
	return &Node{
		cluster:  c,
		id:       id,
		inbox:    make(chan event, 4096),
		store:    store,
		rng:      rand.New(rand.NewSource(seed)),
		bootedAt: time.Now(),
		timers:   make(map[consensus.TimerID]*time.Timer),
	}, nil
}

// start boots (or reboots) the process and its event loop.
func (n *Node) start() {
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return
	}
	n.running = true
	n.epoch++
	n.done = make(chan struct{})
	n.proc = n.cluster.factory(n.id, n.cluster.cfg.N, n.cluster.proposals[n.id])
	done := n.done
	n.mu.Unlock()

	n.wg.Add(1)
	go n.run(done)
}

// stop halts the event loop and cancels all timers, keeping stable storage.
// It blocks until the loop goroutine has exited.
func (n *Node) stop() {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return
	}
	n.running = false
	close(n.done)
	for id, t := range n.timers {
		t.Stop()
		delete(n.timers, id)
	}
	n.proc = nil
	n.mu.Unlock()
	n.wg.Wait()
}

// run is the node's event loop.
func (n *Node) run(done chan struct{}) {
	defer n.wg.Done()
	// Init runs on the loop goroutine, like every other handler.
	n.withProc(func(p consensus.Process) { p.Init(n) })
	for {
		select {
		case <-done:
			return
		case ev := <-n.inbox:
			switch ev.kind {
			case eventMessage:
				if !ev.enqueuedAt.IsZero() {
					n.cluster.collector.ObserveLatency(trace.HistInboxWait, time.Since(ev.enqueuedAt))
				}
				n.withProc(func(p consensus.Process) { p.HandleMessage(ev.from, ev.msg) })
			case eventTimer:
				n.mu.Lock()
				current := ev.epoch == n.epoch
				n.mu.Unlock()
				if current {
					n.withProc(func(p consensus.Process) { p.HandleTimer(ev.timer) })
				}
			}
		}
	}
}

// withProc runs fn against the current process if the node is running.
func (n *Node) withProc(fn func(consensus.Process)) {
	n.mu.Lock()
	p := n.proc
	running := n.running
	n.mu.Unlock()
	if running && p != nil {
		fn(p)
	}
}

// enqueueMessage is the transport delivery callback; it may run on any
// goroutine.
func (n *Node) enqueueMessage(from consensus.ProcessID, m consensus.Message) {
	n.mu.Lock()
	running := n.running
	done := n.done
	n.mu.Unlock()
	if !running {
		n.cluster.collector.MessageDropped(m.Type())
		return
	}
	ev := event{kind: eventMessage, from: from, msg: m}
	observing := n.cluster.collector.HistogramsEnabled()
	if observing {
		ev.enqueuedAt = time.Now()
	}
	select {
	case n.inbox <- ev:
		n.cluster.collector.MessageDelivered(m.Type())
		if observing {
			n.cluster.collector.ObserveValue(trace.HistInboxDepth, int64(len(n.inbox)))
		}
	case <-done:
		n.cluster.collector.MessageDropped(m.Type())
	default:
		// Inbox overflow: omission model permits dropping.
		n.cluster.collector.MessageDropped(m.Type())
	}
}

// --- consensus.Environment implementation (called only from the loop) ---

var _ consensus.Environment = (*Node)(nil)

// ID implements consensus.Environment.
func (n *Node) ID() consensus.ProcessID { return n.id }

// N implements consensus.Environment.
func (n *Node) N() int { return n.cluster.cfg.N }

// Now implements consensus.Environment using the process-local monotonic
// clock (real local clocks; ρ≈0 between goroutines of one machine).
func (n *Node) Now() time.Duration { return time.Since(n.bootedAt) }

// Send implements consensus.Environment.
func (n *Node) Send(to consensus.ProcessID, m consensus.Message) {
	n.cluster.collector.MessageSent(m.Type())
	if n.cluster.collector.HistogramsEnabled() {
		now := time.Now()
		if !n.lastSendAt.IsZero() {
			n.cluster.collector.ObserveLatency(trace.HistSendInterval, now.Sub(n.lastSendAt))
		}
		n.lastSendAt = now
	}
	n.cluster.transport.Send(n.id, to, m)
}

// Broadcast implements consensus.Environment.
func (n *Node) Broadcast(m consensus.Message) {
	for i := 0; i < n.cluster.cfg.N; i++ {
		n.Send(consensus.ProcessID(i), m)
	}
}

// SetTimer implements consensus.Environment.
func (n *Node) SetTimer(id consensus.TimerID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.running {
		return
	}
	if prev, ok := n.timers[id]; ok {
		prev.Stop()
	}
	epoch := n.epoch
	done := n.done
	n.timers[id] = time.AfterFunc(d, func() {
		select {
		case n.inbox <- event{kind: eventTimer, timer: id, epoch: epoch}:
		case <-done:
		}
	})
}

// CancelTimer implements consensus.Environment.
func (n *Node) CancelTimer(id consensus.TimerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t, ok := n.timers[id]; ok {
		t.Stop()
		delete(n.timers, id)
	}
}

// Store implements consensus.Environment.
func (n *Node) Store() storage.Store { return n.store }

// Rand implements consensus.Environment.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Decide implements consensus.Environment.
func (n *Node) Decide(v consensus.Value) {
	now := n.Now()
	_ = n.cluster.checker.RecordDecision(consensus.Decision{Proc: n.id, Value: v, At: now})
	n.mu.Lock()
	first := !n.decided
	if first {
		n.decided = true
		n.decidedAt = now
	}
	n.mu.Unlock()
	if first && n.cluster.collector.HistogramsEnabled() {
		// Same headline metric as the simulator: wall-clock decision
		// instant minus the stabilization offset, clamped at zero.
		lat := n.cluster.sinceStart() - n.cluster.cfg.TS
		if lat < 0 {
			lat = 0
		}
		n.cluster.collector.ObserveLatency(trace.HistDecideLatency, lat)
	}
}

// Emit implements consensus.Environment.
func (n *Node) Emit(kind string, value int64) {
	n.cluster.collector.Emit(n.Now(), int(n.id), kind, value)
}

// Span implements consensus.SpanSink: spans are stamped with the shared
// cluster timeline (offset from Start), not the node-local boot clock, so
// spans from different processes line up.
func (n *Node) Span(kind string, begin bool, value int64) {
	n.cluster.collector.Span(n.cluster.sinceStart(), int(n.id), kind, begin, value)
}

// ObserveDuration implements consensus.DurationObserver.
func (n *Node) ObserveDuration(name string, d time.Duration) {
	n.cluster.collector.ObserveLatency(name, d)
}

// ObserveValue implements consensus.ValueObserver.
func (n *Node) ObserveValue(name string, v int64) {
	n.cluster.collector.ObserveValue(name, v)
}

// SpansEnabled lets layered environments (the RSM slot env) skip span
// bookkeeping when recording is off.
func (n *Node) SpansEnabled() bool { return n.cluster.collector.SpansEnabled() }

// Logf implements consensus.Environment.
func (n *Node) Logf(format string, args ...any) {
	log.Printf("live p%d: "+format, append([]any{int(n.id)}, args...)...)
}

// Decided reports the node's decision state.
func (n *Node) Decided() (consensus.Value, bool) {
	if d, ok := n.cluster.checker.DecisionOf(n.id); ok {
		return d.Value, true
	}
	return "", false
}
