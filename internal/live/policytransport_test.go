package live

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/simnet"
)

// recorderTransport logs every Send it receives, for fate-sequence pins.
type recorderTransport struct {
	mu     sync.Mutex
	sends  []recordedSend
	closed bool
}

type recordedSend struct {
	From, To consensus.ProcessID
	Type     string
}

func (r *recorderTransport) Register(consensus.ProcessID, func(consensus.ProcessID, consensus.Message)) {
}

func (r *recorderTransport) Send(from, to consensus.ProcessID, m consensus.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sends = append(r.sends, recordedSend{From: from, To: to, Type: m.Type()})
}

func (r *recorderTransport) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return nil
}

func (r *recorderTransport) log() []recordedSend {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]recordedSend, len(r.sends))
	copy(out, r.sends)
	return out
}

// scriptedPolicyTransport builds a PolicyTransport over a recorder with a
// scripted clock, replays a fixed pre-TS send sequence from one goroutine,
// and returns the resulting delivery log plus the drop count. Delays are
// real wall-clock timers, so the script uses a policy with zero-delay fates
// (PartitionUntilTS would delay; DropAll and Chaos with huge drop are
// exact) — here LossBurst with DropProb, whose survivors take the
// synchronous base delay; we wait for timers via Close-free settling.
func scriptedFates(t *testing.T, seed int64) ([]recordedSend, int) {
	t.Helper()
	rec := &recorderTransport{}
	drops := 0
	pt := NewPolicyTransport(rec, PolicyTransportConfig{
		Policy: simnet.Chain{
			simnet.LossBurst{From: 0, To: 100 * time.Millisecond, DropProb: 0.5, Base: simnet.Chaos{DropProb: 0.2, MaxDelay: 1}},
		},
		TS:     100 * time.Millisecond,
		Delta:  10 * time.Millisecond,
		Seed:   seed,
		OnDrop: func(string) { drops++ },
	})
	defer func() { _ = pt.Close() }()
	// Scripted clock: message i is sent at i ms, all before TS.
	var i int
	pt.now = func() time.Duration { return time.Duration(i) * time.Millisecond }
	for i = 0; i < 64; i++ {
		from := consensus.ProcessID(i % 3)
		to := consensus.ProcessID((i + 1) % 3)
		pt.Send(from, to, modpaxos.Decided{Val: "x"})
	}
	// Survivors carry at most 1ns of fate delay; give their timers a
	// moment to fire before reading the log.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(rec.log())+drops == 64 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return rec.log(), drops
}

// TestPolicyTransportDeterministicForFixedSeed pins the reproducibility
// contract of scenario-driven live runs: for a fixed seed and send
// sequence, the fate of every message — dropped or delivered, in per-link
// order — is byte-identical across repeats, and a different seed produces a
// different fault pattern.
func TestPolicyTransportDeterministicForFixedSeed(t *testing.T) {
	logA, dropsA := scriptedFates(t, 42)
	logB, dropsB := scriptedFates(t, 42)
	if dropsA != dropsB {
		t.Fatalf("identically-seeded transports dropped %d vs %d messages", dropsA, dropsB)
	}
	// Per-link delivery sequences must match exactly (global interleaving
	// of timer callbacks may differ; the fate keying makes per-link order
	// the invariant).
	perLink := func(log []recordedSend) map[connKey]int {
		out := make(map[connKey]int)
		for _, s := range log {
			out[connKey{s.From, s.To}]++
		}
		return out
	}
	if !reflect.DeepEqual(perLink(logA), perLink(logB)) {
		t.Fatalf("identically-seeded transports delivered different per-link counts:\n%v\n%v", perLink(logA), perLink(logB))
	}
	logC, dropsC := scriptedFates(t, 43)
	if dropsC == dropsA && reflect.DeepEqual(perLink(logC), perLink(logA)) {
		t.Error("different seeds produced the identical fault pattern (suspicious)")
	}
}

// TestPolicyTransportMapsFatesToWallClock pins the fate translation: drops
// never reach the inner transport, duplicates arrive as extra inner sends,
// and post-TS messages bypass the policy entirely.
func TestPolicyTransportMapsFatesToWallClock(t *testing.T) {
	rec := &recorderTransport{}
	drops := 0
	pt := NewPolicyTransport(rec, PolicyTransportConfig{
		Policy: simnet.DropAll{},
		TS:     50 * time.Millisecond,
		Delta:  5 * time.Millisecond,
		OnDrop: func(string) { drops++ },
	})
	var elapsed time.Duration
	pt.now = func() time.Duration { return elapsed }

	// Pre-TS under DropAll: everything dropped, nothing delivered.
	for i := 0; i < 8; i++ {
		elapsed = time.Duration(i) * time.Millisecond
		pt.Send(0, 1, modpaxos.Decided{Val: "x"})
	}
	if drops != 8 || len(rec.log()) != 0 {
		t.Fatalf("DropAll pre-TS: want 8 drops 0 sends, got %d drops %d sends", drops, len(rec.log()))
	}
	// Post-TS: policy bypassed, delivered synchronously.
	elapsed = 50 * time.Millisecond
	pt.Send(0, 1, modpaxos.Decided{Val: "x"})
	if len(rec.log()) != 1 {
		t.Fatalf("post-TS send must pass through immediately, log has %d", len(rec.log()))
	}
	if err := pt.Close(); err != nil {
		t.Fatal(err)
	}
	if !rec.closed {
		t.Error("Close must close the inner transport")
	}

	// Duplicates: a Prob=1 duplicate policy delivers the original plus one
	// copy per pre-TS message.
	rec2 := &recorderTransport{}
	dup := NewPolicyTransport(rec2, PolicyTransportConfig{
		Policy: simnet.Duplicate{Prob: 1, MaxExtra: 1, Spread: time.Millisecond,
			Base: simnet.Chaos{MaxDelay: 1}},
		TS:    50 * time.Millisecond,
		Delta: 5 * time.Millisecond,
	})
	dup.now = func() time.Duration { return 0 }
	for i := 0; i < 4; i++ {
		dup.Send(0, 1, modpaxos.Decided{Val: "x"})
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(rec2.log()) < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(rec2.log()); got != 8 {
		t.Errorf("Duplicate{Prob:1}: want 4 originals + 4 copies, got %d deliveries", got)
	}
	if err := dup.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyTransportCloseCancelsPendingDeliveries pins Close semantics:
// messages in the timer queue at Close never reach the inner transport, and
// sends after Close are silently ignored.
func TestPolicyTransportCloseCancelsPendingDeliveries(t *testing.T) {
	rec := &recorderTransport{}
	pt := NewPolicyTransport(rec, PolicyTransportConfig{
		Policy: simnet.TargetedDelay{
			Targets: map[consensus.ProcessID]bool{0: true},
			Delay:   100 * time.Millisecond,
		},
		TS:    time.Second,
		Delta: 10 * time.Millisecond,
	})
	pt.now = func() time.Duration { return 0 }
	for i := 0; i < 8; i++ {
		pt.Send(0, 1, modpaxos.Decided{Val: "x"})
	}
	if err := pt.Close(); err != nil {
		t.Fatal(err)
	}
	pt.Send(0, 1, modpaxos.Decided{Val: "x"}) // after Close: ignored
	time.Sleep(150 * time.Millisecond)
	if got := len(rec.log()); got != 0 {
		t.Errorf("deliveries after Close: %d", got)
	}
	if err := pt.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
