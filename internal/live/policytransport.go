package live

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
)

// PolicyTransportConfig maps a simnet pre-stabilization policy onto
// wall-clock time.
type PolicyTransportConfig struct {
	// Policy rules every message sent before TS (nil means Synchronous).
	// Fates are translated verbatim: Drop loses the message, Delay and
	// Duplicates become wall-clock timer offsets from the send instant.
	Policy simnet.Policy
	// TS is the stabilization instant as a wall-clock offset from
	// transport creation; messages sent at or after it bypass the policy
	// and go straight to the inner transport.
	TS time.Duration
	// Delta is δ, restated to the policy through each Transmission.
	Delta time.Duration
	// Seed drives the fault randomness. Fates are keyed on
	// (Seed, from, to, per-link sequence number), so the fate of the k-th
	// message on each link is a pure function of the seed — reproducible
	// even though goroutine interleaving varies between runs.
	Seed int64
	// OnDrop, when set, is called with the message type of every message
	// the policy drops (the scenario backend wires the trace collector's
	// drop accounting here; the inner transport never sees the message).
	OnDrop func(msgType string)
}

// PolicyTransport wraps another Transport with policy-driven fault
// injection: the declarative simnet policies (DropAll, PartitionUntilTS,
// Chaos, Duplicate, Reorder, ...) run against wall-clock time, so the same
// scenario regimes execute over in-memory channels or real TCP sockets.
// It is the live runtime's primary fault path; the MemTransport loss/delay
// knobs remain only for hand-wired uses.
type PolicyTransport struct {
	inner Transport
	cfg   PolicyTransportConfig
	start time.Time
	// now returns the elapsed time since transport start; tests inject a
	// scripted clock here to pin fate sequences byte-for-byte.
	now func() time.Duration

	mu     sync.Mutex
	seq    map[connKey]uint64
	timers map[*time.Timer]struct{}
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*PolicyTransport)(nil)

// NewPolicyTransport wraps inner with the policy fault model. The unstable
// period starts immediately: TS is measured from this call.
func NewPolicyTransport(inner Transport, cfg PolicyTransportConfig) *PolicyTransport {
	if cfg.Policy == nil {
		cfg.Policy = simnet.Synchronous{}
	}
	t := &PolicyTransport{
		inner:  inner,
		cfg:    cfg,
		start:  time.Now(),
		seq:    make(map[connKey]uint64),
		timers: make(map[*time.Timer]struct{}),
	}
	t.now = func() time.Duration { return time.Since(t.start) }
	return t
}

// mixSeed derives an independent per-message seed from the transport seed
// and the message's link coordinates (splitmix64 finalizer). Keying on the
// per-link sequence number instead of a shared rng stream keeps fates
// deterministic under real concurrency: cross-link interleaving cannot
// perturb another link's draws.
func mixSeed(seed int64, from, to consensus.ProcessID, seq uint64) int64 {
	z := uint64(seed) ^ (seq+1)*0x9e3779b97f4a7c15 ^ uint64(from)<<40 ^ uint64(to)<<20
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Register implements Transport.
func (t *PolicyTransport) Register(id consensus.ProcessID, h func(consensus.ProcessID, consensus.Message)) {
	t.inner.Register(id, h)
}

// Send implements Transport: post-TS messages pass straight through (the
// inner transport's native latency is the stable network); pre-TS messages
// get a policy fate translated into wall-clock delivery timers.
func (t *PolicyTransport) Send(from, to consensus.ProcessID, m consensus.Message) {
	elapsed := t.now()
	if elapsed >= t.cfg.TS {
		t.inner.Send(from, to, m)
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	key := connKey{from, to}
	seq := t.seq[key]
	t.seq[key] = seq + 1
	t.mu.Unlock()

	rng := rand.New(rand.NewSource(mixSeed(t.cfg.Seed, from, to, seq)))
	fate := t.cfg.Policy.Fate(simnet.Transmission{
		From: from, To: to, Msg: m,
		SentAt: elapsed, TS: t.cfg.TS, Delta: t.cfg.Delta,
	}, rng)
	if fate.Drop {
		if t.cfg.OnDrop != nil {
			t.cfg.OnDrop(m.Type())
		}
		return
	}
	t.deliverAfter(fate.Delay, from, to, m)
	for _, d := range fate.Duplicates {
		t.deliverAfter(d, from, to, m)
	}
}

// deliverAfter hands the message to the inner transport after the given
// wall-clock delay, tracking the timer so Close can cancel it.
func (t *PolicyTransport) deliverAfter(d time.Duration, from, to consensus.ProcessID, m consensus.Message) {
	if d <= 0 {
		t.inner.Send(from, to, m)
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	var timer *time.Timer
	timer = time.AfterFunc(d, func() {
		defer t.wg.Done()
		t.mu.Lock()
		delete(t.timers, timer)
		closed := t.closed
		t.mu.Unlock()
		if !closed {
			t.inner.Send(from, to, m)
		}
	})
	t.timers[timer] = struct{}{}
	t.mu.Unlock()
}

// Close implements Transport: pending deliveries are cancelled, in-flight
// callbacks drained, and the inner transport closed.
func (t *PolicyTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return t.inner.Close()
	}
	t.closed = true
	for timer := range t.timers {
		if timer.Stop() {
			// Callback will never run; release its waitgroup slot.
			t.wg.Done()
		}
		delete(t.timers, timer)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return t.inner.Close()
}
