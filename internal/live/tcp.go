package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/core/consensus"
	"repro/internal/protocol"

	// The registry is the source of wire message types; make sure the
	// built-in protocols are in it even when the importer skips the harness.
	_ "repro/internal/protocol/all"
)

// envelope is the wire format of the TCP transport. Msg travels as a gob
// interface value, so every concrete message type must be registered with
// RegisterMessages (or gob.Register) on both ends.
type envelope struct {
	From consensus.ProcessID
	To   consensus.ProcessID
	Msg  consensus.Message
}

// RegisterMessages registers every message type declared by the protocol
// registry's descriptors with encoding/gob, enabling the TCP transport for
// every registered protocol. It is idempotent (gob tolerates identical
// re-registration) and may be called again after registering a new
// protocol. Additional application-defined messages can be registered
// directly with gob.Register.
func RegisterMessages() {
	for _, d := range protocol.All() {
		for _, m := range d.Messages {
			gob.Register(m)
		}
	}
}

// TCPTransport connects processes over loopback (or real) TCP with
// gob-encoded envelopes. Each process gets a listener; senders keep one
// persistent connection per destination. Connection failures drop messages
// (omission faults) and the next send redials.
type TCPTransport struct {
	mu        sync.Mutex
	listeners map[consensus.ProcessID]net.Listener
	addrs     map[consensus.ProcessID]string
	handlers  map[consensus.ProcessID]func(consensus.ProcessID, consensus.Message)
	// pending buffers envelopes that arrive before the destination's
	// handler registers (bounded; overflow is an omission). Register
	// flushes it, so a late-wired process still sees early traffic.
	pending map[consensus.ProcessID][]envelope
	conns   map[connKey]*senderConn
	closed  bool
	wg      sync.WaitGroup
}

// maxPendingPerProcess bounds the pre-registration buffer; beyond it the
// omission model applies.
const maxPendingPerProcess = 1024

type connKey struct {
	from, to consensus.ProcessID
}

type senderConn struct {
	conn net.Conn
	enc  *gob.Encoder
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport starts one loopback listener per process id in ids.
func NewTCPTransport(ids []consensus.ProcessID) (*TCPTransport, error) {
	RegisterMessages()
	t := &TCPTransport{
		listeners: make(map[consensus.ProcessID]net.Listener),
		addrs:     make(map[consensus.ProcessID]string),
		handlers:  make(map[consensus.ProcessID]func(consensus.ProcessID, consensus.Message)),
		pending:   make(map[consensus.ProcessID][]envelope),
		conns:     make(map[connKey]*senderConn),
	}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("live: listen for process %d: %w", id, err)
		}
		t.listeners[id] = ln
		t.addrs[id] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(id, ln)
	}
	return t, nil
}

// Addr returns the listen address of a process (useful for logging and for
// wiring real multi-binary deployments).
func (t *TCPTransport) Addr(id consensus.ProcessID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[id]
}

// Register implements Transport. Envelopes that arrived before the handler
// was installed are delivered immediately, in arrival order.
func (t *TCPTransport) Register(id consensus.ProcessID, h func(consensus.ProcessID, consensus.Message)) {
	t.mu.Lock()
	t.handlers[id] = h
	buffered := t.pending[id]
	delete(t.pending, id)
	t.mu.Unlock()
	// Flush outside the lock: handlers may re-enter the transport.
	for _, env := range buffered {
		h(env.From, env.Msg)
	}
}

func (t *TCPTransport) acceptLoop(id consensus.ProcessID, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(id, conn)
	}
}

func (t *TCPTransport) readLoop(id consensus.ProcessID, conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	dec := gob.NewDecoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // connection closed or corrupt: omission
		}
		t.mu.Lock()
		h := t.handlers[id]
		if h == nil && !t.closed && len(t.pending[id]) < maxPendingPerProcess {
			t.pending[id] = append(t.pending[id], env)
		}
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(env.From, env.Msg)
		}
	}
}

// Send implements Transport. Failures are silent (omission model): the
// stale connection is discarded and the next send redials.
func (t *TCPTransport) Send(from, to consensus.ProcessID, m consensus.Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	key := connKey{from, to}
	sc := t.conns[key]
	if sc == nil {
		addr := t.addrs[to]
		t.mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		sc = &senderConn{conn: conn, enc: gob.NewEncoder(conn)}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		if existing := t.conns[key]; existing != nil {
			// Lost the race; use the established connection.
			_ = conn.Close()
			sc = existing
		} else {
			t.conns[key] = sc
		}
	}
	env := envelope{From: from, To: to, Msg: m}
	err := sc.enc.Encode(env)
	if err != nil {
		delete(t.conns, key)
		_ = sc.conn.Close()
	}
	t.mu.Unlock()
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	for key, sc := range t.conns {
		_ = sc.conn.Close()
		delete(t.conns, key)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
