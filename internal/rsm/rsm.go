// Package rsm builds a replicated state machine from a sequence of
// independent modified-Paxos instances — the setting the paper's
// "Reducing Message Complexity" discussion (§4) is about: "The message
// complexity of a consensus algorithm matters only when a system executes a
// sequence of separate instances of the algorithm."
//
// Each log slot is one modpaxos instance, multiplexed over a single
// consensus.Process per replica (so the replica runs unchanged on the
// simulator or the live runtime). Slot instances run in the Prepared
// configuration with replica 0 as the distinguished proposer: phase 1 is
// pre-executed, so in the stable case a client command commits within three
// message delays (client → leader, phase 2a, phase 2b), exactly the
// ordinary-Paxos behaviour the paper says the modified algorithm can match.
//
// Commands are uninterpreted strings applied in slot order; a KV layer
// ("set key value") is provided for the examples. Slots decided out of
// order wait for the gap to fill before applying.
package rsm

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/trace"
)

// NoOp is the command decided for a slot no client command reached; it is
// skipped at apply time.
const NoOp consensus.Value = ""

// timer multiplexing: each slot instance gets a block of timer IDs.
const timersPerSlot = 8

// ClientPropose asks the receiving replica to start a new slot with the
// given command. Only the distinguished proposer (replica 0) accepts it;
// other replicas redirect.
type ClientPropose struct {
	Cmd consensus.Value
}

// Type implements consensus.Message.
func (ClientPropose) Type() string { return "rsm-propose" }

// Redirect tells a client which replica is the proposer.
type Redirect struct {
	Leader consensus.ProcessID
}

// Type implements consensus.Message.
func (Redirect) Type() string { return "rsm-redirect" }

// Committed acknowledges a proposal: the command was decided in Slot.
type Committed struct {
	Slot int64
	Cmd  consensus.Value
}

// Type implements consensus.Message.
func (Committed) Type() string { return "rsm-committed" }

// Query asks a replica for the applied value of a key.
type Query struct {
	Key string
}

// Type implements consensus.Message.
func (Query) Type() string { return "rsm-query" }

// QueryReply answers a Query. Found is false if the key has no applied
// value yet.
type QueryReply struct {
	Key   string
	Value string
	Found bool
	// Applied is the number of log slots applied at reply time.
	Applied int64
}

// Type implements consensus.Message.
func (QueryReply) Type() string { return "rsm-reply" }

// SlotMsg carries one slot instance's protocol message.
type SlotMsg struct {
	Slot  int64
	Inner consensus.Message
}

// Type implements consensus.Message.
func (m SlotMsg) Type() string {
	if m.Inner == nil {
		return "rsm-slot"
	}
	return "rsm-" + m.Inner.Type()
}

// Config configures a replica group.
type Config struct {
	// Paxos configures every slot instance; Prepared is forced on.
	Paxos modpaxos.Config
	// MaxSlots bounds the log (a runaway-proposer backstop; default 1<<20).
	MaxSlots int64
}

// Applier consumes committed commands in slot order. Implementations must
// be fast: they run on the replica's event loop.
type Applier interface {
	Apply(slot int64, cmd consensus.Value)
}

// Replica is one member of the replicated state machine. It implements
// consensus.Process; its inner slot instances are ordinary modpaxos
// processes running against slot-scoped environments.
type Replica struct {
	id      consensus.ProcessID
	n       int
	cfg     Config
	factory consensus.Factory
	env     consensus.Environment
	applier Applier

	slots     map[int64]*slotState
	nextSlot  int64 // proposer: next slot to assign
	applied   int64 // number of contiguous slots applied
	decisions map[int64]consensus.Value
	waiters   map[int64][]consensus.ProcessID // proposer: who to ack per slot
	// proposedAt records (on the proposer) when each slot's command was
	// submitted, for the slot-decision-latency histogram; entries are
	// deleted on decision so memory tracks in-flight slots only.
	proposedAt map[int64]time.Duration
	// pending maps a slot to the command the proposer submitted for it.
	// If the slot decides something else (a recovery ballot can win with
	// the NoOp proposal when the command's phase-2 traffic was lost
	// before stabilization), the command is re-proposed in a fresh slot —
	// clients see exactly-once commit of their command, possibly in a
	// later slot. pending is volatile: a proposer crash loses unacked
	// commands, which the client's timeout-and-retry covers.
	pending map[int64]consensus.Value

	// kv is the built-in state machine used when no Applier is given.
	kv *KVStore

	mu sync.Mutex // guards kv reads from outside the event loop (tests)
}

type slotState struct {
	proc consensus.Process
	env  *slotEnv
}

var _ consensus.Process = (*Replica)(nil)

// New returns a Factory producing RSM replicas with the built-in KV store.
func New(cfg Config) (consensus.Factory, error) {
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = 1 << 20
	}
	cfg.Paxos.Prepared = true
	inner, err := modpaxos.New(cfg.Paxos)
	if err != nil {
		return nil, fmt.Errorf("rsm: %w", err)
	}
	return func(id consensus.ProcessID, n int, _ consensus.Value) consensus.Process {
		return &Replica{
			id: id, n: n, cfg: cfg, factory: inner,
			slots:      make(map[int64]*slotState),
			decisions:  make(map[int64]consensus.Value),
			waiters:    make(map[int64][]consensus.ProcessID),
			pending:    make(map[int64]consensus.Value),
			proposedAt: make(map[int64]time.Duration),
			kv:         NewKVStore(),
		}
	}, nil
}

// Leader returns the distinguished proposer.
func Leader() consensus.ProcessID { return 0 }

// Init implements consensus.Process.
func (r *Replica) Init(env consensus.Environment) {
	r.env = env
	if r.applier == nil {
		r.applier = r.kv
	}
	// Recover the decided log from stable storage and re-apply.
	var decided map[int64]consensus.Value
	if ok, err := env.Store().Get("rsm-decided", &decided); err != nil {
		env.Logf("rsm: restore: %v", err)
	} else if ok {
		r.decisions = decided
		r.applyReady()
	}
	var next int64
	if ok, _ := env.Store().Get("rsm-next", &next); ok {
		r.nextSlot = next
	}
}

// HandleMessage implements consensus.Process.
func (r *Replica) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	switch msg := m.(type) {
	case ClientPropose:
		r.onPropose(from, msg)
	case Query:
		r.onQuery(from, msg)
	case SlotMsg:
		r.onSlotMsg(from, msg)
	}
}

// HandleTimer implements consensus.Process: timer IDs are blocks of
// timersPerSlot per slot.
func (r *Replica) HandleTimer(id consensus.TimerID) {
	slot := int64(id) / timersPerSlot
	inner := consensus.TimerID(int64(id) % timersPerSlot)
	if st, ok := r.slots[slot]; ok {
		st.proc.HandleTimer(inner)
	}
}

func (r *Replica) onPropose(from consensus.ProcessID, msg ClientPropose) {
	if r.id != Leader() {
		r.env.Send(from, Redirect{Leader: Leader()})
		return
	}
	if r.nextSlot >= r.cfg.MaxSlots {
		r.env.Logf("rsm: log full at %d slots", r.nextSlot)
		return
	}
	slot := r.assignSlot()
	r.pending[slot] = msg.Cmd
	r.proposedAt[slot] = r.env.Now()
	r.waiters[slot] = append(r.waiters[slot], from)
	r.instance(slot, msg.Cmd) // starts the prepared leader instance
}

// assignSlot allocates the next log slot, persisting the counter so a
// restarted proposer never reuses one.
func (r *Replica) assignSlot() int64 {
	slot := r.nextSlot
	r.nextSlot++
	if err := r.env.Store().Put("rsm-next", r.nextSlot); err != nil {
		r.env.Logf("rsm: persist next: %v", err)
	}
	return slot
}

func (r *Replica) onQuery(from consensus.ProcessID, msg Query) {
	r.mu.Lock()
	val, found := r.kv.Get(msg.Key)
	r.mu.Unlock()
	r.env.Send(from, QueryReply{Key: msg.Key, Value: val, Found: found, Applied: r.applied})
}

func (r *Replica) onSlotMsg(from consensus.ProcessID, msg SlotMsg) {
	if msg.Slot < 0 || msg.Slot >= r.cfg.MaxSlots || msg.Inner == nil {
		return
	}
	st := r.instance(msg.Slot, NoOp)
	st.proc.HandleMessage(from, msg.Inner)
}

// instance returns the slot's protocol instance, creating (and Init-ing) it
// on demand with the given proposal.
func (r *Replica) instance(slot int64, proposal consensus.Value) *slotState {
	if st, ok := r.slots[slot]; ok {
		return st
	}
	env := &slotEnv{replica: r, slot: slot}
	st := &slotState{proc: r.factory(r.id, r.n, proposal), env: env}
	r.slots[slot] = st
	st.proc.Init(env)
	return st
}

// onSlotDecided records a slot decision, applies ready slots, and acks
// waiting clients.
func (r *Replica) onSlotDecided(slot int64, v consensus.Value) {
	if _, ok := r.decisions[slot]; ok {
		return
	}
	r.decisions[slot] = v
	if err := r.env.Store().Put("rsm-decided", r.decisions); err != nil {
		r.env.Logf("rsm: persist decided: %v", err)
	}
	r.env.Emit("rsm-slot-decided", slot)
	if at, ok := r.proposedAt[slot]; ok {
		if d := r.env.Now() - at; d >= 0 {
			consensus.ObserveDuration(r.env, trace.HistSlotLatency, d)
		}
		delete(r.proposedAt, slot)
	}
	r.applyReady()

	if cmd, ok := r.pending[slot]; ok && cmd != v {
		// The slot was stolen (typically by a NoOp recovery ballot):
		// re-propose the command in a fresh slot and move its waiters.
		delete(r.pending, slot)
		if r.nextSlot < r.cfg.MaxSlots {
			again := r.assignSlot()
			r.pending[again] = cmd
			r.waiters[again] = r.waiters[slot]
			delete(r.waiters, slot)
			r.instance(again, cmd)
			return
		}
	}
	delete(r.pending, slot)
	for _, client := range r.waiters[slot] {
		r.env.Send(client, Committed{Slot: slot, Cmd: v})
	}
	delete(r.waiters, slot)
}

// applyReady applies decided slots in order until the first gap.
func (r *Replica) applyReady() {
	for {
		v, ok := r.decisions[r.applied]
		if !ok {
			return
		}
		if v != NoOp {
			r.mu.Lock()
			r.applier.Apply(r.applied, v)
			r.mu.Unlock()
		}
		r.applied++
	}
}

// Applied returns the number of contiguous applied slots (safe from the
// event loop; tests use Query instead).
func (r *Replica) Applied() int64 { return r.applied }

// KVStore is the built-in "set key value" state machine.
type KVStore struct {
	data map[string]string
	log  []consensus.Value
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string]string)} }

var _ Applier = (*KVStore)(nil)

// Apply implements Applier: commands are "set <key> <value>"; anything else
// is appended to the raw log only.
func (s *KVStore) Apply(_ int64, cmd consensus.Value) {
	s.log = append(s.log, cmd)
	fields := strings.Fields(string(cmd))
	if len(fields) == 3 && fields[0] == "set" {
		s.data[fields[1]] = fields[2]
	}
}

// Get returns the applied value of a key.
func (s *KVStore) Get(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Log returns the applied command log.
func (s *KVStore) Log() []consensus.Value {
	out := make([]consensus.Value, len(s.log))
	copy(out, s.log)
	return out
}
