// Package rsm builds a replicated state machine from a sequence of
// independent modified-Paxos instances — the setting the paper's
// "Reducing Message Complexity" discussion (§4) is about: "The message
// complexity of a consensus algorithm matters only when a system executes a
// sequence of separate instances of the algorithm."
//
// Each log slot is one modpaxos instance, multiplexed over a single
// consensus.Process per replica (so the replica runs unchanged on the
// simulator or the live runtime). Slot instances run in the Prepared
// configuration with replica 0 as the distinguished proposer: phase 1 is
// pre-executed, so in the stable case a client command commits within three
// message delays (client → leader, phase 2a, phase 2b), exactly the
// ordinary-Paxos behaviour the paper says the modified algorithm can match.
//
// On top of the slot machinery the leader runs a serving path:
//
//   - Batching: queued client commands are coalesced into one consensus
//     instance (up to MaxBatch per slot, optionally lingering for Linger to
//     fill a batch).
//   - Pipelining: up to MaxInFlight slots run concurrently; the apply path
//     already tolerates out-of-order decisions and fills gaps.
//   - Sessions: commands carry (client, seq); retries after Redirect, Busy,
//     or timeout are deduplicated at apply time, so client ops are
//     exactly-once in the log even when proposed twice.
//   - Backpressure: the proposal queue is bounded (MaxQueue); overflow is
//     shed with an explicit Busy reply instead of silent loss.
//
// Commands are uninterpreted strings applied in slot order; a KV layer
// ("set key value") is provided for the examples. Slots decided out of
// order wait for the gap to fill before applying. Applied slots retire
// their protocol instances (timers cancelled, state dropped); replicas that
// miss a decision catch up via the Learn protocol instead of relying on
// every instance gossiping forever.
package rsm

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/leader"
	"repro/internal/storage"
	"repro/internal/trace"
)

// NoOp is the command decided for a slot no client command reached; it is
// skipped at apply time.
const NoOp consensus.Value = ""

// timer multiplexing: block 0 belongs to the replica itself, and each slot
// instance gets the block at (slot+1)*timersPerSlot.
const timersPerSlot = 8

// Replica-level timer IDs (block 0).
const (
	lingerTimer  consensus.TimerID = 0
	catchupTimer consensus.TimerID = 1
	// beatTimer paces the leader's liveness broadcast (failover only).
	beatTimer consensus.TimerID = 2
	// failoverTimer is the follower's leader-silence watchdog.
	failoverTimer consensus.TimerID = 3
)

// slotKeyPrefix namespaces the per-slot decision records in stable storage.
const slotKeyPrefix = storage.KeyRSMLogPrefix

// slotNamespace prefixes the per-slot store namespace handed to inner
// protocol instances ("slot<N>/...", see slotEnv.Store).
const slotNamespace = storage.KeySlotPrefix

// maxParkedQueries bounds the per-replica list of read queries waiting for
// the log to reach their MinApplied watermark.
const maxParkedQueries = 256

// learnChunk bounds the decided slots returned per LearnReply.
const learnChunk = 64

// ClientPropose asks the receiving replica to order a command. Client and
// Seq identify the session (Seq == 0 is sessionless: no dedup). Only the
// distinguished proposer (replica 0) accepts it; other replicas redirect.
type ClientPropose struct {
	Client int64
	Seq    uint64
	Cmd    consensus.Value
}

// Type implements consensus.Message.
func (ClientPropose) Type() string { return "rsm-propose" }

// Redirect tells a client which replica is the proposer. Epoch stamps the
// sender's leadership view so a client can discard redirects that are
// staler than what it already follows (a deposed leader pointing backwards).
type Redirect struct {
	Leader consensus.ProcessID
	Epoch  int64
}

// Type implements consensus.Message.
func (Redirect) Type() string { return "rsm-redirect" }

// Committed acknowledges a proposal: the command was applied from Slot.
// Seq echoes the proposal's sequence number so clients match replies to
// operations (Slot is −1 when a stale retry is acknowledged after the
// session has moved past it).
type Committed struct {
	Slot int64
	Seq  uint64
	Cmd  consensus.Value
}

// Type implements consensus.Message.
func (Committed) Type() string { return "rsm-committed" }

// Busy rejects a proposal or query because the replica is at capacity (the
// proposal queue or parked-query list is full). Clients back off and retry;
// nothing was enqueued.
type Busy struct {
	QueueLen int
}

// Type implements consensus.Message.
func (Busy) Type() string { return "rsm-busy" }

// Query asks a replica for the applied value of a key once it has applied
// at least MinApplied slots; the replica parks unsatisfiable queries and
// answers when the log catches up (no client polling). ReqID matches the
// reply to the query.
type Query struct {
	Key        string
	MinApplied int64
	ReqID      uint64
}

// Type implements consensus.Message.
func (Query) Type() string { return "rsm-query" }

// QueryReply answers a Query. Found is false if the key has no applied
// value yet.
type QueryReply struct {
	Key   string
	Value string
	Found bool
	// Applied is the number of log slots applied at reply time.
	Applied int64
	ReqID   uint64
}

// Type implements consensus.Message.
func (QueryReply) Type() string { return "rsm-reply" }

// SlotMsg carries one slot instance's protocol message.
type SlotMsg struct {
	Slot  int64
	Inner consensus.Message
}

// Type implements consensus.Message.
func (m SlotMsg) Type() string {
	if m.Inner == nil {
		return "rsm-slot"
	}
	return "rsm-" + m.Inner.Type()
}

// Learn asks a peer for decided slots starting at From. Replicas send it on
// a timer while their log has a gap below a slot they know exists; it
// replaces the per-instance eternal decision gossip that retired instances
// no longer provide.
type Learn struct {
	From int64
}

// Type implements consensus.Message.
func (Learn) Type() string { return "rsm-learn" }

// SlotValue is one decided (slot, value) pair in a LearnReply.
type SlotValue struct {
	Slot int64
	Val  consensus.Value
}

// LearnReply returns a chunk of decided slots.
type LearnReply struct {
	Entries []SlotValue
}

// Type implements consensus.Message.
func (LearnReply) Type() string { return "rsm-learned" }

// Config configures a replica group.
type Config struct {
	// Paxos configures every slot instance; Prepared is forced on.
	Paxos modpaxos.Config
	// MaxSlots bounds the log (a runaway-proposer backstop; default 1<<20).
	MaxSlots int64
	// MaxBatch is the most client commands coalesced into one slot
	// (default 8).
	MaxBatch int
	// Linger holds a partial batch for up to this long waiting for it to
	// fill (default 0: propose immediately — batching still emerges under
	// load once the pipeline window is saturated).
	Linger time.Duration
	// MaxInFlight is the slot pipelining window: how many instances may run
	// concurrently (default 4).
	MaxInFlight int
	// MaxQueue bounds the leader's proposal queue; overflow is rejected
	// with Busy (default 1024).
	MaxQueue int
	// MaxSessions bounds the in-memory session-dedup table. When more
	// clients than this have applied commands, the sessions with the
	// oldest applied slots spill to the stable store, where lookups still
	// find them — exactly-once semantics survive eviction (default 4096).
	MaxSessions int
	// NewApplier, when set, supplies the state machine per replica instead
	// of the built-in KVStore (queries then read an empty store).
	NewApplier func(id consensus.ProcessID) Applier
	// FailoverTimeout enables epoch-based leader failover: a follower that
	// hears nothing from the leader for this long (scaled by its distance
	// to the next epoch it owns, so candidates are staggered) promotes
	// itself. Zero keeps the static leader at replica 0 with no heartbeat
	// traffic — the schedules of existing runs are unchanged.
	FailoverTimeout time.Duration
	// HeartbeatEvery is the leader's Beat period (default FailoverTimeout/4).
	HeartbeatEvery time.Duration
	// SnapshotEvery enables log compaction: every time this many more
	// slots have applied, the replica snapshots its applier + session
	// table and truncates the decision log below the horizon. Zero
	// disables compaction (the log grows without bound).
	SnapshotEvery int64
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.MaxSlots == 0 {
		c.MaxSlots = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.FailoverTimeout > 0 && c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.FailoverTimeout / 4
		if c.HeartbeatEvery <= 0 {
			c.HeartbeatEvery = c.FailoverTimeout
		}
	}
	c.Paxos.Prepared = true
	return c
}

// Applier consumes committed commands in slot order. Implementations must
// be fast: they run on the replica's event loop.
type Applier interface {
	Apply(slot int64, cmd consensus.Value)
}

// EntryApplier is optionally implemented by Appliers that want the batch
// structure: one call per command with its index within the slot and the
// full session identity (the rsmbench invariant recorder uses this).
type EntryApplier interface {
	ApplyEntry(slot int64, idx int, cmd Command)
}

// sessionKey identifies one client operation for dedup tracking.
type sessionKey struct {
	client int64
	seq    uint64
}

// queuedCmd is one client command riding through queue → slot → apply with
// the clients to acknowledge.
type queuedCmd struct {
	cmd        Command
	waiters    []consensus.ProcessID
	enqueuedAt time.Duration
}

func (q *queuedCmd) addWaiter(p consensus.ProcessID) {
	for _, w := range q.waiters {
		if w == p {
			return
		}
	}
	q.waiters = append(q.waiters, p)
}

// Session is the per-client dedup state: the highest applied sequence
// number and the slot it applied from. (Exported because snapshots carry
// the full session table over the wire.)
type Session struct {
	Seq  uint64
	Slot int64
}

// sessKeyPrefix namespaces spilled session records in the stable store.
const sessKeyPrefix = storage.KeyRSMSessPrefix

func sessKey(client int64) string {
	return sessKeyPrefix + strconv.FormatInt(client, 10)
}

// lookupSession returns the client's dedup record: the bounded in-memory
// table first, then records spilled to the stable store by eviction.
func (r *Replica) lookupSession(client int64) (Session, bool) {
	if s, ok := r.sessions[client]; ok {
		return s, true
	}
	var s Session
	if ok, err := r.env.Store().Get(sessKey(client), &s); err == nil && ok {
		return s, true
	}
	return Session{}, false
}

// recordSession updates a client's dedup record after its command applied,
// evicting the oldest records once the in-memory table exceeds MaxSessions.
func (r *Replica) recordSession(client int64, s Session) {
	r.sessions[client] = s
	for len(r.sessions) > r.cfg.MaxSessions {
		r.evictOldestSession()
	}
}

// evictOldestSession spills the session whose last applied slot is oldest
// to the stable store and drops it from memory. A spilled client's next
// duplicate costs one store read instead of a map hit; its exactly-once
// guarantee is unchanged.
func (r *Replica) evictOldestSession() {
	victim, vs, found := int64(0), Session{}, false
	for c, s := range r.sessions {
		if !found || s.Slot < vs.Slot || (s.Slot == vs.Slot && c < victim) {
			// The (slot, client) comparison totally orders the entries, so
			// the argmin is unique whatever order the map yields.
			//repro:allow detlint total slot-client order makes the argmin unique
			victim, vs, found = c, s, true
		}
	}
	if !found {
		return
	}
	if err := r.env.Store().Put(sessKey(victim), vs); err != nil {
		r.env.Logf("rsm: spill session %d: %v", victim, err)
	}
	delete(r.sessions, victim)
}

// parkedQuery is a read waiting for the log to reach its watermark.
type parkedQuery struct {
	from consensus.ProcessID
	q    Query
}

// Replica is one member of the replicated state machine. It implements
// consensus.Process; its inner slot instances are ordinary modpaxos
// processes running against slot-scoped environments.
type Replica struct {
	id      consensus.ProcessID
	n       int
	cfg     Config
	factory consensus.Factory
	env     consensus.Environment
	applier Applier

	slots     map[int64]*slotState
	nextSlot  int64 // proposer: next slot to assign
	applied   int64 // number of contiguous slots applied
	decisions map[int64]consensus.Value
	// decidedAt records each slot's decision time until it applies, for the
	// decide→apply lag histogram.
	decidedAt map[int64]time.Duration
	// proposedAt records (on the proposer) when each slot's batch was
	// submitted, for the slot-decision-latency histogram; entries are
	// deleted on decision so memory tracks in-flight slots only.
	proposedAt map[int64]time.Duration

	// Serving path (leader only).
	queue    []*queuedCmd // commands awaiting a slot
	inFlight int          // slots proposed but not yet decided
	// tracked indexes queued or in-flight session'd commands so a retry
	// coalesces onto the original instead of proposing twice.
	tracked map[sessionKey]*queuedCmd
	// proposed maps an in-flight slot to its batch entries, kept until
	// apply so waiters are acknowledged only once their command executed.
	proposed map[int64][]*queuedCmd
	// pending maps a slot to the encoded batch the proposer submitted. If
	// the slot decides something else (a recovery ballot can win with the
	// NoOp proposal when the batch's phase-2 traffic was lost before
	// stabilization), the batch is re-queued for a fresh slot — commands
	// commit exactly once, possibly in a later slot. pending is volatile: a
	// proposer crash loses unacked commands, which client retry + session
	// dedup covers.
	pending     map[int64]consensus.Value
	lingerArmed bool

	// sessions is the apply-side dedup state, rebuilt from the log on
	// restart because it is only mutated while applying.
	sessions map[int64]Session

	// Catch-up: maxSeen is the highest slot this replica knows exists
	// (decided locally or referenced by any peer message); while the log
	// has a gap below it, a timer asks peers for the missing decisions.
	maxSeen      int64
	catchupArmed bool
	catchupPeer  int

	// Failover (active only with cfg.FailoverTimeout > 0): epoch numbers
	// leadership; the leader of epoch e is replica e mod n, so epoch 0
	// preserves the static replica-0 leader.
	epoch          int64
	lastLeaderSeen time.Duration
	failoverArmed  bool
	// repairing tracks a takeover's log-repair window for the failover
	// span/histogram: open until applied reaches repairTarget.
	repairing    bool
	repairTarget int64
	failoverFrom time.Duration

	// Compaction: snapBase is the snapshot horizon — the lowest slot still
	// present in the decision log (0 until the first snapshot).
	snapBase int64

	// Restart catch-up timing: set on a non-empty restore, resolved into
	// HistCatchupLatency once the log is gap-free after hearing a peer.
	catchupPending bool
	peerHeard      bool
	restartedAt    time.Duration

	parked []parkedQuery

	// kv is the built-in state machine used when no Applier is given.
	kv *KVStore

	mu sync.Mutex // guards kv reads from outside the event loop (tests)
}

type slotState struct {
	proc consensus.Process
	env  *slotEnv
}

var _ consensus.Process = (*Replica)(nil)

// New returns a Factory producing RSM replicas with the built-in KV store.
func New(cfg Config) (consensus.Factory, error) {
	cfg = cfg.withDefaults()
	inner, err := modpaxos.New(cfg.Paxos)
	if err != nil {
		return nil, fmt.Errorf("rsm: %w", err)
	}
	return func(id consensus.ProcessID, n int, _ consensus.Value) consensus.Process {
		r := &Replica{
			id: id, n: n, cfg: cfg, factory: inner,
			slots:      make(map[int64]*slotState),
			decisions:  make(map[int64]consensus.Value),
			decidedAt:  make(map[int64]time.Duration),
			proposedAt: make(map[int64]time.Duration),
			tracked:    make(map[sessionKey]*queuedCmd),
			proposed:   make(map[int64][]*queuedCmd),
			pending:    make(map[int64]consensus.Value),
			sessions:   make(map[int64]Session),
			maxSeen:    -1,
			kv:         NewKVStore(),
		}
		if cfg.NewApplier != nil {
			r.applier = cfg.NewApplier(id)
		}
		return r
	}, nil
}

// Leader returns the distinguished proposer.
func Leader() consensus.ProcessID { return 0 }

// Init implements consensus.Process.
func (r *Replica) Init(env consensus.Environment) {
	r.env = env
	if r.applier == nil {
		r.applier = r.kv
	}
	// A compaction snapshot replaces the log below its horizon: restore
	// the applier image and the complete session table first, then replay
	// only the decision records above it.
	var snap Snapshot
	if ok, err := env.Store().Get(storage.KeyRSMSnapshot, &snap); err == nil && ok && snap.Applied > 0 {
		if snap.HasState {
			if sn, ok := r.applier.(Snapshotter); ok {
				r.mu.Lock()
				err := sn.Restore(snap.State)
				r.mu.Unlock()
				if err != nil {
					env.Logf("rsm: restore snapshot: %v", err)
				}
			}
		}
		r.sessions = make(map[int64]Session, len(snap.Sessions))
		for c, s := range snap.Sessions {
			r.sessions[c] = s
		}
		r.applied = snap.Applied
		r.snapBase = snap.Applied
		r.maxSeen = snap.Applied - 1
	}
	// Recover the rest of the decided log from its per-slot records and
	// re-apply; sessions above the horizon rebuild as a side effect.
	keys, err := env.Store().Keys()
	if err != nil {
		env.Logf("rsm: restore: %v", err)
	}
	for _, k := range keys {
		// Spilled session records cache state the snapshot + log replay
		// rebuilds (the snapshot folded every spill made before it; later
		// spills re-derive from replay), so clear them first — a stale
		// record would make replay skip re-applying its client's commands
		// to the restored state machine.
		if strings.HasPrefix(k, sessKeyPrefix) {
			if err := env.Store().Delete(k); err != nil {
				env.Logf("rsm: restore: drop %s: %v", k, err)
			}
			continue
		}
		if !strings.HasPrefix(k, slotKeyPrefix) {
			continue
		}
		slot, err := strconv.ParseInt(k[len(slotKeyPrefix):], 10, 64)
		if err != nil {
			continue
		}
		if slot < r.applied {
			// Below the snapshot horizon (a crash between snapshot write
			// and truncation): finish the truncation.
			if err := env.Store().Delete(k); err != nil {
				env.Logf("rsm: restore: truncate %s: %v", k, err)
			}
			continue
		}
		var v consensus.Value
		if ok, err := env.Store().Get(k, &v); err != nil {
			env.Logf("rsm: restore %s: %v", k, err)
		} else if ok {
			r.decisions[slot] = v
			if slot > r.maxSeen {
				r.maxSeen = slot
			}
		}
	}
	var next int64
	if ok, _ := env.Store().Get(storage.KeyRSMNext, &next); ok && next > r.nextSlot {
		r.nextSlot = next
	}
	// Slots assigned before a crash may have decided elsewhere; treat them
	// as known-to-exist so the catch-up protocol fills any gap.
	if r.nextSlot-1 > r.maxSeen {
		r.maxSeen = r.nextSlot - 1
	}
	if r.maxSeen >= 0 || r.applied > 0 {
		// Non-empty restore ⇒ this is a restart: time how long until the
		// log is gap-free again (resolved into HistCatchupLatency).
		r.catchupPending = true
		r.restartedAt = env.Now()
	}
	r.applyReady()
	r.initFailover()
	// Probe peers for decisions made while this replica was down: their
	// instances may be retired (no more decision gossip), so a restarted
	// replica must ask. On a fresh cluster the probes return nothing.
	for i := 0; i < r.n; i++ {
		if id := consensus.ProcessID(i); id != r.id {
			r.env.Send(id, Learn{From: r.applied})
		}
	}
}

// HandleMessage implements consensus.Process.
func (r *Replica) HandleMessage(from consensus.ProcessID, m consensus.Message) {
	if from != r.id && int64(from) < int64(r.n) {
		r.peerHeard = true
		if r.failoverOn() && from == r.leaderID() {
			// Any traffic from the current leader is a sign of life.
			r.noteLeaderAlive()
		}
	}
	switch msg := m.(type) {
	case ClientPropose:
		r.onPropose(from, msg)
	case Query:
		r.onQuery(from, msg)
	case SlotMsg:
		r.onSlotMsg(from, msg)
	case Learn:
		r.onLearn(from, msg)
	case LearnReply:
		r.onLearnReply(from, msg)
	case Beat:
		r.onBeat(from, msg)
	case SnapshotMsg:
		r.onSnapshot(from, msg)
	case leader.Announce:
		r.onAnnounce(msg)
	}
	r.resolveCatchup()
}

// resolveCatchup closes the restart catch-up window once the replica has
// heard from a peer and has no known gap left — the point where it is
// provably serving the same prefix as the group again.
func (r *Replica) resolveCatchup() {
	if !r.catchupPending || !r.peerHeard || r.maxSeen >= r.applied {
		return
	}
	r.catchupPending = false
	if d := r.env.Now() - r.restartedAt; d >= 0 {
		consensus.ObserveDuration(r.env, trace.HistCatchupLatency, d)
	}
}

// HandleTimer implements consensus.Process: block 0 holds the replica's own
// timers, block slot+1 the slot instance's.
func (r *Replica) HandleTimer(id consensus.TimerID) {
	if int64(id) < timersPerSlot {
		switch id {
		case lingerTimer:
			r.lingerArmed = false
			r.tryFlush(true)
		case catchupTimer:
			r.onCatchupTimer()
		case beatTimer:
			r.onBeatTimer()
		case failoverTimer:
			r.onFailoverTimer()
		}
		return
	}
	slot := int64(id)/timersPerSlot - 1
	inner := consensus.TimerID(int64(id) % timersPerSlot)
	if st, ok := r.slots[slot]; ok {
		st.proc.HandleTimer(inner)
	}
}

func (r *Replica) onPropose(from consensus.ProcessID, msg ClientPropose) {
	if r.id != r.leaderID() {
		r.env.Send(from, Redirect{Leader: r.leaderID(), Epoch: r.epoch})
		return
	}
	if msg.Seq != 0 {
		// Dedup: already applied → ack immediately; already queued or in
		// flight → coalesce onto the original.
		if s, ok := r.lookupSession(msg.Client); ok && msg.Seq <= s.Seq {
			slot := int64(-1)
			if msg.Seq == s.Seq {
				slot = s.Slot
			}
			r.env.Send(from, Committed{Slot: slot, Seq: msg.Seq, Cmd: msg.Cmd})
			return
		}
		if qc, ok := r.tracked[sessionKey{msg.Client, msg.Seq}]; ok {
			qc.addWaiter(from)
			return
		}
	}
	if len(r.queue) >= r.cfg.MaxQueue {
		r.env.Emit("rsm-shed", int64(len(r.queue)))
		r.env.Send(from, Busy{QueueLen: len(r.queue)})
		return
	}
	qc := &queuedCmd{
		cmd:        Command{Client: msg.Client, Seq: msg.Seq, Op: msg.Cmd},
		enqueuedAt: r.env.Now(),
	}
	qc.addWaiter(from)
	r.queue = append(r.queue, qc)
	if msg.Seq != 0 {
		r.tracked[sessionKey{msg.Client, msg.Seq}] = qc
	}
	consensus.ObserveValue(r.env, trace.HistRSMQueueDepth, int64(len(r.queue)))
	r.tryFlush(false)
}

// tryFlush moves queued commands into consensus instances while the
// pipeline window has room. A partial batch flushes immediately only when
// the pipeline is idle (the latency-optimal light-load path); while slots
// are in flight it waits for the next decision to coalesce more commands —
// no timer needed, a decision always arrives. With Linger set, a partial
// batch instead waits out the linger window (force is that timer firing);
// the head batch only, so a full queue still streams out.
func (r *Replica) tryFlush(force bool) {
	if r.failoverOn() && r.id != r.leaderID() {
		// Deposed mid-batch (or a stolen slot re-queued after deposition):
		// the commands belong to the new leader now.
		r.forwardQueue()
		return
	}
	for len(r.queue) > 0 && r.inFlight < r.cfg.MaxInFlight && r.nextSlot < r.cfg.MaxSlots {
		if !force && len(r.queue) < r.cfg.MaxBatch {
			if r.cfg.Linger > 0 {
				if wait := r.queue[0].enqueuedAt + r.cfg.Linger - r.env.Now(); wait > 0 {
					if !r.lingerArmed {
						r.lingerArmed = true
						r.env.SetTimer(lingerTimer, wait)
					}
					return
				}
			} else if r.inFlight > 0 {
				return
			}
		}
		force = false
		take := r.cfg.MaxBatch
		if take > len(r.queue) {
			take = len(r.queue)
		}
		batch := make([]*queuedCmd, take)
		copy(batch, r.queue)
		r.queue = r.queue[:copy(r.queue, r.queue[take:])]

		cmds := make([]Command, take)
		for i, qc := range batch {
			cmds[i] = qc.cmd
		}
		val := EncodeBatch(cmds)
		slot := r.assignSlot()
		r.pending[slot] = val
		r.proposed[slot] = batch
		r.proposedAt[slot] = r.env.Now()
		r.inFlight++
		consensus.ObserveValue(r.env, trace.HistBatchSize, int64(take))
		r.slotSpan(slot, "commit", true, int64(take))
		r.claimSlot(r.instance(slot, val))
	}
	if len(r.queue) >= r.cfg.MaxBatch {
		// Window full with a whole batch still queued: no timer needed, the
		// next decision flushes it.
		return
	}
	if len(r.queue) > 0 && r.cfg.Linger > 0 && !r.lingerArmed {
		if wait := r.queue[0].enqueuedAt + r.cfg.Linger - r.env.Now(); wait > 0 {
			r.lingerArmed = true
			r.env.SetTimer(lingerTimer, wait)
		}
	}
}

// assignSlot allocates the next log slot, persisting the counter so a
// restarted proposer never reuses one.
func (r *Replica) assignSlot() int64 {
	slot := r.nextSlot
	r.nextSlot++
	if err := r.env.Store().Put(storage.KeyRSMNext, r.nextSlot); err != nil {
		r.env.Logf("rsm: persist next: %v", err)
	}
	return slot
}

func (r *Replica) onQuery(from consensus.ProcessID, msg Query) {
	if msg.MinApplied > r.applied {
		// Park until the log catches up; duplicates of a retransmitted
		// query replace their older entry.
		for i := range r.parked {
			if r.parked[i].from == from && r.parked[i].q.ReqID == msg.ReqID {
				r.parked[i].q = msg
				return
			}
		}
		if len(r.parked) >= maxParkedQueries {
			r.env.Send(from, Busy{QueueLen: len(r.parked)})
			return
		}
		r.parked = append(r.parked, parkedQuery{from: from, q: msg})
		return
	}
	r.answerQuery(from, msg)
}

func (r *Replica) answerQuery(from consensus.ProcessID, msg Query) {
	r.mu.Lock()
	val, found := r.kv.Get(msg.Key)
	r.mu.Unlock()
	r.env.Send(from, QueryReply{
		Key: msg.Key, Value: val, Found: found, Applied: r.applied, ReqID: msg.ReqID,
	})
}

// flushParked answers parked queries whose watermark the log has reached.
func (r *Replica) flushParked() {
	if len(r.parked) == 0 {
		return
	}
	kept := r.parked[:0]
	for _, p := range r.parked {
		if p.q.MinApplied <= r.applied {
			r.answerQuery(p.from, p.q)
		} else {
			kept = append(kept, p)
		}
	}
	r.parked = kept
}

func (r *Replica) onSlotMsg(from consensus.ProcessID, msg SlotMsg) {
	if msg.Slot < 0 || msg.Slot >= r.cfg.MaxSlots || msg.Inner == nil {
		return
	}
	if msg.Slot > r.maxSeen {
		r.maxSeen = msg.Slot
		r.checkCatchup()
	}
	if v, ok := r.decisions[msg.Slot]; ok {
		if _, live := r.slots[msg.Slot]; !live {
			// Retired instance: answer stragglers the way a decided modpaxos
			// process would, except for Decided announcements (the sender
			// already knows the value).
			if _, isDecided := msg.Inner.(modpaxos.Decided); !isDecided {
				r.env.Send(from, SlotMsg{Slot: msg.Slot, Inner: modpaxos.Decided{Val: v}})
			}
			return
		}
	} else if msg.Slot < r.applied {
		// Compacted below the snapshot horizon: there is no decision record
		// left to answer from. The sender recovers via Learn, which ships
		// the snapshot for ranges below the horizon.
		return
	}
	st := r.instance(msg.Slot, NoOp)
	st.proc.HandleMessage(from, msg.Inner)
}

// instance returns the slot's protocol instance, creating (and Init-ing) it
// on demand with the given proposal.
func (r *Replica) instance(slot int64, proposal consensus.Value) *slotState {
	if st, ok := r.slots[slot]; ok {
		return st
	}
	env := &slotEnv{replica: r, slot: slot}
	st := &slotState{proc: r.factory(r.id, r.n, proposal), env: env}
	r.slots[slot] = st
	st.proc.Init(env)
	return st
}

// retire drops an applied slot's protocol instance: its timers are
// cancelled and its in-memory state freed. Late messages for the slot are
// answered from the decision log (onSlotMsg), and gaps elsewhere are filled
// by the Learn protocol — without this, every decided instance would gossip
// its decision forever and a long log would drown the event queue.
func (r *Replica) retire(slot int64) {
	if _, ok := r.slots[slot]; !ok {
		return
	}
	base := (slot + 1) * timersPerSlot
	for i := int64(0); i < timersPerSlot; i++ {
		r.env.CancelTimer(consensus.TimerID(base + i))
	}
	delete(r.slots, slot)
}

// onSlotDecided records a slot decision, re-queues stolen batches, applies
// ready slots, and refills the pipeline window.
func (r *Replica) onSlotDecided(slot int64, v consensus.Value) {
	if _, ok := r.decisions[slot]; ok {
		return
	}
	r.decisions[slot] = v
	if err := r.env.Store().Put(slotKey(slot), v); err != nil {
		r.env.Logf("rsm: persist slot %d: %v", slot, err)
	}
	if slot > r.maxSeen {
		r.maxSeen = slot
	}
	r.env.Emit("rsm-slot-decided", slot)
	r.decidedAt[slot] = r.env.Now()
	if at, ok := r.proposedAt[slot]; ok {
		if d := r.env.Now() - at; d >= 0 {
			consensus.ObserveDuration(r.env, trace.HistSlotLatency, d)
		}
		delete(r.proposedAt, slot)
	}

	if mine, ok := r.pending[slot]; ok {
		r.inFlight--
		delete(r.pending, slot)
		r.slotSpan(slot, "commit", false, 0)
		r.slotSpan(slot, "apply", true, 0)
		if mine != v {
			// The slot was stolen (typically by a NoOp recovery ballot):
			// re-queue the batch at the front for a fresh slot, waiters and
			// session tracking intact.
			batch := r.proposed[slot]
			delete(r.proposed, slot)
			r.queue = append(batch, r.queue...)
		}
	}
	r.applyReady()
	r.tryFlush(false)
}

// applyReady applies decided slots in order until the first gap,
// acknowledges the applied commands' waiters, and retires the slots'
// instances.
func (r *Replica) applyReady() {
	progressed := false
	for {
		v, ok := r.decisions[r.applied]
		if !ok {
			break
		}
		slot := r.applied
		r.applied++
		progressed = true
		if v != NoOp {
			for i, cmd := range DecodeBatch(v) {
				if cmd.Seq != 0 {
					if s, ok := r.lookupSession(cmd.Client); ok && s.Seq >= cmd.Seq {
						continue // duplicate of an applied op
					}
				}
				r.mu.Lock()
				if ea, ok := r.applier.(EntryApplier); ok {
					ea.ApplyEntry(slot, i, cmd)
				} else {
					r.applier.Apply(slot, cmd.Op)
				}
				r.mu.Unlock()
				if cmd.Seq != 0 {
					r.recordSession(cmd.Client, Session{Seq: cmd.Seq, Slot: slot})
				}
			}
		}
		if batch, ok := r.proposed[slot]; ok {
			for _, qc := range batch {
				if qc.cmd.Seq != 0 {
					delete(r.tracked, sessionKey{qc.cmd.Client, qc.cmd.Seq})
				}
				for _, w := range qc.waiters {
					r.env.Send(w, Committed{Slot: slot, Seq: qc.cmd.Seq, Cmd: qc.cmd.Op})
				}
			}
			delete(r.proposed, slot)
		}
		if at, ok := r.decidedAt[slot]; ok {
			if d := r.env.Now() - at; d >= 0 {
				consensus.ObserveDuration(r.env, trace.HistApplyLag, d)
			}
			delete(r.decidedAt, slot)
		}
		r.slotSpan(slot, "apply", false, 0)
		r.retire(slot)
	}
	if progressed {
		r.flushParked()
		r.finishRepair()
		r.maybeSnapshot()
	}
	r.checkCatchup()
}

// checkCatchup arms the catch-up timer while the log has a gap below a slot
// known to exist. Idle replicas keep no timer armed.
func (r *Replica) checkCatchup() {
	if r.catchupArmed || r.env == nil {
		return
	}
	if r.maxSeen < r.applied {
		return
	}
	if _, ok := r.decisions[r.applied]; ok {
		return // applyReady will consume it
	}
	r.catchupArmed = true
	r.env.SetTimer(catchupTimer, r.catchupInterval())
}

func (r *Replica) catchupInterval() time.Duration {
	if g := r.cfg.Paxos.GossipInterval; g > 0 {
		return g
	}
	return 2 * r.cfg.Paxos.Delta
}

func (r *Replica) onCatchupTimer() {
	r.catchupArmed = false
	if r.maxSeen < r.applied {
		return
	}
	if _, ok := r.decisions[r.applied]; ok {
		return
	}
	// Ask one peer (rotating) for everything from the gap up.
	for i := 0; i < r.n; i++ {
		r.catchupPeer = (r.catchupPeer + 1) % r.n
		if consensus.ProcessID(r.catchupPeer) != r.id {
			break
		}
	}
	r.env.Send(consensus.ProcessID(r.catchupPeer), Learn{From: r.applied})
	r.catchupArmed = true
	r.env.SetTimer(catchupTimer, r.catchupInterval())
}

func (r *Replica) onLearn(from consensus.ProcessID, msg Learn) {
	if msg.From < 0 {
		return
	}
	if msg.From < r.snapBase {
		// The requested range is below our compaction horizon: ship the
		// snapshot instead of slot records we no longer have.
		var snap Snapshot
		if ok, err := r.env.Store().Get(storage.KeyRSMSnapshot, &snap); err == nil && ok {
			r.env.Send(from, SnapshotMsg{Snap: snap})
		}
		return
	}
	var entries []SlotValue
	for slot := msg.From; slot <= r.maxSeen && len(entries) < learnChunk; slot++ {
		if v, ok := r.decisions[slot]; ok {
			entries = append(entries, SlotValue{Slot: slot, Val: v})
		}
	}
	if len(entries) > 0 {
		r.env.Send(from, LearnReply{Entries: entries})
	}
}

func (r *Replica) onLearnReply(from consensus.ProcessID, msg LearnReply) {
	before := r.applied
	for _, e := range msg.Entries {
		if e.Slot < 0 || e.Slot >= r.cfg.MaxSlots {
			continue
		}
		if _, ok := r.decisions[e.Slot]; !ok {
			r.onSlotDecided(e.Slot, e.Val)
		}
	}
	// A full chunk that made progress means there is probably more: keep
	// streaming from the same peer without waiting for the timer.
	if len(msg.Entries) == learnChunk && r.applied > before {
		r.env.Send(from, Learn{From: r.applied})
	}
}

// slotKey is the stable-storage key of one slot's decision.
func slotKey(slot int64) string { return slotKeyPrefix + strconv.FormatInt(slot, 10) }

// spansOn reports whether the environment records spans, gating the
// per-slot kind formatting.
func (r *Replica) spansOn() bool {
	if en, ok := r.env.(spanEnabler); ok {
		return en.SpansEnabled()
	}
	return false
}

// slotSpan emits a slot-lane span ("slotN-commit", "slotN-apply") on the
// proposer, giving the timeline one lane per pipelined slot.
func (r *Replica) slotSpan(slot int64, kind string, begin bool, value int64) {
	if r.id != r.leaderID() || !r.spansOn() {
		return
	}
	if sink, ok := r.env.(consensus.SpanSink); ok {
		sink.Span(fmt.Sprintf("slot%d-%s", slot, kind), begin, value)
	}
}

// Applied returns the number of contiguous applied slots (safe from the
// event loop; tests use Query instead).
func (r *Replica) Applied() int64 { return r.applied }

// QueueLen returns the current proposal-queue depth (leader only; test
// observability).
func (r *Replica) QueueLen() int { return len(r.queue) }

// InFlight returns the number of undecided proposed slots (leader only;
// test observability).
func (r *Replica) InFlight() int { return r.inFlight }

// KVStore is the built-in "set key value" state machine.
type KVStore struct {
	data map[string]string
	log  []consensus.Value
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string]string)} }

var _ Applier = (*KVStore)(nil)

// Apply implements Applier: commands are "set <key> <value>"; anything else
// is appended to the raw log only.
func (s *KVStore) Apply(_ int64, cmd consensus.Value) {
	s.log = append(s.log, cmd)
	fields := strings.Fields(string(cmd))
	if len(fields) == 3 && fields[0] == "set" {
		s.data[fields[1]] = fields[2]
	}
}

// Get returns the applied value of a key.
func (s *KVStore) Get(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Log returns the applied command log.
func (s *KVStore) Log() []consensus.Value {
	out := make([]consensus.Value, len(s.log))
	copy(out, s.log)
	return out
}
