package rsm

// Fault-injection tests for the serving path: session dedup under message
// duplication, pipelined gap-fill under reordering, and a leader crash with
// a batch in flight. The invariant throughout is exactly-once apply in slot
// order at every replica.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// applyLog records every applied command with its log position.
type applyLog struct {
	mu      sync.Mutex
	entries []appliedCmd
}

type appliedCmd struct {
	Slot int64
	Idx  int
	Cmd  Command
}

func (a *applyLog) Apply(slot int64, cmd consensus.Value) {
	a.ApplyEntry(slot, 0, Command{Op: cmd})
}

func (a *applyLog) ApplyEntry(slot int64, idx int, cmd Command) {
	a.mu.Lock()
	a.entries = append(a.entries, appliedCmd{Slot: slot, Idx: idx, Cmd: cmd})
	a.mu.Unlock()
}

func (a *applyLog) snapshot() []appliedCmd {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]appliedCmd(nil), a.entries...)
}

// faultGroup builds a simulated cluster with per-replica apply logs and the
// given serving-path knobs.
func faultGroup(t *testing.T, seed int64, simCfg simnet.Config, rsmCfg Config) (*sim.Engine, *simnet.Network, []*applyLog) {
	t.Helper()
	logs := make([]*applyLog, simCfg.N)
	for i := range logs {
		logs[i] = &applyLog{}
	}
	rsmCfg.Paxos.Delta = simCfg.Delta
	rsmCfg.Paxos.Rho = simCfg.Rho
	// Each incarnation gets a fresh log: a restarted replica re-applies the
	// persisted log from slot 0 (that is how sessions rebuild), so reusing
	// the old recorder would double-count the pre-crash prefix.
	rsmCfg.NewApplier = func(id consensus.ProcessID) Applier {
		l := &applyLog{}
		logs[id] = l
		return l
	}
	factory, err := New(rsmCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	nw, err := simnet.New(eng, simCfg, factory, make([]consensus.Value, simCfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw, logs
}

// assertExactlyOnce checks one replica's apply log: strictly increasing
// (slot, idx) positions and no session'd (client, seq) applied twice.
func assertExactlyOnce(t *testing.T, id int, entries []appliedCmd) {
	t.Helper()
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if b.Slot < a.Slot || (b.Slot == a.Slot && b.Idx <= a.Idx) {
			t.Fatalf("replica %d applied out of order: %+v then %+v", id, a, b)
		}
	}
	seen := make(map[sessionKey]int64)
	for _, e := range entries {
		if e.Cmd.Seq == 0 {
			continue
		}
		k := sessionKey{e.Cmd.Client, e.Cmd.Seq}
		if prev, ok := seen[k]; ok {
			t.Fatalf("replica %d applied client %d seq %d twice (slots %d and %d)",
				id, e.Cmd.Client, e.Cmd.Seq, prev, e.Slot)
		}
		seen[k] = e.Slot
	}
}

// assertSameLog checks all replicas applied identical sequences.
func assertSameLog(t *testing.T, logs []*applyLog) {
	t.Helper()
	ref := logs[0].snapshot()
	for id := 1; id < len(logs); id++ {
		got := logs[id].snapshot()
		if len(got) != len(ref) {
			t.Fatalf("replica %d applied %d entries, replica 0 applied %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("replica %d log[%d] = %+v, replica 0 has %+v", id, i, got[i], ref[i])
			}
		}
	}
}

// countSession tallies one client's applied seqs, verifying they ascend.
func countSession(t *testing.T, id int, entries []appliedCmd, client int64, want int) {
	t.Helper()
	var last uint64
	n := 0
	for _, e := range entries {
		if e.Cmd.Client != client || e.Cmd.Seq == 0 {
			continue
		}
		if e.Cmd.Seq <= last {
			t.Fatalf("replica %d: client %d seq %d applied after seq %d", id, client, e.Cmd.Seq, last)
		}
		last = e.Cmd.Seq
		n++
	}
	if n != want {
		t.Fatalf("replica %d applied %d ops for client %d, want %d", id, n, client, want)
	}
}

// TestSimSessionDedupUnderDuplicate floods the leader with duplicated
// session'd proposals — the network copies messages and the "client" also
// retransmits every op, including a stale retry of seq 1 at the very end.
// Each op must apply exactly once, in seq order, at every replica.
func TestSimSessionDedupUnderDuplicate(t *testing.T) {
	const n = 3
	const client = 99
	const ops = 5
	delta := 10 * time.Millisecond
	eng, nw, logs := faultGroup(t, 11, simnet.Config{
		N: n, Delta: delta, TS: 400 * time.Millisecond,
		Policy: simnet.Duplicate{Prob: 0.8, MaxExtra: 2},
	}, Config{})
	nw.Start()

	for k := 1; k <= ops; k++ {
		at := time.Duration(k) * 3 * delta
		msg := ClientPropose{Client: client, Seq: uint64(k), Cmd: consensus.Value("op")}
		nw.Inject(at, 1, Leader(), msg)
		nw.Inject(at+delta, 1, Leader(), msg) // client retransmit
	}
	// A stale retry long after seq 5 applied: must be acked, never re-run.
	nw.Inject(30*delta, 1, Leader(), ClientPropose{Client: client, Seq: 1, Cmd: "op"})

	done := eng.RunUntil(func() bool {
		for _, l := range logs {
			if len(l.snapshot()) < ops {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !done {
		t.Fatalf("log did not apply everywhere: %d/%d/%d entries",
			len(logs[0].snapshot()), len(logs[1].snapshot()), len(logs[2].snapshot()))
	}
	// Let late duplicates drain, then re-check nothing re-applied.
	eng.Run(eng.Now() + 50*delta)

	for id, l := range logs {
		entries := l.snapshot()
		assertExactlyOnce(t, id, entries)
		countSession(t, id, entries, client, ops)
	}
	assertSameLog(t, logs)
}

// TestSimPipelinedGapFillUnderReorder bursts ops from many sessions through
// a small-batch, deep-pipeline leader while the network jitters delivery by
// up to 4δ. Slots decide out of order; the apply path must hold entries
// until the log is contiguous and then apply in slot order on every replica.
func TestSimPipelinedGapFillUnderReorder(t *testing.T) {
	const n = 3
	const nclients = 10
	delta := 10 * time.Millisecond
	eng, nw, logs := faultGroup(t, 23, simnet.Config{
		N: n, Delta: delta, TS: 600 * time.Millisecond,
		Policy: simnet.Reorder{Jitter: 4 * delta},
	}, Config{MaxBatch: 2, MaxInFlight: 4})
	nw.Start()

	for c := 0; c < nclients; c++ {
		msg := ClientPropose{Client: int64(100 + c), Seq: 1, Cmd: consensus.Value("op")}
		at := 2*delta + time.Duration(c)*200*time.Microsecond
		nw.Inject(at, 1, Leader(), msg)
		nw.Inject(at+delta, 1, Leader(), msg) // retransmit under jitter
	}

	done := eng.RunUntil(func() bool {
		for _, l := range logs {
			if len(l.snapshot()) < nclients {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !done {
		t.Fatalf("log did not apply everywhere: %d/%d/%d entries",
			len(logs[0].snapshot()), len(logs[1].snapshot()), len(logs[2].snapshot()))
	}
	eng.Run(eng.Now() + 50*delta)

	slots := make(map[int64]bool)
	for id, l := range logs {
		entries := l.snapshot()
		assertExactlyOnce(t, id, entries)
		if len(entries) != nclients {
			t.Fatalf("replica %d applied %d entries, want %d", id, len(entries), nclients)
		}
		for _, e := range entries {
			slots[e.Slot] = true
		}
	}
	assertSameLog(t, logs)
	// Pipelining evidence: the burst spread across several slots.
	if len(slots) < 3 {
		t.Fatalf("burst used %d slots — pipeline did not engage", len(slots))
	}
}

// TestSimLeaderCrashMidBatch crashes the leader with committed, in-flight,
// and queued commands outstanding, restarts it, and replays the whole
// session as client retries. Every op must survive exactly once: committed
// ones via the persisted log plus dedup, lost ones via the retry.
func TestSimLeaderCrashMidBatch(t *testing.T) {
	const n = 3
	const client = 50
	const ops = 6
	delta := 10 * time.Millisecond
	eng, nw, logs := faultGroup(t, 7, simnet.Config{
		N: n, Delta: delta, TS: 0,
	}, Config{MaxBatch: 4, MaxInFlight: 2})
	nw.Start()

	// First half of the session lands before the crash; by 8δ slot 0 has
	// applied and a follow-up batch is in flight.
	for k := 1; k <= 3; k++ {
		nw.Inject(time.Duration(k)*3*delta, 1, Leader(),
			ClientPropose{Client: client, Seq: uint64(k), Cmd: consensus.Value("op")})
	}
	nw.CrashAt(0, 8*delta)
	nw.RestartAt(0, 13*delta)
	// The client times out and replays the full session in order.
	for k := 1; k <= ops; k++ {
		nw.Inject(20*delta+time.Duration(k-1)*3*delta, 1, Leader(),
			ClientPropose{Client: client, Seq: uint64(k), Cmd: consensus.Value("op")})
	}

	done := eng.RunUntil(func() bool {
		for _, l := range logs {
			got := 0
			for _, e := range l.snapshot() {
				if e.Cmd.Client == client {
					got++
				}
			}
			if got < ops {
				return false
			}
		}
		return true
	}, 120*time.Second)
	if !done {
		t.Fatalf("session incomplete after crash: %d/%d/%d entries",
			len(logs[0].snapshot()), len(logs[1].snapshot()), len(logs[2].snapshot()))
	}
	eng.Run(eng.Now() + 50*delta)

	for id, l := range logs {
		entries := l.snapshot()
		assertExactlyOnce(t, id, entries)
		countSession(t, id, entries, client, ops)
	}
	assertSameLog(t, logs)
}

// TestSimFollowerCatchUpAfterRetirement crashes a follower, commits ops
// while it is down (the other replicas apply and retire those instances, so
// no decision gossip remains), and restarts it. The Learn protocol — not
// instance traffic — must deliver the missed decisions.
func TestSimFollowerCatchUpAfterRetirement(t *testing.T) {
	const n = 3
	delta := 10 * time.Millisecond
	eng, nw, logs := faultGroup(t, 5, simnet.Config{
		N: n, Delta: delta, TS: 0,
	}, Config{})
	nw.Start()

	nw.CrashAt(2, delta)
	for k := 1; k <= 3; k++ {
		nw.Inject(time.Duration(k+2)*3*delta, 1, Leader(),
			ClientPropose{Client: 7, Seq: uint64(k), Cmd: consensus.Value("op")})
	}
	// Let the survivors decide, apply, and retire the slots, then bring the
	// follower back.
	nw.RestartAt(2, 40*delta)

	done := eng.RunUntil(func() bool {
		return len(logs[2].snapshot()) >= 3
	}, 60*time.Second)
	if !done {
		t.Fatalf("restarted follower applied %d entries, want 3 (survivors: %d/%d)",
			len(logs[2].snapshot()), len(logs[0].snapshot()), len(logs[1].snapshot()))
	}
	eng.Run(eng.Now() + 30*delta)

	for id, l := range logs {
		assertExactlyOnce(t, id, l.snapshot())
		countSession(t, id, l.snapshot(), 7, 3)
	}
	assertSameLog(t, logs)
}

// TestSimEvictedSessionsStillDedup squeezes the in-memory session table down
// to 2 entries while 6 clients commit ops, then replays stale duplicates for
// the earliest clients — whose sessions have long been evicted to the stable
// store. The spilled records must still dedup: every duplicate is acked from
// its original slot and never re-applied.
func TestSimEvictedSessionsStillDedup(t *testing.T) {
	const n = 3
	const nclients = 6
	delta := 10 * time.Millisecond
	eng, nw, logs := faultGroup(t, 31, simnet.Config{
		N: n, Delta: delta, TS: 400 * time.Millisecond,
	}, Config{MaxSessions: 2})
	nw.Start()

	// Six clients, one op each, spaced out so they land in distinct slots
	// and the eviction order (oldest applied slot first) is well defined.
	for c := 0; c < nclients; c++ {
		msg := ClientPropose{Client: int64(200 + c), Seq: 1, Cmd: consensus.Value("op")}
		nw.Inject(time.Duration(c+1)*4*delta, 1, Leader(), msg)
	}
	// Stale duplicates for the first four clients — all evicted by the time
	// these arrive (only 2 sessions stay in memory).
	for c := 0; c < 4; c++ {
		msg := ClientPropose{Client: int64(200 + c), Seq: 1, Cmd: consensus.Value("op")}
		nw.Inject(time.Duration(nclients+2)*4*delta+time.Duration(c)*delta, 1, Leader(), msg)
	}

	done := eng.RunUntil(func() bool {
		for _, l := range logs {
			if len(l.snapshot()) < nclients {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !done {
		t.Fatalf("log did not apply everywhere: %d/%d/%d entries",
			len(logs[0].snapshot()), len(logs[1].snapshot()), len(logs[2].snapshot()))
	}
	// Let the duplicates drain, then verify nothing re-applied anywhere.
	eng.Run(eng.Now() + 50*delta)

	for id, l := range logs {
		entries := l.snapshot()
		assertExactlyOnce(t, id, entries)
		for c := 0; c < nclients; c++ {
			countSession(t, id, entries, int64(200+c), 1)
		}
	}
	assertSameLog(t, logs)

	// The leader's in-memory table really is bounded: at most MaxSessions
	// entries survive in memory, the rest answer from the stable store.
	leader := nw.Node(Leader()).Process().(*Replica)
	if got := len(leader.sessions); got > 2 {
		t.Fatalf("leader holds %d sessions in memory, MaxSessions is 2", got)
	}
}
