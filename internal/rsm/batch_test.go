package rsm

import (
	"reflect"
	"testing"

	"repro/internal/core/consensus"
)

func TestBatchRoundTrip(t *testing.T) {
	in := []Command{
		{Client: 7, Seq: 1, Op: "set a 1"},
		{Client: 9, Seq: 300, Op: ""},
		{Client: -1, Seq: 0, Op: "raw bytes with : and , and | inside"},
	}
	out := DecodeBatch(EncodeBatch(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", in, out)
	}
}

func TestBatchSingleEntry(t *testing.T) {
	in := []Command{{Client: 3, Seq: 5, Op: "set k v"}}
	out := DecodeBatch(EncodeBatch(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v", out)
	}
}

func TestDecodeNonBatchValueIsSessionless(t *testing.T) {
	out := DecodeBatch("set color blue")
	want := []Command{{Op: "set color blue"}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestDecodeMalformedFallsBack(t *testing.T) {
	for _, v := range []consensus.Value{
		"b1|garbage",
		"b1|1,2,999:short",
		"b1|1,2:missing-len",
		"b1|x,y,z:abc",
	} {
		out := DecodeBatch(v)
		if len(out) != 1 || out[0].Op != v || out[0].Seq != 0 {
			t.Fatalf("malformed %q decoded to %+v, want single sessionless fallback", v, out)
		}
	}
}

func TestEncodeEmptyBatchIsNotNoOp(t *testing.T) {
	// An empty batch still encodes to a non-NoOp value (slots proposed with
	// it would apply zero commands, not be skipped as recovery NoOps).
	if v := EncodeBatch(nil); v == NoOp {
		t.Fatal("empty batch encoded as NoOp")
	}
	if out := DecodeBatch(EncodeBatch(nil)); len(out) != 0 {
		t.Fatalf("empty batch decoded to %+v", out)
	}
}
