package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/live"
)

const delta = 20 * time.Millisecond

func newGroup(t *testing.T, n int, transport live.Transport) (*live.Cluster, *Client) {
	t.Helper()
	factory, err := New(Config{Paxos: modpaxos.Config{Delta: delta}})
	if err != nil {
		t.Fatal(err)
	}
	proposals := make([]consensus.Value, n)
	cluster, err := live.NewCluster(live.Config{N: n, Delta: delta, Transport: transport}, factory, proposals)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport
	if tr == nil {
		t.Fatal("transport required")
	}
	client := NewClient(consensus.ProcessID(n), tr)
	client.SetTimeout(10 * time.Second)
	t.Cleanup(func() { _ = cluster.Stop() })
	cluster.Start()
	return cluster, client
}

func TestCommitAndReadBack(t *testing.T) {
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: delta})
	_, client := newGroup(t, 3, transport)

	slot, err := client.Propose("set color blue")
	if err != nil {
		t.Fatal(err)
	}
	if slot != 0 {
		t.Fatalf("first command in slot %d, want 0", slot)
	}
	for replica := consensus.ProcessID(0); replica < 3; replica++ {
		v, found, err := client.Get(replica, "color", slot+1)
		if err != nil {
			t.Fatalf("replica %d: %v", replica, err)
		}
		if !found || v != "blue" {
			t.Fatalf("replica %d: got (%q,%v), want (blue,true)", replica, v, found)
		}
	}
}

func TestSequentialCommandsApplyInOrder(t *testing.T) {
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: delta / 2})
	_, client := newGroup(t, 3, transport)

	var lastSlot int64
	for i := 0; i < 5; i++ {
		slot, err := client.Propose(consensus.Value(fmt.Sprintf("set k%d v%d", i, i)))
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if slot != int64(i) {
			t.Fatalf("command %d landed in slot %d", i, slot)
		}
		lastSlot = slot
	}
	// Overwrites apply in slot order.
	if _, err := client.Propose("set k0 final"); err != nil {
		t.Fatal(err)
	}
	lastSlot++
	for replica := consensus.ProcessID(0); replica < 3; replica++ {
		v, found, err := client.Get(replica, "k0", lastSlot+1)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != "final" {
			t.Fatalf("replica %d: k0=(%q,%v), want final", replica, v, found)
		}
	}
}

func TestCommitLatencyIsThreeDelaysStable(t *testing.T) {
	// The §4 stable-case claim, live: with phase 1 pre-executed, a commit
	// takes ~3 message delays. We allow generous scheduling slack but it
	// must be well below a full unprepared ballot (≥ 5 delays + session
	// timers).
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: delta})
	_, client := newGroup(t, 5, transport)

	// Warm up one command (creates instances lazily).
	if _, err := client.Propose("set warm up"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Propose("set fast path"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 8*delta {
		t.Errorf("stable-path commit took %v (%.1fδ), want ≈3δ", elapsed, float64(elapsed)/float64(delta))
	}
}

func TestRedirectFromFollower(t *testing.T) {
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: delta})
	_, client := newGroup(t, 3, transport)

	// Manually poke a follower; the client logic must follow the
	// redirect transparently (exercised by proposing through the normal
	// API after nudging the leader pointer).
	transport.Send(client.id, 2, ClientPropose{Cmd: "set x 1"})
	if _, err := client.Propose("set y 2"); err != nil {
		t.Fatal(err)
	}
	v, found, err := client.Get(0, "y", 0)
	if err != nil || !found || v != "2" {
		t.Fatalf("y = (%q,%v,%v), want 2", v, found, err)
	}
}

func TestLeaderRestartRecoversLog(t *testing.T) {
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: delta / 2})
	cluster, client := newGroup(t, 3, transport)

	if _, err := client.Propose("set a 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Propose("set b 2"); err != nil {
		t.Fatal(err)
	}
	cluster.Crash(0)
	time.Sleep(50 * time.Millisecond)
	cluster.Restart(0)

	// The restarted leader recovers its decided log from stable storage
	// and serves reads.
	v, found, err := client.Get(0, "a", 2)
	if err != nil || !found || v != "1" {
		t.Fatalf("after restart a = (%q,%v,%v), want 1", v, found, err)
	}
	// And accepts new proposals in fresh slots.
	slot, err := client.Propose("set c 3")
	if err != nil {
		t.Fatal(err)
	}
	if slot < 2 {
		t.Fatalf("post-restart command reused slot %d", slot)
	}
}

func TestRSMOverTCP(t *testing.T) {
	RegisterMessages()
	ids := []consensus.ProcessID{0, 1, 2, 3} // 3 replicas + 1 client
	transport, err := live.NewTCPTransport(ids)
	if err != nil {
		t.Fatal(err)
	}
	_, client := newGroup(t, 3, transport)
	if _, err := client.Propose("set net tcp"); err != nil {
		t.Fatal(err)
	}
	v, found, err := client.Get(1, "net", 1)
	if err != nil || !found || v != "tcp" {
		t.Fatalf("net = (%q,%v,%v), want tcp", v, found, err)
	}
}

func TestKVStoreApply(t *testing.T) {
	kv := NewKVStore()
	kv.Apply(0, "set a 1")
	kv.Apply(1, "not-a-set-command")
	kv.Apply(2, "set a 2")
	if v, ok := kv.Get("a"); !ok || v != "2" {
		t.Fatalf("a = (%q,%v), want 2", v, ok)
	}
	if _, ok := kv.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if log := kv.Log(); len(log) != 3 || log[1] != "not-a-set-command" {
		t.Fatalf("log = %v", log)
	}
}

func TestPrefixStoreIsolation(t *testing.T) {
	factory, err := New(Config{Paxos: modpaxos.Config{Delta: delta}})
	if err != nil {
		t.Fatal(err)
	}
	_ = factory
	// Direct prefixStore behaviour is covered through the storage tests;
	// here check namespacing via two slots of one replica group after a
	// couple of commits.
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: delta / 2})
	_, client := newGroup(t, 3, transport)
	if _, err := client.Propose("set p 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Propose("set q 2"); err != nil {
		t.Fatal(err)
	}
	v1, _, err := client.Get(0, "p", 2)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := client.Get(0, "q", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != "1" || v2 != "2" {
		t.Fatalf("p=%q q=%q, want 1/2", v1, v2)
	}
}
