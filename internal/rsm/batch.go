package rsm

import (
	"strconv"
	"strings"

	"repro/internal/core/consensus"
)

// Command is one client operation inside a batched slot value. Client and
// Seq form the session identity used for exactly-once deduplication at
// apply time: Seq is 1-based and monotonic per client, and Seq == 0 marks a
// sessionless command (legacy injection paths) that is applied
// unconditionally.
type Command struct {
	Client int64
	Seq    uint64
	Op     consensus.Value
}

// batchPrefix versions the on-wire batch encoding. A decided value without
// it is treated as a single sessionless command, so raw values injected by
// tests (or decided by recovery ballots of older logs) still apply.
const batchPrefix = "b1|"

// EncodeBatch packs commands into one consensus value. The encoding is
// length-prefixed per entry ("client,seq,oplen:op"), so ops may contain any
// bytes including the separator.
func EncodeBatch(cmds []Command) consensus.Value {
	var b strings.Builder
	b.WriteString(batchPrefix)
	for _, c := range cmds {
		b.WriteString(strconv.FormatInt(c.Client, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(c.Seq, 10))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(len(c.Op)))
		b.WriteByte(':')
		b.WriteString(string(c.Op))
	}
	return consensus.Value(b.String())
}

// DecodeBatch unpacks a slot value into its commands. Non-batch values
// (including anything malformed) decode as a single sessionless command, so
// every decided non-NoOp value applies exactly once somehow.
func DecodeBatch(v consensus.Value) []Command {
	s := string(v)
	if !strings.HasPrefix(s, batchPrefix) {
		return []Command{{Op: v}}
	}
	rest := s[len(batchPrefix):]
	var out []Command
	for len(rest) > 0 {
		head, tail, ok := strings.Cut(rest, ":")
		if !ok {
			return []Command{{Op: v}}
		}
		parts := strings.SplitN(head, ",", 3)
		if len(parts) != 3 {
			return []Command{{Op: v}}
		}
		client, err1 := strconv.ParseInt(parts[0], 10, 64)
		seq, err2 := strconv.ParseUint(parts[1], 10, 64)
		opLen, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || opLen < 0 || opLen > len(tail) {
			return []Command{{Op: v}}
		}
		out = append(out, Command{Client: client, Seq: seq, Op: consensus.Value(tail[:opLen])})
		rest = tail[opLen:]
	}
	return out
}
