package rsm

// Leader failover. The distinguished proposer is no longer hard-wired to
// replica 0: leadership is numbered by an epoch, and the leader of epoch e
// is replica e mod n. Epoch 0 therefore keeps the PR 7 behavior (replica 0
// leads), and with Config.FailoverTimeout zero the machinery is inert — no
// heartbeats, no timers, byte-identical schedules to the static-leader
// code.
//
// With failover enabled, the leader broadcasts a Beat every HeartbeatEvery
// as a liveness signal, an epoch announcement, and a maxSeen gossip.
// Followers treat leader silence as a crash: each follower waits
// FailoverTimeout times its distance to the next epoch it owns (so
// candidates are staggered and the closest one moves first), then adopts
// that epoch and takes over. Takeover reuses the recovery machinery the
// slot instances already have: the new leader opens an instance for every
// undecided slot below the frontier, and modpaxos's phase 1 either learns
// a batch the crashed leader got accepted (re-proposing it in phase 2) or
// closes the slot as NoOp, in which case the clients' retries re-propose
// through the new leader and session dedup keeps them exactly-once.
//
// Two leaders can briefly coexist (a deposed leader that has not yet heard
// the higher epoch); that is safe — slots are still decided by Paxos — and
// resolves as soon as any message carries the higher epoch: Redirects are
// epoch-stamped so clients ignore stale ones, and a Beat from a stale
// epoch is answered with the current one to depose the sender.

import (
	"time"

	"repro/internal/core/consensus"
	"repro/internal/leader"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Beat is the leader's periodic liveness broadcast: it announces the
// leader's epoch (stale leaders adopt it and step down) and its maxSeen
// frontier (followers learn how far the log extends without waiting for
// slot traffic).
type Beat struct {
	Epoch   int64
	MaxSeen int64
}

// Type implements consensus.Message.
func (Beat) Type() string { return "rsm-beat" }

// failoverOn reports whether epoch-based failover is enabled; when off the
// leader is statically replica 0 and no failover state exists.
func (r *Replica) failoverOn() bool { return r.cfg.FailoverTimeout > 0 }

// leaderID returns the current leader: the owner of the highest adopted
// epoch, or the static distinguished proposer when failover is off.
func (r *Replica) leaderID() consensus.ProcessID {
	if !r.failoverOn() || r.n == 0 {
		return Leader()
	}
	return consensus.ProcessID(r.epoch % int64(r.n))
}

// initFailover restores the persisted epoch and starts the replica in its
// role: the leader begins beating, followers arm the failover timer.
func (r *Replica) initFailover() {
	if !r.failoverOn() {
		return
	}
	var e int64
	if ok, err := r.env.Store().Get(storage.KeyRSMEpoch, &e); err == nil && ok && e > r.epoch {
		r.epoch = e
	}
	r.lastLeaderSeen = r.env.Now()
	if r.id == r.leaderID() {
		r.becomeLeader()
	} else {
		r.armFailover()
	}
}

// promotionDistance is how many epochs ahead this replica's next own epoch
// lies: 1 for the follower right after the current leader, up to n for the
// leader itself. It staggers self-promotion so the nearest candidate acts
// one FailoverTimeout before the next.
func (r *Replica) promotionDistance() int64 {
	n := int64(r.n)
	d := ((int64(r.id)-r.epoch)%n + n) % n
	if d == 0 {
		d = n
	}
	return d
}

// failoverWindow is how long this follower tolerates leader silence before
// promoting itself.
func (r *Replica) failoverWindow() time.Duration {
	return time.Duration(r.promotionDistance()) * r.cfg.FailoverTimeout
}

// armFailover starts the silence watchdog; no-op for the leader or when
// already armed (the deadline check on expiry extends a refreshed window).
func (r *Replica) armFailover() {
	if !r.failoverOn() || r.failoverArmed || r.id == r.leaderID() {
		return
	}
	r.failoverArmed = true
	r.env.SetTimer(failoverTimer, r.failoverWindow())
}

// noteLeaderAlive records a sign of life from the current leader, pushing
// the failover deadline out.
func (r *Replica) noteLeaderAlive() {
	r.lastLeaderSeen = r.env.Now()
	r.armFailover()
}

// onFailoverTimer fires when the silence window may have elapsed: if the
// leader has been heard since arming, re-arm for the remainder; otherwise
// adopt the next epoch this replica owns and take over.
func (r *Replica) onFailoverTimer() {
	r.failoverArmed = false
	if !r.failoverOn() || r.id == r.leaderID() {
		return
	}
	deadline := r.lastLeaderSeen + r.failoverWindow()
	if now := r.env.Now(); now < deadline {
		r.failoverArmed = true
		r.env.SetTimer(failoverTimer, deadline-now)
		return
	}
	r.adoptEpoch(r.epoch + r.promotionDistance())
}

// adoptEpoch moves to a higher epoch, persisting it and switching this
// replica's role to match the new epoch's owner.
func (r *Replica) adoptEpoch(e int64) {
	if !r.failoverOn() || e <= r.epoch {
		return
	}
	wasLeader := r.id == r.leaderID()
	r.epoch = e
	if err := r.env.Store().Put(storage.KeyRSMEpoch, e); err != nil {
		r.env.Logf("rsm: persist epoch: %v", err)
	}
	r.env.Emit("rsm-epoch", e)
	if r.id == r.leaderID() {
		r.becomeLeader()
		return
	}
	if wasLeader {
		// Deposed: stop beating and hand queued commands to the new
		// leader. In-flight slots keep running — their decisions either
		// ack waiters as usual or re-queue via the stolen-slot path, and
		// tryFlush forwards the re-queued batch instead of proposing.
		r.env.CancelTimer(beatTimer)
		r.forwardQueue()
	}
	r.lastLeaderSeen = r.env.Now()
	r.armFailover()
}

// becomeLeader takes over proposing: bump the slot counter past everything
// known, drive every undecided slot below the frontier to a decision (the
// in-flight-batch re-proposal path), and start heartbeating.
func (r *Replica) becomeLeader() {
	r.env.CancelTimer(failoverTimer)
	r.failoverArmed = false
	if r.nextSlot <= r.maxSeen {
		// Never reuse a slot a previous leader may have filled.
		r.nextSlot = r.maxSeen + 1
		if err := r.env.Store().Put(storage.KeyRSMNext, r.nextSlot); err != nil {
			r.env.Logf("rsm: persist next: %v", err)
		}
	}
	repairing := false
	for slot := r.applied; slot < r.nextSlot; slot++ {
		if _, ok := r.decisions[slot]; !ok {
			// Phase 1 of the instance's recovery ballot reports any batch
			// the crashed leader got accepted and phase 2 re-proposes it;
			// otherwise the slot closes as NoOp and client retries
			// re-propose the commands through us.
			r.claimSlot(r.instance(slot, NoOp))
			repairing = true
		}
	}
	if repairing && !r.repairing {
		r.repairing = true
		r.repairTarget = r.nextSlot
		// The recovery window opens when the old leader was last heard,
		// not at promotion: the silence window is part of the downtime.
		r.failoverFrom = r.lastLeaderSeen
		r.replicaSpan(trace.SpanRSMFailover, true, r.epoch)
	}
	r.sendBeat()
	r.env.SetTimer(beatTimer, r.cfg.HeartbeatEvery)
	r.tryFlush(false)
}

// finishRepair closes the failover span once the promoted leader has
// applied every slot it set out to repair.
func (r *Replica) finishRepair() {
	if !r.repairing || r.applied < r.repairTarget {
		return
	}
	r.repairing = false
	if d := r.env.Now() - r.failoverFrom; d >= 0 {
		consensus.ObserveDuration(r.env, trace.HistFailoverLatency, d)
	}
	r.replicaSpan(trace.SpanRSMFailover, false, r.epoch)
}

// slotClaimer is the modpaxos hook that lets a failed-over leader open a
// slot with a ballot it owns instead of waiting out the crashed prepared
// owner's session timer.
type slotClaimer interface{ Claim(session int64) }

// claimSlot gives a post-failover leader's instance a dominating ballot so
// its proposals move as fast as the prepared epoch-0 path (one extra
// phase-1 round trip, no σ wait, no NoOp duels with follower recovery).
// Epoch 0 keeps the untouched prepared fast path.
func (r *Replica) claimSlot(st *slotState) {
	if !r.failoverOn() || r.epoch == 0 || r.id != r.leaderID() {
		return
	}
	if c, ok := st.proc.(slotClaimer); ok {
		// Session e+1 dominates every ballot epochs < e could have used
		// (epoch 0 proposed in the prepared session 1).
		c.Claim(r.epoch + 1)
	}
}

// sendBeat broadcasts the leader's liveness/epoch/frontier announcement.
func (r *Replica) sendBeat() {
	r.env.Broadcast(Beat{Epoch: r.epoch, MaxSeen: r.maxSeen})
}

// onBeatTimer re-broadcasts while this replica still leads.
func (r *Replica) onBeatTimer() {
	if !r.failoverOn() || r.id != r.leaderID() {
		return
	}
	r.sendBeat()
	r.env.SetTimer(beatTimer, r.cfg.HeartbeatEvery)
}

func (r *Replica) onBeat(from consensus.ProcessID, b Beat) {
	if !r.failoverOn() {
		return
	}
	if b.MaxSeen > r.maxSeen {
		r.maxSeen = b.MaxSeen
		r.checkCatchup()
	}
	switch {
	case b.Epoch > r.epoch:
		r.adoptEpoch(b.Epoch)
	case b.Epoch < r.epoch && from != r.id:
		// A stale leader (typically restarted after its crash): depose it
		// by answering with the current epoch.
		r.env.Send(from, Beat{Epoch: r.epoch, MaxSeen: r.maxSeen})
	}
}

// onAnnounce wires the Ω leader oracle in: an announcement for a different
// replica is treated as an epoch hint, jumping to the smallest epoch that
// replica owns. The oracle is advisory — silence-triggered promotion works
// without it — but when installed it re-aims the group in one message
// instead of a staggered timeout cascade.
func (r *Replica) onAnnounce(a leader.Announce) {
	if !r.failoverOn() {
		return
	}
	want := a.Leader
	if want == r.leaderID() || int64(want) >= int64(r.n) || want < 0 {
		return
	}
	n := int64(r.n)
	d := ((int64(want)-r.epoch)%n + n) % n
	if d == 0 {
		d = n
	}
	r.adoptEpoch(r.epoch + d)
}

// forwardQueue hands a deposed leader's queued commands to the current
// leader and redirects their waiters. The forwarded ClientPropose re-enters
// the session-dedup path there, so a command stays exactly-once even when
// the client's own retry races the forward.
func (r *Replica) forwardQueue() {
	lead := r.leaderID()
	if lead == r.id || len(r.queue) == 0 {
		return
	}
	for _, qc := range r.queue {
		r.env.Send(lead, ClientPropose{Client: qc.cmd.Client, Seq: qc.cmd.Seq, Cmd: qc.cmd.Op})
		if qc.cmd.Seq != 0 {
			delete(r.tracked, sessionKey{qc.cmd.Client, qc.cmd.Seq})
		}
		for _, w := range qc.waiters {
			r.env.Send(w, Redirect{Leader: lead, Epoch: r.epoch})
		}
	}
	r.queue = nil
}

// replicaSpan emits a replica-level span (failover recovery windows).
func (r *Replica) replicaSpan(kind string, begin bool, value int64) {
	if !r.spansOn() {
		return
	}
	if sink, ok := r.env.(consensus.SpanSink); ok {
		sink.Span(kind, begin, value)
	}
}

// Epoch returns the highest adopted leadership epoch (test observability).
func (r *Replica) Epoch() int64 { return r.epoch }

// IsLeader reports whether this replica currently believes it leads (test
// observability).
func (r *Replica) IsLeader() bool { return r.id == r.leaderID() }
