package rsm

// Log compaction. Without it the decision log — in memory and as
// rsmlog/<slot> records in stable storage — grows forever, and a restarted
// replica replays history from slot 0. With Config.SnapshotEvery set, each
// replica independently snapshots its applier image plus the complete
// session table every SnapshotEvery applied slots, then truncates
// everything below the snapshot horizon: decision records, retired
// instances' slot<N>/ namespaces, and the spilled rsm-sess- records the
// snapshot folded in. Restart restores the snapshot and replays only the
// log above the horizon; a replica that fell behind the horizon catches up
// via Learn, which ships the snapshot instead of slot records the peer no
// longer has.

import (
	"bytes"
	"encoding/gob"
	"strconv"
	"strings"

	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// Snapshot is the durable compaction record: everything below Applied,
// folded. Sessions is the complete dedup table at the horizon (in-memory
// entries plus every spilled rsm-sess- record), so installing a snapshot
// preserves exactly-once semantics for clients whose commands were
// compacted away.
type Snapshot struct {
	// Applied is the horizon: the number of contiguous slots folded in.
	Applied int64
	// Sessions is the full client dedup table at the horizon.
	Sessions map[int64]Session
	// State is the applier's image (HasState false when the applier does
	// not implement Snapshotter — replay semantics then restart fresh at
	// the horizon, which the rsmbench recorder relies on).
	State    []byte
	HasState bool
}

// SnapshotMsg ships a snapshot to a replica whose Learn request fell below
// the sender's compaction horizon.
type SnapshotMsg struct {
	Snap Snapshot
}

// Type implements consensus.Message.
func (SnapshotMsg) Type() string { return "rsm-snapshot" }

// Snapshotter is optionally implemented by Appliers that can serialize
// their state; the built-in KVStore implements it. Appliers without it
// still benefit from log truncation, but a snapshot install cannot restore
// their pre-horizon state.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// maybeSnapshot writes a snapshot once enough new slots have applied since
// the last horizon.
func (r *Replica) maybeSnapshot() {
	if r.cfg.SnapshotEvery <= 0 || r.applied < r.snapBase+r.cfg.SnapshotEvery {
		return
	}
	r.writeSnapshot()
}

// writeSnapshot folds the current state into a Snapshot, persists it, and
// truncates everything below the new horizon.
func (r *Replica) writeSnapshot() {
	keys, err := r.env.Store().Keys()
	if err != nil {
		r.env.Logf("rsm: snapshot: list keys: %v", err)
		return
	}
	snap := Snapshot{Applied: r.applied, Sessions: make(map[int64]Session, len(r.sessions))}
	for c, s := range r.sessions {
		snap.Sessions[c] = s
	}
	// Fold the spilled session records in; they are deleted below once the
	// snapshot is durable.
	var spilled []string
	for _, k := range keys {
		if !strings.HasPrefix(k, sessKeyPrefix) {
			continue
		}
		spilled = append(spilled, k)
		client, err := strconv.ParseInt(k[len(sessKeyPrefix):], 10, 64)
		if err != nil {
			continue
		}
		if _, ok := snap.Sessions[client]; ok {
			continue // the in-memory entry is at least as new
		}
		var s Session
		if ok, err := r.env.Store().Get(k, &s); err == nil && ok {
			snap.Sessions[client] = s
		}
	}
	if sn, ok := r.applier.(Snapshotter); ok {
		r.mu.Lock()
		img, err := sn.Snapshot()
		r.mu.Unlock()
		if err != nil {
			r.env.Logf("rsm: snapshot applier: %v", err)
			return
		}
		snap.State, snap.HasState = img, true
	}
	if err := r.env.Store().Put(storage.KeyRSMSnapshot, snap); err != nil {
		r.env.Logf("rsm: persist snapshot: %v", err)
		return
	}
	// The snapshot now owns everything below the horizon.
	for _, k := range spilled {
		if err := r.env.Store().Delete(k); err != nil {
			r.env.Logf("rsm: snapshot: drop %s: %v", k, err)
		}
	}
	r.truncateBelow(snap.Applied, keys)
	r.snapBase = snap.Applied
	r.env.Emit("rsm-snapshot", snap.Applied)
}

// truncateBelow drops decision records and retired instances' namespaced
// protocol state for every slot below the horizon, in memory and in the
// store. keys is a Keys() listing taken by the caller.
func (r *Replica) truncateBelow(horizon int64, keys []string) {
	for slot := range r.decisions {
		if slot < horizon {
			delete(r.decisions, slot)
			delete(r.decidedAt, slot)
		}
	}
	for _, k := range keys {
		if slot, ok := slotOfKey(k); ok && slot < horizon {
			if err := r.env.Store().Delete(k); err != nil {
				r.env.Logf("rsm: truncate %s: %v", k, err)
			}
		}
	}
}

// slotOfKey extracts the slot a store key belongs to: a decision record
// ("rsmlog/<slot>") or an instance namespace ("slot<N>/...").
func slotOfKey(k string) (int64, bool) {
	if strings.HasPrefix(k, slotKeyPrefix) {
		s, err := strconv.ParseInt(k[len(slotKeyPrefix):], 10, 64)
		return s, err == nil
	}
	if strings.HasPrefix(k, slotNamespace) {
		rest := k[len(slotNamespace):]
		if i := strings.IndexByte(rest, '/'); i > 0 {
			s, err := strconv.ParseInt(rest[:i], 10, 64)
			return s, err == nil
		}
	}
	return 0, false
}

// onSnapshot installs a shipped snapshot if it is ahead of this replica's
// apply frontier, then keeps learning from the sender above the horizon.
func (r *Replica) onSnapshot(from consensus.ProcessID, msg SnapshotMsg) {
	if msg.Snap.Applied <= r.applied {
		return
	}
	r.installSnapshot(msg.Snap)
	r.env.Send(from, Learn{From: r.applied})
}

// installSnapshot jumps the replica forward to the snapshot horizon:
// restore the applier image and session table, clear the spilled session
// records it replaces, retire and truncate everything below, and persist
// the snapshot locally so a restart resumes from the horizon.
func (r *Replica) installSnapshot(snap Snapshot) {
	if snap.HasState {
		if sn, ok := r.applier.(Snapshotter); ok {
			r.mu.Lock()
			err := sn.Restore(snap.State)
			r.mu.Unlock()
			if err != nil {
				r.env.Logf("rsm: install snapshot: %v", err)
				return
			}
		}
	}
	r.sessions = make(map[int64]Session, len(snap.Sessions))
	for c, s := range snap.Sessions {
		r.sessions[c] = s
	}
	keys, err := r.env.Store().Keys()
	if err != nil {
		r.env.Logf("rsm: install snapshot: list keys: %v", err)
		keys = nil
	}
	// Spilled records are superseded by the snapshot's folded table.
	for _, k := range keys {
		if strings.HasPrefix(k, sessKeyPrefix) {
			if err := r.env.Store().Delete(k); err != nil {
				r.env.Logf("rsm: install snapshot: drop %s: %v", k, err)
			}
		}
	}
	for len(r.sessions) > r.cfg.MaxSessions {
		r.evictOldestSession()
	}
	for slot := range r.slots {
		if slot < snap.Applied {
			r.retire(slot)
		}
	}
	// Drop proposer bookkeeping for compacted slots (only reachable when a
	// deposed ex-leader fell behind the horizon).
	for slot := range r.pending {
		if slot < snap.Applied {
			delete(r.pending, slot)
			delete(r.proposed, slot)
			delete(r.proposedAt, slot)
			r.inFlight--
		}
	}
	r.applied = snap.Applied
	if snap.Applied-1 > r.maxSeen {
		r.maxSeen = snap.Applied - 1
	}
	if r.nextSlot < snap.Applied {
		r.nextSlot = snap.Applied
		if err := r.env.Store().Put(storage.KeyRSMNext, r.nextSlot); err != nil {
			r.env.Logf("rsm: persist next: %v", err)
		}
	}
	if err := r.env.Store().Put(storage.KeyRSMSnapshot, snap); err != nil {
		r.env.Logf("rsm: persist snapshot: %v", err)
	}
	if keys != nil {
		r.truncateBelow(snap.Applied, keys)
	}
	r.snapBase = snap.Applied
	r.env.Emit("rsm-snapshot-install", snap.Applied)
	// Decisions already held above the horizon may now be contiguous.
	r.applyReady()
}

// kvImage is the KVStore's gob snapshot layout.
type kvImage struct {
	Data map[string]string
	Log  []consensus.Value
}

// Snapshot implements Snapshotter.
func (s *KVStore) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	img := kvImage{Data: s.data, Log: s.log}
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore implements Snapshotter.
func (s *KVStore) Restore(data []byte) error {
	var img kvImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return err
	}
	if img.Data == nil {
		img.Data = make(map[string]string)
	}
	s.data, s.log = img.Data, img.Log
	return nil
}
