package rsm

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/storage"
)

// slotEnv is the slot-scoped view of the replica's environment handed to
// each inner modpaxos instance: messages are wrapped in SlotMsg, timers are
// remapped into the slot's ID block, storage keys are prefixed, and Decide
// feeds the replica's log instead of the outer consensus checker (an RSM
// decides many values, one per slot).
type slotEnv struct {
	replica *Replica
	slot    int64
}

var _ consensus.Environment = (*slotEnv)(nil)

// ID implements consensus.Environment.
func (e *slotEnv) ID() consensus.ProcessID { return e.replica.id }

// N implements consensus.Environment.
func (e *slotEnv) N() int { return e.replica.n }

// Now implements consensus.Environment.
func (e *slotEnv) Now() time.Duration { return e.replica.env.Now() }

// Send implements consensus.Environment.
func (e *slotEnv) Send(to consensus.ProcessID, m consensus.Message) {
	e.replica.env.Send(to, SlotMsg{Slot: e.slot, Inner: m})
}

// Broadcast implements consensus.Environment.
func (e *slotEnv) Broadcast(m consensus.Message) {
	e.replica.env.Broadcast(SlotMsg{Slot: e.slot, Inner: m})
}

// SetTimer implements consensus.Environment. Inner timer IDs must fit the
// slot's block, which starts one block up: block 0 belongs to the replica's
// own serving-path timers (linger, catch-up).
func (e *slotEnv) SetTimer(id consensus.TimerID, d time.Duration) {
	if int64(id) >= timersPerSlot {
		panic(fmt.Sprintf("rsm: inner timer id %d exceeds block size %d", id, timersPerSlot))
	}
	e.replica.env.SetTimer(consensus.TimerID((e.slot+1)*timersPerSlot+int64(id)), d)
}

// CancelTimer implements consensus.Environment.
func (e *slotEnv) CancelTimer(id consensus.TimerID) {
	e.replica.env.CancelTimer(consensus.TimerID((e.slot+1)*timersPerSlot + int64(id)))
}

// Store implements consensus.Environment.
func (e *slotEnv) Store() storage.Store {
	return prefixStore{inner: e.replica.env.Store(), prefix: slotNamespace + fmt.Sprintf("%d/", e.slot)}
}

// Rand implements consensus.Environment.
func (e *slotEnv) Rand() *rand.Rand { return e.replica.env.Rand() }

// Decide implements consensus.Environment: a slot decision goes to the
// replica's log.
func (e *slotEnv) Decide(v consensus.Value) { e.replica.onSlotDecided(e.slot, v) }

// Emit implements consensus.Environment.
func (e *slotEnv) Emit(kind string, value int64) {
	e.replica.env.Emit(fmt.Sprintf("slot%d-%s", e.slot, kind), value)
}

// spanEnabler lets the slot env skip the kind-prefix allocation when spans
// are off (both runtime Nodes implement it).
type spanEnabler interface{ SpansEnabled() bool }

// Span implements consensus.SpanSink when the outer environment does,
// namespacing the kind like Emit so concurrent slots get distinct lanes.
func (e *slotEnv) Span(kind string, begin bool, value int64) {
	sink, ok := e.replica.env.(consensus.SpanSink)
	if !ok {
		return
	}
	if en, ok := e.replica.env.(spanEnabler); ok && !en.SpansEnabled() {
		return
	}
	sink.Span(fmt.Sprintf("slot%d-%s", e.slot, kind), begin, value)
}

// ObserveDuration implements consensus.DurationObserver when the outer
// environment does. Histogram names are not slot-prefixed: slot latencies
// aggregate into one distribution.
func (e *slotEnv) ObserveDuration(name string, d time.Duration) {
	if obs, ok := e.replica.env.(consensus.DurationObserver); ok {
		obs.ObserveDuration(name, d)
	}
}

// Logf implements consensus.Environment.
func (e *slotEnv) Logf(format string, args ...any) {
	e.replica.env.Logf("slot %d: "+format, append([]any{e.slot}, args...)...)
}

// prefixStore namespaces a storage.Store by key prefix so slot instances
// cannot collide.
type prefixStore struct {
	inner  storage.Store
	prefix string
}

var _ storage.Store = prefixStore{}

// Put implements storage.Store. The dynamic prefix is opaque to keylint;
// it is always the registered slot namespace (see slotEnv.Store above).
//
//repro:allow keylint prefix is the registered slot<N>/ namespace, built in slotEnv.Store
func (s prefixStore) Put(key string, value any) error { return s.inner.Put(s.prefix+key, value) }

// Get implements storage.Store.
func (s prefixStore) Get(key string, out any) (bool, error) {
	return s.inner.Get(s.prefix+key, out)
}

// Delete implements storage.Store.
func (s prefixStore) Delete(key string) error { return s.inner.Delete(s.prefix + key) }

// Keys implements storage.Store: only keys in this slot's namespace, with
// the prefix stripped.
func (s prefixStore) Keys() ([]string, error) {
	all, err := s.inner.Keys()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range all {
		if len(k) >= len(s.prefix) && k[:len(s.prefix)] == s.prefix {
			out = append(out, k[len(s.prefix):])
		}
	}
	return out, nil
}
