package rsm

// Fault-injection tests for the robustness layer: epoch-based leader
// failover (a follower self-promotes on leader silence and repairs the
// in-flight slots) and snapshot compaction (the log stays bounded and a
// replica behind the horizon catches up via snapshot install). The
// invariants are the same as the serving-path tests — exactly-once apply in
// slot order, identical logs — plus bounded storage and the recovery
// observability (failover / catch-up latency histograms).

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/trace"
)

// beatBlackout drops every non-Beat message to one replica during a global
// time window: an asymmetric partition that starves the replica of slot
// traffic while the leader's liveness signal still arrives. It leaves a
// deterministic decision gap for the failover repair path to close.
type beatBlackout struct {
	target   consensus.ProcessID
	from, to time.Duration
}

// Fate implements simnet.Policy.
func (b beatBlackout) Fate(tx simnet.Transmission, rng *rand.Rand) simnet.Fate {
	if tx.To == b.target && tx.SentAt >= b.from && tx.SentAt < b.to {
		if _, isBeat := tx.Msg.(Beat); !isBeat {
			return simnet.Fate{Drop: true}
		}
	}
	return simnet.Synchronous{}.Fate(tx, rng)
}

// clientCount tallies one client's entries in an apply log.
func clientCount(entries []appliedCmd, client int64) int {
	n := 0
	for _, e := range entries {
		if e.Cmd.Client == client {
			n++
		}
	}
	return n
}

// TestSimFailoverLeaderCrash crashes the epoch-0 leader with a slot that
// replica 1 never saw decided (a blackout hid the slot traffic, Beats still
// arrived so maxSeen advanced). Replica 1 must self-promote after its
// silence window, repair the gap through the slot's recovery machinery,
// serve the client's replayed session exactly-once, and record the failover
// latency. The old leader restarts later, is deposed by the higher epoch,
// and converges to the same log.
func TestSimFailoverLeaderCrash(t *testing.T) {
	const n = 3
	const client = 60
	const ops = 4
	delta := 10 * time.Millisecond
	collector := trace.NewCollector()
	collector.EnableHistograms()
	eng, nw, logs := faultGroup(t, 31, simnet.Config{
		N: n, Delta: delta, TS: 22 * delta, Collector: collector,
		Policy: beatBlackout{target: 1, from: 6 * delta, to: 20 * delta},
	}, Config{MaxBatch: 2, MaxInFlight: 2, FailoverTimeout: 8 * delta})
	nw.Start()

	// Seq 1 decides everywhere before the blackout; seq 2 decides on 0 and
	// 2 during it (replica 1 only learns the slot exists, via Beat gossip);
	// seq 3 is sent to a dead leader and lost.
	nw.Inject(3*delta, 1, Leader(), ClientPropose{Client: client, Seq: 1, Cmd: consensus.Value("op")})
	nw.Inject(13*delta/2, 1, Leader(), ClientPropose{Client: client, Seq: 2, Cmd: consensus.Value("op")})
	nw.CrashAt(0, 21*delta/2)
	nw.Inject(11*delta, 1, Leader(), ClientPropose{Client: client, Seq: 3, Cmd: consensus.Value("op")})

	// The client treats the silence as a failover trigger and replays the
	// whole session at the next replica; dedup keeps it exactly-once.
	for k := 1; k <= ops; k++ {
		nw.Inject(26*delta+time.Duration(k)*3*delta, 2, 1,
			ClientPropose{Client: client, Seq: uint64(k), Cmd: consensus.Value("op")})
	}
	// The deposed leader comes back late: it must adopt the higher epoch,
	// step down, and learn the slots it missed.
	nw.RestartAt(0, 45*delta)

	done := eng.RunUntil(func() bool {
		return clientCount(logs[1].snapshot(), client) >= ops &&
			clientCount(logs[2].snapshot(), client) >= ops
	}, 60*time.Second)
	if !done {
		t.Fatalf("survivors did not apply the session: %d/%d ops",
			clientCount(logs[1].snapshot(), client), clientCount(logs[2].snapshot(), client))
	}
	eng.Run(eng.Now() + 60*delta)

	r1 := nw.Node(1).Process().(*Replica)
	if !r1.IsLeader() || r1.Epoch() != 1 {
		t.Fatalf("replica 1 should lead epoch 1, got leader=%v epoch=%d", r1.IsLeader(), r1.Epoch())
	}
	r0 := nw.Node(0).Process().(*Replica)
	if r0.IsLeader() {
		t.Fatalf("restarted replica 0 was not deposed (epoch %d)", r0.Epoch())
	}
	if r0.Epoch() < 1 {
		t.Fatalf("restarted replica 0 never adopted the new epoch: %d", r0.Epoch())
	}
	for id, l := range logs {
		entries := l.snapshot()
		assertExactlyOnce(t, id, entries)
		countSession(t, id, entries, client, ops)
	}
	assertSameLog(t, logs)
	hist, ok := collector.HistogramCopy(trace.HistFailoverLatency)
	if !ok || hist.Count() < 1 {
		t.Fatalf("failover latency histogram missing (recorded=%v)", ok)
	}
}

// TestSimSnapshotCompactionBoundsLog runs a workload long enough for three
// snapshot horizons, with a session table too small for the client set (so
// sessions spill to storage and must be folded into snapshots). The slot
// records must stay bounded, a crash-restarted leader must resume from its
// snapshot, and stale duplicates of compacted commands must still dedup —
// their session state survives only inside the snapshot.
func TestSimSnapshotCompactionBoundsLog(t *testing.T) {
	const n = 3
	const nclients = 3
	const perClient = 4
	delta := 10 * time.Millisecond
	eng, nw, logs := faultGroup(t, 17, simnet.Config{
		N: n, Delta: delta, TS: 0,
	}, Config{MaxBatch: 1, SnapshotEvery: 4, MaxSessions: 2})
	nw.Start()

	for m := 0; m < nclients*perClient; m++ {
		nw.Inject(time.Duration(3+3*m)*delta, 1, Leader(), ClientPropose{
			Client: int64(70 + m%nclients), Seq: uint64(1 + m/nclients), Cmd: consensus.Value("op"),
		})
	}
	total := nclients * perClient
	done := eng.RunUntil(func() bool {
		for _, l := range logs {
			if len(l.snapshot()) < total {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !done {
		t.Fatalf("workload did not apply everywhere: %d/%d/%d entries",
			len(logs[0].snapshot()), len(logs[1].snapshot()), len(logs[2].snapshot()))
	}
	for id := 0; id < n; id++ {
		entries := logs[id].snapshot()
		assertExactlyOnce(t, id, entries)
		for c := 0; c < nclients; c++ {
			countSession(t, id, entries, int64(70+c), perClient)
		}
	}

	// Restart the leader from its snapshot, then replay stale duplicates of
	// the earliest (long-compacted) commands.
	nw.CrashAt(0, 44*delta)
	nw.RestartAt(0, 48*delta)
	for c := 0; c < nclients; c++ {
		nw.Inject(time.Duration(54+c)*delta, 1, Leader(),
			ClientPropose{Client: int64(70 + c), Seq: 1, Cmd: consensus.Value("op")})
	}
	eng.Run(eng.Now() + 60*delta)

	for id := 0; id < n; id++ {
		keys, err := nw.Node(consensus.ProcessID(id)).Store().Keys()
		if err != nil {
			t.Fatal(err)
		}
		slotRecords := 0
		for _, k := range keys {
			if len(k) >= len(storage.KeyRSMLogPrefix) && k[:len(storage.KeyRSMLogPrefix)] == storage.KeyRSMLogPrefix {
				slotRecords++
			}
		}
		if slotRecords > 2*4 {
			t.Fatalf("replica %d keeps %d slot records after compaction (every 4)", id, slotRecords)
		}
		var snap Snapshot
		if ok, err := nw.Node(consensus.ProcessID(id)).Store().Get(storage.KeyRSMSnapshot, &snap); err != nil || !ok {
			t.Fatalf("replica %d has no snapshot record (ok=%v err=%v)", id, ok, err)
		} else if snap.Applied < 8 {
			t.Fatalf("replica %d snapshot horizon %d, want >= 8", id, snap.Applied)
		}
	}
	r0 := nw.Node(0).Process().(*Replica)
	if r0.snapBase < 8 {
		t.Fatalf("restarted leader resumed with horizon %d, want >= 8", r0.snapBase)
	}
	// The restarted leader replays only above the horizon: the duplicates
	// must be deduplicated by the snapshot's folded session table, never
	// re-applied — here or on the survivors.
	for _, e := range logs[0].snapshot() {
		if e.Cmd.Seq == 1 {
			t.Fatalf("compacted command re-applied after restart: %+v", e)
		}
	}
	for id := 1; id < n; id++ {
		entries := logs[id].snapshot()
		assertExactlyOnce(t, id, entries)
		for c := 0; c < nclients; c++ {
			countSession(t, id, entries, int64(70+c), perClient)
		}
	}
}

// TestSimCatchUpViaSnapshot crashes a follower early, commits an entire
// workload past the compaction horizon (the survivors truncate every slot
// record the follower is missing), and restarts it. The follower can no
// longer replay the log — it must install a shipped snapshot, land exactly
// at the group's frontier, and record its catch-up latency.
func TestSimCatchUpViaSnapshot(t *testing.T) {
	const n = 3
	const client = 80
	const ops = 12
	delta := 10 * time.Millisecond
	collector := trace.NewCollector()
	collector.EnableHistograms()
	eng, nw, logs := faultGroup(t, 13, simnet.Config{
		N: n, Delta: delta, TS: 0, Collector: collector,
	}, Config{MaxBatch: 1, SnapshotEvery: 4})
	nw.Start()

	for k := 1; k <= ops; k++ {
		nw.Inject(time.Duration(k)*3*delta, 1, Leader(),
			ClientPropose{Client: client, Seq: uint64(k), Cmd: consensus.Value("op")})
	}
	// The follower has applied a slot or two when it dies; by restart the
	// survivors have compacted far past it.
	nw.CrashAt(2, 10*delta)
	nw.RestartAt(2, 50*delta)

	done := eng.RunUntil(func() bool {
		node := nw.Node(2)
		if !node.Up() {
			return false
		}
		return node.Process().(*Replica).Applied() >= ops &&
			clientCount(logs[0].snapshot(), client) >= ops
	}, 60*time.Second)
	if !done {
		t.Fatalf("follower did not catch up (leader %d ops applied)",
			clientCount(logs[0].snapshot(), client))
	}
	eng.Run(eng.Now() + 30*delta)

	r2 := nw.Node(2).Process().(*Replica)
	if r2.snapBase < 8 {
		t.Fatalf("follower horizon %d — it did not install a snapshot", r2.snapBase)
	}
	if r2.Applied() < ops {
		t.Fatalf("follower applied %d, want >= %d", r2.Applied(), ops)
	}
	// The fresh incarnation replays its own short pre-crash prefix, then
	// jumps to the frontier via the snapshot: the compacted middle of the
	// log must never reach its applier.
	entries := logs[2].snapshot()
	assertExactlyOnce(t, 2, entries)
	if len(entries) >= ops {
		t.Fatalf("follower replayed %d entries — snapshot catch-up did not engage", len(entries))
	}
	for _, e := range entries {
		if e.Slot >= 4 {
			t.Fatalf("follower re-applied compacted slot %d", e.Slot)
		}
	}
	for id := 0; id < 2; id++ {
		survivors := logs[id].snapshot()
		assertExactlyOnce(t, id, survivors)
		countSession(t, id, survivors, client, ops)
	}
	hist, ok := collector.HistogramCopy(trace.HistCatchupLatency)
	if !ok || hist.Count() < 1 {
		t.Fatalf("catch-up latency histogram missing (recorded=%v)", ok)
	}
}
