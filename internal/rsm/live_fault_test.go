package rsm

// Live-runtime crash tests: kill the leader under real goroutines and
// wall-clock timers, fail over, restart it behind the compaction horizon,
// and time the catch-up. The sim twins in failover_sim_test.go pin the exact
// schedules; these verify the same machinery holds up outside virtual time.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/live"
	"repro/internal/storage"
	"repro/internal/trace"
)

func TestLiveCrashRestartCatchUpBounded(t *testing.T) {
	const d = 5 * time.Millisecond
	const ops = 12
	collector := trace.NewCollector()
	collector.EnableHistograms()
	transport := live.NewMemTransport(live.MemTransportConfig{MaxDelay: d, Seed: 11, Collector: collector})
	factory, err := New(Config{
		Paxos:           modpaxos.Config{Delta: d},
		FailoverTimeout: 20 * d,
		SnapshotEvery:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := live.NewCluster(live.Config{
		N: 3, Delta: d, Transport: transport, Collector: collector, Seed: 11,
	}, factory, make([]consensus.Value, 3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Stop() })
	cluster.Start()

	client := NewClient(3, transport)
	client.SetTimeout(30 * time.Second)
	client.SetRetryInterval(10 * d)
	client.SetReplicas(3)

	propose := func(i int) {
		t.Helper()
		if _, err := client.Propose(consensus.Value(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// A committed prefix through the epoch-0 leader, then kill it.
	for i := 0; i < 4; i++ {
		propose(i)
	}
	cluster.Crash(0)
	crashed := time.Now()
	// The client's silent-retry rotation finds the failed-over leader, and
	// the surviving pair keeps committing — far enough that compaction
	// truncates the log past the crashed replica's applied point.
	for i := 4; i < ops; i++ {
		propose(i)
	}
	cluster.Restart(0)

	// Get parks until replica 0 has applied ≥ ops, so a successful read IS
	// the catch-up: the restarted replica serves the full prefix again.
	v, found, err := client.Get(0, fmt.Sprintf("k%d", ops-1), ops)
	if err != nil || !found || v != fmt.Sprintf("v%d", ops-1) {
		t.Fatalf("restarted replica did not catch up: k%d = (%q,%v,%v)", ops-1, v, found, err)
	}
	recovery := time.Since(crashed)
	if recovery > 10*time.Second {
		t.Fatalf("crash→caught-up took %v", recovery)
	}

	// The catch-up window must have been recorded, and the recorded value
	// stays within the same generous wall-clock bound.
	h, ok := collector.HistogramCopy(trace.HistCatchupLatency)
	if !ok || h.Count() == 0 {
		t.Fatal("no catch-up latency recorded on the live backend")
	}
	s := h.Snapshot(trace.HistCatchupLatency)
	if time.Duration(s.Max) > 10*time.Second {
		t.Fatalf("recorded catch-up latency %v exceeds bound", time.Duration(s.Max))
	}

	// Catch-up crossed the compaction horizon via snapshot: replica 0 holds
	// an installed snapshot at least one window deep, and its surviving
	// rsmlog/ records are bounded by the windows above it, not the full log.
	var snap Snapshot
	if ok, err := cluster.Node(0).Store().Get(storage.KeyRSMSnapshot, &snap); err != nil || !ok {
		t.Fatalf("restarted replica has no snapshot (ok=%v err=%v)", ok, err)
	}
	if snap.Applied < 4 {
		t.Fatalf("snapshot horizon %d, want ≥ 4", snap.Applied)
	}
	keys, err := cluster.Node(0).Store().Keys()
	if err != nil {
		t.Fatal(err)
	}
	logKeys := 0
	for _, k := range keys {
		if len(k) > len(storage.KeyRSMLogPrefix) && k[:len(storage.KeyRSMLogPrefix)] == storage.KeyRSMLogPrefix {
			logKeys++
		}
	}
	if logKeys >= ops {
		t.Fatalf("restarted replica holds %d rsmlog keys for %d ops — no truncation", logKeys, ops)
	}
}
