package rsm

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/live"
)

// RegisterMessages registers the RSM wire types (and the protocol messages
// they wrap) with encoding/gob for the TCP transport.
func RegisterMessages() {
	live.RegisterMessages()
	registerRSMOnce.Do(func() {
		for _, m := range []consensus.Message{
			ClientPropose{}, Redirect{}, Committed{}, Busy{},
			Query{}, QueryReply{}, SlotMsg{}, Learn{}, LearnReply{},
			Beat{}, SnapshotMsg{},
		} {
			gob.Register(m)
		}
	})
}

var registerRSMOnce sync.Once

// ClientStats counts a client's traffic for observability and tests.
type ClientStats struct {
	// Ops is the number of committed proposals.
	Ops int64
	// Retries counts proposal retransmissions (timeout slices, redirects).
	Retries int64
	// Busy counts Busy rejections received.
	Busy int64
	// Redirects counts leader redirections followed.
	Redirects int64
	// InboxDrops counts replies shed because the bounded inbox was full.
	InboxDrops int64
}

// Client talks to a live replica group through the same transport the
// replicas use. It registers itself under an ID outside the replica range
// (clients are not consensus participants) and runs one session: every
// proposal carries (client, seq), so server-side dedup makes its
// retransmissions exactly-once at apply time.
type Client struct {
	id        consensus.ProcessID
	transport live.Transport

	mu      sync.Mutex
	inbox   chan consensus.Message
	timeout time.Duration
	// retryEvery is the in-flight retransmission period; timeouts are only
	// reached after several retransmissions have gone unanswered.
	retryEvery time.Duration
	seq        uint64
	reqID      uint64
	// leader is the replica proposals currently aim at, remembered across
	// operations; epoch is the highest leadership epoch seen in a
	// Redirect, so stale redirects (a deposed leader pointing backwards)
	// are ignored.
	leader consensus.ProcessID
	epoch  int64
	// replicas, when set via SetReplicas, lets the client rotate to the
	// next replica after clientFailoverAfter silent retries — the
	// treat-silence-as-failover trigger.
	replicas int

	ops, retries, busy, redirects, inboxDrops atomic.Int64
}

// NewClient registers a client with the transport. The id must not collide
// with any replica ID (use N, N+1, ...).
func NewClient(id consensus.ProcessID, transport live.Transport) *Client {
	c := &Client{
		id:         id,
		transport:  transport,
		inbox:      make(chan consensus.Message, 64),
		timeout:    5 * time.Second,
		retryEvery: 250 * time.Millisecond,
		leader:     Leader(),
	}
	transport.Register(id, func(_ consensus.ProcessID, m consensus.Message) {
		select {
		case c.inbox <- m:
		default:
			// Bounded inbox: shed and count. Replies are retransmitted by
			// the retry loop (proposals) or the server (parked queries), so
			// a shed reply delays an operation instead of losing it.
			c.inboxDrops.Add(1)
		}
	})
	return c
}

// SetTimeout adjusts the per-operation timeout (default 5s).
func (c *Client) SetTimeout(d time.Duration) {
	c.timeout = d
	if c.retryEvery > d/4 {
		c.retryEvery = d / 4
	}
}

// SetRetryInterval adjusts the retransmission period (default 250ms,
// clamped to a quarter of the timeout by SetTimeout).
func (c *Client) SetRetryInterval(d time.Duration) {
	if d > 0 {
		c.retryEvery = d
	}
}

// clientFailoverAfter is how many consecutive unanswered retransmissions a
// client tolerates before treating leader silence as a crash and rotating
// to the next replica (SetReplicas must have been called).
const clientFailoverAfter = 2

// SetReplicas tells the client the replica-group size, enabling silence
// failover: after clientFailoverAfter unanswered retries the client aims at
// the next replica instead of retrying a dead leader until the deadline.
func (c *Client) SetReplicas(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas = n
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Ops:        c.ops.Load(),
		Retries:    c.retries.Load(),
		Busy:       c.busy.Load(),
		Redirects:  c.redirects.Load(),
		InboxDrops: c.inboxDrops.Load(),
	}
}

// Propose submits a command to the replica group and blocks until it is
// applied in a slot. Retries (on Busy, Redirect, or silence) reuse the same
// session sequence number, so the command executes exactly once even when
// proposed repeatedly.
func (c *Client) Propose(cmd consensus.Value) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	seq := c.seq
	send := func() {
		c.transport.Send(c.id, c.leader, ClientPropose{Client: int64(c.id), Seq: seq, Cmd: cmd})
	}
	send()
	// The client only exists on the live side (it blocks a real goroutine
	// on a live.Transport inbox); simulated runs drive replicas through
	// injected ClientPropose events instead, so these timers never tick
	// under the deterministic engine.
	deadline := time.NewTimer(c.timeout) //repro:allow detlint live-only client, wall-clock timeouts by design
	defer deadline.Stop()
	retry := time.NewTimer(c.retryEvery) //repro:allow detlint live-only client, wall-clock timeouts by design
	defer retry.Stop()
	backoff := c.retryEvery
	silent := 0
	for {
		select {
		case m := <-c.inbox:
			switch msg := m.(type) {
			case Committed:
				if msg.Seq == seq {
					c.ops.Add(1)
					return msg.Slot, nil
				}
				// An ack for an earlier (already returned) proposal: ignore.
			case Redirect:
				if msg.Epoch < c.epoch {
					// Staler leadership view than ours: ignore.
					continue
				}
				c.epoch = msg.Epoch
				c.leader = msg.Leader
				silent = 0
				c.redirects.Add(1)
				c.retries.Add(1)
				send()
				resetTimer(retry, c.retryEvery)
			case Busy:
				// Rejected, nothing queued: back off before retrying.
				c.busy.Add(1)
				silent = 0
				backoff *= 2
				if backoff > c.timeout/2 {
					backoff = c.timeout / 2
				}
				resetTimer(retry, backoff)
			}
		case <-retry.C:
			c.retries.Add(1)
			silent++
			if c.replicas > 1 && silent >= clientFailoverAfter {
				// Treat sustained silence as a leader crash: re-aim at the
				// next replica. A follower answers with an epoch-stamped
				// Redirect to the real leader; a dead one stays silent and
				// the rotation continues (bounded by the retry cadence).
				c.leader = consensus.ProcessID((int(c.leader) + 1) % c.replicas)
				silent = 0
			}
			send()
			retry.Reset(c.retryEvery)
		case <-deadline.C:
			return 0, fmt.Errorf("rsm: propose %q timed out after %v", cmd, c.timeout)
		}
	}
}

// Get reads the applied value of key from one replica, waiting until the
// replica has applied at least minApplied slots (0 = read immediately).
// The replica parks unsatisfiable queries and answers when its log catches
// up, so the client blocks on its inbox instead of sleep-polling;
// retransmissions only cover lost messages.
func (c *Client) Get(replica consensus.ProcessID, key string, minApplied int64) (string, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqID++
	req := Query{Key: key, MinApplied: minApplied, ReqID: c.reqID}
	c.transport.Send(c.id, replica, req)
	// Live-only, as in Propose: wall-clock timeouts are the intended
	// behavior for a real client goroutine.
	deadline := time.NewTimer(c.timeout) //repro:allow detlint live-only client, wall-clock timeouts by design
	defer deadline.Stop()
	retry := time.NewTimer(c.retryEvery) //repro:allow detlint live-only client, wall-clock timeouts by design
	defer retry.Stop()
	backoff := c.retryEvery
	for {
		select {
		case m := <-c.inbox:
			switch msg := m.(type) {
			case QueryReply:
				if msg.ReqID == req.ReqID {
					return msg.Value, msg.Found, nil
				}
			case Busy:
				c.busy.Add(1)
				backoff *= 2
				if backoff > c.timeout/2 {
					backoff = c.timeout / 2
				}
				resetTimer(retry, backoff)
			}
		case <-retry.C:
			c.retries.Add(1)
			c.transport.Send(c.id, replica, req)
			retry.Reset(c.retryEvery)
		case <-deadline.C:
			return "", false, fmt.Errorf("rsm: get %q from p%d timed out", key, replica)
		}
	}
}

// resetTimer safely re-arms a timer whose previous duration may not have
// elapsed.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}
