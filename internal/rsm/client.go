package rsm

import (
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/live"
)

// RegisterMessages registers the RSM wire types (and the protocol messages
// they wrap) with encoding/gob for the TCP transport.
func RegisterMessages() {
	live.RegisterMessages()
	registerRSMOnce.Do(func() {
		for _, m := range []consensus.Message{
			ClientPropose{}, Redirect{}, Committed{}, Query{}, QueryReply{}, SlotMsg{},
		} {
			gob.Register(m)
		}
	})
}

var registerRSMOnce sync.Once

// Client talks to a live replica group through the same transport the
// replicas use. It registers itself under an ID outside the replica range
// (clients are not consensus participants).
type Client struct {
	id        consensus.ProcessID
	transport live.Transport

	mu      sync.Mutex
	inbox   chan consensus.Message
	timeout time.Duration
}

// NewClient registers a client with the transport. The id must not collide
// with any replica ID (use N, N+1, ...).
func NewClient(id consensus.ProcessID, transport live.Transport) *Client {
	c := &Client{
		id:        id,
		transport: transport,
		inbox:     make(chan consensus.Message, 64),
		timeout:   5 * time.Second,
	}
	transport.Register(id, func(_ consensus.ProcessID, m consensus.Message) {
		select {
		case c.inbox <- m:
		default: // slow client: drop, the caller will time out and retry
		}
	})
	return c
}

// SetTimeout adjusts the per-operation timeout (default 5s).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Propose submits a command to the replica group and blocks until it is
// committed to a slot.
func (c *Client) Propose(cmd consensus.Value) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	leader := Leader()
	deadline := time.Now().Add(c.timeout)
	c.transport.Send(c.id, leader, ClientPropose{Cmd: cmd})
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, fmt.Errorf("rsm: propose %q timed out after %v", cmd, c.timeout)
		}
		select {
		case m := <-c.inbox:
			switch msg := m.(type) {
			case Committed:
				if msg.Cmd == cmd {
					return msg.Slot, nil
				}
				// A commit for an earlier pipelined proposal: ignore.
			case Redirect:
				leader = msg.Leader
				c.transport.Send(c.id, leader, ClientPropose{Cmd: cmd})
			}
		case <-time.After(remaining):
			return 0, fmt.Errorf("rsm: propose %q timed out after %v", cmd, c.timeout)
		}
	}
}

// Get reads the applied value of key from one replica, waiting until the
// replica has applied at least minApplied slots (0 = read immediately).
func (c *Client) Get(replica consensus.ProcessID, key string, minApplied int64) (string, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Now().Add(c.timeout)
	for {
		if time.Now().After(deadline) {
			return "", false, fmt.Errorf("rsm: get %q from p%d timed out", key, replica)
		}
		c.transport.Send(c.id, replica, Query{Key: key})
		remaining := time.Until(deadline)
		select {
		case m := <-c.inbox:
			if reply, ok := m.(QueryReply); ok && reply.Key == key {
				if reply.Applied >= minApplied {
					return reply.Value, reply.Found, nil
				}
			}
			// Stale or unrelated: re-query after a short pause.
			time.Sleep(2 * time.Millisecond)
		case <-time.After(remaining):
			return "", false, fmt.Errorf("rsm: get %q from p%d timed out", key, replica)
		}
	}
}
