package rsm

// Deterministic whole-stack test: the RSM replicas run on the discrete-
// event simulator under pre-stabilization loss. Client proposals are
// injected as messages; commands proposed before TS still commit after the
// network stabilizes, because every slot instance is a full modified-Paxos
// process with the paper's recovery machinery.

import (
	"testing"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/core/modpaxos"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func simGroup(t *testing.T, seed int64, cfg simnet.Config) (*sim.Engine, *simnet.Network) {
	t.Helper()
	factory, err := New(Config{Paxos: modpaxos.Config{Delta: cfg.Delta, Rho: cfg.Rho}})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	nw, err := simnet.New(eng, cfg, factory, make([]consensus.Value, cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

// replica fetches the typed RSM replica at a node.
func replica(t *testing.T, nw *simnet.Network, id consensus.ProcessID) *Replica {
	t.Helper()
	r, ok := nw.Node(id).Process().(*Replica)
	if !ok {
		t.Fatalf("node %d hosts %T", id, nw.Node(id).Process())
	}
	return r
}

func TestSimCommitsAcrossStabilization(t *testing.T) {
	const n = 3
	delta := 10 * time.Millisecond
	ts := 200 * time.Millisecond
	eng, nw := simGroup(t, 1, simnet.Config{
		N: n, Delta: delta, TS: ts, Policy: simnet.Chaos{DropProb: 0.7}, Rho: 0.01,
	})
	nw.Start()

	// Proposals injected before TS — their phase-2 traffic may be lost;
	// the slot instances must recover after stabilization.
	nw.Inject(20*time.Millisecond, 1, Leader(), ClientPropose{Cmd: "set a 1"})
	nw.Inject(40*time.Millisecond, 1, Leader(), ClientPropose{Cmd: "set b 2"})
	// And one injected after TS commits on the fast path.
	nw.Inject(ts+50*delta, 1, Leader(), ClientPropose{Cmd: "set a 3"})

	// With retries, commands may land in later slots than first assigned;
	// wait until every key is visible at every replica.
	done := eng.RunUntil(func() bool {
		for id := consensus.ProcessID(0); id < n; id++ {
			r := replica(t, nw, id)
			if _, ok := r.kv.Get("b"); !ok {
				return false
			}
			if v, ok := r.kv.Get("a"); !ok || v != "3" {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !done {
		for id := consensus.ProcessID(0); id < n; id++ {
			t.Logf("replica %d applied %d", id, replica(t, nw, id).Applied())
		}
		t.Fatal("log did not fully apply")
	}

	for id := consensus.ProcessID(0); id < n; id++ {
		r := replica(t, nw, id)
		if v, ok := r.kv.Get("b"); !ok || v != "2" {
			t.Fatalf("replica %d: b=(%q,%v), want 2", id, v, ok)
		}
	}
}

func TestSimReplicaRestartReappliesLog(t *testing.T) {
	const n = 3
	delta := 10 * time.Millisecond
	eng, nw := simGroup(t, 2, simnet.Config{N: n, Delta: delta, TS: 0})
	nw.Start()
	nw.Inject(delta, 1, Leader(), ClientPropose{Cmd: "set x 1"})
	nw.Inject(10*delta, 1, Leader(), ClientPropose{Cmd: "set y 2"})

	eng.RunUntil(func() bool { return replica(t, nw, 2).Applied() >= 2 }, 10*time.Second)

	// Crash and restart replica 2; its log must come back from stable
	// storage without any network traffic needed for the old slots.
	nw.CrashAt(2, eng.Now()+delta)
	nw.RestartAt(2, eng.Now()+5*delta)
	eng.Run(eng.Now() + 10*delta)

	r := replica(t, nw, 2)
	if r.Applied() < 2 {
		t.Fatalf("restarted replica applied %d slots, want ≥ 2", r.Applied())
	}
	if v, ok := r.kv.Get("y"); !ok || v != "2" {
		t.Fatalf("restarted replica: y=(%q,%v)", v, ok)
	}
}

func TestSimDeterministicLog(t *testing.T) {
	run := func() (int64, string) {
		const n = 3
		delta := 10 * time.Millisecond
		eng, nw := simGroup(t, 42, simnet.Config{
			N: n, Delta: delta, TS: 100 * time.Millisecond, Policy: simnet.Chaos{DropProb: 0.5},
		})
		nw.Start()
		nw.Inject(5*time.Millisecond, 1, Leader(), ClientPropose{Cmd: "set k v1"})
		nw.Inject(15*time.Millisecond, 1, Leader(), ClientPropose{Cmd: "set k v2"})
		eng.RunUntil(func() bool { return replica(t, nw, 0).Applied() >= 2 }, 30*time.Second)
		r := replica(t, nw, 0)
		v, _ := r.kv.Get("k")
		return r.Applied(), v
	}
	a1, v1 := run()
	a2, v2 := run()
	if a1 != a2 || v1 != v2 {
		t.Fatalf("nondeterministic RSM: (%d,%q) vs (%d,%q)", a1, v1, a2, v2)
	}
}
