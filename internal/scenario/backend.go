package scenario

import (
	"fmt"
	"sort"

	"repro/internal/harness"
	"repro/internal/protocol"
)

// Backend is an execution substrate for scenario cells: something that can
// take the harness configuration of one (protocol, seed) cell and produce a
// harness.Result. The deterministic simulator and the live goroutine
// runtime (memory or TCP transport) are the built-ins; because every
// backend reports through the same Result schema, checks, renderers, and
// grids work verbatim whichever substrate a Spec names.
type Backend interface {
	// Name is the identifier Specs and CLIs select the backend by.
	Name() string
	// Supports reports (with a nil error) whether the backend can execute
	// the protocol. Spec defaulting uses it to pick the runnable subset;
	// explicitly listed protocols fail the run instead.
	Supports(p harness.Protocol) error
	// Run executes one cell. Configurations carrying features the backend
	// cannot honor must return an error, not silently degrade.
	Run(cfg harness.Config) (harness.Result, error)
}

// The built-in backend names (Spec.Backend, `-backend` on the CLIs).
const (
	// BackendSim is the deterministic simulator — the default.
	BackendSim = "sim"
	// BackendLive runs goroutines, real clocks, and the in-memory
	// transport under policy-driven fault injection.
	BackendLive = "live"
	// BackendLiveTCP is BackendLive over loopback TCP with gob encoding.
	BackendLiveTCP = "live-tcp"
)

// backends is the fixed registry of execution substrates.
var backends = map[string]Backend{
	BackendSim:     simBackend{},
	BackendLive:    liveBackend{},
	BackendLiveTCP: liveBackend{tcp: true},
}

// backendFor resolves a backend name ("" means sim).
func backendFor(name string) (Backend, error) {
	if name == "" {
		name = BackendSim
	}
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown backend %q (want %v)", name, BackendNames())
	}
	return b, nil
}

// BackendNames lists the selectable backends, sorted — for CLI usage
// strings and error messages.
func BackendNames() []string {
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// simBackend executes cells on the deterministic simulator via the harness.
type simBackend struct{}

// Name implements Backend.
func (simBackend) Name() string { return BackendSim }

// Supports implements Backend: the simulator runs every registered
// protocol.
func (simBackend) Supports(p harness.Protocol) error {
	_, err := protocol.Get(string(p))
	return err
}

// Run implements Backend.
func (simBackend) Run(cfg harness.Config) (harness.Result, error) {
	return harness.Run(cfg)
}
