package scenario

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/harness"
	"repro/internal/live"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// liveBackend executes cells on the live runtime: one goroutine per
// process, real clocks and timers, and a PolicyTransport translating the
// cell's pre-TS simnet policy into wall-clock fault injection over either
// the in-memory transport or loopback TCP. TS becomes a wall-clock offset
// from cluster start; decision latencies are measured against it through
// the same safety checker and collector the renderers already read, so the
// Report schema is identical to the simulator's.
//
// What the live runtime cannot honor is rejected, not approximated:
// message-level adversaries and PreStart hooks need the simulator's event
// queue, clock profiles need simulated clocks, and WorstCaseDelays needs
// exactly-δ delivery. Crash/restart schedules run on real timers.
type liveBackend struct {
	// tcp selects loopback TCP + gob instead of in-memory channels.
	tcp bool
}

// Name implements Backend.
func (b liveBackend) Name() string {
	if b.tcp {
		return BackendLiveTCP
	}
	return BackendLive
}

// Supports implements Backend: any registered protocol that does not need
// the simulator's leader oracle.
func (b liveBackend) Supports(p harness.Protocol) error {
	d, err := protocol.Get(string(p))
	if err != nil {
		return err
	}
	if d.NeedsLeaderOracle {
		return fmt.Errorf("scenario: %q needs the simulator's leader oracle; the %s backend cannot provide one", p, b.Name())
	}
	return nil
}

// validate rejects configuration features that have no live equivalent.
func (b liveBackend) validate(cfg harness.Config) error {
	unsupported := func(what string) error {
		return fmt.Errorf("scenario: %s backend cannot run %s (simulator only)", b.Name(), what)
	}
	if cfg.Attack != "" && cfg.Attack != harness.NoAttack {
		return unsupported(fmt.Sprintf("the %q adversary", cfg.Attack))
	}
	if len(cfg.PreStart) > 0 {
		return unsupported("PreStart fault hooks (adaptive assassins)")
	}
	if cfg.Drift != nil || cfg.Rho != 0 {
		return unsupported("clock profiles (goroutines share the host clock)")
	}
	if cfg.WorstCaseDelays {
		return unsupported("exactly-δ worst-case delivery")
	}
	return nil
}

// liveHorizon bounds the wall-clock wait for a cell. The harness's 2-minute
// virtual default would be 2 real minutes per failing cell here, so an
// unset horizon becomes TS plus a generous post-stabilization envelope.
func liveHorizon(cfg harness.Config) time.Duration {
	if cfg.Horizon > 0 {
		return cfg.Horizon
	}
	h := cfg.TS + 100*cfg.Delta
	if h < 2*time.Second {
		h = 2 * time.Second
	}
	return h
}

// Run implements Backend.
func (b liveBackend) Run(cfg harness.Config) (harness.Result, error) {
	if err := b.validate(cfg); err != nil {
		return harness.Result{}, err
	}
	desc, err := protocol.Get(string(cfg.Protocol))
	if err != nil {
		return harness.Result{}, fmt.Errorf("scenario: %w", err)
	}
	if err := b.Supports(cfg.Protocol); err != nil {
		return harness.Result{}, err
	}
	factory, err := desc.Build(cfg.Params())
	if err != nil {
		return harness.Result{}, err
	}

	// The pre-TS policy defaults exactly as the harness defaults it.
	policy := cfg.Policy
	if policy == nil {
		if cfg.TS > 0 {
			policy = simnet.DropAll{}
		} else {
			policy = simnet.Synchronous{}
		}
	}

	collector := trace.NewCollector()
	if cfg.Observe {
		// Same switches the harness flips for the simulator; both must be
		// on before the cluster starts feeding the collector.
		collector.EnableSpans(cfg.SpanCapacity)
		collector.EnableHistograms()
	}
	var inner live.Transport
	if b.tcp {
		ids := make([]consensus.ProcessID, cfg.N)
		for i := range ids {
			ids[i] = consensus.ProcessID(i)
		}
		tcp, err := live.NewTCPTransport(ids)
		if err != nil {
			return harness.Result{}, err
		}
		inner = tcp
	} else {
		// The inner transport is the stable network: delivery within δ.
		// The PolicyTransport wrapper owns the unstable period, seeded
		// from the cell so mem-backend fault patterns are reproducible.
		inner = live.NewMemTransport(live.MemTransportConfig{
			MaxDelay:  cfg.Delta,
			Seed:      cfg.Seed,
			Collector: collector,
		})
	}
	transport := live.NewPolicyTransport(inner, live.PolicyTransportConfig{
		Policy: policy,
		TS:     cfg.TS,
		Delta:  cfg.Delta,
		Seed:   cfg.Seed,
		OnDrop: collector.MessageDropped,
	})

	cluster, err := live.NewCluster(live.Config{
		N: cfg.N, Delta: cfg.Delta, TS: cfg.TS,
		Transport: transport, Collector: collector, Seed: cfg.Seed,
	}, factory, harness.DefaultProposals(cfg.N))
	if err != nil {
		_ = transport.Close()
		return harness.Result{}, err
	}
	defer func() { _ = cluster.Stop() }()

	// Crash/restart schedules become wall-clock timers anchored at start.
	// A pair with RestartAt == 0 stays down and is excluded from the
	// processes the run waits on (the harness semantic: "every process up
	// at the end decided").
	expected := make([]consensus.ProcessID, 0, cfg.N)
	down := make(map[consensus.ProcessID]bool)
	for _, r := range cfg.Restarts {
		if r.RestartAt == 0 {
			down[r.Proc] = true
		}
	}
	for i := 0; i < cfg.N; i++ {
		if id := consensus.ProcessID(i); !down[id] {
			expected = append(expected, id)
		}
	}
	// Fault timers are guarded: a callback that fires in the instant
	// between the wait finishing and the deferred Stop must not restart a
	// node into a stopped cluster (a fired timer cannot be Stop()ped, so
	// the flag — flipped under the same lock the callbacks take — is the
	// only reliable barrier).
	var (
		faultMu sync.Mutex
		done    bool
	)
	guarded := func(fn func()) func() {
		return func() {
			faultMu.Lock()
			defer faultMu.Unlock()
			if !done {
				fn()
			}
		}
	}
	var faultTimers []*time.Timer
	defer func() {
		for _, t := range faultTimers {
			t.Stop()
		}
	}()
	// The live backend runs real goroutines against the host clock by
	// design; wall-clock reads here are the point, not a determinism leak.
	started := time.Now() //repro:allow detlint live backend measures wall time by design
	cluster.Start()
	for _, r := range cfg.Restarts {
		r := r
		//repro:allow detlint live faults fire on the wall clock by design
		faultTimers = append(faultTimers, time.AfterFunc(r.CrashAt,
			guarded(func() { cluster.Crash(r.Proc) })))
		if r.RestartAt > 0 {
			//repro:allow detlint live faults fire on the wall clock by design
			faultTimers = append(faultTimers, time.AfterFunc(r.RestartAt,
				guarded(func() { cluster.Restart(r.Proc) })))
		}
	}

	decided := cluster.WaitDecidedAmong(expected, liveHorizon(cfg)) == nil
	faultMu.Lock()
	done = true
	faultMu.Unlock()
	// Run-level phase spans mirror the harness's post-run recording, with
	// wall time standing in for virtual time.
	collector.RecordRunPhases(cfg.TS, time.Since(started)) //repro:allow detlint live backend measures wall time by design
	return harness.BuildResult(cfg, collector, cluster.Checker(), expected, decided), nil
}
