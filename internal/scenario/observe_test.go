package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/trace"
)

// observeSpec is a small two-protocol spec with a real pre-TS outage so the
// decision-latency histogram carries nonzero samples.
func observeSpec() Spec {
	return Spec{
		Name:      "observe-test",
		Protocols: []harness.Protocol{harness.ModifiedPaxos, harness.RoundBased},
		TS:        100 * time.Millisecond,
		Seeds:     2,
	}
}

// TestObserveDoesNotPerturbReport pins the contract stated on Spec.Observe:
// turning observation on changes nothing about the run — the aggregate
// report is byte-identical once the (intentionally added) histogram blocks
// are stripped.
func TestObserveDoesNotPerturbReport(t *testing.T) {
	plainSpec, obsSpec := observeSpec(), observeSpec()
	obsSpec.Observe = true
	plain, err := Run(plainSpec)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(obsSpec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range observed.Protocols {
		if observed.Protocols[i].DecisionLatency == nil {
			t.Errorf("%s: observed report missing decision-latency histogram", observed.Protocols[i].Protocol)
		}
		observed.Protocols[i].DecisionLatency = nil
	}
	pj, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	oj, err := observed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if pj != oj {
		t.Fatalf("observation changed the report:\nplain:\n%s\nobserved:\n%s", pj, oj)
	}
}

// TestObservedReportQuantiles checks the merged histogram is coherent: N
// samples per seed, ordered quantiles, all within [min, max], and rendered
// in the text report.
func TestObservedReportQuantiles(t *testing.T) {
	spec := observeSpec()
	spec.Observe = true
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Protocols {
		h := pr.DecisionLatency
		if h == nil {
			t.Fatalf("%s: no decision-latency histogram", pr.Protocol)
		}
		if want := int64(spec.Seeds * 5); h.Count != want {
			t.Errorf("%s: count = %d, want %d (N per seed)", pr.Protocol, h.Count, want)
		}
		if h.P50 <= 0 || h.P50 > h.P95 || h.P95 > h.P99 {
			t.Errorf("%s: unordered quantiles p50=%d p95=%d p99=%d", pr.Protocol, h.P50, h.P95, h.P99)
		}
		if h.P50 < h.Min || h.P99 > h.Max {
			t.Errorf("%s: quantiles leave [min=%d, max=%d]", pr.Protocol, h.Min, h.Max)
		}
	}
	text := rep.Text()
	if !strings.Contains(text, "decision latency after TS") {
		t.Errorf("text report missing decision-latency table:\n%s", text)
	}
}

// TestGridCSVDecisionLatencyColumns is the golden for the three appended
// quantile columns: zero without Observe, populated and ordered with it.
func TestGridCSVDecisionLatencyColumns(t *testing.T) {
	base := Spec{
		Name:      "grid-observe",
		Protocols: []harness.Protocol{harness.ModifiedPaxos},
		TS:        100 * time.Millisecond,
		Seeds:     2,
	}
	tail := func(rep *GridReport) []string {
		rows := rep.CSVRows()
		if len(rows) != 1 {
			t.Fatalf("got %d rows, want 1", len(rows))
		}
		fields := strings.Split(rows[0], ",")
		if len(fields) != 20 {
			t.Fatalf("row has %d fields, want 20: %q", len(fields), rows[0])
		}
		return fields[17:]
	}

	rep, err := Grid{Base: base}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range tail(rep) {
		if f != "0" {
			t.Errorf("unobserved grid: quantile column %d = %q, want 0", i, f)
		}
	}

	base.Observe = true
	rep, err = Grid{Base: base}.Run()
	if err != nil {
		t.Fatal(err)
	}
	q := tail(rep)
	var ns [3]int64
	for i, f := range q {
		d, err := time.ParseDuration(f + "ns")
		if err != nil {
			t.Fatalf("quantile column %d = %q: %v", i, f, err)
		}
		ns[i] = int64(d)
	}
	if ns[0] <= 0 || ns[0] > ns[1] || ns[1] > ns[2] {
		t.Errorf("observed grid quantile columns %v: want 0 < p50 ≤ p95 ≤ p99", ns)
	}
}

// TestHistogramSummaries checks the whole-run histogram roll-up used by the
// CLI's -hist flag: per-type delivery latencies and the decide latency all
// appear, name-sorted, merged over every kept run.
func TestHistogramSummaries(t *testing.T) {
	spec := observeSpec()
	spec.Observe = true
	spec.KeepRuns = true
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	sums := rep.HistogramSummaries()
	if len(sums) == 0 {
		t.Fatal("no histogram summaries from an observed run")
	}
	for i := 1; i < len(sums); i++ {
		if sums[i].Name < sums[i-1].Name {
			t.Fatalf("summaries not name-sorted: %q after %q", sums[i].Name, sums[i-1].Name)
		}
	}
	byName := make(map[string]trace.HistogramSnapshot, len(sums))
	for _, s := range sums {
		byName[s.Name] = s
	}
	dec, ok := byName[trace.HistDecideLatency]
	if !ok {
		t.Fatalf("summaries missing %q: %v", trace.HistDecideLatency, byName)
	}
	// 2 protocols × 2 seeds × 5 processes.
	if want := int64(2 * 2 * 5); dec.Count != want {
		t.Errorf("decide-latency count = %d, want %d", dec.Count, want)
	}
	sawDelivery := false
	for name := range byName {
		if strings.HasPrefix(name, trace.HistDeliveryPrefix) {
			sawDelivery = true
		}
	}
	if !sawDelivery {
		t.Error("no per-type delivery histograms in the summaries")
	}
}
