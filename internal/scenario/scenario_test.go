package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// fastSpec shrinks a spec for unit testing: two seeds, modpaxos only unless
// the spec restricts protocols itself.
func fastSpec(s Spec) Spec {
	s.Seeds = 2
	return s
}

func TestLibraryIsWellFormed(t *testing.T) {
	lib := Library()
	if len(lib) < 10 {
		t.Fatalf("canned library has %d scenarios, want ≥ 10", len(lib))
	}
	seen := make(map[string]bool)
	for _, s := range lib {
		if s.Name == "" || s.Description == "" {
			t.Errorf("scenario %+v lacks a name or description", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, name := range []string{"split-brain-until-TS", "total-partition", "churn-storm"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{Name: "x"}.withDefaults()
	if s.N != 5 || s.Delta != 10*time.Millisecond || s.TS != 200*time.Millisecond {
		t.Errorf("unexpected defaults: N=%d δ=%v TS=%v", s.N, s.Delta, s.TS)
	}
	if len(s.Protocols) != 4 || len(s.Checks) == 0 || s.Seeds != 5 {
		t.Errorf("unexpected defaults: protocols=%v checks=%d seeds=%d", s.Protocols, len(s.Checks), s.Seeds)
	}
	stable := Spec{Name: "y", StableFromStart: true}.withDefaults()
	if stable.TS != 0 {
		t.Errorf("StableFromStart kept TS=%v", stable.TS)
	}
}

func TestRunReportsAndPasses(t *testing.T) {
	spec, _ := Lookup("split-brain-until-TS")
	spec = fastSpec(spec)
	spec.Protocols = []harness.Protocol{harness.ModifiedPaxos, harness.RoundBased}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if len(rep.Protocols) != 2 {
		t.Fatalf("report has %d protocol sections, want 2", len(rep.Protocols))
	}
	for _, pr := range rep.Protocols {
		if pr.Decided != spec.Seeds {
			t.Errorf("%s: %d/%d decided", pr.Protocol, pr.Decided, spec.Seeds)
		}
		if pr.Latency.Count != spec.Seeds {
			t.Errorf("%s: latency summary over %d runs, want %d", pr.Protocol, pr.Latency.Count, spec.Seeds)
		}
		if pr.Messages.Median <= 0 {
			t.Errorf("%s: no messages recorded", pr.Protocol)
		}
	}
	// The modpaxos section carries the ε+3τ+5δ bound.
	if rep.Protocols[0].Bound <= 0 {
		t.Errorf("modpaxos bound missing: %+v", rep.Protocols[0])
	}
	text := rep.Text()
	for _, want := range []string{"split-brain-until-TS", "violations: none", "modpaxos"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js, `"scenario": "split-brain-until-TS"`) {
		t.Errorf("JSON() missing scenario name:\n%s", js)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	spec, _ := Lookup("total-partition")
	spec = fastSpec(spec)
	spec.Protocols = []harness.Protocol{harness.ModifiedPaxos}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text() != b.Text() {
		t.Errorf("two identical runs produced different reports:\n%s\nvs\n%s", a.Text(), b.Text())
	}
}

// TestChecksCatchViolations plants a failing invariant and checks it is
// reported rather than swallowed.
func TestChecksCatchViolations(t *testing.T) {
	spec, _ := Lookup("total-partition")
	spec = fastSpec(spec)
	spec.Protocols = []harness.Protocol{harness.ModifiedPaxos}
	spec.Checks = []Check{MessageBudget{MaxTotal: 1}} // impossible budget
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != spec.Seeds {
		t.Fatalf("want %d budget violations, got %+v", spec.Seeds, rep.Violations)
	}
	if rep.Violations[0].Check != "message-budget" {
		t.Errorf("violation attributed to %q", rep.Violations[0].Check)
	}
}

// TestFaultValidation ensures fault schedules that reference processes
// outside the cluster fail loudly instead of panicking mid-run.
func TestFaultValidation(t *testing.T) {
	spec := Spec{
		Name:      "bad",
		N:         3,
		Protocols: []harness.Protocol{harness.ModifiedPaxos},
		Faults:    []Fault{CrashRestart{Proc: 7, Crash: AfterTS(1)}},
	}
	if _, err := Run(spec); err == nil {
		t.Fatal("out-of-range fault process should be rejected")
	}
	spec.Faults = []Fault{AssassinateOnSeries{Series: "round", Victim: -5}}
	if _, err := Run(spec); err == nil {
		t.Fatal("victim below the sentinel range should be rejected, not panic later")
	}
}

// TestAssassinationFires checks the adaptive fault actually kills someone:
// the kill costs the round-based algorithm at least one extra timeout
// relative to an unmolested run.
func TestAssassinationFires(t *testing.T) {
	spec, _ := Lookup("coordinator-assassination")
	spec = fastSpec(spec)
	spec.Protocols = []harness.Protocol{harness.RoundBased}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	// The assassinated coordinator costs the round-based algorithm at
	// least one extra timeout relative to an unmolested run.
	clean, _ := Lookup("total-partition")
	clean = fastSpec(clean)
	clean.Protocols = []harness.Protocol{harness.RoundBased}
	cleanRep, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocols[0].Latency.Median <= cleanRep.Protocols[0].Latency.Median {
		t.Errorf("assassination did not slow the round-based run: %v vs clean %v",
			rep.Protocols[0].Latency.Median, cleanRep.Protocols[0].Latency.Median)
	}
}

func TestRelResolve(t *testing.T) {
	delta, ts := 10*time.Millisecond, 200*time.Millisecond
	if got := AfterTS(3).Resolve(delta, ts); got != ts+3*delta {
		t.Errorf("AfterTS(3) = %v", got)
	}
	if got := AtDeltas(2).Resolve(delta, ts); got != 2*delta {
		t.Errorf("AtDeltas(2) = %v", got)
	}
	if got := (Rel{FromTS: true, Deltas: -10}).Resolve(delta, ts); got != ts-10*delta {
		t.Errorf("TS−10δ = %v", got)
	}
	if !(Rel{}).IsZero() || AfterTS(1).IsZero() {
		t.Error("IsZero misclassifies")
	}
}

// TestParallelExecutionIsDeterministic pins the worker-pool contract: the
// report must be byte-identical whether the (protocol, seed) cells run
// serially or on every available core.
func TestParallelExecutionIsDeterministic(t *testing.T) {
	spec, ok := Lookup("split-brain-until-TS")
	if !ok {
		t.Fatal("missing canned scenario")
	}
	spec.Seeds = 3

	serial := spec
	serial.Workers = 1
	parallel := spec
	parallel.Workers = 8

	repS, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := Run(parallel)
	if err != nil {
		t.Fatal(err)
	}
	jsonS, err := repS.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jsonP, err := repP.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if jsonS != jsonP {
		t.Fatalf("reports differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", jsonS, jsonP)
	}
}

// TestParallelExecutionReportsConfigErrors pins the error path through the
// pool: a fault that cannot be scheduled must surface as an error, not hang
// or get lost in a worker.
func TestParallelExecutionReportsConfigErrors(t *testing.T) {
	spec := Spec{
		Name:      "bad-fault",
		Protocols: []harness.Protocol{harness.ModifiedPaxos},
		Faults:    []Fault{CrashRestart{Proc: 99, Crash: AtDeltas(1)}},
		Seeds:     2,
		Workers:   4,
	}
	if _, err := Run(spec); err == nil {
		t.Fatal("out-of-range fault should error")
	}
}
