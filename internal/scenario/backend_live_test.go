package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/simnet"
)

// liveSpec is a small, fast regime for wall-clock tests: a real unstable
// period of 50ms under 50% chaos, then stabilization.
func liveSpec(backend string) Spec {
	return Spec{
		Name:        "live-smoke",
		Description: "wall-clock chaos then stabilization",
		Backend:     backend,
		N:           3,
		Delta:       5 * time.Millisecond,
		TS:          50 * time.Millisecond,
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.Chaos{DropProb: 0.5, MaxDelay: ts}
		},
		Seeds:   1,
		Horizon: 10 * time.Second,
	}
}

// TestLiveBackendRunsScenarioSpec is the tentpole's acceptance path: an
// unchanged declarative Spec executes on the live runtime and produces the
// same Report schema the simulator produces — protocol sections, latency
// against wall-clock TS, message counts, check evaluation.
func TestLiveBackendRunsScenarioSpec(t *testing.T) {
	rep, err := Run(liveSpec(BackendLive))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != BackendLive {
		t.Errorf("report backend = %q, want %q", rep.Backend, BackendLive)
	}
	// The defaulted protocol set excludes simulator-oracle protocols.
	if len(rep.Protocols) == 0 {
		t.Fatal("no protocol sections in live report")
	}
	for _, pr := range rep.Protocols {
		if pr.Protocol == harness.TraditionalPaxos {
			t.Errorf("live backend defaulted to %q, which needs the simulated leader oracle", pr.Protocol)
		}
		if pr.Decided != pr.Seeds {
			t.Errorf("%s: %d/%d decided on the live backend", pr.Protocol, pr.Decided, pr.Seeds)
		}
		if pr.Latency.Max <= 0 {
			t.Errorf("%s: live latency after TS = %v, want > 0 (wall-clock decisions land after stabilization)", pr.Protocol, pr.Latency.Max)
		}
		if pr.Messages.Median <= 0 {
			t.Errorf("%s: no messages counted", pr.Protocol)
		}
	}
	if !rep.Passed() {
		t.Errorf("live run violated invariants: %+v", rep.Violations)
	}
	// Renderers work verbatim on live reports.
	if txt := rep.Text(); !strings.Contains(txt, "backend=live") {
		t.Errorf("text report does not name the backend:\n%s", txt)
	}
	if _, err := rep.JSON(); err != nil {
		t.Errorf("JSON rendering: %v", err)
	}
}

// TestLiveTCPBackendRunsScenarioSpec runs the same regime over real
// loopback sockets — the policy wrapper injects the identical fault model
// in front of the TCP transport.
func TestLiveTCPBackendRunsScenarioSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock TCP cluster scenario in -short mode")
	}
	spec := liveSpec(BackendLiveTCP)
	spec.Protocols = []harness.Protocol{harness.ModifiedPaxos}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("live-tcp run violated invariants: %+v", rep.Violations)
	}
	if rep.Protocols[0].Decided != rep.Protocols[0].Seeds {
		t.Errorf("%d/%d decided over TCP", rep.Protocols[0].Decided, rep.Protocols[0].Seeds)
	}
}

// TestLiveBackendRunsCrashRestartFaults pins the wall-clock fault schedule:
// a process crashed before TS and restarted after it still decides (via
// decision gossip), and the run reports success.
func TestLiveBackendRunsCrashRestartFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock crash/restart scenario in -short mode")
	}
	spec := liveSpec(BackendLive)
	spec.Protocols = []harness.Protocol{harness.ModifiedPaxos}
	spec.Faults = []Fault{
		CrashRestart{Proc: 2, Crash: AtDeltas(2), Restart: AfterTS(10)},
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("crash/restart live run violated invariants: %+v", rep.Violations)
	}
}

// TestLiveBackendRejectsSimulatorOnlyFeatures pins the refusal contract:
// regimes whose machinery needs the simulator fail loudly instead of
// running a silently weaker experiment.
func TestLiveBackendRejectsSimulatorOnlyFeatures(t *testing.T) {
	cases := map[string]func(*Spec){
		"adversary": func(s *Spec) {
			s.Protocols = []harness.Protocol{harness.ModifiedPaxos}
			s.Adversary = AdversaryProfile{Attack: harness.ObsoleteBallots}
		},
		"clock-profile": func(s *Spec) {
			s.Protocols = []harness.Protocol{harness.ModifiedPaxos}
			s.Clocks = ClockProfile{Rho: 0.1, Extremes: true}
		},
		"worst-case-delays": func(s *Spec) {
			s.Protocols = []harness.Protocol{harness.ModifiedPaxos}
			s.WorstCaseDelays = true
		},
		"assassin": func(s *Spec) {
			s.Protocols = []harness.Protocol{harness.ModifiedPaxos}
			s.Faults = []Fault{AssassinateOnSeries{Series: "session", Victim: VictimEmitter}}
		},
		"oracle-protocol": func(s *Spec) {
			s.Protocols = []harness.Protocol{harness.TraditionalPaxos}
		},
	}
	for name, mutate := range cases {
		spec := liveSpec(BackendLive)
		mutate(&spec)
		if _, err := Run(spec); err == nil {
			t.Errorf("%s: live backend accepted a simulator-only feature", name)
		}
	}
}

// TestUnknownBackendFailsTheRun pins name resolution.
func TestUnknownBackendFailsTheRun(t *testing.T) {
	spec := liveSpec("hologram")
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend: got err %v", err)
	}
}

// TestBackendNamesStable pins the CLI-visible backend set.
func TestBackendNamesStable(t *testing.T) {
	got := strings.Join(BackendNames(), ",")
	if got != "live,live-tcp,sim" {
		t.Errorf("BackendNames() = %q", got)
	}
}
