package scenario

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/harness"
	"repro/internal/protocol"
)

// RunResult is one executed (protocol, seed) cell handed to checks.
type RunResult struct {
	Protocol harness.Protocol
	Seed     int64
	Cfg      harness.Config
	Res      harness.Result
}

// LatencyAfterTS is the run's decision latency after stabilization, clamped
// at zero for runs that decided before TS (the paper's "decide by TS+bound"
// is then trivially met). It is exactly harness.Result.LatencyAfterTS — the
// two callers used to disagree on the pre-TS-decision case.
func (r RunResult) LatencyAfterTS() time.Duration {
	return r.Res.LatencyAfterTS
}

// Check is one invariant evaluated against a run. A check that does not
// apply to the run's protocol returns nil.
type Check interface {
	// Name identifies the check in reports.
	Name() string
	// Check returns a non-nil error describing the violation, if any.
	Check(r RunResult) error
}

// DefaultChecks returns the invariants every scenario gets unless it
// overrides them: termination, agreement, validity.
func DefaultChecks() []Check {
	return []Check{Termination{}, Agreement{}, Validity{}}
}

// Termination requires every process that was up at the end to have decided
// within the horizon.
type Termination struct{}

// Name implements Check.
func (Termination) Name() string { return "termination" }

// Check implements Check.
func (Termination) Check(r RunResult) error {
	if r.Res.Violation != nil {
		return nil // counted by Agreement; don't double-report
	}
	if !r.Res.Decided {
		return fmt.Errorf("not all up processes decided within the horizon")
	}
	return nil
}

// Agreement requires that no safety violation (two processes deciding
// differently, or one process re-deciding a different value) was detected.
type Agreement struct{}

// Name implements Check.
func (Agreement) Name() string { return "agreement" }

// Check implements Check.
func (Agreement) Check(r RunResult) error { return r.Res.Violation }

// Validity requires the decided value to be one of the proposals.
type Validity struct{}

// Name implements Check.
func (Validity) Name() string { return "validity" }

// Check implements Check.
func (Validity) Check(r RunResult) error {
	if r.Res.Value == "" {
		return nil // nothing decided; Termination reports that
	}
	for _, v := range harness.DefaultProposals(r.Cfg.N) {
		if r.Res.Value == v {
			return nil
		}
	}
	return fmt.Errorf("decided value %q was never proposed", r.Res.Value)
}

// decisionBound resolves the run's protocol descriptor and returns its
// declared post-TS decision bound, or ok=false for protocols that claim
// none (the bound checks then do not apply).
func decisionBound(r RunResult) (time.Duration, bool, error) {
	d, err := protocol.Get(string(r.Protocol))
	if err != nil || d.DecisionBound == nil {
		return 0, false, nil
	}
	bound, err := d.DecisionBound(r.Cfg.Params())
	if err != nil {
		return 0, false, err
	}
	return bound, true, nil
}

// LatencyBound checks the paper's headline claim: a protocol that declares
// a decision bound in its registry descriptor (modified Paxos's
// TS + ε + 3τ + 5δ) decides within it. Runs of protocols without a declared
// bound pass trivially; scenarios whose fault schedule violates the bound's
// premises (failures after TS) must not include the check.
type LatencyBound struct{}

// Name implements Check.
func (LatencyBound) Name() string { return "latency-bound" }

// Check implements Check.
func (LatencyBound) Check(r RunResult) error {
	if !r.Res.Decided {
		return nil
	}
	bound, ok, err := decisionBound(r)
	if err != nil || !ok {
		return err
	}
	if lat := r.LatencyAfterTS(); lat > bound {
		return fmt.Errorf("latency after TS %v exceeds the ε+3τ+5δ bound %v", lat, bound)
	}
	return nil
}

// RecoveryBound checks the §4 restart claim: every process that restarts
// after TS decides within MaxDeltas·δ of its restart. It applies exactly to
// the protocols whose descriptor sets ClaimsFastRecovery — a separate
// capability from DecisionBound, because bounding decision latency and
// bounding restart recovery are independent claims.
type RecoveryBound struct {
	// MaxDeltas is the allowed recovery time in units of δ.
	MaxDeltas float64
}

// Name implements Check.
func (RecoveryBound) Name() string { return "recovery-bound" }

// Check implements Check.
func (c RecoveryBound) Check(r RunResult) error {
	if d, err := protocol.Get(string(r.Protocol)); err != nil || !d.ClaimsFastRecovery {
		return nil
	}
	limit := time.Duration(c.MaxDeltas * float64(r.Cfg.Delta))
	// Walk processes in ID order so the violation names the same process on
	// every run, not whichever key map iteration surfaces first.
	procs := make([]consensus.ProcessID, 0, len(r.Res.RestartRecovery))
	for proc := range r.Res.RestartRecovery {
		procs = append(procs, proc)
	}
	slices.Sort(procs)
	for _, proc := range procs {
		if rec := r.Res.RestartRecovery[proc]; rec > limit {
			return fmt.Errorf("process %d took %v to recover after restart, limit %v", proc, rec, limit)
		}
	}
	return nil
}

// MessageBudget caps the total number of messages a run may send — a
// regression tripwire for message complexity, not a tight bound.
type MessageBudget struct {
	// MaxTotal is the cap on messages handed to the network.
	MaxTotal int
}

// Name implements Check.
func (MessageBudget) Name() string { return "message-budget" }

// Check implements Check.
func (c MessageBudget) Check(r RunResult) error {
	if r.Res.Messages > c.MaxTotal {
		return fmt.Errorf("%d messages sent, budget %d", r.Res.Messages, c.MaxTotal)
	}
	return nil
}

// MinorityUp names the processes of the minority side of a SplitBrain
// grouping — the convenience every split scenario needs.
func MinorityUp(n int) []consensus.ProcessID {
	var out []consensus.ProcessID
	for i := (n + 1) / 2; i < n; i++ {
		out = append(out, consensus.ProcessID(i))
	}
	return out
}
