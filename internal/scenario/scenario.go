// Package scenario is the declarative scenario engine: an adversarial
// schedule (network policy, fault schedule, clock profile, message-level
// adversary) plus the invariants it must not break, expressed as one value —
// a Spec — and executed across protocols and seeds by the Runner.
//
// The paper's headline claim (consensus by TS + O(δ) under *any*
// pre-stabilization adversary) is only as credible as the diversity of
// adversaries thrown at it. The building blocks all exist elsewhere in this
// repository (simnet policies, adversary injections, crash/restart, clock
// drift); this package makes them composable and enumerable so regimes can
// be swept systematically instead of hand-wired per experiment. The canned
// library (library.go) ships the named scenarios; `cmd/scenario` is the CLI.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core/consensus"
	"repro/internal/harness"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Rel is a virtual time expressed relative to the run's parameters, so a
// scenario stays meaningful when δ or TS are swept: the resolved time is
// TS·[FromTS] + Deltas·δ + Abs. Deltas may be negative with FromTS to name a
// pre-stabilization instant.
type Rel struct {
	// FromTS anchors the time at the stabilization time instead of 0.
	FromTS bool
	// Deltas is the offset from the anchor, in units of δ.
	Deltas float64
	// Abs is an additional fixed offset, for callers (the CLIs) whose
	// schedules are stated in absolute virtual time rather than in model
	// parameters.
	Abs time.Duration
}

// AfterTS returns the time TS + k·δ.
func AfterTS(k float64) Rel { return Rel{FromTS: true, Deltas: k} }

// AtDeltas returns the absolute time k·δ.
func AtDeltas(k float64) Rel { return Rel{Deltas: k} }

// AtAbs returns the fixed absolute time d, independent of δ and TS.
func AtAbs(d time.Duration) Rel { return Rel{Abs: d} }

// Resolve converts the relative time to an absolute virtual time.
func (r Rel) Resolve(delta, ts time.Duration) time.Duration {
	at := r.Abs + time.Duration(r.Deltas*float64(delta))
	if r.FromTS {
		at += ts
	}
	return at
}

// IsZero reports whether the Rel is the zero value (used for "never").
func (r Rel) IsZero() bool { return !r.FromTS && r.Deltas == 0 && r.Abs == 0 }

// NetProfile builds the pre-stabilization network policy for a given
// cluster size and timing; nil keeps the harness default (DropAll when
// TS > 0). Taking the parameters as inputs lets one profile scale across a
// sweep.
type NetProfile func(n int, delta, ts time.Duration) simnet.Policy

// ClockProfile describes the cluster's local clocks. The zero value means
// perfect clocks; a bare Rho spreads rates deterministically across
// [1−ρ, 1+ρ] (the simnet default).
type ClockProfile struct {
	// Rho is the clock-rate error bound.
	Rho float64
	// Extremes pins every clock to an edge of the band: even processes run
	// at 1−ρ, odd ones at 1+ρ — the worst mutual drift the model allows.
	Extremes bool
	// OffsetDeltas gives per-process initial clock offsets in units of δ
	// (cycled when shorter than N). The paper never assumes synchronized
	// clocks, so correct protocols must shrug these off.
	OffsetDeltas []float64
}

// drift returns the explicit per-process clock function, or nil to use the
// simnet default spread.
func (c ClockProfile) drift(n int, delta time.Duration) func(consensus.ProcessID) clock.Drift {
	if !c.Extremes && len(c.OffsetDeltas) == 0 {
		return nil
	}
	return func(id consensus.ProcessID) clock.Drift {
		d := clock.Perfect()
		switch {
		case c.Extremes:
			if id%2 == 0 {
				d = clock.WithRate(1 - c.Rho)
			} else {
				d = clock.WithRate(1 + c.Rho)
			}
		case c.Rho > 0 && n > 1:
			// Mirror the simnet default spread so declaring offsets does
			// not silently weaken the rate adversary the Rho promises.
			frac := float64(id) / float64(n-1)
			d = clock.WithRate(1 - c.Rho + 2*c.Rho*frac)
		}
		if len(c.OffsetDeltas) > 0 {
			d.Offset = time.Duration(c.OffsetDeltas[int(id)%len(c.OffsetDeltas)] * float64(delta))
		}
		return d
	}
}

// AdversaryProfile selects a message-level adversary from the harness
// repertoire.
type AdversaryProfile struct {
	// Attack is the harness attack kind (none, obsolete, deadcoords).
	Attack harness.AttackKind
	// K is the attack strength; 0 with a non-empty Attack means "scale
	// with N": ⌈N/2⌉−1, the paper's maximum.
	K int
}

func (a AdversaryProfile) strength(n int) int {
	if a.K > 0 {
		return a.K
	}
	return consensus.Majority(n) - 1
}

// Fault is one entry of a scenario's fault schedule. Faults contribute to
// the harness configuration of each run — either statically (scheduled
// crash/restart pairs) or via pre-start hooks that react to protocol
// progress on the live network.
type Fault interface {
	// contribute applies the fault to one run's configuration.
	contribute(cfg *harness.Config) error
}

// CrashRestart crashes a process at a chosen time and optionally restarts
// it later. A zero Restart means the process never comes back (it must then
// leave a majority standing, or the scenario cannot terminate).
type CrashRestart struct {
	Proc    int
	Crash   Rel
	Restart Rel
}

// contribute implements Fault.
func (f CrashRestart) contribute(cfg *harness.Config) error {
	if f.Proc < 0 || f.Proc >= cfg.N {
		return fmt.Errorf("scenario: crash/restart of process %d in a cluster of %d", f.Proc, cfg.N)
	}
	r := harness.Restart{
		Proc:    consensus.ProcessID(f.Proc),
		CrashAt: f.Crash.Resolve(cfg.Delta, cfg.TS),
	}
	if r.CrashAt < 0 {
		// A TS-relative time can resolve before zero under small δ/TS
		// overrides; the simulator panics on past scheduling, so reject
		// it at configuration time.
		return fmt.Errorf("scenario: crash of process %d resolves to %v (before time 0) with δ=%v TS=%v",
			f.Proc, r.CrashAt, cfg.Delta, cfg.TS)
	}
	if !f.Restart.IsZero() {
		r.RestartAt = f.Restart.Resolve(cfg.Delta, cfg.TS)
		if r.RestartAt < r.CrashAt {
			return fmt.Errorf("scenario: process %d restarts at %v before its crash at %v",
				f.Proc, r.RestartAt, r.CrashAt)
		}
	}
	cfg.Restarts = append(cfg.Restarts, r)
	return nil
}

// Victim selectors for AssassinateOnSeries.
const (
	// VictimEmitter kills the process that emitted the triggering sample —
	// the process furthest ahead in the protocol.
	VictimEmitter = -1
	// VictimRoundOwner kills process (value mod N) — the rotating-
	// coordinator convention, so triggering on round r kills round r's
	// coordinator at the exact moment its round begins.
	VictimRoundOwner = -2
)

// AssassinateOnSeries is the adaptive fault: it watches a trace series
// ("round", "session", …) and crashes a victim the first time the series
// reaches MinValue — coordinator assassination at a chosen round, without
// protocol-specific wiring. Protocols that never emit the series are
// unaffected, so one scenario can carry one assassin per series.
type AssassinateOnSeries struct {
	// Series is the trace series to watch.
	Series string
	// MinValue triggers on the first sample with Value ≥ MinValue.
	MinValue int64
	// AfterTS restricts the trigger to post-stabilization samples (the
	// regime the paper's bound excludes failures from — deliberately
	// violated here).
	AfterTS bool
	// Victim is a process index, or VictimEmitter / VictimRoundOwner.
	Victim int
	// RestartAfter revives the victim this many δ after the kill; 0 means
	// never.
	RestartAfter float64
}

// contribute implements Fault.
func (f AssassinateOnSeries) contribute(cfg *harness.Config) error {
	if f.Victim >= cfg.N || f.Victim < VictimRoundOwner {
		return fmt.Errorf("scenario: assassination victim %d in a cluster of %d", f.Victim, cfg.N)
	}
	delta, ts := cfg.Delta, cfg.TS
	cfg.PreStart = append(cfg.PreStart, func(nw *simnet.Network) {
		fired := false
		nw.Collector().OnEmit(func(kind string, s trace.Sample) {
			if fired || kind != f.Series || s.Value < f.MinValue {
				return
			}
			if f.AfterTS && s.At < ts {
				return
			}
			victim := f.Victim
			switch f.Victim {
			case VictimEmitter:
				victim = s.Proc
			case VictimRoundOwner:
				victim = int(s.Value) % nw.Config().N
			}
			fired = true
			now := nw.Engine().Now()
			nw.CrashAt(consensus.ProcessID(victim), now)
			if f.RestartAfter > 0 {
				nw.RestartAt(consensus.ProcessID(victim), now+time.Duration(f.RestartAfter*float64(delta)))
			}
		})
	})
	return nil
}

// Spec is one declarative scenario: the regime to run and the invariants it
// must satisfy. The zero value of every field has a sensible default (see
// withDefaults), so a Spec reads as a delta against the standard experiment
// setup (N=5, δ=10ms, TS=200ms, every registered protocol, safety checks
// on).
type Spec struct {
	// Name identifies the scenario (CLI: `scenario run <name>`).
	Name string
	// Description is one line of intent shown by `scenario list`.
	Description string
	// Backend selects the execution substrate: BackendSim (the default),
	// BackendLive (goroutines + in-memory transport), or BackendLiveTCP
	// (goroutines + loopback TCP). The live backends run the same Spec
	// under wall-clock time with policy-driven fault injection and report
	// through the identical schema; features with no live equivalent
	// (message-level adversaries, clock profiles, PreStart hooks,
	// WorstCaseDelays) fail the run rather than degrade silently.
	Backend string
	// Protocols to run; nil means every visible protocol in the registry
	// that the chosen backend supports (the live backends exclude
	// protocols needing the simulator's leader oracle).
	Protocols []harness.Protocol
	// N, Delta, TS, Sigma, Eps are the model parameters (defaults: 5,
	// 10ms, 200ms, protocol defaults).
	N     int
	Delta time.Duration
	TS    time.Duration
	Sigma time.Duration
	Eps   time.Duration
	// StableFromStart sets TS = 0 (the network is synchronous from time
	// zero), which a zero TS alone cannot express because it defaults.
	StableFromStart bool
	// OpinionPool, when > 0, bounds the number of distinct proposals:
	// processes draw their initial values round-robin from a pool of this
	// many. Population-dynamics scenarios set it (the O(log n) theory
	// assumes a bounded opinion space); 0 keeps the default
	// one-distinct-proposal-per-process.
	OpinionPool int
	// Net is the pre-stabilization network profile (nil = DropAll).
	Net NetProfile
	// Faults is the fault schedule.
	Faults []Fault
	// Clocks is the clock profile.
	Clocks ClockProfile
	// Adversary is the message-level adversary.
	Adversary AdversaryProfile
	// WorstCaseDelays makes every post-TS delivery take exactly δ.
	WorstCaseDelays bool
	// Prepared enables the modified-Paxos stable-state fast path (phase 1
	// pre-executed).
	Prepared bool
	// Checks are the invariants evaluated on every run; nil means
	// DefaultChecks (termination, agreement, validity).
	Checks []Check
	// Seeds is the number of independent runs per protocol (default 5);
	// seed i uses BaseSeed+i (BaseSeed default 1000).
	Seeds    int
	BaseSeed int64
	// Horizon bounds each run (harness default: 2 minutes virtual).
	Horizon time.Duration
	// Workers sizes the pool executing the independent (protocol, seed)
	// cells concurrently; 0 uses GOMAXPROCS, 1 forces serial execution.
	// The report is identical for every worker count.
	Workers int
	// KeepRuns retains the raw RunResults on the Report (Report.Runs), for
	// callers that need per-run data the aggregates do not carry (restart
	// recoveries, per-type message counts, trace series).
	KeepRuns bool
	// Observe enables run-level observability — phase spans and latency
	// histograms — on every run's collector, on any backend. Observation
	// consumes no randomness and schedules nothing, so simulator schedules
	// are byte-identical with it on or off; the report additionally gains
	// decision-latency quantiles per protocol.
	Observe bool
}

// withDefaults returns the spec with every zero field resolved.
func (s Spec) withDefaults() Spec {
	if s.N == 0 {
		s.N = 5
	}
	if s.Delta == 0 {
		s.Delta = 10 * time.Millisecond
	}
	if s.StableFromStart {
		s.TS = 0
	} else if s.TS == 0 {
		s.TS = 200 * time.Millisecond
	}
	if s.Backend == "" {
		s.Backend = BackendSim
	}
	if len(s.Protocols) == 0 {
		s.Protocols = harness.Protocols()
		// A defaulted protocol set narrows to what the backend can run;
		// an explicit set instead fails the run on an unsupported entry.
		if b, err := backendFor(s.Backend); err == nil {
			supported := s.Protocols[:0:0]
			for _, p := range s.Protocols {
				if b.Supports(p) == nil {
					supported = append(supported, p)
				}
			}
			s.Protocols = supported
		}
	}
	if len(s.Checks) == 0 {
		s.Checks = DefaultChecks()
	}
	if s.Seeds == 0 {
		s.Seeds = 5
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1000
	}
	return s
}

// config builds the harness configuration for one (protocol, seed) cell.
func (s Spec) config(p harness.Protocol, seed int64) (harness.Config, error) {
	cfg := harness.Config{
		Protocol: p, N: s.N, Delta: s.Delta, TS: s.TS,
		Sigma: s.Sigma, Eps: s.Eps,
		Rho: s.Clocks.Rho, Drift: s.Clocks.drift(s.N, s.Delta),
		WorstCaseDelays: s.WorstCaseDelays,
		Prepared:        s.Prepared,
		OpinionPool:     s.OpinionPool,
		Seed:            seed,
		Horizon:         s.Horizon,
		Observe:         s.Observe,
	}
	if s.Net != nil {
		cfg.Policy = s.Net(s.N, s.Delta, s.TS)
	}
	if s.Adversary.Attack != "" && s.Adversary.Attack != harness.NoAttack {
		cfg.Attack = s.Adversary.Attack
		cfg.AttackK = s.Adversary.strength(s.N)
	}
	for _, f := range s.Faults {
		if err := f.contribute(&cfg); err != nil {
			return harness.Config{}, err
		}
	}
	return cfg, nil
}
