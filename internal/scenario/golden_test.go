package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the determinism golden files from the current code")

// goldenSpecs are the canned scenarios whose full JSON reports are pinned at
// fixed seeds. Together they cover every hot path of the simulator: the
// partition-heal policy, the Duplicate/Reorder re-delivery path
// (Fate.Duplicates), the obsolete-ballot adversary's direct injections
// under worst-case delivery, and — via population-dynamics — the batched
// multicast fan-out with arena reuse at n=1000.
func goldenSpecs(t *testing.T) []Spec {
	t.Helper()
	names := []string{"split-brain-until-TS", "dup-reorder-storm", "obsolete-ballot-replay", "population-dynamics"}
	specs := make([]Spec, 0, len(names))
	for _, name := range names {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("canned scenario %q disappeared from the library", name)
		}
		s.Seeds = 3
		specs = append(specs, s)
	}
	return specs
}

// TestDeterminismGoldens pins the byte-exact JSON report (decision counts,
// latency statistics, per-type message counts) of three canned scenarios at
// fixed seeds. Any change to the simulator's event ordering, the network's
// randomness consumption, or the trace accounting shows up here as a diff —
// this is the proof that the pooled event queue and the closure-free routing
// rewrite preserve schedules bit-for-bit. Regenerate deliberately with
// `go test ./internal/scenario -run Goldens -update` and review the diff.
func TestDeterminismGoldens(t *testing.T) {
	for _, spec := range goldenSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			got += "\n"
			path := filepath.Join("testdata", "golden_"+spec.Name+".json")
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Errorf("report for %s diverged from the pinned golden.\ngot:\n%s\nwant:\n%s",
					spec.Name, got, want)
			}
		})
	}
}
