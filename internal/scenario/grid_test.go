package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// gridBase is a small fast base spec for grid tests: one protocol, one
// seed, synchronous from the start.
func gridBase() Spec {
	return Spec{
		Name:            "grid-test",
		Protocols:       []harness.Protocol{harness.ModifiedPaxos},
		StableFromStart: true,
		Seeds:           1,
	}
}

func TestGridCrossProductOrder(t *testing.T) {
	rep, err := Grid{
		Base: gridBase(),
		Axes: []Axis{
			NAxis(3, 5),
			DeltaAxis(5*time.Millisecond, 10*time.Millisecond),
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	want := []string{
		"n=3 delta=5ms", "n=3 delta=10ms",
		"n=5 delta=5ms", "n=5 delta=10ms",
	}
	for i, c := range rep.Cells {
		if got := coordString(c.Coords); got != want[i] {
			t.Errorf("cell %d at %q, want %q (first axis must be outermost)", i, got, want[i])
		}
	}
	// The resolved parameters must reflect the applied axis values.
	if rep.Cells[3].Params.N != 5 || rep.Cells[3].Params.Delta != 10*time.Millisecond {
		t.Errorf("cell 3 params = %+v", rep.Cells[3].Params)
	}
	if got := []string(rep.Axes); len(got) != 2 || got[0] != "n" || got[1] != "delta" {
		t.Errorf("axes = %v", got)
	}
}

// TestGridFailFastStopsAtFirstViolatedCell pins the partial-report shape:
// cells run in deterministic order, the first violated cell is the last one
// in the report, Truncated marks the unexecuted remainder, and the text and
// CSV renderers handle the partial grid.
func TestGridFailFastStopsAtFirstViolatedCell(t *testing.T) {
	pass := AxisValue{Label: "ok", Apply: func(*Spec) {}}
	fail := AxisValue{Label: "bad", Apply: func(s *Spec) {
		// An impossible budget makes the cell deterministically violated.
		s.Checks = []Check{MessageBudget{MaxTotal: 0}}
	}}
	grid := Grid{
		Base:     gridBase(),
		Axes:     []Axis{CustomAxis("variant", pass, fail, pass, pass)},
		FailFast: true,
	}
	rep, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("fail-fast executed %d cells, want 2 (stop at the first violated cell)", len(rep.Cells))
	}
	if got := coordString(rep.Cells[1].Coords); got != "variant=bad" {
		t.Errorf("last cell is %q, want the violated one", got)
	}
	if len(rep.Cells[1].Report.Violations) == 0 {
		t.Error("last cell of a truncated report must carry the violation")
	}
	if !rep.Truncated {
		t.Error("partial report must be marked Truncated")
	}
	if !strings.Contains(rep.Text(), "fail-fast") {
		t.Errorf("text renderer does not flag truncation:\n%s", rep.Text())
	}
	if rows := rep.CSVRows(); len(rows) != 2 {
		t.Errorf("CSV has %d rows for a 2-cell single-protocol partial grid", len(rows))
	}

	// Without FailFast the same grid runs every cell and is not truncated.
	grid.FailFast = false
	full, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Cells) != 4 || full.Truncated {
		t.Errorf("full grid: %d cells, truncated=%v", len(full.Cells), full.Truncated)
	}

	// A fail-fast grid whose last cell violates is complete, not truncated.
	tail := Grid{
		Base:     gridBase(),
		Axes:     []Axis{CustomAxis("variant", pass, fail)},
		FailFast: true,
	}
	rep, err = tail.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || rep.Truncated {
		t.Errorf("violation in the final cell: %d cells, truncated=%v (nothing was skipped)", len(rep.Cells), rep.Truncated)
	}
}

func TestGridZip(t *testing.T) {
	rep, err := Grid{
		Base: gridBase(),
		Axes: []Axis{
			NAxis(3, 5),
			DeltaAxis(5*time.Millisecond, 10*time.Millisecond),
		},
		Zip: true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("zipped grid has %d cells, want 2", len(rep.Cells))
	}
	if got := coordString(rep.Cells[1].Coords); got != "n=5 delta=10ms" {
		t.Errorf("zip pairs values element-wise, got %q", got)
	}

	_, err = Grid{
		Base: gridBase(),
		Axes: []Axis{NAxis(3, 5), DeltaAxis(5 * time.Millisecond)},
		Zip:  true,
	}.Run()
	if err == nil || !strings.Contains(err.Error(), "equal lengths") {
		t.Fatalf("unequal zipped axes should fail, got %v", err)
	}

	// Zip with no axes must not panic: it degenerates to the single base
	// cell, like the axis-free cross-product.
	rep, err = Grid{Base: gridBase(), Zip: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("axis-free zipped grid has %d cells, want 1", len(rep.Cells))
	}
}

func TestGridRejectsDuplicateAxis(t *testing.T) {
	_, err := Grid{Base: gridBase(), Axes: []Axis{NAxis(3), NAxis(5)}}.Run()
	if err == nil || !strings.Contains(err.Error(), `axis "n" given twice`) {
		t.Fatalf("duplicate axis should fail, got %v", err)
	}
}

func TestGridCSVGolden(t *testing.T) {
	// The CSV schema is a published interface (plotting scripts and the CI
	// smoke job consume it): the header is pinned verbatim, and every row
	// must carry the full resolved parameter set in the same column order.
	const wantHeader = "scenario,n,delta_ns,ts_ns,rho,sigma_ns,eps_ns,attack_k," +
		"protocol,seeds,decided,latency_median_ns,latency_median_deltas,latency_max_ns," +
		"bound_ns,messages_median,violations," +
		"decision_p50_ns,decision_p95_ns,decision_p99_ns"
	if GridCSVHeader != wantHeader {
		t.Fatalf("CSV header changed:\n got %s\nwant %s", GridCSVHeader, wantHeader)
	}
	rep, err := Grid{
		Base: gridBase(),
		Axes: []Axis{NAxis(3), RhoAxis(0, 0.05)},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != wantHeader {
		t.Fatalf("CSV() must start with the pinned header:\n%s", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("got %d rows, want 2 (one per cell-protocol):\n%s", len(lines)-1, out)
	}
	// Golden structural fields of the first row: scenario, n, delta, ts,
	// rho, sigma, eps, attack_k, protocol, seeds, decided.
	fields := strings.Split(lines[1], ",")
	if len(fields) != 20 {
		t.Fatalf("row has %d fields, want 20: %q", len(fields), lines[1])
	}
	wantPrefix := []string{"grid-test", "3", "10000000", "0", "0", "0", "0", "0", "modpaxos", "1", "1"}
	for i, w := range wantPrefix {
		if fields[i] != w {
			t.Errorf("row field %d = %q, want %q (row %q)", i, fields[i], w, lines[1])
		}
	}
	// Second cell carries ρ=0.05 in the rho column.
	if got := strings.Split(lines[2], ",")[4]; got != "0.05" {
		t.Errorf("rho column of second cell = %q, want 0.05", got)
	}
}

func TestGridJSONGolden(t *testing.T) {
	rep, err := Grid{
		Base: gridBase(),
		Axes: []Axis{NAxis(3)},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	s, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name  string   `json:"name"`
		Axes  []string `json:"axes"`
		Cells []struct {
			Coords []AxisPoint `json:"coords"`
			Params struct {
				N     int   `json:"n"`
				Delta int64 `json:"delta_ns"`
			} `json:"params"`
			Report struct {
				Scenario  string `json:"scenario"`
				Protocols []struct {
					Protocol string `json:"protocol"`
					Decided  int    `json:"decided"`
				} `json:"protocols"`
			} `json:"report"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(s), &decoded); err != nil {
		t.Fatalf("grid JSON does not match the published shape: %v\n%s", err, s)
	}
	if decoded.Name != "grid-test" || len(decoded.Cells) != 1 {
		t.Fatalf("unexpected decoded report: %+v", decoded)
	}
	c := decoded.Cells[0]
	if c.Params.N != 3 || c.Params.Delta != int64(10*time.Millisecond) {
		t.Errorf("params = %+v", c.Params)
	}
	if len(c.Coords) != 1 || c.Coords[0] != (AxisPoint{Axis: "n", Value: "3"}) {
		t.Errorf("coords = %+v", c.Coords)
	}
	if len(c.Report.Protocols) != 1 || c.Report.Protocols[0].Decided != 1 {
		t.Errorf("report = %+v", c.Report)
	}
}

func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := func(workers int) string {
		g := Grid{
			Base:    gridBase(),
			Axes:    []Axis{NAxis(3, 5), DeltaAxis(5*time.Millisecond, 10*time.Millisecond)},
			Workers: workers,
		}
		g.Base.Protocols = []harness.Protocol{harness.ModifiedPaxos, harness.TraditionalPaxos}
		g.Base.Seeds = 2
		rep, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.CSV()
	}
	serial, parallel := grid(1), grid(0)
	if serial != parallel {
		t.Fatalf("grid report depends on worker count:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestGridCellErrorPropagates(t *testing.T) {
	// Process 9 exists at n=12 but not at n=3: the n=3 cell fails to
	// configure, and the grid must surface that cell's error rather than
	// fold a missing cell into the report.
	base := gridBase()
	base.Faults = []Fault{CrashRestart{Proc: 9, Crash: AfterTS(1)}}
	_, err := Grid{Base: base, Axes: []Axis{NAxis(3, 12)}}.Run()
	if err == nil {
		t.Fatal("invalid cell should fail the grid")
	}
	if !strings.Contains(err.Error(), "n=3") || !strings.Contains(err.Error(), "process 9") {
		t.Errorf("error should name the failing cell and cause: %v", err)
	}
}

func TestParseAxis(t *testing.T) {
	good := map[string]struct {
		name   string
		labels []string
	}{
		"n=3,5,17":       {"n", []string{"3", "5", "17"}},
		"delta=1ms, 5ms": {"delta", []string{"1ms", "5ms"}},
		"ts=0,200ms":     {"ts", []string{"0s", "200ms"}},
		"rho=0,0.01,0.1": {"rho", []string{"0", "0.01", "0.1"}},
		"sigma=50ms":     {"sigma", []string{"50ms"}},
		"eps=1ms":        {"eps", []string{"1ms"}},
		"k=0,2,8":        {"attackk", []string{"0", "2", "8"}},
		"attackk=4":      {"attackk", []string{"4"}},
		"RHO=0.02":       {"rho", []string{"0.02"}},
	}
	for arg, want := range good {
		ax, err := ParseAxis(arg)
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", arg, err)
			continue
		}
		if ax.Name != want.name || len(ax.Values) != len(want.labels) {
			t.Errorf("ParseAxis(%q) = %s/%d values, want %s/%d", arg, ax.Name, len(ax.Values), want.name, len(want.labels))
			continue
		}
		for i, l := range want.labels {
			if ax.Values[i].Label != l {
				t.Errorf("ParseAxis(%q) value %d label %q, want %q", arg, i, ax.Values[i].Label, l)
			}
		}
	}
	for _, bad := range []string{
		"", "n", "n=", "n=0", "n=x", "delta=5", "rho=2", "rho=-0.1",
		"k=-1", "unknown=1", "ts=nope",
	} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) should fail", bad)
		}
	}
}

func TestTSAxisZeroMeansStableFromStart(t *testing.T) {
	ax, err := ParseAxis("ts=0,100ms")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Grid{
		Base: Spec{
			Name:      "ts-axis",
			Protocols: []harness.Protocol{harness.ModifiedPaxos},
			Seeds:     1,
		},
		Axes: []Axis{ax},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cells[0].Params.TS; got != 0 {
		t.Errorf("ts=0 cell resolved TS=%v; a zero axis value must mean stable-from-start, not the 200ms default", got)
	}
	if got := rep.Cells[1].Params.TS; got != 100*time.Millisecond {
		t.Errorf("ts=100ms cell resolved TS=%v", got)
	}
}
