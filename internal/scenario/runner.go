package scenario

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Violation is one failed check of one run.
type Violation struct {
	Protocol harness.Protocol `json:"protocol"`
	Seed     int64            `json:"seed"`
	Check    string           `json:"check"`
	Detail   string           `json:"detail"`
}

// ProtocolReport aggregates one protocol's runs across the seed matrix.
type ProtocolReport struct {
	Protocol harness.Protocol `json:"protocol"`
	Seeds    int              `json:"seeds"`
	Decided  int              `json:"decided"`
	// Latency summarizes decision latency after TS (clamped at 0) across
	// seeds; LatencyDeltas is the same rendered in units of δ.
	Latency       trace.Summary `json:"latency_ns"`
	LatencyDeltas string        `json:"latency_in_delta"`
	// Bound is the protocol's declared decision bound (for protocols whose
	// registry descriptor carries one, e.g. modpaxos's ε+3τ+5δ; 0 otherwise).
	Bound time.Duration `json:"bound_ns,omitempty"`
	// Messages summarizes total sends per run; MessagesByType merges the
	// per-type counts over all seeds.
	Messages       trace.Summary  `json:"messages"`
	MessagesByType map[string]int `json:"messages_by_type"`
	// DecisionLatency is the per-process decision-latency histogram merged
	// across all seeds, present only when the spec set Observe (a pointer so
	// unobserved reports keep their exact JSON shape).
	DecisionLatency *trace.HistogramSnapshot `json:"decision_latency,omitempty"`
}

// Report is the structured outcome of one scenario execution.
type Report struct {
	Scenario    string           `json:"scenario"`
	Description string           `json:"description,omitempty"`
	Backend     string           `json:"backend"`
	N           int              `json:"n"`
	Delta       time.Duration    `json:"delta_ns"`
	TS          time.Duration    `json:"ts_ns"`
	Seeds       int              `json:"seeds"`
	Protocols   []ProtocolReport `json:"protocols"`
	Violations  []Violation      `json:"violations"`

	// runs holds the raw cells in (protocol, seed) order when the spec set
	// KeepRuns; unexported so JSON reports stay aggregate-only.
	runs []RunResult
}

// Passed reports whether every check passed on every run.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Runs returns the raw (protocol, seed) results in deterministic order, or
// nil unless the spec set KeepRuns.
func (r *Report) Runs() []RunResult { return r.runs }

// cell is one (protocol, seed) run outcome, produced by the worker pool.
type cell struct {
	run RunResult
	err error
}

// Run executes the scenario across its protocol set and seed matrix.
// Violated invariants are recorded in the report, not returned as errors;
// the error path is reserved for configurations that cannot run at all.
//
// The (protocol, seed) cells are independent — each run owns its engine,
// network, and collector — so they execute on a worker pool (Spec.Workers,
// default GOMAXPROCS). Aggregation and check evaluation happen afterwards
// in deterministic (protocol, seed) order, so the report is identical for
// every worker count.
func Run(spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	cells := execute([]Spec{spec}, spec.Workers)
	return aggregate(spec, cells[0])
}

// execute runs every (protocol, seed) cell of every (already defaulted) spec
// on one shared worker pool and returns, per spec, the cell matrix in
// (protocol, seed) order. One pool spans all specs, so a grid's parallelism
// covers the whole cell cross-product rather than one spec at a time.
func execute(specs []Spec, workers int) [][][]cell {
	out := make([][][]cell, len(specs))
	total := 0
	for gi, spec := range specs {
		out[gi] = make([][]cell, len(spec.Protocols))
		for pi := range out[gi] {
			out[gi][pi] = make([]cell, spec.Seeds)
		}
		total += len(spec.Protocols) * spec.Seeds
	}
	type job struct{ gi, pi, si int }
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one arena: engine event storage and node
			// state are reused across every simulator cell the worker
			// runs, so a population-scale grid stops paying per-cell
			// construction. Arena runs are byte-identical to fresh runs,
			// so the report stays independent of the worker count.
			arena := simnet.NewArena()
			for j := range jobs {
				spec := specs[j.gi]
				p := spec.Protocols[j.pi]
				seed := spec.BaseSeed + int64(j.si)
				slot := &out[j.gi][j.pi][j.si]
				backend, err := backendFor(spec.Backend)
				if err != nil {
					slot.err = err
					continue
				}
				cfg, err := spec.config(p, seed)
				if err != nil {
					slot.err = err
					continue
				}
				if backend.Name() == BackendSim {
					cfg.Arena = arena
				}
				res, err := backend.Run(cfg)
				if err != nil {
					slot.err = fmt.Errorf("scenario %s: %s seed %d on %s: %w", spec.Name, p, seed, backend.Name(), err)
					continue
				}
				slot.run = RunResult{Protocol: p, Seed: seed, Cfg: cfg, Res: res}
			}
		}()
	}
	for gi, spec := range specs {
		for pi := range spec.Protocols {
			for si := 0; si < spec.Seeds; si++ {
				jobs <- job{gi, pi, si}
			}
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// aggregate folds one spec's executed cell matrix into its Report,
// evaluating checks in deterministic (protocol, seed) order.
func aggregate(spec Spec, cells [][]cell) (*Report, error) {
	rep := &Report{
		Scenario:    spec.Name,
		Description: spec.Description,
		Backend:     spec.Backend,
		N:           spec.N,
		Delta:       spec.Delta,
		TS:          spec.TS,
		Seeds:       spec.Seeds,
	}
	for pi, p := range spec.Protocols {
		pr := ProtocolReport{Protocol: p, Seeds: spec.Seeds}
		var lats, msgs []time.Duration
		decHist := trace.NewHistogram(trace.UnitNanos)
		for si := 0; si < spec.Seeds; si++ {
			c := cells[pi][si]
			if c.err != nil {
				return nil, c.err
			}
			run := c.run
			if spec.KeepRuns {
				rep.runs = append(rep.runs, run)
			}
			if spec.Observe && run.Res.Collector != nil {
				if h, ok := run.Res.Collector.HistogramCopy(trace.HistDecideLatency); ok {
					if err := decHist.Merge(&h); err != nil {
						return nil, fmt.Errorf("scenario %s: %s seed %d: %w", spec.Name, p, run.Seed, err)
					}
				}
			}
			if run.Res.Decided {
				pr.Decided++
				// Only decided runs contribute a latency: a timed-out
				// run would clamp to 0 and drag the summary toward the
				// best possible value exactly when the protocol failed.
				lats = append(lats, run.LatencyAfterTS())
			}
			msgs = append(msgs, time.Duration(run.Res.Messages))
			pr.MessagesByType = trace.MergeCounts(pr.MessagesByType, run.Res.MessagesByType)
			for _, chk := range spec.Checks {
				if err := chk.Check(run); err != nil {
					rep.Violations = append(rep.Violations, Violation{
						Protocol: p, Seed: run.Seed, Check: chk.Name(), Detail: err.Error(),
					})
				}
			}
		}
		pr.Latency = trace.Summarize(lats)
		pr.LatencyDeltas = pr.Latency.StringInDelta(spec.Delta)
		pr.Messages = trace.Summarize(msgs)
		if decHist.Count() > 0 {
			snap := decHist.Snapshot(trace.HistDecideLatency)
			pr.DecisionLatency = &snap
		}
		if d, err := protocol.Get(string(p)); err == nil && d.DecisionBound != nil {
			if bound, err := d.DecisionBound(protocol.Params{
				Delta: spec.Delta, Sigma: spec.Sigma, Eps: spec.Eps, Rho: spec.Clocks.Rho,
			}); err == nil {
				pr.Bound = bound
			}
		}
		rep.Protocols = append(rep.Protocols, pr)
	}
	return rep, nil
}

// Text renders the report as an aligned table for terminals.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s — %s\n", r.Scenario, r.Description)
	fmt.Fprintf(&b, "params: N=%d δ=%v TS=%v seeds=%d backend=%s\n\n", r.N, r.Delta, r.TS, r.Seeds, r.Backend)
	fmt.Fprintf(&b, "%-12s %-8s %-12s %-12s %-10s %-10s\n",
		"protocol", "decided", "latency p50", "latency max", "bound", "msgs p50")
	for _, pr := range r.Protocols {
		bound := "-"
		if pr.Bound > 0 {
			bound = trace.InDelta(pr.Bound, r.Delta)
		}
		fmt.Fprintf(&b, "%-12s %-8s %-12s %-12s %-10s %-10d\n",
			pr.Protocol,
			fmt.Sprintf("%d/%d", pr.Decided, pr.Seeds),
			trace.InDelta(pr.Latency.Median, r.Delta),
			trace.InDelta(pr.Latency.Max, r.Delta),
			bound,
			int64(pr.Messages.Median),
		)
	}
	b.WriteString("\n")
	if hasDecisionLatency(r.Protocols) {
		b.WriteString("decision latency after TS (per process, merged over seeds):\n")
		fmt.Fprintf(&b, "  %-12s %-8s %-12s %-12s %-12s %-12s\n",
			"protocol", "count", "p50", "p95", "p99", "max")
		for _, pr := range r.Protocols {
			h := pr.DecisionLatency
			if h == nil {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %-8d %-12v %-12v %-12v %-12v\n",
				pr.Protocol, h.Count,
				time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99),
				time.Duration(h.Max))
		}
		b.WriteString("\n")
	}
	if len(r.Violations) == 0 {
		b.WriteString("violations: none\n")
	} else {
		fmt.Fprintf(&b, "violations: %d\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %-12s seed=%-6d %-16s %s\n", v.Protocol, v.Seed, v.Check, v.Detail)
		}
	}
	return b.String()
}

// hasDecisionLatency reports whether any protocol carries the observed
// decision-latency histogram.
func hasDecisionLatency(prs []ProtocolReport) bool {
	for _, pr := range prs {
		if pr.DecisionLatency != nil {
			return true
		}
	}
	return false
}

// HistogramSummaries merges every histogram recorded by the kept runs
// (Spec.KeepRuns + Observe), grouped by name across all (protocol, seed)
// cells, and returns the merged snapshots sorted by name. Histograms whose
// units conflict across runs are skipped (cannot happen with the built-in
// instrumentation, which fixes one unit per name).
func (r *Report) HistogramSummaries() []trace.HistogramSnapshot {
	merged := make(map[string]*trace.Histogram)
	for _, run := range r.runs {
		if run.Res.Collector == nil {
			continue
		}
		for _, name := range run.Res.Collector.HistogramNames() {
			h, ok := run.Res.Collector.HistogramCopy(name)
			if !ok {
				continue
			}
			if m, ok := merged[name]; ok {
				if err := m.Merge(&h); err != nil {
					delete(merged, name)
				}
			} else {
				merged[name] = &h
			}
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]trace.HistogramSnapshot, 0, len(names))
	for _, name := range names {
		out = append(out, merged[name].Snapshot(name))
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
