package scenario

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// Violation is one failed check of one run.
type Violation struct {
	Protocol harness.Protocol `json:"protocol"`
	Seed     int64            `json:"seed"`
	Check    string           `json:"check"`
	Detail   string           `json:"detail"`
}

// ProtocolReport aggregates one protocol's runs across the seed matrix.
type ProtocolReport struct {
	Protocol harness.Protocol `json:"protocol"`
	Seeds    int              `json:"seeds"`
	Decided  int              `json:"decided"`
	// Latency summarizes decision latency after TS (clamped at 0) across
	// seeds; LatencyDeltas is the same rendered in units of δ.
	Latency       trace.Summary `json:"latency_ns"`
	LatencyDeltas string        `json:"latency_in_delta"`
	// Bound is the protocol's declared decision bound (for protocols whose
	// registry descriptor carries one, e.g. modpaxos's ε+3τ+5δ; 0 otherwise).
	Bound time.Duration `json:"bound_ns,omitempty"`
	// Messages summarizes total sends per run; MessagesByType merges the
	// per-type counts over all seeds.
	Messages       trace.Summary  `json:"messages"`
	MessagesByType map[string]int `json:"messages_by_type"`
}

// Report is the structured outcome of one scenario execution.
type Report struct {
	Scenario    string           `json:"scenario"`
	Description string           `json:"description,omitempty"`
	N           int              `json:"n"`
	Delta       time.Duration    `json:"delta_ns"`
	TS          time.Duration    `json:"ts_ns"`
	Seeds       int              `json:"seeds"`
	Protocols   []ProtocolReport `json:"protocols"`
	Violations  []Violation      `json:"violations"`
}

// Passed reports whether every check passed on every run.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// cell is one (protocol, seed) run outcome, produced by the worker pool.
type cell struct {
	run RunResult
	err error
}

// Run executes the scenario across its protocol set and seed matrix.
// Violated invariants are recorded in the report, not returned as errors;
// the error path is reserved for configurations that cannot run at all.
//
// The (protocol, seed) cells are independent — each run owns its engine,
// network, and collector — so they execute on a worker pool (Spec.Workers,
// default GOMAXPROCS). Aggregation and check evaluation happen afterwards
// in deterministic (protocol, seed) order, so the report is identical for
// every worker count.
func Run(spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	rep := &Report{
		Scenario:    spec.Name,
		Description: spec.Description,
		N:           spec.N,
		Delta:       spec.Delta,
		TS:          spec.TS,
		Seeds:       spec.Seeds,
	}

	cells := make([][]cell, len(spec.Protocols))
	for pi := range cells {
		cells[pi] = make([]cell, spec.Seeds)
	}
	type job struct{ pi, si int }
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := len(spec.Protocols) * spec.Seeds; workers > total {
		workers = total
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := spec.Protocols[j.pi]
				seed := spec.BaseSeed + int64(j.si)
				out := &cells[j.pi][j.si]
				cfg, err := spec.config(p, seed)
				if err != nil {
					out.err = err
					continue
				}
				res, err := harness.Run(cfg)
				if err != nil {
					out.err = fmt.Errorf("scenario %s: %s seed %d: %w", spec.Name, p, seed, err)
					continue
				}
				out.run = RunResult{Protocol: p, Seed: seed, Cfg: cfg, Res: res}
			}
		}()
	}
	for pi := range spec.Protocols {
		for si := 0; si < spec.Seeds; si++ {
			jobs <- job{pi, si}
		}
	}
	close(jobs)
	wg.Wait()

	for pi, p := range spec.Protocols {
		pr := ProtocolReport{Protocol: p, Seeds: spec.Seeds}
		var lats, msgs []time.Duration
		for si := 0; si < spec.Seeds; si++ {
			c := cells[pi][si]
			if c.err != nil {
				return nil, c.err
			}
			run := c.run
			if run.Res.Decided {
				pr.Decided++
				// Only decided runs contribute a latency: a timed-out
				// run would clamp to 0 and drag the summary toward the
				// best possible value exactly when the protocol failed.
				lats = append(lats, run.LatencyAfterTS())
			}
			msgs = append(msgs, time.Duration(run.Res.Messages))
			pr.MessagesByType = trace.MergeCounts(pr.MessagesByType, run.Res.MessagesByType)
			for _, chk := range spec.Checks {
				if err := chk.Check(run); err != nil {
					rep.Violations = append(rep.Violations, Violation{
						Protocol: p, Seed: run.Seed, Check: chk.Name(), Detail: err.Error(),
					})
				}
			}
		}
		pr.Latency = trace.Summarize(lats)
		pr.LatencyDeltas = pr.Latency.StringInDelta(spec.Delta)
		pr.Messages = trace.Summarize(msgs)
		if d, err := protocol.Get(string(p)); err == nil && d.DecisionBound != nil {
			if bound, err := d.DecisionBound(protocol.Params{
				Delta: spec.Delta, Sigma: spec.Sigma, Eps: spec.Eps, Rho: spec.Clocks.Rho,
			}); err == nil {
				pr.Bound = bound
			}
		}
		rep.Protocols = append(rep.Protocols, pr)
	}
	return rep, nil
}

// Text renders the report as an aligned table for terminals.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s — %s\n", r.Scenario, r.Description)
	fmt.Fprintf(&b, "params: N=%d δ=%v TS=%v seeds=%d\n\n", r.N, r.Delta, r.TS, r.Seeds)
	fmt.Fprintf(&b, "%-12s %-8s %-12s %-12s %-10s %-10s\n",
		"protocol", "decided", "latency p50", "latency max", "bound", "msgs p50")
	for _, pr := range r.Protocols {
		bound := "-"
		if pr.Bound > 0 {
			bound = trace.InDelta(pr.Bound, r.Delta)
		}
		fmt.Fprintf(&b, "%-12s %-8s %-12s %-12s %-10s %-10d\n",
			pr.Protocol,
			fmt.Sprintf("%d/%d", pr.Decided, pr.Seeds),
			trace.InDelta(pr.Latency.Median, r.Delta),
			trace.InDelta(pr.Latency.Max, r.Delta),
			bound,
			int64(pr.Messages.Median),
		)
	}
	b.WriteString("\n")
	if len(r.Violations) == 0 {
		b.WriteString("violations: none\n")
	} else {
		fmt.Fprintf(&b, "violations: %d\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %-12s seed=%-6d %-16s %s\n", v.Protocol, v.Seed, v.Check, v.Detail)
		}
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
